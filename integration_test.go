package udt_test

// End-to-end integration tests: synthetic UCI stand-in -> uncertainty
// injection -> construction under every strategy/measure -> evaluation,
// exercising the same pipeline as the paper's experiments through the
// internal packages the way cmd/udtbench does.

import (
	"bytes"
	"math"
	"math/rand"
	"testing"

	"udt"
	"udt/internal/data"
	"udt/internal/uci"
)

func TestIntegrationInjectedPipeline(t *testing.T) {
	spec, err := uci.ByName("Iris")
	if err != nil {
		t.Fatal(err)
	}
	pts, _, err := uci.Points(spec, 0.4, 7)
	if err != nil {
		t.Fatal(err)
	}
	ds, err := udt.Inject(pts, udt.InjectConfig{W: 0.15, S: 30, Model: udt.GaussianModel})
	if err != nil {
		t.Fatal(err)
	}

	// Every (strategy, measure) combination builds, beats chance and
	// agrees with the exhaustive search of the same measure.
	for _, m := range []udt.Measure{udt.Entropy, udt.Gini, udt.GainRatio} {
		ref, err := udt.Build(ds, udt.Config{Measure: m, Strategy: udt.StrategyUDT})
		if err != nil {
			t.Fatalf("measure %v: %v", m, err)
		}
		for _, st := range []udt.Strategy{udt.StrategyBP, udt.StrategyLP, udt.StrategyGP, udt.StrategyES} {
			tree, err := udt.Build(ds, udt.Config{Measure: m, Strategy: st})
			if err != nil {
				t.Fatalf("%v/%v: %v", m, st, err)
			}
			for _, tu := range ds.Tuples {
				a, b := ref.Classify(tu), tree.Classify(tu)
				for c := range a {
					if math.Abs(a[c]-b[c]) > 1e-9 {
						t.Fatalf("%v/%v: classification diverges from exhaustive", m, st)
					}
				}
			}
			if acc := udt.Accuracy(tree, ds); acc < 0.8 {
				t.Fatalf("%v/%v: accuracy %v", m, st, acc)
			}
		}
	}
}

func TestIntegrationRawPipeline(t *testing.T) {
	spec, err := uci.ByName("JapaneseVowel")
	if err != nil {
		t.Fatal(err)
	}
	train, test, err := uci.Raw(spec, 0.2, 7)
	if err != nil {
		t.Fatal(err)
	}
	cfg := udt.Config{Strategy: udt.StrategyES, PostPrune: true}
	avg, err := udt.TrainTest(train.Means(), test, cfg)
	if err != nil {
		t.Fatal(err)
	}
	dist, err := udt.TrainTest(train, test, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// The paper's central claim on its raw-measurement dataset.
	if dist.Accuracy <= avg.Accuracy {
		t.Fatalf("UDT (%v) should beat AVG (%v) on raw-sample data", dist.Accuracy, avg.Accuracy)
	}
}

func TestIntegrationCSVExchange(t *testing.T) {
	// Generate -> serialise -> parse -> train -> evaluate, the udtgen |
	// udtree workflow.
	spec, err := uci.ByName("Glass")
	if err != nil {
		t.Fatal(err)
	}
	pts, _, err := uci.Points(spec, 0.3, 9)
	if err != nil {
		t.Fatal(err)
	}
	ds, err := udt.Inject(pts, udt.InjectConfig{W: 0.1, S: 12, Model: udt.UniformModel})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := udt.WriteCSV(&buf, ds); err != nil {
		t.Fatal(err)
	}
	back, err := udt.ReadCSV(&buf, "glass")
	if err != nil {
		t.Fatal(err)
	}
	treeA, err := udt.Build(ds, udt.Config{Strategy: udt.StrategyGP})
	if err != nil {
		t.Fatal(err)
	}
	treeB, err := udt.Build(back, udt.Config{Strategy: udt.StrategyGP})
	if err != nil {
		t.Fatal(err)
	}
	if treeA.Stats.Nodes != treeB.Stats.Nodes {
		t.Fatalf("CSV round trip changed the model: %d vs %d nodes",
			treeA.Stats.Nodes, treeB.Stats.Nodes)
	}
}

func TestIntegrationMixedAttributes(t *testing.T) {
	// Numeric pdfs + categorical distributions + missing values in one
	// dataset, built in parallel with post-pruning — the kitchen sink.
	rng := rand.New(rand.NewSource(13))
	ds := udt.NewDataset("mixed", 2, []string{"no", "yes"})
	ds.CatAttrs = []udt.Attribute{{Name: "region", Domain: []string{"n", "s", "e", "w"}}}
	for i := 0; i < 160; i++ {
		class := i % 2
		var p0, p1 *udt.PDF
		if rng.Float64() > 0.1 {
			c := float64(class)*3 + rng.NormFloat64()
			p0, _ = udt.GaussianPDF(c, 0.4, c-1, c+1, 15)
		}
		p1 = udt.PointPDF(rng.Float64())
		cat := make(udt.CatDist, 4)
		cat[rng.Intn(4)] = 0.7
		cat[(class+rng.Intn(2))%4] += 0.3
		if err := cat.Normalize(); err != nil {
			t.Fatal(err)
		}
		tu := &udt.Tuple{Num: []*udt.PDF{p0, p1}, Cat: []udt.CatDist{cat}, Class: class, Weight: 1}
		ds.Tuples = append(ds.Tuples, tu)
	}
	filled, err := udt.FillMissing(ds)
	if err != nil {
		t.Fatal(err)
	}
	tree, err := udt.Build(filled, udt.Config{
		Strategy:    udt.StrategyES,
		PostPrune:   true,
		Parallelism: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if acc := udt.Accuracy(tree, filled); acc < 0.85 {
		t.Fatalf("mixed-attribute accuracy = %v", acc)
	}
	if udt.Brier(tree, filled) > 0.3 {
		t.Fatalf("Brier = %v", udt.Brier(tree, filled))
	}
}

// TestIntegrationEfficiencyHierarchy pins the paper's §6 ordering on a
// mid-size injected dataset end to end.
func TestIntegrationEfficiencyHierarchy(t *testing.T) {
	spec, err := uci.ByName("Vehicle")
	if err != nil {
		t.Fatal(err)
	}
	pts, _, err := uci.Points(spec, 0.15, 3)
	if err != nil {
		t.Fatal(err)
	}
	ds, err := data.Inject(pts, data.InjectConfig{W: 0.1, S: 40, Model: data.GaussianModel})
	if err != nil {
		t.Fatal(err)
	}
	calcs := map[udt.Strategy]int64{}
	for _, st := range []udt.Strategy{udt.StrategyUDT, udt.StrategyBP, udt.StrategyLP, udt.StrategyGP, udt.StrategyES} {
		tree, err := udt.Build(ds, udt.Config{Strategy: st})
		if err != nil {
			t.Fatal(err)
		}
		calcs[st] = tree.Stats.Search.EntropyCalcs()
	}
	if !(calcs[udt.StrategyBP] <= calcs[udt.StrategyUDT] &&
		calcs[udt.StrategyLP] <= calcs[udt.StrategyBP] &&
		calcs[udt.StrategyGP] <= calcs[udt.StrategyLP]) {
		t.Fatalf("pruning hierarchy violated: %v", calcs)
	}
	if calcs[udt.StrategyES] > calcs[udt.StrategyUDT]/2 {
		t.Fatalf("ES saved too little: %d vs UDT %d", calcs[udt.StrategyES], calcs[udt.StrategyUDT])
	}
}
