package experiments

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"

	"udt/internal/core"
	"udt/internal/forest"
	"udt/internal/modelio"
	"udt/internal/split"
)

// LoadRow is one (model, format) cell of a ModelLoad run.
type LoadRow struct {
	Model   string        // "tree" or "forest-N"
	Format  string        // "json" or "binary"
	Bytes   int64         // model file size on disk
	Load    time.Duration // modelio.Load wall time (best of reps)
	First   time.Duration // first classification after the load
	Speedup float64       // JSON load time of the same model / this load time
}

// ModelLoad measures model cold-start — the time from "file on disk" to
// "first answer served" — for the JSON document format (parse + compile)
// versus the binary mmap container (map + validate, zero parse), on a single
// tree and a trees-member bagged forest over the shared synthetic cluster
// dataset. Each cell reports the best of several repetitions: the page cache
// is warm either way, so the comparison isolates format decode cost, which
// is exactly what a serving restart or hot reload pays.
//
// Both formats must answer the probe identically; a mismatch is an error,
// not a row.
func ModelLoad(o Options, trees int) ([]LoadRow, error) {
	o = o.withDefaults()
	if trees <= 0 {
		trees = 25
	}
	ds, err := syntheticClusters(o, "load-synthetic", 4000)
	if err != nil {
		return nil, err
	}
	cfg := o.treeConfig(split.ES)
	cfg.PostPrune = false
	cfg.Parallelism = 1
	tree, err := core.Build(ds, cfg)
	if err != nil {
		return nil, err
	}
	compiled, err := tree.Compile()
	if err != nil {
		return nil, err
	}
	f, err := forest.Train(ds, forest.Config{
		Trees:      trees,
		Seed:       o.Seed,
		Workers:    max(o.Parallelism, 1),
		TreeConfig: cfg,
	})
	if err != nil {
		return nil, err
	}

	dir, err := os.MkdirTemp("", "udt-load")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)

	writeJSON := func(name string, doc any) (string, error) {
		blob, err := json.Marshal(doc)
		if err != nil {
			return "", err
		}
		path := filepath.Join(dir, name)
		return path, os.WriteFile(path, blob, 0o644)
	}
	writeBinary := func(name string, m modelio.Model) (string, error) {
		var buf bytes.Buffer
		if err := modelio.EncodeBinary(&buf, m); err != nil {
			return "", err
		}
		path := filepath.Join(dir, name)
		return path, os.WriteFile(path, buf.Bytes(), 0o644)
	}

	treeModel := &modelio.TreeModel{Tree: tree, Compiled: compiled}
	cells := []struct {
		model string
		write func() (string, error)
	}{
		{"tree", func() (string, error) { return writeJSON("tree.json", tree) }},
		{"tree", func() (string, error) { return writeBinary("tree.udt", treeModel) }},
		{fmt.Sprintf("forest-%d", trees), func() (string, error) { return writeJSON("forest.json", f) }},
		{fmt.Sprintf("forest-%d", trees), func() (string, error) { return writeBinary("forest.udt", f) }},
	}

	probe := ds.Tuples[0]
	const reps = 5
	var rows []LoadRow
	dists := make([][]float64, len(cells))
	for i, cell := range cells {
		path, err := cell.write()
		if err != nil {
			return nil, err
		}
		info, err := os.Stat(path)
		if err != nil {
			return nil, err
		}
		row := LoadRow{Model: cell.model, Format: "json", Bytes: info.Size()}
		if i%2 == 1 {
			row.Format = "binary"
		}
		for r := 0; r < reps; r++ {
			start := time.Now()
			m, err := modelio.Load(path)
			load := time.Since(start)
			if err != nil {
				return nil, err
			}
			start = time.Now()
			got := m.Classify(probe)
			first := time.Since(start)
			if err := modelio.Close(m); err != nil {
				return nil, err
			}
			dists[i] = got
			if r == 0 || load < row.Load {
				row.Load = load
			}
			if r == 0 || first < row.First {
				row.First = first
			}
		}
		rows = append(rows, row)
	}
	// Both formats of a model must answer the probe byte-identically.
	for i := 0; i < len(cells); i += 2 {
		jd, bd := dists[i], dists[i+1]
		if len(jd) != len(bd) {
			return nil, fmt.Errorf("experiments: %s probe answers have %d vs %d classes", cells[i].model, len(jd), len(bd))
		}
		for c := range jd {
			if jd[c] != bd[c] {
				return nil, fmt.Errorf("experiments: %s probe class %d: json %v, binary %v", cells[i].model, c, jd[c], bd[c])
			}
		}
	}
	// Speedup: JSON load of the same model divided by this cell's load.
	for i := range rows {
		rows[i].Speedup = float64(rows[i&^1].Load) / float64(max(rows[i].Load, time.Nanosecond))
	}
	return rows, nil
}

// FprintLoad renders a ModelLoad run.
func FprintLoad(w io.Writer, rows []LoadRow) {
	fmt.Fprintf(w, "%12s %8s %10s %12s %12s %9s\n", "model", "format", "bytes", "load", "first", "speedup")
	for _, r := range rows {
		fmt.Fprintf(w, "%12s %8s %10d %12v %12v %8.1fx\n",
			r.Model, r.Format, r.Bytes,
			r.Load.Round(time.Microsecond), r.First.Round(time.Microsecond), r.Speedup)
	}
}
