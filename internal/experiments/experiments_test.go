package experiments

import (
	"bytes"
	"strings"
	"testing"

	"udt/internal/data"
)

// tinyOpts keeps experiment tests fast: minimal datasets, few samples.
func tinyOpts(datasets ...string) Options {
	return Options{
		Scale:    0.02,
		S:        12,
		W:        0.10,
		Seed:     1,
		Folds:    3,
		Datasets: datasets,
		MaxDepth: 6,
	}
}

func TestDatasetTable(t *testing.T) {
	rows := DatasetTable(Options{})
	if len(rows) != 10 {
		t.Fatalf("%d rows, want 10", len(rows))
	}
	var buf bytes.Buffer
	FprintDatasetTable(&buf, rows)
	out := buf.String()
	for _, name := range []string{"JapaneseVowel", "Iris", "Segment"} {
		if !strings.Contains(out, name) {
			t.Fatalf("table missing %s:\n%s", name, out)
		}
	}
	filtered := DatasetTable(Options{Datasets: []string{"Iris"}})
	if len(filtered) != 1 || filtered[0].Name != "Iris" {
		t.Fatalf("filter broken: %+v", filtered)
	}
}

func TestAccuracyTableSmall(t *testing.T) {
	rows, err := AccuracyTable(tinyOpts("Iris", "Glass"), []float64{0.05, 0.10})
	if err != nil {
		t.Fatal(err)
	}
	// 2 datasets x 1 model x 2 widths.
	if len(rows) != 4 {
		t.Fatalf("%d rows, want 4", len(rows))
	}
	for _, r := range rows {
		if r.AVG < 0 || r.AVG > 1 || r.UDT < 0 || r.UDT > 1 {
			t.Fatalf("accuracy out of range: %+v", r)
		}
	}
	var buf bytes.Buffer
	FprintAccuracyTable(&buf, rows)
	if !strings.Contains(buf.String(), "Iris") {
		t.Fatal("render missing dataset")
	}
}

func TestAccuracyTableUniformForIntegerDatasets(t *testing.T) {
	rows, err := AccuracyTable(tinyOpts("Vehicle"), []float64{0.10})
	if err != nil {
		t.Fatal(err)
	}
	models := map[data.ErrorModel]bool{}
	for _, r := range rows {
		models[r.Model] = true
	}
	if !models[data.GaussianModel] || !models[data.UniformModel] {
		t.Fatalf("integer dataset should get both error models, got %v", models)
	}
}

func TestAccuracyTableRawDataset(t *testing.T) {
	rows, err := AccuracyTable(tinyOpts("JapaneseVowel"), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || !rows[0].Raw {
		t.Fatalf("raw dataset should give one raw row: %+v", rows)
	}
}

func TestNoiseModelSmall(t *testing.T) {
	points, err := NoiseModel(tinyOpts(), "Iris", []float64{0, 0.05}, []float64{0, 0.10})
	if err != nil {
		t.Fatal(err)
	}
	// 2 u x 2 w measured + 2 model points.
	if len(points) != 6 {
		t.Fatalf("%d points, want 6", len(points))
	}
	modelPoints := 0
	for _, p := range points {
		if p.Model {
			modelPoints++
			// Eq. (2): w = sqrt(w0² + u²) >= u always.
			if p.W < p.U-1e-12 {
				t.Fatalf("model width %v below its noise level %v", p.W, p.U)
			}
		}
	}
	if modelPoints != 2 {
		t.Fatalf("%d model points, want 2", modelPoints)
	}
	var buf bytes.Buffer
	FprintNoiseModel(&buf, points)
	if !strings.Contains(buf.String(), "model") {
		t.Fatal("render missing model curve")
	}
}

func TestNoiseModelRejectsRawDataset(t *testing.T) {
	if _, err := NoiseModel(tinyOpts(), "JapaneseVowel", nil, nil); err == nil {
		t.Fatal("raw dataset accepted")
	}
	if _, err := NoiseModel(tinyOpts(), "nope", nil, nil); err == nil {
		t.Fatal("unknown dataset accepted")
	}
}

func TestEfficiencySmall(t *testing.T) {
	rows, err := Efficiency(tinyOpts("Iris"))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(Algorithms) {
		t.Fatalf("%d rows, want %d", len(rows), len(Algorithms))
	}
	byAlgo := map[string]EfficiencyRow{}
	for _, r := range rows {
		byAlgo[r.Algorithm] = r
	}
	// The pruning hierarchy of §6.2: each successive algorithm performs at
	// most as many entropy calculations as its predecessor (ES can exceed GP
	// on tiny data, but never UDT).
	if byAlgo["UDT-BP"].EntropyCalcs > byAlgo["UDT"].EntropyCalcs {
		t.Fatal("BP did more work than UDT")
	}
	if byAlgo["UDT-LP"].EntropyCalcs > byAlgo["UDT-BP"].EntropyCalcs {
		t.Fatal("LP did more work than BP")
	}
	if byAlgo["UDT-GP"].EntropyCalcs > byAlgo["UDT-LP"].EntropyCalcs {
		t.Fatal("GP did more work than LP")
	}
	if byAlgo["UDT-ES"].EntropyCalcs > byAlgo["UDT"].EntropyCalcs {
		t.Fatal("ES did more work than UDT")
	}
	// AVG processes one point per pdf and must do far less split work.
	if byAlgo["AVG"].EntropyCalcs >= byAlgo["UDT"].EntropyCalcs {
		t.Fatal("AVG should evaluate fewer candidates than UDT")
	}
	var buf bytes.Buffer
	FprintEfficiency(&buf, rows)
	if !strings.Contains(buf.String(), "UDT-ES") {
		t.Fatal("render missing algorithm")
	}
}

func TestSSweepSmall(t *testing.T) {
	points, err := SSweep(tinyOpts("Glass"), []int{5, 15})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 2 {
		t.Fatalf("%d points, want 2", len(points))
	}
	if points[0].X != 5 || points[1].X != 15 {
		t.Fatalf("sweep xs wrong: %+v", points)
	}
	// More samples per pdf means more candidates to search.
	if points[1].EntropyCalcs < points[0].EntropyCalcs {
		t.Fatalf("entropy calcs should not shrink with s: %d -> %d",
			points[0].EntropyCalcs, points[1].EntropyCalcs)
	}
	var buf bytes.Buffer
	FprintSweep(&buf, "s", points)
	if !strings.Contains(buf.String(), "Glass") {
		t.Fatal("render missing dataset")
	}
}

func TestWSweepSmall(t *testing.T) {
	points, err := WSweep(tinyOpts("Iris"), []float64{0.02, 0.2})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 2 {
		t.Fatalf("%d points, want 2", len(points))
	}
}

func TestSweepsExcludeRawDataset(t *testing.T) {
	points, err := SSweep(tinyOpts("JapaneseVowel"), []int{5})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 0 {
		t.Fatal("raw dataset should be excluded from sweeps")
	}
}

func TestPointDataSmall(t *testing.T) {
	o := tinyOpts()
	o.Scale = 0.1
	rows, err := PointData(o, "Iris")
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("%d rows, want 3", len(rows))
	}
	var udt, gp int64
	for _, r := range rows {
		switch r.Algorithm {
		case "UDT":
			udt = r.EntropyCalcs
		case "UDT-GP":
			gp = r.EntropyCalcs
		}
		if r.Accuracy <= 0 {
			t.Fatalf("accuracy missing: %+v", r)
		}
	}
	if gp > udt {
		t.Fatalf("GP on point data did more work than exhaustive: %d > %d", gp, udt)
	}
	var buf bytes.Buffer
	FprintPointData(&buf, rows)
	if !strings.Contains(buf.String(), "UDT-GP") {
		t.Fatal("render missing algorithm")
	}
	if _, err := PointData(o, "JapaneseVowel"); err == nil {
		t.Fatal("raw dataset accepted")
	}
}

func TestOptionsDefaults(t *testing.T) {
	o := Options{}.withDefaults()
	if o.Scale != 1 || o.S != 100 || o.W != 0.10 || o.Folds != 10 {
		t.Fatalf("defaults wrong: %+v", o)
	}
	if !o.wants("anything") {
		t.Fatal("empty filter should accept everything")
	}
	o.Datasets = []string{"Iris"}
	if o.wants("Glass") || !o.wants("Iris") {
		t.Fatal("filter broken")
	}
}
