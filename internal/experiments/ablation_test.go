package experiments

import (
	"bytes"
	"strings"
	"testing"
)

func TestESFractionAblation(t *testing.T) {
	o := tinyOpts()
	o.Scale = 0.1
	rows, err := ESFractionAblation(o, "Glass", []float64{0.05, 0.2})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("%d rows, want 2", len(rows))
	}
	// Ablation must not change the resulting tree (safe pruning).
	if rows[0].Nodes != rows[1].Nodes {
		t.Fatalf("ES fraction changed the tree: %d vs %d nodes", rows[0].Nodes, rows[1].Nodes)
	}
	var buf bytes.Buffer
	FprintAblation(&buf, rows)
	if !strings.Contains(buf.String(), "frac=5%") {
		t.Fatalf("render missing label:\n%s", buf.String())
	}
	if _, err := ESFractionAblation(o, "nope", nil); err == nil {
		t.Fatal("unknown dataset accepted")
	}
}

func TestEndPointModeAblation(t *testing.T) {
	o := tinyOpts()
	o.Scale = 0.1
	rows, err := EndPointModeAblation(o, "Iris")
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("%d rows, want 4", len(rows))
	}
	// Same width, different end-point modes: identical trees.
	if rows[0].Nodes != rows[1].Nodes {
		t.Fatalf("end-point mode changed the tree: %d vs %d nodes", rows[0].Nodes, rows[1].Nodes)
	}
	if rows[2].Nodes != rows[3].Nodes {
		t.Fatalf("end-point mode changed the wide tree: %d vs %d nodes", rows[2].Nodes, rows[3].Nodes)
	}
	if _, err := EndPointModeAblation(o, "nope"); err == nil {
		t.Fatal("unknown dataset accepted")
	}
}
