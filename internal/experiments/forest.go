package experiments

import (
	"fmt"
	"io"
	"math/rand"
	"time"

	"udt/internal/core"
	"udt/internal/data"
	"udt/internal/eval"
	"udt/internal/forest"
	"udt/internal/split"
	"udt/internal/uci"
)

// ForestRow is one dataset of a ForestVsTree run: single-tree vs bagged
// ensemble accuracy under the same protocol and identical folds, the
// ensemble's out-of-bag estimate, and batch inference throughput for both
// models.
type ForestRow struct {
	Dataset    string
	Trees      int
	TreeAcc    float64 // single UDT tree accuracy (CV or train/test per spec)
	ForestAcc  float64 // ensemble accuracy under the same protocol
	OOBAcc     float64 // out-of-bag accuracy of a forest on the full training set
	OOBBrier   float64
	TreeTput   float64 // tuples/s, compiled single tree, batch inference
	ForestTput float64 // tuples/s, compiled forest, batch inference
	BuildTime  time.Duration
}

// forestDefaults lists the datasets the forest experiment runs when no
// -datasets filter is given: small enough to finish quickly, varied enough
// (attribute count, class count) to show where bagging helps.
var forestDefaults = []string{"Iris", "Glass", "Vehicle", "Segment"}

// ForestVsTree compares a bagged ensemble of the given size against a
// single UDT tree on the bundled datasets: the paper's protocol (train/test
// or k-fold CV on identical folds) for accuracy, plus out-of-bag statistics
// and compiled batch throughput. workers bounds both training and inference
// concurrency.
func ForestVsTree(o Options, trees int) ([]ForestRow, error) {
	o = o.withDefaults()
	if trees <= 0 {
		trees = 25
	}
	selected := o.Datasets
	if len(selected) == 0 {
		selected = forestDefaults
	}
	var rows []ForestRow
	for _, name := range selected {
		spec, err := uci.ByName(name)
		if err != nil {
			return nil, err
		}
		train, test, err := loadInjected(spec, o, o.W, data.GaussianModel)
		if err != nil {
			return nil, err
		}
		treeCfg := o.treeConfig(split.ES)
		// Members build concurrently at the forest level, so each builds its
		// own subtrees serially — the goroutine budget stays
		// Parallelism × Workers, as in a single-tree build. Members are
		// unpruned (low bias), matching the udtree train -forest default.
		memberCfg := treeCfg
		memberCfg.Parallelism = 1
		memberCfg.PostPrune = false
		fCfg := forest.Config{
			Trees:      trees,
			Seed:       o.Seed,
			Workers:    max(o.Parallelism, 1),
			TreeConfig: memberCfg,
		}

		row := ForestRow{Dataset: spec.Name, Trees: trees}
		if test != nil {
			tr, err := eval.TrainTest(train, test, treeCfg)
			if err != nil {
				return nil, err
			}
			fr, err := eval.ForestTrainTest(train, test, fCfg)
			if err != nil {
				return nil, err
			}
			row.TreeAcc, row.ForestAcc, row.BuildTime = tr.Accuracy, fr.Accuracy, fr.BuildTime
		} else {
			tr, err := eval.CrossValidate(train, o.Folds, treeCfg, rand.New(rand.NewSource(o.Seed+1)))
			if err != nil {
				return nil, err
			}
			// Identical folds: same rng seed, same deal order.
			fr, err := eval.ForestCrossValidate(train, o.Folds, fCfg, rand.New(rand.NewSource(o.Seed+1)))
			if err != nil {
				return nil, err
			}
			row.TreeAcc, row.ForestAcc, row.BuildTime = tr.Accuracy, fr.Accuracy, fr.BuildTime
		}

		// OOB statistics and throughput come from models over the full
		// training set — the models a production trainer would ship.
		f, err := forest.Train(train, fCfg)
		if err != nil {
			return nil, err
		}
		row.OOBAcc, row.OOBBrier = f.OOB.Accuracy, f.OOB.Brier
		tree, err := core.Build(train, treeCfg)
		if err != nil {
			return nil, err
		}
		compiled, err := tree.Compile()
		if err != nil {
			return nil, err
		}
		workers := max(o.Workers, 1)
		row.TreeTput = throughput(train.Len(), func() { compiled.PredictBatch(train.Tuples, workers) })
		row.ForestTput = throughput(train.Len(), func() { f.PredictBatch(train.Tuples, workers) })
		rows = append(rows, row)
	}
	return rows, nil
}

// FprintForest renders a ForestVsTree run.
func FprintForest(w io.Writer, rows []ForestRow) {
	fmt.Fprintf(w, "%-14s %6s %9s %10s %8s %9s %12s %12s %10s\n",
		"dataset", "trees", "tree acc", "forest acc", "OOB acc", "OOB Brier", "tree tup/s", "forest tup/s", "build")
	for _, r := range rows {
		fmt.Fprintf(w, "%-14s %6d %8.2f%% %9.2f%% %7.2f%% %9.4f %12.0f %12.0f %10v\n",
			r.Dataset, r.Trees, r.TreeAcc*100, r.ForestAcc*100, r.OOBAcc*100, r.OOBBrier,
			r.TreeTput, r.ForestTput, r.BuildTime.Round(time.Millisecond))
	}
}

// throughput times one batch pass and converts it to tuples per second.
func throughput(tuples int, fn func()) float64 {
	start := time.Now()
	fn()
	elapsed := max(time.Since(start), time.Nanosecond)
	return float64(tuples) / elapsed.Seconds()
}
