package experiments

import (
	"fmt"
	"io"
	"strings"

	"udt/internal/boost"
	"udt/internal/data"
	"udt/internal/split"
	"udt/internal/uci"
)

// EarlyExitRow is one dataset of an EarlyExit run: how much of a boosted
// ensemble early-exit inference actually evaluates, whether it ever changed
// a prediction (it must not — the margin bound guarantees agreement), and
// the throughput it buys over full evaluation.
type EarlyExitRow struct {
	Dataset       string
	Rounds        int     // configured boosting rounds
	Kept          int     // members the trained ensemble kept (early stopping)
	Match         bool    // early-exit predictions identical to full evaluation
	MeanEvaluated float64 // mean members evaluated per prediction
	Histogram     []int   // Histogram[k-1] = tuples settled after exactly k members
	FullTput      float64 // tuples/s, full ensemble evaluation
	EarlyTput     float64 // tuples/s, early-exit evaluation
}

// EarlyExit trains a boosted ensemble per bundled dataset and classifies the
// training tuples twice — full evaluation and early exit — recording the
// members-evaluated histogram, the agreement oracle, and both throughputs.
// The early-exit path is interesting exactly when member vote weights are
// skewed: SAMME's highest-alpha members then decide most tuples after a
// fraction of the ensemble.
func EarlyExit(o Options, rounds int) ([]EarlyExitRow, error) {
	o = o.withDefaults()
	if rounds <= 0 {
		rounds = 10
	}
	selected := o.Datasets
	if len(selected) == 0 {
		selected = boostDefaults
	}
	workers := max(o.Workers, 1)
	var rows []EarlyExitRow
	for _, name := range selected {
		spec, err := uci.ByName(name)
		if err != nil {
			return nil, err
		}
		train, _, err := loadInjected(spec, o, o.W, data.GaussianModel)
		if err != nil {
			return nil, err
		}
		bst, err := boost.Train(train, boost.Config{
			Rounds:     rounds,
			Workers:    workers,
			TreeConfig: boost.WeakMemberConfig(o.treeConfig(split.ES)),
		})
		if err != nil {
			return nil, err
		}

		row := EarlyExitRow{
			Dataset:   spec.Name,
			Rounds:    rounds,
			Kept:      bst.NumTrees(),
			Match:     true,
			Histogram: make([]int, bst.StageCount()),
		}
		tuples := train.Tuples
		fullPreds := bst.PredictBatch(tuples, workers)
		earlyPreds, evaluated := bst.PredictBatchEarlyExit(tuples, workers)
		sum := 0
		for i := range tuples {
			if earlyPreds[i] != fullPreds[i] {
				row.Match = false
			}
			row.Histogram[evaluated[i]-1]++
			sum += evaluated[i]
		}
		row.MeanEvaluated = float64(sum) / float64(len(tuples))
		row.FullTput = throughput(train.Len(), func() { bst.PredictBatch(tuples, workers) })
		row.EarlyTput = throughput(train.Len(), func() { bst.PredictBatchEarlyExit(tuples, workers) })
		rows = append(rows, row)
	}
	return rows, nil
}

// FprintEarlyExit renders an EarlyExit run, one dataset per row plus its
// members-evaluated histogram.
func FprintEarlyExit(w io.Writer, rows []EarlyExitRow) {
	fmt.Fprintf(w, "%-14s %7s %5s %6s %10s %12s %13s %9s\n",
		"dataset", "rounds", "kept", "match", "mean eval", "full tup/s", "early tup/s", "speedup")
	for _, r := range rows {
		speedup := 0.0
		if r.FullTput > 0 {
			speedup = r.EarlyTput / r.FullTput
		}
		fmt.Fprintf(w, "%-14s %7d %5d %6v %10.2f %12.0f %13.0f %8.2fx\n",
			r.Dataset, r.Rounds, r.Kept, r.Match, r.MeanEvaluated, r.FullTput, r.EarlyTput, speedup)
	}
	for _, r := range rows {
		var sb strings.Builder
		for k, n := range r.Histogram {
			if k > 0 {
				sb.WriteByte(' ')
			}
			fmt.Fprintf(&sb, "%d:%d", k+1, n)
		}
		fmt.Fprintf(w, "%-14s members-evaluated histogram: %s\n", r.Dataset, sb.String())
	}
}
