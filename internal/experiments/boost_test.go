package experiments

import (
	"strings"
	"testing"
)

// TestBoostVsBagged pins the boosted ensemble's value proposition (the boost
// twin of TestForestVsTree): on at least one bundled dataset the boosted
// ensemble must beat the single-tree cross-validation accuracy under the
// identical protocol and folds, with sane vote weights and throughput.
func TestBoostVsBagged(t *testing.T) {
	opts := Options{Scale: 0.25, S: 40, Seed: 1, Folds: 5, Workers: 4, Datasets: []string{"Iris", "Glass"}}
	rows, err := BoostVsBagged(opts, 15, 25)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("got %d rows, want 2", len(rows))
	}
	beats := 0
	for _, r := range rows {
		if r.Rounds != 15 {
			t.Fatalf("%s: row reports %d rounds", r.Dataset, r.Rounds)
		}
		if r.Kept < 1 || r.Kept > 15 {
			t.Fatalf("%s: kept %d members of 15 rounds", r.Dataset, r.Kept)
		}
		if r.BoostAcc > r.TreeAcc {
			beats++
		}
		if !(r.AlphaRange[0] > 0) || r.AlphaRange[1] < r.AlphaRange[0] {
			t.Fatalf("%s: implausible alpha range %v", r.Dataset, r.AlphaRange)
		}
		if r.TreeTput <= 0 || r.BoostTput <= 0 {
			t.Fatalf("%s: non-positive throughput (%v, %v)", r.Dataset, r.TreeTput, r.BoostTput)
		}
	}
	if beats == 0 {
		for _, r := range rows {
			t.Logf("%s: tree %.4f bagged %.4f boosted %.4f", r.Dataset, r.TreeAcc, r.BaggedAcc, r.BoostAcc)
		}
		t.Fatal("the boosted ensemble beat the single tree on no dataset")
	}

	var sb strings.Builder
	FprintBoost(&sb, rows)
	out := sb.String()
	for _, want := range []string{"dataset", "Iris", "Glass", "boost acc", "alpha"} {
		if !strings.Contains(out, want) {
			t.Fatalf("rendered table missing %q:\n%s", want, out)
		}
	}
}

// TestBoostVsBaggedUnknownDataset surfaces filter typos instead of silently
// running nothing.
func TestBoostVsBaggedUnknownDataset(t *testing.T) {
	if _, err := BoostVsBagged(Options{Datasets: []string{"NoSuch"}}, 5, 5); err == nil {
		t.Fatal("unknown dataset accepted")
	}
}
