package experiments

import (
	"bytes"
	"strings"
	"testing"
)

// TestStreamPredictMatchesMaterialised: every streamed batch size must
// reproduce the whole-file predictions exactly and classify every tuple.
func TestStreamPredictMatchesMaterialised(t *testing.T) {
	opts := Options{Scale: 1, S: 8, W: 0.1, Seed: 1}
	rows, err := StreamPredict(opts, 400, []int{1, 64, 100, 1000})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("got %d rows, want 5 (baseline + 4 batch sizes)", len(rows))
	}
	for _, r := range rows {
		if !r.Match {
			t.Errorf("batch %d: predictions diverged from the materialised pass", r.Batch)
		}
		if r.Tuples != 400 {
			t.Errorf("batch %d: classified %d tuples, want 400", r.Batch, r.Tuples)
		}
		if r.Throughput <= 0 {
			t.Errorf("batch %d: throughput %v", r.Batch, r.Throughput)
		}
	}

	var buf bytes.Buffer
	FprintStream(&buf, rows)
	out := buf.String()
	if !strings.Contains(out, "whole") || !strings.Contains(out, "tuples/s") {
		t.Fatalf("FprintStream output:\n%s", out)
	}
}

func TestStreamPredictErrors(t *testing.T) {
	opts := Options{S: 4}
	if _, err := StreamPredict(opts, 50, nil); err == nil {
		t.Error("no batch sizes accepted")
	}
	if _, err := StreamPredict(opts, 50, []int{0}); err == nil {
		t.Error("batch size 0 accepted")
	}
}

// BenchmarkStreamPredict is the CI smoke for the streaming ingestion path:
// parse-from-CSV plus compiled batch classification at a fixed window size.
func BenchmarkStreamPredict(b *testing.B) {
	opts := Options{S: 16, W: 0.1, Seed: 1}
	for i := 0; i < b.N; i++ {
		rows, err := StreamPredict(opts, 2000, []int{512})
		if err != nil {
			b.Fatal(err)
		}
		if !rows[len(rows)-1].Match {
			b.Fatal("streamed predictions diverged")
		}
	}
}
