// Package experiments contains one driver per table/figure of the paper's
// evaluation (see the per-experiment index in DESIGN.md). Each driver
// returns structured rows and can render them in the layout the paper
// reports, so the cmd/udtbench harness and the repository benchmarks
// regenerate every artefact.
package experiments

import (
	"fmt"
	"io"
	"math"
	"math/rand"
	"time"

	"udt/internal/core"
	"udt/internal/data"
	"udt/internal/eval"
	"udt/internal/obs"
	"udt/internal/split"
	"udt/internal/uci"
)

// Options parameterises all experiment drivers.
type Options struct {
	Scale    float64  // dataset size scale in (0,1]; 1 = Table 2 sizes
	S        int      // sample points per pdf (paper default 100)
	W        float64  // pdf width fraction of attribute range (default 0.1)
	Seed     int64    // base RNG seed
	Folds    int      // cross-validation folds for datasets without test sets (default 10)
	Datasets []string // restrict to these dataset names; nil = all
	Measure  split.Measure
	MaxDepth int // optional tree depth cap to bound experiment cost

	Parallelism int // concurrent subtree builds; <= 1 means serial
	Workers     int // intra-node split-search workers; <= 1 means serial

	// Progress, when non-nil, observes every tree build an experiment runs
	// (udtbench -progress). Observational only — results are unchanged.
	Progress *obs.ProgressHook
}

// withDefaults fills the paper's default parameters.
func (o Options) withDefaults() Options {
	if o.Scale <= 0 || o.Scale > 1 {
		o.Scale = 1
	}
	if o.S <= 0 {
		o.S = 100
	}
	if o.W <= 0 {
		o.W = 0.10
	}
	if o.Folds < 2 {
		o.Folds = 10
	}
	return o
}

// wants reports whether the dataset is selected.
func (o Options) wants(name string) bool {
	if len(o.Datasets) == 0 {
		return true
	}
	for _, d := range o.Datasets {
		if d == name {
			return true
		}
	}
	return false
}

// treeConfig is the tree construction configuration shared by experiments:
// the paper's C4.5 framework with pre- and post-pruning (footnote 3).
func (o Options) treeConfig(strategy split.Strategy) core.Config {
	return core.Config{
		Measure:     o.Measure,
		Strategy:    strategy,
		PostPrune:   true,
		MaxDepth:    o.MaxDepth,
		Parallelism: o.Parallelism,
		Workers:     o.Workers,
		Progress:    o.Progress,
	}
}

// loadInjected generates the spec's point data and injects uncertainty.
// test is nil when the spec prescribes cross-validation.
func loadInjected(spec uci.Spec, o Options, w float64, model data.ErrorModel) (train, test *data.Dataset, err error) {
	if spec.RawSamples {
		return uci.Raw(spec, o.Scale, o.Seed)
	}
	ptsTrain, ptsTest, err := uci.Points(spec, o.Scale, o.Seed)
	if err != nil {
		return nil, nil, err
	}
	cfg := data.InjectConfig{W: w, S: o.S, Model: model}
	if train, err = data.Inject(ptsTrain, cfg); err != nil {
		return nil, nil, err
	}
	if ptsTest != nil {
		if test, err = data.Inject(ptsTest, cfg); err != nil {
			return nil, nil, err
		}
	}
	return train, test, nil
}

// evaluate runs the spec's protocol (train/test or k-fold CV) for both the
// AVG baseline and the UDT tree.
func evaluate(train, test *data.Dataset, o Options, strategy split.Strategy) (avg, udt eval.Result, err error) {
	cfg := o.treeConfig(strategy)
	if test != nil {
		if avg, err = eval.TrainTestAveraging(train, test, cfg); err != nil {
			return
		}
		udt, err = eval.TrainTest(train, test, cfg)
		return
	}
	rng := rand.New(rand.NewSource(o.Seed + 1))
	if avg, err = eval.CrossValidateAveraging(train, o.Folds, cfg, rng); err != nil {
		return
	}
	rng = rand.New(rand.NewSource(o.Seed + 1)) // identical folds for both
	udt, err = eval.CrossValidate(train, o.Folds, cfg, rng)
	return
}

// ---------------------------------------------------------------------------
// E2 — Table 2: dataset inventory.

// DatasetRow describes one Table 2 entry at the chosen scale.
type DatasetRow struct {
	Name     string
	Train    int
	Test     int
	Attrs    int
	Classes  int
	Protocol string
}

// DatasetTable reproduces Table 2 for the generated stand-ins.
func DatasetTable(o Options) []DatasetRow {
	o = o.withDefaults()
	var rows []DatasetRow
	for _, spec := range uci.Specs {
		if !o.wants(spec.Name) {
			continue
		}
		protocol := "train/test"
		if spec.Test == 0 {
			protocol = fmt.Sprintf("%d-fold CV", o.Folds)
		}
		rows = append(rows, DatasetRow{
			Name:     spec.Name,
			Train:    spec.Train,
			Test:     spec.Test,
			Attrs:    spec.Attrs,
			Classes:  spec.Classes,
			Protocol: protocol,
		})
	}
	return rows
}

// FprintDatasetTable renders Table 2.
func FprintDatasetTable(w io.Writer, rows []DatasetRow) {
	fmt.Fprintf(w, "%-15s %8s %8s %6s %8s  %s\n", "dataset", "train", "test", "attrs", "classes", "protocol")
	for _, r := range rows {
		test := "-"
		if r.Test > 0 {
			test = fmt.Sprint(r.Test)
		}
		fmt.Fprintf(w, "%-15s %8d %8s %6d %8d  %s\n", r.Name, r.Train, test, r.Attrs, r.Classes, r.Protocol)
	}
}

// ---------------------------------------------------------------------------
// E3 — Table 3: accuracy of AVG vs UDT across error models and widths.

// AccuracyRow is one (dataset, error model, w) cell of Table 3.
type AccuracyRow struct {
	Dataset string
	Model   data.ErrorModel
	W       float64 // 0 for the raw-sample dataset (uncertainty not synthetic)
	AVG     float64
	UDT     float64
	Raw     bool
}

// AccuracyTable reproduces Table 3: for every dataset, the AVG baseline and
// the UDT accuracy under Gaussian error models for each width in ws, plus
// uniform models for the integer-domain datasets (PenDigits, Vehicle,
// Satellite), and the raw-measurement JapaneseVowel row.
func AccuracyTable(o Options, ws []float64) ([]AccuracyRow, error) {
	o = o.withDefaults()
	if len(ws) == 0 {
		ws = []float64{0.01, 0.02, 0.05, 0.10, 0.20}
	}
	var rows []AccuracyRow
	for _, spec := range uci.Specs {
		if !o.wants(spec.Name) {
			continue
		}
		if spec.RawSamples {
			train, test, err := loadInjected(spec, o, 0, data.GaussianModel)
			if err != nil {
				return nil, err
			}
			avg, udt, err := evaluate(train, test, o, split.ES)
			if err != nil {
				return nil, err
			}
			rows = append(rows, AccuracyRow{Dataset: spec.Name, AVG: avg.Accuracy, UDT: udt.Accuracy, Raw: true})
			continue
		}
		models := []data.ErrorModel{data.GaussianModel}
		if spec.Integer {
			models = append(models, data.UniformModel)
		}
		for _, model := range models {
			for _, w := range ws {
				train, test, err := loadInjected(spec, o, w, model)
				if err != nil {
					return nil, err
				}
				avg, udt, err := evaluate(train, test, o, split.ES)
				if err != nil {
					return nil, err
				}
				rows = append(rows, AccuracyRow{
					Dataset: spec.Name, Model: model, W: w,
					AVG: avg.Accuracy, UDT: udt.Accuracy,
				})
			}
		}
	}
	return rows, nil
}

// FprintAccuracyTable renders Table 3: one line per (dataset, model, w)
// with the best UDT width starred per dataset/model group.
func FprintAccuracyTable(w io.Writer, rows []AccuracyRow) {
	fmt.Fprintf(w, "%-15s %-9s %6s %9s %9s %7s\n", "dataset", "model", "w", "AVG", "UDT", "delta")
	best := map[string]float64{}
	for _, r := range rows {
		key := r.Dataset + "/" + r.Model.String()
		if r.UDT > best[key] {
			best[key] = r.UDT
		}
	}
	for _, r := range rows {
		mark := " "
		if best[r.Dataset+"/"+r.Model.String()] == r.UDT {
			mark = "*"
		}
		wcol := fmt.Sprintf("%.0f%%", r.W*100)
		model := r.Model.String()
		if r.Raw {
			wcol, model = "raw", "samples"
		}
		fmt.Fprintf(w, "%-15s %-9s %6s %8.2f%% %8.2f%%%s %+6.2f%%\n",
			r.Dataset, model, wcol, r.AVG*100, r.UDT*100, mark, (r.UDT-r.AVG)*100)
	}
}

// ---------------------------------------------------------------------------
// E4 — Fig 4: controlled noise and the error-model hypothesis (Eq. 2).

// NoisePoint is one point of a Fig 4 curve: accuracy of the tree built with
// uncertainty width W on data perturbed with noise level U. W = 0 is the
// AVG baseline of the figure.
type NoisePoint struct {
	U, W     float64
	Accuracy float64
	Model    bool // point on the Eq. (2) "model" curve
}

// NoiseModel reproduces Fig 4 on the named dataset: for each perturbation
// level u, the point data is perturbed with Gaussian noise of deviation
// u·|A_j|/4 and then uncertainty of width w is injected; UDT accuracy is
// reported for every (u, w). Finally the Eq. (2) model curve
// w² = w₀² + u² is traced using the best width at u = 0 as w₀.
func NoiseModel(o Options, dataset string, us, ws []float64) ([]NoisePoint, error) {
	o = o.withDefaults()
	spec, err := uci.ByName(dataset)
	if err != nil {
		return nil, err
	}
	if spec.RawSamples {
		return nil, fmt.Errorf("experiments: %s carries raw uncertainty; Fig 4 excludes it", dataset)
	}
	if len(us) == 0 {
		us = []float64{0, 0.025, 0.05, 0.10}
	}
	if len(ws) == 0 {
		ws = []float64{0, 0.01, 0.02, 0.05, 0.10, 0.15, 0.20}
	}
	ptsTrain, ptsTest, err := uci.Points(spec, o.Scale, o.Seed)
	if err != nil {
		return nil, err
	}
	run := func(u, w float64) (float64, error) {
		rng := rand.New(rand.NewSource(o.Seed + int64(u*10000)))
		train := ptsTrain.Perturb(u, rng)
		var test *data.Points
		if ptsTest != nil {
			test = ptsTest.Perturb(u, rng)
		}
		cfgInj := data.InjectConfig{W: w, S: o.S, Model: data.GaussianModel}
		trainDS, err := data.Inject(train, cfgInj)
		if err != nil {
			return 0, err
		}
		var testDS *data.Dataset
		if test != nil {
			if testDS, err = data.Inject(test, cfgInj); err != nil {
				return 0, err
			}
		}
		cfg := o.treeConfig(split.ES)
		if testDS != nil {
			r, err := eval.TrainTest(trainDS, testDS, cfg)
			return r.Accuracy, err
		}
		r, err := eval.CrossValidate(trainDS, o.Folds, cfg, rand.New(rand.NewSource(o.Seed+7)))
		return r.Accuracy, err
	}
	var points []NoisePoint
	bestW0, bestAcc0 := 0.0, -1.0
	for _, u := range us {
		for _, w := range ws {
			acc, err := run(u, w)
			if err != nil {
				return nil, err
			}
			points = append(points, NoisePoint{U: u, W: w, Accuracy: acc})
			if u == 0 && acc > bestAcc0 {
				bestAcc0, bestW0 = acc, w
			}
		}
	}
	// Model curve: w(u) = sqrt(w0² + u²) per Eq. (2).
	for _, u := range us {
		wModel := sqrtSum(bestW0, u)
		acc, err := run(u, wModel)
		if err != nil {
			return nil, err
		}
		points = append(points, NoisePoint{U: u, W: wModel, Accuracy: acc, Model: true})
	}
	return points, nil
}

// sqrtSum returns sqrt(a² + b²), the Eq. (2) width combination.
func sqrtSum(a, b float64) float64 {
	return math.Hypot(a, b)
}

// FprintNoiseModel renders the Fig 4 series grouped by u.
func FprintNoiseModel(w io.Writer, points []NoisePoint) {
	fmt.Fprintf(w, "%6s %8s %9s %s\n", "u", "w", "accuracy", "curve")
	for _, p := range points {
		curve := fmt.Sprintf("u=%.1f%%", p.U*100)
		if p.Model {
			curve = "model"
		}
		fmt.Fprintf(w, "%5.1f%% %7.1f%% %8.2f%% %s\n", p.U*100, p.W*100, p.Accuracy*100, curve)
	}
}

// ---------------------------------------------------------------------------
// E5/E6 — Figs 6-7: execution time and pruning effectiveness.

// Algorithms lists the six bars of Figs 6-7 in the paper's order.
var Algorithms = []string{"AVG", "UDT", "UDT-BP", "UDT-LP", "UDT-GP", "UDT-ES"}

// EfficiencyRow is one bar: construction cost of one algorithm on one
// dataset.
type EfficiencyRow struct {
	Dataset      string
	Algorithm    string
	BuildTime    time.Duration
	EntropyCalcs int64 // split evaluations + bound computations (§6.2)
}

// Efficiency reproduces Figs 6 and 7: every dataset × {AVG, UDT, UDT-BP,
// UDT-LP, UDT-GP, UDT-ES}, recording wall-clock build time and the number
// of entropy calculations. Uncertainty: Gaussian, w = Options.W, s =
// Options.S (the paper's baseline w=10%, s=100).
func Efficiency(o Options) ([]EfficiencyRow, error) {
	o = o.withDefaults()
	var rows []EfficiencyRow
	for _, spec := range uci.Specs {
		if !o.wants(spec.Name) {
			continue
		}
		train, _, err := loadInjected(spec, o, o.W, data.GaussianModel)
		if err != nil {
			return nil, err
		}
		for _, algo := range Algorithms {
			var (
				tree *core.Tree
				err  error
			)
			start := time.Now()
			switch algo {
			case "AVG":
				tree, err = core.BuildAveraging(train, o.treeConfig(split.UDT))
			default:
				tree, err = core.Build(train, o.treeConfig(strategyOf(algo)))
			}
			if err != nil {
				return nil, err
			}
			rows = append(rows, EfficiencyRow{
				Dataset:      spec.Name,
				Algorithm:    algo,
				BuildTime:    time.Since(start),
				EntropyCalcs: tree.Stats.Search.EntropyCalcs(),
			})
		}
	}
	return rows, nil
}

func strategyOf(algo string) split.Strategy {
	switch algo {
	case "UDT-BP":
		return split.BP
	case "UDT-LP":
		return split.LP
	case "UDT-GP":
		return split.GP
	case "UDT-ES":
		return split.ES
	default:
		return split.UDT
	}
}

// FprintEfficiency renders Fig 6 (seconds) and Fig 7 (entropy
// calculations) side by side.
func FprintEfficiency(w io.Writer, rows []EfficiencyRow) {
	fmt.Fprintf(w, "%-15s %-8s %12s %15s %9s\n", "dataset", "algo", "build", "entropy calcs", "vs UDT")
	base := map[string]int64{}
	for _, r := range rows {
		if r.Algorithm == "UDT" {
			base[r.Dataset] = r.EntropyCalcs
		}
	}
	for _, r := range rows {
		rel := "-"
		if b := base[r.Dataset]; b > 0 && r.Algorithm != "AVG" {
			rel = fmt.Sprintf("%.2f%%", float64(r.EntropyCalcs)/float64(b)*100)
		}
		fmt.Fprintf(w, "%-15s %-8s %12s %15d %9s\n",
			r.Dataset, r.Algorithm, r.BuildTime.Round(time.Microsecond), r.EntropyCalcs, rel)
	}
}

// ---------------------------------------------------------------------------
// E7/E8 — Figs 8-9: sensitivity of UDT-ES to s and w.

// SweepPoint is one point of a Fig 8/9 curve.
type SweepPoint struct {
	Dataset      string
	X            float64 // s (Fig 8) or w (Fig 9)
	BuildTime    time.Duration
	EntropyCalcs int64
}

// SSweep reproduces Fig 8: UDT-ES build time as the pdf sample count s
// varies (the raw-sample dataset is excluded as in the paper).
func SSweep(o Options, ss []int) ([]SweepPoint, error) {
	o = o.withDefaults()
	if len(ss) == 0 {
		ss = []int{50, 100, 150, 200}
	}
	var points []SweepPoint
	for _, spec := range uci.Specs {
		if !o.wants(spec.Name) || spec.RawSamples {
			continue
		}
		for _, s := range ss {
			oo := o
			oo.S = s
			train, _, err := loadInjected(spec, oo, oo.W, data.GaussianModel)
			if err != nil {
				return nil, err
			}
			start := time.Now()
			tree, err := core.Build(train, oo.treeConfig(split.ES))
			if err != nil {
				return nil, err
			}
			points = append(points, SweepPoint{
				Dataset:      spec.Name,
				X:            float64(s),
				BuildTime:    time.Since(start),
				EntropyCalcs: tree.Stats.Search.EntropyCalcs(),
			})
		}
	}
	return points, nil
}

// WSweep reproduces Fig 9: UDT-ES build time as the pdf width w varies.
func WSweep(o Options, ws []float64) ([]SweepPoint, error) {
	o = o.withDefaults()
	if len(ws) == 0 {
		ws = []float64{0.01, 0.05, 0.10, 0.15, 0.20}
	}
	var points []SweepPoint
	for _, spec := range uci.Specs {
		if !o.wants(spec.Name) || spec.RawSamples {
			continue
		}
		for _, w := range ws {
			train, _, err := loadInjected(spec, o, w, data.GaussianModel)
			if err != nil {
				return nil, err
			}
			start := time.Now()
			tree, err := core.Build(train, o.treeConfig(split.ES))
			if err != nil {
				return nil, err
			}
			points = append(points, SweepPoint{
				Dataset:      spec.Name,
				X:            w,
				BuildTime:    time.Since(start),
				EntropyCalcs: tree.Stats.Search.EntropyCalcs(),
			})
		}
	}
	return points, nil
}

// FprintSweep renders a Fig 8/9 curve table.
func FprintSweep(w io.Writer, label string, points []SweepPoint) {
	fmt.Fprintf(w, "%-15s %8s %12s %15s\n", "dataset", label, "build", "entropy calcs")
	for _, p := range points {
		fmt.Fprintf(w, "%-15s %8.3g %12s %15d\n",
			p.Dataset, p.X, p.BuildTime.Round(time.Microsecond), p.EntropyCalcs)
	}
}

// ---------------------------------------------------------------------------
// E10 — §7.5: pruning applied to point data.

// PointDataRow compares split-search work on point-valued data.
type PointDataRow struct {
	Algorithm    string
	BuildTime    time.Duration
	EntropyCalcs int64
	Accuracy     float64
}

// PointData demonstrates §7.5: on a large point-valued dataset (s = 1,
// w = 0) the bounding and end-point-sampling techniques still prune split
// candidates relative to the exhaustive search.
func PointData(o Options, dataset string) ([]PointDataRow, error) {
	o = o.withDefaults()
	spec, err := uci.ByName(dataset)
	if err != nil {
		return nil, err
	}
	if spec.RawSamples {
		return nil, fmt.Errorf("experiments: point-data experiment needs a point dataset")
	}
	ptsTrain, ptsTest, err := uci.Points(spec, o.Scale, o.Seed)
	if err != nil {
		return nil, err
	}
	train, err := data.Inject(ptsTrain, data.InjectConfig{W: 0, S: 1})
	if err != nil {
		return nil, err
	}
	var test *data.Dataset
	if ptsTest != nil {
		if test, err = data.Inject(ptsTest, data.InjectConfig{W: 0, S: 1}); err != nil {
			return nil, err
		}
	} else {
		test = train
	}
	var rows []PointDataRow
	for _, algo := range []string{"UDT", "UDT-GP", "UDT-ES"} {
		start := time.Now()
		tree, err := core.Build(train, o.treeConfig(strategyOf(algo)))
		if err != nil {
			return nil, err
		}
		rows = append(rows, PointDataRow{
			Algorithm:    algo,
			BuildTime:    time.Since(start),
			EntropyCalcs: tree.Stats.Search.EntropyCalcs(),
			Accuracy:     eval.Accuracy(tree, test),
		})
	}
	return rows, nil
}

// FprintPointData renders the §7.5 comparison.
func FprintPointData(w io.Writer, rows []PointDataRow) {
	fmt.Fprintf(w, "%-8s %12s %15s %9s\n", "algo", "build", "entropy calcs", "accuracy")
	for _, r := range rows {
		fmt.Fprintf(w, "%-8s %12s %15d %8.2f%%\n",
			r.Algorithm, r.BuildTime.Round(time.Microsecond), r.EntropyCalcs, r.Accuracy*100)
	}
}
