package experiments

import (
	"fmt"
	"io"
	"time"

	"udt/internal/split"
)

// SpeedupRow is one measured worker count of a SplitSpeedup run.
type SpeedupRow struct {
	Workers int
	Time    time.Duration
	Calcs   int64   // Stats.EntropyCalcs() of the search
	Speedup float64 // serial time / this row's time
	Match   bool    // result identical to the serial search
}

// SplitSpeedup measures the intra-node parallel split search (the Workers
// knob) on the root node of a synthetic uncertain dataset of the given size
// — the node where every tuple and attribute is scanned, dominating build
// cost. For each worker count it reports wall time, the paper's
// entropy-calculation cost metric (pruning power must not degrade), and
// whether the returned split is identical to the serial one (it must be;
// the parallel search is deterministic). Speedup beyond 1 requires multiple
// CPUs.
func SplitSpeedup(o Options, strategy split.Strategy, workerCounts []int, tuples int) ([]SpeedupRow, error) {
	o = o.withDefaults()
	if tuples <= 0 {
		tuples = 10000
	}
	if len(workerCounts) == 0 {
		return nil, fmt.Errorf("experiments: no worker counts given")
	}
	ds, err := syntheticClusters(o, "speedup-synthetic", tuples)
	if err != nil {
		return nil, err
	}
	attrs, classes := len(ds.NumAttrs), len(ds.Classes)

	// The serial reference supplies both the result-identity oracle and
	// the speedup baseline, independent of which worker counts follow.
	cfg := split.Config{Measure: o.Measure, Strategy: strategy}
	start := time.Now()
	serial := split.NewFinder(cfg).Best(ds.Tuples, attrs, classes)
	serialTime := max(time.Since(start), time.Nanosecond)

	rows := make([]SpeedupRow, 0, len(workerCounts))
	for _, w := range workerCounts {
		wcfg := cfg
		wcfg.Workers = w
		f := split.NewFinder(wcfg)
		start := time.Now()
		res := f.Best(ds.Tuples, attrs, classes)
		elapsed := max(time.Since(start), time.Nanosecond)
		rows = append(rows, SpeedupRow{
			Workers: w,
			Time:    elapsed,
			Calcs:   f.Stats().EntropyCalcs(),
			Speedup: float64(serialTime) / float64(elapsed),
			Match:   res == serial,
		})
	}
	return rows, nil
}

// FprintSpeedup renders a SplitSpeedup run.
func FprintSpeedup(w io.Writer, strategy split.Strategy, tuples int, rows []SpeedupRow) {
	fmt.Fprintf(w, "%s root split search, %d tuples\n", strategy, tuples)
	fmt.Fprintf(w, "%8s %14s %12s %9s %6s\n", "workers", "time", "calcs", "speedup", "same")
	for _, r := range rows {
		fmt.Fprintf(w, "%8d %14v %12d %8.2fx %6v\n",
			r.Workers, r.Time.Round(time.Microsecond), r.Calcs, r.Speedup, r.Match)
	}
}
