package experiments

import (
	"bytes"
	"fmt"
	"io"
	"math/rand"
	"time"

	"udt/internal/core"
	"udt/internal/data"
	"udt/internal/split"
)

// StreamRow is one measured batch size of a StreamPredict run.
type StreamRow struct {
	Batch      int           // tuples resident at a time (0 = materialised whole-file baseline)
	Tuples     int           // tuples classified
	Time       time.Duration // parse + classify wall time
	Throughput float64       // tuples per second
	Match      bool          // predictions identical to the materialised pass
}

// syntheticClusters builds the Gaussian-cluster uncertain dataset the
// streaming and speedup experiments share: four attributes, three classes,
// cluster centres 1.5 apart with unit Gaussian spread, then uncertainty
// injected per the options.
func syntheticClusters(o Options, name string, tuples int) (*data.Dataset, error) {
	const attrs, classes = 4, 3
	rng := rand.New(rand.NewSource(o.Seed))
	pts := &data.Points{
		Name:    name,
		Attrs:   make([]string, attrs),
		Classes: make([]string, classes),
		Rows:    make([][]float64, tuples),
		Labels:  make([]int, tuples),
	}
	for j := range pts.Attrs {
		pts.Attrs[j] = fmt.Sprintf("a%d", j)
	}
	for c := range pts.Classes {
		pts.Classes[c] = fmt.Sprintf("c%d", c)
	}
	for i := range pts.Rows {
		c := rng.Intn(classes)
		row := make([]float64, attrs)
		for j := range row {
			row[j] = float64(c)*1.5 + rng.NormFloat64()
		}
		pts.Rows[i] = row
		pts.Labels[i] = c
	}
	return data.Inject(pts, data.InjectConfig{W: o.W, S: o.S, Model: data.GaussianModel})
}

// StreamPredict measures the streaming ingestion pipeline end to end — the
// udtree predict path: CSVSource → CollectChunked → compiled PredictBatch —
// against the materialised whole-file pass. A synthetic uncertain dataset is
// rendered to CSV once; the baseline row (Batch = 0) parses and classifies
// it in one piece, then each batch size re-parses the same bytes keeping
// only one window of tuples resident. Every streamed pass must reproduce the
// baseline predictions exactly (Match).
func StreamPredict(o Options, tuples int, batches []int) ([]StreamRow, error) {
	o = o.withDefaults()
	if tuples <= 0 {
		tuples = 10000
	}
	if len(batches) == 0 {
		return nil, fmt.Errorf("experiments: no batch sizes given")
	}
	ds, err := syntheticClusters(o, "stream-synthetic", tuples)
	if err != nil {
		return nil, err
	}
	// A depth cap keeps the model small: the experiment measures ingestion,
	// not tree quality.
	cfg := o.treeConfig(split.ES)
	if cfg.MaxDepth == 0 {
		cfg.MaxDepth = 6
	}
	tree, err := core.Build(ds, cfg)
	if err != nil {
		return nil, err
	}
	compiled, err := tree.Compile()
	if err != nil {
		return nil, err
	}
	var csvBuf bytes.Buffer
	if err := data.WriteCSV(&csvBuf, ds); err != nil {
		return nil, err
	}
	workers := o.Workers
	if workers < 1 {
		workers = 1
	}

	// Materialised baseline: whole file resident, one batch call.
	start := time.Now()
	whole, err := data.ReadCSV(bytes.NewReader(csvBuf.Bytes()), "stream")
	if err != nil {
		return nil, err
	}
	oracle := compiled.PredictBatch(whole.Tuples, workers)
	baseTime := max(time.Since(start), time.Nanosecond)
	rows := []StreamRow{{
		Batch:      0,
		Tuples:     len(oracle),
		Time:       baseTime,
		Throughput: float64(len(oracle)) / baseTime.Seconds(),
		Match:      true,
	}}

	for _, batch := range batches {
		if batch < 1 {
			return nil, fmt.Errorf("experiments: batch size %d out of range", batch)
		}
		src, err := data.NewCSVSource(bytes.NewReader(csvBuf.Bytes()), "stream")
		if err != nil {
			return nil, err
		}
		n, match := 0, true
		start := time.Now()
		err = data.CollectChunked(src, batch, func(chunk *data.Dataset) error {
			for i, p := range compiled.PredictBatch(chunk.Tuples, workers) {
				if p != oracle[n+i] {
					match = false
				}
			}
			n += chunk.Len()
			return nil
		})
		if err != nil {
			return nil, err
		}
		elapsed := max(time.Since(start), time.Nanosecond)
		rows = append(rows, StreamRow{
			Batch:      batch,
			Tuples:     n,
			Time:       elapsed,
			Throughput: float64(n) / elapsed.Seconds(),
			Match:      match && n == len(oracle),
		})
	}
	return rows, nil
}

// FprintStream renders a StreamPredict run.
func FprintStream(w io.Writer, rows []StreamRow) {
	fmt.Fprintf(w, "%10s %8s %14s %14s %6s\n", "batch", "tuples", "time", "tuples/s", "same")
	for _, r := range rows {
		batch := "whole"
		if r.Batch > 0 {
			batch = fmt.Sprint(r.Batch)
		}
		fmt.Fprintf(w, "%10s %8d %14v %14.0f %6v\n",
			batch, r.Tuples, r.Time.Round(time.Microsecond), r.Throughput, r.Match)
	}
}
