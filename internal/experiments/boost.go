package experiments

import (
	"fmt"
	"io"
	"math/rand"
	"slices"
	"time"

	"udt/internal/boost"
	"udt/internal/core"
	"udt/internal/data"
	"udt/internal/eval"
	"udt/internal/forest"
	"udt/internal/split"
	"udt/internal/uci"
)

// BoostRow is one dataset of a BoostVsBagged run: single tree, bagged forest
// and boosted ensemble accuracy under the same protocol on identical folds,
// plus the boosted ensemble's shape and batch inference throughput.
type BoostRow struct {
	Dataset    string
	Rounds     int     // configured boosting rounds
	Kept       int     // members the final full-train ensemble kept (early stopping)
	TreeAcc    float64 // single UDT tree accuracy (CV or train/test per spec)
	BaggedAcc  float64 // bagged forest accuracy under the same protocol
	BoostAcc   float64 // boosted ensemble accuracy under the same protocol
	TreeTput   float64 // tuples/s, compiled single tree, batch inference
	BoostTput  float64 // tuples/s, compiled boosted ensemble, batch inference
	BuildTime  time.Duration
	AlphaRange [2]float64 // min and max member vote weight of the full-train ensemble
}

// boostDefaults lists the datasets the boost experiment runs when no
// -datasets filter is given.
var boostDefaults = []string{"Iris", "Glass", "Vehicle", "Segment"}

// BoostVsBagged compares a boosted weighted ensemble against the bagged
// forest and the single UDT tree on the bundled datasets, under the paper's
// protocol (train/test or k-fold CV) on identical folds for all three
// models. workers bounds training and inference concurrency without
// affecting any result.
func BoostVsBagged(o Options, rounds, trees int) ([]BoostRow, error) {
	o = o.withDefaults()
	if rounds <= 0 {
		rounds = 10
	}
	if trees <= 0 {
		trees = 25
	}
	selected := o.Datasets
	if len(selected) == 0 {
		selected = boostDefaults
	}
	var rows []BoostRow
	for _, name := range selected {
		spec, err := uci.ByName(name)
		if err != nil {
			return nil, err
		}
		train, test, err := loadInjected(spec, o, o.W, data.GaussianModel)
		if err != nil {
			return nil, err
		}
		treeCfg := o.treeConfig(split.ES)
		bagMemberCfg := treeCfg
		bagMemberCfg.Parallelism = 1
		bagMemberCfg.PostPrune = false
		fCfg := forest.Config{
			Trees:      trees,
			Seed:       o.Seed,
			Workers:    max(o.Parallelism, 1),
			TreeConfig: bagMemberCfg,
		}
		bCfg := boost.Config{
			Rounds:     rounds,
			Workers:    max(o.Workers, 1),
			TreeConfig: boost.WeakMemberConfig(treeCfg),
		}

		row := BoostRow{Dataset: spec.Name, Rounds: rounds}
		if test != nil {
			tr, err := eval.TrainTest(train, test, treeCfg)
			if err != nil {
				return nil, err
			}
			fr, err := eval.ForestTrainTest(train, test, fCfg)
			if err != nil {
				return nil, err
			}
			br, err := eval.BoostTrainTest(train, test, bCfg)
			if err != nil {
				return nil, err
			}
			row.TreeAcc, row.BaggedAcc, row.BoostAcc, row.BuildTime = tr.Accuracy, fr.Accuracy, br.Accuracy, br.BuildTime
		} else {
			// Identical folds for all three protocols: same rng seed, same
			// deal order.
			tr, err := eval.CrossValidate(train, o.Folds, treeCfg, rand.New(rand.NewSource(o.Seed+1)))
			if err != nil {
				return nil, err
			}
			fr, err := eval.ForestCrossValidate(train, o.Folds, fCfg, rand.New(rand.NewSource(o.Seed+1)))
			if err != nil {
				return nil, err
			}
			br, err := eval.BoostCrossValidate(train, o.Folds, bCfg, rand.New(rand.NewSource(o.Seed+1)))
			if err != nil {
				return nil, err
			}
			row.TreeAcc, row.BaggedAcc, row.BoostAcc, row.BuildTime = tr.Accuracy, fr.Accuracy, br.Accuracy, br.BuildTime
		}

		// Ensemble shape and throughput come from models over the full
		// training set — the models a production trainer would ship.
		bst, err := boost.Train(train, bCfg)
		if err != nil {
			return nil, err
		}
		row.Kept = bst.NumTrees()
		ws := bst.Weights()
		row.AlphaRange = [2]float64{slices.Min(ws), slices.Max(ws)}
		tree, err := core.Build(train, treeCfg)
		if err != nil {
			return nil, err
		}
		compiled, err := tree.Compile()
		if err != nil {
			return nil, err
		}
		workers := max(o.Workers, 1)
		row.TreeTput = throughput(train.Len(), func() { compiled.PredictBatch(train.Tuples, workers) })
		row.BoostTput = throughput(train.Len(), func() { bst.PredictBatch(train.Tuples, workers) })
		rows = append(rows, row)
	}
	return rows, nil
}

// FprintBoost renders a BoostVsBagged run.
func FprintBoost(w io.Writer, rows []BoostRow) {
	fmt.Fprintf(w, "%-14s %7s %5s %9s %11s %10s %13s %12s %13s %10s\n",
		"dataset", "rounds", "kept", "tree acc", "bagged acc", "boost acc", "alpha range", "tree tup/s", "boost tup/s", "build")
	for _, r := range rows {
		fmt.Fprintf(w, "%-14s %7d %5d %8.2f%% %10.2f%% %9.2f%% %6.2f-%5.2f %12.0f %13.0f %10v\n",
			r.Dataset, r.Rounds, r.Kept, r.TreeAcc*100, r.BaggedAcc*100, r.BoostAcc*100,
			r.AlphaRange[0], r.AlphaRange[1], r.TreeTput, r.BoostTput, r.BuildTime.Round(time.Millisecond))
	}
}
