package experiments

import (
	"fmt"
	"io"
	"time"

	"udt/internal/core"
	"udt/internal/data"
	"udt/internal/split"
	"udt/internal/uci"
)

// Ablation studies for the design choices DESIGN.md calls out: the UDT-ES
// end-point sample fraction (the paper fixes 10% after experimentation,
// §5.3) and the §7.3 percentile end-point mode.

// AblationRow is one configuration of an ablation sweep.
type AblationRow struct {
	Label        string
	BuildTime    time.Duration
	EntropyCalcs int64
	Nodes        int
}

// ESFractionAblation sweeps the UDT-ES end-point sample fraction on one
// dataset. Too small a fraction weakens the phase-1 threshold (more coarse
// intervals survive); too large a fraction degenerates toward UDT-GP's end
// point count. The resulting tree is identical in every configuration.
func ESFractionAblation(o Options, dataset string, fracs []float64) ([]AblationRow, error) {
	o = o.withDefaults()
	if len(fracs) == 0 {
		fracs = []float64{0.02, 0.05, 0.10, 0.20, 0.50}
	}
	spec, err := uci.ByName(dataset)
	if err != nil {
		return nil, err
	}
	train, _, err := loadInjected(spec, o, o.W, data.GaussianModel)
	if err != nil {
		return nil, err
	}
	var rows []AblationRow
	for _, frac := range fracs {
		cfg := o.treeConfig(split.ES)
		cfg.EndPointFrac = frac
		start := time.Now()
		tree, err := core.Build(train, cfg)
		if err != nil {
			return nil, err
		}
		rows = append(rows, AblationRow{
			Label:        fmt.Sprintf("frac=%.0f%%", frac*100),
			BuildTime:    time.Since(start),
			EntropyCalcs: tree.Stats.Search.EntropyCalcs(),
			Nodes:        tree.Stats.Nodes,
		})
	}
	return rows, nil
}

// EndPointModeAblation compares domain end points (§5.1) against the §7.3
// percentile artificial end points under UDT-GP, for narrow and wide pdfs.
func EndPointModeAblation(o Options, dataset string) ([]AblationRow, error) {
	o = o.withDefaults()
	spec, err := uci.ByName(dataset)
	if err != nil {
		return nil, err
	}
	var rows []AblationRow
	for _, w := range []float64{o.W, o.W * 4} {
		train, _, err := loadInjected(spec, o, w, data.GaussianModel)
		if err != nil {
			return nil, err
		}
		for _, mode := range []split.EndPointMode{split.DomainEnds, split.PercentileEnds} {
			cfg := o.treeConfig(split.GP)
			cfg.EndPoints = mode
			start := time.Now()
			tree, err := core.Build(train, cfg)
			if err != nil {
				return nil, err
			}
			rows = append(rows, AblationRow{
				Label:        fmt.Sprintf("w=%.0f%% ends=%v", w*100, mode),
				BuildTime:    time.Since(start),
				EntropyCalcs: tree.Stats.Search.EntropyCalcs(),
				Nodes:        tree.Stats.Nodes,
			})
		}
	}
	return rows, nil
}

// FprintAblation renders an ablation table.
func FprintAblation(w io.Writer, rows []AblationRow) {
	fmt.Fprintf(w, "%-24s %12s %15s %7s\n", "config", "build", "entropy calcs", "nodes")
	for _, r := range rows {
		fmt.Fprintf(w, "%-24s %12s %15d %7d\n",
			r.Label, r.BuildTime.Round(time.Microsecond), r.EntropyCalcs, r.Nodes)
	}
}
