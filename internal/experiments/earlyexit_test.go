package experiments

import (
	"strings"
	"testing"
)

// TestEarlyExit pins the tentpole's value proposition: on the bundled
// datasets, early-exit inference must agree with full evaluation on every
// tuple (the margin bound is a guarantee, not a heuristic) while evaluating
// strictly fewer members than the full ensemble on average.
func TestEarlyExit(t *testing.T) {
	opts := Options{Scale: 0.25, S: 40, Seed: 1, Workers: 4, Datasets: []string{"Iris", "Glass"}}
	rows, err := EarlyExit(opts, 15)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("got %d rows, want 2", len(rows))
	}
	for _, r := range rows {
		if !r.Match {
			t.Fatalf("%s: early exit changed a prediction", r.Dataset)
		}
		if r.Kept < 1 || r.Kept > 15 {
			t.Fatalf("%s: kept %d members of 15 rounds", r.Dataset, r.Kept)
		}
		if len(r.Histogram) != r.Kept {
			t.Fatalf("%s: histogram has %d stages, ensemble %d", r.Dataset, len(r.Histogram), r.Kept)
		}
		if r.MeanEvaluated < 1 || r.MeanEvaluated > float64(r.Kept) {
			t.Fatalf("%s: mean members evaluated %.3f of %d", r.Dataset, r.MeanEvaluated, r.Kept)
		}
		// The early-exit payoff: on ensembles with more than one member, the
		// mean must be strictly below the full ensemble size.
		if r.Kept > 1 && !(r.MeanEvaluated < float64(r.Kept)) {
			t.Fatalf("%s: early exit never fired (mean %.3f of %d members)", r.Dataset, r.MeanEvaluated, r.Kept)
		}
		total := 0
		for _, n := range r.Histogram {
			total += n
		}
		if total == 0 {
			t.Fatalf("%s: empty members-evaluated histogram", r.Dataset)
		}
		if r.FullTput <= 0 || r.EarlyTput <= 0 {
			t.Fatalf("%s: non-positive throughput (%v, %v)", r.Dataset, r.FullTput, r.EarlyTput)
		}
	}

	var sb strings.Builder
	FprintEarlyExit(&sb, rows)
	out := sb.String()
	for _, want := range []string{"dataset", "Iris", "Glass", "mean eval", "members-evaluated histogram"} {
		if !strings.Contains(out, want) {
			t.Fatalf("rendered table missing %q:\n%s", want, out)
		}
	}
}

// TestEarlyExitUnknownDataset surfaces filter typos instead of silently
// running nothing.
func TestEarlyExitUnknownDataset(t *testing.T) {
	if _, err := EarlyExit(Options{Datasets: []string{"NoSuch"}}, 5); err == nil {
		t.Fatal("unknown dataset accepted")
	}
}
