package experiments

import (
	"strings"
	"testing"
)

// TestForestVsTree pins the ensemble's value proposition: on at least one
// bundled dataset, a 25-tree bagged forest must beat the single-tree
// cross-validation accuracy under the identical protocol and folds. It also
// sanity-checks the reported OOB and throughput numbers.
func TestForestVsTree(t *testing.T) {
	opts := Options{Scale: 0.25, S: 40, Seed: 1, Folds: 5, Workers: 4, Datasets: []string{"Iris", "Glass"}}
	rows, err := ForestVsTree(opts, 25)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("got %d rows, want 2", len(rows))
	}
	beats := 0
	for _, r := range rows {
		if r.Trees != 25 {
			t.Fatalf("%s: row reports %d trees", r.Dataset, r.Trees)
		}
		if r.ForestAcc > r.TreeAcc {
			beats++
		}
		if r.OOBAcc <= 0 || r.OOBAcc > 1 {
			t.Fatalf("%s: OOB accuracy %v implausible", r.Dataset, r.OOBAcc)
		}
		if r.OOBBrier < 0 || r.OOBBrier > 2 {
			t.Fatalf("%s: OOB Brier %v implausible", r.Dataset, r.OOBBrier)
		}
		if r.TreeTput <= 0 || r.ForestTput <= 0 {
			t.Fatalf("%s: non-positive throughput (%v, %v)", r.Dataset, r.TreeTput, r.ForestTput)
		}
	}
	if beats == 0 {
		for _, r := range rows {
			t.Logf("%s: tree %.4f forest %.4f", r.Dataset, r.TreeAcc, r.ForestAcc)
		}
		t.Fatal("the 25-tree forest beat the single tree on no dataset")
	}

	var sb strings.Builder
	FprintForest(&sb, rows)
	out := sb.String()
	for _, want := range []string{"dataset", "Iris", "Glass", "OOB"} {
		if !strings.Contains(out, want) {
			t.Fatalf("rendered table missing %q:\n%s", want, out)
		}
	}
}

// TestForestVsTreeUnknownDataset surfaces filter typos instead of silently
// running nothing.
func TestForestVsTreeUnknownDataset(t *testing.T) {
	if _, err := ForestVsTree(Options{Datasets: []string{"NoSuch"}}, 5); err == nil {
		t.Fatal("unknown dataset accepted")
	}
}
