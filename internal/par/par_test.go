package par

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
)

func TestArgmax(t *testing.T) {
	cases := []struct {
		in   []float64
		want int
	}{
		{[]float64{1}, 0},
		{[]float64{0.2, 0.8}, 1},
		{[]float64{0.5, 0.5}, 0},           // ties break low
		{[]float64{0.1, 0.7, 0.7, 0.2}, 1}, // first maximum wins
		{[]float64{-3, -1, -2}, 1},
	}
	for _, c := range cases {
		if got := Argmax(c.in); got != c.want {
			t.Errorf("Argmax(%v) = %d, want %d", c.in, got, c.want)
		}
	}
}

// TestForEachCoversRange: every index must be visited exactly once at any
// worker count, including counts far beyond the item count.
func TestForEachCoversRange(t *testing.T) {
	// Adversarial sizes: empty, singleton, smaller than the worker count,
	// exactly one grain, one over a grain boundary, primes that divide
	// evenly into nothing, and a many-grain bulk case.
	for _, workers := range []int{0, 1, 2, 3, 8, 100} {
		for _, n := range []int{0, 1, 5, 7, 13, 61, 97, BatchGrain - 1, BatchGrain, BatchGrain + 1, 641, 1009, 10 * BatchGrain} {
			visits := make([]atomic.Int64, n)
			ForEach(n, workers,
				func() struct{} { return struct{}{} },
				func(i int, _ struct{}) { visits[i].Add(1) },
				func(struct{}) {})
			for i := range visits {
				if got := visits[i].Load(); got != 1 {
					t.Fatalf("workers=%d n=%d: index %d visited %d times", workers, n, i, got)
				}
			}
		}
	}
}

// TestForEachCoversRangeRandomized is the quickcheck-style sweep behind the
// fixed table above: for random (n, workers) pairs, every index in [0, n)
// must be visited exactly once — no index skipped by a block-boundary bug,
// none double-claimed off the atomic cursor.
func TestForEachCoversRangeRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		n := rng.Intn(3 * BatchGrain)
		workers := rng.Intn(2*n + 2) // includes 0, 1, > n
		visits := make([]atomic.Int64, n)
		ForEach(n, workers,
			func() struct{} { return struct{}{} },
			func(i int, _ struct{}) { visits[i].Add(1) },
			func(struct{}) {})
		for i := range visits {
			if got := visits[i].Load(); got != 1 {
				t.Fatalf("trial %d (n=%d, workers=%d): index %d visited %d times", trial, n, workers, i, got)
			}
		}
	}
}

// TestForEachScratchLifecycle: each worker goroutine must set up and tear
// down exactly one scratch state, and fn must only see states produced by
// setup.
func TestForEachScratchLifecycle(t *testing.T) {
	const n, workers = 500, 4
	var mu sync.Mutex
	made, closed := 0, 0
	type scratch struct{ uses int }
	ForEach(n, workers,
		func() *scratch {
			mu.Lock()
			made++
			mu.Unlock()
			return &scratch{}
		},
		func(i int, s *scratch) { s.uses++ },
		func(s *scratch) {
			mu.Lock()
			closed++
			mu.Unlock()
		})
	if made != closed {
		t.Fatalf("setup called %d times, teardown %d", made, closed)
	}
	if made < 1 || made > workers {
		t.Fatalf("setup called %d times, want 1..%d", made, workers)
	}
}
