package par

import (
	"sync"
	"sync/atomic"
	"testing"
)

func TestArgmax(t *testing.T) {
	cases := []struct {
		in   []float64
		want int
	}{
		{[]float64{1}, 0},
		{[]float64{0.2, 0.8}, 1},
		{[]float64{0.5, 0.5}, 0},           // ties break low
		{[]float64{0.1, 0.7, 0.7, 0.2}, 1}, // first maximum wins
		{[]float64{-3, -1, -2}, 1},
	}
	for _, c := range cases {
		if got := Argmax(c.in); got != c.want {
			t.Errorf("Argmax(%v) = %d, want %d", c.in, got, c.want)
		}
	}
}

// TestForEachCoversRange: every index must be visited exactly once at any
// worker count, including counts far beyond the item count.
func TestForEachCoversRange(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 3, 8, 100} {
		for _, n := range []int{0, 1, 5, BatchGrain, BatchGrain + 1, 10 * BatchGrain} {
			visits := make([]atomic.Int64, n)
			ForEach(n, workers,
				func() struct{} { return struct{}{} },
				func(i int, _ struct{}) { visits[i].Add(1) },
				func(struct{}) {})
			for i := range visits {
				if got := visits[i].Load(); got != 1 {
					t.Fatalf("workers=%d n=%d: index %d visited %d times", workers, n, i, got)
				}
			}
		}
	}
}

// TestForEachScratchLifecycle: each worker goroutine must set up and tear
// down exactly one scratch state, and fn must only see states produced by
// setup.
func TestForEachScratchLifecycle(t *testing.T) {
	const n, workers = 500, 4
	var mu sync.Mutex
	made, closed := 0, 0
	type scratch struct{ uses int }
	ForEach(n, workers,
		func() *scratch {
			mu.Lock()
			made++
			mu.Unlock()
			return &scratch{}
		},
		func(i int, s *scratch) { s.uses++ },
		func(s *scratch) {
			mu.Lock()
			closed++
			mu.Unlock()
		})
	if made != closed {
		t.Fatalf("setup called %d times, teardown %d", made, closed)
	}
	if made < 1 || made > workers {
		t.Fatalf("setup called %d times, want 1..%d", made, workers)
	}
}
