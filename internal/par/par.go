// Package par holds the tiny shared primitives of the parallel inference
// paths: index argmax with the tree's tie-breaking convention and the
// atomic-cursor block-claim loop that spreads a batch across workers. It is
// a leaf package (stdlib only) so internal/core, internal/forest and
// internal/eval can share one copy — previously each carried its own,
// because the eval→forest import direction blocked sharing via eval.Argmax.
package par

import (
	"sync"
	"sync/atomic"
)

// Argmax returns the index of the largest value, lowest index winning ties —
// the prediction convention of Tree.Predict, shared by every consumer that
// holds a classification distribution. It panics on an empty slice.
//
//udt:hotpath
func Argmax(xs []float64) int {
	best, bestP := 0, xs[0]
	for i, x := range xs {
		if x > bestP {
			best, bestP = i, x
		}
	}
	return best
}

// BatchGrain is the number of items a worker claims at a time: large enough
// to amortise the atomic counter, small enough to balance skewed per-item
// costs. Both batch inference engines use it as their block size.
const BatchGrain = 64

// ForEach applies fn to every index in [0, n). With workers <= 1 the calls
// run serially on the caller's goroutine; otherwise up to workers goroutines
// claim BatchGrain-sized blocks off an atomic cursor until the range is
// exhausted. Each goroutine obtains its per-worker state once from setup and
// releases it through teardown, so pooled scratch is fetched once per worker
// rather than once per item. fn must be safe to call concurrently for
// distinct indices.
//
//udt:hotpath
func ForEach[S any](n, workers int, setup func() S, fn func(i int, s S), teardown func(S)) {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		s := setup()
		for i := 0; i < n; i++ {
			fn(i, s)
		}
		teardown(s)
		return
	}
	var cursor atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for k := 0; k < workers; k++ {
		go func() {
			defer wg.Done()
			s := setup()
			defer teardown(s)
			for {
				hi := int(cursor.Add(BatchGrain))
				lo := hi - BatchGrain
				if lo >= n {
					return
				}
				if hi > n {
					hi = n
				}
				for i := lo; i < hi; i++ {
					fn(i, s)
				}
			}
		}()
	}
	wg.Wait()
}
