// Package latency implements the power-of-two latency histogram shared by
// udtserve's per-endpoint /metrics and udtload's client-side measurements.
// Both sides bucketing durations identically is what makes the load
// generator's percentiles cross-checkable against the server's: the two
// views of the same traffic must land within one bucket (a factor of two) of
// each other.
//
// Bucket b covers durations d with 2^(b-1) µs < d <= 2^b µs (bucket 0 covers
// everything up to 1 µs), and the last bucket is an overflow catch-all. With
// 24 buckets the histogram spans 1 µs to ~8.4 s — the full range an HTTP
// classify call can plausibly take — in a fixed 192-byte array with O(1)
// lock-free recording.
package latency

import (
	"errors"
	"fmt"
	"math/bits"
	"sync/atomic"
	"time"
)

// Buckets is the number of histogram buckets, the last being the overflow
// bucket for durations above UpperBound(Buckets-2).
const Buckets = 24

// Bucket maps a duration to its bucket index: the smallest b with
// d <= 2^b µs, clamped to the overflow bucket.
func Bucket(d time.Duration) int {
	us := d.Microseconds()
	if us <= 1 {
		return 0
	}
	b := bits.Len64(uint64(us - 1))
	if b >= Buckets {
		return Buckets - 1
	}
	return b
}

// UpperBound returns bucket b's inclusive upper bound in microseconds
// (2^b µs); the overflow bucket has no upper bound and returns -1.
func UpperBound(b int) int64 {
	if b >= Buckets-1 {
		return -1
	}
	return int64(1) << b
}

// AtomicHist is a lock-free latency histogram safe for concurrent Observe
// and Snapshot.
type AtomicHist struct {
	counts [Buckets]atomic.Int64
}

// Observe records one duration.
func (h *AtomicHist) Observe(d time.Duration) {
	h.counts[Bucket(d)].Add(1)
}

// ObserveNanos records one duration given in nanoseconds, for callers whose
// measurements are already integers (span totals, MemStats pause rings).
func (h *AtomicHist) ObserveNanos(ns int64) {
	h.counts[Bucket(time.Duration(ns))].Add(1)
}

// Snapshot captures the histogram's current counts as a serialisable value.
func (h *AtomicHist) Snapshot() *Snapshot {
	s := &Snapshot{
		BoundsMicros: make([]int64, Buckets-1),
		Counts:       make([]int64, Buckets),
	}
	for b := 0; b < Buckets-1; b++ {
		s.BoundsMicros[b] = UpperBound(b)
	}
	for b := range s.Counts {
		s.Counts[b] = h.counts[b].Load()
	}
	return s
}

// Snapshot is a point-in-time copy of a latency histogram: Counts[b] events
// fell into bucket b, whose inclusive upper bound is BoundsMicros[b]
// microseconds (the final bucket is the unbounded overflow).
type Snapshot struct {
	BoundsMicros []int64 `json:"boundsMicros"`
	Counts       []int64 `json:"counts"`
}

// Total sums the bucket counts.
func (s *Snapshot) Total() int64 {
	var n int64
	for _, c := range s.Counts {
		n += c
	}
	return n
}

// Sub returns the bucket-wise difference s - prev, the histogram of events
// recorded between the two snapshots.
func (s *Snapshot) Sub(prev *Snapshot) (*Snapshot, error) {
	if prev == nil {
		return s, nil
	}
	if len(prev.Counts) != len(s.Counts) {
		return nil, fmt.Errorf("latency: snapshot has %d buckets, previous has %d", len(s.Counts), len(prev.Counts))
	}
	out := &Snapshot{
		BoundsMicros: s.BoundsMicros,
		Counts:       make([]int64, len(s.Counts)),
	}
	for b := range s.Counts {
		d := s.Counts[b] - prev.Counts[b]
		if d < 0 {
			return nil, fmt.Errorf("latency: bucket %d count went backwards (%d -> %d)", b, prev.Counts[b], s.Counts[b])
		}
		out.Counts[b] = d
	}
	return out, nil
}

// Validate checks structural sanity of a decoded snapshot: the canonical
// bucket count, monotonically increasing bounds, and non-negative counts.
func (s *Snapshot) Validate() error {
	if s == nil {
		return errors.New("latency: nil snapshot")
	}
	if len(s.Counts) != Buckets {
		return fmt.Errorf("latency: %d buckets, want %d", len(s.Counts), Buckets)
	}
	if len(s.BoundsMicros) != Buckets-1 {
		return fmt.Errorf("latency: %d bounds, want %d", len(s.BoundsMicros), Buckets-1)
	}
	for b, bound := range s.BoundsMicros {
		if bound <= 0 {
			return fmt.Errorf("latency: bound %d is %d, want positive", b, bound)
		}
		if b > 0 && bound <= s.BoundsMicros[b-1] {
			return fmt.Errorf("latency: bounds not increasing at bucket %d", b)
		}
	}
	for b, c := range s.Counts {
		if c < 0 {
			return fmt.Errorf("latency: bucket %d has negative count %d", b, c)
		}
	}
	return nil
}

// PercentileBounds returns the bucket range containing the q-th percentile
// (q in (0, 1], nearest-rank): the true percentile lies in
// (loMicros, hiMicros] microseconds, hiMicros being -1 when the rank falls
// in the overflow bucket. ok is false on an empty histogram or out-of-range
// q.
func (s *Snapshot) PercentileBounds(q float64) (loMicros, hiMicros int64, ok bool) {
	total := s.Total()
	if total == 0 || !(q > 0 && q <= 1) {
		return 0, 0, false
	}
	rank := int64(q * float64(total))
	if float64(rank) < q*float64(total) {
		rank++
	}
	if rank < 1 {
		rank = 1
	}
	var seen int64
	for b, c := range s.Counts {
		seen += c
		if seen >= rank {
			lo := int64(0)
			if b > 0 {
				lo = s.BoundsMicros[b-1]
			}
			return lo, UpperBound(b), true
		}
	}
	return 0, 0, false
}
