package latency

import (
	"encoding/json"
	"sync"
	"testing"
	"time"
)

// TestBucketEdges pins the bucket boundaries: bucket b's inclusive upper
// bound is 2^b µs, and every duration at or just past a bound lands where
// the bound arithmetic says.
func TestBucketEdges(t *testing.T) {
	cases := []struct {
		d    time.Duration
		want int
	}{
		{0, 0},
		{time.Nanosecond, 0},
		{time.Microsecond, 0},
		// Durations truncate to whole microseconds before bucketing, so
		// 1.001 µs still counts as 1 µs.
		{time.Microsecond + time.Nanosecond, 0},
		{2 * time.Microsecond, 1},
		{3 * time.Microsecond, 2},
		{4 * time.Microsecond, 2},
		{5 * time.Microsecond, 3},
		{1024 * time.Microsecond, 10},
		{1025 * time.Microsecond, 11},
		{time.Second, 20},
		{10 * time.Second, Buckets - 1},
		{time.Hour, Buckets - 1},
	}
	for _, c := range cases {
		if got := Bucket(c.d); got != c.want {
			t.Errorf("Bucket(%v) = %d, want %d", c.d, got, c.want)
		}
	}
}

// TestUpperBound: bounds double per bucket and the overflow bucket reports
// no bound.
func TestUpperBound(t *testing.T) {
	if UpperBound(0) != 1 || UpperBound(10) != 1024 {
		t.Fatalf("UpperBound(0)=%d UpperBound(10)=%d", UpperBound(0), UpperBound(10))
	}
	if UpperBound(Buckets-1) != -1 {
		t.Fatalf("overflow bucket bound = %d", UpperBound(Buckets-1))
	}
}

// TestHistObserveSnapshot: concurrent observations all land, and the
// snapshot round-trips through JSON and validates.
func TestHistObserveSnapshot(t *testing.T) {
	var h AtomicHist
	const per = 500
	durations := []time.Duration{time.Microsecond, time.Millisecond, time.Second, time.Minute}
	var wg sync.WaitGroup
	for _, d := range durations {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(d)
			}
		}()
	}
	wg.Wait()
	s := h.Snapshot()
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := s.Total(); got != int64(per*len(durations)) {
		t.Fatalf("total = %d, want %d", got, per*len(durations))
	}
	if s.Counts[0] != per || s.Counts[10] != per || s.Counts[20] != per || s.Counts[Buckets-1] != per {
		t.Fatalf("counts misplaced: %v", s.Counts)
	}
	blob, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal(blob, &back); err != nil {
		t.Fatal(err)
	}
	if err := back.Validate(); err != nil {
		t.Fatal(err)
	}
	if back.Total() != s.Total() {
		t.Fatalf("round-trip total %d != %d", back.Total(), s.Total())
	}
}

// TestSub: the difference of two snapshots isolates the events between
// them, and a regression (counts going backwards) is rejected.
func TestSub(t *testing.T) {
	var h AtomicHist
	h.Observe(time.Millisecond)
	before := h.Snapshot()
	h.Observe(time.Millisecond)
	h.Observe(time.Second)
	after := h.Snapshot()
	delta, err := after.Sub(before)
	if err != nil {
		t.Fatal(err)
	}
	if delta.Total() != 2 || delta.Counts[10] != 1 || delta.Counts[20] != 1 {
		t.Fatalf("delta = %v", delta.Counts)
	}
	if _, err := before.Sub(after); err == nil {
		t.Fatal("backwards subtraction accepted")
	}
	if d, err := after.Sub(nil); err != nil || d != after {
		t.Fatal("nil previous must return the snapshot unchanged")
	}
}

// TestPercentileBounds: nearest-rank percentiles land in the bucket holding
// the ranked observation, with the overflow bucket reporting an open upper
// bound.
func TestPercentileBounds(t *testing.T) {
	var h AtomicHist
	for i := 0; i < 90; i++ {
		h.Observe(100 * time.Microsecond) // bucket 7 (64, 128]
	}
	for i := 0; i < 9; i++ {
		h.Observe(10 * time.Millisecond) // bucket 14
	}
	h.Observe(time.Minute) // overflow
	s := h.Snapshot()
	if lo, hi, ok := s.PercentileBounds(0.50); !ok || lo != 64 || hi != 128 {
		t.Fatalf("p50 = (%d, %d, %v)", lo, hi, ok)
	}
	if lo, hi, ok := s.PercentileBounds(0.95); !ok || lo != 8192 || hi != 16384 {
		t.Fatalf("p95 = (%d, %d, %v)", lo, hi, ok)
	}
	if _, hi, ok := s.PercentileBounds(1.0); !ok || hi != -1 {
		t.Fatalf("p100 hi = %d, ok = %v", hi, ok)
	}
	empty := (&AtomicHist{}).Snapshot()
	if _, _, ok := empty.PercentileBounds(0.5); ok {
		t.Fatal("empty histogram produced a percentile")
	}
	if _, _, ok := s.PercentileBounds(0); ok {
		t.Fatal("q=0 accepted")
	}
	if _, _, ok := s.PercentileBounds(1.5); ok {
		t.Fatal("q>1 accepted")
	}
}

// TestValidateRejects: malformed decoded snapshots fail validation.
func TestValidateRejects(t *testing.T) {
	good := (&AtomicHist{}).Snapshot()
	cases := map[string]func(*Snapshot){
		"wrong bucket count":  func(s *Snapshot) { s.Counts = s.Counts[:3] },
		"wrong bound count":   func(s *Snapshot) { s.BoundsMicros = s.BoundsMicros[:3] },
		"negative count":      func(s *Snapshot) { s.Counts[5] = -1 },
		"non-positive bound":  func(s *Snapshot) { s.BoundsMicros[0] = 0 },
		"non-monotonic bound": func(s *Snapshot) { s.BoundsMicros[5] = s.BoundsMicros[4] },
	}
	for name, mutate := range cases {
		s := &Snapshot{
			BoundsMicros: append([]int64{}, good.BoundsMicros...),
			Counts:       append([]int64{}, good.Counts...),
		}
		mutate(s)
		if s.Validate() == nil {
			t.Errorf("%s: accepted", name)
		}
	}
	var nilSnap *Snapshot
	if nilSnap.Validate() == nil {
		t.Error("nil snapshot accepted")
	}
}

// TestObserveNanos: the int64-nanosecond entry point lands events in the
// same buckets Observe would, including sub-microsecond and zero inputs.
func TestObserveNanos(t *testing.T) {
	var h AtomicHist
	h.ObserveNanos(0)
	h.ObserveNanos(999)                           // < 1µs -> bucket 0
	h.ObserveNanos(int64(3 * time.Microsecond))   // bucket 2
	h.ObserveNanos(int64(500 * time.Microsecond)) // bucket 9
	s := h.Snapshot()
	if s.Counts[0] != 2 || s.Counts[2] != 1 || s.Counts[9] != 1 {
		t.Fatalf("counts misplaced: %v", s.Counts)
	}

	var ref AtomicHist
	ref.Observe(500 * time.Microsecond)
	if ref.Snapshot().Counts[9] != 1 {
		t.Fatal("ObserveNanos and Observe disagree on bucket placement")
	}
}
