package forest

import (
	"encoding/json"
	"math/rand"
	"testing"

	"udt/internal/core"
)

// TestFromCompiledRoundTrip: a forest reassembled from its own member
// snapshots — engines only, trees dropped, as a binary load would produce —
// must classify byte-identically (full, staged, and early-exit), report the
// same stats, and marshal back to a JSON container that decodes to the same
// predictions.
func TestFromCompiledRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	ds := mixedDataset(rng, 240, 3, 3)
	for _, tc := range []struct {
		name string
		cfg  Config
	}{
		{"identity", Config{Trees: 7, Seed: 11, TreeConfig: core.Config{MinWeight: 1}}},
		{"projected", Config{Trees: 7, Seed: 11, AttrsPerTree: 2, TreeConfig: core.Config{MinWeight: 1}}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			f := trainForest(t, ds, tc.cfg)
			snaps := f.MemberSnapshots()
			for i := range snaps {
				snaps[i].Stats.Search = f.members[i].stats.Search // survives snapshot; binary drops it
			}
			g, err := FromCompiled(f.Classes, f.NumAttrs, f.CatAttrs, snaps, f.Kind(), f.OOB)
			if err != nil {
				t.Fatal(err)
			}
			if g.Stats() != f.Stats() {
				t.Fatalf("stats drifted: %+v vs %+v", g.Stats(), f.Stats())
			}
			if g.Describe() != f.Describe() {
				t.Fatalf("describe drifted: %q vs %q", g.Describe(), f.Describe())
			}
			probes := ds.Tuples[:100]
			for i, tu := range probes {
				want, got := f.Classify(tu), g.Classify(tu)
				for ci := range want {
					if want[ci] != got[ci] {
						t.Fatalf("probe %d: %v vs %v", i, got, want)
					}
				}
				wp, we := f.PredictEarlyExit(tu)
				gp, ge := g.PredictEarlyExit(tu)
				if wp != gp || we != ge {
					t.Fatalf("probe %d: early exit (%d,%d) vs (%d,%d)", i, gp, ge, wp, we)
				}
			}
			// The reassembled forest has no pointer trees; marshalling must
			// decompile them and the result must decode to the same model.
			blob, err := json.Marshal(g)
			if err != nil {
				t.Fatal(err)
			}
			var h Forest
			if err := json.Unmarshal(blob, &h); err != nil {
				t.Fatal(err)
			}
			for i, tu := range probes {
				want, got := f.Classify(tu), h.Classify(tu)
				for ci := range want {
					if want[ci] != got[ci] {
						t.Fatalf("probe %d after JSON round-trip: %v vs %v", i, got, want)
					}
				}
			}
		})
	}
}

// TestFromCompiledValidation: malformed member sets must be rejected.
func TestFromCompiledValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	ds := mixedDataset(rng, 150, 2, 2)
	f := trainForest(t, ds, Config{Trees: 3, Seed: 5, TreeConfig: core.Config{MinWeight: 1}})
	snaps := f.MemberSnapshots()

	if _, err := FromCompiled(f.Classes, f.NumAttrs, f.CatAttrs, nil, KindBagged, OOBStats{}); err == nil {
		t.Error("empty member set accepted")
	}
	if _, err := FromCompiled(f.Classes, f.NumAttrs, f.CatAttrs, snaps, "stacked", OOBStats{}); err == nil {
		t.Error("unknown kind accepted")
	}
	if _, err := FromCompiled(nil, f.NumAttrs, f.CatAttrs, snaps, KindBagged, OOBStats{}); err == nil {
		t.Error("classless ensemble accepted")
	}

	bad := append([]CompiledMember(nil), snaps...)
	bad[1].Compiled = nil
	if _, err := FromCompiled(f.Classes, f.NumAttrs, f.CatAttrs, bad, KindBagged, OOBStats{}); err == nil {
		t.Error("nil engine accepted")
	}
	bad = append([]CompiledMember(nil), snaps...)
	bad[0].Weight = -1
	if _, err := FromCompiled(f.Classes, f.NumAttrs, f.CatAttrs, bad, KindBagged, OOBStats{}); err == nil {
		t.Error("negative weight accepted")
	}
	bad = append([]CompiledMember(nil), snaps...)
	bad[0].NumIdx = []int{0, 1}
	if _, err := FromCompiled(f.Classes, f.NumAttrs, f.CatAttrs, bad, KindBagged, OOBStats{}); err == nil {
		t.Error("one-sided index map accepted")
	}
	if _, err := FromCompiled([]string{"a", "b", "c"}, f.NumAttrs, f.CatAttrs, snaps, KindBagged, OOBStats{}); err == nil {
		t.Error("class vocabulary mismatch accepted")
	}
}
