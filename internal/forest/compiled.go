package forest

import (
	"errors"
	"fmt"

	"udt/internal/core"
	"udt/internal/data"
)

// This file is the forest's boundary with compiled-only model storage: the
// binary container (internal/binfmt) stores ensembles as flat compiled
// arrays with no pointer trees, so it assembles forests through FromCompiled
// and disassembles them through MemberSnapshots.

// CompiledMember describes one ensemble member in compiled form: the engine,
// its vote weight, the optional projection maps from the member's attribute
// schema onto the forest's, and the member's build statistics (which a
// tree-less member cannot recompute).
type CompiledMember struct {
	Compiled *core.Compiled
	Weight   float64
	NumIdx   []int
	CatIdx   []int
	Stats    core.BuildStats
}

// FromCompiled assembles a servable ensemble from already-compiled members —
// the constructor the binary model format uses, where there are no pointer
// trees to adopt. Validation matches the JSON path: the kind must be known,
// every weight positive and finite, every member's class vocabulary and
// (possibly projected) attribute schema in agreement with the forest's.
func FromCompiled(classes []string, numAttrs, catAttrs []data.Attribute, members []CompiledMember, kind string, oob OOBStats) (*Forest, error) {
	if len(members) == 0 {
		return nil, errors.New("forest: ensemble needs at least one member")
	}
	if kind != KindBagged && kind != KindBoosted {
		return nil, fmt.Errorf("forest: unknown ensemble kind %q", kind)
	}
	if len(classes) == 0 {
		return nil, errors.New("forest: ensemble needs a class vocabulary")
	}
	f := &Forest{
		Classes:  classes,
		NumAttrs: numAttrs,
		CatAttrs: catAttrs,
		OOB:      oob,
		kind:     kind,
		members:  make([]member, len(members)),
	}
	for t, cm := range members {
		if cm.Compiled == nil {
			return nil, fmt.Errorf("forest: member %d: missing compiled engine", t)
		}
		if err := checkWeight(cm.Weight); err != nil {
			return nil, fmt.Errorf("forest: member %d: %w", t, err)
		}
		numIdx, catIdx, err := f.checkMember(cm.Compiled.Classes, cm.Compiled.NumAttrs, cm.Compiled.CatAttrs, cm.NumIdx, cm.CatIdx)
		if err != nil {
			return nil, fmt.Errorf("forest: member %d: %w", t, err)
		}
		f.members[t] = member{
			compiled: cm.Compiled,
			numIdx:   numIdx,
			catIdx:   catIdx,
			weight:   cm.Weight,
			stats:    cm.Stats,
		}
	}
	f.initStaged()
	return f, nil
}

// MemberSnapshots returns the ensemble members in compiled form, in member
// (storage) order — the view the binary encoder serialises. The compiled
// engines and index maps are shared with the forest, not copied.
func (f *Forest) MemberSnapshots() []CompiledMember {
	out := make([]CompiledMember, len(f.members))
	for t := range f.members {
		m := &f.members[t]
		out[t] = CompiledMember{
			Compiled: m.compiled,
			Weight:   m.weight,
			NumIdx:   m.numIdx,
			CatIdx:   m.catIdx,
			Stats:    m.stats,
		}
	}
	return out
}
