package forest

import (
	"fmt"
	"math/rand"
	"testing"

	"udt/internal/core"
	"udt/internal/split"
)

// benchTreeConfig keeps member training cheap (the ES strategy with a depth
// cap) so the benchmarks measure inference, not setup, and the CI
// -benchtime 1x smoke stays fast.
var benchTreeConfig = core.Config{Strategy: split.ES, MaxDepth: 8, MinWeight: 4}

// BenchmarkForestPredictBatch measures ensemble batch inference across a
// worker sweep — the forest serving path of cmd/udtserve. Run with
// -benchtime 1x in CI as a smoke test.
func BenchmarkForestPredictBatch(b *testing.B) {
	ds := mixedDataset(rand.New(rand.NewSource(31)), 1000, 4, 3)
	f, err := Train(ds, Config{Trees: 25, Seed: 1, Workers: 8, TreeConfig: benchTreeConfig})
	if err != nil {
		b.Fatal(err)
	}
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				f.PredictBatch(ds.Tuples, workers)
			}
			b.ReportMetric(float64(ds.Len()*b.N)/b.Elapsed().Seconds(), "tuples/s")
		})
	}
}

// BenchmarkForestTrain measures bagged training throughput at the forest
// Workers knob (member builds are independent).
func BenchmarkForestTrain(b *testing.B) {
	ds := mixedDataset(rand.New(rand.NewSource(37)), 400, 4, 3)
	for _, workers := range []int{1, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := Train(ds, Config{Trees: 10, Seed: 1, Workers: workers, TreeConfig: benchTreeConfig}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
