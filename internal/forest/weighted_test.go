package forest

import (
	"encoding/json"
	"fmt"
	"math"
	"math/rand"
	"strings"
	"testing"

	"udt/internal/core"
)

// weightedTrees zips trees and weights into FromTrees members (no
// precompiled engines, so FromTrees compiles).
func weightedTrees(trees []*core.Tree, weights []float64) []WeightedTree {
	out := make([]WeightedTree, len(trees))
	for i, tree := range trees {
		out[i] = WeightedTree{Tree: tree, Weight: weights[i]}
	}
	return out
}

// buildTrees constructs k single trees on disjoint-seed resamples of ds so
// the members differ, all sharing the dataset schema.
func buildTrees(t *testing.T, k int) []*core.Tree {
	t.Helper()
	rng := rand.New(rand.NewSource(41))
	ds := mixedDataset(rng, 90, 2, 3)
	trees := make([]*core.Tree, k)
	for i := range trees {
		idx := make([]int, ds.Len())
		for j := range idx {
			idx[j] = rng.Intn(ds.Len())
		}
		tree, err := core.Build(ds.Subset(idx), core.Config{MinWeight: 2})
		if err != nil {
			t.Fatal(err)
		}
		trees[i] = tree
	}
	return trees
}

// TestFromTreesWeightedVote: the ensemble distribution must equal the
// weight-weighted average of the member distributions, and Predict its
// argmax.
func TestFromTreesWeightedVote(t *testing.T) {
	trees := buildTrees(t, 3)
	weights := []float64{2, 0.5, 1.25}
	f, err := FromTrees(weightedTrees(trees, weights), KindBoosted)
	if err != nil {
		t.Fatal(err)
	}
	if f.Kind() != KindBoosted {
		t.Fatalf("kind = %q", f.Kind())
	}
	ds := mixedDataset(rand.New(rand.NewSource(43)), 40, 2, 3)
	total := 0.0
	for _, w := range weights {
		total += w
	}
	for i, tu := range ds.Tuples {
		want := make([]float64, len(f.Classes))
		for m, tree := range trees {
			for c, p := range tree.Classify(tu) {
				want[c] += weights[m] * p
			}
		}
		for c := range want {
			want[c] /= total
		}
		got := f.Classify(tu)
		for c := range want {
			if math.Abs(got[c]-want[c]) > 1e-12 {
				t.Fatalf("tuple %d class %d: ensemble %v, manual weighted average %v", i, c, got[c], want[c])
			}
		}
		if got := f.Predict(tu); got != argmax(want) {
			t.Fatalf("tuple %d: Predict %d, argmax of weighted average %d", i, got, argmax(want))
		}
	}
}

// TestFromTreesDominantWeight: with one member's weight overwhelming the
// rest, the ensemble must follow that member everywhere.
func TestFromTreesDominantWeight(t *testing.T) {
	trees := buildTrees(t, 3)
	f, err := FromTrees(weightedTrees(trees, []float64{1e9, 1, 1}), KindBoosted)
	if err != nil {
		t.Fatal(err)
	}
	ds := mixedDataset(rand.New(rand.NewSource(47)), 30, 2, 3)
	for i, tu := range ds.Tuples {
		if got, want := f.Predict(tu), trees[0].Predict(tu); got != want {
			t.Fatalf("tuple %d: ensemble predicts %d, dominant member %d", i, got, want)
		}
	}
}

// TestFromTreesErrors covers the constructor's rejection paths.
func TestFromTreesErrors(t *testing.T) {
	trees := buildTrees(t, 2)
	cases := map[string]func() error{
		"zero trees": func() error {
			_, err := FromTrees(nil, KindBoosted)
			return err
		},
		"nil tree": func() error {
			_, err := FromTrees([]WeightedTree{{Weight: 1}}, KindBoosted)
			return err
		},
		"unknown kind": func() error {
			_, err := FromTrees(weightedTrees(trees, []float64{1, 1}), "stacked")
			return err
		},
		"zero weight": func() error {
			_, err := FromTrees(weightedTrees(trees, []float64{1, 0}), KindBoosted)
			return err
		},
		"negative weight": func() error {
			_, err := FromTrees(weightedTrees(trees, []float64{1, -2}), KindBoosted)
			return err
		},
		"NaN weight": func() error {
			_, err := FromTrees(weightedTrees(trees, []float64{1, math.NaN()}), KindBoosted)
			return err
		},
		"infinite weight": func() error {
			_, err := FromTrees(weightedTrees(trees, []float64{1, math.Inf(1)}), KindBoosted)
			return err
		},
	}
	for name, run := range cases {
		if run() == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

// TestBaggedForestUniformWeights: Train must produce weight-1 members and
// kind bagged, and its Classify must be the plain member mean — the PR 3
// behaviour, now expressed through the weighted path.
func TestBaggedForestUniformWeights(t *testing.T) {
	ds := mixedDataset(rand.New(rand.NewSource(53)), 80, 2, 3)
	f := trainForest(t, ds, Config{Trees: 5, Seed: 9, TreeConfig: core.Config{MinWeight: 2}})
	if f.Kind() != KindBagged {
		t.Fatalf("trained forest kind = %q", f.Kind())
	}
	for i, w := range f.Weights() {
		if w != 1 {
			t.Fatalf("bagged member %d has weight %v", i, w)
		}
	}
}

// TestContainerV2CarriesWeights: the serialised container must be version 2
// with kind and one weight per member, and a boosted round trip must keep
// the weights bit-for-bit.
func TestContainerV2CarriesWeights(t *testing.T) {
	trees := buildTrees(t, 3)
	weights := []float64{1.5, 0.75, 2.25}
	f, err := FromTrees(weightedTrees(trees, weights), KindBoosted)
	if err != nil {
		t.Fatal(err)
	}
	blob, err := json.Marshal(f)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Version int    `json:"version"`
		Kind    string `json:"kind"`
		Trees   []struct {
			Weight *float64 `json:"weight"`
		} `json:"trees"`
	}
	if err := json.Unmarshal(blob, &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Version != Version || doc.Kind != KindBoosted || len(doc.Trees) != 3 {
		t.Fatalf("container header = %+v", doc)
	}
	for i, mj := range doc.Trees {
		if mj.Weight == nil || *mj.Weight != weights[i] {
			t.Fatalf("member %d weight = %v, want %v", i, mj.Weight, weights[i])
		}
	}
	var back Forest
	if err := json.Unmarshal(blob, &back); err != nil {
		t.Fatal(err)
	}
	for i, w := range back.Weights() {
		if w != weights[i] {
			t.Fatalf("restored weight %d = %v, want %v", i, w, weights[i])
		}
	}
}

// TestContainerV1ImplicitWeights: a version 1 container (the PR 3 format)
// must decode with uniform weight-1 members and kind bagged, and a v1
// document that smuggles a weight must be rejected.
func TestContainerV1ImplicitWeights(t *testing.T) {
	ab := leafTree("a", "b")
	v1 := fmt.Sprintf(`{"version": 1, "classes": ["a", "b"], "numAttrs": [{"name": "A1"}], "trees": [{"tree": %s}, {"tree": %s}]}`, ab, ab)
	var f Forest
	if err := json.Unmarshal([]byte(v1), &f); err != nil {
		t.Fatal(err)
	}
	if f.Kind() != KindBagged {
		t.Fatalf("v1 kind = %q", f.Kind())
	}
	for i, w := range f.Weights() {
		if w != 1 {
			t.Fatalf("v1 member %d weight = %v", i, w)
		}
	}

	smuggled := fmt.Sprintf(`{"version": 1, "classes": ["a", "b"], "numAttrs": [{"name": "A1"}], "trees": [{"weight": 3, "tree": %s}]}`, ab)
	var g Forest
	err := json.Unmarshal([]byte(smuggled), &g)
	if err == nil {
		t.Fatal("v1 container with a weight accepted")
	}
	if !strings.Contains(err.Error(), "carry no weights") {
		t.Fatalf("error %q does not explain the v1 weight rejection", err)
	}

	// A v1 document declaring a kind is equally malformed: "boosted" with
	// implicit uniform weights would flatten the vote structure silently.
	kinded := fmt.Sprintf(`{"version": 1, "kind": "boosted", "classes": ["a", "b"], "numAttrs": [{"name": "A1"}], "trees": [{"tree": %s}]}`, ab)
	var h Forest
	err = json.Unmarshal([]byte(kinded), &h)
	if err == nil {
		t.Fatal("v1 container with a kind accepted")
	}
	if !strings.Contains(err.Error(), "carry no ensemble kind") {
		t.Fatalf("error %q does not explain the v1 kind rejection", err)
	}
}

// TestFromTreesReusesCompiled: a provided compiled engine must be adopted
// (no second Compile), and the member must serve through it.
func TestFromTreesReusesCompiled(t *testing.T) {
	trees := buildTrees(t, 1)
	compiled, err := trees[0].Compile()
	if err != nil {
		t.Fatal(err)
	}
	f, err := FromTrees([]WeightedTree{{Tree: trees[0], Compiled: compiled, Weight: 2}}, KindBoosted)
	if err != nil {
		t.Fatal(err)
	}
	if f.members[0].compiled != compiled {
		t.Fatal("FromTrees recompiled a member that came with a compiled engine")
	}
}

// TestContainerV2BadWeights: invalid or missing vote weights in a v2
// container must be rejected at decode time, not poison serving.
func TestContainerV2BadWeights(t *testing.T) {
	ab := leafTree("a", "b")
	for _, w := range []string{"0", "-1", "1e999"} {
		doc := fmt.Sprintf(`{"version": 2, "classes": ["a", "b"], "numAttrs": [{"name": "A1"}], "trees": [{"weight": %s, "tree": %s}]}`, w, ab)
		var f Forest
		if err := json.Unmarshal([]byte(doc), &f); err == nil {
			t.Errorf("weight %s accepted", w)
		}
	}
	// A v2 member with NO weight must be rejected too: defaulting it to 1
	// would silently flatten a boosted model's vote structure to uniform.
	missing := fmt.Sprintf(`{"version": 2, "kind": "boosted", "classes": ["a", "b"], "numAttrs": [{"name": "A1"}], "trees": [{"tree": %s}]}`, ab)
	var f Forest
	err := json.Unmarshal([]byte(missing), &f)
	if err == nil {
		t.Error("v2 member without a weight accepted")
	} else if !strings.Contains(err.Error(), "must carry a weight") {
		t.Errorf("error %q does not explain the missing v2 weight", err)
	}
	unknownKind := fmt.Sprintf(`{"version": 2, "kind": "stacked", "classes": ["a", "b"], "numAttrs": [{"name": "A1"}], "trees": [{"weight": 1, "tree": %s}]}`, ab)
	var g Forest
	if err := json.Unmarshal([]byte(unknownKind), &g); err == nil {
		t.Error("unknown ensemble kind accepted")
	}
}
