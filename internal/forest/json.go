package forest

import (
	"encoding/json"
	"errors"
	"fmt"

	"udt/internal/core"
	"udt/internal/data"
)

// Forests serialise to a versioned multi-tree JSON container,
// {"version": N, "trees": [...]}. Version 1 is the current format. Each
// member entry carries the tree's own single-tree document (the exact
// format "udtree train" writes for one tree) plus the index maps from the
// member's projected attribute schema back onto the forest schema, so a
// container is a strict superset of the legacy format and legacy loaders of
// single trees are unaffected.

// Version is the forest container format version this package writes and
// the only one it accepts.
const Version = 1

type forestJSON struct {
	Version  int          `json:"version"`
	Classes  []string     `json:"classes"`
	NumAttrs []attrJSON   `json:"numAttrs"`
	CatAttrs []attrJSON   `json:"catAttrs,omitempty"`
	OOB      *OOBStats    `json:"oob,omitempty"`
	Trees    []memberJSON `json:"trees"`
}

type attrJSON struct {
	Name   string   `json:"name"`
	Domain []string `json:"domain,omitempty"`
}

type memberJSON struct {
	// NumIdx/CatIdx map member attribute positions onto forest schema
	// positions; null means identity (the member sees every attribute). An
	// empty array is meaningful — the member sees none of that kind — so
	// these fields must not use omitempty.
	NumIdx []int      `json:"numIdx"`
	CatIdx []int      `json:"catIdx"`
	Tree   *core.Tree `json:"tree"`
}

// MarshalJSON implements json.Marshaler.
func (f *Forest) MarshalJSON() ([]byte, error) {
	doc := forestJSON{
		Version: Version,
		Classes: f.Classes,
		Trees:   make([]memberJSON, len(f.members)),
	}
	for _, a := range f.NumAttrs {
		doc.NumAttrs = append(doc.NumAttrs, attrJSON{Name: a.Name})
	}
	for _, a := range f.CatAttrs {
		doc.CatAttrs = append(doc.CatAttrs, attrJSON{Name: a.Name, Domain: a.Domain})
	}
	if f.OOB.Evaluated > 0 {
		oob := f.OOB
		doc.OOB = &oob
	}
	for t := range f.members {
		m := &f.members[t]
		doc.Trees[t] = memberJSON{NumIdx: m.numIdx, CatIdx: m.catIdx, Tree: m.tree}
	}
	return json.Marshal(doc)
}

// UnmarshalJSON implements json.Unmarshaler, validating the container
// version, member schemas and class vocabularies, and compiling every
// member so the loaded forest serves immediately.
func (f *Forest) UnmarshalJSON(b []byte) error {
	var doc forestJSON
	if err := json.Unmarshal(b, &doc); err != nil {
		return err
	}
	if doc.Version != Version {
		return fmt.Errorf("forest: unknown container version %d (want %d)", doc.Version, Version)
	}
	if len(doc.Trees) == 0 {
		return errors.New("forest: container has zero trees")
	}
	if len(doc.Classes) == 0 {
		return errors.New("forest: container has no classes")
	}
	f.Classes = doc.Classes
	f.NumAttrs = nil
	for _, a := range doc.NumAttrs {
		f.NumAttrs = append(f.NumAttrs, data.Attribute{Name: a.Name, Kind: data.Numeric})
	}
	f.CatAttrs = nil
	for _, a := range doc.CatAttrs {
		f.CatAttrs = append(f.CatAttrs, data.Attribute{Name: a.Name, Kind: data.Categorical, Domain: a.Domain})
	}
	if doc.OOB != nil {
		f.OOB = *doc.OOB
	} else {
		f.OOB = OOBStats{}
	}
	f.Config = Config{}
	f.members = make([]member, len(doc.Trees))
	for t, mj := range doc.Trees {
		m, err := f.restoreMember(mj)
		if err != nil {
			return fmt.Errorf("forest: tree %d: %w", t, err)
		}
		f.members[t] = m
	}
	return nil
}

// restoreMember validates one container entry against the forest schema and
// compiles its tree.
func (f *Forest) restoreMember(mj memberJSON) (member, error) {
	if mj.Tree == nil {
		return member{}, errors.New("missing tree document")
	}
	tree := mj.Tree
	if err := sameClasses(f.Classes, tree.Classes); err != nil {
		return member{}, err
	}
	numIdx, err := checkIdx(mj.NumIdx, len(tree.NumAttrs), len(f.NumAttrs), "numIdx")
	if err != nil {
		return member{}, err
	}
	catIdx, err := checkIdx(mj.CatIdx, len(tree.CatAttrs), len(f.CatAttrs), "catIdx")
	if err != nil {
		return member{}, err
	}
	// The index maps are all-or-nothing: Train emits either both (a
	// projected member) or neither (an identity member), and the projection
	// scratch treats both-nil as identity. A mixed pair would project one
	// attribute kind and not the other, crashing mid-descent.
	if (numIdx == nil) != (catIdx == nil) {
		return member{}, errors.New("numIdx and catIdx must be both present or both absent")
	}
	// Attribute identity must agree between the member and the forest
	// attribute it maps to — names for both kinds, domains value-for-value
	// for categorical ones: incoming tuples are decoded against the forest
	// schema, and the member's compiled engine interprets positions and
	// domain indices against its own, so any divergence silently misroutes
	// mass.
	for k, a := range tree.NumAttrs {
		fi := k
		if numIdx != nil {
			fi = numIdx[k]
		}
		if want := f.NumAttrs[fi].Name; a.Name != want {
			return member{}, fmt.Errorf("numeric attribute %d is %q, container maps it to %q", k, a.Name, want)
		}
	}
	for k, a := range tree.CatAttrs {
		fi := k
		if catIdx != nil {
			fi = catIdx[k]
		}
		if want := f.CatAttrs[fi].Name; a.Name != want {
			return member{}, fmt.Errorf("categorical attribute %d is %q, container maps it to %q", k, a.Name, want)
		}
		want := f.CatAttrs[fi].Domain
		if len(a.Domain) != len(want) {
			return member{}, fmt.Errorf("categorical attribute %q has %d domain values, container has %d", a.Name, len(a.Domain), len(want))
		}
		for v := range want {
			if a.Domain[v] != want[v] {
				return member{}, fmt.Errorf("categorical attribute %q domain value %d is %q, container has %q", a.Name, v, a.Domain[v], want[v])
			}
		}
	}
	compiled, err := tree.Compile()
	if err != nil {
		return member{}, err
	}
	return member{tree: tree, compiled: compiled, numIdx: numIdx, catIdx: catIdx}, nil
}

// sameClasses rejects members whose class vocabulary diverges from the
// container's: averaging distributions over mismatched labels would silently
// corrupt every prediction.
func sameClasses(forest, tree []string) error {
	if len(forest) != len(tree) {
		return fmt.Errorf("member has %d classes, container has %d", len(tree), len(forest))
	}
	for i := range forest {
		if forest[i] != tree[i] {
			return fmt.Errorf("member class %d is %q, container has %q", i, tree[i], forest[i])
		}
	}
	return nil
}

// checkIdx validates a member attribute index map: absent means identity
// (the member sees all forest attributes, so its schema arity must match);
// present means a projection whose entries address the forest schema.
func checkIdx(idx []int, treeAttrs, forestAttrs int, name string) ([]int, error) {
	if idx == nil {
		if treeAttrs != forestAttrs {
			return nil, fmt.Errorf("member has %d attributes, container has %d and no %s map", treeAttrs, forestAttrs, name)
		}
		return nil, nil
	}
	if len(idx) != treeAttrs {
		return nil, fmt.Errorf("%s has %d entries, member schema has %d attributes", name, len(idx), treeAttrs)
	}
	seen := make(map[int]bool, len(idx))
	for _, j := range idx {
		if j < 0 || j >= forestAttrs {
			return nil, fmt.Errorf("%s entry %d out of range [0, %d)", name, j, forestAttrs)
		}
		if seen[j] {
			return nil, fmt.Errorf("%s entry %d duplicated", name, j)
		}
		seen[j] = true
	}
	return idx, nil
}
