package forest

import (
	"encoding/json"
	"errors"
	"fmt"
	"math"

	"udt/internal/core"
	"udt/internal/data"
)

// Forests serialise to a versioned multi-tree JSON container,
// {"version": N, "trees": [...]}. Version 2 is the current format: each
// member entry carries the tree's own single-tree document (the exact
// format "udtree train" writes for one tree), the index maps from the
// member's projected attribute schema back onto the forest schema, and the
// member's vote weight; the container-level "kind" field records whether the
// votes are uniform ("bagged") or SAMME alphas ("boosted"). Version 1
// containers — the PR 3 format, which had no weights — still decode, every
// member receiving the implicit uniform weight 1.

// Version is the forest container format version this package writes.
// Decoding accepts Version and legacyVersion.
const Version = 2

// legacyVersion is the weightless PR 3 container format, decoded with
// implicit uniform member weights.
const legacyVersion = 1

type forestJSON struct {
	Version  int          `json:"version"`
	Kind     string       `json:"kind,omitempty"` // KindBagged (or absent) | KindBoosted
	Classes  []string     `json:"classes"`
	NumAttrs []attrJSON   `json:"numAttrs"`
	CatAttrs []attrJSON   `json:"catAttrs,omitempty"`
	OOB      *OOBStats    `json:"oob,omitempty"`
	Trees    []memberJSON `json:"trees"`
}

type attrJSON struct {
	Name   string   `json:"name"`
	Domain []string `json:"domain,omitempty"`
}

type memberJSON struct {
	// NumIdx/CatIdx map member attribute positions onto forest schema
	// positions; null means identity (the member sees every attribute). An
	// empty array is meaningful — the member sees none of that kind — so
	// these fields must not use omitempty.
	NumIdx []int `json:"numIdx"`
	CatIdx []int `json:"catIdx"`
	// Weight is the member's vote weight. Version 2 writes it always; a
	// version 1 document has none, which decodes as the uniform weight 1.
	Weight *float64   `json:"weight,omitempty"`
	Tree   *core.Tree `json:"tree"`
}

// MarshalJSON implements json.Marshaler.
func (f *Forest) MarshalJSON() ([]byte, error) {
	doc := forestJSON{
		Version: Version,
		Kind:    f.Kind(),
		Classes: f.Classes,
		Trees:   make([]memberJSON, len(f.members)),
	}
	for _, a := range f.NumAttrs {
		doc.NumAttrs = append(doc.NumAttrs, attrJSON{Name: a.Name})
	}
	for _, a := range f.CatAttrs {
		doc.CatAttrs = append(doc.CatAttrs, attrJSON{Name: a.Name, Domain: a.Domain})
	}
	if f.OOB.Evaluated > 0 {
		oob := f.OOB
		doc.OOB = &oob
	}
	for t := range f.members {
		m := &f.members[t]
		w := m.weight
		tree := m.tree
		if tree == nil {
			// Binary-loaded members carry only the compiled engine;
			// reconstruct the pointer tree for the interchange format.
			var err error
			if tree, err = m.compiled.Decompile(); err != nil {
				return nil, fmt.Errorf("forest: tree %d: %w", t, err)
			}
		}
		doc.Trees[t] = memberJSON{NumIdx: m.numIdx, CatIdx: m.catIdx, Weight: &w, Tree: tree}
	}
	return json.Marshal(doc)
}

// UnmarshalJSON implements json.Unmarshaler, validating the container
// version, member schemas, vote weights and class vocabularies, and
// compiling every member so the loaded forest serves immediately.
func (f *Forest) UnmarshalJSON(b []byte) error {
	var doc forestJSON
	if err := json.Unmarshal(b, &doc); err != nil {
		return err
	}
	if doc.Version != Version && doc.Version != legacyVersion {
		return fmt.Errorf("forest: unknown container version %d (want %d or %d)", doc.Version, legacyVersion, Version)
	}
	switch doc.Kind {
	case "", KindBagged, KindBoosted:
	default:
		return fmt.Errorf("forest: unknown ensemble kind %q", doc.Kind)
	}
	// Version 1 predates kinds and weights entirely; a v1 document that
	// declares "boosted" would decode with silently uniform weights — the
	// exact vote-structure flattening the per-member weight check below
	// exists to prevent.
	if doc.Version == legacyVersion && doc.Kind != "" {
		return fmt.Errorf("forest: version %d containers carry no ensemble kind (got %q)", legacyVersion, doc.Kind)
	}
	if len(doc.Trees) == 0 {
		return errors.New("forest: container has zero trees")
	}
	if len(doc.Classes) == 0 {
		return errors.New("forest: container has no classes")
	}
	f.Classes = doc.Classes
	f.NumAttrs = nil
	for _, a := range doc.NumAttrs {
		f.NumAttrs = append(f.NumAttrs, data.Attribute{Name: a.Name, Kind: data.Numeric})
	}
	f.CatAttrs = nil
	for _, a := range doc.CatAttrs {
		f.CatAttrs = append(f.CatAttrs, data.Attribute{Name: a.Name, Kind: data.Categorical, Domain: a.Domain})
	}
	if doc.OOB != nil {
		f.OOB = *doc.OOB
	} else {
		f.OOB = OOBStats{}
	}
	f.Config = Config{}
	f.kind = doc.Kind
	f.members = make([]member, len(doc.Trees))
	for t, mj := range doc.Trees {
		// Weights are all-or-nothing per version: a v1 document that
		// smuggles one is malformed, and a v2 member without one would
		// silently flatten a boosted model's vote structure to uniform.
		if doc.Version == legacyVersion && mj.Weight != nil {
			return fmt.Errorf("forest: tree %d: version %d containers carry no weights", t, legacyVersion)
		}
		if doc.Version == Version && mj.Weight == nil {
			return fmt.Errorf("forest: tree %d: version %d members must carry a weight", t, Version)
		}
		m, err := f.restoreMember(mj, nil)
		if err != nil {
			return fmt.Errorf("forest: tree %d: %w", t, err)
		}
		f.members[t] = m
	}
	f.initStaged()
	return nil
}

// checkWeight rejects vote weights that would corrupt the weighted-average
// classification: zero or negative weights silence or invert a member, and
// non-finite ones poison every distribution.
func checkWeight(w float64) error {
	if math.IsNaN(w) || math.IsInf(w, 0) || w <= 0 {
		return fmt.Errorf("vote weight %v is not a positive finite number", w)
	}
	return nil
}

// restoreMember validates one container entry against the forest schema and
// compiles its tree. A non-nil precompiled engine (FromTrees reusing the
// trainer's per-round compilation) is adopted instead of compiling again.
func (f *Forest) restoreMember(mj memberJSON, precompiled *core.Compiled) (member, error) {
	if mj.Tree == nil {
		return member{}, errors.New("missing tree document")
	}
	weight := 1.0
	if mj.Weight != nil {
		if err := checkWeight(*mj.Weight); err != nil {
			return member{}, err
		}
		weight = *mj.Weight
	}
	tree := mj.Tree
	numIdx, catIdx, err := f.checkMember(tree.Classes, tree.NumAttrs, tree.CatAttrs, mj.NumIdx, mj.CatIdx)
	if err != nil {
		return member{}, err
	}
	compiled := precompiled
	if compiled == nil {
		if compiled, err = tree.Compile(); err != nil {
			return member{}, err
		}
	}
	return member{tree: tree, compiled: compiled, numIdx: numIdx, catIdx: catIdx, weight: weight, stats: tree.Stats}, nil
}

// checkMember validates one member's schema against the forest's: class
// vocabulary identity, index-map well-formedness, and attribute agreement.
// It is shared by every member source — JSON containers, FromTrees, and
// binary containers via FromCompiled.
func (f *Forest) checkMember(classes []string, numAttrs, catAttrs []data.Attribute, rawNumIdx, rawCatIdx []int) (numIdx, catIdx []int, err error) {
	if err := sameClasses(f.Classes, classes); err != nil {
		return nil, nil, err
	}
	if numIdx, err = checkIdx(rawNumIdx, len(numAttrs), len(f.NumAttrs), "numIdx"); err != nil {
		return nil, nil, err
	}
	if catIdx, err = checkIdx(rawCatIdx, len(catAttrs), len(f.CatAttrs), "catIdx"); err != nil {
		return nil, nil, err
	}
	// The index maps are all-or-nothing: Train emits either both (a
	// projected member) or neither (an identity member), and the projection
	// scratch treats both-nil as identity. A mixed pair would project one
	// attribute kind and not the other, crashing mid-descent.
	if (numIdx == nil) != (catIdx == nil) {
		return nil, nil, errors.New("numIdx and catIdx must be both present or both absent")
	}
	// Attribute identity must agree between the member and the forest
	// attribute it maps to — names for both kinds, domains value-for-value
	// for categorical ones: incoming tuples are decoded against the forest
	// schema, and the member's compiled engine interprets positions and
	// domain indices against its own, so any divergence silently misroutes
	// mass.
	for k, a := range numAttrs {
		fi := k
		if numIdx != nil {
			fi = numIdx[k]
		}
		if want := f.NumAttrs[fi].Name; a.Name != want {
			return nil, nil, fmt.Errorf("numeric attribute %d is %q, container maps it to %q", k, a.Name, want)
		}
	}
	for k, a := range catAttrs {
		fi := k
		if catIdx != nil {
			fi = catIdx[k]
		}
		if want := f.CatAttrs[fi].Name; a.Name != want {
			return nil, nil, fmt.Errorf("categorical attribute %d is %q, container maps it to %q", k, a.Name, want)
		}
		want := f.CatAttrs[fi].Domain
		if len(a.Domain) != len(want) {
			return nil, nil, fmt.Errorf("categorical attribute %q has %d domain values, container has %d", a.Name, len(a.Domain), len(want))
		}
		for v := range want {
			if a.Domain[v] != want[v] {
				return nil, nil, fmt.Errorf("categorical attribute %q domain value %d is %q, container has %q", a.Name, v, a.Domain[v], want[v])
			}
		}
	}
	return numIdx, catIdx, nil
}

// sameClasses rejects members whose class vocabulary diverges from the
// container's: averaging distributions over mismatched labels would silently
// corrupt every prediction.
func sameClasses(forest, tree []string) error {
	if len(forest) != len(tree) {
		return fmt.Errorf("member has %d classes, container has %d", len(tree), len(forest))
	}
	for i := range forest {
		if forest[i] != tree[i] {
			return fmt.Errorf("member class %d is %q, container has %q", i, tree[i], forest[i])
		}
	}
	return nil
}

// checkIdx validates a member attribute index map: absent means identity
// (the member sees all forest attributes, so its schema arity must match);
// present means a projection whose entries address the forest schema.
func checkIdx(idx []int, treeAttrs, forestAttrs int, name string) ([]int, error) {
	if idx == nil {
		if treeAttrs != forestAttrs {
			return nil, fmt.Errorf("member has %d attributes, container has %d and no %s map", treeAttrs, forestAttrs, name)
		}
		return nil, nil
	}
	if len(idx) != treeAttrs {
		return nil, fmt.Errorf("%s has %d entries, member schema has %d attributes", name, len(idx), treeAttrs)
	}
	seen := make(map[int]bool, len(idx))
	for _, j := range idx {
		if j < 0 || j >= forestAttrs {
			return nil, fmt.Errorf("%s entry %d out of range [0, %d)", name, j, forestAttrs)
		}
		if seen[j] {
			return nil, fmt.Errorf("%s entry %d duplicated", name, j)
		}
		seen[j] = true
	}
	return idx, nil
}
