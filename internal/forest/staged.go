package forest

import (
	"fmt"
	"sort"

	"udt/internal/data"
)

// Staged and early-exit inference.
//
// Every ensemble carries a fixed evaluation order: members sorted by
// descending vote weight, ties keeping member index order (a stable sort, so
// a bagged ensemble's uniform weights leave the order exactly the member
// order). All classification — full, staged, and early-exit — walks this one
// order, which makes the stage-k partial accumulation bit-for-bit a prefix of
// the full floating-point summation.
//
// Early exit stops the walk once the argmax is mathematically settled. After
// k members the remaining members j >= k can add at most
//
//	exitUB[k*nc+c] = sum_{j>=k} weight_j * ub_j[c]
//
// to class c, where ub_j is the member's per-class emission upper bound
// (core.Compiled.ClassUpperBounds: no classification of any tuple can assign
// class c more than ub_j[c] of its mass). So when the current leader's margin
// over every other class exceeds that class's remaining bound — plus a slack
// absorbing floating-point rounding of the forgone additions — the leader
// cannot be overtaken, and because the margin is then strictly positive in
// the full sum too, the full evaluation's argmax (with its lowest-index
// tie-break) is exactly the leader. Early exit therefore returns byte-
// identical predictions to full evaluation, by construction.

// exitSlackRel scales the early-exit safety slack: exitSlack is
// exitSlackRel times the total vote weight, many orders of magnitude above
// the rounding error a float64 summation of that mass can accumulate and as
// far below any margin a real ensemble decides by.
const exitSlackRel = 1e-9

// initStaged precomputes the evaluation order, the per-stage remaining
// vote-mass bounds, and the exit slack. Called once by every constructor
// (Train, FromTrees, UnmarshalJSON); the forest is immutable afterwards.
func (f *Forest) initStaged() {
	n := len(f.members)
	nc := len(f.Classes)
	f.order = make([]int, n)
	for i := range f.order {
		f.order[i] = i
	}
	sort.SliceStable(f.order, func(a, b int) bool {
		return f.members[f.order[a]].weight > f.members[f.order[b]].weight
	})
	f.exitUB = make([]float64, (n+1)*nc)
	total := 0.0
	for k := n - 1; k >= 0; k-- {
		m := &f.members[f.order[k]]
		ub := m.compiled.ClassUpperBounds()
		total += m.weight
		for c := 0; c < nc; c++ {
			f.exitUB[k*nc+c] = f.exitUB[(k+1)*nc+c] + m.weight*ub[c]
		}
	}
	f.exitSlack = exitSlackRel * total
}

// StageCount reports the number of stages — one per member — a staged
// evaluation can stop at.
func (f *Forest) StageCount() int { return len(f.members) }

// EvalOrder returns a copy of the member evaluation order: member indices
// sorted by descending vote weight, ties in member order. Stage k evaluates
// exactly the members EvalOrder()[:k].
func (f *Forest) EvalOrder() []int {
	out := make([]int, len(f.order))
	copy(out, f.order)
	return out
}

// checkStage validates a stage count against [1, StageCount()].
func (f *Forest) checkStage(k int) error {
	if k < 1 || k > len(f.members) {
		return fmt.Errorf("forest: stage %d out of [1, %d]", k, len(f.members))
	}
	return nil
}

// ClassifyStaged returns the ensemble distribution after evaluating only the
// first k members of the evaluation order, normalised by their vote weight.
// ClassifyStaged(tu, StageCount()) is exactly Classify(tu).
func (f *Forest) ClassifyStaged(tu *data.Tuple, k int) ([]float64, error) {
	if err := f.checkStage(k); err != nil {
		return nil, err
	}
	out := make([]float64, len(f.Classes))
	s := fscratchPool.Get().(*fscratch)
	total := f.accumulateStaged(tu, out, s, k)
	fscratchPool.Put(s)
	scaleDist(out, total)
	return out, nil
}

// PredictStaged returns the most probable class after evaluating only the
// first k members of the evaluation order (lowest index winning ties).
func (f *Forest) PredictStaged(tu *data.Tuple, k int) (int, error) {
	if err := f.checkStage(k); err != nil {
		return 0, err
	}
	s := fscratchPool.Get().(*fscratch)
	out := s.outBuf(len(f.Classes))
	f.accumulateStaged(tu, out, s, k)
	best := argmax(out)
	fscratchPool.Put(s)
	return best, nil
}

// accumulateStaged sums the weight-scaled distributions of the first k
// members of the evaluation order into out (not zeroed), returning the vote
// weight that contributed. With k == len(f.members) it is the full
// accumulation.
//
//udt:hotpath
func (f *Forest) accumulateStaged(tu *data.Tuple, out []float64, s *fscratch, k int) float64 {
	total := 0.0
	for oi := 0; oi < k; oi++ {
		m := &f.members[f.order[oi]]
		m.compiled.ClassifyIntoWeighted(s.projected(tu, m), out, m.weight)
		total += m.weight
	}
	return total
}

// PredictEarlyExit returns the most probable class for the tuple — byte-
// identical to Predict — and the number of members actually evaluated before
// the argmax was settled.
func (f *Forest) PredictEarlyExit(tu *data.Tuple) (class, membersEvaluated int) {
	s := fscratchPool.Get().(*fscratch)
	class, membersEvaluated = f.predictEarlyExit(tu, s)
	fscratchPool.Put(s)
	return class, membersEvaluated
}

// PredictBatchEarlyExit predicts every tuple with early exit, computed by up
// to workers goroutines. preds is positionally identical to
// PredictBatch(tuples, workers); evaluated[i] counts the members evaluated
// for tuple i (identical at any workers value).
func (f *Forest) PredictBatchEarlyExit(tuples []*data.Tuple, workers int) (preds, evaluated []int) {
	preds = make([]int, len(tuples))
	evaluated = make([]int, len(tuples))
	f.forEach(tuples, workers, func(i int, s *fscratch) {
		preds[i], evaluated[i] = f.predictEarlyExit(tuples[i], s)
	})
	return preds, evaluated
}

// predictEarlyExit walks the evaluation order, checking after each member
// whether the remaining vote mass can still overturn the current leader.
//
//udt:hotpath
func (f *Forest) predictEarlyExit(tu *data.Tuple, s *fscratch) (class, membersEvaluated int) {
	nc := len(f.Classes)
	out := s.outBuf(nc)
	n := len(f.members)
	for oi := 0; oi < n; oi++ {
		m := &f.members[f.order[oi]]
		m.compiled.ClassifyIntoWeighted(s.projected(tu, m), out, m.weight)
		k := oi + 1
		if k == n {
			break
		}
		lead := argmax(out)
		if f.settled(out, lead, k, nc) {
			return lead, k
		}
	}
	return argmax(out), n
}

// settled reports whether, after k members, the leader's margin over every
// other class exceeds that class's remaining vote-mass bound plus the
// rounding slack — at which point no continuation of the evaluation can
// change the argmax.
//
//udt:hotpath
func (f *Forest) settled(out []float64, lead, k, nc int) bool {
	bound := f.exitUB[k*nc : (k+1)*nc]
	leadMass := out[lead]
	for c := 0; c < nc; c++ {
		if c == lead {
			continue
		}
		if leadMass-out[c] < bound[c]+f.exitSlack {
			return false
		}
	}
	return true
}
