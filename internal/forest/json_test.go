package forest

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"udt/internal/core"
)

// TestForestJSONRoundTrip: a trained forest survives the marshal/unmarshal
// cycle with identical predictions and distributions, including members
// restricted to attribute subsets.
func TestForestJSONRoundTrip(t *testing.T) {
	ds := mixedDataset(rand.New(rand.NewSource(21)), 110, 3, 3)
	f := trainForest(t, ds, Config{Trees: 8, Seed: 6, AttrsPerTree: 2, TreeConfig: core.Config{MinWeight: 2}})
	blob, err := json.Marshal(f)
	if err != nil {
		t.Fatal(err)
	}
	var back Forest
	if err := json.Unmarshal(blob, &back); err != nil {
		t.Fatal(err)
	}
	if back.NumTrees() != f.NumTrees() {
		t.Fatalf("round trip changed tree count: %d vs %d", back.NumTrees(), f.NumTrees())
	}
	if back.OOB != f.OOB {
		t.Fatalf("round trip changed OOB stats: %+v vs %+v", back.OOB, f.OOB)
	}
	for i, tu := range ds.Tuples {
		if got, want := back.Predict(tu), f.Predict(tu); got != want {
			t.Fatalf("tuple %d: restored forest predicts %d, original %d", i, got, want)
		}
		gd, wd := back.Classify(tu), f.Classify(tu)
		for c := range wd {
			if gd[c] != wd[c] {
				t.Fatalf("tuple %d class %d: restored %v, original %v", i, c, gd[c], wd[c])
			}
		}
	}
}

// TestForestJSONTruncated: every strict prefix of a valid container must be
// rejected, never panic or yield a partial forest.
func TestForestJSONTruncated(t *testing.T) {
	ds := mixedDataset(rand.New(rand.NewSource(23)), 60, 2, 2)
	f := trainForest(t, ds, Config{Trees: 3, Seed: 7, TreeConfig: core.Config{MinWeight: 2}})
	blob, err := json.Marshal(f)
	if err != nil {
		t.Fatal(err)
	}
	for cut := 1; cut < len(blob); cut += 11 {
		var back Forest
		if err := json.Unmarshal(blob[:cut], &back); err == nil {
			t.Fatalf("truncated container of %d/%d bytes accepted", cut, len(blob))
		}
	}
}

// leaf returns a minimal valid single-tree document body for the given
// class vocabulary.
func leafTree(classes ...string) string {
	dist := make([]string, len(classes))
	for i := range dist {
		dist[i] = "0"
	}
	dist[0] = "1"
	return fmt.Sprintf(`{"classes": [%q%s], "numAttrs": [{"name": "A1"}], "root": {"dist": [%s], "w": 1}}`,
		classes[0], moreClasses(classes[1:]), strings.Join(dist, ", "))
}

func moreClasses(rest []string) string {
	out := ""
	for _, c := range rest {
		out += fmt.Sprintf(", %q", c)
	}
	return out
}

// TestForestJSONErrors covers the malformed-container paths: unknown
// versions, zero trees, mixed class vocabularies, bad index maps and broken
// member documents.
func TestForestJSONErrors(t *testing.T) {
	ab := leafTree("a", "b")
	cases := map[string]struct {
		doc  string
		want string
	}{
		"unknown version": {
			doc:  fmt.Sprintf(`{"version": 99, "classes": ["a", "b"], "numAttrs": [{"name": "A1"}], "trees": [{"tree": %s}]}`, ab),
			want: "unknown container version",
		},
		"missing version": {
			doc:  fmt.Sprintf(`{"classes": ["a", "b"], "numAttrs": [{"name": "A1"}], "trees": [{"tree": %s}]}`, ab),
			want: "unknown container version",
		},
		"zero trees": {
			doc:  `{"version": 1, "classes": ["a", "b"], "numAttrs": [{"name": "A1"}], "trees": []}`,
			want: "zero trees",
		},
		"no classes": {
			doc:  fmt.Sprintf(`{"version": 1, "numAttrs": [{"name": "A1"}], "trees": [{"tree": %s}]}`, ab),
			want: "no classes",
		},
		"mixed class vocabularies": {
			doc: fmt.Sprintf(`{"version": 1, "classes": ["a", "b"], "numAttrs": [{"name": "A1"}], "trees": [{"tree": %s}, {"tree": %s}]}`,
				ab, leafTree("a", "z")),
			want: "container has",
		},
		"member class count mismatch": {
			doc: fmt.Sprintf(`{"version": 1, "classes": ["a", "b", "c"], "numAttrs": [{"name": "A1"}], "trees": [{"tree": %s}]}`,
				ab),
			want: "member has 2 classes",
		},
		"missing tree document": {
			doc:  `{"version": 1, "classes": ["a", "b"], "numAttrs": [{"name": "A1"}], "trees": [{"numIdx": [0]}]}`,
			want: "missing tree",
		},
		"schema arity mismatch without map": {
			doc: fmt.Sprintf(`{"version": 1, "classes": ["a", "b"], "numAttrs": [{"name": "A1"}, {"name": "A2"}], "trees": [{"tree": %s}]}`,
				ab),
			want: "no numIdx map",
		},
		"index map out of range": {
			doc: fmt.Sprintf(`{"version": 1, "classes": ["a", "b"], "numAttrs": [{"name": "A1"}], "trees": [{"numIdx": [5], "catIdx": [], "tree": %s}]}`,
				ab),
			want: "out of range",
		},
		"index map duplicate entry": {
			doc: `{"version": 1, "classes": ["a", "b"], "numAttrs": [{"name": "A1"}, {"name": "A2"}],
				"trees": [{"numIdx": [0, 0], "catIdx": [],
				"tree": {"classes": ["a", "b"], "numAttrs": [{"name": "A1"}, {"name": "A2"}], "root": {"dist": [1, 0], "w": 1}}}]}`,
			want: "duplicated",
		},
		"categorical domain value mismatch": {
			doc: `{"version": 1, "classes": ["a", "b"], "catAttrs": [{"name": "C1", "domain": ["x", "y"]}],
				"trees": [{"tree": {"classes": ["a", "b"],
				"catAttrs": [{"name": "C1", "domain": ["y", "x"]}], "root": {"dist": [1, 0], "w": 1}}}]}`,
			want: "domain value",
		},
		"categorical domain arity mismatch": {
			doc: `{"version": 1, "classes": ["a", "b"], "catAttrs": [{"name": "C1", "domain": ["x", "y"]}],
				"trees": [{"tree": {"classes": ["a", "b"],
				"catAttrs": [{"name": "C1", "domain": ["x", "y", "z"]}], "root": {"dist": [1, 0], "w": 1}}}]}`,
			want: "domain values",
		},
		"attribute name mismatch": {
			doc: `{"version": 1, "classes": ["a", "b"], "numAttrs": [{"name": "A1"}, {"name": "A2"}],
				"trees": [{"numIdx": [1], "catIdx": [],
				"tree": {"classes": ["a", "b"], "numAttrs": [{"name": "A1"}], "root": {"dist": [1, 0], "w": 1}}}]}`,
			want: "maps it to",
		},
		"mixed identity and projection maps": {
			doc: fmt.Sprintf(`{"version": 1, "classes": ["a", "b"], "numAttrs": [{"name": "A1"}], "trees": [{"catIdx": [], "tree": %s}]}`,
				ab),
			want: "both present or both absent",
		},
		"index map arity mismatch": {
			doc: fmt.Sprintf(`{"version": 1, "classes": ["a", "b"], "numAttrs": [{"name": "A1"}], "trees": [{"numIdx": [0, 0], "catIdx": [], "tree": %s}]}`,
				ab),
			want: "numIdx has 2 entries",
		},
	}
	for name, tc := range cases {
		var f Forest
		err := json.Unmarshal([]byte(tc.doc), &f)
		if err == nil {
			t.Errorf("%s: accepted", name)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", name, err, tc.want)
		}
	}
}

// TestForestJSONLegacySingleTreeRejected: a legacy single-tree document must
// not silently decode as a forest (it has no version and no trees array).
func TestForestJSONLegacySingleTreeRejected(t *testing.T) {
	var f Forest
	if err := json.Unmarshal([]byte(leafTree("a", "b")), &f); err == nil {
		t.Fatal("single-tree document accepted as a forest container")
	}
}
