package forest

import (
	"encoding/json"
	"math"
	"math/rand"
	"testing"

	"udt/internal/core"
	"udt/internal/data"
	"udt/internal/pdf"
)

// mixedDataset builds a dataset with numeric pdf attributes, one categorical
// attribute, a sprinkle of missing values, and class-dependent structure so
// trees have signal to find.
func mixedDataset(rng *rand.Rand, n, numAttrs, classes int) *data.Dataset {
	ds := &data.Dataset{Name: "mixed", Classes: make([]string, classes)}
	for c := range ds.Classes {
		ds.Classes[c] = string(rune('a' + c))
	}
	for j := 0; j < numAttrs; j++ {
		ds.NumAttrs = append(ds.NumAttrs, data.Attribute{Name: "N" + string(rune('1'+j)), Kind: data.Numeric})
	}
	ds.CatAttrs = append(ds.CatAttrs, data.Attribute{
		Name: "C1", Kind: data.Categorical, Domain: []string{"x", "y", "z"},
	})
	for i := 0; i < n; i++ {
		c := i % classes
		tu := &data.Tuple{Class: c, Weight: 1}
		for j := 0; j < numAttrs; j++ {
			center := float64(c*10 + j)
			if rng.Float64() < 0.05 {
				tu.Num = append(tu.Num, nil) // missing
				continue
			}
			p, err := pdf.Uniform(center-2+rng.Float64(), center+2+rng.Float64(), 9)
			if err != nil {
				panic(err)
			}
			tu.Num = append(tu.Num, p)
		}
		d := data.CatDist{0.2, 0.2, 0.2}
		d[c%3] += 0.4
		tu.Cat = append(tu.Cat, d)
		ds.Tuples = append(ds.Tuples, tu)
	}
	return ds
}

func trainForest(t *testing.T, ds *data.Dataset, cfg Config) *Forest {
	t.Helper()
	f, err := Train(ds, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

// TestForestDeterministicAcrossWorkers pins the reproducibility contract:
// the serialized forest (trees, index maps, OOB stats) is byte-for-byte
// identical at any Workers value for a fixed Seed.
func TestForestDeterministicAcrossWorkers(t *testing.T) {
	ds := mixedDataset(rand.New(rand.NewSource(7)), 120, 3, 3)
	cfg := Config{Trees: 9, Seed: 42, AttrsPerTree: 2, TreeConfig: core.Config{MinWeight: 2}}
	var blobs [][]byte
	for _, workers := range []int{1, 4, 13} {
		c := cfg
		c.Workers = workers
		f := trainForest(t, ds, c)
		blob, err := json.Marshal(f)
		if err != nil {
			t.Fatal(err)
		}
		blobs = append(blobs, blob)
	}
	for i := 1; i < len(blobs); i++ {
		if string(blobs[i]) != string(blobs[0]) {
			t.Fatalf("forest JSON differs between workers=1 and the %d-th workers value", i)
		}
	}
}

// TestForestBatchMatchesSerial: ClassifyBatch and PredictBatch must be
// positionally identical to per-tuple calls at every worker count.
func TestForestBatchMatchesSerial(t *testing.T) {
	ds := mixedDataset(rand.New(rand.NewSource(3)), 150, 3, 3)
	f := trainForest(t, ds, Config{Trees: 7, Seed: 1, TreeConfig: core.Config{MinWeight: 2}})
	wantDists := make([][]float64, ds.Len())
	wantPreds := make([]int, ds.Len())
	for i, tu := range ds.Tuples {
		wantDists[i] = f.Classify(tu)
		wantPreds[i] = f.Predict(tu)
	}
	for _, workers := range []int{1, 2, 8} {
		dists := f.ClassifyBatch(ds.Tuples, workers)
		preds := f.PredictBatch(ds.Tuples, workers)
		for i := range ds.Tuples {
			if preds[i] != wantPreds[i] {
				t.Fatalf("workers=%d tuple %d: batch predicts %d, serial %d", workers, i, preds[i], wantPreds[i])
			}
			for c := range wantDists[i] {
				if dists[i][c] != wantDists[i][c] {
					t.Fatalf("workers=%d tuple %d class %d: batch %v, serial %v",
						workers, i, c, dists[i][c], wantDists[i][c])
				}
			}
		}
	}
}

// TestForestDistributions: averaged distributions are probability
// distributions, and Predict agrees with Classify's argmax.
func TestForestDistributions(t *testing.T) {
	ds := mixedDataset(rand.New(rand.NewSource(5)), 90, 2, 2)
	f := trainForest(t, ds, Config{Trees: 5, Seed: 2, TreeConfig: core.Config{MinWeight: 2}})
	for i, tu := range ds.Tuples {
		dist := f.Classify(tu)
		sum := 0.0
		for _, p := range dist {
			if p < -1e-12 {
				t.Fatalf("tuple %d: negative probability %v", i, p)
			}
			sum += p
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("tuple %d: distribution sums to %v", i, sum)
		}
		if got, want := f.Predict(tu), argmax(dist); got != want {
			t.Fatalf("tuple %d: Predict %d, argmax of Classify %d", i, got, want)
		}
	}
}

// TestForestOOB: with full-size bootstrap samples and enough trees, nearly
// every tuple should be out of bag for some member, and the stats must be
// well-formed.
func TestForestOOB(t *testing.T) {
	ds := mixedDataset(rand.New(rand.NewSource(11)), 100, 3, 2)
	f := trainForest(t, ds, Config{Trees: 15, Seed: 3, TreeConfig: core.Config{MinWeight: 2}})
	if f.OOB.Evaluated < ds.Len()*9/10 {
		t.Fatalf("only %d/%d tuples evaluated out of bag", f.OOB.Evaluated, ds.Len())
	}
	if f.OOB.Accuracy < 0 || f.OOB.Accuracy > 1 {
		t.Fatalf("OOB accuracy %v out of [0,1]", f.OOB.Accuracy)
	}
	if f.OOB.Brier < 0 || f.OOB.Brier > 2 {
		t.Fatalf("OOB Brier %v out of [0,2]", f.OOB.Brier)
	}
	// The dataset is cleanly separable; OOB accuracy should be far above
	// chance.
	if f.OOB.Accuracy < 0.7 {
		t.Fatalf("OOB accuracy %v suspiciously low for separable data", f.OOB.Accuracy)
	}
}

// TestForestAttrSubsets: restricting members to random attribute subsets
// must still classify through the projection maps, including after a JSON
// round trip.
func TestForestAttrSubsets(t *testing.T) {
	ds := mixedDataset(rand.New(rand.NewSource(13)), 120, 3, 3)
	f := trainForest(t, ds, Config{Trees: 12, Seed: 4, AttrsPerTree: 2, TreeConfig: core.Config{MinWeight: 2}})
	correct := 0
	for _, tu := range ds.Tuples {
		if f.Predict(tu) == tu.Class {
			correct++
		}
	}
	if frac := float64(correct) / float64(ds.Len()); frac < 0.6 {
		t.Fatalf("attribute-subset forest training accuracy %v too low", frac)
	}
}

// TestForestTrainErrors covers configuration and dataset validation.
func TestForestTrainErrors(t *testing.T) {
	ds := mixedDataset(rand.New(rand.NewSource(1)), 40, 2, 2)
	cases := map[string]Config{
		"negative sample ratio": {Trees: 3, SampleRatio: -0.5},
		"sample ratio above 1":  {Trees: 3, SampleRatio: 1.5},
		"NaN sample ratio":      {Trees: 3, SampleRatio: math.NaN()},
		"attrs out of range":    {Trees: 3, AttrsPerTree: 99},
		"negative attrs":        {Trees: 3, AttrsPerTree: -1},
	}
	for name, cfg := range cases {
		if _, err := Train(ds, cfg); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
	if _, err := Train(&data.Dataset{Classes: []string{"a"}}, Config{}); err == nil {
		t.Error("empty dataset accepted")
	}
}

// TestForestStats: aggregate stats cover every member.
func TestForestStats(t *testing.T) {
	ds := mixedDataset(rand.New(rand.NewSource(9)), 80, 2, 2)
	f := trainForest(t, ds, Config{Trees: 4, Seed: 5, TreeConfig: core.Config{MinWeight: 2}})
	s := f.Stats()
	if f.NumTrees() != 4 {
		t.Fatalf("NumTrees = %d, want 4", f.NumTrees())
	}
	if s.Nodes < 4 || s.Leaves < 4 || s.Depth < 1 {
		t.Fatalf("implausible aggregate stats %+v", s)
	}
}
