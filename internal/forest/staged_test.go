package forest

import (
	"encoding/json"
	"math"
	"math/rand"
	"testing"

	"udt/internal/core"
)

// TestEvalOrder: members must be visited by descending vote weight with ties
// keeping member order, so a bagged ensemble's order is the member order.
func TestEvalOrder(t *testing.T) {
	trees := buildTrees(t, 5)
	weights := []float64{0.5, 2, 1, 2, 1}
	f, err := FromTrees(weightedTrees(trees, weights), KindBoosted)
	if err != nil {
		t.Fatal(err)
	}
	want := []int{1, 3, 2, 4, 0}
	got := f.EvalOrder()
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("EvalOrder = %v, want %v", got, want)
		}
	}
	if f.StageCount() != 5 {
		t.Fatalf("StageCount = %d", f.StageCount())
	}

	ds := mixedDataset(rand.New(rand.NewSource(11)), 80, 2, 3)
	bagged := trainForest(t, ds, Config{Trees: 6, Seed: 3, TreeConfig: core.Config{MinWeight: 2}})
	for i, m := range bagged.EvalOrder() {
		if m != i {
			t.Fatalf("bagged EvalOrder = %v, want identity", bagged.EvalOrder())
		}
	}
}

// TestClassifyStagedPrefix: the stage-k distribution must equal the
// weight-weighted average of the first k evaluation-order members computed
// independently through the recursive trees, for every k — and the final
// stage must be byte-identical to Classify.
func TestClassifyStagedPrefix(t *testing.T) {
	trees := buildTrees(t, 5)
	weights := []float64{0.5, 2, 1, 2, 1}
	f, err := FromTrees(weightedTrees(trees, weights), KindBoosted)
	if err != nil {
		t.Fatal(err)
	}
	order := f.EvalOrder()
	ds := mixedDataset(rand.New(rand.NewSource(13)), 40, 2, 3)
	for i, tu := range ds.Tuples {
		for k := 1; k <= f.StageCount(); k++ {
			got, err := f.ClassifyStaged(tu, k)
			if err != nil {
				t.Fatal(err)
			}
			want := make([]float64, len(f.Classes))
			total := 0.0
			for _, m := range order[:k] {
				for c, p := range trees[m].Classify(tu) {
					want[c] += weights[m] * p
				}
				total += weights[m]
			}
			for c := range want {
				want[c] /= total
				if math.Abs(got[c]-want[c]) > 1e-12 {
					t.Fatalf("tuple %d stage %d class %d: staged %v, manual %v", i, k, c, got[c], want[c])
				}
			}
			pred, err := f.PredictStaged(tu, k)
			if err != nil {
				t.Fatal(err)
			}
			if pred != argmax(got) {
				t.Fatalf("tuple %d stage %d: PredictStaged %d, argmax of ClassifyStaged %d", i, k, pred, argmax(got))
			}
		}
		full, err := f.ClassifyStaged(tu, f.StageCount())
		if err != nil {
			t.Fatal(err)
		}
		for c, p := range f.Classify(tu) {
			if full[c] != p {
				t.Fatalf("tuple %d class %d: final stage %v != Classify %v", i, c, full[c], p)
			}
		}
	}
}

// TestStagedStageErrors: stage counts outside [1, StageCount()] must be
// rejected.
func TestStagedStageErrors(t *testing.T) {
	trees := buildTrees(t, 3)
	f, err := FromTrees(weightedTrees(trees, []float64{3, 2, 1}), KindBoosted)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []int{-1, 0, 4} {
		if _, err := f.ClassifyStaged(nil, k); err == nil {
			t.Errorf("ClassifyStaged accepted stage %d", k)
		}
		if _, err := f.PredictStaged(nil, k); err == nil {
			t.Errorf("PredictStaged accepted stage %d", k)
		}
	}
}

// TestPredictEarlyExitMatchesFull: early exit must return exactly Predict's
// class on every tuple — for boosted ensembles (skewed weights, where exits
// actually trigger) and for bagged projected ones (uniform weights, the
// degenerate order) — while evaluating between 1 and StageCount() members.
func TestPredictEarlyExitMatchesFull(t *testing.T) {
	trees := buildTrees(t, 7)
	weights := []float64{4, 2.5, 1.5, 1, 0.75, 0.5, 0.25}
	boosted, err := FromTrees(weightedTrees(trees, weights), KindBoosted)
	if err != nil {
		t.Fatal(err)
	}
	ds := mixedDataset(rand.New(rand.NewSource(17)), 120, 2, 3)
	bagged := trainForest(t, ds, Config{Trees: 7, Seed: 5, AttrsPerTree: 2, TreeConfig: core.Config{MinWeight: 2}})

	for name, f := range map[string]*Forest{"boosted": boosted, "bagged": bagged} {
		exits := 0
		for i, tu := range ds.Tuples {
			class, k := f.PredictEarlyExit(tu)
			if want := f.Predict(tu); class != want {
				t.Fatalf("%s tuple %d: early exit predicts %d, full %d", name, i, class, want)
			}
			if k < 1 || k > f.StageCount() {
				t.Fatalf("%s tuple %d: evaluated %d members of %d", name, i, k, f.StageCount())
			}
			if k < f.StageCount() {
				exits++
			}
		}
		if name == "boosted" && exits == 0 {
			t.Error("boosted: early exit never triggered on a heavily skewed ensemble")
		}
	}
}

// TestPredictBatchEarlyExit: the batch path must be positionally identical to
// the serial one — predictions and evaluated counts — at every worker count.
func TestPredictBatchEarlyExit(t *testing.T) {
	trees := buildTrees(t, 5)
	f, err := FromTrees(weightedTrees(trees, []float64{3, 2, 1.5, 1, 0.5}), KindBoosted)
	if err != nil {
		t.Fatal(err)
	}
	ds := mixedDataset(rand.New(rand.NewSource(19)), 100, 2, 3)
	wantPreds := make([]int, ds.Len())
	wantEval := make([]int, ds.Len())
	for i, tu := range ds.Tuples {
		wantPreds[i], wantEval[i] = f.PredictEarlyExit(tu)
	}
	for _, workers := range []int{1, 2, 8} {
		preds, eval := f.PredictBatchEarlyExit(ds.Tuples, workers)
		for i := range ds.Tuples {
			if preds[i] != wantPreds[i] || eval[i] != wantEval[i] {
				t.Fatalf("workers=%d tuple %d: batch (%d, %d), serial (%d, %d)",
					workers, i, preds[i], eval[i], wantPreds[i], wantEval[i])
			}
		}
	}
}

// TestStagedSurvivesRoundTrip: a forest restored from its JSON container must
// carry the same evaluation order and early-exit behaviour as the original.
func TestStagedSurvivesRoundTrip(t *testing.T) {
	trees := buildTrees(t, 4)
	f, err := FromTrees(weightedTrees(trees, []float64{2, 3, 1, 1}), KindBoosted)
	if err != nil {
		t.Fatal(err)
	}
	blob, err := json.Marshal(f)
	if err != nil {
		t.Fatal(err)
	}
	var back Forest
	if err := json.Unmarshal(blob, &back); err != nil {
		t.Fatal(err)
	}
	wantOrder := f.EvalOrder()
	for i, m := range back.EvalOrder() {
		if m != wantOrder[i] {
			t.Fatalf("restored EvalOrder = %v, want %v", back.EvalOrder(), wantOrder)
		}
	}
	ds := mixedDataset(rand.New(rand.NewSource(23)), 50, 2, 3)
	for i, tu := range ds.Tuples {
		c1, k1 := f.PredictEarlyExit(tu)
		c2, k2 := back.PredictEarlyExit(tu)
		if c1 != c2 || k1 != k2 {
			t.Fatalf("tuple %d: original (%d, %d), restored (%d, %d)", i, c1, k1, c2, k2)
		}
	}
}
