// Package forest implements bagged ensembles of uncertain decision trees.
// Each member is trained on a bootstrap resample of the training tuples,
// optionally restricted to a random attribute subset, and kept in compiled
// (flat-array) form, so inference is the same zero-allocation descent the
// single-tree serving path uses — repeated per tree and averaged.
//
// Forest voting is distribution averaging: the classification distribution
// of the ensemble is the mean of the member distributions, the same
// operation the paper's Averaging baseline applies within one tree, lifted
// across trees. Training is embarrassingly parallel and deterministic: every
// member derives its own RNG stream from Config.Seed and its tree index, so
// the forest is bit-for-bit identical at any Config.Workers value.
package forest

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"

	"udt/internal/core"
	"udt/internal/data"
	"udt/internal/obs"
	"udt/internal/par"
	"udt/internal/pdf"
)

// Config controls forest training.
type Config struct {
	Trees        int         // ensemble size (default 25)
	SampleRatio  float64     // bootstrap sample size as a fraction of the training set, in (0, 1] (default 1)
	AttrsPerTree int         // attributes visible to each tree; 0 means all
	Seed         int64       // base RNG seed; per-tree streams derive from it
	Workers      int         // concurrent member builds (<= 1 means serial); never changes the result
	TreeConfig   core.Config // member tree construction (post-pruning off by default: bagging prefers low-bias members)
}

// withDefaults fills zero values.
func (c Config) withDefaults() Config {
	if c.Trees <= 0 {
		c.Trees = 25
	}
	if c.SampleRatio == 0 {
		c.SampleRatio = 1
	}
	return c
}

// OOBStats summarises the out-of-bag evaluation computed during training:
// every tuple is classified by the members whose bootstrap sample missed it,
// an unbiased estimate of generalisation without a held-out set.
type OOBStats struct {
	Accuracy  float64 `json:"accuracy"`
	Brier     float64 `json:"brier"`
	Evaluated int     `json:"evaluated"` // tuples with at least one out-of-bag member
}

// Ensemble kinds: how the members were trained and how their votes combine.
const (
	KindBagged  = "bagged"  // uniform votes over bootstrap-resampled members
	KindBoosted = "boosted" // SAMME vote weights from internal/boost
)

// member is one tree of the ensemble. numIdx/catIdx map the member's
// (possibly projected) attribute schema back onto the forest schema; both
// nil means the member sees every attribute. weight is the member's vote
// weight (1 for bagged members, the SAMME alpha for boosted ones). tree is
// the pointer-linked source tree when the member came from training or a
// JSON container; members loaded from the binary format carry only the
// compiled engine and a nil tree (stats holds their build statistics either
// way, so Stats and Describe never need the tree).
type member struct {
	tree     *core.Tree
	compiled *core.Compiled
	numIdx   []int
	catIdx   []int
	weight   float64
	stats    core.BuildStats
}

// Forest is a trained ensemble — bagged (uniform votes) or boosted
// (weighted votes). It is immutable after Train (or UnmarshalJSON) and safe
// for concurrent use.
type Forest struct {
	Classes  []string
	NumAttrs []data.Attribute
	CatAttrs []data.Attribute
	OOB      OOBStats
	Config   Config // the training configuration; zero for loaded models

	kind    string // KindBagged or KindBoosted; "" means KindBagged
	members []member

	// Staged-evaluation state, precomputed by initStaged (see staged.go).
	order     []int     // member indices by descending vote weight, stable
	exitUB    []float64 // [(stage)*nc + class]: max vote mass the unevaluated members can add
	exitSlack float64   // float-rounding safety margin for the exit test
}

// NumTrees reports the ensemble size.
func (f *Forest) NumTrees() int { return len(f.members) }

// Kind reports how the ensemble votes: KindBagged (uniform) or KindBoosted
// (weighted).
func (f *Forest) Kind() string {
	if f.kind == "" {
		return KindBagged
	}
	return f.kind
}

// Weights returns a copy of the per-member vote weights, in member order.
func (f *Forest) Weights() []float64 {
	ws := make([]float64, len(f.members))
	for t := range f.members {
		ws[t] = f.members[t].weight
	}
	return ws
}

// WeightedTree pairs one member tree with its vote weight for FromTrees.
// Compiled optionally carries the tree's already-flattened engine so a
// trainer that compiled each member anyway (boosting compiles per round to
// measure the weighted error) does not pay a second Compile; nil compiles
// here.
type WeightedTree struct {
	Tree     *core.Tree
	Compiled *core.Compiled
	Weight   float64
}

// FromTrees assembles an ensemble from already-built trees and their vote
// weights — the constructor internal/boost uses to package a boosted run as
// a servable Forest. Every tree must share the first tree's schema (boosted
// members always see every attribute, so there are no index maps), and every
// weight must be positive and finite.
func FromTrees(members []WeightedTree, kind string) (*Forest, error) {
	if len(members) == 0 {
		return nil, errors.New("forest: ensemble needs at least one tree")
	}
	if kind != KindBagged && kind != KindBoosted {
		return nil, fmt.Errorf("forest: unknown ensemble kind %q", kind)
	}
	first := members[0].Tree
	if first == nil {
		return nil, errors.New("forest: tree 0: missing tree document")
	}
	f := &Forest{
		Classes:  first.Classes,
		NumAttrs: first.NumAttrs,
		CatAttrs: first.CatAttrs,
		kind:     kind,
		members:  make([]member, len(members)),
	}
	for t, wt := range members {
		m, err := f.restoreMember(memberJSON{Tree: wt.Tree, Weight: &members[t].Weight}, wt.Compiled)
		if err != nil {
			return nil, fmt.Errorf("forest: tree %d: %w", t, err)
		}
		f.members[t] = m
	}
	f.initStaged()
	return f, nil
}

// Members returns the ensemble's trees and their vote weights in member
// (storage) order, sharing the compiled engines with the forest. Note that
// FromTrees cannot round-trip members trained with attribute projections
// (AttrsPerTree > 0): their trees carry the projected schema.
func (f *Forest) Members() []WeightedTree {
	out := make([]WeightedTree, len(f.members))
	for t := range f.members {
		m := &f.members[t]
		out[t] = WeightedTree{Tree: m.tree, Compiled: m.compiled, Weight: m.weight}
	}
	return out
}

// Schema returns the class labels and attribute schema, mirroring the
// single-tree model metadata.
func (f *Forest) Schema() (classes []string, num, cat []data.Attribute) {
	return f.Classes, f.NumAttrs, f.CatAttrs
}

// Stats aggregates the members' build statistics: summed nodes, leaves,
// search counters and prune counts, maximum depth.
func (f *Forest) Stats() core.BuildStats {
	var s core.BuildStats
	for i := range f.members {
		ms := f.members[i].stats
		s.Search.Add(ms.Search)
		s.Nodes += ms.Nodes
		s.Leaves += ms.Leaves
		s.Pruned += ms.Pruned
		if ms.Depth > s.Depth {
			s.Depth = ms.Depth
		}
	}
	return s
}

// Describe renders a one-line summary for CLI and server metadata.
func (f *Forest) Describe() string {
	s := f.Stats()
	name := "forest"
	if f.Kind() == KindBoosted {
		name = "boosted ensemble"
	}
	return fmt.Sprintf("%s (%d trees, %d nodes, depth %d)", name, len(f.members), s.Nodes, s.Depth)
}

// Train builds a bagged ensemble from the uncertain dataset. Member t draws
// its bootstrap sample and attribute subset from an RNG stream derived only
// from (cfg.Seed, t), so the forest is identical at any Workers value.
func Train(ds *data.Dataset, cfg Config) (*Forest, error) {
	if err := ds.Validate(); err != nil {
		return nil, err
	}
	if ds.Len() == 0 {
		return nil, errors.New("forest: cannot train on an empty dataset")
	}
	cfg = cfg.withDefaults()
	// The negated form also rejects NaN, which passes every ordered check.
	if !(cfg.SampleRatio > 0 && cfg.SampleRatio <= 1) {
		return nil, fmt.Errorf("forest: SampleRatio %v out of (0, 1]", cfg.SampleRatio)
	}
	totalAttrs := len(ds.NumAttrs) + len(ds.CatAttrs)
	if cfg.AttrsPerTree < 0 || cfg.AttrsPerTree > totalAttrs {
		return nil, fmt.Errorf("forest: AttrsPerTree %d out of [0, %d]", cfg.AttrsPerTree, totalAttrs)
	}
	f := &Forest{
		Classes:  ds.Classes,
		NumAttrs: ds.NumAttrs,
		CatAttrs: ds.CatAttrs,
		Config:   cfg,
		members:  make([]member, cfg.Trees),
	}
	inBag := make([][]bool, cfg.Trees)
	errs := make([]error, cfg.Trees)
	// Member events flow through the same hook core.Build uses for node
	// events — one instrumentation channel for the whole training stack.
	hook := cfg.TreeConfig.Progress
	train := func(t int) {
		// The hook owns the clock — this package may not consult it.
		memberDone := hook.StartMember()
		rng := rand.New(rand.NewSource(treeSeed(cfg.Seed, t)))
		f.members[t], inBag[t], errs[t] = trainOne(ds, cfg, rng)
		if errs[t] == nil {
			stats := f.members[t].stats
			memberDone(obs.MemberBuild{
				Index: t,
				Total: cfg.Trees,
				Nodes: stats.Nodes,
				Depth: stats.Depth,
			})
		}
	}
	workers := cfg.Workers
	if workers > cfg.Trees {
		workers = cfg.Trees
	}
	if workers <= 1 {
		for t := 0; t < cfg.Trees; t++ {
			train(t)
		}
	} else {
		var cursor atomic.Int64
		var wg sync.WaitGroup
		wg.Add(workers)
		for k := 0; k < workers; k++ {
			go func() {
				defer wg.Done()
				for {
					t := int(cursor.Add(1)) - 1
					if t >= cfg.Trees {
						return
					}
					train(t)
				}
			}()
		}
		wg.Wait()
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	f.initStaged()
	f.computeOOB(ds, inBag)
	return f, nil
}

// treeSeed derives member t's RNG seed from the base seed with a splitmix64
// scramble, decorrelating the per-tree streams.
func treeSeed(seed int64, t int) int64 {
	z := uint64(seed) + 0x9E3779B97F4A7C15*uint64(t+1)
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return int64(z ^ (z >> 31))
}

// trainOne draws one bootstrap sample and attribute subset, builds and
// compiles the member, and reports which tuples stayed out of the bag.
func trainOne(ds *data.Dataset, cfg Config, rng *rand.Rand) (member, []bool, error) {
	n := ds.Len()
	draws := int(math.Round(cfg.SampleRatio * float64(n)))
	if draws < 1 {
		draws = 1
	}
	idx := make([]int, draws)
	sampled := make([]bool, n)
	for i := range idx {
		j := rng.Intn(n)
		idx[i] = j
		sampled[j] = true
	}
	inBag := sampled
	sample := ds.Subset(idx)
	numIdx, catIdx := pickAttrs(ds, cfg.AttrsPerTree, rng)
	if numIdx != nil || catIdx != nil {
		sample = project(sample, numIdx, catIdx)
	}
	tree, err := core.Build(sample, cfg.TreeConfig)
	if err != nil {
		return member{}, nil, fmt.Errorf("forest: member build: %w", err)
	}
	compiled, err := tree.Compile()
	if err != nil {
		return member{}, nil, fmt.Errorf("forest: member compile: %w", err)
	}
	return member{tree: tree, compiled: compiled, numIdx: numIdx, catIdx: catIdx, weight: 1, stats: tree.Stats}, inBag, nil
}

// pickAttrs selects k of the dataset's attributes uniformly at random,
// returning (nil, nil) when the member sees every attribute. Numeric
// attributes occupy global indices [0, len(NumAttrs)), categorical the rest.
func pickAttrs(ds *data.Dataset, k int, rng *rand.Rand) (numIdx, catIdx []int) {
	total := len(ds.NumAttrs) + len(ds.CatAttrs)
	if k <= 0 || k >= total {
		return nil, nil
	}
	picks := rng.Perm(total)[:k]
	// Sorted order keeps the member schema in forest attribute order.
	sort.Ints(picks)
	numIdx = make([]int, 0, k)
	catIdx = make([]int, 0, k)
	for _, j := range picks {
		if j < len(ds.NumAttrs) {
			numIdx = append(numIdx, j)
		} else {
			catIdx = append(catIdx, j-len(ds.NumAttrs))
		}
	}
	return numIdx, catIdx
}

// project returns a dataset view restricted to the given attribute indices.
// pdfs and categorical distributions are shared, not copied.
func project(ds *data.Dataset, numIdx, catIdx []int) *data.Dataset {
	out := &data.Dataset{
		Name:     ds.Name,
		Classes:  ds.Classes,
		NumAttrs: make([]data.Attribute, len(numIdx)),
		CatAttrs: make([]data.Attribute, len(catIdx)),
		Tuples:   make([]*data.Tuple, ds.Len()),
	}
	for k, j := range numIdx {
		out.NumAttrs[k] = ds.NumAttrs[j]
	}
	for k, j := range catIdx {
		out.CatAttrs[k] = ds.CatAttrs[j]
	}
	for i, tu := range ds.Tuples {
		pt := &data.Tuple{Class: tu.Class, Weight: tu.Weight}
		pt.Num = make([]*pdf.PDF, len(numIdx))
		for k, j := range numIdx {
			pt.Num[k] = tu.Num[j]
		}
		pt.Cat = make([]data.CatDist, len(catIdx))
		for k, j := range catIdx {
			pt.Cat[k] = tu.Cat[j]
		}
		out.Tuples[i] = pt
	}
	return out
}

// fscratch holds a reusable projected-tuple buffer per classifying
// goroutine, so a warm forest classification performs no allocation beyond
// what the compiled members themselves pool.
type fscratch struct {
	num   []*pdf.PDF
	cat   []data.CatDist
	tuple data.Tuple
	out   []float64
}

var fscratchPool = sync.Pool{New: func() any { return new(fscratch) }}

// projected fills the scratch tuple with tu restricted to the member's
// attribute subset. The returned pointer is only valid until the next call.
//
//udt:hotpath
func (s *fscratch) projected(tu *data.Tuple, m *member) *data.Tuple {
	if m.numIdx == nil && m.catIdx == nil {
		return tu
	}
	s.num = s.num[:0]
	for _, j := range m.numIdx {
		s.num = append(s.num, tu.Num[j])
	}
	s.cat = s.cat[:0]
	for _, j := range m.catIdx {
		s.cat = append(s.cat, tu.Cat[j])
	}
	s.tuple = data.Tuple{Num: s.num, Cat: s.cat, Class: tu.Class, Weight: tu.Weight}
	return &s.tuple
}

// outBuf returns a zeroed distribution buffer of the given arity.
//
//udt:hotpath
func (s *fscratch) outBuf(nc int) []float64 {
	if cap(s.out) < nc {
		s.out = make([]float64, nc) //udt:alloc-ok amortised warm-up growth of pooled scratch
	}
	s.out = s.out[:nc]
	for i := range s.out {
		s.out[i] = 0
	}
	return s.out
}

// accumulate sums the weight-scaled member distributions for tu into out
// (not zeroed), visiting members in the staged evaluation order (descending
// vote weight, ties in member order — the member order itself for bagged
// ensembles) so the floating-point summation is deterministic and every
// staged prefix is bit-for-bit a prefix of the full sum. use filters members
// by member index; nil means all. It returns the total vote weight that
// contributed (the member count for bagged ensembles, whose weights are
// all 1).
//
//udt:hotpath
func (f *Forest) accumulate(tu *data.Tuple, out []float64, s *fscratch, use func(t int) bool) float64 {
	if use == nil {
		return f.accumulateStaged(tu, out, s, len(f.members))
	}
	total := 0.0
	for oi := range f.members {
		t := f.order[oi]
		if !use(t) {
			continue
		}
		m := &f.members[t]
		m.compiled.ClassifyIntoWeighted(s.projected(tu, m), out, m.weight)
		total += m.weight
	}
	return total
}

// Classify returns the ensemble's probability distribution over class
// labels: the vote-weight-weighted mean of the member distributions (the
// plain mean for bagged ensembles).
func (f *Forest) Classify(tu *data.Tuple) []float64 {
	out := make([]float64, len(f.Classes))
	s := fscratchPool.Get().(*fscratch)
	total := f.accumulate(tu, out, s, nil)
	fscratchPool.Put(s)
	scaleDist(out, total)
	return out
}

// Predict returns the most probable class label index under the averaged
// distribution, lowest index winning ties (Tree.Predict's convention).
func (f *Forest) Predict(tu *data.Tuple) int {
	s := fscratchPool.Get().(*fscratch)
	out := s.outBuf(len(f.Classes))
	f.accumulate(tu, out, s, nil)
	best := argmax(out)
	fscratchPool.Put(s)
	return best
}

// ClassifyBatch classifies every tuple with up to workers goroutines,
// returning one averaged distribution per tuple. Results are positionally
// identical to calling Classify per tuple.
func (f *Forest) ClassifyBatch(tuples []*data.Tuple, workers int) [][]float64 {
	out := make([][]float64, len(tuples))
	f.forEach(tuples, workers, func(i int, s *fscratch) {
		d := make([]float64, len(f.Classes))
		total := f.accumulate(tuples[i], d, s, nil)
		scaleDist(d, total)
		out[i] = d
	})
	return out
}

// PredictBatch returns the most probable class index per tuple, computed by
// up to workers goroutines.
func (f *Forest) PredictBatch(tuples []*data.Tuple, workers int) []int {
	out := make([]int, len(tuples))
	f.forEach(tuples, workers, func(i int, s *fscratch) {
		buf := s.outBuf(len(f.Classes))
		f.accumulate(tuples[i], buf, s, nil)
		out[i] = argmax(buf)
	})
	return out
}

// forEach applies fn to every tuple index, each worker carrying its own
// pooled scratch, claiming par.BatchGrain-sized blocks off an atomic cursor.
func (f *Forest) forEach(tuples []*data.Tuple, workers int, fn func(i int, s *fscratch)) {
	par.ForEach(len(tuples), workers,
		func() *fscratch { return fscratchPool.Get().(*fscratch) },
		fn,
		func(s *fscratch) { fscratchPool.Put(s) })
}

// computeOOB evaluates every training tuple against the members whose
// bootstrap sample missed it, filling f.OOB. The per-tuple work is
// independent, so it parallelises over tuples with the training Workers
// knob without affecting the result.
func (f *Forest) computeOOB(ds *data.Dataset, inBag [][]bool) {
	n := ds.Len()
	correct := make([]bool, n)
	evaluated := make([]bool, n)
	brier := make([]float64, n)
	f.forEach(ds.Tuples, f.Config.Workers, func(i int, s *fscratch) {
		out := s.outBuf(len(f.Classes))
		cnt := f.accumulate(ds.Tuples[i], out, s, func(t int) bool { return !inBag[t][i] })
		if cnt == 0 {
			return
		}
		evaluated[i] = true
		correct[i] = argmax(out) == ds.Tuples[i].Class
		sum := 0.0
		for c, p := range out {
			p /= cnt
			target := 0.0
			if c == ds.Tuples[i].Class {
				target = 1
			}
			sum += (p - target) * (p - target)
		}
		brier[i] = sum
	})
	var stats OOBStats
	hits := 0
	for i := 0; i < n; i++ {
		if !evaluated[i] {
			continue
		}
		stats.Evaluated++
		stats.Brier += brier[i]
		if correct[i] {
			hits++
		}
	}
	if stats.Evaluated > 0 {
		stats.Accuracy = float64(hits) / float64(stats.Evaluated)
		stats.Brier /= float64(stats.Evaluated)
	}
	f.OOB = stats
}

// scaleDist divides the accumulated distribution by the total vote weight,
// turning the weighted sum into the ensemble average.
func scaleDist(out []float64, total float64) {
	if total <= 0 {
		return
	}
	inv := 1 / total
	for i := range out {
		out[i] *= inv
	}
}

// argmax selects the predicted class with par.Argmax's tie-breaking (lowest
// index wins), the same convention as core.
func argmax(dist []float64) int { return par.Argmax(dist) }
