package eval

import (
	"errors"
	"math"
	"math/rand"

	"udt/internal/core"
	"udt/internal/data"
)

// Width tuning per §4.4 of the paper: the accuracy-vs-w curve has a wide
// plateau, so a good uncertainty width is estimated as the midpoint of the
// w range whose 95% confidence interval overlaps that of the best
// observed accuracy.

// WidthPoint is the measured accuracy at one candidate width.
type WidthPoint struct {
	W      float64
	Mean   float64 // mean CV accuracy over the repeats
	StdErr float64 // standard error of the mean
	Runs   int
}

// TuneWidth evaluates each candidate width by repeated stratified
// cross-validation on the point data p (injecting uncertainty with the
// given sample count and error model) and returns the §4.4 estimate: the
// midpoint of the plateau of widths statistically indistinguishable from
// the best. repeats >= 2 is required for confidence intervals.
func TuneWidth(p *data.Points, ws []float64, s int, model data.ErrorModel, cfg core.Config, folds, repeats int, rng *rand.Rand) (bestW float64, points []WidthPoint, err error) {
	if len(ws) == 0 {
		return 0, nil, errors.New("eval: no candidate widths")
	}
	if repeats < 2 {
		return 0, nil, errors.New("eval: width tuning needs repeats >= 2 for confidence intervals")
	}
	if rng == nil {
		return 0, nil, errors.New("eval: nil rng")
	}
	points = make([]WidthPoint, 0, len(ws))
	for _, w := range ws {
		ds, err := data.Inject(p, data.InjectConfig{W: w, S: s, Model: model})
		if err != nil {
			return 0, nil, err
		}
		accs := make([]float64, repeats)
		for r := range accs {
			res, err := CrossValidate(ds, folds, cfg, rand.New(rand.NewSource(rng.Int63())))
			if err != nil {
				return 0, nil, err
			}
			accs[r] = res.Accuracy
		}
		mean, se := meanStdErr(accs)
		points = append(points, WidthPoint{W: w, Mean: mean, StdErr: se, Runs: repeats})
	}
	// The best point and its 95% CI.
	best := points[0]
	for _, pt := range points[1:] {
		if pt.Mean > best.Mean {
			best = pt
		}
	}
	const z = 1.96
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, pt := range points {
		// Overlapping confidence intervals with the best point.
		if pt.Mean+z*pt.StdErr >= best.Mean-z*best.StdErr {
			if pt.W < lo {
				lo = pt.W
			}
			if pt.W > hi {
				hi = pt.W
			}
		}
	}
	return (lo + hi) / 2, points, nil
}

// meanStdErr returns the sample mean and the standard error of the mean.
func meanStdErr(xs []float64) (mean, se float64) {
	n := float64(len(xs))
	for _, x := range xs {
		mean += x
	}
	mean /= n
	if len(xs) < 2 {
		return mean, 0
	}
	var ss float64
	for _, x := range xs {
		d := x - mean
		ss += d * d
	}
	return mean, math.Sqrt(ss/(n-1)) / math.Sqrt(n)
}
