package eval

import (
	"math/rand"
	"time"

	"udt/internal/boost"
	"udt/internal/data"
)

// Boosted variants of the evaluation protocols. A boosted ensemble is a
// *forest.Forest (kind boosted), so the metric paths — accuracy, confusion,
// Brier, log-loss over weighted averaged distributions — are the Forest*
// functions; only the training step differs.

// BoostTrainTest trains a boosted ensemble on train and evaluates on test,
// aggregating the members' build statistics into the Result.
func BoostTrainTest(train, test *data.Dataset, cfg boost.Config) (Result, error) {
	start := time.Now()
	f, err := boost.Train(train, cfg)
	if err != nil {
		return Result{}, err
	}
	build := time.Since(start)

	start = time.Now()
	preds := f.PredictBatch(test.Tuples, cfg.Workers)
	classify := time.Since(start)

	stats := f.Stats()
	return Result{
		Accuracy:     accuracyOf(preds, test),
		Confusion:    confusion(test.Classes, preds, test),
		BuildTime:    build,
		ClassifyTime: classify,
		Search:       stats.Search,
		Nodes:        stats.Nodes,
		Leaves:       stats.Leaves,
		Depth:        stats.Depth,
	}, nil
}

// BoostCrossValidate runs stratified k-fold cross-validation of the boosted
// ensemble, sharing CrossValidate's fold protocol so boosted, bagged and
// single-tree accuracy compare on identical folds for a given rng state.
func BoostCrossValidate(ds *data.Dataset, k int, cfg boost.Config, rng *rand.Rand) (Result, error) {
	return crossValidate(ds, k, rng, func(train, test *data.Dataset) (Result, error) {
		return BoostTrainTest(train, test, cfg)
	})
}
