package eval

import (
	"math/rand"
	"time"

	"udt/internal/data"
	"udt/internal/forest"
)

// Forest variants of the evaluation protocols: the same metrics as the
// single-tree paths, computed over the ensemble's averaged distributions
// through the compiled batch engine.

// forestWorkers bounds batch concurrency by the forest's training Workers
// knob, defaulting to serial for loaded models that carry no configuration.
func forestWorkers(f *forest.Forest) int {
	if w := f.Config.Workers; w > 1 {
		return w
	}
	return 1
}

// ForestAccuracy returns the fraction of test tuples whose predicted label
// (argmax of the averaged distribution) matches the true label.
func ForestAccuracy(f *forest.Forest, test *data.Dataset) float64 {
	if test.Len() == 0 {
		return 0
	}
	return accuracyOf(f.PredictBatch(test.Tuples, forestWorkers(f)), test)
}

// ForestConfusion returns the weight-weighted confusion matrix over the
// test set.
func ForestConfusion(f *forest.Forest, test *data.Dataset) [][]float64 {
	return confusion(test.Classes, f.PredictBatch(test.Tuples, forestWorkers(f)), test)
}

// ForestEvaluate classifies the test set once and derives the confusion
// matrix, Brier score and log-loss from that single batch of averaged
// distributions — the forest twin of Evaluate.
func ForestEvaluate(f *forest.Forest, test *data.Dataset) (conf [][]float64, brier, logLoss float64) {
	dists := f.ClassifyBatch(test.Tuples, forestWorkers(f))
	preds := make([]int, len(dists))
	for i, d := range dists {
		preds[i] = Argmax(d)
	}
	return confusion(test.Classes, preds, test), brierOf(dists, test), logLossOf(dists, test)
}

// ForestTrainTest trains a bagged ensemble on train and evaluates on test,
// aggregating the members' build statistics into the Result.
func ForestTrainTest(train, test *data.Dataset, cfg forest.Config) (Result, error) {
	start := time.Now()
	f, err := forest.Train(train, cfg)
	if err != nil {
		return Result{}, err
	}
	build := time.Since(start)

	start = time.Now()
	preds := f.PredictBatch(test.Tuples, forestWorkers(f))
	classify := time.Since(start)

	stats := f.Stats()
	return Result{
		Accuracy:     accuracyOf(preds, test),
		Confusion:    confusion(test.Classes, preds, test),
		BuildTime:    build,
		ClassifyTime: classify,
		Search:       stats.Search,
		Nodes:        stats.Nodes,
		Leaves:       stats.Leaves,
		Depth:        stats.Depth,
	}, nil
}

// ForestCrossValidate runs stratified k-fold cross-validation of the bagged
// ensemble and returns the pooled result, sharing CrossValidate's fold
// protocol so forest and single-tree accuracy compare on identical folds.
func ForestCrossValidate(ds *data.Dataset, k int, cfg forest.Config, rng *rand.Rand) (Result, error) {
	return crossValidate(ds, k, rng, func(train, test *data.Dataset) (Result, error) {
		return ForestTrainTest(train, test, cfg)
	})
}
