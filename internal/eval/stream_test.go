package eval

import (
	"math/rand"
	"reflect"
	"testing"

	"udt/internal/data"
	"udt/internal/pdf"
)

// streamFixture builds a labelled dataset and a matching prediction vector
// with a few deliberate mistakes.
func streamFixture(n int) (*data.Dataset, []int) {
	ds := data.NewDataset("acc", 1, []string{"a", "b", "c"})
	rng := rand.New(rand.NewSource(11))
	preds := make([]int, n)
	for i := 0; i < n; i++ {
		c := i % 3
		tu := ds.Add(c, pdf.Point(float64(i)))
		tu.Weight = 0.5 + rng.Float64()
		preds[i] = c
		if i%7 == 0 {
			preds[i] = (c + 1) % 3
		}
	}
	return ds, preds
}

// TestAccumulatorMatchesWholeSet: folding a set batch-by-batch must agree
// exactly (bit-for-bit) with the one-shot helpers, for several chunk sizes.
func TestAccumulatorMatchesWholeSet(t *testing.T) {
	ds, preds := streamFixture(100)
	wantAcc := AccuracyOf(preds, ds)
	wantConf := ConfusionOf(ds.Classes, preds, ds)
	for _, chunk := range []int{1, 7, 32, 100, 1000} {
		a := NewAccumulator(ds.Classes)
		for lo := 0; lo < ds.Len(); lo += chunk {
			hi := lo + chunk
			if hi > ds.Len() {
				hi = ds.Len()
			}
			a.Add(ds.Tuples[lo:hi], preds[lo:hi])
		}
		if a.Total() != ds.Len() {
			t.Fatalf("chunk %d: total %d, want %d", chunk, a.Total(), ds.Len())
		}
		if got := a.Accuracy(); got != wantAcc {
			t.Errorf("chunk %d: accuracy %v, want %v", chunk, got, wantAcc)
		}
		if got := a.Confusion(); !reflect.DeepEqual(got, wantConf) {
			t.Errorf("chunk %d: confusion %v, want %v", chunk, got, wantConf)
		}
	}
}

func TestAccumulatorEmpty(t *testing.T) {
	a := NewAccumulator([]string{"x", "y"})
	if a.Accuracy() != 0 || a.Total() != 0 {
		t.Fatalf("fresh accumulator: acc=%v total=%d", a.Accuracy(), a.Total())
	}
	if got := a.Confusion(); len(got) != 2 || got[0][0] != 0 {
		t.Fatalf("fresh confusion: %v", got)
	}
}
