// Package eval measures classifier quality and construction cost: accuracy,
// confusion matrices, train/test and 10-fold cross-validation protocols
// (§4.3), and timing/counter harnesses for the efficiency study of §6.
package eval

import (
	"errors"
	"math/rand"
	"time"

	"udt/internal/core"
	"udt/internal/data"
	"udt/internal/split"
)

// Result aggregates one evaluation run.
type Result struct {
	Accuracy     float64
	Confusion    [][]float64 // [true class][predicted class] test weight
	BuildTime    time.Duration
	ClassifyTime time.Duration
	Search       split.Stats // split-search work during construction
	Nodes        int
	Leaves       int
	Depth        int
}

// Accuracy returns the fraction of test tuples whose predicted label
// (argmax of the classification distribution, §3.2) matches the true label.
// The test set runs through the compiled inference engine.
func Accuracy(t *core.Tree, test *data.Dataset) float64 {
	if test.Len() == 0 {
		return 0
	}
	return accuracyOf(predictions(t, test), test)
}

// AccuracyOf is the fraction of tuples whose precomputed prediction matches
// the label (0 on an empty test set) — for callers that already hold a batch
// of predictions from any model.
func AccuracyOf(preds []int, test *data.Dataset) float64 { return accuracyOf(preds, test) }

// ConfusionOf folds precomputed per-tuple predictions into a
// weight-weighted confusion matrix.
func ConfusionOf(classes []string, preds []int, test *data.Dataset) [][]float64 {
	return confusion(classes, preds, test)
}

// accuracyOf is the fraction of tuples whose prediction matches the label.
func accuracyOf(preds []int, test *data.Dataset) float64 {
	if test.Len() == 0 {
		return 0
	}
	correct := 0
	for i, tu := range test.Tuples {
		if preds[i] == tu.Class {
			correct++
		}
	}
	return float64(correct) / float64(test.Len())
}

// Confusion returns the weight-weighted confusion matrix over the test set.
func Confusion(t *core.Tree, test *data.Dataset) [][]float64 {
	return confusion(test.Classes, predictions(t, test), test)
}

// predictions runs the whole test set through the compiled engine (with the
// tree's Workers knob bounding batch concurrency), falling back to the
// recursive descent for trees that do not compile.
func predictions(t *core.Tree, test *data.Dataset) []int {
	if c, err := t.Compile(); err == nil {
		return c.PredictBatch(test.Tuples, t.Config.Workers)
	}
	out := make([]int, test.Len())
	for i, tu := range test.Tuples {
		out[i] = t.Predict(tu)
	}
	return out
}

// confusion folds per-tuple predictions into a weight-weighted confusion
// matrix — a one-batch Accumulator, so the materialised and streamed
// evaluation paths share the fold.
func confusion(classes []string, preds []int, test *data.Dataset) [][]float64 {
	a := NewAccumulator(classes)
	a.Add(test.Tuples, preds)
	return a.Confusion()
}

// TrainTest builds a tree on train and evaluates on test.
func TrainTest(train, test *data.Dataset, cfg core.Config) (Result, error) {
	start := time.Now()
	tree, err := core.Build(train, cfg)
	if err != nil {
		return Result{}, err
	}
	build := time.Since(start)

	// One compiled batch pass yields both the accuracy and the confusion
	// matrix.
	start = time.Now()
	preds := predictions(tree, test)
	classify := time.Since(start)

	return Result{
		Accuracy:     accuracyOf(preds, test),
		Confusion:    confusion(test.Classes, preds, test),
		BuildTime:    build,
		ClassifyTime: classify,
		Search:       tree.Stats.Search,
		Nodes:        tree.Stats.Nodes,
		Leaves:       tree.Stats.Leaves,
		Depth:        tree.Stats.Depth,
	}, nil
}

// TrainTestAveraging is TrainTest with the Averaging baseline: the training
// pdfs are collapsed to their means before construction. Test tuples keep
// their uncertainty (the paper classifies uncertain test tuples with both
// approaches).
func TrainTestAveraging(train, test *data.Dataset, cfg core.Config) (Result, error) {
	return TrainTest(train.Means(), test, cfg)
}

// CrossValidate runs stratified k-fold cross-validation and returns the
// pooled result (accuracy weighted by fold size, summed work counters).
func CrossValidate(ds *data.Dataset, k int, cfg core.Config, rng *rand.Rand) (Result, error) {
	return crossValidate(ds, k, rng, func(train, test *data.Dataset) (Result, error) {
		return TrainTest(train, test, cfg)
	})
}

// CrossValidateAveraging is CrossValidate with mean-collapsed training
// folds (test folds keep their pdfs).
func CrossValidateAveraging(ds *data.Dataset, k int, cfg core.Config, rng *rand.Rand) (Result, error) {
	return crossValidate(ds, k, rng, func(train, test *data.Dataset) (Result, error) {
		return TrainTest(train.Means(), test, cfg)
	})
}

// crossValidate is the shared k-fold protocol: stratified folds from rng,
// one run per fold, accuracy pooled by test-fold size, work counters
// summed, depth maximised. Every CV variant (UDT, Averaging, forest) routes
// through it so the pooling math lives once.
func crossValidate(ds *data.Dataset, k int, rng *rand.Rand, run func(train, test *data.Dataset) (Result, error)) (Result, error) {
	if rng == nil {
		return Result{}, errors.New("eval: nil rng")
	}
	folds, err := ds.StratifiedKFold(k, rng)
	if err != nil {
		return Result{}, err
	}
	var pooled Result
	var correctW, totalW float64
	for _, f := range folds {
		r, err := run(f.Train, f.Test)
		if err != nil {
			return Result{}, err
		}
		correctW += r.Accuracy * float64(f.Test.Len())
		totalW += float64(f.Test.Len())
		pooled.BuildTime += r.BuildTime
		pooled.ClassifyTime += r.ClassifyTime
		pooled.Search.Add(r.Search)
		pooled.Nodes += r.Nodes
		pooled.Leaves += r.Leaves
		if r.Depth > pooled.Depth {
			pooled.Depth = r.Depth
		}
	}
	pooled.Accuracy = correctW / totalW
	return pooled, nil
}
