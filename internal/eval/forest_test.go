package eval

import (
	"math"
	"math/rand"
	"testing"

	"udt/internal/core"
	"udt/internal/data"
	"udt/internal/forest"
	"udt/internal/pdf"
)

// forestDataset builds a separable two-attribute dataset for forest
// evaluation tests.
func forestDataset(n int) *data.Dataset {
	ds := data.NewDataset("fe", 2, []string{"a", "b", "c"})
	rng := rand.New(rand.NewSource(29))
	for i := 0; i < n; i++ {
		c := i % 3
		base := float64(c * 8)
		p1, _ := pdf.Uniform(base-1.5+rng.Float64(), base+1.5+rng.Float64(), 7)
		ds.Add(c, p1, pdf.Point(base+2*rng.Float64()))
	}
	return ds
}

// TestForestMetricsAgainstManual pins ForestAccuracy/ForestConfusion/
// ForestEvaluate to manual recomputation from per-tuple forest calls.
func TestForestMetricsAgainstManual(t *testing.T) {
	ds := forestDataset(90)
	f, err := forest.Train(ds, forest.Config{Trees: 7, Seed: 3, Workers: 4, TreeConfig: core.Config{MinWeight: 1}})
	if err != nil {
		t.Fatal(err)
	}

	correct := 0
	manual := make([][]float64, len(ds.Classes))
	for i := range manual {
		manual[i] = make([]float64, len(ds.Classes))
	}
	var brier, logLoss float64
	for _, tu := range ds.Tuples {
		pred := f.Predict(tu)
		if pred == tu.Class {
			correct++
		}
		manual[tu.Class][pred] += tu.Weight
		dist := f.Classify(tu)
		for c, p := range dist {
			target := 0.0
			if c == tu.Class {
				target = 1
			}
			brier += (p - target) * (p - target)
		}
		p := dist[tu.Class]
		if p < 1e-15 {
			p = 1e-15
		}
		logLoss -= math.Log(p)
	}
	brier /= float64(ds.Len())
	logLoss /= float64(ds.Len())
	wantAcc := float64(correct) / float64(ds.Len())

	if got := ForestAccuracy(f, ds); got != wantAcc {
		t.Fatalf("ForestAccuracy %v, manual %v", got, wantAcc)
	}
	conf := ForestConfusion(f, ds)
	for i := range manual {
		for j := range manual[i] {
			if conf[i][j] != manual[i][j] {
				t.Fatalf("confusion[%d][%d] = %v, manual %v", i, j, conf[i][j], manual[i][j])
			}
		}
	}
	econf, ebrier, elog := ForestEvaluate(f, ds)
	if math.Abs(ebrier-brier) > 1e-12 || math.Abs(elog-logLoss) > 1e-12 {
		t.Fatalf("ForestEvaluate scores (%v, %v), manual (%v, %v)", ebrier, elog, brier, logLoss)
	}
	for i := range econf {
		for j := range econf[i] {
			if econf[i][j] != conf[i][j] {
				t.Fatalf("Evaluate confusion diverges at [%d][%d]", i, j)
			}
		}
	}
}

// TestForestTrainTest: the result must carry aggregate member statistics and
// a sane accuracy on separable data.
func TestForestTrainTest(t *testing.T) {
	ds := forestDataset(120)
	rng := rand.New(rand.NewSource(5))
	train, test := ds.Split(0.7, rng)
	r, err := ForestTrainTest(train, test, forest.Config{Trees: 9, Seed: 2, TreeConfig: core.Config{MinWeight: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if r.Accuracy < 0.8 {
		t.Fatalf("forest train/test accuracy %v too low for separable data", r.Accuracy)
	}
	if r.Nodes < 9 || r.Leaves < 9 || r.Depth < 1 {
		t.Fatalf("missing aggregate stats: %+v", r)
	}
	if len(r.Confusion) != len(ds.Classes) {
		t.Fatalf("confusion matrix has %d rows", len(r.Confusion))
	}
}

// TestForestCrossValidate mirrors the single-tree protocol: pooled accuracy
// over identical folds, errors surfaced.
func TestForestCrossValidate(t *testing.T) {
	ds := forestDataset(90)
	cfg := forest.Config{Trees: 5, Seed: 1, TreeConfig: core.Config{MinWeight: 1}}
	r, err := ForestCrossValidate(ds, 3, cfg, rand.New(rand.NewSource(7)))
	if err != nil {
		t.Fatal(err)
	}
	if r.Accuracy <= 0.5 || r.Accuracy > 1 {
		t.Fatalf("pooled CV accuracy %v implausible", r.Accuracy)
	}
	if _, err := ForestCrossValidate(ds, 3, cfg, nil); err == nil {
		t.Fatal("nil rng accepted")
	}
}
