package eval

import "udt/internal/data"

// Accumulator folds streamed batches of predictions into the running
// evaluation state — hit counts and the weight-weighted confusion matrix —
// so a test set can flow through the compiled engine in fixed-size chunks
// without ever being resident as a whole. The one-shot helpers (AccuracyOf,
// ConfusionOf) are single-batch uses of the same fold, so the streamed and
// materialised protocols cannot disagree.
type Accumulator struct {
	confusion [][]float64
	correct   int
	total     int
}

// NewAccumulator returns an empty accumulator over the given class labels
// (the model's label order; predictions and tuple classes index into it).
func NewAccumulator(classes []string) *Accumulator {
	m := make([][]float64, len(classes))
	for i := range m {
		m[i] = make([]float64, len(classes))
	}
	return &Accumulator{confusion: m}
}

// Add folds one batch of tuples and their predictions into the running
// state. Tuples stream in order, so the floating-point confusion sums match
// a single whole-set pass exactly.
func (a *Accumulator) Add(tuples []*data.Tuple, preds []int) {
	for i, tu := range tuples {
		a.total++
		if preds[i] == tu.Class {
			a.correct++
		}
		a.confusion[tu.Class][preds[i]] += tu.Weight
	}
}

// Total reports the number of tuples folded in so far.
func (a *Accumulator) Total() int { return a.total }

// Accuracy returns the fraction of tuples predicted correctly so far (0
// before any batch).
func (a *Accumulator) Accuracy() float64 {
	if a.total == 0 {
		return 0
	}
	return float64(a.correct) / float64(a.total)
}

// Confusion returns the running weight-weighted confusion matrix
// ([true class][predicted class]). The caller must not mutate it.
func (a *Accumulator) Confusion() [][]float64 { return a.confusion }
