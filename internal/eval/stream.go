package eval

import "udt/internal/data"

// Accumulator folds streamed batches of predictions into the running
// evaluation state — hit counts and the weight-weighted confusion matrix —
// so a test set can flow through the compiled engine in fixed-size chunks
// without ever being resident as a whole. The one-shot helpers (AccuracyOf,
// ConfusionOf) are single-batch uses of the same fold, so the streamed and
// materialised protocols cannot disagree.
type Accumulator struct {
	confusion [][]float64
	correct   int
	total     int
}

// NewAccumulator returns an empty accumulator over the given class labels
// (the model's label order; predictions and tuple classes index into it).
func NewAccumulator(classes []string) *Accumulator {
	m := make([][]float64, len(classes))
	for i := range m {
		m[i] = make([]float64, len(classes))
	}
	return &Accumulator{confusion: m}
}

// Add folds one batch of tuples and their predictions into the running
// state. Tuples stream in order, so the floating-point confusion sums match
// a single whole-set pass exactly.
func (a *Accumulator) Add(tuples []*data.Tuple, preds []int) {
	for i, tu := range tuples {
		a.total++
		if preds[i] == tu.Class {
			a.correct++
		}
		a.confusion[tu.Class][preds[i]] += tu.Weight
	}
}

// Merge folds another accumulator's state into a, so per-shard accumulators
// built over disjoint batches (e.g. one per worker of a partitioned
// evaluation) combine into whole-set metrics. Both accumulators must have
// been created over the same class vocabulary; Merge panics on a class-arity
// mismatch, which can only arise from mixing models. b is left untouched.
func (a *Accumulator) Merge(b *Accumulator) {
	if len(a.confusion) != len(b.confusion) {
		panic("eval: merging accumulators over different class vocabularies")
	}
	a.correct += b.correct
	a.total += b.total
	for i := range a.confusion {
		for j := range a.confusion[i] {
			a.confusion[i][j] += b.confusion[i][j]
		}
	}
}

// Total reports the number of tuples folded in so far.
func (a *Accumulator) Total() int { return a.total }

// Accuracy returns the fraction of tuples predicted correctly so far (0
// before any batch).
func (a *Accumulator) Accuracy() float64 {
	if a.total == 0 {
		return 0
	}
	return float64(a.correct) / float64(a.total)
}

// Confusion returns the running weight-weighted confusion matrix
// ([true class][predicted class]). The caller must not mutate it.
func (a *Accumulator) Confusion() [][]float64 { return a.confusion }
