package eval

import (
	"math"
	"math/rand"
	"testing"
)

// TestAccumulatorMergeProperty is the quickcheck-style pin on Merge: for
// randomized partitions of a labelled set into batches, folded into
// per-batch accumulators and merged in a random order, the result must
// equal the whole-set metrics. Accuracy and totals are integer-backed so
// they must match exactly; confusion weights are float sums whose order
// changes with the partition, so they match to a tight tolerance.
func TestAccumulatorMergeProperty(t *testing.T) {
	ds, preds := streamFixture(160)
	whole := NewAccumulator(ds.Classes)
	whole.Add(ds.Tuples, preds)

	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 50; trial++ {
		// Random partition: each tuple index is dealt to one of 1..8 batches.
		nBatches := 1 + rng.Intn(8)
		batches := make([]*Accumulator, nBatches)
		for b := range batches {
			batches[b] = NewAccumulator(ds.Classes)
		}
		// Deal contiguous runs (order within a batch preserved) so each
		// batch looks like a worker's chunk sequence.
		for lo := 0; lo < ds.Len(); {
			hi := lo + 1 + rng.Intn(40)
			if hi > ds.Len() {
				hi = ds.Len()
			}
			b := rng.Intn(nBatches)
			batches[b].Add(ds.Tuples[lo:hi], preds[lo:hi])
			lo = hi
		}
		// Merge in a random order into a fresh accumulator.
		merged := NewAccumulator(ds.Classes)
		for _, b := range rng.Perm(nBatches) {
			merged.Merge(batches[b])
		}

		if merged.Total() != whole.Total() {
			t.Fatalf("trial %d: total %d, want %d", trial, merged.Total(), whole.Total())
		}
		if merged.Accuracy() != whole.Accuracy() {
			t.Fatalf("trial %d: accuracy %v, want %v", trial, merged.Accuracy(), whole.Accuracy())
		}
		mc, wc := merged.Confusion(), whole.Confusion()
		for i := range wc {
			for j := range wc[i] {
				if math.Abs(mc[i][j]-wc[i][j]) > 1e-9 {
					t.Fatalf("trial %d: confusion[%d][%d] = %v, want %v", trial, i, j, mc[i][j], wc[i][j])
				}
			}
		}
	}
}

// TestAccumulatorMergeEmpty: merging an empty accumulator is a no-op, and
// merging into an empty one copies the state.
func TestAccumulatorMergeEmpty(t *testing.T) {
	ds, preds := streamFixture(30)
	a := NewAccumulator(ds.Classes)
	a.Add(ds.Tuples, preds)
	before := a.Accuracy()

	a.Merge(NewAccumulator(ds.Classes))
	if a.Accuracy() != before || a.Total() != 30 {
		t.Fatalf("merging an empty accumulator changed state: %v, %d", a.Accuracy(), a.Total())
	}

	fresh := NewAccumulator(ds.Classes)
	fresh.Merge(a)
	if fresh.Accuracy() != before || fresh.Total() != 30 {
		t.Fatalf("merge into empty = %v, %d", fresh.Accuracy(), fresh.Total())
	}
}

// TestAccumulatorMergeArityPanics: merging accumulators over different
// class vocabularies is a programming error and must fail loudly.
func TestAccumulatorMergeArityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("class-arity mismatch did not panic")
		}
	}()
	a := NewAccumulator([]string{"a", "b"})
	a.Merge(NewAccumulator([]string{"a", "b", "c"}))
}
