package eval

import (
	"math"
	"math/rand"
	"testing"

	"udt/internal/core"
	"udt/internal/data"
	"udt/internal/pdf"
)

func TestPerClass(t *testing.T) {
	classes := []string{"A", "B"}
	confusion := [][]float64{
		{8, 2}, // true A: 8 right, 2 predicted B
		{1, 9}, // true B: 1 predicted A, 9 right
	}
	m, err := PerClass(classes, confusion)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m[0].Precision-8.0/9) > 1e-12 {
		t.Fatalf("precision A = %v", m[0].Precision)
	}
	if math.Abs(m[0].Recall-0.8) > 1e-12 {
		t.Fatalf("recall A = %v", m[0].Recall)
	}
	wantF1 := 2 * (8.0 / 9) * 0.8 / (8.0/9 + 0.8)
	if math.Abs(m[0].F1-wantF1) > 1e-12 {
		t.Fatalf("F1 A = %v, want %v", m[0].F1, wantF1)
	}
	if m[0].Support != 10 || m[1].Support != 10 {
		t.Fatalf("supports = %v %v", m[0].Support, m[1].Support)
	}
	macro := MacroF1(m)
	if macro <= 0 || macro > 1 {
		t.Fatalf("macro F1 = %v", macro)
	}
}

func TestPerClassDegenerate(t *testing.T) {
	// A class never predicted and never present: all metrics zero.
	m, err := PerClass([]string{"A", "B"}, [][]float64{{5, 0}, {0, 0}})
	if err != nil {
		t.Fatal(err)
	}
	if m[1].Precision != 0 || m[1].Recall != 0 || m[1].F1 != 0 {
		t.Fatalf("empty class metrics = %+v", m[1])
	}
	if _, err := PerClass([]string{"A"}, [][]float64{{1, 2}}); err == nil {
		t.Fatal("non-square confusion accepted")
	}
	if _, err := PerClass([]string{"A", "B"}, [][]float64{{1, 2}}); err == nil {
		t.Fatal("short confusion accepted")
	}
	if MacroF1(nil) != 0 {
		t.Fatal("MacroF1(nil) != 0")
	}
}

func TestBrierAndLogLoss(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	ds := separableDataset(40, rng)
	tree, err := core.Build(ds, core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	brier := Brier(tree, ds)
	ll := LogLoss(tree, ds)
	// Separable data: near-perfect calibration.
	if brier > 0.05 {
		t.Fatalf("Brier = %v on separable data", brier)
	}
	if ll > 0.1 {
		t.Fatalf("log loss = %v on separable data", ll)
	}
	empty := ds.Subset(nil)
	if Brier(tree, empty) != 0 || LogLoss(tree, empty) != 0 {
		t.Fatal("empty-set scores should be zero")
	}
}

func TestLogLossFiniteOnWrongConfidentModel(t *testing.T) {
	// A handcrafted tree that assigns zero probability to class B.
	tree := &core.Tree{
		Classes:  []string{"A", "B"},
		NumAttrs: []data.Attribute{{Name: "x"}},
		Root:     &core.Node{Dist: []float64{1, 0}, W: 1, ClassW: []float64{1, 0}},
	}
	ds := data.NewDataset("w", 1, []string{"A", "B"})
	ds.Add(1, pdf.Point(0)) // true class B gets probability 0
	if ll := LogLoss(tree, ds); math.IsInf(ll, 0) || math.IsNaN(ll) {
		t.Fatalf("log loss should be clamped finite, got %v", ll)
	}
	if b := Brier(tree, ds); math.Abs(b-2) > 1e-12 {
		t.Fatalf("Brier of totally wrong confident prediction = %v, want 2", b)
	}
}

func TestTuneWidthFindsPlateau(t *testing.T) {
	// Point data perturbed with noise: tuning should not pick w = 0 when
	// a genuinely noisy attribute benefits from an error model.
	rng := rand.New(rand.NewSource(5))
	p := &data.Points{
		Name:    "tune",
		Attrs:   []string{"x"},
		Classes: []string{"a", "b"},
	}
	for i := 0; i < 60; i++ {
		class := i % 2
		v := float64(class) + rng.NormFloat64()*0.35 // heavy noise vs unit gap
		p.Rows = append(p.Rows, []float64{v})
		p.Labels = append(p.Labels, class)
	}
	bestW, points, err := TuneWidth(p, []float64{0.01, 0.1, 0.3}, 20, data.GaussianModel,
		core.Config{MinWeight: 2}, 3, 3, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 3 {
		t.Fatalf("%d points", len(points))
	}
	if bestW < 0.01 || bestW > 0.3 {
		t.Fatalf("tuned w = %v outside candidate range", bestW)
	}
	for _, pt := range points {
		if pt.Mean < 0 || pt.Mean > 1 || pt.Runs != 3 {
			t.Fatalf("bad point %+v", pt)
		}
	}
}

func TestTuneWidthErrors(t *testing.T) {
	p := &data.Points{Name: "x", Attrs: []string{"a"}, Classes: []string{"c"},
		Rows: [][]float64{{1}}, Labels: []int{0}}
	rng := rand.New(rand.NewSource(1))
	if _, _, err := TuneWidth(p, nil, 10, data.GaussianModel, core.Config{}, 3, 3, rng); err == nil {
		t.Fatal("no candidates accepted")
	}
	if _, _, err := TuneWidth(p, []float64{0.1}, 10, data.GaussianModel, core.Config{}, 3, 1, rng); err == nil {
		t.Fatal("repeats=1 accepted")
	}
	if _, _, err := TuneWidth(p, []float64{0.1}, 10, data.GaussianModel, core.Config{}, 3, 3, nil); err == nil {
		t.Fatal("nil rng accepted")
	}
}

func TestMeanStdErr(t *testing.T) {
	mean, se := meanStdErr([]float64{2, 4, 6})
	if mean != 4 {
		t.Fatalf("mean = %v", mean)
	}
	want := 2.0 / math.Sqrt(3) // sample std 2, n=3
	if math.Abs(se-want) > 1e-12 {
		t.Fatalf("stderr = %v, want %v", se, want)
	}
	if m, s := meanStdErr([]float64{5}); m != 5 || s != 0 {
		t.Fatalf("single sample: %v %v", m, s)
	}
}
