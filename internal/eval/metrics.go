package eval

import (
	"errors"
	"math"

	"udt/internal/core"
	"udt/internal/data"
	"udt/internal/par"
)

// Probabilistic and per-class quality metrics. The paper's classifier
// returns a distribution over class labels for every test tuple (§3.2);
// beyond argmax accuracy, proper scoring rules measure how well calibrated
// those distributions are.

// ClassMetrics holds per-class precision, recall and F1 derived from a
// confusion matrix.
type ClassMetrics struct {
	Class     string
	Precision float64
	Recall    float64
	F1        float64
	Support   float64 // true weight of the class in the test set
}

// PerClass computes per-class metrics from a confusion matrix (rows: true
// class, columns: predicted).
func PerClass(classes []string, confusion [][]float64) ([]ClassMetrics, error) {
	if len(confusion) != len(classes) {
		return nil, errors.New("eval: confusion matrix does not match class count")
	}
	out := make([]ClassMetrics, len(classes))
	for c := range classes {
		if len(confusion[c]) != len(classes) {
			return nil, errors.New("eval: confusion matrix is not square")
		}
		var tp, fn, fp float64
		tp = confusion[c][c]
		for o := range classes {
			if o != c {
				fn += confusion[c][o]
				fp += confusion[o][c]
			}
		}
		m := ClassMetrics{Class: classes[c], Support: tp + fn}
		if tp+fp > 0 {
			m.Precision = tp / (tp + fp)
		}
		if tp+fn > 0 {
			m.Recall = tp / (tp + fn)
		}
		if m.Precision+m.Recall > 0 {
			m.F1 = 2 * m.Precision * m.Recall / (m.Precision + m.Recall)
		}
		out[c] = m
	}
	return out, nil
}

// MacroF1 averages per-class F1 scores with equal class weight.
func MacroF1(metrics []ClassMetrics) float64 {
	if len(metrics) == 0 {
		return 0
	}
	sum := 0.0
	for _, m := range metrics {
		sum += m.F1
	}
	return sum / float64(len(metrics))
}

// Brier returns the mean Brier score of the tree's classification
// distributions over the test set: the squared distance between the
// predicted distribution and the one-hot true label, averaged over tuples.
// Lower is better; 0 is perfect.
func Brier(t *core.Tree, test *data.Dataset) float64 {
	return brierOf(distributions(t, test), test)
}

func brierOf(dists [][]float64, test *data.Dataset) float64 {
	if test.Len() == 0 {
		return 0
	}
	sum := 0.0
	for i, tu := range test.Tuples {
		for c, p := range dists[i] {
			target := 0.0
			if c == tu.Class {
				target = 1
			}
			d := p - target
			sum += d * d
		}
	}
	return sum / float64(test.Len())
}

// LogLoss returns the mean negative log-likelihood (in nats) assigned to
// the true labels, with probabilities clamped away from zero to keep the
// score finite. Lower is better.
func LogLoss(t *core.Tree, test *data.Dataset) float64 {
	return logLossOf(distributions(t, test), test)
}

func logLossOf(dists [][]float64, test *data.Dataset) float64 {
	if test.Len() == 0 {
		return 0
	}
	const floor = 1e-15
	sum := 0.0
	for i, tu := range test.Tuples {
		p := dists[i][tu.Class]
		if p < floor {
			p = floor
		}
		sum -= math.Log(p)
	}
	return sum / float64(test.Len())
}

// Argmax returns the index of the largest probability, lowest index winning
// ties — the prediction convention of Tree.Predict, shared by every
// consumer that already holds a classification distribution. It delegates to
// par.Argmax, the one copy the inference engines use.
func Argmax(dist []float64) int { return par.Argmax(dist) }

// Evaluate classifies the test set once through the compiled engine and
// derives the confusion matrix, Brier score and log-loss from that single
// batch of distributions — what a report needs without classifying the set
// three times.
func Evaluate(t *core.Tree, test *data.Dataset) (conf [][]float64, brier, logLoss float64) {
	dists := distributions(t, test)
	preds := make([]int, len(dists))
	for i, d := range dists {
		preds[i] = Argmax(d)
	}
	return confusion(test.Classes, preds, test), brierOf(dists, test), logLossOf(dists, test)
}

// distributions classifies the whole test set through the compiled engine
// (bounded by the tree's Workers knob), falling back to the recursive
// descent for trees that do not compile.
func distributions(t *core.Tree, test *data.Dataset) [][]float64 {
	if c, err := t.Compile(); err == nil {
		return c.ClassifyBatch(test.Tuples, t.Config.Workers)
	}
	out := make([][]float64, test.Len())
	for i, tu := range test.Tuples {
		out[i] = t.Classify(tu)
	}
	return out
}
