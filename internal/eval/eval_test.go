package eval

import (
	"math"
	"math/rand"
	"testing"

	"udt/internal/core"
	"udt/internal/data"
	"udt/internal/pdf"
)

func separableDataset(n int, rng *rand.Rand) *data.Dataset {
	ds := data.NewDataset("sep", 1, []string{"lo", "hi"})
	for i := 0; i < n; i++ {
		class := i % 2
		c := float64(class)*10 + rng.Float64()
		p, _ := pdf.Uniform(c-0.3, c+0.3, 5)
		ds.Add(class, p)
	}
	return ds
}

func TestAccuracyPerfect(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	ds := separableDataset(40, rng)
	tree, err := core.Build(ds, core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if acc := Accuracy(tree, ds); acc != 1 {
		t.Fatalf("accuracy on separable data = %v", acc)
	}
	empty := ds.Subset(nil)
	if acc := Accuracy(tree, empty); acc != 0 {
		t.Fatalf("accuracy on empty set = %v", acc)
	}
}

func TestConfusion(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	ds := separableDataset(20, rng)
	tree, err := core.Build(ds, core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	m := Confusion(tree, ds)
	if len(m) != 2 || len(m[0]) != 2 {
		t.Fatalf("confusion shape %dx%d", len(m), len(m[0]))
	}
	total := m[0][0] + m[0][1] + m[1][0] + m[1][1]
	if math.Abs(total-20) > 1e-9 {
		t.Fatalf("confusion total %v, want 20", total)
	}
	if m[0][0] != 10 || m[1][1] != 10 {
		t.Fatalf("separable data should give diagonal confusion, got %v", m)
	}
}

func TestTrainTest(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	train := separableDataset(40, rng)
	test := separableDataset(20, rng)
	r, err := TrainTest(train, test, core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if r.Accuracy != 1 {
		t.Fatalf("accuracy = %v", r.Accuracy)
	}
	if r.Nodes == 0 || r.Leaves == 0 || r.Depth == 0 {
		t.Fatalf("tree stats missing: %+v", r)
	}
	if r.Search.EntropyCalcs() == 0 {
		t.Fatal("no search work recorded")
	}
}

func TestTrainTestAveraging(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	train := separableDataset(40, rng)
	test := separableDataset(20, rng)
	r, err := TrainTestAveraging(train, test, core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if r.Accuracy != 1 {
		t.Fatalf("AVG accuracy on separable data = %v", r.Accuracy)
	}
}

func TestCrossValidate(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	ds := separableDataset(50, rng)
	r, err := CrossValidate(ds, 5, core.Config{}, rand.New(rand.NewSource(6)))
	if err != nil {
		t.Fatal(err)
	}
	if r.Accuracy < 0.95 {
		t.Fatalf("CV accuracy = %v", r.Accuracy)
	}
	if r.Nodes == 0 {
		t.Fatal("pooled stats missing")
	}
	if _, err := CrossValidate(ds, 5, core.Config{}, nil); err == nil {
		t.Fatal("nil rng accepted")
	}
	if _, err := CrossValidate(ds, 1, core.Config{}, rand.New(rand.NewSource(1))); err == nil {
		t.Fatal("k=1 accepted")
	}
}

func TestCrossValidateAveraging(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	ds := separableDataset(50, rng)
	r, err := CrossValidateAveraging(ds, 5, core.Config{}, rand.New(rand.NewSource(8)))
	if err != nil {
		t.Fatal(err)
	}
	if r.Accuracy < 0.95 {
		t.Fatalf("AVG CV accuracy = %v", r.Accuracy)
	}
	if _, err := CrossValidateAveraging(ds, 5, core.Config{}, nil); err == nil {
		t.Fatal("nil rng accepted")
	}
}

// TestUDTBeatsAVGOnMeanAliasedData is the paper's central accuracy claim in
// miniature: when the means collide but the distributions differ, only the
// distribution-based tree separates the classes.
func TestUDTBeatsAVGOnMeanAliasedData(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	ds := data.NewDataset("aliased", 1, []string{"A", "B"})
	for i := 0; i < 60; i++ {
		// Class A: mass at {-1, +1}; class B: mass at {-3, +3}. Same mean 0.
		jitter := rng.Float64() * 0.1
		if i%2 == 0 {
			ds.Add(0, pdf.MustNew([]float64{-1 - jitter, 1 + jitter}, []float64{1, 1}))
		} else {
			ds.Add(1, pdf.MustNew([]float64{-3 - jitter, 3 + jitter}, []float64{1, 1}))
		}
	}
	cfg := core.Config{MinWeight: 1}
	avg, err := CrossValidateAveraging(ds, 5, cfg, rand.New(rand.NewSource(10)))
	if err != nil {
		t.Fatal(err)
	}
	udt, err := CrossValidate(ds, 5, cfg, rand.New(rand.NewSource(10)))
	if err != nil {
		t.Fatal(err)
	}
	if udt.Accuracy <= avg.Accuracy {
		t.Fatalf("UDT (%v) should beat AVG (%v) on mean-aliased data", udt.Accuracy, avg.Accuracy)
	}
	if udt.Accuracy < 0.9 {
		t.Fatalf("UDT accuracy = %v, want >= 0.9", udt.Accuracy)
	}
}

// TestEvalCompiledPathMatchesRecursive pins the batch compiled path the
// evaluation protocol now runs on to per-tuple recursive inference: same
// accuracy, same confusion matrix, same scores, for serial and parallel
// Workers settings.
func TestEvalCompiledPathMatchesRecursive(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	ds := separableDataset(80, rng)
	// Overlap the classes a little so predictions are not all trivially
	// correct.
	for i := 0; i < 10; i++ {
		p, _ := pdf.Uniform(-1, 11, 9)
		ds.Add(i%2, p)
	}
	for _, workers := range []int{0, 1, 4} {
		tree, err := core.Build(ds, core.Config{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		correct := 0
		for _, tu := range ds.Tuples {
			if tree.Predict(tu) == tu.Class {
				correct++
			}
		}
		wantAcc := float64(correct) / float64(ds.Len())
		if acc := Accuracy(tree, ds); acc != wantAcc {
			t.Fatalf("workers=%d: compiled-path accuracy %v, recursive %v", workers, acc, wantAcc)
		}
		m := Confusion(tree, ds)
		want := make([][]float64, len(ds.Classes))
		for i := range want {
			want[i] = make([]float64, len(ds.Classes))
		}
		for _, tu := range ds.Tuples {
			want[tu.Class][tree.Predict(tu)] += tu.Weight
		}
		for i := range want {
			for j := range want[i] {
				if m[i][j] != want[i][j] {
					t.Fatalf("workers=%d: confusion[%d][%d] = %v, recursive %v", workers, i, j, m[i][j], want[i][j])
				}
			}
		}
		recBrier, recLog := 0.0, 0.0
		for _, tu := range ds.Tuples {
			dist := tree.Classify(tu)
			for c, p := range dist {
				target := 0.0
				if c == tu.Class {
					target = 1
				}
				recBrier += (p - target) * (p - target)
			}
			p := dist[tu.Class]
			if p < 1e-15 {
				p = 1e-15
			}
			recLog -= math.Log(p)
		}
		recBrier /= float64(ds.Len())
		recLog /= float64(ds.Len())
		if got := Brier(tree, ds); math.Abs(got-recBrier) > 1e-12 {
			t.Fatalf("workers=%d: Brier %v, recursive %v", workers, got, recBrier)
		}
		if got := LogLoss(tree, ds); math.Abs(got-recLog) > 1e-12 {
			t.Fatalf("workers=%d: LogLoss %v, recursive %v", workers, got, recLog)
		}
		// The single-pass Evaluate must agree with the individual metrics.
		conf, brier, logLoss := Evaluate(tree, ds)
		if brier != Brier(tree, ds) || logLoss != LogLoss(tree, ds) {
			t.Fatalf("workers=%d: Evaluate scores (%v, %v) diverge from Brier/LogLoss", workers, brier, logLoss)
		}
		for i := range conf {
			for j := range conf[i] {
				if conf[i][j] != m[i][j] {
					t.Fatalf("workers=%d: Evaluate confusion[%d][%d] = %v, Confusion %v", workers, i, j, conf[i][j], m[i][j])
				}
			}
		}
	}
}
