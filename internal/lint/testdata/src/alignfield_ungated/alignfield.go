// Ungated alignfield fixture: a package not named binfmt may mask its own
// off64 lookalike and use unsafe freely as far as this analyzer cares.
package other

import "unsafe"

type off64 uint64

func alignUp(o off64) off64 {
	return (o + 63) &^ 63
}

func cast(b []byte) *uint64 {
	return (*uint64)(unsafe.Pointer(&b[0]))
}
