// Positive maprange fixtures: package name "core" opts into the
// determinism-critical gate.
package core

// sum folds map values in iteration order — nondeterministic.
func sum(m map[string]float64) float64 {
	t := 0.0
	for _, v := range m { // want `range over map m iterates in nondeterministic order`
		t += v
	}
	return t
}

// keysUnsorted collects keys but never sorts them.
func keysUnsorted(m map[string]int) []string {
	var ks []string
	for k := range m { // want `range over map m iterates in nondeterministic order`
		ks = append(ks, k)
	}
	return ks
}

// nested maps are still maps.
func nested(mm map[int]map[int]bool) int {
	n := 0
	for k := range mm { // want `range over map mm iterates`
		for range mm[k] { // want `range over map mm\[k\] iterates`
			n++
		}
	}
	return n
}
