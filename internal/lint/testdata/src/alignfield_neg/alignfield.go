// Negative alignfield fixtures: annotated helpers, plain offset arithmetic,
// mask arithmetic on other types, and an audited suppression — none may be
// reported unsuppressed.
package binfmt

import "unsafe"

type off64 uint64

const sectionAlign = 64

// align is the blessed rounding helper.
//
//udt:alignsafe
func align(o off64) off64 { return (o + sectionAlign - 1) &^ (sectionAlign - 1) }

// aligned is the blessed alignment check.
//
//udt:alignsafe
func aligned(o off64) bool { return o&(sectionAlign-1) == 0 }

// view reinterprets bytes inside an annotated function, including from a
// nested literal, which inherits the annotation.
//
//udt:alignsafe
func view(b []byte) []uint64 {
	f := func() []uint64 {
		return unsafe.Slice((*uint64)(unsafe.Pointer(&b[0])), len(b)/8)
	}
	return f()
}

// probe is an annotated package-level var whose initializer literal
// inherits the annotation.
//
//udt:alignsafe
var probe = func() bool {
	var x uint16 = 1
	return *(*byte)(unsafe.Pointer(&x)) == 1
}()

// advancePlain does additive offset arithmetic, which is ordinary size
// accounting and unrestricted.
func advancePlain(o off64, n int) off64 {
	return o + off64(n)*8
}

// maskInt masks a plain integer; only off64 is guarded.
func maskInt(x uint64) uint64 {
	return x &^ (sectionAlign - 1)
}

// auditedMask carries the escape hatch with a reason.
func auditedMask(o off64) off64 {
	//udt:align-ok fixture exercising the audited suppression path
	return o &^ 1
}
