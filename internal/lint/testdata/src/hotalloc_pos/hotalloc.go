// Positive hotalloc fixtures: allocations inside //udt:hotpath functions.
package hot

type frame struct {
	node int
	w    float64
}

//udt:hotpath
func viaMake(n int) []float64 {
	return make([]float64, n) // want `make allocates inside //udt:hotpath function viaMake`
}

//udt:hotpath
func viaNew() *frame {
	return new(frame) // want `new allocates inside //udt:hotpath function viaNew`
}

//udt:hotpath
func viaPointerLit(n int) *frame {
	return &frame{node: n} // want `&frame escapes to the heap inside //udt:hotpath function viaPointerLit`
}

//udt:hotpath
func viaSliceLit(n int) []int {
	return []int{n} // want `composite literal allocates a slice inside //udt:hotpath function viaSliceLit`
}

//udt:hotpath
func viaMapLit(k string) map[string]int {
	return map[string]int{k: 1} // want `composite literal allocates a map inside //udt:hotpath function viaMapLit`
}

// viaLocalAppend grows a fresh accumulator on every call.
//
//udt:hotpath
func viaLocalAppend(n int) []int {
	var acc []int
	for i := 0; i < n; i++ {
		acc = append(acc, i) // want `append grows function-local slice acc inside //udt:hotpath function viaLocalAppend`
	}
	return acc
}
