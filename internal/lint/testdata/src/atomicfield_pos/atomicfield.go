// Positive atomicfield fixtures: mixed atomic/plain access to the same
// field, and atomic wrapper values copied out of their struct.
package srv

import "sync/atomic"

type counters struct {
	hits  int64 // accessed via atomic.AddInt64 below
	gen   atomic.Int64
	batch [4]atomic.Int64
}

func (c *counters) bump() {
	atomic.AddInt64(&c.hits, 1)
}

// read loads the atomically-written counter with a plain read.
func (c *counters) read() int64 {
	return c.hits // want `field hits is accessed via sync/atomic elsewhere in this package but plainly here`
}

// reset writes it plainly.
func (c *counters) reset() {
	c.hits = 0 // want `field hits is accessed via sync/atomic elsewhere in this package but plainly here`
}

// copyGen tears a wrapper value out of the atomic timeline.
func (c *counters) copyGen() atomic.Int64 {
	return c.gen // want `atomic wrapper field gen is copied or read as a plain value`
}

// copyBatch copies a whole array of wrappers.
func (c *counters) copyBatch() [4]atomic.Int64 {
	return c.batch // want `atomic wrapper field batch is copied or read as a plain value`
}

// rangeCopies binds a value variable, copying every element off the atomic
// timeline.
func (c *counters) rangeCopies() int64 {
	t := int64(0)
	for _, b := range c.batch { // want `atomic wrapper field batch is copied or read as a plain value`
		t += b.Load()
	}
	return t
}
