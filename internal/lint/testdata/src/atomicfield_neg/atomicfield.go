// Negative atomicfield fixtures: consistent old-style atomics, wrapper
// fields used through methods, indexed wrapper arrays, address-of, and an
// audited suppression.
package srv

import "sync/atomic"

type counters struct {
	hits    int64
	gen     atomic.Int64
	active  atomic.Pointer[counters]
	batch   [4]atomic.Int64
	plainN  int64 // never touched atomically: plain access is fine
	initGen int64
}

func (c *counters) bump() {
	atomic.AddInt64(&c.hits, 1)
}

func (c *counters) read() int64 {
	return atomic.LoadInt64(&c.hits)
}

func (c *counters) wrappers() int64 {
	c.gen.Add(1)
	c.batch[2].Add(1)
	if p := c.active.Load(); p != nil {
		return p.gen.Load()
	}
	return c.gen.Load()
}

// rangeByIndex iterates the wrapper array without binding values: the spec
// never evaluates (or copies) the array, every load goes through .Load.
func (c *counters) rangeByIndex() int64 {
	t := int64(0)
	for i := range c.batch {
		t += c.batch[i].Load()
	}
	return t
}

// byAddress hands the wrapper to a helper by pointer — still one timeline.
func (c *counters) byAddress() *atomic.Int64 {
	return &c.gen
}

func (c *counters) plain() int64 {
	c.plainN++
	return c.plainN
}

// snapshot reads the counter plainly during single-threaded construction,
// with the audited escape hatch.
func (c *counters) snapshot() int64 {
	//udt:atomic-ok constructor runs before any goroutine shares c
	g := c.initGen
	atomic.StoreInt64(&c.initGen, g)
	return g
}
