// Negative hotalloc fixtures: unmarked functions may allocate freely;
// marked functions using the pooled-slab pattern stay quiet; amortised
// warm-up growth carries the audited escape hatch.
package hot

type frame struct {
	node int
	w    float64
}

type scratch struct {
	frames []frame
	out    []float64
}

// cold is not marked: the analyzer has no opinion.
func cold(n int) []float64 {
	return make([]float64, n)
}

// descend appends value literals into a slab reached through the receiver —
// the blessed zero-steady-state-allocation pattern.
//
//udt:hotpath
func (s *scratch) descend(n int) {
	s.frames = s.frames[:0]
	for i := 0; i < n; i++ {
		s.frames = append(s.frames, frame{node: i, w: 1})
	}
}

// fill appends into a slab owned by a parameter.
//
//udt:hotpath
func fill(s *scratch, xs []float64) {
	s.out = append(s.out, xs...)
}

// outBuf grows its pooled buffer once during warm-up, audited.
//
//udt:hotpath
func (s *scratch) outBuf(nc int) []float64 {
	if cap(s.out) < nc {
		s.out = make([]float64, nc) //udt:alloc-ok amortised warm-up growth of pooled scratch
	}
	s.out = s.out[:nc]
	for i := range s.out {
		s.out[i] = 0
	}
	return s.out
}
