// Ungated package: map ranges outside the determinism-critical set are not
// the maprange analyzer's business.
package other

func anyOrder(m map[string]int) int {
	t := 0
	for _, v := range m {
		t += v
	}
	return t
}
