// A deliberate determinism violation, loaded by the integration test under
// the pretend path udt/internal/forest: serialising attribute votes straight
// out of a map range would make model bytes depend on Go's randomized map
// iteration order.
package forest

func flatten(votes map[string]float64) []float64 {
	var out []float64
	for _, v := range votes {
		out = append(out, v)
	}
	return out
}
