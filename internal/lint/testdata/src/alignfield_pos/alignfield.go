// Positive alignfield fixtures: alignment-mask arithmetic on off64 and
// unsafe references outside //udt:alignsafe functions.
package binfmt

import "unsafe"

type off64 uint64

const sectionAlign = 64

// alignUp hand-rolls the rounding rule without the audit annotation.
func alignUp(o off64) off64 {
	return (o + sectionAlign - 1) &^ (sectionAlign - 1) // want `alignment arithmetic "&\^" on off64 outside a //udt:alignsafe helper`
}

// isAligned masks an offset in an unannotated function.
func isAligned(o off64) bool {
	return o&(sectionAlign-1) == 0 // want `alignment arithmetic "&" on off64 outside a //udt:alignsafe helper`
}

// remAligned uses modulo for the same check.
func remAligned(o off64) bool {
	return o%sectionAlign == 0 // want `alignment arithmetic "%" on off64 outside a //udt:alignsafe helper`
}

// maskInPlace compounds the mask onto the offset.
func maskInPlace(o off64) off64 {
	o &^= sectionAlign - 1 // want `alignment arithmetic "&\^=" on off64 outside a //udt:alignsafe helper`
	return o
}

// castBytes reinterprets bytes without the audit annotation.
func castBytes(b []byte) []uint64 {
	return unsafe.Slice((*uint64)(unsafe.Pointer(&b[0])), len(b)/8) // want `unsafe.Slice outside a //udt:alignsafe function` `unsafe.Pointer outside a //udt:alignsafe function`
}
