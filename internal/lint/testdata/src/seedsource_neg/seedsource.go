// Negative seedsource fixtures: seeded streams and stream methods are the
// blessed pattern; time.Since-style helpers on caller-provided values and
// audited suppressions stay quiet.
package forest

import (
	"math/rand"
	"time"
)

// seeded is the reference pattern: a constant or derived seed.
func seeded(seed int64, t int) *rand.Rand {
	return rand.New(rand.NewSource(derive(seed, t)))
}

// derive mirrors forest.treeSeed: pure arithmetic on the base seed.
func derive(seed int64, t int) int64 {
	z := uint64(seed) + 0x9E3779B97F4A7C15*uint64(t+1)
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	return int64(z ^ (z >> 31))
}

// draw uses stream methods, not package-level functions.
func draw(rng *rand.Rand, n int) int {
	return rng.Intn(n)
}

// elapsed operates on a caller-provided instant; only time.Now is flagged.
func elapsed(start, end time.Time) time.Duration {
	return end.Sub(start)
}

// audited keeps a clock read behind the escape hatch (e.g. training
// telemetry that never reaches model bytes).
func audited() int64 {
	//udt:nondeterministic-ok telemetry only, never serialized into the model
	return time.Now().UnixNano()
}
