// Positive seedsource fixtures: package name "forest" opts into the
// model-byte-producing gate.
package forest

import (
	"math/rand"
	"time"
)

// globalDraw uses the process-global source.
func globalDraw(n int) int {
	return rand.Intn(n) // want `draws from the process-global math/rand source`
}

// globalShuffle too, through a different entry point.
func globalShuffle(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { // want `draws from the process-global math/rand source`
		xs[i], xs[j] = xs[j], xs[i]
	})
}

// reseed mutates the global source for everyone.
func reseed(seed int64) {
	rand.Seed(seed) // want `reseeds the process-global source`
}

// clock reads wall time into a model-byte path.
func clock() int64 {
	return time.Now().UnixNano() // want `consults the wall clock`
}

// timeSeeded builds a stream, but from the clock: both halves are wrong —
// the clock read itself is flagged.
func timeSeeded() *rand.Rand {
	return rand.New(rand.NewSource(time.Now().UnixNano())) // want `consults the wall clock`
}
