// Negative maprange fixtures: the sorted-key-collection idiom, an audited
// suppression, and non-map ranges — none may be reported.
package core

import (
	"slices"
	"sort"
)

// keysSorted is the blessed idiom: collect, then sort before use.
func keysSorted(m map[string]int) []string {
	var ks []string
	for k := range m {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return ks
}

// keysSlicesSorted uses the slices package for the same idiom.
func keysSlicesSorted(m map[int]bool) []int {
	var ks []int
	for k := range m {
		ks = append(ks, k)
	}
	slices.Sort(ks)
	return ks
}

// total is order-insensitive and says so with the audited escape hatch.
func total(m map[string]float64) float64 {
	t := 0.0
	//udt:nondeterministic-ok summation is order-insensitive up to float rounding, pinned by TestTotals
	for _, v := range m {
		t += v
	}
	return t
}

// slicesAndChannels exercises non-map ranges, which are always fine.
func slicesAndChannels(xs []int, ch chan int) int {
	t := 0
	for _, x := range xs {
		t += x
	}
	for x := range ch {
		t += x
	}
	for i := range 3 {
		t += i
	}
	return t
}
