package lint_test

import (
	"testing"

	"udt/internal/lint"
	"udt/internal/lint/linttest"
)

func TestHotAllocPositive(t *testing.T) {
	linttest.Run(t, "testdata/src/hotalloc_pos", "udt/internal/core", lint.HotAlloc)
}

func TestHotAllocNegative(t *testing.T) {
	linttest.Run(t, "testdata/src/hotalloc_neg", "udt/internal/core", lint.HotAlloc)
}

func TestHotAllocSuppressionAudited(t *testing.T) {
	linttest.Suppressed(t, "testdata/src/hotalloc_neg", "udt/internal/core", lint.HotAlloc, 1)
}

// hotalloc gates on the //udt:hotpath marker, not the package: marked
// functions are held to the zero-alloc invariant wherever they live.
func TestHotAllocMarkerGatedNotPackageGated(t *testing.T) {
	linttest.Run(t, "testdata/src/hotalloc_pos", "udt/internal/anything", lint.HotAlloc)
}
