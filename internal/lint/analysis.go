// Package lint implements udtlint, the repo's custom static-analysis suite.
// Each analyzer mechanically enforces one invariant that the runtime test
// suite can only check after the fact: byte-identical models and predictions
// across worker counts and seeds (maprange, seedsource), data-race-free
// shared counters (atomicfield), and allocation-free inference hot loops
// (hotalloc). The framework mirrors the golang.org/x/tools/go/analysis API
// shape but is built on the standard library alone, loading type information
// from the compiler's export data via `go list -export`.
package lint

import (
	"fmt"
	"go/ast"
	"go/printer"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// render formats an expression for a diagnostic message.
func render(fset *token.FileSet, n ast.Node) string {
	var sb strings.Builder
	if err := printer.Fprint(&sb, fset, n); err != nil {
		return "?"
	}
	return sb.String()
}

// An Analyzer checks one invariant over a type-checked package.
type Analyzer struct {
	Name string
	Doc  string
	// Suppress is the comment directive (e.g. "udt:alloc-ok") that silences
	// a finding when placed on the flagged line or the line directly above.
	// Suppressed findings are retained with Diagnostic.Suppressed set so the
	// -strict driver mode can audit them.
	Suppress string
	Run      func(*Pass)
}

// A Pass carries one analyzer's run over one package.
type Pass struct {
	Analyzer *Analyzer
	Pkg      *Package
	diags    []Diagnostic
}

// A Diagnostic is one finding, resolved to a file position.
type Diagnostic struct {
	Pos        token.Position
	Analyzer   string
	Message    string
	Suppressed bool // an escape-hatch directive covers the site
}

func (d Diagnostic) String() string {
	if d.Suppressed {
		return fmt.Sprintf("%s: [%s] suppressed by //%s: %s", d.Pos, d.Analyzer, suppressDirective(d.Analyzer), d.Message)
	}
	return fmt.Sprintf("%s: [%s] %s", d.Pos, d.Analyzer, d.Message)
}

// Reportf records a finding at pos, marking it suppressed when the
// analyzer's escape-hatch directive covers the line.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Pkg.Fset.Position(pos)
	p.diags = append(p.diags, Diagnostic{
		Pos:        position,
		Analyzer:   p.Analyzer.Name,
		Message:    fmt.Sprintf(format, args...),
		Suppressed: p.Analyzer.Suppress != "" && p.suppressedAt(position),
	})
}

// suppressedAt reports whether the analyzer's directive appears on the given
// line or the line directly above it in the same file.
func (p *Pass) suppressedAt(pos token.Position) bool {
	for _, d := range directivesIn(p.Pkg, pos.Filename) {
		if d.name == p.Analyzer.Suppress && (d.line == pos.Line || d.line == pos.Line-1) {
			return true
		}
	}
	return false
}

// directive is one "//udt:<name> ..." comment.
type directive struct {
	line int
	name string
}

// directivesIn scans a file's comments for udt: directives.
func directivesIn(pkg *Package, filename string) []directive {
	var out []directive
	for _, f := range pkg.Files {
		if pkg.Fset.Position(f.Pos()).Filename != filename {
			continue
		}
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				if !strings.HasPrefix(text, "udt:") {
					continue
				}
				name := text
				if i := strings.IndexAny(name, " \t"); i >= 0 {
					name = name[:i]
				}
				out = append(out, directive{line: pkg.Fset.Position(c.Pos()).Line, name: name})
			}
		}
	}
	return out
}

// hasDirective reports whether the comment group carries the directive.
func hasDirective(doc *ast.CommentGroup, name string) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		text := strings.TrimPrefix(c.Text, "//")
		first := text
		if i := strings.IndexAny(first, " \t"); i >= 0 {
			first = first[:i]
		}
		if first == name {
			return true
		}
	}
	return false
}

// suppressDirective maps an analyzer name to its escape-hatch directive for
// diagnostic rendering.
func suppressDirective(analyzer string) string {
	for _, a := range Analyzers {
		if a.Name == analyzer {
			return a.Suppress
		}
	}
	return "udt:?"
}

// Analyzers is the full udtlint suite in reporting order.
var Analyzers = []*Analyzer{
	MapRange,
	SeedSource,
	AtomicField,
	HotAlloc,
	AlignField,
}

// RunAnalyzers applies every analyzer to every package and returns the
// findings sorted by position.
func RunAnalyzers(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	var out []Diagnostic
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			pass := &Pass{Analyzer: a, Pkg: pkg}
			a.Run(pass)
			out = append(out, pass.diags...)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return out
}

// determinismCritical names the packages whose code paths produce model
// bytes or predictions: the packages where an unordered map iteration or an
// unseeded random source silently breaks the byte-identical-model guarantee
// pinned by TestModelDeterminismMatrix. Gating is by package name (the last
// import path element), which also lets analysistest fixtures opt in.
var determinismCritical = map[string]bool{
	"core":    true,
	"split":   true,
	"pdf":     true,
	"forest":  true,
	"boost":   true,
	"modelio": true,
	"binfmt":  true,
}

// inDeterminismCritical reports whether the package is gated.
func inDeterminismCritical(pkg *Package) bool {
	path := pkg.Path
	if i := strings.LastIndex(path, "/"); i >= 0 {
		path = path[i+1:]
	}
	return determinismCritical[path]
}

// walkStack walks the AST depth-first, calling fn with each node and the
// stack of its ancestors (outermost first, not including n itself). fn
// returning false prunes the subtree.
func walkStack(root ast.Node, fn func(n ast.Node, stack []ast.Node) bool) {
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if !fn(n, stack) {
			return false // pruned: Inspect sends no pop for this node
		}
		stack = append(stack, n)
		return true
	})
}

// pkgFunc reports whether the call's callee is the named package-level
// function (selector on an imported package, not a method).
func pkgFunc(info *types.Info, call *ast.CallExpr, pkgPath, name string) bool {
	obj := calleeObj(info, call)
	return obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == pkgPath && obj.Name() == name &&
		isPackageSelector(info, call.Fun)
}

// calleeObj resolves the object a call expression invokes, nil for builtins
// and indirect calls.
func calleeObj(info *types.Info, call *ast.CallExpr) types.Object {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return info.Uses[fun]
	case *ast.SelectorExpr:
		return info.Uses[fun.Sel]
	}
	return nil
}

// isBuiltin reports whether the identifier resolves to a language builtin
// (make, new, append, ...) rather than a user-defined shadow.
func isBuiltin(info *types.Info, id *ast.Ident) bool {
	_, ok := info.Uses[id].(*types.Builtin)
	return ok
}

// isPackageSelector reports whether expr is pkg.Name with pkg an import (as
// opposed to a method or field selector).
func isPackageSelector(info *types.Info, expr ast.Expr) bool {
	sel, ok := ast.Unparen(expr).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return false
	}
	_, isPkg := info.Uses[id].(*types.PkgName)
	return isPkg
}
