package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// AlignField guards the binary container's alignment discipline in packages
// named binfmt. Two invariants, both load-bearing for mmap'd models:
//
//  1. Alignment-mask arithmetic on the off64 offset type (&, &^, %, <<, >>)
//     may appear only inside functions annotated //udt:alignsafe — in
//     practice the blessed align/aligned helpers. Every section placement
//     then flows through one audited rounding rule; a hand-rolled mask in a
//     new code path is exactly the bug class that produces a misaligned
//     section and a SIGBUS (or silent slow path) on a strict-alignment host.
//
//  2. The unsafe package may be referenced only inside //udt:alignsafe
//     functions. Reinterpreting mapped bytes as typed slices is legal only
//     under the alignment and endianness preconditions those functions
//     document and check; casual unsafe anywhere else in the codec has no
//     such proof obligation attached.
//
// Sites that genuinely need an exception carry //udt:align-ok with a reason,
// which the -strict driver mode reports for audit.
var AlignField = &Analyzer{
	Name:     "alignfield",
	Doc:      "confines off64 alignment arithmetic and unsafe to //udt:alignsafe functions in binfmt packages",
	Suppress: "udt:align-ok",
	Run:      runAlignField,
}

// alignSafeDirective marks a function audited for alignment/unsafe rules.
const alignSafeDirective = "udt:alignsafe"

func runAlignField(pass *Pass) {
	if !isBinfmtPackage(pass.Pkg) {
		return
	}
	info := pass.Pkg.Info
	for _, f := range pass.Pkg.Files {
		walkStack(f, func(n ast.Node, stack []ast.Node) bool {
			switch n := n.(type) {
			case *ast.SelectorExpr:
				if !usesUnsafe(info, n) || inAlignSafe(stack) {
					return true
				}
				pass.Reportf(n.Pos(),
					"unsafe.%s outside a //%s function in package %q "+
						"(invariant: reinterpreting container bytes requires the audited alignment preconditions); "+
						"move the cast into an annotated helper or annotate //udt:align-ok with a reason",
					n.Sel.Name, alignSafeDirective, pass.Pkg.Name)
			case *ast.BinaryExpr:
				if !alignMaskOp(n.Op) || !(isOff64(info, n.X) || isOff64(info, n.Y)) || inAlignSafe(stack) {
					return true
				}
				pass.Reportf(n.OpPos,
					"alignment arithmetic %q on off64 outside a //%s helper "+
						"(invariant: section placement goes through the blessed align/aligned helpers only); "+
						"call the helper or annotate //udt:align-ok with a reason",
					n.Op, alignSafeDirective)
			case *ast.AssignStmt:
				if !alignMaskAssignOp(n.Tok) || inAlignSafe(stack) {
					return true
				}
				for _, lhs := range n.Lhs {
					if isOff64(info, lhs) {
						pass.Reportf(n.TokPos,
							"alignment arithmetic %q on off64 outside a //%s helper "+
								"(invariant: section placement goes through the blessed align/aligned helpers only); "+
								"call the helper or annotate //udt:align-ok with a reason",
							n.Tok, alignSafeDirective)
						break
					}
				}
			}
			return true
		})
	}
}

// isBinfmtPackage gates the analyzer on package name: the binary container
// codec and any future sibling formats named binfmt.
func isBinfmtPackage(pkg *Package) bool {
	return pkg.Name == "binfmt"
}

// alignMaskOp reports whether the operator belongs to the mask/rounding
// family that implements (or mis-implements) alignment. Additive offset
// advancement (+, -, *) is ordinary size arithmetic and stays unrestricted.
func alignMaskOp(op token.Token) bool {
	switch op {
	case token.AND, token.AND_NOT, token.REM, token.SHL, token.SHR:
		return true
	}
	return false
}

// alignMaskAssignOp is alignMaskOp for the compound-assignment forms.
func alignMaskAssignOp(tok token.Token) bool {
	switch tok {
	case token.AND_ASSIGN, token.AND_NOT_ASSIGN, token.REM_ASSIGN, token.SHL_ASSIGN, token.SHR_ASSIGN:
		return true
	}
	return false
}

// isOff64 reports whether the expression's type is a named type off64
// (whatever package declares it — the gate already restricts to binfmt).
func isOff64(info *types.Info, expr ast.Expr) bool {
	tv, ok := info.Types[expr]
	if !ok || tv.Type == nil {
		return false
	}
	named, ok := tv.Type.(*types.Named)
	return ok && named.Obj() != nil && named.Obj().Name() == "off64"
}

// usesUnsafe reports whether the selector references the unsafe package.
func usesUnsafe(info *types.Info, sel *ast.SelectorExpr) bool {
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return false
	}
	pn, ok := info.Uses[id].(*types.PkgName)
	return ok && pn.Imported().Path() == "unsafe"
}

// inAlignSafe reports whether any enclosing declaration on the stack carries
// the //udt:alignsafe directive: a function declaration, or a package-level
// var/const whose initializer does the work (the host-endianness probe).
// Function literals inherit the annotation of the declaration they are
// nested in: the audit covers the whole body.
func inAlignSafe(stack []ast.Node) bool {
	for _, n := range stack {
		switch n := n.(type) {
		case *ast.FuncDecl:
			if hasDirective(n.Doc, alignSafeDirective) {
				return true
			}
		case *ast.GenDecl:
			if hasDirective(n.Doc, alignSafeDirective) {
				return true
			}
		case *ast.ValueSpec:
			if hasDirective(n.Doc, alignSafeDirective) {
				return true
			}
		}
	}
	return false
}
