package lint_test

import (
	"strings"
	"testing"

	"udt/internal/lint"
)

// TestRepoPackagesClean is the enforcement test: every package in this module
// must pass the full analyzer suite with zero unsuppressed findings, exactly
// as CI's `go run ./cmd/udtlint ./...` requires. Suppressed findings are
// allowed but counted, so a silently ballooning pile of escape hatches shows
// up here as a changed number.
func TestRepoPackagesClean(t *testing.T) {
	pkgs, err := lint.Load("../..", "./...")
	if err != nil {
		t.Fatalf("loading repo packages: %v", err)
	}
	if len(pkgs) < 10 {
		t.Fatalf("loaded only %d packages; expected the whole module", len(pkgs))
	}
	suppressed := 0
	for _, d := range lint.RunAnalyzers(pkgs, lint.Analyzers) {
		if d.Suppressed {
			suppressed++
			t.Logf("audited suppression: %s", d)
			continue
		}
		t.Errorf("unsuppressed finding: %s", d)
	}
	// The two pooled-scratch warm-up allocations (core.scratch.outBuf and
	// forest.fscratch.outBuf) are the only blessed escape hatches today.
	if suppressed != 2 {
		t.Errorf("suppressed findings = %d, want 2; new //udt: escape hatches must be accounted for here", suppressed)
	}
}

// TestSeededViolationCaught proves the suite bites: a package named forest
// that ranges over a map while building a slice must produce a maprange
// diagnostic naming the file, line and invariant.
func TestSeededViolationCaught(t *testing.T) {
	pkg, err := lint.LoadDir("testdata/src/seeded_violation", "udt/internal/forest")
	if err != nil {
		t.Fatalf("loading fixture: %v", err)
	}
	diags := lint.RunAnalyzers([]*lint.Package{pkg}, lint.Analyzers)
	if len(diags) != 1 {
		t.Fatalf("got %d diagnostics, want exactly 1: %v", len(diags), diags)
	}
	d := diags[0]
	if d.Suppressed {
		t.Errorf("diagnostic unexpectedly suppressed: %s", d)
	}
	if d.Analyzer != "maprange" {
		t.Errorf("analyzer = %q, want maprange", d.Analyzer)
	}
	if !strings.HasSuffix(d.Pos.Filename, "violation.go") {
		t.Errorf("diagnostic filename = %q, want .../violation.go", d.Pos.Filename)
	}
	if d.Pos.Line != 9 {
		t.Errorf("diagnostic line = %d, want 9 (the range statement)", d.Pos.Line)
	}
	for _, needle := range []string{"nondeterministic order", "byte-identical"} {
		if !strings.Contains(d.Message, needle) {
			t.Errorf("message %q does not name the invariant (missing %q)", d.Message, needle)
		}
	}
}
