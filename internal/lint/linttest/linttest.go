// Package linttest runs udtlint analyzers over fixture packages under
// testdata/src, comparing diagnostics against // want "regexp" comments —
// the same convention as golang.org/x/tools' analysistest, implemented on
// the repo's stdlib-only lint framework.
//
// A fixture directory is one package; the import path passed to Run decides
// gating (the determinism analyzers gate on the path's last element), so a
// fixture named testdata/src/maprange_pos can still pose as package "core".
package linttest

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"udt/internal/lint"
)

var wantRe = regexp.MustCompile(`//\s*want\s+(.*)$`)

// expectation is one // want comment: a file line plus the regexps every
// diagnostic on that line must match (one diagnostic per regexp).
type expectation struct {
	file string
	line int
	res  []*regexp.Regexp
}

// Run loads the fixture package in dir under the pretend import path,
// applies the analyzer, and fails the test unless the unsuppressed
// diagnostics exactly match the fixture's // want comments.
func Run(t *testing.T, dir, importPath string, a *lint.Analyzer) {
	t.Helper()
	diags := run(t, dir, importPath, a)

	var unsuppressed []lint.Diagnostic
	for _, d := range diags {
		if !d.Suppressed {
			unsuppressed = append(unsuppressed, d)
		}
	}
	wants, err := parseWants(dir)
	if err != nil {
		t.Fatal(err)
	}

	matched := make([]bool, len(unsuppressed))
	for _, w := range wants {
		for _, re := range w.res {
			found := false
			for i, d := range unsuppressed {
				if !matched[i] && filepath.Base(d.Pos.Filename) == w.file && d.Pos.Line == w.line && re.MatchString(d.Message) {
					matched[i] = true
					found = true
					break
				}
			}
			if !found {
				t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, re)
			}
		}
	}
	for i, d := range unsuppressed {
		if !matched[i] {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
}

// Empty loads the fixture and asserts the analyzer reports nothing at all,
// ignoring any // want comments — the harness for gating tests that reuse a
// positive fixture under an out-of-scope import path.
func Empty(t *testing.T, dir, importPath string, a *lint.Analyzer) {
	t.Helper()
	for _, d := range run(t, dir, importPath, a) {
		t.Errorf("unexpected diagnostic: %s", d)
	}
}

// Suppressed loads the fixture and asserts the number of findings the
// analyzer recorded as silenced by its escape-hatch directive — the set the
// -strict driver mode audits.
func Suppressed(t *testing.T, dir, importPath string, a *lint.Analyzer, want int) {
	t.Helper()
	diags := run(t, dir, importPath, a)
	got := 0
	for _, d := range diags {
		if d.Suppressed {
			got++
		}
	}
	if got != want {
		t.Errorf("%s over %s: %d suppressed findings, want %d\n%v", a.Name, dir, got, want, diags)
	}
}

func run(t *testing.T, dir, importPath string, a *lint.Analyzer) []lint.Diagnostic {
	t.Helper()
	pkg, err := lint.LoadDir(dir, importPath)
	if err != nil {
		t.Fatal(err)
	}
	return lint.RunAnalyzers([]*lint.Package{pkg}, []*lint.Analyzer{a})
}

// parseWants scans the fixture sources for // want comments.
func parseWants(dir string) ([]expectation, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var out []expectation
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		raw, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			return nil, err
		}
		for i, line := range strings.Split(string(raw), "\n") {
			m := wantRe.FindStringSubmatch(line)
			if m == nil {
				continue
			}
			res, err := parsePatterns(m[1])
			if err != nil {
				return nil, fmt.Errorf("%s:%d: %v", e.Name(), i+1, err)
			}
			out = append(out, expectation{file: e.Name(), line: i + 1, res: res})
		}
	}
	return out, nil
}

// parsePatterns splits a want payload of one or more quoted or backquoted
// regexps.
func parsePatterns(s string) ([]*regexp.Regexp, error) {
	var out []*regexp.Regexp
	s = strings.TrimSpace(s)
	for s != "" {
		var quote byte = s[0]
		if quote != '"' && quote != '`' {
			return nil, fmt.Errorf("want pattern must be quoted: %q", s)
		}
		end := strings.IndexByte(s[1:], quote)
		if end < 0 {
			return nil, fmt.Errorf("unterminated want pattern: %q", s)
		}
		lit := s[:end+2]
		s = strings.TrimSpace(s[end+2:])
		text, err := strconv.Unquote(lit)
		if err != nil {
			return nil, err
		}
		re, err := regexp.Compile(text)
		if err != nil {
			return nil, err
		}
		out = append(out, re)
	}
	return out, nil
}
