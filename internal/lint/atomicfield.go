package lint

import (
	"go/ast"
	"go/types"
)

// AtomicField flags struct fields with mixed atomic and plain access — the
// race pattern the wrapper types of sync/atomic were introduced to prevent.
// Two rules:
//
//  1. A field passed as &x.f to a sync/atomic function anywhere in the
//     package must be accessed that way everywhere: any plain read or write
//     of the same field is reported.
//  2. A field whose type is an atomic wrapper (atomic.Int64,
//     atomic.Pointer[T], ...) may only be used as a method-call receiver or
//     have its address taken; copying the wrapper value out of the struct
//     is reported (the copy is torn from the atomic timeline).
//
// This guards the udtserve metrics counters and hot-reload generation
// pointer, and the shared pruning threshold of internal/split/parallel.go.
// The analyzer runs on every package: atomics are rare enough that gating
// would only hide findings.
var AtomicField = &Analyzer{
	Name:     "atomicfield",
	Doc:      "flags struct fields accessed both atomically and plainly",
	Suppress: "udt:atomic-ok",
	Run:      runAtomicField,
}

func runAtomicField(pass *Pass) {
	info := pass.Pkg.Info

	// Pass 1: find fields that are operands of old-style sync/atomic calls
	// (atomic.AddInt64(&x.f, ...) and friends).
	atomicOps := map[types.Object]bool{}
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || !isAtomicFuncCall(info, call) {
				return true
			}
			for _, arg := range call.Args {
				if fld := addrOfField(info, arg); fld != nil {
					atomicOps[fld] = true
				}
			}
			return true
		})
	}

	// Pass 2: classify every selector use of (a) the fields found above and
	// (b) fields whose type is an atomic wrapper.
	for _, f := range pass.Pkg.Files {
		walkStack(f, func(n ast.Node, stack []ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fld := fieldObject(info, sel)
			if fld == nil {
				return true
			}
			if atomicOps[fld] && !isAtomicContext(info, sel, stack) {
				pass.Reportf(sel.Sel.Pos(),
					"field %s is accessed via sync/atomic elsewhere in this package but plainly here "+
						"(invariant: a field on the atomic timeline must never see a plain load/store); "+
						"use the matching sync/atomic call or an atomic wrapper type",
					fld.Name())
				return true
			}
			if isAtomicWrapper(fld.Type()) && !isWrapperSafeContext(sel, stack) {
				pass.Reportf(sel.Sel.Pos(),
					"atomic wrapper field %s is copied or read as a plain value "+
						"(invariant: wrapper fields are only usable through their methods or by address); "+
						"call .Load()/.Store() or pass &%s",
					fld.Name(), render(pass.Pkg.Fset, sel))
			}
			return true
		})
	}
}

// rangeValueless reports whether the range statement binds no value
// variable (blank counts as none).
func rangeValueless(rs *ast.RangeStmt) bool {
	if rs.Value == nil {
		return true
	}
	id, ok := rs.Value.(*ast.Ident)
	return ok && id.Name == "_"
}

// isAtomicFuncCall reports whether the call invokes a package-level
// sync/atomic function (Load*/Store*/Add*/Swap*/CompareAndSwap*).
func isAtomicFuncCall(info *types.Info, call *ast.CallExpr) bool {
	obj := calleeObj(info, call)
	return obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "sync/atomic" &&
		isPackageSelector(info, call.Fun)
}

// addrOfField returns the field object when expr is &x.f (possibly
// parenthesised), nil otherwise.
func addrOfField(info *types.Info, expr ast.Expr) types.Object {
	un, ok := ast.Unparen(expr).(*ast.UnaryExpr)
	if !ok || un.Op.String() != "&" {
		return nil
	}
	sel, ok := ast.Unparen(un.X).(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	return fieldObject(info, sel)
}

// fieldObject resolves a selector to a struct field object, nil for
// methods, package selectors, and non-field selections.
func fieldObject(info *types.Info, sel *ast.SelectorExpr) types.Object {
	s, ok := info.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return nil
	}
	return s.Obj()
}

// isAtomicContext reports whether the selector is used as &sel inside a
// sync/atomic call argument.
func isAtomicContext(info *types.Info, sel *ast.SelectorExpr, stack []ast.Node) bool {
	// Expect ... CallExpr > UnaryExpr(&) > [ParenExpr...] > sel.
	i := len(stack) - 1
	for i >= 0 {
		if _, ok := stack[i].(*ast.ParenExpr); ok {
			i--
			continue
		}
		break
	}
	if i < 0 {
		return false
	}
	un, ok := stack[i].(*ast.UnaryExpr)
	if !ok || un.Op.String() != "&" {
		return false
	}
	for j := i - 1; j >= 0; j-- {
		if _, ok := stack[j].(*ast.ParenExpr); ok {
			continue
		}
		call, ok := stack[j].(*ast.CallExpr)
		return ok && isAtomicFuncCall(info, call)
	}
	return false
}

// isAtomicWrapper reports whether t is one of the sync/atomic wrapper types
// (atomic.Int64, atomic.Pointer[T], ...), or an array of them.
func isAtomicWrapper(t types.Type) bool {
	if arr, ok := t.Underlying().(*types.Array); ok {
		return isAtomicWrapper(arr.Elem())
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync/atomic"
}

// isWrapperSafeContext reports whether a selector of an atomic wrapper
// field appears in a safe position: as the receiver of a further selection
// (method call), under an address-of, or behind index expressions that lead
// to one of those (arrays of wrapper counters).
func isWrapperSafeContext(sel *ast.SelectorExpr, stack []ast.Node) bool {
	child := ast.Node(sel)
	for i := len(stack) - 1; i >= 0; i-- {
		switch parent := stack[i].(type) {
		case *ast.ParenExpr:
			child = parent
			continue
		case *ast.IndexExpr:
			// s.batch[i] — only transparent when the wrapper selector is
			// the indexed operand, not the index.
			if parent.X != child {
				return false
			}
			child = parent
			continue
		case *ast.SelectorExpr:
			// s.n.Load — the wrapper is the receiver of a method selection.
			return parent.X == child
		case *ast.UnaryExpr:
			return parent.Op.String() == "&"
		case *ast.RangeStmt:
			// Index-only range over an array of wrappers copies nothing (the
			// spec skips evaluating a constant-length array when at most one
			// iteration variable is present); a value variable would copy
			// every element off the atomic timeline.
			return parent.X == child && rangeValueless(parent)
		default:
			return false
		}
	}
	return false
}
