package lint_test

import (
	"testing"

	"udt/internal/lint"
	"udt/internal/lint/linttest"
)

func TestMapRangePositive(t *testing.T) {
	linttest.Run(t, "testdata/src/maprange_pos", "udt/internal/core", lint.MapRange)
}

func TestMapRangeNegative(t *testing.T) {
	linttest.Run(t, "testdata/src/maprange_neg", "udt/internal/core", lint.MapRange)
}

// The escape hatch stays auditable: the suppressed finding is retained for
// the -strict driver mode rather than dropped.
func TestMapRangeSuppressionAudited(t *testing.T) {
	linttest.Suppressed(t, "testdata/src/maprange_neg", "udt/internal/core", lint.MapRange, 1)
}

// A package outside the determinism-critical set is not gated, no matter
// how many maps it ranges over.
func TestMapRangeUngatedPackage(t *testing.T) {
	linttest.Run(t, "testdata/src/maprange_ungated", "udt/internal/other", lint.MapRange)
	linttest.Suppressed(t, "testdata/src/maprange_ungated", "udt/internal/other", lint.MapRange, 0)
}
