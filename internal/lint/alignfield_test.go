package lint_test

import (
	"testing"

	"udt/internal/lint"
	"udt/internal/lint/linttest"
)

func TestAlignFieldPositive(t *testing.T) {
	linttest.Run(t, "testdata/src/alignfield_pos", "udt/internal/binfmt", lint.AlignField)
}

func TestAlignFieldNegative(t *testing.T) {
	linttest.Run(t, "testdata/src/alignfield_neg", "udt/internal/binfmt", lint.AlignField)
}

// The escape hatch stays auditable: the suppressed finding is retained for
// the -strict driver mode rather than dropped.
func TestAlignFieldSuppressionAudited(t *testing.T) {
	linttest.Suppressed(t, "testdata/src/alignfield_neg", "udt/internal/binfmt", lint.AlignField, 1)
}

// The analyzer gates on the package name, not the import path: a package
// not named binfmt is out of scope however it masks its own off64.
func TestAlignFieldUngatedPackage(t *testing.T) {
	linttest.Empty(t, "testdata/src/alignfield_ungated", "udt/internal/other", lint.AlignField)
	linttest.Suppressed(t, "testdata/src/alignfield_ungated", "udt/internal/other", lint.AlignField, 0)
}
