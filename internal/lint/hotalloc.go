package lint

import (
	"go/ast"
	"go/types"
)

// HotAlloc flags heap allocations inside functions marked //udt:hotpath —
// the compiled-descent and batch-classify loops where the sync.Pool scratch
// / arena pattern is mandatory and a stray allocation silently reverts the
// zero-alloc property pinned by BenchmarkCompiledVsRecursive. Flagged in a
// hotpath function:
//
//   - make(...) and new(...)
//   - slice, map, and pointer composite literals ([]T{...}, map[K]V{...},
//     &T{...}; plain value struct literals copied into slabs are fine)
//   - append to a slice declared inside the function itself (a fresh
//     accumulator growing per call, rather than a pooled slab reached
//     through a parameter or receiver)
//
// Amortised growth of pooled scratch (the warm-up make in an outBuf-style
// helper) carries an explicit //udt:alloc-ok comment, which the -strict
// driver mode reports for audit.
var HotAlloc = &Analyzer{
	Name:     "hotalloc",
	Doc:      "flags allocations in //udt:hotpath functions",
	Suppress: "udt:alloc-ok",
	Run:      runHotAlloc,
}

func runHotAlloc(pass *Pass) {
	info := pass.Pkg.Info
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || !hasDirective(fn.Doc, "udt:hotpath") {
				continue
			}
			checkHotFunc(pass, info, fn)
		}
	}
}

func checkHotFunc(pass *Pass, info *types.Info, fn *ast.FuncDecl) {
	name := fn.Name.Name
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok && isBuiltin(info, id) {
				switch id.Name {
				case "make", "new":
					pass.Reportf(n.Pos(),
						"%s allocates inside //udt:hotpath function %s "+
							"(invariant: hot inference loops perform no steady-state allocation); "+
							"draw from the pooled scratch/arena or annotate //udt:alloc-ok",
						id.Name, name)
				case "append":
					if dst := localSliceArg(info, fn, n); dst != "" {
						pass.Reportf(n.Pos(),
							"append grows function-local slice %s inside //udt:hotpath function %s "+
								"(invariant: hot inference loops perform no steady-state allocation); "+
								"reuse a pooled slab ([:0] reset) or annotate //udt:alloc-ok",
							dst, name)
					}
				}
			}
		case *ast.UnaryExpr:
			if n.Op.String() == "&" {
				if cl, ok := ast.Unparen(n.X).(*ast.CompositeLit); ok {
					pass.Reportf(n.Pos(),
						"&%s escapes to the heap inside //udt:hotpath function %s "+
							"(invariant: hot inference loops perform no steady-state allocation); "+
							"recycle via sync.Pool/arena or annotate //udt:alloc-ok",
						render(pass.Pkg.Fset, cl.Type), name)
					return false // the literal is already reported as part of this site
				}
			}
		case *ast.CompositeLit:
			tv, ok := info.Types[n]
			if !ok {
				return true
			}
			switch tv.Type.Underlying().(type) {
			case *types.Slice, *types.Map:
				pass.Reportf(n.Pos(),
					"composite literal allocates a %s inside //udt:hotpath function %s "+
						"(invariant: hot inference loops perform no steady-state allocation); "+
						"reuse pooled storage or annotate //udt:alloc-ok",
					kindName(tv.Type.Underlying()), name)
			}
		}
		return true
	})
}

func kindName(t types.Type) string {
	switch t.(type) {
	case *types.Slice:
		return "slice"
	case *types.Map:
		return "map"
	}
	return "value"
}

// localSliceArg returns the name of append's destination when it is an
// identifier declared inside the function body (a fresh per-call
// accumulator), "" otherwise — appends to slabs reached through receivers,
// parameters, or package state are the blessed amortised pattern.
func localSliceArg(info *types.Info, fn *ast.FuncDecl, call *ast.CallExpr) string {
	if len(call.Args) == 0 {
		return ""
	}
	id, ok := ast.Unparen(call.Args[0]).(*ast.Ident)
	if !ok {
		return ""
	}
	obj := objectOf(info, id)
	if obj == nil {
		return ""
	}
	if obj.Pos() >= fn.Body.Pos() && obj.Pos() <= fn.Body.End() {
		return id.Name
	}
	return ""
}
