package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// Package is one loaded, type-checked package ready for analysis.
type Package struct {
	Path  string // import path (or the pretend path of a fixture package)
	Name  string
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// listEntry is the subset of `go list -json` output the loader consumes.
type listEntry struct {
	Dir        string
	ImportPath string
	Name       string
	Export     string
	GoFiles    []string
	Standard   bool
	DepOnly    bool
	Error      *struct{ Err string }
}

// Load enumerates the packages matching patterns (resolved relative to dir)
// and returns each non-dependency match parsed and type-checked. Type
// information for imports — the standard library included — comes from the
// compiler's export data reported by `go list -export`, so loading needs
// only the stdlib go/types machinery and stays proportional to the target
// packages, not their dependency cone.
//
// Only GoFiles are analyzed: _test.go files never ship model bytes, so the
// determinism analyzers deliberately skip them.
func Load(dir string, patterns ...string) ([]*Package, error) {
	args := append([]string{
		"list", "-e", "-export", "-deps",
		"-json=Dir,ImportPath,Name,Export,GoFiles,Standard,DepOnly,Error",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go list: %v\n%s", err, stderr.Bytes())
	}

	exports := map[string]string{}
	var targets []listEntry
	dec := json.NewDecoder(&stdout)
	for {
		var e listEntry
		if err := dec.Decode(&e); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list output: %v", err)
		}
		if e.Error != nil {
			return nil, fmt.Errorf("go list %s: %s", e.ImportPath, e.Error.Err)
		}
		if e.Export != "" {
			exports[e.ImportPath] = e.Export
		}
		if !e.DepOnly && !e.Standard {
			targets = append(targets, e)
		}
	}
	sort.Slice(targets, func(i, j int) bool { return targets[i].ImportPath < targets[j].ImportPath })

	fset := token.NewFileSet()
	imp := newExportImporter(fset, exports)
	pkgs := make([]*Package, 0, len(targets))
	for _, e := range targets {
		files := make([]string, len(e.GoFiles))
		for i, f := range e.GoFiles {
			files[i] = filepath.Join(e.Dir, f)
		}
		pkg, err := checkFiles(fset, imp, e.ImportPath, e.Dir, files)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// LoadDir parses and type-checks the single package rooted at dir (every
// non-test .go file in it) under the given import path. It is the fixture
// loader: testdata packages live outside the module, so the caller assigns
// the path the analyzers should gate on. Imports are restricted to whatever
// export data the go tool can produce for them (the standard library, in
// practice).
func LoadDir(dir, path string) (*Package, error) {
	names, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []string
	imports := map[string]bool{}
	for _, n := range names {
		if n.IsDir() || !strings.HasSuffix(n.Name(), ".go") || strings.HasSuffix(n.Name(), "_test.go") {
			continue
		}
		files = append(files, filepath.Join(dir, n.Name()))
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no Go files in %s", dir)
	}
	sort.Strings(files)

	// One pass to discover the fixture's imports so `go list -export` can
	// materialise their export data.
	fset := token.NewFileSet()
	for _, f := range files {
		af, err := parser.ParseFile(fset, f, nil, parser.ImportsOnly)
		if err != nil {
			return nil, err
		}
		for _, im := range af.Imports {
			p, err := strconv.Unquote(im.Path.Value)
			if err == nil {
				imports[p] = true
			}
		}
	}
	exports := map[string]string{}
	if len(imports) > 0 {
		args := append([]string{
			"list", "-e", "-export", "-deps",
			"-json=ImportPath,Export,Error",
		}, sortedKeys(imports)...)
		cmd := exec.Command("go", args...)
		cmd.Dir = dir
		var stdout, stderr bytes.Buffer
		cmd.Stdout = &stdout
		cmd.Stderr = &stderr
		if err := cmd.Run(); err != nil {
			return nil, fmt.Errorf("go list: %v\n%s", err, stderr.Bytes())
		}
		dec := json.NewDecoder(&stdout)
		for {
			var e listEntry
			if err := dec.Decode(&e); err == io.EOF {
				break
			} else if err != nil {
				return nil, err
			}
			if e.Export != "" {
				exports[e.ImportPath] = e.Export
			}
		}
	}
	fset = token.NewFileSet()
	return checkFiles(fset, newExportImporter(fset, exports), path, dir, files)
}

// checkFiles parses and type-checks one package's files.
func checkFiles(fset *token.FileSet, imp types.Importer, path, dir string, files []string) (*Package, error) {
	asts := make([]*ast.File, 0, len(files))
	for _, f := range files {
		af, err := parser.ParseFile(fset, f, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		asts = append(asts, af)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(path, fset, asts, info)
	if err != nil {
		return nil, fmt.Errorf("typecheck %s: %v", path, err)
	}
	return &Package{
		Path:  path,
		Name:  tpkg.Name(),
		Dir:   dir,
		Fset:  fset,
		Files: asts,
		Types: tpkg,
		Info:  info,
	}, nil
}

// newExportImporter resolves imports through the compiler export data files
// indexed by import path ("unsafe" is built in).
func newExportImporter(fset *token.FileSet, exports map[string]string) types.Importer {
	return importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("lint: no export data for %q", path)
		}
		return os.Open(f)
	})
}

func sortedKeys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
