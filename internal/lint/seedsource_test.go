package lint_test

import (
	"testing"

	"udt/internal/lint"
	"udt/internal/lint/linttest"
)

func TestSeedSourcePositive(t *testing.T) {
	linttest.Run(t, "testdata/src/seedsource_pos", "udt/internal/forest", lint.SeedSource)
}

func TestSeedSourceNegative(t *testing.T) {
	linttest.Run(t, "testdata/src/seedsource_neg", "udt/internal/forest", lint.SeedSource)
}

func TestSeedSourceSuppressionAudited(t *testing.T) {
	linttest.Suppressed(t, "testdata/src/seedsource_neg", "udt/internal/forest", lint.SeedSource, 1)
}

// The same sources are fine outside the model-byte-producing packages
// (cmd/udtgen seeds from a flag, examples from constants).
func TestSeedSourceUngatedPackage(t *testing.T) {
	linttest.Empty(t, "testdata/src/seedsource_pos", "udt/cmd/udtgen", lint.SeedSource)
}
