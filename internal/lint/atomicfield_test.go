package lint_test

import (
	"testing"

	"udt/internal/lint"
	"udt/internal/lint/linttest"
)

func TestAtomicFieldPositive(t *testing.T) {
	linttest.Run(t, "testdata/src/atomicfield_pos", "udt/cmd/udtserve", lint.AtomicField)
}

func TestAtomicFieldNegative(t *testing.T) {
	linttest.Run(t, "testdata/src/atomicfield_neg", "udt/cmd/udtserve", lint.AtomicField)
}

func TestAtomicFieldSuppressionAudited(t *testing.T) {
	linttest.Suppressed(t, "testdata/src/atomicfield_neg", "udt/cmd/udtserve", lint.AtomicField, 1)
}

// atomicfield is deliberately ungated: mixed access is a bug in any
// package, so the positive fixture must fire under any import path.
func TestAtomicFieldRunsEverywhere(t *testing.T) {
	linttest.Run(t, "testdata/src/atomicfield_pos", "udt/internal/anything", lint.AtomicField)
}
