package lint

import (
	"go/ast"
	"go/types"
)

// MapRange flags `for range` over a map in determinism-critical packages.
// Go randomises map iteration order per run, so any map range on a path
// that produces model bytes or predictions breaks the byte-identical
// guarantee pinned by TestModelDeterminismMatrix.
//
// One idiom is recognised as safe and not reported: a range whose body does
// nothing but collect the keys into a slice that the same function later
// sorts (sort.Strings/Ints/Float64s/Slice/SliceStable or slices.Sort*).
// Anything else — including genuinely order-insensitive folds — must carry
// an explicit //udt:nondeterministic-ok comment stating why, which the
// -strict driver mode reports for audit.
var MapRange = &Analyzer{
	Name:     "maprange",
	Doc:      "flags nondeterministic map iteration in determinism-critical packages",
	Suppress: "udt:nondeterministic-ok",
	Run:      runMapRange,
}

func runMapRange(pass *Pass) {
	if !inDeterminismCritical(pass.Pkg) {
		return
	}
	info := pass.Pkg.Info
	for _, f := range pass.Pkg.Files {
		walkStack(f, func(n ast.Node, stack []ast.Node) bool {
			rs, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			tv, ok := info.Types[rs.X]
			if !ok {
				return true
			}
			if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
				return true
			}
			if sortedKeyCollection(info, rs, enclosingFuncBody(stack)) {
				return true
			}
			pass.Reportf(rs.For,
				"range over map %s iterates in nondeterministic order inside determinism-critical package %q "+
					"(invariant: byte-identical models/predictions across runs); "+
					"sort the keys before use or annotate //udt:nondeterministic-ok",
				render(pass.Pkg.Fset, rs.X), pass.Pkg.Name)
			return true
		})
	}
}

// enclosingFuncBody returns the body of the innermost function declaration
// or literal on the stack, nil when the node is at package scope.
func enclosingFuncBody(stack []ast.Node) *ast.BlockStmt {
	for i := len(stack) - 1; i >= 0; i-- {
		switch fn := stack[i].(type) {
		case *ast.FuncDecl:
			return fn.Body
		case *ast.FuncLit:
			return fn.Body
		}
	}
	return nil
}

// sortedKeyCollection reports whether rs is the blessed key-collection
// idiom: the loop body is exactly `keys = append(keys, k)` over the key
// variable, and the enclosing function later passes that slice to a sort.
func sortedKeyCollection(info *types.Info, rs *ast.RangeStmt, body *ast.BlockStmt) bool {
	if body == nil || rs.Body == nil || len(rs.Body.List) != 1 {
		return false
	}
	key, ok := rs.Key.(*ast.Ident)
	if !ok || key.Name == "_" {
		return false
	}
	if rs.Value != nil {
		if v, ok := rs.Value.(*ast.Ident); !ok || v.Name != "_" {
			return false
		}
	}
	asg, ok := rs.Body.List[0].(*ast.AssignStmt)
	if !ok || len(asg.Lhs) != 1 || len(asg.Rhs) != 1 {
		return false
	}
	dst, ok := asg.Lhs[0].(*ast.Ident)
	if !ok {
		return false
	}
	call, ok := asg.Rhs[0].(*ast.CallExpr)
	if !ok || len(call.Args) != 2 {
		return false
	}
	if fn, ok := call.Fun.(*ast.Ident); !ok || fn.Name != "append" || !isBuiltin(info, fn) {
		return false
	}
	src, ok := call.Args[0].(*ast.Ident)
	if !ok || objectOf(info, src) == nil || objectOf(info, src) != objectOf(info, dst) {
		return false
	}
	arg, ok := call.Args[1].(*ast.Ident)
	if !ok || objectOf(info, arg) != objectOf(info, key) {
		return false
	}
	// The collected slice must reach a sort call later in the function.
	slice := objectOf(info, dst)
	sorted := false
	ast.Inspect(body, func(n ast.Node) bool {
		if sorted {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rs.End() || len(call.Args) == 0 {
			return true
		}
		if !isSortCall(info, call) {
			return true
		}
		if id, ok := ast.Unparen(call.Args[0]).(*ast.Ident); ok && objectOf(info, id) == slice {
			sorted = true
		}
		return true
	})
	return sorted
}

// isSortCall reports whether the call invokes a sorting function from sort
// or slices.
func isSortCall(info *types.Info, call *ast.CallExpr) bool {
	obj := calleeObj(info, call)
	if obj == nil || obj.Pkg() == nil || !isPackageSelector(info, call.Fun) {
		return false
	}
	switch obj.Pkg().Path() {
	case "sort":
		switch obj.Name() {
		case "Strings", "Ints", "Float64s", "Slice", "SliceStable", "Sort", "Stable":
			return true
		}
	case "slices":
		switch obj.Name() {
		case "Sort", "SortFunc", "SortStableFunc":
			return true
		}
	}
	return false
}

// objectOf resolves an identifier to its object, following both uses and
// definitions.
func objectOf(info *types.Info, id *ast.Ident) types.Object {
	if obj := info.Uses[id]; obj != nil {
		return obj
	}
	return info.Defs[id]
}
