package lint

import (
	"go/ast"
)

// SeedSource flags random and clock sources that break model-byte
// reproducibility in determinism-critical packages: calls to the global
// math/rand (or math/rand/v2) source, explicit reseeding, and time.Now.
// The blessed pattern is a rand.New(rand.NewSource(seed)) stream whose seed
// is a constant or derived deterministically — the per-tree splitmix64
// streams of internal/forest (treeSeed) are the reference.
var SeedSource = &Analyzer{
	Name:     "seedsource",
	Doc:      "flags unseeded randomness and wall-clock reads in model-byte-producing packages",
	Suppress: "udt:nondeterministic-ok",
	Run:      runSeedSource,
}

// randConstructors are the math/rand functions that build an explicit,
// seedable source rather than drawing from the global one.
var randConstructors = map[string]bool{
	"New":        true,
	"NewSource":  true,
	"NewZipf":    true,
	"NewPCG":     true, // math/rand/v2
	"NewChaCha8": true, // math/rand/v2
}

func runSeedSource(pass *Pass) {
	if !inDeterminismCritical(pass.Pkg) {
		return
	}
	info := pass.Pkg.Info
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			obj := calleeObj(info, call)
			if obj == nil || obj.Pkg() == nil || !isPackageSelector(info, call.Fun) {
				return true
			}
			switch obj.Pkg().Path() {
			case "math/rand", "math/rand/v2":
				if obj.Name() == "Seed" {
					pass.Reportf(call.Pos(),
						"rand.Seed reseeds the process-global source inside determinism-critical package %q "+
							"(invariant: byte-identical models across runs); "+
							"build a local rand.New(rand.NewSource(seed)) stream instead (see forest.treeSeed)",
						pass.Pkg.Name)
					return true
				}
				if !randConstructors[obj.Name()] {
					pass.Reportf(call.Pos(),
						"%s draws from the process-global math/rand source inside determinism-critical package %q "+
							"(invariant: byte-identical models across runs); "+
							"use a rand.New(rand.NewSource(seed)) stream with a constant or derived seed (see forest.treeSeed)",
						render(pass.Pkg.Fset, call.Fun), pass.Pkg.Name)
				}
			case "time":
				if obj.Name() == "Now" {
					pass.Reportf(call.Pos(),
						"time.Now consults the wall clock inside determinism-critical package %q "+
							"(invariant: model bytes must depend only on data, config, and seed); "+
							"thread timestamps in from the caller or annotate //udt:nondeterministic-ok",
						pass.Pkg.Name)
				}
			}
			return true
		})
	}
}
