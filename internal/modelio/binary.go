package modelio

import (
	"fmt"
	"io"

	"udt/internal/binfmt"
	"udt/internal/core"
	"udt/internal/data"
	"udt/internal/forest"
)

// Binary container integration. Load sniffs the binfmt magic and routes
// here; the returned models wrap the mmap-backed container so the serving
// layer can release the mapping (Close) once a hot reload has drained every
// request still reading from it.

// Format names reported by ContainerFormat.
const (
	FormatJSON   = "json"
	FormatBinary = "binary"
)

// Closer is implemented by models that hold OS resources — binary models
// whose arrays alias an mmap'd file. Close releases the mapping; the model
// must not be used afterwards. Use modelio.Close to close any model.
type Closer interface {
	Close() error
}

// TreeSource is implemented by single-tree models that can produce their
// pointer-linked tree — directly (JSON models keep it) or by decompiling the
// flat arrays (binary models drop it). udtree's rules and convert
// subcommands consume this.
type TreeSource interface {
	SourceTree() (*core.Tree, error)
}

// SourceTree implements TreeSource for JSON-loaded trees.
func (m *TreeModel) SourceTree() (*core.Tree, error) { return m.Tree, nil }

// binaryForest is an ensemble loaded from a binary container: the forest's
// arrays alias the container's memory (the file mapping, when mapped).
type binaryForest struct {
	*forest.Forest
	c *binfmt.Container
}

// Close releases the container mapping. Nil-safe and idempotent: the
// container's Close runs its unmap exactly once however many wrappers or
// goroutines reach it.
func (m *binaryForest) Close() error {
	if m == nil {
		return nil
	}
	return m.c.Close()
}

// binaryTree is a single tree loaded from a binary container. It has no
// pointer tree; Describe reads the container's stored build statistics and
// SourceTree decompiles on demand.
type binaryTree struct {
	compiled *core.Compiled
	stats    core.BuildStats
	c        *binfmt.Container
}

// Schema implements Model.
func (m *binaryTree) Schema() (classes []string, num, cat []data.Attribute) {
	return m.compiled.Classes, m.compiled.NumAttrs, m.compiled.CatAttrs
}

// Classify implements Model through the compiled engine.
func (m *binaryTree) Classify(tu *data.Tuple) []float64 { return m.compiled.Classify(tu) }

// Predict implements Model through the compiled engine.
func (m *binaryTree) Predict(tu *data.Tuple) int { return m.compiled.Predict(tu) }

// ClassifyBatch implements Model through the compiled engine.
func (m *binaryTree) ClassifyBatch(tuples []*data.Tuple, workers int) [][]float64 {
	return m.compiled.ClassifyBatch(tuples, workers)
}

// PredictBatch implements Model through the compiled engine.
func (m *binaryTree) PredictBatch(tuples []*data.Tuple, workers int) []int {
	return m.compiled.PredictBatch(tuples, workers)
}

// Describe implements Model.
func (m *binaryTree) Describe() string {
	return fmt.Sprintf("tree (%d nodes, depth %d)", m.stats.Nodes, m.stats.Depth)
}

// Stats returns the build statistics stored in the container.
func (m *binaryTree) Stats() core.BuildStats { return m.stats }

// SourceTree implements TreeSource by decompiling the flat arrays.
func (m *binaryTree) SourceTree() (*core.Tree, error) { return m.compiled.Decompile() }

// Close releases the container mapping. Nil-safe and idempotent, like
// binaryForest.Close.
func (m *binaryTree) Close() error {
	if m == nil {
		return nil
	}
	return m.c.Close()
}

// LoadBinary loads a binary model container, mmap-backed where the platform
// allows. Callers that reload models must Close the returned model once no
// request can still be reading it.
func LoadBinary(path string) (Model, error) {
	c, err := binfmt.Load(path)
	if err != nil {
		return nil, err
	}
	return wrapContainer(c), nil
}

// wrapContainer turns a decoded container into the matching model wrapper.
func wrapContainer(c *binfmt.Container) Model {
	if c.Forest != nil {
		return &binaryForest{Forest: c.Forest, c: c}
	}
	return &binaryTree{compiled: c.Compiled, stats: c.TreeStats, c: c}
}

// EncodeBinary writes any loaded model as a binary container.
func EncodeBinary(w io.Writer, m Model) error {
	switch m := m.(type) {
	case *TreeModel:
		return binfmt.EncodeTree(w, m.Compiled, m.Tree.Stats)
	case *binaryTree:
		return binfmt.EncodeTree(w, m.compiled, m.stats)
	case *forest.Forest:
		return binfmt.EncodeForest(w, m)
	case *binaryForest:
		return binfmt.EncodeForest(w, m.Forest)
	default:
		return fmt.Errorf("modelio: cannot binary-encode %T", m)
	}
}

// AsForest unwraps the ensemble behind a model, whatever container it was
// loaded from. It reports false for single-tree models.
func AsForest(m Model) (*forest.Forest, bool) {
	switch m := m.(type) {
	case *forest.Forest:
		return m, true
	case *binaryForest:
		return m.Forest, true
	default:
		return nil, false
	}
}

// ContainerFormat reports which container format a model was loaded from:
// FormatBinary for binfmt containers, FormatJSON otherwise.
func ContainerFormat(m Model) string {
	switch m.(type) {
	case *binaryForest, *binaryTree:
		return FormatBinary
	default:
		return FormatJSON
	}
}

// Close releases any OS resources the model holds (the file mapping of a
// binary model). Safe on every model, nil included; JSON models are a no-op,
// and closing the same model twice — even concurrently — is safe.
func Close(m Model) error {
	if m == nil {
		return nil
	}
	if c, ok := m.(Closer); ok {
		return c.Close()
	}
	return nil
}
