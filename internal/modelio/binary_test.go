package modelio

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"udt/internal/core"
	"udt/internal/forest"
)

// writeModel encodes the model in the given format to a temp file.
func writeModel(t *testing.T, m Model, dir, name string) string {
	t.Helper()
	var buf bytes.Buffer
	if err := EncodeBinary(&buf, m); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestLoadBinaryAutoDetect: Load sniffs the magic and routes binary
// containers to the mmap loader; loaded models predict identically to their
// JSON-loaded sources and report their container format.
func TestLoadBinaryAutoDetect(t *testing.T) {
	ds := twoClassDataset(80)
	tree, err := core.Build(ds, core.Config{MinWeight: 1})
	if err != nil {
		t.Fatal(err)
	}
	compiled, err := tree.Compile()
	if err != nil {
		t.Fatal(err)
	}
	fr, err := forest.Train(ds, forest.Config{Trees: 5, Seed: 3, TreeConfig: core.Config{MinWeight: 1}})
	if err != nil {
		t.Fatal(err)
	}
	tm := &TreeModel{Tree: tree, Compiled: compiled}
	dir := t.TempDir()

	treeBin := writeModel(t, tm, dir, "tree.udt")
	forestBin := writeModel(t, fr, dir, "forest.udt")

	btm, err := Load(treeBin)
	if err != nil {
		t.Fatal(err)
	}
	defer Close(btm)
	bfm, err := Load(forestBin)
	if err != nil {
		t.Fatal(err)
	}
	defer Close(bfm)

	if got := ContainerFormat(btm); got != FormatBinary {
		t.Fatalf("tree container format %q, want %q", got, FormatBinary)
	}
	if got := ContainerFormat(tm); got != FormatJSON {
		t.Fatalf("JSON tree container format %q, want %q", got, FormatJSON)
	}
	if _, ok := AsForest(btm); ok {
		t.Fatal("binary tree reported as forest")
	}
	g, ok := AsForest(bfm)
	if !ok {
		t.Fatal("binary forest not unwrapped by AsForest")
	}
	if g.NumTrees() != fr.NumTrees() {
		t.Fatalf("%d trees, want %d", g.NumTrees(), fr.NumTrees())
	}
	if btm.Describe() != tm.Describe() {
		t.Fatalf("binary tree describes %q, JSON %q", btm.Describe(), tm.Describe())
	}

	for i, tu := range ds.Tuples {
		wantT, wantF := tm.Classify(tu), fr.Classify(tu)
		gotT, gotF := btm.Classify(tu), bfm.Classify(tu)
		for ci := range wantT {
			if gotT[ci] != wantT[ci] {
				t.Fatalf("tuple %d: binary tree %v, want %v", i, gotT, wantT)
			}
		}
		for ci := range wantF {
			if gotF[ci] != wantF[ci] {
				t.Fatalf("tuple %d: binary forest %v, want %v", i, gotF, wantF)
			}
		}
	}

	// The binary forest keeps satisfying Staged with identical early exits.
	sf, ok := bfm.(Staged)
	if !ok {
		t.Fatal("binary forest lost Staged")
	}
	for i, tu := range ds.Tuples[:20] {
		wp, we := fr.PredictEarlyExit(tu)
		gp, ge := sf.PredictEarlyExit(tu)
		if wp != gp || we != ge {
			t.Fatalf("tuple %d: early exit (%d,%d), want (%d,%d)", i, gp, ge, wp, we)
		}
	}
}

// TestTreeSource: both JSON- and binary-loaded trees surface a pointer tree;
// the decompiled tree predicts identically to the compiled arrays.
func TestTreeSource(t *testing.T) {
	ds := twoClassDataset(60)
	tree, err := core.Build(ds, core.Config{MinWeight: 1})
	if err != nil {
		t.Fatal(err)
	}
	compiled, err := tree.Compile()
	if err != nil {
		t.Fatal(err)
	}
	tm := &TreeModel{Tree: tree, Compiled: compiled}
	if src, err := tm.SourceTree(); err != nil || src != tree {
		t.Fatalf("JSON SourceTree = (%p, %v), want the original tree", src, err)
	}

	path := writeModel(t, tm, t.TempDir(), "tree.udt")
	bm, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	defer Close(bm)
	src, ok := bm.(TreeSource)
	if !ok {
		t.Fatalf("%T does not implement TreeSource", bm)
	}
	decompiled, err := src.SourceTree()
	if err != nil {
		t.Fatal(err)
	}
	for i, tu := range ds.Tuples {
		want := tm.Classify(tu)
		got := decompiled.Classify(tu)
		for ci := range want {
			if got[ci] != want[ci] {
				t.Fatalf("tuple %d: decompiled %v, want %v", i, got, want)
			}
		}
	}
}

// TestEncodeBinaryFromBinary: a binary-loaded model can be re-encoded —
// convert must work in both directions from any source format.
func TestEncodeBinaryFromBinary(t *testing.T) {
	ds := twoClassDataset(60)
	fr, err := forest.Train(ds, forest.Config{Trees: 3, Seed: 5, TreeConfig: core.Config{MinWeight: 1}})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	path := writeModel(t, fr, dir, "a.udt")
	m, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	defer Close(m)
	var buf bytes.Buffer
	if err := EncodeBinary(&buf, m); err != nil {
		t.Fatal(err)
	}
	m2, err := Decode(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if got := ContainerFormat(m2); got != FormatBinary {
		t.Fatalf("re-encoded container format %q", got)
	}
	for i, tu := range ds.Tuples[:20] {
		if got, want := m2.Predict(tu), fr.Predict(tu); got != want {
			t.Fatalf("tuple %d: re-encoded model predicts %d, want %d", i, got, want)
		}
	}
}

// TestLoadErrorsNamePathAndOffset: decode failures must tell the operator
// which file and where in it the problem sits.
func TestLoadErrorsNamePathAndOffset(t *testing.T) {
	dir := t.TempDir()

	badJSON := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(badJSON, []byte(`{"version": 1, "trees": [,]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	_, err := Load(badJSON)
	if err == nil {
		t.Fatal("broken JSON accepted")
	}
	if !strings.Contains(err.Error(), badJSON) {
		t.Errorf("error %q does not name the path", err)
	}
	if !strings.Contains(err.Error(), "byte offset") {
		t.Errorf("error %q does not name the byte offset", err)
	}

	// A truncated binary container must name the path (binfmt wraps it) and
	// a file offset.
	ds := twoClassDataset(40)
	fr, err := forest.Train(ds, forest.Config{Trees: 2, Seed: 1, TreeConfig: core.Config{MinWeight: 1}})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := EncodeBinary(&buf, fr); err != nil {
		t.Fatal(err)
	}
	badBin := filepath.Join(dir, "bad.udt")
	if err := os.WriteFile(badBin, buf.Bytes()[:buf.Len()/2], 0o644); err != nil {
		t.Fatal(err)
	}
	_, err = Load(badBin)
	if err == nil {
		t.Fatal("truncated binary container accepted")
	}
	if !strings.Contains(err.Error(), badBin) {
		t.Errorf("error %q does not name the path", err)
	}
	if !strings.Contains(err.Error(), "offset") {
		t.Errorf("error %q does not name an offset", err)
	}
}

// TestCloseIdempotentWrappers: modelio.Close must be nil-safe and idempotent
// through the whole wrapper chain — tree and forest wrappers, concurrent
// double close, typed-nil wrappers, and JSON models. Run under -race.
func TestCloseIdempotentWrappers(t *testing.T) {
	ds := twoClassDataset(80)
	tree, err := core.Build(ds, core.Config{MinWeight: 1})
	if err != nil {
		t.Fatal(err)
	}
	compiled, err := tree.Compile()
	if err != nil {
		t.Fatal(err)
	}
	fr, err := forest.Train(ds, forest.Config{Trees: 4, Seed: 3, TreeConfig: core.Config{MinWeight: 1}})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	for name, path := range map[string]string{
		"tree":   writeModel(t, &TreeModel{Tree: tree, Compiled: compiled}, dir, "tree.udt"),
		"forest": writeModel(t, fr, dir, "forest.udt"),
	} {
		t.Run(name, func(t *testing.T) {
			m, err := Load(path)
			if err != nil {
				t.Fatal(err)
			}
			var wg sync.WaitGroup
			for i := 0; i < 8; i++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					if err := Close(m); err != nil {
						t.Errorf("concurrent Close: %v", err)
					}
				}()
			}
			wg.Wait()
			if err := Close(m); err != nil {
				t.Fatalf("repeat Close: %v", err)
			}
		})
	}
	if err := Close(nil); err != nil {
		t.Fatalf("Close(nil): %v", err)
	}
	var nt *binaryTree
	var nf *binaryForest
	if err := nt.Close(); err != nil {
		t.Fatalf("nil binaryTree Close: %v", err)
	}
	if err := nf.Close(); err != nil {
		t.Fatalf("nil binaryForest Close: %v", err)
	}
	if err := Close(&TreeModel{Tree: tree, Compiled: compiled}); err != nil {
		t.Fatalf("JSON model Close: %v", err)
	}
}
