package modelio

import (
	"encoding/json"
	"testing"

	"udt/internal/data"
)

// Native Go fuzz targets over the two adversarial decoding surfaces of the
// model I/O layer: the tuple wire format (every byte of a /classify or
// stream request body is attacker-controlled) and the model document loader
// (an operator can point the server at any file). The contract under fuzz
// is narrow and absolute: malformed input returns an error — it never
// panics, and it never half-succeeds with a nil result.
//
// Seed corpora live in testdata/fuzz/<Target>/ and are exercised as plain
// subtests on every ordinary `go test` run; CI additionally runs a short
// `-fuzz` smoke (e.g. `go test -run=^$ -fuzz=FuzzWireTuple -fuzztime=10s
// ./internal/modelio`, once per target) to probe beyond the corpus.

// fuzzSchema is the fixed attribute schema wire tuples are decoded against:
// two numeric attributes and one three-value categorical, enough shape to
// reach every branch of DecodeNum/DecodeCat.
func fuzzSchema() (num, cat []data.Attribute) {
	num = []data.Attribute{
		{Name: "x", Kind: data.Numeric},
		{Name: "y", Kind: data.Numeric},
	}
	cat = []data.Attribute{
		{Name: "c", Kind: data.Categorical, Domain: []string{"p", "q", "r"}},
	}
	return num, cat
}

// FuzzWireTuple: arbitrary bytes through the tuple wire decoder must either
// decode into a schema-consistent tuple or error — never panic.
func FuzzWireTuple(f *testing.F) {
	seeds := []string{
		`{"num": [1.5, 2], "cat": ["q"]}`,
		`{"num": [null, [2, 4]], "cat": [[1, 1, 0]]}`,
		`{"num": [{"xs": [1, 2], "masses": [1, 3]}, 0], "cat": [null]}`,
		`{"num": [1], "cat": []}`,
		`{"num": [1e308, -1e308], "cat": [[0.0, 0.0, 0.0]]}`,
		`{"num": ["abc", {}], "cat": ["zzz"]}`,
		`{"num": [{"xs": [1], "masses": []}, [null]], "cat": [[1]]}`,
		`{`,
		``,
		`null`,
		`{"num": [NaN, 1], "cat": ["p"]}`,
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	num, cat := fuzzSchema()
	f.Fuzz(func(t *testing.T, blob []byte) {
		var wt WireTuple
		if err := json.Unmarshal(blob, &wt); err != nil {
			return
		}
		tu, err := wt.Decode(num, cat)
		if err != nil {
			return
		}
		if tu == nil {
			t.Fatal("Decode returned neither a tuple nor an error")
		}
		// A successful decode must honour the schema arity; anything else
		// would panic later, mid-descent in the compiled engine.
		if len(tu.Num) != len(num) || len(tu.Cat) != len(cat) {
			t.Fatalf("decoded tuple has arity %d/%d, schema is %d/%d", len(tu.Num), len(tu.Cat), len(num), len(cat))
		}
		for j, d := range tu.Cat {
			if d != nil && len(d) != len(cat[j].Domain) {
				t.Fatalf("categorical %d decoded with %d masses, domain has %d", j, len(d), len(cat[j].Domain))
			}
		}
	})
}

// FuzzDecodeModel: arbitrary bytes through the model loader — which routes
// between the legacy single-tree document and the v1/v2 ensemble containers
// — must either produce a servable model or error, never panic.
func FuzzDecodeModel(f *testing.F) {
	leaf := `{"dist": [1, 0], "w": 4}`
	tree := `{"classes": ["a", "b"], "numAttrs": [{"name": "A1"}], "root": {"attr": 0, "split": 1.5, "w": 4, "classW": [2, 2], "left": ` + leaf + `, "right": {"dist": [0, 1], "w": 4}}}`
	seeds := []string{
		tree,
		`{"version": 1, "classes": ["a", "b"], "numAttrs": [{"name": "A1"}], "trees": [{"tree": ` + tree + `}]}`,
		`{"version": 2, "kind": "boosted", "classes": ["a", "b"], "numAttrs": [{"name": "A1"}], "trees": [{"weight": 1.5, "tree": ` + tree + `}]}`,
		`{"version": 2, "kind": "bagged", "classes": ["a", "b"], "numAttrs": [{"name": "A1"}], "trees": [{"weight": 1, "numIdx": [0], "catIdx": [], "tree": ` + tree + `}]}`,
		`{"version": 1, "classes": ["a", "b"], "numAttrs": [{"name": "A1"}], "trees": [{"weight": 2, "tree": ` + tree + `}]}`,
		`{"version": 99, "trees": []}`,
		`{"version": 2, "kind": "stacked", "classes": ["a"], "trees": [{}]}`,
		`{"root": {"dist": [1], "w": 1}}`,
		`{"root": null}`,
		`{"classes": ["a"]}`,
		`{"version": 2, "classes": ["a", "b"], "numAttrs": [{"name": "A1"}], "trees": [{"weight": -3, "tree": ` + tree + `}]}`,
		`[]`,
		`{`,
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, blob []byte) {
		m, err := Decode(blob)
		if err != nil {
			return
		}
		if m == nil {
			t.Fatal("Decode returned neither a model nor an error")
		}
		// A model that decodes must be introspectable without panicking.
		classes, _, _ := m.Schema()
		if len(classes) == 0 {
			t.Fatal("decoded model has no classes")
		}
		_ = m.Describe()
	})
}
