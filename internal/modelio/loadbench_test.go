package modelio

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
	"time"

	"udt/internal/core"
	"udt/internal/data"
	"udt/internal/forest"
	"udt/internal/pdf"
)

// loadBenchDataset is a four-attribute, three-class dataset big enough that
// a 25-member forest produces a multi-megabyte JSON document — the regime
// where parse-and-compile cost dominates a serving restart.
func loadBenchDataset(tb testing.TB, n int) *data.Dataset {
	tb.Helper()
	ds := data.NewDataset("loadbench", 4, []string{"a", "b", "c"})
	rng := rand.New(rand.NewSource(29))
	for i := 0; i < n; i++ {
		c := i % 3
		base := float64(c * 3)
		pdfs := make([]*pdf.PDF, 4)
		for j := range pdfs {
			p, err := pdf.Uniform(base+rng.Float64()*2, base+2+rng.Float64()*2, 9)
			if err != nil {
				tb.Fatal(err)
			}
			pdfs[j] = p
		}
		ds.Add(c, pdfs...)
	}
	return ds
}

// loadBenchFiles trains a single tree and a trees-member forest and writes
// each in both formats, returning path cells in a fixed order:
// tree/json, tree/binary, forest/json, forest/binary.
type loadBenchCell struct {
	model, format, path string
}

func loadBenchFiles(tb testing.TB, dir string, trees int) ([]loadBenchCell, *data.Tuple) {
	tb.Helper()
	ds := loadBenchDataset(tb, 900)
	tree, err := core.Build(ds, core.Config{MinWeight: 2})
	if err != nil {
		tb.Fatal(err)
	}
	compiled, err := tree.Compile()
	if err != nil {
		tb.Fatal(err)
	}
	f, err := forest.Train(ds, forest.Config{Trees: trees, Seed: 3, TreeConfig: core.Config{MinWeight: 2}})
	if err != nil {
		tb.Fatal(err)
	}

	writeJSON := func(name string, doc any) string {
		blob, err := json.Marshal(doc)
		if err != nil {
			tb.Fatal(err)
		}
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, blob, 0o644); err != nil {
			tb.Fatal(err)
		}
		return path
	}
	writeBinary := func(name string, m Model) string {
		path := filepath.Join(dir, name)
		var buf bytes.Buffer
		if err := EncodeBinary(&buf, m); err != nil {
			tb.Fatal(err)
		}
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			tb.Fatal(err)
		}
		return path
	}
	tm := &TreeModel{Tree: tree, Compiled: compiled}
	cells := []loadBenchCell{
		{"tree", "json", writeJSON("tree.json", tree)},
		{"tree", "binary", writeBinary("tree.udt", tm)},
		{"forest", "json", writeJSON("forest.json", f)},
		{"forest", "binary", writeBinary("forest.udt", f)},
	}
	return cells, ds.Tuples[0]
}

// BenchmarkModelLoad measures cold model load plus the first classification
// — the restart/hot-reload path — for the JSON document (parse + compile)
// versus the binary container (mmap + validate), on a single tree and a
// 25-member forest. The binary rows are the point of the format: load time
// independent of model size up to page-fault noise.
func BenchmarkModelLoad(b *testing.B) {
	dir := b.TempDir()
	cells, probe := loadBenchFiles(b, dir, 25)
	for _, cell := range cells {
		b.Run(cell.model+"/"+cell.format, func(b *testing.B) {
			info, err := os.Stat(cell.path)
			if err != nil {
				b.Fatal(err)
			}
			b.SetBytes(info.Size())
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				m, err := Load(cell.path)
				if err != nil {
					b.Fatal(err)
				}
				if dist := m.Classify(probe); len(dist) == 0 {
					b.Fatal("empty distribution")
				}
				if err := Close(m); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// loadCellResult is one measured cell of the model-load smoke report.
type loadCellResult struct {
	Model               string `json:"model"`
	Format              string `json:"format"`
	FileBytes           int64  `json:"fileBytes"`
	LoadMicros          int64  `json:"loadMicros"`
	FirstClassifyMicros int64  `json:"firstClassifyMicros"`
}

// TestModelLoadSmoke runs the BenchmarkModelLoad comparison once as a test:
// it checks prediction parity between formats, demands the binary container
// load a 25-member forest at least 5x faster than the JSON document (the
// real margin is orders of magnitude; 5x keeps CI immune to scheduler
// noise), and writes the measured numbers as a JSON report. CI sets
// UDT_BENCH_OUT to check the report in as the repo's cold-start trajectory
// (BENCH_9.json); locally it lands in a temp dir.
func TestModelLoadSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("load smoke is not a -short test")
	}
	dir := t.TempDir()
	cells, probe := loadBenchFiles(t, dir, 25)

	const reps = 5
	results := make([]loadCellResult, len(cells))
	dists := make([][]float64, len(cells))
	for i, cell := range cells {
		info, err := os.Stat(cell.path)
		if err != nil {
			t.Fatal(err)
		}
		res := loadCellResult{Model: cell.model, Format: cell.format, FileBytes: info.Size()}
		for r := 0; r < reps; r++ {
			start := time.Now()
			m, err := Load(cell.path)
			load := time.Since(start)
			if err != nil {
				t.Fatal(err)
			}
			start = time.Now()
			dist := m.Classify(probe)
			first := time.Since(start)
			if err := Close(m); err != nil {
				t.Fatal(err)
			}
			dists[i] = dist
			if r == 0 || load.Microseconds() < res.LoadMicros {
				res.LoadMicros = load.Microseconds()
			}
			if r == 0 || first.Microseconds() < res.FirstClassifyMicros {
				res.FirstClassifyMicros = first.Microseconds()
			}
		}
		results[i] = res
	}

	// Parity: both formats of each model answer the probe byte-identically.
	for i := 0; i < len(cells); i += 2 {
		jd, bd := dists[i], dists[i+1]
		if len(jd) == 0 || len(jd) != len(bd) {
			t.Fatalf("%s: probe answers have %d vs %d classes", cells[i].model, len(jd), len(bd))
		}
		for c := range jd {
			if jd[c] != bd[c] {
				t.Fatalf("%s probe class %d: json %v, binary %v", cells[i].model, c, jd[c], bd[c])
			}
		}
	}

	// The forest rows are cells[2] (json) and cells[3] (binary).
	jsonLoad, binLoad := results[2].LoadMicros, results[3].LoadMicros
	speedup := float64(jsonLoad) / float64(max(binLoad, 1))
	if speedup < 5 {
		t.Fatalf("forest binary load %dµs is only %.1fx faster than JSON %dµs, want >= 5x",
			binLoad, speedup, jsonLoad)
	}

	outPath := os.Getenv("UDT_BENCH_OUT")
	if outPath == "" {
		outPath = filepath.Join(dir, "BENCH_9.json")
	}
	report := struct {
		SchemaVersion int              `json:"schemaVersion"`
		Benchmark     string           `json:"benchmark"`
		Trees         int              `json:"trees"`
		Results       []loadCellResult `json:"results"`
		ForestSpeedup float64          `json:"forestLoadSpeedup"`
	}{1, "model-load", 25, results, speedup}
	blob, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(outPath, append(blob, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("forest-25: json %dµs vs binary %dµs (%.1fx) → %s", jsonLoad, binLoad, speedup, outPath)
}
