// Package modelio loads serialized models — legacy single-tree documents
// and versioned forest containers — behind one interface, and decodes the
// JSON wire format for uncertain tuples. It is the shared model I/O layer of
// cmd/udtree and cmd/udtserve, which previously each carried their own
// copies of this logic.
package modelio

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"

	"udt/internal/binfmt"
	"udt/internal/core"
	"udt/internal/data"
	"udt/internal/forest"
)

// Model is a loaded classifier ready for inference: a compiled single tree
// or a compiled forest. Implementations are immutable and safe for
// concurrent use.
type Model interface {
	// Schema returns the class labels and attribute schema.
	Schema() (classes []string, num, cat []data.Attribute)
	// Classify returns the probability distribution over class labels.
	Classify(tu *data.Tuple) []float64
	// Predict returns the most probable class label index.
	Predict(tu *data.Tuple) int
	// ClassifyBatch classifies a batch with up to workers goroutines.
	ClassifyBatch(tuples []*data.Tuple, workers int) [][]float64
	// PredictBatch predicts a batch with up to workers goroutines.
	PredictBatch(tuples []*data.Tuple, workers int) []int
	// Describe renders a one-line summary for logs and health endpoints.
	Describe() string
}

// Staged is a Model that supports staged early-exit inference: members are
// evaluated in a fixed order (descending vote weight) and prediction stops
// once the argmax is mathematically settled, with byte-identical answers to
// full evaluation. *forest.Forest is the one implementation; single trees
// have nothing to stage.
type Staged interface {
	Model
	// StageCount reports the number of ensemble members.
	StageCount() int
	// PredictEarlyExit predicts one tuple, reporting how many members were
	// evaluated before the argmax was settled.
	PredictEarlyExit(tu *data.Tuple) (class, membersEvaluated int)
	// PredictBatchEarlyExit predicts a batch with up to workers goroutines;
	// preds is positionally identical to PredictBatch.
	PredictBatchEarlyExit(tuples []*data.Tuple, workers int) (preds, evaluated []int)
}

var _ Staged = (*forest.Forest)(nil)

// TreeModel is a single decision tree loaded from the legacy model.json
// format, kept in both recursive and compiled form.
type TreeModel struct {
	Tree     *core.Tree
	Compiled *core.Compiled
}

// Schema implements Model.
func (m *TreeModel) Schema() (classes []string, num, cat []data.Attribute) {
	return m.Tree.Classes, m.Tree.NumAttrs, m.Tree.CatAttrs
}

// Classify implements Model through the compiled engine.
func (m *TreeModel) Classify(tu *data.Tuple) []float64 { return m.Compiled.Classify(tu) }

// Predict implements Model through the compiled engine.
func (m *TreeModel) Predict(tu *data.Tuple) int { return m.Compiled.Predict(tu) }

// ClassifyBatch implements Model through the compiled engine.
func (m *TreeModel) ClassifyBatch(tuples []*data.Tuple, workers int) [][]float64 {
	return m.Compiled.ClassifyBatch(tuples, workers)
}

// PredictBatch implements Model through the compiled engine.
func (m *TreeModel) PredictBatch(tuples []*data.Tuple, workers int) []int {
	return m.Compiled.PredictBatch(tuples, workers)
}

// Describe implements Model.
func (m *TreeModel) Describe() string {
	return fmt.Sprintf("tree (%d nodes, depth %d)", m.Tree.Stats.Nodes, m.Tree.Stats.Depth)
}

// Stats returns the tree's build statistics.
func (m *TreeModel) Stats() core.BuildStats { return m.Tree.Stats }

// Decode parses a model document, auto-detecting the format: blobs starting
// with the binfmt magic are binary containers, JSON documents with a
// "version" or "trees" field are forest containers, everything else is a
// legacy single-tree document. The returned model is compiled and ready to
// serve; use AsForest for format-specific metadata (OOB stats, tree count).
func Decode(blob []byte) (Model, error) {
	if binfmt.Sniff(blob) {
		c, err := binfmt.DecodeBytes(blob)
		if err != nil {
			return nil, err
		}
		return wrapContainer(c), nil
	}
	var probe struct {
		Version *int            `json:"version"`
		Trees   json.RawMessage `json:"trees"`
		Root    json.RawMessage `json:"root"`
	}
	if err := json.Unmarshal(blob, &probe); err != nil {
		return nil, jsonPos(err)
	}
	if probe.Version != nil || probe.Trees != nil {
		f := new(forest.Forest)
		if err := json.Unmarshal(blob, f); err != nil {
			return nil, jsonPos(err)
		}
		return f, nil
	}
	if probe.Root == nil {
		return nil, errors.New("modelio: document is neither a tree (no root) nor a forest container (no version/trees)")
	}
	tree := new(core.Tree)
	if err := json.Unmarshal(blob, tree); err != nil {
		return nil, jsonPos(err)
	}
	compiled, err := tree.Compile()
	if err != nil {
		// Distinguish a valid document describing an invalid model from a
		// parse failure — the operator's fix differs.
		return nil, fmt.Errorf("compile: %w", err)
	}
	return &TreeModel{Tree: tree, Compiled: compiled}, nil
}

// jsonPos annotates a JSON decode failure with the byte offset at which it
// occurred, when the standard decoder knows it. An operator debugging a
// corrupt model file gets the position, not just the symptom.
func jsonPos(err error) error {
	var syn *json.SyntaxError
	if errors.As(err, &syn) {
		return fmt.Errorf("byte offset %d: %w", syn.Offset, err)
	}
	var typ *json.UnmarshalTypeError
	if errors.As(err, &typ) {
		return fmt.Errorf("byte offset %d: %w", typ.Offset, err)
	}
	return err
}

// Load reads and decodes a model file, auto-detecting the container format.
// Binary containers (recognized by their magic) are loaded through the
// mmap-backed binfmt path; everything else is read and parsed as JSON.
func Load(path string) (Model, error) {
	binary, err := sniffFile(path)
	if err != nil {
		return nil, fmt.Errorf("load %s: %w", path, err)
	}
	if binary {
		// binfmt.Load's errors already carry the path and file offset.
		return LoadBinary(path)
	}
	blob, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	m, err := Decode(blob)
	if err != nil {
		return nil, fmt.Errorf("load %s: %w", path, err)
	}
	return m, nil
}

// sniffFile reports whether the file starts with the binary container magic.
// Files shorter than the magic are not binary containers.
func sniffFile(path string) (bool, error) {
	f, err := os.Open(path)
	if err != nil {
		return false, err
	}
	defer f.Close()
	prefix := make([]byte, len(binfmt.Magic))
	n, err := io.ReadFull(f, prefix)
	if err == io.EOF || err == io.ErrUnexpectedEOF {
		return false, nil
	}
	if err != nil {
		return false, err
	}
	return binfmt.Sniff(prefix[:n]), nil
}
