package modelio

import (
	"encoding/json"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"udt/internal/core"
	"udt/internal/data"
	"udt/internal/forest"
	"udt/internal/pdf"
)

// twoClassDataset builds a small separable numeric dataset.
func twoClassDataset(n int) *data.Dataset {
	ds := data.NewDataset("demo", 2, []string{"lo", "hi"})
	rng := rand.New(rand.NewSource(17))
	for i := 0; i < n; i++ {
		c := i % 2
		base := float64(c * 10)
		p1, _ := pdf.Uniform(base-1+rng.Float64(), base+1+rng.Float64(), 7)
		ds.Add(c, p1, pdf.Point(base+rng.Float64()))
	}
	return ds
}

// TestDecodeAutoDetect: the loader must route single-tree documents to
// TreeModel and forest containers to forest.Forest, with identical
// predictions to the source models.
func TestDecodeAutoDetect(t *testing.T) {
	ds := twoClassDataset(60)
	tree, err := core.Build(ds, core.Config{MinWeight: 1})
	if err != nil {
		t.Fatal(err)
	}
	fr, err := forest.Train(ds, forest.Config{Trees: 5, Seed: 1, TreeConfig: core.Config{MinWeight: 1}})
	if err != nil {
		t.Fatal(err)
	}

	treeBlob, _ := json.Marshal(tree)
	forestBlob, _ := json.Marshal(fr)

	tm, err := Decode(treeBlob)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := tm.(*TreeModel); !ok {
		t.Fatalf("tree document decoded as %T", tm)
	}
	fm, err := Decode(forestBlob)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := fm.(*forest.Forest); !ok {
		t.Fatalf("forest container decoded as %T", fm)
	}

	for i, tu := range ds.Tuples {
		if got, want := tm.Predict(tu), tree.Predict(tu); got != want {
			t.Fatalf("tuple %d: tree model predicts %d, source %d", i, got, want)
		}
		if got, want := fm.Predict(tu), fr.Predict(tu); got != want {
			t.Fatalf("tuple %d: forest model predicts %d, source %d", i, got, want)
		}
	}

	classes, num, cat := fm.Schema()
	if len(classes) != 2 || len(num) != 2 || len(cat) != 0 {
		t.Fatalf("forest schema = (%v, %d num, %d cat)", classes, len(num), len(cat))
	}
	if tm.Describe() == "" || fm.Describe() == "" {
		t.Fatal("empty model descriptions")
	}
}

// TestDecodeErrors: junk, empty objects and broken documents must fail with
// errors, not panic or misroute.
func TestDecodeErrors(t *testing.T) {
	cases := map[string]string{
		"not json":                `{`,
		"neither tree nor forest": `{"classes": ["a"]}`,
		"forest with bad trees":   `{"version": 1, "classes": ["a", "b"], "numAttrs": [{"name": "A1"}], "trees": [{"tree": {"classes": ["a", "b"]}}]}`,
		"tree without classes":    `{"root": {"dist": [1], "w": 1}}`,
	}
	for name, doc := range cases {
		if _, err := Decode([]byte(doc)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

// TestLoad round-trips through a file and reports missing files.
func TestLoad(t *testing.T) {
	ds := twoClassDataset(40)
	tree, err := core.Build(ds, core.Config{MinWeight: 1})
	if err != nil {
		t.Fatal(err)
	}
	blob, _ := json.Marshal(tree)
	path := filepath.Join(t.TempDir(), "model.json")
	if err := os.WriteFile(path, blob, 0o644); err != nil {
		t.Fatal(err)
	}
	m, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if m.Predict(ds.Tuples[0]) != tree.Predict(ds.Tuples[0]) {
		t.Fatal("loaded model diverges from source tree")
	}
	if _, err := Load(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Fatal("missing file accepted")
	}
}

// TestDecodeTupleWire exercises the shared tuple wire decoding: every value
// style, missing values, and arity/domain errors.
func TestDecodeTupleWire(t *testing.T) {
	numAttrs := []data.Attribute{{Name: "x", Kind: data.Numeric}, {Name: "y", Kind: data.Numeric}}
	catAttrs := []data.Attribute{{Name: "c", Kind: data.Categorical, Domain: []string{"p", "q"}}}
	raw := func(s string) json.RawMessage { return json.RawMessage(s) }

	tu, err := DecodeTuple(
		[]json.RawMessage{raw(`1.5`), raw(`{"xs": [1, 2], "masses": [1, 3]}`)},
		[]json.RawMessage{raw(`"q"`)},
		numAttrs, catAttrs)
	if err != nil {
		t.Fatal(err)
	}
	if tu.Num[0].Mean() != 1.5 {
		t.Fatalf("point value mean %v", tu.Num[0].Mean())
	}
	if got := tu.Num[1].Mean(); got != 1.75 {
		t.Fatalf("pdf mean %v, want 1.75", got)
	}
	if tu.Cat[0][1] != 1 {
		t.Fatalf("categorical point %v", tu.Cat[0])
	}

	// Missing values and raw-sample arrays.
	tu, err = DecodeTuple(
		[]json.RawMessage{raw(`null`), raw(`[2, 4]`)},
		[]json.RawMessage{raw(`[1, 1]`)},
		numAttrs, catAttrs)
	if err != nil {
		t.Fatal(err)
	}
	if tu.Num[0] != nil {
		t.Fatal("null numeric not treated as missing")
	}
	if tu.Num[1].Mean() != 3 {
		t.Fatalf("raw-sample mean %v, want 3", tu.Num[1].Mean())
	}
	if tu.Cat[0][0] != 0.5 || tu.Cat[0][1] != 0.5 {
		t.Fatalf("mass array not normalised: %v", tu.Cat[0])
	}

	bad := []struct {
		name     string
		num, cat []json.RawMessage
	}{
		{"numeric arity", []json.RawMessage{raw(`1`)}, []json.RawMessage{raw(`"p"`)}},
		{"categorical arity", []json.RawMessage{raw(`1`), raw(`2`)}, nil},
		{"unknown domain value", []json.RawMessage{raw(`1`), raw(`2`)}, []json.RawMessage{raw(`"zzz"`)}},
		{"mass arity", []json.RawMessage{raw(`1`), raw(`2`)}, []json.RawMessage{raw(`[1, 1, 1]`)}},
		{"bad pdf object", []json.RawMessage{raw(`{"xs": [1], "masses": []}`), raw(`2`)}, []json.RawMessage{raw(`"p"`)}},
		{"non-number", []json.RawMessage{raw(`"abc"`), raw(`2`)}, []json.RawMessage{raw(`"p"`)}},
	}
	for _, tc := range bad {
		if _, err := DecodeTuple(tc.num, tc.cat, numAttrs, catAttrs); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
}
