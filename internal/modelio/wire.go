package modelio

import (
	"bytes"
	"encoding/json"
	"fmt"

	"udt/internal/data"
	"udt/internal/par"
	"udt/internal/pdf"
)

// The JSON wire format for uncertain tuples, shared by every consumer of a
// loaded model. A tuple is {"num": [...], "cat": [...]} with one entry per
// model attribute, in model order. Numeric entries are a number (a point
// value), an array of numbers (raw repeated measurements, equal mass), an
// object {"xs": [...], "masses": [...]} (an explicit sampled pdf), or null
// (missing). Categorical entries are a domain value string, an array of
// per-value masses, or null (missing).

// WireTuple is the JSON document for one uncertain tuple — the body of a
// single /classify request, one element of a batch, and one line of the
// NDJSON stream endpoint.
type WireTuple struct {
	Num []json.RawMessage `json:"num"`
	Cat []json.RawMessage `json:"cat"`
}

// StreamResult is one line of the NDJSON classification stream protocol,
// shared by udtserve's POST /classify/stream responses and udtree's
// "predict -format ndjson" output so the two surfaces stay byte-compatible:
// the 1-based input line number plus either a classification or an in-band
// error.
type StreamResult struct {
	Line  int                `json:"line"`
	Class string             `json:"class,omitempty"`
	Dist  map[string]float64 `json:"dist,omitempty"`
	// MembersEvaluated counts the ensemble members evaluated before the
	// argmax settled; only early-exit prediction emits it (and no dist, since
	// early exit stops before the full distribution exists).
	MembersEvaluated int    `json:"membersEvaluated,omitempty"`
	Error            string `json:"error,omitempty"`
}

// NewStreamResult labels a classification distribution with its class names:
// the predicted class is par.Argmax (lowest index winning ties, the model
// convention) and the dist map carries one probability per class label.
func NewStreamResult(line int, classes []string, dist []float64) StreamResult {
	m := make(map[string]float64, len(dist))
	for c, p := range dist {
		m[classes[c]] = p
	}
	return StreamResult{Line: line, Class: classes[par.Argmax(dist)], Dist: m}
}

// NewStagedResult labels an early-exit prediction: the settled class plus the
// number of members evaluated, with no distribution (early exit stops before
// the full distribution exists).
func NewStagedResult(line int, classes []string, class, membersEvaluated int) StreamResult {
	return StreamResult{Line: line, Class: classes[class], MembersEvaluated: membersEvaluated}
}

// Decode converts the wire tuple into an uncertain tuple matching the given
// attribute schema.
func (wt WireTuple) Decode(numAttrs, catAttrs []data.Attribute) (*data.Tuple, error) {
	return DecodeTuple(wt.Num, wt.Cat, numAttrs, catAttrs)
}

// DecodeTuple converts the wire representation into an uncertain tuple
// matching the given attribute schema.
func DecodeTuple(num, cat []json.RawMessage, numAttrs, catAttrs []data.Attribute) (*data.Tuple, error) {
	if len(num) != len(numAttrs) {
		return nil, fmt.Errorf("%d numeric values, model has %d numeric attributes", len(num), len(numAttrs))
	}
	if len(cat) != len(catAttrs) {
		return nil, fmt.Errorf("%d categorical values, model has %d categorical attributes", len(cat), len(catAttrs))
	}
	tu := &data.Tuple{Weight: 1}
	for j, raw := range num {
		p, err := DecodeNum(raw)
		if err != nil {
			return nil, fmt.Errorf("numeric attribute %q: %w", numAttrs[j].Name, err)
		}
		tu.Num = append(tu.Num, p)
	}
	for j, raw := range cat {
		d, err := DecodeCat(raw, catAttrs[j].Domain)
		if err != nil {
			return nil, fmt.Errorf("categorical attribute %q: %w", catAttrs[j].Name, err)
		}
		tu.Cat = append(tu.Cat, d)
	}
	return tu, nil
}

// DecodeNum parses one numeric attribute value: null (missing), a number (a
// point), an array of raw measurements, or {"xs", "masses"}.
func DecodeNum(raw json.RawMessage) (*pdf.PDF, error) {
	if isNull(raw) {
		return nil, nil
	}
	switch firstByte(raw) {
	case '{':
		var obj struct {
			Xs     []float64 `json:"xs"`
			Masses []float64 `json:"masses"`
		}
		dec := json.NewDecoder(bytes.NewReader(raw))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&obj); err != nil {
			return nil, err
		}
		return pdf.New(obj.Xs, obj.Masses)
	case '[':
		var obs []float64
		if err := json.Unmarshal(raw, &obs); err != nil {
			return nil, err
		}
		return pdf.FromSamples(obs)
	default:
		var v float64
		if err := json.Unmarshal(raw, &v); err != nil {
			return nil, err
		}
		return pdf.Point(v), nil
	}
}

// DecodeCat parses one categorical attribute value: null (missing), a
// domain value string, or an array of per-value masses.
func DecodeCat(raw json.RawMessage, domain []string) (data.CatDist, error) {
	if isNull(raw) {
		return nil, nil
	}
	if firstByte(raw) == '[' {
		var masses []float64
		if err := json.Unmarshal(raw, &masses); err != nil {
			return nil, err
		}
		if len(masses) != len(domain) {
			return nil, fmt.Errorf("%d masses, domain has %d values", len(masses), len(domain))
		}
		d := data.CatDist(masses)
		if err := d.Normalize(); err != nil {
			return nil, err
		}
		return d, nil
	}
	var v string
	if err := json.Unmarshal(raw, &v); err != nil {
		return nil, err
	}
	for i, name := range domain {
		if name == v {
			return data.NewCatPoint(i, len(domain)), nil
		}
	}
	return nil, fmt.Errorf("value %q not in domain %v", v, domain)
}

func isNull(raw json.RawMessage) bool {
	return len(raw) == 0 || string(raw) == "null"
}

func firstByte(raw json.RawMessage) byte {
	for _, b := range raw {
		switch b {
		case ' ', '\t', '\n', '\r':
			continue
		}
		return b
	}
	return 0
}
