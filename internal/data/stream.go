package data

import (
	"encoding/csv"
	"errors"
	"fmt"
	"io"
	"math/rand"

	"udt/internal/pdf"
)

// This file is the streaming half of the data layer: a RowSource yields one
// parsed tuple at a time, so consumers decide how much of a dataset is ever
// resident — everything (Collect), fixed-size windows (CollectChunked), or a
// bounded uniform sample (Reservoir). ReadCSV is a thin Collect over a
// CSVSource, so the materialised and streamed paths cannot drift apart.

// RowSource is a streaming iterator over uncertain tuples. The attribute
// schema is fixed when the source is constructed (for CSV, discovered from
// the header); the class vocabulary accumulates incrementally as rows are
// parsed, so Classes grows between Next calls and a tuple's Class index
// always refers to the vocabulary as of the call that produced it.
//
// A RowSource is single-consumer: Next must not be called concurrently.
type RowSource interface {
	// Name identifies the stream (for CSV sources, the name given at
	// construction, conventionally the file path).
	Name() string
	// NumAttrs returns the numeric attribute schema.
	NumAttrs() []Attribute
	// CatAttrs returns the categorical attribute schema.
	CatAttrs() []Attribute
	// Classes returns the class vocabulary seen so far. The returned slice
	// must not be mutated; it may grow on subsequent Next calls.
	Classes() []string
	// Next returns the next tuple, or io.EOF when the stream is exhausted.
	// After a non-EOF error the stream is broken and must not be reused.
	Next() (*Tuple, error)
}

// CSVSource streams tuples from the CSV interchange format (see csv.go for
// the cell syntax). The header is consumed at construction.
type CSVSource struct {
	name     string
	cr       *csv.Reader
	attrs    []Attribute
	classes  []string
	classIdx map[string]int
	line     int // last line consumed; the header is line 1
}

// NewCSVSource reads the header and returns a source streaming the remaining
// rows. The final header column is the class label; every other column is a
// numeric attribute.
func NewCSVSource(r io.Reader, name string) (*CSVSource, error) {
	cr := csv.NewReader(r)
	cr.TrimLeadingSpace = true
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("data: reading CSV header: %w", err)
	}
	if len(header) < 2 {
		return nil, fmt.Errorf("data: CSV needs at least one attribute and a class column, got %d columns", len(header))
	}
	attrs := make([]Attribute, len(header)-1)
	for j, a := range header[:len(header)-1] {
		attrs[j] = Attribute{Name: a, Kind: Numeric}
	}
	return &CSVSource{
		name:     name,
		cr:       cr,
		attrs:    attrs,
		classIdx: map[string]int{},
		line:     1,
	}, nil
}

// Name implements RowSource.
func (s *CSVSource) Name() string { return s.name }

// NumAttrs implements RowSource.
func (s *CSVSource) NumAttrs() []Attribute { return s.attrs }

// CatAttrs implements RowSource; the CSV format carries no categorical
// attributes.
func (s *CSVSource) CatAttrs() []Attribute { return nil }

// Classes implements RowSource: the labels seen so far, in first-appearance
// order.
func (s *CSVSource) Classes() []string { return s.classes }

// Next parses one row into a whole-weight tuple.
func (s *CSVSource) Next() (*Tuple, error) {
	s.line++
	rec, err := s.cr.Read()
	if err == io.EOF {
		return nil, io.EOF
	}
	if err != nil {
		return nil, fmt.Errorf("data: reading CSV line %d: %w", s.line, err)
	}
	if len(rec) != len(s.attrs)+1 {
		return nil, fmt.Errorf("data: CSV line %d has %d fields, want %d", s.line, len(rec), len(s.attrs)+1)
	}
	num := make([]*pdf.PDF, len(s.attrs))
	for j := range s.attrs {
		p, err := parseCell(rec[j])
		if err != nil {
			return nil, fmt.Errorf("data: CSV line %d column %q: %w", s.line, s.attrs[j].Name, err)
		}
		num[j] = p
	}
	label := rec[len(rec)-1]
	ci, ok := s.classIdx[label]
	if !ok {
		ci = len(s.classes)
		s.classIdx[label] = ci
		s.classes = append(s.classes, label)
	}
	return &Tuple{Num: num, Class: ci, Weight: 1}, nil
}

// schemaOf snapshots a source's schema into an empty dataset.
func schemaOf(src RowSource) *Dataset {
	return &Dataset{
		Name:     src.Name(),
		NumAttrs: src.NumAttrs(),
		CatAttrs: src.CatAttrs(),
	}
}

// Collect drains the source into a materialised, validated dataset —
// the streaming equivalent of ReadCSV (which is implemented on top of it).
func Collect(src RowSource) (*Dataset, error) {
	ds := schemaOf(src)
	for {
		tu, err := src.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		ds.Tuples = append(ds.Tuples, tu)
	}
	ds.Classes = src.Classes()
	return ds, ds.Validate()
}

// CollectChunked drains the source in windows of at most chunkSize tuples,
// invoking fn once per window, so at most one chunk of tuples is resident at
// a time. Every chunk shares the source's schema; Classes is the vocabulary
// seen so far and may grow between invocations (a tuple's Class index is
// always valid for its chunk's Classes). Chunks are not validated — the
// per-row parser has already rejected malformed cells. fn may retain the
// chunk; a fresh tuple slice is allocated per window.
func CollectChunked(src RowSource, chunkSize int, fn func(chunk *Dataset) error) error {
	if chunkSize < 1 {
		return fmt.Errorf("data: chunk size must be >= 1 (got %d)", chunkSize)
	}
	tuples := make([]*Tuple, 0, chunkSize)
	flush := func() error {
		if len(tuples) == 0 {
			return nil
		}
		chunk := schemaOf(src)
		chunk.Classes = src.Classes()
		chunk.Tuples = tuples
		tuples = make([]*Tuple, 0, chunkSize)
		return fn(chunk)
	}
	for {
		tu, err := src.Next()
		if err == io.EOF {
			return flush()
		}
		if err != nil {
			return err
		}
		tuples = append(tuples, tu)
		if len(tuples) == chunkSize {
			if err := flush(); err != nil {
				return err
			}
		}
	}
}

// Reservoir drains the source keeping a uniform random sample of at most n
// tuples (Vitter's algorithm R), so training can cap resident tuples on
// files far larger than memory. The sample is deterministic for a fixed
// seed. The returned dataset's Classes holds every label the stream carried,
// including labels whose tuples were evicted from the sample, so a model
// trained on the sample can still name them. When the stream has at most n
// tuples the result equals Collect, in stream order.
func Reservoir(src RowSource, n int, seed int64) (*Dataset, error) {
	if n < 1 {
		return nil, fmt.Errorf("data: reservoir size must be >= 1 (got %d)", n)
	}
	rng := rand.New(rand.NewSource(seed))
	ds := schemaOf(src)
	seen := 0
	for {
		tu, err := src.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		seen++
		if len(ds.Tuples) < n {
			ds.Tuples = append(ds.Tuples, tu)
			continue
		}
		if j := rng.Intn(seen); j < n {
			ds.Tuples[j] = tu
		}
	}
	if seen == 0 {
		return nil, errors.New("data: reservoir over an empty stream")
	}
	ds.Classes = src.Classes()
	return ds, ds.Validate()
}
