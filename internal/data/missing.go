package data

import (
	"fmt"

	"udt/internal/pdf"
)

// FillMissing implements the missing-value technique sketched in §2 of the
// paper: for each numeric attribute, the pdfs of the tuples where the
// value is present are averaged (weighted by tuple weight) into a "guess"
// distribution, which is then substituted for every missing value. The
// returned dataset has fresh tuples; the input is not modified. Attributes
// with no observed values at all are left missing.
func FillMissing(ds *Dataset) (*Dataset, error) {
	if err := ds.Validate(); err != nil {
		return nil, err
	}
	guesses := make([]*pdf.PDF, len(ds.NumAttrs))
	for j := range ds.NumAttrs {
		var comps []*pdf.PDF
		var weights []float64
		for _, t := range ds.Tuples {
			if p := t.Num[j]; p != nil {
				comps = append(comps, p)
				weights = append(weights, t.Weight)
			}
		}
		if len(comps) == 0 {
			continue
		}
		g, err := pdf.Mix(comps, weights)
		if err != nil {
			return nil, fmt.Errorf("data: averaging attribute %q: %w", ds.NumAttrs[j].Name, err)
		}
		guesses[j] = g
	}
	ts := make([]*Tuple, len(ds.Tuples))
	for i, t := range ds.Tuples {
		c := t.CloneShallow()
		for j, p := range c.Num {
			if p == nil {
				c.Num[j] = guesses[j]
			}
		}
		ts[i] = c
	}
	return ds.withTuples(ts), nil
}

// MissingCounts returns, per numeric attribute, how many tuples are
// missing a value.
func MissingCounts(ds *Dataset) []int {
	counts := make([]int, len(ds.NumAttrs))
	for _, t := range ds.Tuples {
		for j, p := range t.Num {
			if p == nil {
				counts[j]++
			}
		}
	}
	return counts
}
