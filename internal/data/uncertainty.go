package data

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"udt/internal/pdf"
)

// ErrorModel selects the synthetic pdf shape used when injecting uncertainty
// onto point data (§4.3): Gaussian for random measurement noise, uniform for
// quantisation noise.
type ErrorModel int

// Error models from §4.3.
const (
	GaussianModel ErrorModel = iota
	UniformModel
)

func (m ErrorModel) String() string {
	switch m {
	case GaussianModel:
		return "Gaussian"
	case UniformModel:
		return "uniform"
	default:
		return fmt.Sprintf("ErrorModel(%d)", int(m))
	}
}

// Points is a point-valued dataset: the raw UCI-style matrix before
// uncertainty is injected. Rows are tuples, columns numeric attributes.
type Points struct {
	Name    string
	Attrs   []string
	Classes []string
	Rows    [][]float64
	Labels  []int
	Integer []bool // attribute has an integral domain (PenDigits et al.)
}

// Validate checks matrix consistency.
func (p *Points) Validate() error {
	if len(p.Rows) != len(p.Labels) {
		return fmt.Errorf("data: %d rows but %d labels", len(p.Rows), len(p.Labels))
	}
	for i, r := range p.Rows {
		if len(r) != len(p.Attrs) {
			return fmt.Errorf("data: row %d has %d values, schema has %d", i, len(r), len(p.Attrs))
		}
		if p.Labels[i] < 0 || p.Labels[i] >= len(p.Classes) {
			return fmt.Errorf("data: row %d label %d out of range", i, p.Labels[i])
		}
	}
	return nil
}

// Ranges returns per-attribute value ranges |A_j| over the whole matrix.
func (p *Points) Ranges() []float64 {
	rs := make([]float64, len(p.Attrs))
	for j := range p.Attrs {
		lo, hi := math.Inf(1), math.Inf(-1)
		for _, r := range p.Rows {
			if r[j] < lo {
				lo = r[j]
			}
			if r[j] > hi {
				hi = r[j]
			}
		}
		if len(p.Rows) > 0 {
			rs[j] = hi - lo
		}
	}
	return rs
}

// Perturb returns a copy of the matrix with controlled Gaussian noise added
// per §4.4: each value v becomes v + N(0, sigma²) with
// sigma = u*|A_j|/4. u=0 returns an unmodified copy.
func (p *Points) Perturb(u float64, rng *rand.Rand) *Points {
	ranges := p.Ranges()
	out := &Points{Name: p.Name, Attrs: p.Attrs, Classes: p.Classes, Labels: p.Labels, Integer: p.Integer}
	out.Rows = make([][]float64, len(p.Rows))
	for i, r := range p.Rows {
		row := make([]float64, len(r))
		copy(row, r)
		if u > 0 {
			for j := range row {
				row[j] += rng.NormFloat64() * u * ranges[j] / 4
			}
		}
		out.Rows[i] = row
	}
	return out
}

// InjectConfig controls uncertainty injection per §4.3.
type InjectConfig struct {
	W       float64    // pdf domain width as a fraction of |A_j|
	S       int        // sample points per pdf
	Model   ErrorModel // Gaussian (sigma = width/4) or uniform
	PerAttr []ErrorModel
}

// modelFor returns the error model for attribute j.
func (c InjectConfig) modelFor(j int) ErrorModel {
	if j < len(c.PerAttr) {
		return c.PerAttr[j]
	}
	return c.Model
}

// Inject converts point data into an uncertain dataset following §4.3: each
// value v_{i,j} becomes the mean of a pdf over [v - w|A_j|/2, v + w|A_j|/2]
// with s sample points. With W == 0 or S <= 1 values become point pdfs,
// which makes AVG and UDT coincide (the paper's w=0 data points in Fig 4).
func Inject(p *Points, cfg InjectConfig) (*Dataset, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if cfg.W < 0 {
		return nil, errors.New("data: negative uncertainty width")
	}
	if cfg.S < 0 {
		return nil, errors.New("data: negative sample count")
	}
	ds := NewDataset(p.Name, len(p.Attrs), p.Classes)
	for j, name := range p.Attrs {
		ds.NumAttrs[j].Name = name
	}
	ranges := p.Ranges()
	for i, row := range p.Rows {
		num := make([]*pdf.PDF, len(row))
		for j, v := range row {
			width := cfg.W * ranges[j]
			if width <= 0 || cfg.S <= 1 {
				num[j] = pdf.Point(v)
				continue
			}
			a, b := v-width/2, v+width/2
			var (
				q   *pdf.PDF
				err error
			)
			if cfg.modelFor(j) == UniformModel {
				q, err = pdf.Uniform(a, b, cfg.S)
			} else {
				q, err = pdf.Gaussian(v, width/4, a, b, cfg.S)
			}
			if err != nil {
				return nil, fmt.Errorf("data: inject row %d attr %d: %w", i, j, err)
			}
			num[j] = q
		}
		ds.Add(p.Labels[i], num...)
	}
	return ds, nil
}

// FromRawSamples builds an uncertain dataset where each attribute value is
// given by raw repeated measurements (the JapaneseVowel path of §4.3: 7-29
// samples per value modelled directly as the pdf).
func FromRawSamples(name string, attrs []string, classes []string, rows [][][]float64, labels []int) (*Dataset, error) {
	if len(rows) != len(labels) {
		return nil, fmt.Errorf("data: %d rows but %d labels", len(rows), len(labels))
	}
	ds := NewDataset(name, len(attrs), classes)
	for j, a := range attrs {
		ds.NumAttrs[j].Name = a
	}
	for i, row := range rows {
		if len(row) != len(attrs) {
			return nil, fmt.Errorf("data: row %d has %d attributes, schema has %d", i, len(row), len(attrs))
		}
		num := make([]*pdf.PDF, len(row))
		for j, obs := range row {
			q, err := pdf.FromSamples(obs)
			if err != nil {
				return nil, fmt.Errorf("data: row %d attr %d: %w", i, j, err)
			}
			num[j] = q
		}
		if labels[i] < 0 || labels[i] >= len(classes) {
			return nil, fmt.Errorf("data: row %d label %d out of range", i, labels[i])
		}
		ds.Add(labels[i], num...)
	}
	return ds, nil
}
