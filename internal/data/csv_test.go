package data

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"udt/internal/pdf"
)

func TestReadCSVPointsAndPDFs(t *testing.T) {
	in := `x,y,class
1.5,2@0.5;4@0.5,pos
-1,1;2;3,neg
`
	ds, err := ReadCSV(strings.NewReader(in), "t")
	if err != nil {
		t.Fatal(err)
	}
	if ds.Len() != 2 || len(ds.Classes) != 2 {
		t.Fatalf("parsed %d tuples %d classes", ds.Len(), len(ds.Classes))
	}
	if ds.Tuples[0].Num[0].Mean() != 1.5 {
		t.Fatal("point cell wrong")
	}
	if m := ds.Tuples[0].Num[1].Mean(); math.Abs(m-3) > 1e-12 {
		t.Fatalf("weighted pdf cell mean = %v, want 3", m)
	}
	if m := ds.Tuples[1].Num[1].Mean(); math.Abs(m-2) > 1e-12 {
		t.Fatalf("equal-mass pdf cell mean = %v, want 2", m)
	}
	if ds.Classes[0] != "pos" || ds.Classes[1] != "neg" {
		t.Fatalf("classes = %v", ds.Classes)
	}
}

func TestReadCSVErrors(t *testing.T) {
	cases := []string{
		"onlyclass\n1\n",          // too few columns
		"x,class\nnotanumber,a\n", // bad float
		"x,class\n1@z,a\n",        // bad mass
		"x,class\nz@1,a\n",        // bad location
		"x,class\n,a\n",           // empty cell
		"x,class\n1@0;2@0,a\n",    // zero total mass
	}
	for i, c := range cases {
		if _, err := ReadCSV(strings.NewReader(c), "t"); err == nil {
			t.Errorf("case %d: no error", i)
		}
	}
}

func TestCSVRoundTrip(t *testing.T) {
	ds := NewDataset("rt", 2, []string{"a", "b"})
	ds.Add(0, pdf.Point(3.25), pdf.MustNew([]float64{1, 2}, []float64{1, 3}))
	ds.Add(1, pdf.Point(-1), pdf.MustNew([]float64{0, 5, 9}, []float64{1, 1, 2}))
	var buf bytes.Buffer
	if err := WriteCSV(&buf, ds); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(&buf, "rt")
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != ds.Len() {
		t.Fatalf("round trip lost tuples: %d vs %d", back.Len(), ds.Len())
	}
	for i := range ds.Tuples {
		for j := range ds.Tuples[i].Num {
			if !ds.Tuples[i].Num[j].Equal(back.Tuples[i].Num[j], 1e-9) {
				t.Fatalf("tuple %d attr %d pdf changed in round trip", i, j)
			}
		}
		if ds.Tuples[i].Class != back.Tuples[i].Class {
			t.Fatalf("tuple %d class changed", i)
		}
	}
}

func TestWriteCSVRejectsCategorical(t *testing.T) {
	ds := NewDataset("c", 1, []string{"A"})
	ds.CatAttrs = []Attribute{{Name: "color", Kind: Categorical, Domain: []string{"r", "g"}}}
	var buf bytes.Buffer
	if err := WriteCSV(&buf, ds); err == nil {
		t.Fatal("categorical datasets should be rejected by the CSV writer")
	}
}
