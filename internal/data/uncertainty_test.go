package data

import (
	"math"
	"math/rand"
	"testing"
)

func toyPoints() *Points {
	return &Points{
		Name:    "toy",
		Attrs:   []string{"x", "y"},
		Classes: []string{"A", "B"},
		Rows: [][]float64{
			{0, 10}, {1, 20}, {2, 30}, {3, 40},
		},
		Labels: []int{0, 0, 1, 1},
	}
}

func TestPointsValidate(t *testing.T) {
	p := toyPoints()
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	p.Labels = p.Labels[:3]
	if err := p.Validate(); err == nil {
		t.Error("label count mismatch not caught")
	}
	q := toyPoints()
	q.Rows[0] = []float64{1}
	if err := q.Validate(); err == nil {
		t.Error("row arity mismatch not caught")
	}
	r := toyPoints()
	r.Labels[0] = 7
	if err := r.Validate(); err == nil {
		t.Error("label out of range not caught")
	}
}

func TestRanges(t *testing.T) {
	p := toyPoints()
	rs := p.Ranges()
	if rs[0] != 3 || rs[1] != 30 {
		t.Fatalf("Ranges = %v, want [3 30]", rs)
	}
}

func TestPerturbZeroIsCopy(t *testing.T) {
	p := toyPoints()
	q := p.Perturb(0, rand.New(rand.NewSource(1)))
	for i := range p.Rows {
		for j := range p.Rows[i] {
			if q.Rows[i][j] != p.Rows[i][j] {
				t.Fatal("u=0 perturbation changed values")
			}
		}
	}
	q.Rows[0][0] = 99
	if p.Rows[0][0] == 99 {
		t.Fatal("Perturb must deep-copy rows")
	}
}

func TestPerturbScalesWithU(t *testing.T) {
	p := toyPoints()
	rng := rand.New(rand.NewSource(5))
	// Average displacement over many trials should scale with u*range/4.
	const trials = 300
	sum := 0.0
	for k := 0; k < trials; k++ {
		q := p.Perturb(0.2, rng)
		sum += math.Abs(q.Rows[0][1] - p.Rows[0][1])
	}
	mean := sum / trials
	sigma := 0.2 * 30 / 4 // u * |A_y| / 4
	want := sigma * math.Sqrt(2/math.Pi)
	if mean < want*0.7 || mean > want*1.3 {
		t.Fatalf("mean |noise| = %v, want about %v", mean, want)
	}
}

func TestInjectGaussian(t *testing.T) {
	ds, err := Inject(toyPoints(), InjectConfig{W: 0.1, S: 20, Model: GaussianModel})
	if err != nil {
		t.Fatal(err)
	}
	if err := ds.Validate(); err != nil {
		t.Fatal(err)
	}
	ranges := toyPoints().Ranges()
	for i, tu := range ds.Tuples {
		for j, q := range tu.Num {
			v := toyPoints().Rows[i][j]
			width := 0.1 * ranges[j]
			if math.Abs(q.Mean()-v) > width/4 {
				t.Fatalf("pdf mean %v far from source value %v", q.Mean(), v)
			}
			if q.Min() < v-width/2-1e-9 || q.Max() > v+width/2+1e-9 {
				t.Fatalf("pdf domain [%v,%v] exceeds ±width/2 around %v", q.Min(), q.Max(), v)
			}
		}
	}
}

func TestInjectUniformWidthAndShape(t *testing.T) {
	ds, err := Inject(toyPoints(), InjectConfig{W: 0.2, S: 10, Model: UniformModel})
	if err != nil {
		t.Fatal(err)
	}
	tu := ds.Tuples[0]
	q := tu.Num[1]
	if q.NumSamples() != 10 {
		t.Fatalf("s = %d, want 10", q.NumSamples())
	}
	for i := 0; i < q.NumSamples(); i++ {
		if math.Abs(q.Mass(i)-0.1) > 1e-9 {
			t.Fatalf("uniform mass %v", q.Mass(i))
		}
	}
	if math.Abs((q.Max()-q.Min())-0.2*30) > 1e-9 {
		t.Fatalf("width = %v, want %v", q.Max()-q.Min(), 0.2*30)
	}
}

func TestInjectZeroWidthGivesPoints(t *testing.T) {
	ds, err := Inject(toyPoints(), InjectConfig{W: 0, S: 100})
	if err != nil {
		t.Fatal(err)
	}
	for _, tu := range ds.Tuples {
		for _, q := range tu.Num {
			if q.NumSamples() != 1 {
				t.Fatal("w=0 should give point pdfs")
			}
		}
	}
}

func TestInjectPerAttrModels(t *testing.T) {
	cfg := InjectConfig{W: 0.5, S: 9, Model: GaussianModel, PerAttr: []ErrorModel{UniformModel}}
	ds, err := Inject(toyPoints(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	q := ds.Tuples[0].Num[0] // uniform: equal masses
	for i := 0; i < q.NumSamples(); i++ {
		if math.Abs(q.Mass(i)-1.0/float64(q.NumSamples())) > 1e-9 {
			t.Fatal("attr 0 should be uniform")
		}
	}
	g := ds.Tuples[0].Num[1] // Gaussian: centre mass exceeds edge mass
	if g.Mass(g.NumSamples()/2) <= g.Mass(0) {
		t.Fatal("attr 1 should be Gaussian-shaped")
	}
}

func TestInjectErrors(t *testing.T) {
	if _, err := Inject(toyPoints(), InjectConfig{W: -1, S: 10}); err == nil {
		t.Error("negative width not caught")
	}
	if _, err := Inject(toyPoints(), InjectConfig{W: 0.1, S: -2}); err == nil {
		t.Error("negative s not caught")
	}
	bad := toyPoints()
	bad.Labels[0] = 9
	if _, err := Inject(bad, InjectConfig{W: 0.1, S: 10}); err == nil {
		t.Error("invalid points not caught")
	}
}

func TestFromRawSamples(t *testing.T) {
	rows := [][][]float64{
		{{1, 2, 3}, {10, 10, 11}},
		{{5, 6}, {20}},
	}
	ds, err := FromRawSamples("raw", []string{"a", "b"}, []string{"X", "Y"}, rows, []int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if ds.Len() != 2 {
		t.Fatalf("Len = %d", ds.Len())
	}
	if ds.Tuples[0].Num[0].NumSamples() != 3 {
		t.Fatal("raw samples not preserved")
	}
	if math.Abs(ds.Tuples[0].Num[0].Mean()-2) > 1e-12 {
		t.Fatal("raw sample mean wrong")
	}
}

func TestFromRawSamplesErrors(t *testing.T) {
	if _, err := FromRawSamples("x", []string{"a"}, []string{"X"}, [][][]float64{{{1}}}, []int{0, 1}); err == nil {
		t.Error("row/label mismatch not caught")
	}
	if _, err := FromRawSamples("x", []string{"a", "b"}, []string{"X"}, [][][]float64{{{1}}}, []int{0}); err == nil {
		t.Error("arity mismatch not caught")
	}
	if _, err := FromRawSamples("x", []string{"a"}, []string{"X"}, [][][]float64{{{}}}, []int{0}); err == nil {
		t.Error("empty observations not caught")
	}
	if _, err := FromRawSamples("x", []string{"a"}, []string{"X"}, [][][]float64{{{1}}}, []int{5}); err == nil {
		t.Error("label out of range not caught")
	}
}

func TestErrorModelString(t *testing.T) {
	if GaussianModel.String() != "Gaussian" || UniformModel.String() != "uniform" {
		t.Fatal("ErrorModel.String broken")
	}
	if ErrorModel(9).String() == "" {
		t.Fatal("unknown model should still print")
	}
}
