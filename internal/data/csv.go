package data

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"strings"

	"udt/internal/pdf"
)

// The CSV interchange format: one header row naming the attributes with the
// final column being the class label, then one row per tuple. A numeric cell
// is either a plain float ("3.14", a point value) or a sampled pdf written
// as semicolon-separated x@mass pairs ("1@0.625;2@0.125;10@0.25"); masses
// may be omitted ("1;2;10") for equal-mass raw samples.

// ReadCSV parses a dataset from the interchange format, materialising every
// tuple. It is a thin Collect over NewCSVSource; callers that cannot afford
// a resident copy of the whole file should use the RowSource directly (see
// stream.go: CollectChunked, Reservoir).
func ReadCSV(r io.Reader, name string) (*Dataset, error) {
	src, err := NewCSVSource(r, name)
	if err != nil {
		return nil, err
	}
	return Collect(src)
}

// parseCell parses one numeric cell of the interchange format.
func parseCell(cell string) (*pdf.PDF, error) {
	cell = strings.TrimSpace(cell)
	if cell == "" {
		return nil, fmt.Errorf("empty cell")
	}
	if !strings.ContainsAny(cell, ";@") {
		v, err := strconv.ParseFloat(cell, 64)
		if err != nil {
			return nil, err
		}
		return pdf.Point(v), nil
	}
	parts := strings.Split(cell, ";")
	xs := make([]float64, 0, len(parts))
	ms := make([]float64, 0, len(parts))
	for _, part := range parts {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		x, m := part, "1"
		if at := strings.IndexByte(part, '@'); at >= 0 {
			x, m = part[:at], part[at+1:]
		}
		xv, err := strconv.ParseFloat(x, 64)
		if err != nil {
			return nil, fmt.Errorf("bad sample location %q: %w", x, err)
		}
		mv, err := strconv.ParseFloat(m, 64)
		if err != nil {
			return nil, fmt.Errorf("bad sample mass %q: %w", m, err)
		}
		xs = append(xs, xv)
		ms = append(ms, mv)
	}
	return pdf.New(xs, ms)
}

// WriteCSV writes a dataset in the interchange format.
func WriteCSV(w io.Writer, ds *Dataset) error {
	if len(ds.CatAttrs) > 0 {
		return fmt.Errorf("data: CSV format does not carry categorical attributes")
	}
	cw := csv.NewWriter(w)
	header := make([]string, 0, len(ds.NumAttrs)+1)
	for _, a := range ds.NumAttrs {
		header = append(header, a.Name)
	}
	header = append(header, "class")
	if err := cw.Write(header); err != nil {
		return err
	}
	rec := make([]string, len(header))
	for _, t := range ds.Tuples {
		for j, p := range t.Num {
			rec[j] = formatCell(p)
		}
		rec[len(rec)-1] = ds.Classes[t.Class]
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// formatCell renders a pdf in the interchange cell syntax.
func formatCell(p *pdf.PDF) string {
	if p == nil {
		return ""
	}
	if p.NumSamples() == 1 {
		return strconv.FormatFloat(p.X(0), 'g', -1, 64)
	}
	var b strings.Builder
	for i := 0; i < p.NumSamples(); i++ {
		if i > 0 {
			b.WriteByte(';')
		}
		b.WriteString(strconv.FormatFloat(p.X(i), 'g', -1, 64))
		b.WriteByte('@')
		b.WriteString(strconv.FormatFloat(p.Mass(i), 'g', -1, 64))
	}
	return b.String()
}
