package data

import (
	"math"
	"math/rand"
	"testing"

	"udt/internal/pdf"
)

func twoClassDataset(t *testing.T, n int) *Dataset {
	t.Helper()
	ds := NewDataset("toy", 2, []string{"A", "B"})
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < n; i++ {
		class := i % 2
		base := float64(class) * 5
		p1, err := pdf.Uniform(base+rng.Float64(), base+1+rng.Float64(), 5)
		if err != nil {
			t.Fatal(err)
		}
		ds.Add(class, p1, pdf.Point(rng.Float64()))
	}
	return ds
}

func TestDatasetBasics(t *testing.T) {
	ds := twoClassDataset(t, 10)
	if ds.Len() != 10 {
		t.Fatalf("Len = %d", ds.Len())
	}
	if w := ds.TotalWeight(); w != 10 {
		t.Fatalf("TotalWeight = %v", w)
	}
	if err := ds.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	counts := ds.ClassCounts()
	if counts[0] != 5 || counts[1] != 5 {
		t.Fatalf("ClassCounts = %v", counts)
	}
}

func TestValidateCatchesBadTuples(t *testing.T) {
	ds := NewDataset("bad", 1, []string{"A"})
	ds.Add(0, pdf.Point(1), pdf.Point(2)) // wrong arity
	if err := ds.Validate(); err == nil {
		t.Error("arity mismatch not caught")
	}
	ds2 := NewDataset("bad2", 1, []string{"A"})
	ds2.Add(3, pdf.Point(1)) // class out of range
	if err := ds2.Validate(); err == nil {
		t.Error("class out of range not caught")
	}
	ds3 := NewDataset("bad3", 1, []string{"A"})
	tu := ds3.Add(0, pdf.Point(1))
	tu.Weight = 0
	if err := ds3.Validate(); err == nil {
		t.Error("zero weight not caught")
	}
	ds4 := NewDataset("bad4", 0, nil)
	if err := ds4.Validate(); err == nil {
		t.Error("empty class set not caught")
	}
}

func TestNumRange(t *testing.T) {
	ds := twoClassDataset(t, 20)
	lo, hi, ok := ds.NumRange(0)
	if !ok {
		t.Fatal("NumRange not ok")
	}
	if lo >= hi {
		t.Fatalf("degenerate range [%v,%v]", lo, hi)
	}
	for _, tu := range ds.Tuples {
		if tu.Num[0].Min() < lo || tu.Num[0].Max() > hi {
			t.Fatal("range does not cover tuple pdfs")
		}
	}
}

func TestMeansCollapsesToPoints(t *testing.T) {
	ds := twoClassDataset(t, 6)
	avg := ds.Means()
	if avg.Len() != ds.Len() {
		t.Fatal("Means changed tuple count")
	}
	for i, tu := range avg.Tuples {
		for j, p := range tu.Num {
			if p.NumSamples() != 1 {
				t.Fatalf("tuple %d attr %d not a point", i, j)
			}
			if math.Abs(p.Mean()-ds.Tuples[i].Num[j].Mean()) > 1e-12 {
				t.Fatalf("mean changed for tuple %d attr %d", i, j)
			}
		}
	}
	// The original dataset must be untouched.
	if ds.Tuples[0].Num[0].NumSamples() == 1 {
		t.Fatal("Means mutated the source dataset")
	}
}

func TestSubsetShares(t *testing.T) {
	ds := twoClassDataset(t, 8)
	sub := ds.Subset([]int{0, 2, 4})
	if sub.Len() != 3 {
		t.Fatalf("Subset len = %d", sub.Len())
	}
	if sub.Tuples[1] != ds.Tuples[2] {
		t.Fatal("Subset should share tuples")
	}
}

func TestSplitFractions(t *testing.T) {
	ds := twoClassDataset(t, 10)
	train, test := ds.Split(0.7, rand.New(rand.NewSource(3)))
	if train.Len() != 7 || test.Len() != 3 {
		t.Fatalf("Split = %d/%d, want 7/3", train.Len(), test.Len())
	}
	train, test = ds.Split(-1, rand.New(rand.NewSource(3)))
	if train.Len() != 0 || test.Len() != 10 {
		t.Fatal("clamped frac<0 should put everything in test")
	}
}

func TestStratifiedKFold(t *testing.T) {
	ds := twoClassDataset(t, 30)
	folds, err := ds.StratifiedKFold(5, rand.New(rand.NewSource(9)))
	if err != nil {
		t.Fatalf("StratifiedKFold: %v", err)
	}
	if len(folds) != 5 {
		t.Fatalf("%d folds", len(folds))
	}
	seen := map[*Tuple]int{}
	for _, f := range folds {
		if f.Train.Len()+f.Test.Len() != ds.Len() {
			t.Fatal("fold does not cover the dataset")
		}
		// Stratification: each class appears in each test fold.
		counts := f.Test.ClassCounts()
		for c, n := range counts {
			if n == 0 {
				t.Fatalf("class %d missing from a test fold", c)
			}
		}
		for _, tu := range f.Test.Tuples {
			seen[tu]++
		}
	}
	if len(seen) != ds.Len() {
		t.Fatalf("test folds cover %d distinct tuples, want %d", len(seen), ds.Len())
	}
	for _, n := range seen {
		if n != 1 {
			t.Fatal("a tuple appears in more than one test fold")
		}
	}
}

func TestStratifiedKFoldErrors(t *testing.T) {
	ds := twoClassDataset(t, 4)
	if _, err := ds.StratifiedKFold(1, rand.New(rand.NewSource(1))); err == nil {
		t.Error("k=1 should error")
	}
	if _, err := ds.StratifiedKFold(10, rand.New(rand.NewSource(1))); err == nil {
		t.Error("k > n should error")
	}
}

func TestCatDist(t *testing.T) {
	d := NewCatPoint(1, 3)
	if d.Mode() != 1 {
		t.Fatalf("Mode = %d", d.Mode())
	}
	d2 := CatDist{2, 1, 1}
	if err := d2.Normalize(); err != nil {
		t.Fatal(err)
	}
	if math.Abs(d2[0]-0.5) > 1e-12 {
		t.Fatalf("Normalize: %v", d2)
	}
	bad := CatDist{0, 0}
	if err := bad.Normalize(); err == nil {
		t.Error("zero-mass Normalize should error")
	}
	neg := CatDist{-1, 2}
	if err := neg.Normalize(); err == nil {
		t.Error("negative-mass Normalize should error")
	}
	c := d2.Clone()
	c[0] = 9
	if d2[0] == 9 {
		t.Error("Clone should copy")
	}
	if CatDist(nil).Clone() != nil {
		t.Error("nil Clone should be nil")
	}
}

func TestCloneShallow(t *testing.T) {
	tu := &Tuple{
		Num:    []*pdf.PDF{pdf.Point(1)},
		Cat:    []CatDist{{1, 0}},
		Class:  1,
		Weight: 0.5,
	}
	c := tu.CloneShallow()
	c.Num[0] = pdf.Point(2)
	c.Cat[0] = CatDist{0, 1}
	if tu.Num[0].Mean() != 1 || tu.Cat[0][0] != 1 {
		t.Fatal("CloneShallow shares backing slices")
	}
	if c.Class != 1 || c.Weight != 0.5 {
		t.Fatal("CloneShallow lost header fields")
	}
}

func TestKindString(t *testing.T) {
	if Numeric.String() != "numeric" || Categorical.String() != "categorical" {
		t.Fatal("Kind.String broken")
	}
	if Kind(9).String() == "" {
		t.Fatal("unknown Kind should still print")
	}
}

// TestShuffle covers Dataset.Shuffle determinism.
func TestShuffle(t *testing.T) {
	ds := NewDataset("s", 1, []string{"A"})
	for i := 0; i < 10; i++ {
		ds.Add(0, pdf.Point(float64(i)))
	}
	order := func() []float64 {
		out := make([]float64, ds.Len())
		for i, tu := range ds.Tuples {
			out[i] = tu.Num[0].Mean()
		}
		return out
	}
	before := order()
	ds.Shuffle(rand.New(rand.NewSource(1)))
	after := order()
	same := true
	for i := range before {
		if before[i] != after[i] {
			same = false
		}
	}
	if same {
		t.Fatal("shuffle left the order unchanged")
	}
	// Same seed reproduces the same permutation.
	ds2 := NewDataset("s2", 1, []string{"A"})
	for i := 0; i < 10; i++ {
		ds2.Add(0, pdf.Point(float64(i)))
	}
	ds2.Shuffle(rand.New(rand.NewSource(1)))
	for i := range ds2.Tuples {
		if ds2.Tuples[i].Num[0].Mean() != after[i] {
			t.Fatal("shuffle not deterministic per seed")
		}
	}
}
