package data

import (
	"fmt"
	"io"
	"reflect"
	"strings"
	"testing"
)

const streamCSV = `x,y,class
0.1,1;2;3,lo
0.2,2@1;3@2,lo
9.1,11;12;13,hi
9.2,12.5,hi
0.3,1;3;5,lo
`

// TestCollectMatchesReadCSV: the acceptance-criterion oracle — a dataset
// built by draining a CSVSource must be deep-equal to one built by ReadCSV
// over the same bytes.
func TestCollectMatchesReadCSV(t *testing.T) {
	want, err := ReadCSV(strings.NewReader(streamCSV), "s")
	if err != nil {
		t.Fatal(err)
	}
	src, err := NewCSVSource(strings.NewReader(streamCSV), "s")
	if err != nil {
		t.Fatal(err)
	}
	got, err := Collect(src)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Collect(NewCSVSource) != ReadCSV:\n got %+v\nwant %+v", got, want)
	}
}

// TestCSVSourceIncrementalVocabulary: the class vocabulary must grow as rows
// are consumed, and every yielded Class index must be valid for the
// vocabulary at that point.
func TestCSVSourceIncrementalVocabulary(t *testing.T) {
	src, err := NewCSVSource(strings.NewReader(streamCSV), "s")
	if err != nil {
		t.Fatal(err)
	}
	if got := src.Classes(); len(got) != 0 {
		t.Fatalf("classes before any row: %v", got)
	}
	wantSizes := []int{1, 1, 2, 2, 2}
	for i, want := range wantSizes {
		tu, err := src.Next()
		if err != nil {
			t.Fatalf("row %d: %v", i, err)
		}
		if got := len(src.Classes()); got != want {
			t.Fatalf("after row %d: %d classes, want %d", i, got, want)
		}
		if tu.Class < 0 || tu.Class >= len(src.Classes()) {
			t.Fatalf("row %d: class index %d outside vocabulary %v", i, tu.Class, src.Classes())
		}
	}
	if _, err := src.Next(); err != io.EOF {
		t.Fatalf("after last row: %v, want io.EOF", err)
	}
}

// TestCSVSourceTruncatedRow: a row that breaks mid-stream (wrong arity, bad
// cell, unterminated quote) must surface as an error from Next after the
// preceding healthy rows streamed fine.
func TestCSVSourceTruncatedRow(t *testing.T) {
	cases := map[string]string{
		"missing fields":     "x,y,class\n0.1,1;2,lo\n9.1\n",
		"bad cell":           "x,y,class\n0.1,1;2,lo\n9.1,abc;def,hi\n",
		"unterminated quote": "x,y,class\n0.1,1;2,lo\n\"9.1,12,hi\n",
	}
	for name, in := range cases {
		src, err := NewCSVSource(strings.NewReader(in), "t")
		if err != nil {
			t.Fatalf("%s: header: %v", name, err)
		}
		if _, err := src.Next(); err != nil {
			t.Fatalf("%s: first row should parse: %v", name, err)
		}
		if _, err := src.Next(); err == nil || err == io.EOF {
			t.Errorf("%s: truncated row yielded no error (err=%v)", name, err)
		}
		// The materialised path must reject the same input.
		if _, err := ReadCSV(strings.NewReader(in), "t"); err == nil {
			t.Errorf("%s: ReadCSV accepted the broken file", name)
		}
	}
}

// TestCSVSourceHeaderOnly: a file with a header and no rows streams zero
// tuples; Collect rejects it exactly like ReadCSV (a dataset with no classes
// fails validation).
func TestCSVSourceHeaderOnly(t *testing.T) {
	const in = "x,y,class\n"
	src, err := NewCSVSource(strings.NewReader(in), "t")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := src.Next(); err != io.EOF {
		t.Fatalf("Next on header-only file: %v, want io.EOF", err)
	}
	src2, err := NewCSVSource(strings.NewReader(in), "t")
	if err != nil {
		t.Fatal(err)
	}
	_, errCollect := Collect(src2)
	_, errRead := ReadCSV(strings.NewReader(in), "t")
	if errCollect == nil || errRead == nil {
		t.Fatalf("header-only file accepted: Collect=%v ReadCSV=%v", errCollect, errRead)
	}
	if errCollect.Error() != errRead.Error() {
		t.Fatalf("paths disagree: Collect=%q ReadCSV=%q", errCollect, errRead)
	}
}

// TestCSVSourceEmptyInput: no header at all is a construction error.
func TestCSVSourceEmptyInput(t *testing.T) {
	if _, err := NewCSVSource(strings.NewReader(""), "t"); err == nil {
		t.Error("empty input accepted")
	}
	if _, err := NewCSVSource(strings.NewReader("onlyone\n"), "t"); err == nil {
		t.Error("single-column header accepted")
	}
}

func TestCollectChunked(t *testing.T) {
	src, err := NewCSVSource(strings.NewReader(streamCSV), "s")
	if err != nil {
		t.Fatal(err)
	}
	var sizes []int
	var all []*Tuple
	err = CollectChunked(src, 2, func(chunk *Dataset) error {
		sizes = append(sizes, chunk.Len())
		if chunk.Len() > 2 {
			t.Errorf("chunk holds %d tuples, cap is 2", chunk.Len())
		}
		if len(chunk.NumAttrs) != 2 || chunk.Name != "s" {
			t.Errorf("chunk lost schema: %+v", chunk)
		}
		all = append(all, chunk.Tuples...)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(sizes, []int{2, 2, 1}) {
		t.Fatalf("chunk sizes = %v, want [2 2 1]", sizes)
	}
	want, _ := ReadCSV(strings.NewReader(streamCSV), "s")
	if !reflect.DeepEqual(all, want.Tuples) {
		t.Fatal("chunked tuples differ from the materialised read")
	}
}

// TestCollectChunkedErrors: a bad chunk size, a callback error, and a parse
// error mid-stream must all abort the drain.
func TestCollectChunkedErrors(t *testing.T) {
	src, _ := NewCSVSource(strings.NewReader(streamCSV), "s")
	if err := CollectChunked(src, 0, func(*Dataset) error { return nil }); err == nil {
		t.Error("chunk size 0 accepted")
	}
	src, _ = NewCSVSource(strings.NewReader(streamCSV), "s")
	calls := 0
	err := CollectChunked(src, 1, func(*Dataset) error { calls++; return io.ErrUnexpectedEOF })
	if err != io.ErrUnexpectedEOF || calls != 1 {
		t.Errorf("callback error not propagated: err=%v calls=%d", err, calls)
	}
	src, _ = NewCSVSource(strings.NewReader("x,y,class\n0.1,1;2,lo\nbroken\n"), "s")
	if err := CollectChunked(src, 8, func(*Dataset) error { return nil }); err == nil {
		t.Error("mid-stream parse error not surfaced")
	}
}

// TestReservoirDeterministic: the same seed must yield the identical sample,
// and a stream no longer than the reservoir passes through untouched.
func TestReservoirDeterministic(t *testing.T) {
	// A 60-row CSV: 3 classes round-robin.
	var b strings.Builder
	b.WriteString("x,class\n")
	labels := []string{"a", "b", "c"}
	for i := 0; i < 60; i++ {
		fmt.Fprintf(&b, "%d,%s\n", i, labels[i%3])
	}
	csvText := b.String()

	sample := func(n int, seed int64) *Dataset {
		t.Helper()
		src, err := NewCSVSource(strings.NewReader(csvText), "r")
		if err != nil {
			t.Fatal(err)
		}
		ds, err := Reservoir(src, n, seed)
		if err != nil {
			t.Fatal(err)
		}
		return ds
	}

	a, b1 := sample(10, 7), sample(10, 7)
	if !reflect.DeepEqual(a, b1) {
		t.Fatal("same seed produced different reservoir samples")
	}
	if a.Len() != 10 {
		t.Fatalf("reservoir kept %d tuples, want 10", a.Len())
	}
	if len(a.Classes) != 3 {
		t.Fatalf("reservoir lost class vocabulary: %v", a.Classes)
	}
	c := sample(10, 8)
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced the identical 10-of-60 sample (astronomically unlikely)")
	}
	// Reservoir at least as large as the stream = plain Collect.
	full := sample(100, 3)
	want, err := ReadCSV(strings.NewReader(csvText), "r")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(full.Tuples, want.Tuples) {
		t.Fatal("oversized reservoir did not pass the stream through")
	}
}

func TestReservoirErrors(t *testing.T) {
	src, _ := NewCSVSource(strings.NewReader(streamCSV), "s")
	if _, err := Reservoir(src, 0, 1); err == nil {
		t.Error("reservoir size 0 accepted")
	}
	src, _ = NewCSVSource(strings.NewReader("x,class\n"), "s")
	if _, err := Reservoir(src, 5, 1); err == nil {
		t.Error("empty stream accepted")
	}
	src, _ = NewCSVSource(strings.NewReader("x,class\n1,a\nbroken\n"), "s")
	if _, err := Reservoir(src, 5, 1); err == nil {
		t.Error("mid-stream parse error not surfaced")
	}
}
