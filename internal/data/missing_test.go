package data

import (
	"math"
	"testing"

	"udt/internal/pdf"
)

func TestFillMissing(t *testing.T) {
	ds := NewDataset("miss", 2, []string{"A", "B"})
	ds.Add(0, pdf.Point(1), pdf.Point(10))
	ds.Add(0, pdf.Point(3), nil)
	ds.Add(1, nil, pdf.Point(20))
	filled, err := FillMissing(ds)
	if err != nil {
		t.Fatal(err)
	}
	// The original must keep its holes.
	if ds.Tuples[1].Num[1] != nil || ds.Tuples[2].Num[0] != nil {
		t.Fatal("FillMissing mutated the input")
	}
	// Attribute 0 guess: average of points 1 and 3 => mass 1/2 each.
	g0 := filled.Tuples[2].Num[0]
	if g0 == nil {
		t.Fatal("missing value not filled")
	}
	if math.Abs(g0.Mean()-2) > 1e-12 {
		t.Fatalf("guess mean = %v, want 2", g0.Mean())
	}
	if g0.NumSamples() != 2 {
		t.Fatalf("guess should carry both observed values, got %d samples", g0.NumSamples())
	}
	// Attribute 1 guess: average of 10 and 20.
	g1 := filled.Tuples[1].Num[1]
	if math.Abs(g1.Mean()-15) > 1e-12 {
		t.Fatalf("guess mean = %v, want 15", g1.Mean())
	}
	// Present values untouched.
	if filled.Tuples[0].Num[0].Mean() != 1 {
		t.Fatal("present value changed")
	}
	if err := filled.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestFillMissingWeighted(t *testing.T) {
	ds := NewDataset("w", 1, []string{"A"})
	t1 := ds.Add(0, pdf.Point(0))
	t1.Weight = 3
	ds.Add(0, pdf.Point(4))
	ds.Tuples = append(ds.Tuples, &Tuple{Num: []*pdf.PDF{nil}, Class: 0, Weight: 1})
	filled, err := FillMissing(ds)
	if err != nil {
		t.Fatal(err)
	}
	// Weighted average: (3*0 + 1*4)/4 = 1.
	g := filled.Tuples[2].Num[0]
	if math.Abs(g.Mean()-1) > 1e-12 {
		t.Fatalf("weighted guess mean = %v, want 1", g.Mean())
	}
}

func TestFillMissingAllAbsent(t *testing.T) {
	ds := NewDataset("allmiss", 1, []string{"A"})
	ds.Tuples = append(ds.Tuples, &Tuple{Num: []*pdf.PDF{nil}, Class: 0, Weight: 1})
	filled, err := FillMissing(ds)
	if err != nil {
		t.Fatal(err)
	}
	if filled.Tuples[0].Num[0] != nil {
		t.Fatal("attribute with no observations should stay missing")
	}
}

func TestFillMissingInvalidDataset(t *testing.T) {
	ds := NewDataset("bad", 1, []string{"A"})
	ds.Add(7, pdf.Point(1))
	if _, err := FillMissing(ds); err == nil {
		t.Fatal("invalid dataset accepted")
	}
}

func TestMissingCounts(t *testing.T) {
	ds := NewDataset("mc", 2, []string{"A"})
	ds.Add(0, pdf.Point(1), nil)
	ds.Add(0, nil, nil)
	counts := MissingCounts(ds)
	if counts[0] != 1 || counts[1] != 2 {
		t.Fatalf("MissingCounts = %v, want [1 2]", counts)
	}
}

func TestMix(t *testing.T) {
	a := pdf.Point(0)
	b := pdf.Point(10)
	m, err := pdf.Mix([]*pdf.PDF{a, b}, []float64{1, 3})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m.Mean()-7.5) > 1e-12 {
		t.Fatalf("mixture mean = %v, want 7.5", m.Mean())
	}
	if _, err := pdf.Mix([]*pdf.PDF{a}, []float64{1, 2}); err == nil {
		t.Fatal("length mismatch accepted")
	}
	if _, err := pdf.Mix([]*pdf.PDF{a}, []float64{-1}); err == nil {
		t.Fatal("negative weight accepted")
	}
	if _, err := pdf.Mix([]*pdf.PDF{nil}, []float64{1}); err == nil {
		t.Fatal("all-nil mixture accepted")
	}
	// Zero-weight and nil components are skipped.
	m2, err := pdf.Mix([]*pdf.PDF{a, nil, b}, []float64{1, 5, 0})
	if err != nil {
		t.Fatal(err)
	}
	if m2.Mean() != 0 {
		t.Fatalf("mixture should reduce to the single live component, mean %v", m2.Mean())
	}
}
