// Package data defines the uncertain-data model of Tsang et al.: datasets of
// tuples whose numerical attributes are probability density functions and
// whose categorical attributes are discrete distributions, plus the
// fractional-tuple machinery, uncertainty injection, perturbation, and
// cross-validation utilities used by the paper's experiments.
package data

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"udt/internal/pdf"
)

// Kind distinguishes attribute types.
type Kind int

// Attribute kinds.
const (
	Numeric     Kind = iota // real-valued, uncertainty as a pdf
	Categorical             // finite domain, uncertainty as a discrete distribution
)

func (k Kind) String() string {
	switch k {
	case Numeric:
		return "numeric"
	case Categorical:
		return "categorical"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Attribute describes one feature of a dataset.
type Attribute struct {
	Name   string
	Kind   Kind
	Domain []string // categorical value names; nil for numeric attributes
}

// CatDist is a discrete probability distribution over a categorical
// attribute's domain (§7.2). Index i corresponds to Domain[i]. A nil or
// empty CatDist means the attribute is missing for the tuple.
type CatDist []float64

// NewCatPoint returns the distribution concentrated on domain value v of a
// domain with n values.
func NewCatPoint(v, n int) CatDist {
	d := make(CatDist, n)
	d[v] = 1
	return d
}

// Normalize scales the distribution to sum to one. It returns an error when
// the total mass is not positive.
func (d CatDist) Normalize() error {
	total := 0.0
	for _, p := range d {
		if p < 0 || math.IsNaN(p) {
			return errors.New("data: negative or NaN categorical mass")
		}
		total += p
	}
	if total <= 0 {
		return errors.New("data: categorical distribution has no mass")
	}
	for i := range d {
		d[i] /= total
	}
	return nil
}

// Mode returns the index of the most probable domain value.
func (d CatDist) Mode() int {
	best, bestP := 0, math.Inf(-1)
	for i, p := range d {
		if p > bestP {
			best, bestP = i, p
		}
	}
	return best
}

// Clone returns a deep copy.
func (d CatDist) Clone() CatDist {
	if d == nil {
		return nil
	}
	c := make(CatDist, len(d))
	copy(c, d)
	return c
}

// Tuple is one training or test example. Num holds one pdf per numeric
// attribute, Cat one discrete distribution per categorical attribute, in
// dataset attribute order (numeric attributes first in Dataset.NumAttrs
// order, categorical in Dataset.CatAttrs order). Weight is the fractional
// tuple weight w of §3.2; whole tuples have weight 1.
type Tuple struct {
	Num    []*pdf.PDF
	Cat    []CatDist
	Class  int
	Weight float64
}

// CloneShallow copies the tuple header while sharing the immutable pdfs.
func (t *Tuple) CloneShallow() *Tuple {
	c := &Tuple{Class: t.Class, Weight: t.Weight}
	if t.Num != nil {
		c.Num = make([]*pdf.PDF, len(t.Num))
		copy(c.Num, t.Num)
	}
	if t.Cat != nil {
		c.Cat = make([]CatDist, len(t.Cat))
		copy(c.Cat, t.Cat)
	}
	return c
}

// Dataset is a set of uncertain tuples with schema information.
type Dataset struct {
	Name     string
	NumAttrs []Attribute // numeric attributes
	CatAttrs []Attribute // categorical attributes
	Classes  []string
	Tuples   []*Tuple
}

// NewDataset allocates an empty dataset with k numeric attributes named
// A1..Ak and the given class labels.
func NewDataset(name string, numAttrs int, classes []string) *Dataset {
	attrs := make([]Attribute, numAttrs)
	for i := range attrs {
		attrs[i] = Attribute{Name: fmt.Sprintf("A%d", i+1), Kind: Numeric}
	}
	return &Dataset{Name: name, NumAttrs: attrs, Classes: classes}
}

// Add appends a tuple of whole weight with the given numeric pdfs.
func (ds *Dataset) Add(class int, num ...*pdf.PDF) *Tuple {
	t := &Tuple{Num: num, Class: class, Weight: 1}
	ds.Tuples = append(ds.Tuples, t)
	return t
}

// Len reports the number of tuples.
func (ds *Dataset) Len() int { return len(ds.Tuples) }

// TotalWeight returns the sum of tuple weights.
func (ds *Dataset) TotalWeight() float64 {
	w := 0.0
	for _, t := range ds.Tuples {
		w += t.Weight
	}
	return w
}

// Validate checks structural consistency: attribute arity, class indices,
// weights, and categorical distribution lengths.
func (ds *Dataset) Validate() error {
	if len(ds.Classes) == 0 {
		return errors.New("data: dataset has no classes")
	}
	for i, t := range ds.Tuples {
		if t == nil {
			return fmt.Errorf("data: tuple %d is nil", i)
		}
		if len(t.Num) != len(ds.NumAttrs) {
			return fmt.Errorf("data: tuple %d has %d numeric values, schema has %d", i, len(t.Num), len(ds.NumAttrs))
		}
		if len(t.Cat) != len(ds.CatAttrs) {
			return fmt.Errorf("data: tuple %d has %d categorical values, schema has %d", i, len(t.Cat), len(ds.CatAttrs))
		}
		if t.Class < 0 || t.Class >= len(ds.Classes) {
			return fmt.Errorf("data: tuple %d has class %d out of range", i, t.Class)
		}
		if t.Weight <= 0 || math.IsNaN(t.Weight) {
			return fmt.Errorf("data: tuple %d has weight %v", i, t.Weight)
		}
		for j, d := range t.Cat {
			if d != nil && len(d) != len(ds.CatAttrs[j].Domain) {
				return fmt.Errorf("data: tuple %d categorical %d has %d masses, domain has %d", i, j, len(d), len(ds.CatAttrs[j].Domain))
			}
		}
	}
	return nil
}

// withTuples returns a dataset sharing the schema with the given tuples.
func (ds *Dataset) withTuples(ts []*Tuple) *Dataset {
	return &Dataset{
		Name:     ds.Name,
		NumAttrs: ds.NumAttrs,
		CatAttrs: ds.CatAttrs,
		Classes:  ds.Classes,
		Tuples:   ts,
	}
}

// Subset returns a dataset over the tuples at the given indices (shared,
// not copied).
func (ds *Dataset) Subset(idx []int) *Dataset {
	ts := make([]*Tuple, len(idx))
	for i, j := range idx {
		ts[i] = ds.Tuples[j]
	}
	return ds.withTuples(ts)
}

// ClassCounts returns the total weight per class.
func (ds *Dataset) ClassCounts() []float64 {
	counts := make([]float64, len(ds.Classes))
	for _, t := range ds.Tuples {
		counts[t.Class] += t.Weight
	}
	return counts
}

// NumRange returns the minimum and maximum location taken by numeric
// attribute j over all tuples (the |A_j| domain width of §4.3 is hi-lo).
// ok is false when no tuple carries the attribute.
func (ds *Dataset) NumRange(j int) (lo, hi float64, ok bool) {
	lo, hi = math.Inf(1), math.Inf(-1)
	for _, t := range ds.Tuples {
		p := t.Num[j]
		if p == nil {
			continue
		}
		if p.Min() < lo {
			lo = p.Min()
		}
		if p.Max() > hi {
			hi = p.Max()
		}
		ok = true
	}
	return lo, hi, ok
}

// Means converts every tuple to its Averaging representative: each pdf is
// replaced by a point pdf at its mean (§4.1). Categorical distributions are
// preserved. The schema is shared; the tuples are fresh.
func (ds *Dataset) Means() *Dataset {
	ts := make([]*Tuple, len(ds.Tuples))
	for i, t := range ds.Tuples {
		c := t.CloneShallow()
		for j, p := range t.Num {
			if p != nil {
				c.Num[j] = pdf.Point(p.Mean())
			}
		}
		ts[i] = c
	}
	return ds.withTuples(ts)
}

// Shuffle permutes the tuple order in place using rng.
func (ds *Dataset) Shuffle(rng *rand.Rand) {
	rng.Shuffle(len(ds.Tuples), func(i, j int) {
		ds.Tuples[i], ds.Tuples[j] = ds.Tuples[j], ds.Tuples[i]
	})
}

// Split partitions the dataset into train and test sets, putting the first
// ceil(frac*n) shuffled tuples into train. frac is clamped to [0,1].
func (ds *Dataset) Split(frac float64, rng *rand.Rand) (train, test *Dataset) {
	if frac < 0 {
		frac = 0
	}
	if frac > 1 {
		frac = 1
	}
	idx := rng.Perm(len(ds.Tuples))
	cut := int(math.Ceil(frac * float64(len(ds.Tuples))))
	return ds.Subset(idx[:cut]), ds.Subset(idx[cut:])
}

// Fold is one train/test split of a cross-validation.
type Fold struct {
	Train *Dataset
	Test  *Dataset
}

// StratifiedKFold partitions the dataset into k folds preserving class
// proportions, as used for the 10-fold cross-validation of §4.3.
func (ds *Dataset) StratifiedKFold(k int, rng *rand.Rand) ([]Fold, error) {
	if k < 2 {
		return nil, errors.New("data: k-fold requires k >= 2")
	}
	if len(ds.Tuples) < k {
		return nil, fmt.Errorf("data: %d tuples cannot make %d folds", len(ds.Tuples), k)
	}
	// Group indices by class, shuffle within each class, and deal them out
	// round-robin so every fold sees near-identical class proportions.
	byClass := make([][]int, len(ds.Classes))
	for i, t := range ds.Tuples {
		byClass[t.Class] = append(byClass[t.Class], i)
	}
	foldIdx := make([][]int, k)
	next := 0
	for _, idxs := range byClass {
		rng.Shuffle(len(idxs), func(i, j int) { idxs[i], idxs[j] = idxs[j], idxs[i] })
		for _, i := range idxs {
			foldIdx[next%k] = append(foldIdx[next%k], i)
			next++
		}
	}
	folds := make([]Fold, k)
	for f := 0; f < k; f++ {
		var train []int
		for g := 0; g < k; g++ {
			if g != f {
				train = append(train, foldIdx[g]...)
			}
		}
		folds[f] = Fold{Train: ds.Subset(train), Test: ds.Subset(foldIdx[f])}
	}
	return folds, nil
}
