package core

import (
	"math/rand"
	"testing"
)

// TestClassUpperBounds pins the bound contract staged early-exit inference
// rests on: over randomized trees and tuples (missing values included, which
// exercise the internal-node fallback emissions), Classify(tu)[c] exceeds
// ClassUpperBounds()[c] by at most floating-point rounding of the descent's
// summation — many orders of magnitude below the exit slack the forest adds
// on top of the bound.
const ubRoundingTol = 1e-12

func TestClassUpperBounds(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		rng := rand.New(rand.NewSource(seed))
		ds := randomMixedDataset(rng, 150, 3, 3, 10, true)
		tree, err := Build(ds, Config{MinWeight: 1, PostPrune: seed%2 == 0})
		if err != nil {
			t.Fatal(err)
		}
		c, err := tree.Compile()
		if err != nil {
			t.Fatal(err)
		}
		ub := c.ClassUpperBounds()
		if len(ub) != len(c.Classes) {
			t.Fatalf("seed %d: %d bounds for %d classes", seed, len(ub), len(c.Classes))
		}
		for ci, b := range ub {
			if !(b >= 0 && b <= 1) {
				t.Fatalf("seed %d: bound[%d] = %v out of [0, 1]", seed, ci, b)
			}
		}
		all := append(randomProbes(rng, ds, 300), ds.Tuples...)
		for i, tu := range all {
			for ci, p := range c.Classify(tu) {
				if p > ub[ci]+ubRoundingTol {
					t.Fatalf("seed %d probe %d: class %d mass %v exceeds bound %v", seed, i, ci, p, ub[ci])
				}
			}
		}
	}
}
