package core

import (
	"encoding/json"
	"errors"
	"fmt"

	"udt/internal/data"
)

// Trees serialise to a compact JSON document so that models can be stored
// and served without retaining the training data.

type treeJSON struct {
	Classes  []string   `json:"classes"`
	NumAttrs []attrJSON `json:"numAttrs"`
	CatAttrs []attrJSON `json:"catAttrs,omitempty"`
	Root     *nodeJSON  `json:"root"`
}

type attrJSON struct {
	Name   string   `json:"name"`
	Domain []string `json:"domain,omitempty"`
}

type nodeJSON struct {
	Attr   int         `json:"attr,omitempty"`
	Split  float64     `json:"split,omitempty"`
	Cat    bool        `json:"cat,omitempty"`
	Left   *nodeJSON   `json:"left,omitempty"`
	Right  *nodeJSON   `json:"right,omitempty"`
	Kids   []*nodeJSON `json:"kids,omitempty"`
	Dist   []float64   `json:"dist,omitempty"`
	W      float64     `json:"w"`
	ClassW []float64   `json:"classW,omitempty"`
}

// MarshalJSON implements json.Marshaler.
func (t *Tree) MarshalJSON() ([]byte, error) {
	doc := treeJSON{
		Classes: t.Classes,
		Root:    toNodeJSON(t.Root),
	}
	for _, a := range t.NumAttrs {
		doc.NumAttrs = append(doc.NumAttrs, attrJSON{Name: a.Name})
	}
	for _, a := range t.CatAttrs {
		doc.CatAttrs = append(doc.CatAttrs, attrJSON{Name: a.Name, Domain: a.Domain})
	}
	return json.Marshal(doc)
}

// UnmarshalJSON implements json.Unmarshaler.
func (t *Tree) UnmarshalJSON(b []byte) error {
	var doc treeJSON
	if err := json.Unmarshal(b, &doc); err != nil {
		return err
	}
	if doc.Root == nil {
		return errors.New("core: tree JSON has no root")
	}
	t.Classes = doc.Classes
	t.NumAttrs = nil
	for _, a := range doc.NumAttrs {
		t.NumAttrs = append(t.NumAttrs, data.Attribute{Name: a.Name, Kind: data.Numeric})
	}
	t.CatAttrs = nil
	for _, a := range doc.CatAttrs {
		t.CatAttrs = append(t.CatAttrs, data.Attribute{Name: a.Name, Kind: data.Categorical, Domain: a.Domain})
	}
	root, err := fromNodeJSON(doc.Root, len(doc.Classes))
	if err != nil {
		return err
	}
	t.Root = root
	t.Stats.Nodes, t.Stats.Leaves, t.Stats.Depth = countNodes(root)
	return nil
}

func toNodeJSON(n *Node) *nodeJSON {
	if n == nil {
		return nil
	}
	j := &nodeJSON{
		Attr:   n.Attr,
		Split:  n.Split,
		Cat:    n.Cat,
		Dist:   n.Dist,
		W:      n.W,
		ClassW: n.ClassW,
		Left:   toNodeJSON(n.Left),
		Right:  toNodeJSON(n.Right),
	}
	for _, kid := range n.Kids {
		j.Kids = append(j.Kids, toNodeJSON(kid))
	}
	return j
}

func fromNodeJSON(j *nodeJSON, numClasses int) (*Node, error) {
	n := &Node{
		Attr:   j.Attr,
		Split:  j.Split,
		Cat:    j.Cat,
		Dist:   j.Dist,
		W:      j.W,
		ClassW: j.ClassW,
	}
	if n.IsLeaf() {
		if len(n.Dist) != numClasses {
			return nil, fmt.Errorf("core: leaf has %d class probabilities, want %d", len(n.Dist), numClasses)
		}
		return n, nil
	}
	if j.Cat {
		if len(j.Kids) == 0 {
			return nil, errors.New("core: categorical node without children")
		}
		for _, kj := range j.Kids {
			kid, err := fromNodeJSON(kj, numClasses)
			if err != nil {
				return nil, err
			}
			n.Kids = append(n.Kids, kid)
		}
		return n, nil
	}
	if j.Left == nil || j.Right == nil {
		return nil, errors.New("core: numeric node missing a child")
	}
	var err error
	if n.Left, err = fromNodeJSON(j.Left, numClasses); err != nil {
		return nil, err
	}
	if n.Right, err = fromNodeJSON(j.Right, numClasses); err != nil {
		return nil, err
	}
	return n, nil
}
