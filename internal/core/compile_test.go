package core

import (
	"math"
	"math/rand"
	"testing"

	"udt/internal/data"
	"udt/internal/pdf"
)

// randomMixedDataset builds a dataset with k numeric pdf attributes, one
// 4-value categorical attribute, and (when punch is true) missing values in
// both — the full attribute surface of the classifier.
func randomMixedDataset(rng *rand.Rand, m, k, classes, s int, punch bool) *data.Dataset {
	ds := buildRandomDataset(rng, m, k, classes, s)
	ds.CatAttrs = []data.Attribute{{Name: "region", Kind: data.Categorical, Domain: []string{"n", "s", "e", "w"}}}
	for _, tu := range ds.Tuples {
		d := make(data.CatDist, 4)
		d[(tu.Class+rng.Intn(2))%4] = 0.6 + rng.Float64()*0.4
		d[rng.Intn(4)] += 0.4
		if err := d.Normalize(); err != nil {
			panic(err)
		}
		tu.Cat = []data.CatDist{d}
		if punch {
			if rng.Float64() < 0.15 {
				tu.Num[rng.Intn(k)] = nil
			}
			if rng.Float64() < 0.15 {
				tu.Cat[0] = nil
			}
		}
	}
	return ds
}

// randomProbes derives fresh test tuples the tree has never seen: widened,
// shifted, partially missing variants of the training tuples.
func randomProbes(rng *rand.Rand, ds *data.Dataset, n int) []*data.Tuple {
	probes := make([]*data.Tuple, 0, n)
	for i := 0; i < n; i++ {
		src := ds.Tuples[rng.Intn(len(ds.Tuples))]
		tu := src.CloneShallow()
		for j, p := range tu.Num {
			switch {
			case p == nil:
			case rng.Float64() < 0.2:
				tu.Num[j] = nil
			case rng.Float64() < 0.5:
				q, err := pdf.Uniform(p.Min()-rng.Float64()*2, p.Max()+rng.Float64()*2, 1+rng.Intn(20))
				if err != nil {
					panic(err)
				}
				tu.Num[j] = q
			default:
				tu.Num[j] = p.Shift(rng.NormFloat64())
			}
		}
		for j, d := range tu.Cat {
			switch {
			case d == nil:
			case rng.Float64() < 0.2:
				tu.Cat[j] = nil
			default:
				nd := make(data.CatDist, len(d))
				for v := range nd {
					nd[v] = rng.Float64()
				}
				if err := nd.Normalize(); err != nil {
					panic(err)
				}
				tu.Cat[j] = nd
			}
		}
		probes = append(probes, tu)
	}
	return probes
}

// TestCompiledMatchesRecursive is the equality oracle of the compiled
// engine: over randomized trees (numeric and categorical splits, post-
// pruning on and off) and randomized tuples (fresh pdfs, collapsed cat
// distributions, missing values), the flat iterative descent must reproduce
// the recursive Classify and Predict exactly.
func TestCompiledMatchesRecursive(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		rng := rand.New(rand.NewSource(seed))
		ds := randomMixedDataset(rng, 150, 3, 3, 10, seed%2 == 0)
		cfg := Config{MinWeight: 1, PostPrune: seed%3 == 0}
		tree, err := Build(ds, cfg)
		if err != nil {
			t.Fatal(err)
		}
		c, err := tree.Compile()
		if err != nil {
			t.Fatal(err)
		}
		if c.NumNodes() != tree.Stats.Nodes {
			t.Fatalf("seed %d: compiled %d nodes, tree has %d", seed, c.NumNodes(), tree.Stats.Nodes)
		}
		probes := append(append([]*data.Tuple{}, ds.Tuples...), randomProbes(rng, ds, 200)...)
		for i, tu := range probes {
			want := tree.Classify(tu)
			got := c.Classify(tu)
			for ci := range want {
				if math.Abs(want[ci]-got[ci]) > 1e-12 {
					t.Fatalf("seed %d probe %d: compiled dist %v, recursive %v", seed, i, got, want)
				}
			}
			if wp, gp := tree.Predict(tu), c.Predict(tu); wp != gp {
				t.Fatalf("seed %d probe %d: compiled predicts %d, recursive %d", seed, i, gp, wp)
			}
		}
	}
}

// TestCompiledBatchMatchesSerial: the batch APIs must return positionally
// identical results for any worker count, including workers exceeding the
// batch size.
func TestCompiledBatchMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	ds := randomMixedDataset(rng, 200, 3, 4, 8, true)
	tree, err := Build(ds, Config{MinWeight: 1})
	if err != nil {
		t.Fatal(err)
	}
	c, err := tree.Compile()
	if err != nil {
		t.Fatal(err)
	}
	probes := randomProbes(rng, ds, 500)
	wantDist := c.ClassifyBatch(probes, 1)
	wantPred := c.PredictBatch(probes, 1)
	for _, workers := range []int{2, 4, 1000} {
		gotDist := c.ClassifyBatch(probes, workers)
		gotPred := c.PredictBatch(probes, workers)
		for i := range probes {
			for ci := range wantDist[i] {
				if wantDist[i][ci] != gotDist[i][ci] {
					t.Fatalf("workers=%d tuple %d: dist %v vs serial %v", workers, i, gotDist[i], wantDist[i])
				}
			}
			if wantPred[i] != gotPred[i] {
				t.Fatalf("workers=%d tuple %d: pred %d vs serial %d", workers, i, gotPred[i], wantPred[i])
			}
		}
	}
}

// TestCompiledScratchReuse classifies many tuples through the same pooled
// scratch path; slab recycling across calls must not leak state between
// classifications.
func TestCompiledScratchReuse(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	ds := randomMixedDataset(rng, 100, 2, 3, 12, true)
	tree, err := Build(ds, Config{MinWeight: 1})
	if err != nil {
		t.Fatal(err)
	}
	c, err := tree.Compile()
	if err != nil {
		t.Fatal(err)
	}
	tu := ds.Tuples[0]
	first := c.Classify(tu)
	for i := 0; i < 100; i++ {
		c.Classify(ds.Tuples[i%ds.Len()])
	}
	again := c.Classify(tu)
	for ci := range first {
		if first[ci] != again[ci] {
			t.Fatalf("classification drifted across scratch reuse: %v vs %v", again, first)
		}
	}
}

// TestCompileErrors: malformed trees must fail compilation with a clear
// error instead of panicking mid-descent.
func TestCompileErrors(t *testing.T) {
	var nilTree *Tree
	if _, err := nilTree.Compile(); err == nil {
		t.Error("nil tree compiled")
	}
	if _, err := (&Tree{Classes: []string{"a"}}).Compile(); err == nil {
		t.Error("rootless tree compiled")
	}
	if _, err := (&Tree{Root: &Node{Dist: []float64{1}}}).Compile(); err == nil {
		t.Error("classless tree compiled")
	}
	leaf := func() *Node { return &Node{Dist: []float64{0.5, 0.5}} }
	cases := map[string]*Tree{
		"leaf arity": {
			Classes: []string{"a", "b"},
			Root:    &Node{Dist: []float64{1}},
		},
		"numeric missing child": {
			Classes:  []string{"a", "b"},
			NumAttrs: []data.Attribute{{Name: "x"}},
			Root:     &Node{Attr: 0, Split: 1, Left: leaf()},
		},
		"numeric attr out of range": {
			Classes: []string{"a", "b"},
			Root:    &Node{Attr: 0, Split: 1, Left: leaf(), Right: leaf()},
		},
		"categorical attr out of range": {
			Classes: []string{"a", "b"},
			Root:    &Node{Cat: true, Attr: 2, Kids: []*Node{leaf(), leaf()}},
		},
		"categorical domain mismatch": {
			Classes:  []string{"a", "b"},
			CatAttrs: []data.Attribute{{Name: "c", Kind: data.Categorical, Domain: []string{"x", "y", "z"}}},
			Root:     &Node{Cat: true, Attr: 0, Kids: []*Node{leaf(), leaf()}},
		},
		"categorical nil child": {
			Classes:  []string{"a", "b"},
			CatAttrs: []data.Attribute{{Name: "c", Kind: data.Categorical, Domain: []string{"x", "y"}}},
			Root:     &Node{Cat: true, Attr: 0, Kids: []*Node{leaf(), nil}},
		},
		"malformed deep node": {
			Classes:  []string{"a", "b"},
			NumAttrs: []data.Attribute{{Name: "x"}},
			Root:     &Node{Attr: 0, Split: 1, Left: leaf(), Right: &Node{Attr: 0, Split: 2, Left: leaf()}},
		},
	}
	for name, tree := range cases {
		if _, err := tree.Compile(); err == nil {
			t.Errorf("%s: compiled without error", name)
		}
	}
}

// TestCompiledMissingFallback covers the no-information branch: a tuple
// missing the tested attribute at a node whose children carry no training
// weight falls back to the node's own class-weight distribution.
func TestCompiledMissingFallback(t *testing.T) {
	zero := &Node{Dist: []float64{0.5, 0.5}, W: 0, ClassW: []float64{0, 0}}
	tree := &Tree{
		Classes:  []string{"a", "b"},
		NumAttrs: []data.Attribute{{Name: "x"}},
		Root: &Node{
			Attr: 0, Split: 1,
			Left: zero, Right: &Node{Dist: []float64{0.5, 0.5}, W: 0, ClassW: []float64{0, 0}},
			W: 10, ClassW: []float64{7, 3},
		},
	}
	c, err := tree.Compile()
	if err != nil {
		t.Fatal(err)
	}
	tu := &data.Tuple{Num: []*pdf.PDF{nil}, Weight: 1}
	want := tree.Classify(tu)
	got := c.Classify(tu)
	for ci := range want {
		if math.Abs(want[ci]-got[ci]) > 1e-15 {
			t.Fatalf("fallback dist %v, recursive %v", got, want)
		}
	}
	if got[0] != 0.7 || got[1] != 0.3 {
		t.Fatalf("fallback should be the node class weights: %v", got)
	}
}
