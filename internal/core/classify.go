package core

import (
	"udt/internal/data"
)

// Classify returns the probability distribution P over class labels for an
// uncertain test tuple, computed by the recursive weight-splitting descent
// of §3.2: at each numeric node the tuple splits into fractional tuples
// according to the pdf mass on each side of the split point; at leaves the
// arriving weight multiplies the leaf's class distribution; contributions
// sum to P.
func (t *Tree) Classify(tu *data.Tuple) []float64 {
	out := make([]float64, len(t.Classes))
	t.classify(t.Root, tu, 1, out)
	return out
}

// Predict returns the single most probable class label index for the tuple
// (argmax over Classify, the paper's "single result" rule).
func (t *Tree) Predict(tu *data.Tuple) int {
	dist := t.Classify(tu)
	best, bestP := 0, dist[0]
	for c, p := range dist {
		if p > bestP {
			best, bestP = c, p
		}
	}
	return best
}

func (t *Tree) classify(n *Node, tu *data.Tuple, w float64, out []float64) {
	if w <= weightEps || n == nil {
		return
	}
	if n.IsLeaf() {
		for c, p := range n.Dist {
			out[c] += w * p
		}
		return
	}
	if n.Cat {
		d := tu.Cat[n.Attr]
		if d == nil {
			// Missing: route by training branch weights.
			t.classifyByTrainingWeights(n, tu, w, out)
			return
		}
		for v, p := range d {
			if p <= 0 {
				continue
			}
			kid := n.Kids[v]
			ty := tu.CloneShallow()
			ty.Cat[n.Attr] = data.NewCatPoint(v, len(d))
			t.classify(kid, ty, w*p, out)
		}
		return
	}
	p := tu.Num[n.Attr]
	if p == nil {
		t.classifyByTrainingWeights(n, tu, w, out)
		return
	}
	pl, pr, pL := p.SplitAt(n.Split)
	if pL > 0 {
		tl := tu.CloneShallow()
		tl.Num[n.Attr] = pl
		t.classify(n.Left, tl, w*pL, out)
	}
	if pL < 1 {
		tr := tu.CloneShallow()
		tr.Num[n.Attr] = pr
		t.classify(n.Right, tr, w*(1-pL), out)
	}
}

// classifyByTrainingWeights distributes a tuple with a missing test
// attribute across the node's children in proportion to the training weight
// each child received, mirroring the C4.5 treatment of missing values.
func (t *Tree) classifyByTrainingWeights(n *Node, tu *data.Tuple, w float64, out []float64) {
	children := n.children()
	total := 0.0
	for _, ch := range children {
		if ch != nil {
			total += ch.W
		}
	}
	if total <= 0 {
		// No information at all: fall back to the node's own distribution.
		for c, cw := range n.ClassW {
			if n.W > 0 {
				out[c] += w * cw / n.W
			}
		}
		return
	}
	for _, ch := range children {
		if ch != nil {
			t.classify(ch, tu, w*ch.W/total, out)
		}
	}
}
