package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"udt/internal/data"
	"udt/internal/pdf"
)

// The recursive weight-splitting classification of §3.2 has an independent
// semantic definition: since attributes are independent (§2), the class
// distribution of an uncertain tuple is the expectation of the point-value
// classification over the joint distribution of its pdfs,
//
//	P(c) = sum over all joint sample assignments (x_1..x_k)
//	       of prod_j mass_j(x_j) * leafDist(path(x_1..x_k))(c).
//
// enumerateClassify computes that directly (exponential in k, fine for
// tiny tuples) and serves as the oracle for Tree.Classify.

func enumerateClassify(t *Tree, tu *data.Tuple) []float64 {
	out := make([]float64, len(t.Classes))
	point := make([]float64, len(tu.Num))
	var walk func(j int, mass float64)
	walk = func(j int, mass float64) {
		if j == len(tu.Num) {
			dist := classifyPoint(t.Root, point)
			for c, p := range dist {
				out[c] += mass * p
			}
			return
		}
		p := tu.Num[j]
		for i := 0; i < p.NumSamples(); i++ {
			point[j] = p.X(i)
			walk(j+1, mass*p.Mass(i))
		}
	}
	walk(0, 1)
	return out
}

// classifyPoint descends with precise point values (the traditional §3.1
// traversal).
func classifyPoint(n *Node, point []float64) []float64 {
	for !n.IsLeaf() {
		if point[n.Attr] <= n.Split {
			n = n.Left
		} else {
			n = n.Right
		}
	}
	return n.Dist
}

// TestClassifyMatchesEnumerationOracle: on random trees and random small
// tuples, the §3.2 recursion must agree exactly with the expectation over
// enumerated joint assignments.
func TestClassifyMatchesEnumerationOracle(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		k := 1 + rng.Intn(2)
		ds := buildRandomDataset(rng, 20+rng.Intn(30), k, 2+rng.Intn(2), 1+rng.Intn(4))
		tree, err := Build(ds, Config{MinWeight: 1})
		if err != nil {
			return false
		}
		for trial := 0; trial < 5; trial++ {
			num := make([]*pdf.PDF, k)
			for j := range num {
				n := 1 + rng.Intn(5)
				xs := make([]float64, n)
				ms := make([]float64, n)
				for i := range xs {
					xs[i] = rng.NormFloat64() * 3
					ms[i] = rng.Float64() + 0.05
				}
				num[j] = pdf.MustNew(xs, ms)
			}
			tu := &data.Tuple{Num: num, Weight: 1}
			got := tree.Classify(tu)
			want := enumerateClassify(tree, tu)
			for c := range got {
				if math.Abs(got[c]-want[c]) > 1e-9 {
					t.Logf("seed %d: Classify %v != oracle %v", seed, got, want)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestTreeInvariants: structural invariants of any built tree, checked via
// property testing — every internal numeric node has two children, every
// categorical node one child per domain value, every leaf distribution is
// normalised, children's training weight sums to the parent's, and depth
// respects MaxDepth.
func TestTreeInvariants(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		ds := buildRandomDataset(rng, 15+rng.Intn(60), 1+rng.Intn(3), 2+rng.Intn(3), 1+rng.Intn(6))
		maxDepth := 2 + rng.Intn(8)
		tree, err := Build(ds, Config{MinWeight: 0.5, MaxDepth: maxDepth, PostPrune: seed%2 == 0})
		if err != nil {
			return false
		}
		ok := true
		var walk func(n *Node, depth int)
		walk = func(n *Node, depth int) {
			if n == nil {
				ok = false
				return
			}
			if depth > maxDepth+1 {
				ok = false
				return
			}
			if n.IsLeaf() {
				sum := 0.0
				for _, p := range n.Dist {
					if p < 0 || p > 1+1e-12 {
						ok = false
					}
					sum += p
				}
				if n.W > 0 && math.Abs(sum-1) > 1e-9 {
					ok = false
				}
				return
			}
			children := n.children()
			if len(children) < 2 {
				ok = false
				return
			}
			childW := 0.0
			for _, ch := range children {
				if ch == nil {
					ok = false
					return
				}
				childW += ch.W
			}
			if math.Abs(childW-n.W) > 1e-6*math.Max(1, n.W) {
				ok = false
				return
			}
			for _, ch := range children {
				walk(ch, depth+1)
			}
		}
		walk(tree.Root, 1)
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
