package core

import (
	"errors"
	"fmt"
	"sync"

	"udt/internal/data"
	"udt/internal/par"
	"udt/internal/pdf"
)

// This file implements the compiled inference engine: a Tree flattened into
// contiguous arrays, classified by an iterative descent that performs no
// steady-state heap allocation. The recursive Classify of classify.go remains
// the semantic reference; TestCompiledMatchesRecursive pins the two paths to
// each other over randomized trees and tuples.

// Node kinds in the compiled layout.
const (
	ckLeaf uint8 = iota // terminal: dist row holds the class distribution
	ckNum               // numeric test: attr, split, two children (left, right)
	ckCat               // categorical test: attr, one child per domain value
)

// Compiled is a decision tree flattened into a struct-of-arrays layout for
// fast inference. Node i's children are child[start[i]:start[i+1]] (CSR
// indexing: left/right for numeric tests, one entry per domain value for
// categorical tests), and node i owns row i of the dist arena — the leaf
// class distribution for leaves, the per-class training weight (used by
// missing-value routing) for internal nodes.
//
// A Compiled is immutable after construction and safe for concurrent use.
//
// The arrays need not be exclusive to one tree: several Compiled engines can
// share one arena (the binary model format hash-conses identical subtrees
// across ensemble members into shared ranges), in which case each engine
// keeps its own root index and only the nodes reachable from it belong to
// the tree. Tree.Compile always produces a root of 0 over a private arena.
type Compiled struct {
	Classes  []string
	NumAttrs []data.Attribute
	CatAttrs []data.Attribute

	kind  []uint8   // node kind (ckLeaf, ckNum, ckCat)
	attr  []int32   // tested attribute index, by kind
	split []float64 // numeric split point ("value <= split" goes left)
	start []int32   // CSR row pointers into child; len = nodes+1
	child []int32   // child node indices
	w     []float64 // training weight that reached the node
	dist  []float64 // arena of per-node class rows; row i is dist[i*C:(i+1)*C]
	ub    []float64 // per-class emission upper bound; see ClassUpperBounds
	root  int32     // descent entry point (0 for Tree.Compile output)
	nodes int       // nodes reachable from root (len(kind) for private arenas)
}

// Compile flattens the pointer-linked tree into the contiguous Compiled
// layout, validating structural invariants (leaf distribution arity, both
// children present on numeric tests, children matching the categorical
// domain) that the recursive path would only surface as panics mid-descent.
func (t *Tree) Compile() (*Compiled, error) {
	if t == nil || t.Root == nil {
		return nil, errors.New("core: cannot compile a tree without a root")
	}
	nc := len(t.Classes)
	if nc == 0 {
		return nil, errors.New("core: cannot compile a tree without classes")
	}
	c := &Compiled{
		Classes:  t.Classes,
		NumAttrs: t.NumAttrs,
		CatAttrs: t.CatAttrs,
	}
	// Breadth-first flattening: while node i is processed its children are
	// appended to the order, so siblings receive consecutive indices and the
	// CSR child array gains its row structure for free.
	order := []*Node{t.Root}
	for i := 0; i < len(order); i++ {
		n := order[i]
		c.start = append(c.start, int32(len(c.child)))
		c.w = append(c.w, n.W)
		base := len(c.dist)
		c.dist = append(c.dist, make([]float64, nc)...)
		switch {
		case n.IsLeaf():
			if len(n.Dist) != nc {
				return nil, fmt.Errorf("core: leaf has %d class probabilities, want %d", len(n.Dist), nc)
			}
			c.kind = append(c.kind, ckLeaf)
			c.attr = append(c.attr, 0)
			c.split = append(c.split, 0)
			copy(c.dist[base:], n.Dist)
		case n.Cat:
			if n.Attr < 0 || n.Attr >= len(t.CatAttrs) {
				return nil, fmt.Errorf("core: categorical test on attribute %d, schema has %d", n.Attr, len(t.CatAttrs))
			}
			if dom := len(t.CatAttrs[n.Attr].Domain); len(n.Kids) != dom {
				return nil, fmt.Errorf("core: categorical test on %q has %d children, domain has %d values",
					t.CatAttrs[n.Attr].Name, len(n.Kids), dom)
			}
			c.kind = append(c.kind, ckCat)
			c.attr = append(c.attr, int32(n.Attr))
			c.split = append(c.split, 0)
			copy(c.dist[base:], n.ClassW)
			for _, kid := range n.Kids {
				if kid == nil {
					return nil, errors.New("core: categorical test with a nil child")
				}
				c.child = append(c.child, int32(len(order)))
				order = append(order, kid)
			}
		default:
			if n.Left == nil || n.Right == nil {
				return nil, errors.New("core: numeric test missing a child")
			}
			if n.Attr < 0 || n.Attr >= len(t.NumAttrs) {
				return nil, fmt.Errorf("core: numeric test on attribute %d, schema has %d", n.Attr, len(t.NumAttrs))
			}
			c.kind = append(c.kind, ckNum)
			c.attr = append(c.attr, int32(n.Attr))
			c.split = append(c.split, n.Split)
			copy(c.dist[base:], n.ClassW)
			c.child = append(c.child, int32(len(order)))
			order = append(order, n.Left)
			c.child = append(c.child, int32(len(order)))
			order = append(order, n.Right)
		}
	}
	c.start = append(c.start, int32(len(c.child)))
	c.root = 0
	c.nodes = len(c.kind)
	c.computeClassUpperBounds()
	return c, nil
}

// computeClassUpperBounds fills c.ub: for each class, the largest probability
// any single point of the descent can emit for it. A descent emits at leaves
// (the leaf class distribution) and, when every child of a node with a
// missing test attribute carries zero training weight, at internal nodes (the
// node's class weights normalised by its own weight). The total mass a
// descent distributes across emissions never exceeds the root weight (splits
// conserve mass, sub-epsilon frames are dropped), so w0 * ub[class] bounds
// the contribution a whole classification can make to one class — the
// per-member bound staged early-exit inference accumulates over the members
// not yet evaluated.
func (c *Compiled) computeClassUpperBounds() {
	nc := len(c.Classes)
	c.ub = make([]float64, nc)
	for node := range c.kind {
		row := c.dist[node*nc : (node+1)*nc]
		switch c.kind[node] {
		case ckLeaf:
			for ci, p := range row {
				if p > c.ub[ci] {
					c.ub[ci] = p
				}
			}
		default:
			// Internal fallback emission: row holds class weights, scaled by
			// the node weight when routeMissing bottoms out here.
			if nodeW := c.w[node]; nodeW > 0 {
				for ci, cw := range row {
					if p := cw / nodeW; p > c.ub[ci] {
						c.ub[ci] = p
					}
				}
			}
		}
	}
}

// ClassUpperBounds returns, per class, an upper bound on the probability mass
// a classification of any tuple can assign to that class (before weighting):
// Classify(tu)[c] <= ClassUpperBounds()[c] for every tuple, up to the
// floating-point rounding of the descent's summation — consumers must add
// their own rounding slack (forest early exit does). The returned slice is a
// copy.
func (c *Compiled) ClassUpperBounds() []float64 {
	out := make([]float64, len(c.ub))
	copy(out, c.ub)
	return out
}

// NumNodes reports the number of nodes in the compiled tree: the nodes
// reachable from its root, which is every node of the arena for trees built
// by Tree.Compile but may be a subset when the arena is shared.
func (c *Compiled) NumNodes() int { return c.nodes }

// cframe is one pending branch of the iterative descent: a node to visit,
// the probability mass arriving there, and the tuple's current attribute
// views (conditional pdfs produced by splits along the path).
type cframe struct {
	node int32
	w    float64
	num  []*pdf.PDF
	cat  []data.CatDist
}

// scratch holds the reusable state of one descent. All slices are slabs that
// grow to the working-set size and are then recycled via scratchPool, so a
// warm classify call allocates nothing. Views into a slab stay valid when
// the slab later grows: append moves the backing array but the old one
// remains reachable and is never written again.
type scratch struct {
	frames []cframe
	nums   []*pdf.PDF     // slab for per-frame numeric attribute views
	cats   []data.CatDist // slab for per-frame categorical attribute views
	mass   []float64      // slab for collapsed point categorical distributions
	out    []float64      // Predict's distribution buffer
	arena  pdf.SplitArena
}

var scratchPool = sync.Pool{New: func() any { return new(scratch) }}

func (s *scratch) reset() {
	s.frames = s.frames[:0]
	s.nums = s.nums[:0]
	s.cats = s.cats[:0]
	s.mass = s.mass[:0]
	s.arena.Reset()
}

// numView returns a copy of num with attribute a replaced by p, drawn from
// the scratch slab.
//
//udt:hotpath
func (s *scratch) numView(num []*pdf.PDF, a int, p *pdf.PDF) []*pdf.PDF {
	base := len(s.nums)
	s.nums = append(s.nums, num...)
	view := s.nums[base : base+len(num)]
	view[a] = p
	return view
}

// catView returns a copy of cat with attribute a collapsed onto domain value
// v (the NewCatPoint of the recursive path), drawn from the scratch slabs.
//
//udt:hotpath
func (s *scratch) catView(cat []data.CatDist, a, v, n int) []data.CatDist {
	mb := len(s.mass)
	for i := 0; i < n; i++ {
		s.mass = append(s.mass, 0)
	}
	point := data.CatDist(s.mass[mb : mb+n])
	point[v] = 1
	base := len(s.cats)
	s.cats = append(s.cats, cat...)
	view := s.cats[base : base+len(cat)]
	view[a] = point
	return view
}

// outBuf returns a zeroed distribution buffer of the given arity.
//
//udt:hotpath
func (s *scratch) outBuf(nc int) []float64 {
	if cap(s.out) < nc {
		s.out = make([]float64, nc) //udt:alloc-ok amortised warm-up growth of pooled scratch
	}
	s.out = s.out[:nc]
	for i := range s.out {
		s.out[i] = 0
	}
	return s.out
}

// classify runs the iterative descent, accumulating w0 times the tuple's
// class distribution into out (len == len(c.Classes), zeroed by the caller).
// Children are pushed in reverse so the LIFO stack visits leaves in exactly
// the recursive order, keeping the floating-point summation identical to
// Tree.Classify.
//
//udt:hotpath
func (c *Compiled) classify(tu *data.Tuple, out []float64, s *scratch, w0 float64) {
	nc := len(c.Classes)
	s.reset()
	s.frames = append(s.frames, cframe{node: c.root, w: w0, num: tu.Num, cat: tu.Cat})
	for len(s.frames) > 0 {
		f := s.frames[len(s.frames)-1]
		s.frames = s.frames[:len(s.frames)-1]
		if f.w <= weightEps {
			continue
		}
		node := int(f.node)
		switch c.kind[node] {
		case ckLeaf:
			// Reslicing out to the row length lets the compiler drop the
			// bounds check inside the accumulation loop; the summation
			// order is unchanged.
			row := c.dist[node*nc : node*nc+nc]
			acc := out[:len(row)]
			for ci, p := range row {
				acc[ci] += f.w * p
			}
		case ckCat:
			a := int(c.attr[node])
			d := f.cat[a]
			if d == nil {
				c.routeMissing(f, out, s, nc)
				continue
			}
			lo := int(c.start[node])
			for v := len(d) - 1; v >= 0; v-- {
				p := d[v]
				if p <= 0 {
					continue
				}
				s.frames = append(s.frames, cframe{
					node: c.child[lo+v],
					w:    f.w * p,
					num:  f.num,
					cat:  s.catView(f.cat, a, v, len(d)),
				})
			}
		case ckNum:
			a := int(c.attr[node])
			p := f.num[a]
			if p == nil {
				c.routeMissing(f, out, s, nc)
				continue
			}
			pl, pr, pL := p.SplitAtArena(c.split[node], &s.arena)
			lo := int(c.start[node])
			if pL < 1 {
				s.frames = append(s.frames, cframe{
					node: c.child[lo+1],
					w:    f.w * (1 - pL),
					num:  s.numView(f.num, a, pr),
					cat:  f.cat,
				})
			}
			if pL > 0 {
				s.frames = append(s.frames, cframe{
					node: c.child[lo],
					w:    f.w * pL,
					num:  s.numView(f.num, a, pl),
					cat:  f.cat,
				})
			}
		}
	}
}

// routeMissing handles a test on an attribute the tuple is missing: the
// arriving mass is distributed across the children in proportion to the
// training weight each received, falling back to the node's own class
// weights when no child carries weight — the compiled twin of
// classifyByTrainingWeights.
//
//udt:hotpath
func (c *Compiled) routeMissing(f cframe, out []float64, s *scratch, nc int) {
	node := int(f.node)
	lo, hi := int(c.start[node]), int(c.start[node+1])
	total := 0.0
	for i := lo; i < hi; i++ {
		total += c.w[c.child[i]]
	}
	if total <= 0 {
		if nodeW := c.w[node]; nodeW > 0 {
			row := c.dist[node*nc : (node+1)*nc]
			for ci, cw := range row {
				out[ci] += f.w * cw / nodeW
			}
		}
		return
	}
	for i := hi - 1; i >= lo; i-- {
		kid := c.child[i]
		s.frames = append(s.frames, cframe{
			node: kid,
			w:    f.w * c.w[kid] / total,
			num:  f.num,
			cat:  f.cat,
		})
	}
}

// Classify returns the probability distribution over class labels for the
// tuple, identical to Tree.Classify on the source tree.
func (c *Compiled) Classify(tu *data.Tuple) []float64 {
	out := make([]float64, len(c.Classes))
	s := scratchPool.Get().(*scratch)
	c.classify(tu, out, s, 1)
	scratchPool.Put(s)
	return out
}

// ClassifyInto accumulates the tuple's class distribution into out, which
// must have len(c.Classes) entries and is NOT zeroed first. A warm call
// allocates nothing, which lets an ensemble of trees sum their
// distributions into one shared buffer on the serving path.
func (c *Compiled) ClassifyInto(tu *data.Tuple, out []float64) {
	c.ClassifyIntoWeighted(tu, out, 1)
}

// ClassifyIntoWeighted accumulates scale times the tuple's class
// distribution into out (NOT zeroed first). The scale seeds the root weight
// of the descent, so a weighted ensemble member contributes its vote weight
// with no extra pass over the distribution — the accumulation primitive of
// boosted ensembles, exactly ClassifyInto when scale is 1.
func (c *Compiled) ClassifyIntoWeighted(tu *data.Tuple, out []float64, scale float64) {
	s := scratchPool.Get().(*scratch)
	c.classify(tu, out, s, scale)
	scratchPool.Put(s)
}

// Predict returns the most probable class label index for the tuple, with
// Tree.Predict's tie-breaking (lowest index wins).
func (c *Compiled) Predict(tu *data.Tuple) int {
	s := scratchPool.Get().(*scratch)
	out := s.outBuf(len(c.Classes))
	c.classify(tu, out, s, 1)
	best := argmax(out)
	scratchPool.Put(s)
	return best
}

// argmax selects the predicted class with par.Argmax's tie-breaking (lowest
// index wins).
func argmax(dist []float64) int { return par.Argmax(dist) }

// ClassifyBatch classifies every tuple and returns one distribution per
// tuple, computed by up to workers concurrent goroutines (workers <= 1 means
// serial). Results are positionally identical to calling Classify per tuple.
func (c *Compiled) ClassifyBatch(tuples []*data.Tuple, workers int) [][]float64 {
	out := make([][]float64, len(tuples))
	c.forEach(tuples, workers, func(i int, s *scratch) {
		d := make([]float64, len(c.Classes))
		c.classify(tuples[i], d, s, 1)
		out[i] = d
	})
	return out
}

// PredictBatch returns the most probable class label index per tuple,
// computed by up to workers concurrent goroutines (workers <= 1 means
// serial).
func (c *Compiled) PredictBatch(tuples []*data.Tuple, workers int) []int {
	out := make([]int, len(tuples))
	c.forEach(tuples, workers, func(i int, s *scratch) {
		buf := s.outBuf(len(c.Classes))
		c.classify(tuples[i], buf, s, 1)
		out[i] = argmax(buf)
	})
	return out
}

// forEach applies fn to every tuple index, each worker carrying its own
// pooled scratch, claiming par.BatchGrain-sized blocks off an atomic cursor.
func (c *Compiled) forEach(tuples []*data.Tuple, workers int, fn func(i int, s *scratch)) {
	par.ForEach(len(tuples), workers,
		func() *scratch { return scratchPool.Get().(*scratch) },
		fn,
		func(s *scratch) { scratchPool.Put(s) })
}
