package core

import (
	"math"
	"math/rand"
	"testing"

	"udt/internal/split"
)

// TestParallelBuildMatchesSerial: concurrent subtree construction must
// produce a tree that classifies identically to the serial build and must
// account for exactly the same amount of split-search work.
func TestParallelBuildMatchesSerial(t *testing.T) {
	ds := buildRandomDataset(rand.New(rand.NewSource(41)), 120, 3, 4, 10)
	serial, err := Build(ds, Config{Strategy: split.GP, MinWeight: 1})
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := Build(ds, Config{Strategy: split.GP, MinWeight: 1, Parallelism: 4})
	if err != nil {
		t.Fatal(err)
	}
	if parallel.Stats.Nodes != serial.Stats.Nodes || parallel.Stats.Leaves != serial.Stats.Leaves {
		t.Fatalf("tree shape differs: %d/%d nodes, %d/%d leaves",
			parallel.Stats.Nodes, serial.Stats.Nodes, parallel.Stats.Leaves, serial.Stats.Leaves)
	}
	if parallel.Stats.Search.EntropyCalcs() != serial.Stats.Search.EntropyCalcs() {
		t.Fatalf("work accounting differs: %d vs %d entropy calcs",
			parallel.Stats.Search.EntropyCalcs(), serial.Stats.Search.EntropyCalcs())
	}
	for _, tu := range ds.Tuples {
		a, b := serial.Classify(tu), parallel.Classify(tu)
		for c := range a {
			if math.Abs(a[c]-b[c]) > 1e-12 {
				t.Fatalf("parallel tree classifies differently: %v vs %v", b, a)
			}
		}
	}
}

// TestParallelBuildRace exercises the concurrent path under the race
// detector (go test -race) with enough tuples to spawn real goroutines.
func TestParallelBuildRace(t *testing.T) {
	ds := buildRandomDataset(rand.New(rand.NewSource(42)), 200, 4, 5, 8)
	for trial := 0; trial < 3; trial++ {
		tr, err := Build(ds, Config{Strategy: split.ES, MinWeight: 1, Parallelism: 8, PostPrune: true})
		if err != nil {
			t.Fatal(err)
		}
		if tr.Stats.Nodes == 0 {
			t.Fatal("empty tree")
		}
	}
}

// TestWorkersBuildMatchesSerial: intra-node parallel split search must
// produce the identical tree (structure, split points, classifications) as
// the serial search for every strategy — the node-level determinism
// guarantee lifted to whole builds.
func TestWorkersBuildMatchesSerial(t *testing.T) {
	ds := buildRandomDataset(rand.New(rand.NewSource(44)), 300, 3, 4, 10)
	for _, strat := range []split.Strategy{split.UDT, split.BP, split.LP, split.GP, split.ES} {
		serial, err := Build(ds, Config{Strategy: strat, MinWeight: 1})
		if err != nil {
			t.Fatal(err)
		}
		parallel, err := Build(ds, Config{Strategy: strat, MinWeight: 1, Workers: 8})
		if err != nil {
			t.Fatal(err)
		}
		if parallel.Stats.Nodes != serial.Stats.Nodes || parallel.Stats.Leaves != serial.Stats.Leaves || parallel.Stats.Depth != serial.Stats.Depth {
			t.Fatalf("%v: tree shape differs: %d/%d nodes, %d/%d leaves",
				strat, parallel.Stats.Nodes, serial.Stats.Nodes, parallel.Stats.Leaves, serial.Stats.Leaves)
		}
		if !sameSplits(parallel.Root, serial.Root) {
			t.Fatalf("%v: trees pick different splits", strat)
		}
		for _, tu := range ds.Tuples {
			a, b := serial.Classify(tu), parallel.Classify(tu)
			for c := range a {
				if math.Abs(a[c]-b[c]) > 1e-12 {
					t.Fatalf("%v: workers tree classifies differently: %v vs %v", strat, b, a)
				}
			}
		}
	}
}

// sameSplits reports whether two trees test the same attributes at the same
// split points everywhere.
func sameSplits(a, b *Node) bool {
	if (a == nil) != (b == nil) {
		return false
	}
	if a == nil {
		return true
	}
	if a.IsLeaf() != b.IsLeaf() {
		return false
	}
	if a.IsLeaf() {
		return true
	}
	if a.Attr != b.Attr || a.Split != b.Split || a.Cat != b.Cat || len(a.Kids) != len(b.Kids) {
		return false
	}
	for i := range a.Kids {
		if !sameSplits(a.Kids[i], b.Kids[i]) {
			return false
		}
	}
	return sameSplits(a.Left, b.Left) && sameSplits(a.Right, b.Right)
}

// TestWorkersBuildRace mirrors TestParallelBuildRace with both parallelism
// knobs engaged: subtree goroutines each fanning out node-level workers.
func TestWorkersBuildRace(t *testing.T) {
	ds := buildRandomDataset(rand.New(rand.NewSource(42)), 200, 4, 5, 8)
	for trial := 0; trial < 3; trial++ {
		tr, err := Build(ds, Config{Strategy: split.ES, MinWeight: 1, Parallelism: 4, Workers: 4, PostPrune: true})
		if err != nil {
			t.Fatal(err)
		}
		if tr.Stats.Nodes == 0 {
			t.Fatal("empty tree")
		}
	}
}

// TestParallelismOneIsSerial: Parallelism <= 1 must not allocate the
// semaphore (pure serial path).
func TestParallelismOneIsSerial(t *testing.T) {
	ds := buildRandomDataset(rand.New(rand.NewSource(43)), 30, 1, 2, 4)
	for _, p := range []int{0, 1, -5} {
		if _, err := Build(ds, Config{Parallelism: p}); err != nil {
			t.Fatalf("Parallelism=%d: %v", p, err)
		}
	}
}
