package core

import (
	"math/rand"
	"runtime"
	"testing"
)

// BenchmarkCompiledVsRecursive measures classification throughput of the
// recursive pointer-chasing descent against the compiled flat-array engine
// on a 10k-tuple batch, single-threaded and with all cores. Run it with
//
//	go test -bench BenchmarkCompiledVsRecursive -benchtime 5x ./internal/core
//
// The compiled path must stay >= 2x the recursive single-thread throughput
// (ISSUE 2 acceptance); CI runs a 1x smoke iteration to keep it compiling.
func BenchmarkCompiledVsRecursive(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	train := buildRandomDataset(rng, 400, 4, 3, 20)
	tree, err := Build(train, Config{MinWeight: 1})
	if err != nil {
		b.Fatal(err)
	}
	c, err := tree.Compile()
	if err != nil {
		b.Fatal(err)
	}
	batch := buildRandomDataset(rng, 10000, 4, 3, 20).Tuples

	b.Run("recursive", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for _, tu := range batch {
				tree.Classify(tu)
			}
		}
		reportThroughput(b, len(batch))
	})
	b.Run("compiled", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			c.ClassifyBatch(batch, 1)
		}
		reportThroughput(b, len(batch))
	})
	b.Run("compiled-predict", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			c.PredictBatch(batch, 1)
		}
		reportThroughput(b, len(batch))
	})
	b.Run("compiled-parallel", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			c.PredictBatch(batch, runtime.GOMAXPROCS(0))
		}
		reportThroughput(b, len(batch))
	})
}

func reportThroughput(b *testing.B, batch int) {
	b.Helper()
	if s := b.Elapsed().Seconds(); s > 0 {
		b.ReportMetric(float64(batch)*float64(b.N)/s, "tuples/s")
	}
}

// BenchmarkCompile measures the flattening step itself; it is a one-time
// cost paid at model load.
func BenchmarkCompile(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	tree, err := Build(buildRandomDataset(rng, 400, 4, 3, 20), Config{MinWeight: 1})
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		if _, err := tree.Compile(); err != nil {
			b.Fatal(err)
		}
	}
}
