package core

import "fmt"

// Decompile reconstructs a pointer-linked Tree from the compiled arrays. It
// is the inverse of Tree.Compile up to the information the flat layout keeps:
// node structure, splits, leaf distributions, and per-node training weights
// survive; build configuration and split-search counters do not. Its purpose
// is interchange — a binary-loaded model has no source Tree, and converting
// it back to the JSON container (or printing its rules) needs one.
//
// Each call allocates a fresh tree; when the compiled engine shares a
// hash-consed arena the shared subtrees are expanded back into distinct
// nodes, so the result is always a plain tree.
func (c *Compiled) Decompile() (*Tree, error) {
	nc := len(c.Classes)
	root, err := c.decompileNode(c.root, nc, 0)
	if err != nil {
		return nil, err
	}
	t := &Tree{
		Root:     root,
		Classes:  c.Classes,
		NumAttrs: c.NumAttrs,
		CatAttrs: c.CatAttrs,
	}
	t.Stats.Nodes, t.Stats.Leaves, t.Stats.Depth = countNodes(root)
	return t, nil
}

// decompileNode rebuilds the subtree rooted at the given arena index. The
// depth guard is defense in depth: binfmt-validated arenas satisfy
// child < parent, which bounds any path by the arena size, but Decompile
// must terminate on any engine it is handed.
func (c *Compiled) decompileNode(node int32, nc, depth int) (*Node, error) {
	if node < 0 || int(node) >= len(c.kind) {
		return nil, fmt.Errorf("core: decompile: node %d out of range [0,%d)", node, len(c.kind))
	}
	if depth > len(c.kind) {
		return nil, fmt.Errorf("core: decompile: descent exceeded %d nodes, graph has a cycle", len(c.kind))
	}
	i := int(node)
	row := c.dist[i*nc : (i+1)*nc]
	n := &Node{W: c.w[i]}
	switch c.kind[i] {
	case ckLeaf:
		n.Dist = append([]float64(nil), row...)
	case ckNum:
		lo, hi := int(c.start[i]), int(c.start[i+1])
		if hi-lo != 2 {
			return nil, fmt.Errorf("core: decompile: numeric node %d has %d children, want 2", node, hi-lo)
		}
		n.Attr = int(c.attr[i])
		n.Split = c.split[i]
		n.ClassW = append([]float64(nil), row...)
		var err error
		if n.Left, err = c.decompileNode(c.child[lo], nc, depth+1); err != nil {
			return nil, err
		}
		if n.Right, err = c.decompileNode(c.child[lo+1], nc, depth+1); err != nil {
			return nil, err
		}
	case ckCat:
		lo, hi := int(c.start[i]), int(c.start[i+1])
		n.Cat = true
		n.Attr = int(c.attr[i])
		n.ClassW = append([]float64(nil), row...)
		n.Kids = make([]*Node, 0, hi-lo)
		for j := lo; j < hi; j++ {
			kid, err := c.decompileNode(c.child[j], nc, depth+1)
			if err != nil {
				return nil, err
			}
			n.Kids = append(n.Kids, kid)
		}
	default:
		return nil, fmt.Errorf("core: decompile: node %d has unknown kind %d", node, c.kind[i])
	}
	return n, nil
}
