package core

import (
	"encoding/json"
	"math/rand"
	"strings"
	"testing"
)

// TestTreeJSONRoundTrip: a built tree survives the marshal/unmarshal cycle
// with identical classifications, through both the recursive and the
// compiled engines.
func TestTreeJSONRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	ds := randomMixedDataset(rng, 80, 2, 3, 8, true)
	tree, err := Build(ds, Config{MinWeight: 1})
	if err != nil {
		t.Fatal(err)
	}
	blob, err := json.Marshal(tree)
	if err != nil {
		t.Fatal(err)
	}
	var back Tree
	if err := json.Unmarshal(blob, &back); err != nil {
		t.Fatal(err)
	}
	if back.Stats.Nodes != tree.Stats.Nodes {
		t.Fatalf("round trip changed node count: %d vs %d", back.Stats.Nodes, tree.Stats.Nodes)
	}
	c, err := back.Compile()
	if err != nil {
		t.Fatalf("restored tree does not compile: %v", err)
	}
	for i, tu := range ds.Tuples {
		want := tree.Predict(tu)
		if got := back.Predict(tu); got != want {
			t.Fatalf("tuple %d: restored tree predicts %d, original %d", i, got, want)
		}
		if got := c.Predict(tu); got != want {
			t.Fatalf("tuple %d: restored compiled predicts %d, original %d", i, got, want)
		}
	}
}

// TestTreeJSONTruncated: every strict prefix of a valid document must be
// rejected, never panic or silently produce a partial tree.
func TestTreeJSONTruncated(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	tree, err := Build(buildRandomDataset(rng, 30, 2, 2, 6), Config{MinWeight: 1})
	if err != nil {
		t.Fatal(err)
	}
	blob, err := json.Marshal(tree)
	if err != nil {
		t.Fatal(err)
	}
	for cut := 1; cut < len(blob); cut += 7 {
		var back Tree
		if err := json.Unmarshal(blob[:cut], &back); err == nil {
			t.Fatalf("truncated document of %d/%d bytes accepted", cut, len(blob))
		}
	}
}

// TestTreeJSONErrors covers the malformed-document paths of UnmarshalJSON:
// missing root, class-count mismatches, and nodes that are neither leaves
// nor well-formed tests.
func TestTreeJSONErrors(t *testing.T) {
	cases := map[string]struct {
		doc  string
		want string
	}{
		"no root": {
			doc:  `{"classes": ["a", "b"]}`,
			want: "no root",
		},
		"leaf with wrong class count": {
			doc:  `{"classes": ["a", "b"], "root": {"dist": [1], "w": 1}}`,
			want: "class probabilities",
		},
		"leaf with unknown class count": {
			doc:  `{"root": {"dist": [0.5, 0.5], "w": 1}}`,
			want: "class probabilities",
		},
		"node neither leaf nor test": {
			doc:  `{"classes": ["a", "b"], "root": {"w": 1}}`,
			want: "missing a child",
		},
		"numeric node with one child": {
			doc: `{"classes": ["a", "b"], "root": {"attr": 0, "split": 1,
				"left": {"dist": [1, 0], "w": 1}, "w": 2}}`,
			want: "missing a child",
		},
		"categorical node without children": {
			doc:  `{"classes": ["a", "b"], "root": {"cat": true, "w": 1}}`,
			want: "without children",
		},
		"malformed nested node": {
			doc: `{"classes": ["a", "b"], "root": {"attr": 0, "split": 1,
				"left": {"dist": [1, 0], "w": 1},
				"right": {"cat": true, "kids": [{"w": 1}], "w": 1}, "w": 2}}`,
			want: "missing a child",
		},
	}
	for name, tc := range cases {
		var tree Tree
		err := json.Unmarshal([]byte(tc.doc), &tree)
		if err == nil {
			t.Errorf("%s: accepted", name)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", name, err, tc.want)
		}
	}
}
