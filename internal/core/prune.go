package core

import "math"

// Pessimistic error post-pruning in the C4.5 style (footnote 3 of the paper
// defers to Quinlan [3] and Mitchell [33]). Each subtree's training error is
// inflated to an upper confidence bound; a subtree is replaced by a leaf
// when the leaf's estimated errors do not exceed the subtree's.

// prune collapses subtrees of n bottom-up and returns the number of
// subtrees replaced by leaves.
func prune(n *Node, cf float64) int {
	if n == nil || n.IsLeaf() {
		return 0
	}
	pruned := 0
	for _, ch := range n.children() {
		pruned += prune(ch, cf)
	}
	leafErr := pessimisticErrors(n.W, trainingErrors(n), cf)
	subErr := subtreeErrors(n, cf)
	if leafErr <= subErr+0.1 {
		collapse(n)
		pruned++
	}
	return pruned
}

// trainingErrors is the weight of tuples at the node not belonging to its
// majority class.
func trainingErrors(n *Node) float64 {
	maxW := 0.0
	for _, w := range n.ClassW {
		if w > maxW {
			maxW = w
		}
	}
	return n.W - maxW
}

// subtreeErrors sums the pessimistic errors of the subtree's leaves.
func subtreeErrors(n *Node, cf float64) float64 {
	if n == nil {
		return 0
	}
	if n.IsLeaf() {
		return pessimisticErrors(n.W, trainingErrors(n), cf)
	}
	sum := 0.0
	for _, ch := range n.children() {
		sum += subtreeErrors(ch, cf)
	}
	return sum
}

// collapse turns an internal node into a leaf predicting its training
// distribution.
func collapse(n *Node) {
	n.Dist = leafDist(n.ClassW, n.W)
	n.Left, n.Right, n.Kids = nil, nil, nil
	n.Cat = false
	n.Split = 0
	n.Attr = 0
}

// pessimisticErrors returns the estimated error count for a node covering
// weight w with e training errors: the observed errors plus C4.5's AddErrs
// upper-confidence correction at confidence factor cf.
func pessimisticErrors(w, e, cf float64) float64 {
	if w <= 0 {
		return 0
	}
	if e < 0 {
		e = 0
	}
	return e + addErrs(w, e, cf)
}

// addErrs is Quinlan's C4.5 AddErrs: the number of extra errors to charge a
// leaf of weight n with e observed errors, derived from the upper cf
// confidence limit of the binomial error rate (with the exact special case
// for e = 0 and linear interpolation below one error).
func addErrs(n, e, cf float64) float64 {
	switch {
	case e < 1e-6:
		// Zero errors: the cf confidence bound solves (1-p)^n = cf.
		return n * (1 - math.Exp(math.Log(cf)/n))
	case e < 0.9999:
		// Fewer than one error: interpolate between the 0 and 1 cases.
		v0 := n * (1 - math.Exp(math.Log(cf)/n))
		return v0 + e*(addErrs(n, 1, cf)-v0)
	case e+0.5 >= n:
		// Nearly everything is an error already.
		return 0.67 * (n - e)
	default:
		z := normalQuantile(1 - cf)
		pr := (e + 0.5 + z*z/2 + z*math.Sqrt(z*z/4+(e+0.5)*(1-(e+0.5)/n))) / (n + z*z)
		return n*pr - e
	}
}

// normalQuantile computes the inverse standard normal CDF using the
// Beasley-Springer-Moro / Acklam rational approximation (relative error
// below 1.2e-9 on (0,1)), sufficient for confidence-factor lookups.
func normalQuantile(p float64) float64 {
	if p <= 0 {
		return math.Inf(-1)
	}
	if p >= 1 {
		return math.Inf(1)
	}
	a := [...]float64{-3.969683028665376e+01, 2.209460984245205e+02, -2.759285104469687e+02,
		1.383577518672690e+02, -3.066479806614716e+01, 2.506628277459239e+00}
	b := [...]float64{-5.447609879822406e+01, 1.615858368580409e+02, -1.556989798598866e+02,
		6.680131188771972e+01, -1.328068155288572e+01}
	c := [...]float64{-7.784894002430293e-03, -3.223964580411365e-01, -2.400758277161838e+00,
		-2.549732539343734e+00, 4.374664141464968e+00, 2.938163982698783e+00}
	d := [...]float64{7.784695709041462e-03, 3.224671290700398e-01, 2.445134137142996e+00,
		3.754408661907416e+00}
	const pLow, pHigh = 0.02425, 1 - 0.02425
	switch {
	case p < pLow:
		q := math.Sqrt(-2 * math.Log(p))
		return (((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	case p <= pHigh:
		q := p - 0.5
		r := q * q
		return (((((a[0]*r+a[1])*r+a[2])*r+a[3])*r+a[4])*r + a[5]) * q /
			(((((b[0]*r+b[1])*r+b[2])*r+b[3])*r+b[4])*r + 1)
	default:
		q := math.Sqrt(-2 * math.Log(1-p))
		return -(((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	}
}
