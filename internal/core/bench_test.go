package core

import (
	"math/rand"
	"testing"

	"udt/internal/data"
	"udt/internal/split"
)

func benchDataset(b *testing.B, m, k, classes, s int) *data.Dataset {
	b.Helper()
	return buildRandomDataset(rand.New(rand.NewSource(1)), m, k, classes, s)
}

func BenchmarkBuildUDT(b *testing.B) {
	ds := benchDataset(b, 200, 3, 3, 25)
	for _, strat := range []split.Strategy{split.UDT, split.BP, split.LP, split.GP, split.ES} {
		b.Run(strat.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := Build(ds, Config{Strategy: strat}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkBuildAveraging(b *testing.B) {
	ds := benchDataset(b, 200, 3, 3, 25)
	for i := 0; i < b.N; i++ {
		if _, err := BuildAveraging(ds, Config{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBuildParallel compares serial and concurrent subtree builds.
// Speedup requires multiple CPUs (subtrees below the root build
// concurrently); on a single-core machine the parallel path only adds
// goroutine overhead, so treat the ratio as hardware-dependent. The
// correctness guarantee (identical trees, exact work accounting) is pinned
// by TestParallelBuildMatchesSerial.
func BenchmarkBuildParallel(b *testing.B) {
	ds := benchDataset(b, 400, 4, 4, 20)
	for _, par := range []int{1, 4} {
		name := "serial"
		if par > 1 {
			name = "parallel4"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := Build(ds, Config{Strategy: split.ES, Parallelism: par, MinWeight: 1}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkClassify(b *testing.B) {
	ds := benchDataset(b, 200, 3, 3, 25)
	tree, err := Build(ds, Config{})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tree.Classify(ds.Tuples[i%ds.Len()])
	}
}

func BenchmarkPostPrune(b *testing.B) {
	ds := benchDataset(b, 300, 2, 3, 10)
	for i := 0; i < b.N; i++ {
		if _, err := Build(ds, Config{MinWeight: 0.5, PostPrune: true}); err != nil {
			b.Fatal(err)
		}
	}
}
