package core

import (
	"errors"

	"udt/internal/data"
)

// PruneReducedError performs reduced-error post-pruning against a held-out
// validation set: bottom-up, each internal node is collapsed to a leaf
// whenever doing so does not increase the weighted misclassification error
// of the validation tuples reaching it. This is the classical alternative
// to the pessimistic pruning used by Build (Mitchell [33], which the
// paper's footnote 3 cites for pruning technique details); unlike
// pessimistic pruning it needs extra data but makes no statistical
// assumptions. Returns the number of subtrees collapsed.
func (t *Tree) PruneReducedError(validation *data.Dataset) (int, error) {
	if validation == nil || validation.Len() == 0 {
		return 0, errors.New("core: reduced-error pruning needs a non-empty validation set")
	}
	if len(validation.Classes) != len(t.Classes) {
		return 0, errors.New("core: validation class count differs from the model's")
	}
	// Distribute validation mass over the tree once: for every node, the
	// per-class weight of validation tuples (fractionally) reaching it.
	reach := map[*Node][]float64{}
	for _, tu := range validation.Tuples {
		t.accumulate(t.Root, tu, tu.Weight, reach)
	}
	pruned := t.pruneRE(t.Root, reach)
	t.Stats.Pruned += pruned
	t.Stats.Nodes, t.Stats.Leaves, t.Stats.Depth = countNodes(t.Root)
	return pruned, nil
}

// accumulate walks tu down the subtree exactly like classification,
// recording the per-class validation weight arriving at every node.
func (t *Tree) accumulate(n *Node, tu *data.Tuple, w float64, reach map[*Node][]float64) {
	if n == nil || w <= weightEps {
		return
	}
	r := reach[n]
	if r == nil {
		r = make([]float64, len(t.Classes))
		reach[n] = r
	}
	r[tu.Class] += w
	if n.IsLeaf() {
		return
	}
	if n.Cat {
		d := tu.Cat[n.Attr]
		if d == nil {
			t.accumulateByTrainingWeights(n, tu, w, reach)
			return
		}
		for v, p := range d {
			if p > 0 {
				t.accumulate(n.Kids[v], tu, w*p, reach)
			}
		}
		return
	}
	p := tu.Num[n.Attr]
	if p == nil {
		t.accumulateByTrainingWeights(n, tu, w, reach)
		return
	}
	pl, pr, pL := p.SplitAt(n.Split)
	if pL > 0 {
		tl := tu.CloneShallow()
		tl.Num[n.Attr] = pl
		t.accumulate(n.Left, tl, w*pL, reach)
	}
	if pL < 1 {
		tr := tu.CloneShallow()
		tr.Num[n.Attr] = pr
		t.accumulate(n.Right, tr, w*(1-pL), reach)
	}
}

func (t *Tree) accumulateByTrainingWeights(n *Node, tu *data.Tuple, w float64, reach map[*Node][]float64) {
	children := n.children()
	total := 0.0
	for _, ch := range children {
		if ch != nil {
			total += ch.W
		}
	}
	if total <= 0 {
		return
	}
	for _, ch := range children {
		if ch != nil {
			t.accumulate(ch, tu, w*ch.W/total, reach)
		}
	}
}

// pruneRE collapses nodes bottom-up when the leaf validation error does
// not exceed the subtree validation error.
func (t *Tree) pruneRE(n *Node, reach map[*Node][]float64) int {
	if n == nil || n.IsLeaf() {
		return 0
	}
	pruned := 0
	for _, ch := range n.children() {
		pruned += t.pruneRE(ch, reach)
	}
	leafErr := t.validationErrorAsLeaf(n, reach)
	subErr := t.validationErrorSubtree(n, reach)
	if leafErr <= subErr+1e-12 {
		collapse(n)
		pruned++
	}
	return pruned
}

// validationErrorAsLeaf is the validation weight misclassified at n if it
// predicted its training majority class.
func (t *Tree) validationErrorAsLeaf(n *Node, reach map[*Node][]float64) float64 {
	r := reach[n]
	if r == nil {
		return 0
	}
	pred := majorityClass(n)
	errW := 0.0
	for c, w := range r {
		if c != pred {
			errW += w
		}
	}
	return errW
}

// validationErrorSubtree sums the leaves' validation errors under n.
func (t *Tree) validationErrorSubtree(n *Node, reach map[*Node][]float64) float64 {
	if n == nil {
		return 0
	}
	if n.IsLeaf() {
		r := reach[n]
		if r == nil {
			return 0
		}
		pred := majorityLeafClass(n)
		errW := 0.0
		for c, w := range r {
			if c != pred {
				errW += w
			}
		}
		return errW
	}
	sum := 0.0
	for _, ch := range n.children() {
		sum += t.validationErrorSubtree(ch, reach)
	}
	return sum
}

// majorityClass is the node's training-majority class.
func majorityClass(n *Node) int {
	best, bestW := 0, -1.0
	for c, w := range n.ClassW {
		if w > bestW {
			best, bestW = c, w
		}
	}
	return best
}

// majorityLeafClass is the class a leaf predicts (argmax of its
// distribution; falls back to training majority for weightless leaves).
func majorityLeafClass(n *Node) int {
	best, bestP := 0, -1.0
	for c, p := range n.Dist {
		if p > bestP {
			best, bestP = c, p
		}
	}
	if bestP <= 0 {
		return majorityClass(n)
	}
	return best
}
