package core

import (
	"encoding/json"
	"math/rand"
	"strings"
	"testing"

	"udt/internal/data"
	"udt/internal/pdf"
	"udt/internal/split"
)

// catDataset builds a dataset with a categorical attribute plus a weak
// numeric attribute.
func catDataset(n int, rng *rand.Rand) *data.Dataset {
	ds := data.NewDataset("cat", 1, []string{"A", "B"})
	ds.CatAttrs = []data.Attribute{{Name: "kind", Kind: data.Categorical, Domain: []string{"x", "y", "z"}}}
	for i := 0; i < n; i++ {
		class := i % 2
		v := class // categorical value correlates with class
		if rng.Float64() < 0.1 {
			v = 1 - v
		}
		ds.Tuples = append(ds.Tuples, &data.Tuple{
			Num:    []*pdf.PDF{pdf.Point(rng.Float64())},
			Cat:    []data.CatDist{data.NewCatPoint(v, 3)},
			Class:  class,
			Weight: 1,
		})
	}
	return ds
}

// TestGiniCategoricalTree exercises the Gini parent-gain path for
// categorical splits (catGain with Measure == Gini).
func TestGiniCategoricalTree(t *testing.T) {
	rng := rand.New(rand.NewSource(81))
	ds := catDataset(60, rng)
	tree, err := Build(ds, Config{Measure: split.Gini, MinWeight: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !tree.Root.Cat {
		t.Fatalf("root should split on the categorical attribute:\n%s", tree.Dump())
	}
	correct := 0
	for _, tu := range ds.Tuples {
		if tree.Predict(tu) == tu.Class {
			correct++
		}
	}
	if acc := float64(correct) / float64(ds.Len()); acc < 0.85 {
		t.Fatalf("gini categorical accuracy = %v", acc)
	}
}

// TestGainRatioCategoricalTree exercises the gain-ratio categorical path.
func TestGainRatioCategoricalTree(t *testing.T) {
	rng := rand.New(rand.NewSource(82))
	ds := catDataset(60, rng)
	tree, err := Build(ds, Config{Measure: split.GainRatio, MinWeight: 2})
	if err != nil {
		t.Fatal(err)
	}
	if tree.Stats.Nodes == 0 {
		t.Fatal("no tree")
	}
}

// TestRulesAndDumpCategorical covers the categorical branches of rule
// extraction and dumping.
func TestRulesAndDumpCategorical(t *testing.T) {
	rng := rand.New(rand.NewSource(83))
	ds := catDataset(40, rng)
	tree, err := Build(ds, Config{MinWeight: 1})
	if err != nil {
		t.Fatal(err)
	}
	rules := tree.Rules()
	foundCat := false
	for _, r := range rules {
		for _, c := range r.Conditions {
			if strings.Contains(c, "kind = ") {
				foundCat = true
			}
		}
	}
	if !foundCat {
		t.Fatalf("no categorical condition in rules: %v", rules)
	}
	d := tree.Dump()
	if !strings.Contains(d, "split on kind") {
		t.Fatalf("dump missing categorical node:\n%s", d)
	}
}

// TestJSONCategoricalRoundTrip covers the Kids path of tree
// (de)serialisation.
func TestJSONCategoricalRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(84))
	ds := catDataset(40, rng)
	tree, err := Build(ds, Config{MinWeight: 1})
	if err != nil {
		t.Fatal(err)
	}
	blob, err := json.Marshal(tree)
	if err != nil {
		t.Fatal(err)
	}
	var back Tree
	if err := json.Unmarshal(blob, &back); err != nil {
		t.Fatal(err)
	}
	if back.Stats.Nodes != tree.Stats.Nodes {
		t.Fatal("categorical round trip changed the tree")
	}
	for _, tu := range ds.Tuples {
		if tree.Predict(tu) != back.Predict(tu) {
			t.Fatal("categorical round trip changed predictions")
		}
	}
	// A categorical node with no children must be rejected.
	if err := json.Unmarshal([]byte(`{"classes":["A"],"root":{"cat":true,"w":1}}`), &back); err == nil {
		t.Fatal("childless categorical node accepted")
	}
}

// TestClassifyMissingCategorical covers missing-categorical routing by
// training weights.
func TestClassifyMissingCategorical(t *testing.T) {
	rng := rand.New(rand.NewSource(85))
	ds := catDataset(40, rng)
	tree, err := Build(ds, Config{MinWeight: 1})
	if err != nil {
		t.Fatal(err)
	}
	tu := &data.Tuple{
		Num:    []*pdf.PDF{pdf.Point(0.5)},
		Cat:    []data.CatDist{nil},
		Weight: 1,
	}
	dist := tree.Classify(tu)
	sum := dist[0] + dist[1]
	if sum < 0.999 || sum > 1.001 {
		t.Fatalf("missing-categorical distribution sums to %v", sum)
	}
}

// TestReducedErrorWithMissingValidation covers the accumulate-by-training-
// weights path of reduced-error pruning.
func TestReducedErrorWithMissingValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(86))
	train := noisyDataset(120, 0.2, rng)
	tree, err := Build(train, Config{MinWeight: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	valid := data.NewDataset("v", 1, []string{"A", "B"})
	for i := 0; i < 30; i++ {
		tu := &data.Tuple{Num: []*pdf.PDF{nil}, Class: i % 2, Weight: 1}
		if i%3 != 0 {
			tu.Num[0] = pdf.Point(float64(i%2) + rng.NormFloat64()*0.3)
		}
		valid.Tuples = append(valid.Tuples, tu)
	}
	if _, err := tree.PruneReducedError(valid); err != nil {
		t.Fatal(err)
	}
}
