package core

import (
	"math/rand"
	"testing"

	"udt/internal/data"
	"udt/internal/pdf"
	"udt/internal/split"
)

// noisyDataset has a real class signal plus label noise, so an unpruned
// tree overfits.
func noisyDataset(n int, noise float64, rng *rand.Rand) *data.Dataset {
	ds := data.NewDataset("noisy", 1, []string{"A", "B"})
	for i := 0; i < n; i++ {
		class := i % 2
		if rng.Float64() < noise {
			class = 1 - class
		}
		v := float64(i%2) + rng.NormFloat64()*0.4
		ds.Add(class, pdf.Point(v))
	}
	return ds
}

func TestPruneReducedErrorShrinks(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	train := noisyDataset(150, 0.25, rng)
	valid := noisyDataset(80, 0.25, rng)

	tree, err := Build(train, Config{MinWeight: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	before := tree.Stats.Nodes
	pruned, err := tree.PruneReducedError(valid)
	if err != nil {
		t.Fatal(err)
	}
	if pruned == 0 {
		t.Fatal("reduced-error pruning collapsed nothing on an overfit tree")
	}
	if tree.Stats.Nodes >= before {
		t.Fatalf("node count did not shrink: %d -> %d", before, tree.Stats.Nodes)
	}
	// The pruned tree must not be worse on the validation set than a
	// fully-grown one. Rebuild the overfit tree to compare.
	overfit, _ := Build(train, Config{MinWeight: 0.01})
	accP := accuracyOn(tree, valid)
	accO := accuracyOn(overfit, valid)
	if accP+1e-9 < accO {
		t.Fatalf("pruning reduced validation accuracy: %v < %v", accP, accO)
	}
}

func accuracyOn(tr *Tree, ds *data.Dataset) float64 {
	correct := 0
	for _, tu := range ds.Tuples {
		if tr.Predict(tu) == tu.Class {
			correct++
		}
	}
	return float64(correct) / float64(ds.Len())
}

func TestPruneReducedErrorUncertainValidation(t *testing.T) {
	// Validation tuples with pdfs are fractionally distributed, exactly
	// like classification.
	rng := rand.New(rand.NewSource(62))
	train := buildRandomDataset(rng, 80, 2, 3, 6)
	valid := buildRandomDataset(rng, 40, 2, 3, 6)
	tree, err := Build(train, Config{MinWeight: 0.5, Strategy: split.GP})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tree.PruneReducedError(valid); err != nil {
		t.Fatal(err)
	}
	// Tree remains structurally sound and normalised.
	for _, tu := range valid.Tuples {
		dist := tree.Classify(tu)
		sum := 0.0
		for _, p := range dist {
			sum += p
		}
		if sum < 0.999 || sum > 1.001 {
			t.Fatalf("post-pruning distribution sums to %v", sum)
		}
	}
}

func TestPruneReducedErrorErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(63))
	train := noisyDataset(40, 0.1, rng)
	tree, err := Build(train, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tree.PruneReducedError(nil); err == nil {
		t.Fatal("nil validation accepted")
	}
	empty := train.Subset(nil)
	if _, err := tree.PruneReducedError(empty); err == nil {
		t.Fatal("empty validation accepted")
	}
	wrong := data.NewDataset("w", 1, []string{"only"})
	wrong.Add(0, pdf.Point(1))
	if _, err := tree.PruneReducedError(wrong); err == nil {
		t.Fatal("class mismatch accepted")
	}
}

func TestPruneReducedErrorLeafTree(t *testing.T) {
	// A tree that is already a single leaf: nothing to prune, no error.
	ds := data.NewDataset("pure", 1, []string{"A", "B"})
	for i := 0; i < 5; i++ {
		ds.Add(0, pdf.Point(float64(i)))
	}
	tree, err := Build(ds, Config{})
	if err != nil {
		t.Fatal(err)
	}
	valid := data.NewDataset("v", 1, []string{"A", "B"})
	valid.Add(0, pdf.Point(1))
	pruned, err := tree.PruneReducedError(valid)
	if err != nil {
		t.Fatal(err)
	}
	if pruned != 0 {
		t.Fatalf("pruned %d on a leaf tree", pruned)
	}
}
