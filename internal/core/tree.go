// Package core implements the paper's primary contribution: construction of
// decision trees over uncertain data (UDT, §4.2) in the C4.5 framework,
// alongside the Averaging baseline (AVG, §4.1), with fractional-tuple
// partitioning, pre- and post-pruning, categorical multiway splits (§7.2),
// and the recursive distribution-producing classification of §3.2.
package core

import (
	"errors"
	"fmt"
	"math"
	"sync"

	"udt/internal/data"
	"udt/internal/obs"
	"udt/internal/split"
)

// Config controls tree construction.
type Config struct {
	Measure      split.Measure      // dispersion measure (default entropy)
	Strategy     split.Strategy     // split search strategy (default exhaustive UDT)
	EndPointFrac float64            // UDT-ES end-point sample fraction (default 10%)
	EndPoints    split.EndPointMode // interval end-point derivation (§7.3)
	Percentiles  int                // per-class percentiles for PercentileEnds (default 9)
	MaxDepth     int                // maximum tree depth; 0 means unlimited
	Parallelism  int                // concurrent subtree builds; <= 1 means serial
	Workers      int                // concurrent split-search workers within one node; <= 1 means serial. Up to Parallelism*Workers goroutines run during a build.
	MinWeight    float64            // pre-pruning: do not split nodes lighter than this (default 4)
	MinGain      float64            // pre-pruning: required dispersion gain (default 1e-9)
	PostPrune    bool               // pessimistic error post-pruning (C4.5 style)
	CF           float64            // post-pruning confidence factor (default 0.25)

	// Progress, when non-nil, observes construction (per-node split-search
	// timing). Purely observational: it never changes the built tree, and it
	// is excluded from model serialisation.
	Progress *obs.ProgressHook `json:"-"`
}

// withDefaults fills zero values with the paper's defaults.
func (c Config) withDefaults() Config {
	if c.MinWeight <= 0 {
		c.MinWeight = 4
	}
	if c.MinGain <= 0 {
		c.MinGain = 1e-9
	}
	if c.CF <= 0 || c.CF >= 1 {
		c.CF = 0.25
	}
	return c
}

// Node is one decision tree node. Exactly one of the following holds:
// leaf (Dist != nil), numeric test (Left and Right != nil, test
// "value <= Split"), or categorical test (Kids != nil, one child per
// domain value).
type Node struct {
	// Numeric internal node: test Num[Attr] <= Split.
	Attr  int
	Split float64
	Left  *Node
	Right *Node

	// Categorical internal node: follow Kids[value of Cat[Attr]].
	Cat  bool
	Kids []*Node

	// Leaf: probability distribution over classes.
	Dist []float64

	// Diagnostics: training weight and per-class training weight that
	// reached the node; used by post-pruning and rule support reporting.
	W      float64
	ClassW []float64
}

// IsLeaf reports whether the node is a leaf.
func (n *Node) IsLeaf() bool { return n.Dist != nil }

// Tree is a built classifier.
type Tree struct {
	Root     *Node
	Classes  []string
	NumAttrs []data.Attribute
	CatAttrs []data.Attribute
	Config   Config
	Stats    BuildStats
}

// BuildStats summarises construction work.
type BuildStats struct {
	Search split.Stats // split-search counters (entropy calculations etc.)
	Nodes  int
	Leaves int
	Depth  int
	Pruned int // subtrees collapsed by post-pruning
}

// Build constructs a Distribution-based decision tree (UDT) from the
// uncertain dataset, using the full pdfs of the tuples.
func Build(ds *data.Dataset, cfg Config) (*Tree, error) {
	if err := ds.Validate(); err != nil {
		return nil, err
	}
	if ds.Len() == 0 {
		return nil, errors.New("core: cannot build a tree from an empty dataset")
	}
	cfg = cfg.withDefaults()
	b := &builder{
		cfg:     cfg,
		classes: len(ds.Classes),
		numAttr: len(ds.NumAttrs),
		catAttr: ds.CatAttrs,
	}
	if cfg.Parallelism > 1 {
		b.sem = make(chan struct{}, cfg.Parallelism-1)
	}
	tuples := make([]*data.Tuple, len(ds.Tuples))
	copy(tuples, ds.Tuples)
	root := b.build(tuples, 0, make([]bool, len(ds.CatAttrs)))
	t := &Tree{
		Root:     root,
		Classes:  ds.Classes,
		NumAttrs: ds.NumAttrs,
		CatAttrs: ds.CatAttrs,
		Config:   cfg,
	}
	if cfg.PostPrune {
		t.Stats.Pruned = prune(root, cfg.CF)
	}
	t.Stats.Search = b.stats
	t.Stats.Nodes, t.Stats.Leaves, t.Stats.Depth = countNodes(root)
	return t, nil
}

// BuildAveraging constructs an AVG tree: every pdf is first collapsed to
// its mean value (§4.1) and a conventional tree is built on the points.
func BuildAveraging(ds *data.Dataset, cfg Config) (*Tree, error) {
	return Build(ds.Means(), cfg)
}

type builder struct {
	cfg     Config
	classes int
	numAttr int
	catAttr []data.Attribute

	sem chan struct{} // parallelism tokens; nil when building serially

	mu      sync.Mutex
	stats   split.Stats
	finders []*split.Finder // idle finder pool
}

// getFinder takes a finder from the pool, creating one on demand. Finders
// carry per-goroutine scratch space, so each concurrent subtree build gets
// its own.
func (b *builder) getFinder() *split.Finder {
	b.mu.Lock()
	defer b.mu.Unlock()
	if n := len(b.finders); n > 0 {
		f := b.finders[n-1]
		b.finders = b.finders[:n-1]
		return f
	}
	return split.NewFinder(split.Config{
		Measure:      b.cfg.Measure,
		Strategy:     b.cfg.Strategy,
		EndPointFrac: b.cfg.EndPointFrac,
		EndPoints:    b.cfg.EndPoints,
		Percentiles:  b.cfg.Percentiles,
		Workers:      b.cfg.Workers,
	})
}

// putFinder folds the finder's work counters into the build total and
// returns it to the pool.
func (b *builder) putFinder(f *split.Finder) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.stats.Add(f.Stats())
	f.ResetStats()
	b.finders = append(b.finders, f)
}

// build grows the subtree for the given fractional tuples. usedCat marks
// categorical attributes already split on by an ancestor (§7.2 heuristic:
// re-splitting them cannot gain information).
func (b *builder) build(tuples []*data.Tuple, depth int, usedCat []bool) *Node {
	classW := make([]float64, b.classes)
	total := 0.0
	for _, t := range tuples {
		classW[t.Class] += t.Weight
		total += t.Weight
	}
	node := &Node{W: total, ClassW: classW}

	if b.shouldStop(classW, total, depth) {
		node.Dist = leafDist(classW, total)
		return node
	}

	// The hook owns the clock (this package may not consult it): StartNode
	// returns a shared no-op when nothing is listening, so an unobserved
	// build pays one nil check and no time.Now pair.
	searchDone := b.cfg.Progress.StartNode()
	attr, z, catIdx, found := b.bestSplit(tuples, usedCat)
	searchDone(depth, len(tuples), found)
	if !found {
		node.Dist = leafDist(classW, total)
		return node
	}

	if catIdx >= 0 {
		buckets := b.partitionCategorical(tuples, catIdx)
		nonEmpty := 0
		for _, bk := range buckets {
			if len(bk) > 0 {
				nonEmpty++
			}
		}
		if nonEmpty < 2 {
			node.Dist = leafDist(classW, total)
			return node
		}
		node.Cat = true
		node.Attr = catIdx
		node.Kids = make([]*Node, len(buckets))
		childUsed := make([]bool, len(usedCat))
		copy(childUsed, usedCat)
		childUsed[catIdx] = true
		for v, bk := range buckets {
			if len(bk) == 0 {
				// An unpopulated branch predicts the parent distribution.
				node.Kids[v] = &Node{Dist: leafDist(classW, total), W: 0, ClassW: make([]float64, b.classes)}
				continue
			}
			node.Kids[v] = b.build(bk, depth+1, childUsed)
		}
		return node
	}

	left, right := b.partitionNumeric(tuples, attr, z)
	if len(left) == 0 || len(right) == 0 {
		node.Dist = leafDist(classW, total)
		return node
	}
	node.Attr = attr
	node.Split = z
	// With parallelism enabled and a token available, build the left
	// subtree concurrently; otherwise recurse serially. Tokens are bounded
	// by Config.Parallelism-1, so the total number of active subtree
	// builders never exceeds Config.Parallelism.
	if b.sem != nil {
		select {
		case b.sem <- struct{}{}:
			var wg sync.WaitGroup
			wg.Add(1)
			go func() {
				defer wg.Done()
				defer func() { <-b.sem }()
				node.Left = b.build(left, depth+1, usedCat)
			}()
			node.Right = b.build(right, depth+1, usedCat)
			wg.Wait()
			return node
		default:
		}
	}
	node.Left = b.build(left, depth+1, usedCat)
	node.Right = b.build(right, depth+1, usedCat)
	return node
}

// shouldStop applies the §4.1 stopping conditions and the pre-pruning
// thresholds.
func (b *builder) shouldStop(classW []float64, total float64, depth int) bool {
	if total <= 0 {
		return true
	}
	nonzero := 0
	for _, w := range classW {
		if w > 1e-12 {
			nonzero++
		}
	}
	if nonzero <= 1 {
		return true // all tuples share one class label
	}
	if total < b.cfg.MinWeight {
		return true
	}
	if b.cfg.MaxDepth > 0 && depth >= b.cfg.MaxDepth {
		return true
	}
	return false
}

// bestSplit searches numeric and categorical attributes and returns the
// winner. catIdx is -1 for a numeric split.
func (b *builder) bestSplit(tuples []*data.Tuple, usedCat []bool) (attr int, z float64, catIdx int, found bool) {
	finder := b.getFinder()
	defer b.putFinder(finder)
	res := finder.Best(tuples, b.numAttr, b.classes)
	bestScore := math.Inf(1)
	if res.Found && res.Gain > b.cfg.MinGain {
		attr, z, catIdx, found = res.Attr, res.Z, -1, true
		bestScore = res.Score
	}
	for ci := range b.catAttr {
		if usedCat[ci] {
			continue
		}
		score, ok := finder.CategoricalScore(tuples, ci, len(b.catAttr[ci].Domain), b.classes)
		if ok && score < bestScore {
			// Gain check mirrors the numeric path.
			if b.catGain(tuples, score) > b.cfg.MinGain {
				attr, z, catIdx, found = 0, 0, ci, true
				bestScore = score
			}
		}
	}
	return attr, z, catIdx, found
}

// catGain converts a categorical split score into a gain against the parent
// impurity (for gain ratio the score already is the negated ratio).
func (b *builder) catGain(tuples []*data.Tuple, score float64) float64 {
	if b.cfg.Measure == split.GainRatio {
		return -score
	}
	classW := make([]float64, b.classes)
	total := 0.0
	for _, t := range tuples {
		classW[t.Class] += t.Weight
		total += t.Weight
	}
	var parent float64
	if b.cfg.Measure == split.Gini {
		parent = giniImpurity(classW, total)
	} else {
		parent = entropyImpurity(classW, total)
	}
	return parent - score
}

// partitionNumeric splits the tuples at (attr, z) per §4.2: pdfs entirely on
// one side keep the whole tuple; straddling pdfs become two fractional
// tuples with renormalised conditional pdfs. Tuples missing the attribute
// are distributed proportionally to the observed subset weights (the C4.5
// missing-value convention the paper's §2 discussion encapsulates).
func (b *builder) partitionNumeric(tuples []*data.Tuple, attr int, z float64) (left, right []*data.Tuple) {
	var missing []*data.Tuple
	var wLeft, wRight float64
	for _, t := range tuples {
		p := t.Num[attr]
		if p == nil {
			missing = append(missing, t)
			continue
		}
		pl, pr, pL := p.SplitAt(z)
		if pr == nil {
			left = append(left, t)
			wLeft += t.Weight
			continue
		}
		if pl == nil {
			right = append(right, t)
			wRight += t.Weight
			continue
		}
		tl := t.CloneShallow()
		tl.Weight = t.Weight * pL
		tl.Num[attr] = pl
		tr := t.CloneShallow()
		tr.Weight = t.Weight * (1 - pL)
		tr.Num[attr] = pr
		if tl.Weight > weightEps {
			left = append(left, tl)
			wLeft += tl.Weight
		}
		if tr.Weight > weightEps {
			right = append(right, tr)
			wRight += tr.Weight
		}
	}
	if len(missing) > 0 && wLeft+wRight > 0 {
		fl := wLeft / (wLeft + wRight)
		for _, t := range missing {
			tl := t.CloneShallow()
			tl.Weight = t.Weight * fl
			tr := t.CloneShallow()
			tr.Weight = t.Weight * (1 - fl)
			if tl.Weight > weightEps {
				left = append(left, tl)
			}
			if tr.Weight > weightEps {
				right = append(right, tr)
			}
		}
	}
	return left, right
}

// partitionCategorical copies each tuple into the bucket of every domain
// value carrying probability mass, with weight scaled by that mass and the
// attribute collapsed onto the value (§7.2).
func (b *builder) partitionCategorical(tuples []*data.Tuple, catIdx int) [][]*data.Tuple {
	dom := len(b.catAttr[catIdx].Domain)
	buckets := make([][]*data.Tuple, dom)
	for _, t := range tuples {
		d := t.Cat[catIdx]
		if d == nil {
			continue
		}
		for v, p := range d {
			w := t.Weight * p
			if w <= weightEps {
				continue
			}
			ty := t.CloneShallow()
			ty.Weight = w
			ty.Cat[catIdx] = data.NewCatPoint(v, dom)
			buckets[v] = append(buckets[v], ty)
		}
	}
	return buckets
}

// weightEps drops fractional tuples whose weight has collapsed to
// floating-point dust, keeping the recursion finite.
const weightEps = 1e-12

// leafDist normalises class weights into a leaf distribution.
func leafDist(classW []float64, total float64) []float64 {
	dist := make([]float64, len(classW))
	if total <= 0 {
		return dist
	}
	for c, w := range classW {
		dist[c] = w / total
	}
	return dist
}

// countNodes returns node count, leaf count and depth of the subtree.
func countNodes(n *Node) (nodes, leaves, depth int) {
	if n == nil {
		return 0, 0, 0
	}
	nodes = 1
	if n.IsLeaf() {
		return 1, 1, 1
	}
	maxChild := 0
	for _, ch := range n.children() {
		cn, cl, cd := countNodes(ch)
		nodes += cn
		leaves += cl
		if cd > maxChild {
			maxChild = cd
		}
	}
	return nodes, leaves, maxChild + 1
}

// children returns the node's children regardless of node type.
func (n *Node) children() []*Node {
	if n.Cat {
		return n.Kids
	}
	if n.Left == nil && n.Right == nil {
		return nil
	}
	return []*Node{n.Left, n.Right}
}

// entropyImpurity and giniImpurity mirror the split package's measures for
// parent-gain computation.
func entropyImpurity(counts []float64, total float64) float64 {
	if total <= 0 {
		return 0
	}
	h := 0.0
	for _, c := range counts {
		if c > 0 {
			p := c / total
			h -= p * math.Log2(p)
		}
	}
	return h
}

func giniImpurity(counts []float64, total float64) float64 {
	if total <= 0 {
		return 0
	}
	s := 0.0
	for _, c := range counts {
		p := c / total
		s += p * p
	}
	return 1 - s
}

// String renders a summary line.
func (t *Tree) String() string {
	return fmt.Sprintf("tree{nodes=%d leaves=%d depth=%d classes=%d}",
		t.Stats.Nodes, t.Stats.Leaves, t.Stats.Depth, len(t.Classes))
}
