package core

import (
	"encoding/json"
	"math"
	"math/rand"
	"testing"

	"udt/internal/data"
	"udt/internal/pdf"
	"udt/internal/split"
)

// paperStyleDataset recreates the flavour of Table 1: six one-attribute
// tuples of two classes whose means collapse into just two groups, so the
// Averaging tree cannot discern them, while the full distributions can.
// Tuple 3 is exactly the paper's: values -1, +1, +10 with masses 5/8, 1/8,
// 2/8 (mean +2).
func paperStyleDataset() *data.Dataset {
	ds := data.NewDataset("table1", 1, []string{"A", "B"})
	ds.Add(0, pdf.Point(2))                                          // t1 A, mean +2
	ds.Add(0, pdf.MustNew([]float64{-6, 2}, []float64{1, 1}))        // t2 A, mean -2
	ds.Add(0, pdf.MustNew([]float64{-1, 1, 10}, []float64{5, 1, 2})) // t3 A, mean +2
	ds.Add(1, pdf.Point(-2))                                         // t4 B, mean -2
	ds.Add(1, pdf.MustNew([]float64{-2, 6}, []float64{1, 1}))        // t5 B, mean +2
	ds.Add(1, pdf.MustNew([]float64{-4, 0}, []float64{1, 1}))        // t6 B, mean -2
	return ds
}

func selfAccuracy(t *testing.T, tr *Tree, ds *data.Dataset) float64 {
	t.Helper()
	correct := 0
	for _, tu := range ds.Tuples {
		if tr.Predict(tu) == tu.Class {
			correct++
		}
	}
	return float64(correct) / float64(ds.Len())
}

// TestPaperExample is experiment E1: on Table-1-style data the Averaging
// tree misclassifies the mean-aliased tuples (2/3 accuracy) while the
// Distribution-based tree separates all six (100%).
func TestPaperExample(t *testing.T) {
	ds := paperStyleDataset()
	cfg := Config{MinWeight: 0.01}

	avg, err := BuildAveraging(ds, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if acc := selfAccuracy(t, avg, ds); math.Abs(acc-2.0/3) > 1e-9 {
		t.Fatalf("AVG self-accuracy = %v, want 2/3", acc)
	}

	udtTree, err := Build(ds, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if acc := selfAccuracy(t, udtTree, ds); acc != 1 {
		t.Fatalf("UDT self-accuracy = %v, want 1.0\n%s", acc, udtTree.Dump())
	}
}

// TestClassifyHandComputed verifies the §3.2 recursive classification on a
// hand-built tree against a hand computation (the Fig. 1 walk-through).
func TestClassifyHandComputed(t *testing.T) {
	// Root: x <= -1? yes -> leaf(A:0.8,B:0.2); no -> x <= 1? yes ->
	// leaf(A:0.3,B:0.7); no -> leaf(A:0.9,B:0.1).
	tree := &Tree{
		Classes:  []string{"A", "B"},
		NumAttrs: []data.Attribute{{Name: "x", Kind: data.Numeric}},
		Root: &Node{
			Attr: 0, Split: -1, W: 1,
			Left: &Node{Dist: []float64{0.8, 0.2}, W: 1},
			Right: &Node{
				Attr: 0, Split: 1, W: 1,
				Left:  &Node{Dist: []float64{0.3, 0.7}, W: 1},
				Right: &Node{Dist: []float64{0.9, 0.1}, W: 1},
			},
		},
	}
	// Test tuple: P(-2)=0.3, P(0)=0.4, P(2)=0.3.
	tu := &data.Tuple{
		Num:    []*pdf.PDF{pdf.MustNew([]float64{-2, 0, 2}, []float64{0.3, 0.4, 0.3})},
		Weight: 1,
	}
	dist := tree.Classify(tu)
	// Hand computation: 0.3 to left leaf; 0.7 right, of which 4/7 (=0.4) to
	// middle leaf and 0.3 to right leaf.
	wantA := 0.3*0.8 + 0.4*0.3 + 0.3*0.9
	wantB := 0.3*0.2 + 0.4*0.7 + 0.3*0.1
	if math.Abs(dist[0]-wantA) > 1e-12 || math.Abs(dist[1]-wantB) > 1e-12 {
		t.Fatalf("Classify = %v, want [%v %v]", dist, wantA, wantB)
	}
	if s := dist[0] + dist[1]; math.Abs(s-1) > 1e-12 {
		t.Fatalf("distribution sums to %v", s)
	}
	if tree.Predict(tu) != 0 {
		t.Fatalf("Predict = %d, want 0 (A)", tree.Predict(tu))
	}
}

// TestClassifyConditionsDownstream checks that the renormalised conditional
// pdf is used at deeper splits on the same attribute: mass already sent
// left must not be double-counted.
func TestClassifyConditionsDownstream(t *testing.T) {
	tree := &Tree{
		Classes:  []string{"A", "B"},
		NumAttrs: []data.Attribute{{Name: "x", Kind: data.Numeric}},
		Root: &Node{
			Attr: 0, Split: 0, W: 1,
			Left: &Node{
				Attr: 0, Split: -1, W: 1,
				Left:  &Node{Dist: []float64{1, 0}, W: 1},
				Right: &Node{Dist: []float64{0, 1}, W: 1},
			},
			Right: &Node{Dist: []float64{0.5, 0.5}, W: 1},
		},
	}
	tu := &data.Tuple{
		Num:    []*pdf.PDF{pdf.MustNew([]float64{-2, -0.5, 1}, []float64{0.25, 0.25, 0.5})},
		Weight: 1,
	}
	dist := tree.Classify(tu)
	// Left weight 0.5; within it, P(x<=-1 | x<=0) = 0.5 -> A gets
	// 0.5*0.5=0.25, B gets 0.25; right leaf adds 0.25 each.
	if math.Abs(dist[0]-0.5) > 1e-12 || math.Abs(dist[1]-0.5) > 1e-12 {
		t.Fatalf("Classify = %v, want [0.5 0.5]", dist)
	}
}

func buildRandomDataset(rng *rand.Rand, m, k, classes, s int) *data.Dataset {
	names := make([]string, classes)
	for i := range names {
		names[i] = string(rune('A' + i))
	}
	ds := data.NewDataset("rand", k, names)
	for i := 0; i < m; i++ {
		class := rng.Intn(classes)
		num := make([]*pdf.PDF, k)
		for j := range num {
			c := float64(class)*2 + rng.NormFloat64()*0.7
			p, _ := pdf.Gaussian(c, 0.3, c-0.6, c+0.6, s)
			num[j] = p
		}
		ds.Add(class, num...)
	}
	return ds
}

// TestBuildStrategiesSameTree verifies the §5 safety claim end to end: the
// pruning strategies do not change the resulting decision tree's behaviour.
func TestBuildStrategiesSameTree(t *testing.T) {
	ds := buildRandomDataset(rand.New(rand.NewSource(11)), 40, 2, 3, 8)
	ref, err := Build(ds, Config{Strategy: split.UDT})
	if err != nil {
		t.Fatal(err)
	}
	for _, strat := range []split.Strategy{split.BP, split.LP, split.GP, split.ES} {
		tr, err := Build(ds, Config{Strategy: strat})
		if err != nil {
			t.Fatal(err)
		}
		for _, tu := range ds.Tuples {
			a, b := ref.Classify(tu), tr.Classify(tu)
			for c := range a {
				if math.Abs(a[c]-b[c]) > 1e-9 {
					t.Fatalf("strategy %v classifies differently: %v vs %v", strat, b, a)
				}
			}
		}
		if tr.Stats.Search.EntropyCalcs() > ref.Stats.Search.EntropyCalcs() {
			t.Fatalf("strategy %v did more entropy calculations than exhaustive: %d > %d",
				strat, tr.Stats.Search.EntropyCalcs(), ref.Stats.Search.EntropyCalcs())
		}
	}
}

func TestBuildValidation(t *testing.T) {
	empty := data.NewDataset("e", 1, []string{"A"})
	if _, err := Build(empty, Config{}); err == nil {
		t.Fatal("empty dataset should fail")
	}
	bad := data.NewDataset("b", 1, []string{"A"})
	bad.Add(5, pdf.Point(1))
	if _, err := Build(bad, Config{}); err == nil {
		t.Fatal("invalid dataset should fail")
	}
}

func TestBuildPureDatasetIsLeaf(t *testing.T) {
	ds := data.NewDataset("pure", 1, []string{"A", "B"})
	for i := 0; i < 10; i++ {
		ds.Add(0, pdf.Point(float64(i)))
	}
	tr, err := Build(ds, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if !tr.Root.IsLeaf() {
		t.Fatal("pure dataset should build a single leaf")
	}
	if tr.Root.Dist[0] != 1 || tr.Root.Dist[1] != 0 {
		t.Fatalf("leaf dist = %v", tr.Root.Dist)
	}
}

func TestMaxDepth(t *testing.T) {
	ds := buildRandomDataset(rand.New(rand.NewSource(2)), 60, 2, 3, 5)
	tr, err := Build(ds, Config{MaxDepth: 2, MinWeight: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	if tr.Stats.Depth > 3 { // 2 levels of tests + leaves
		t.Fatalf("depth = %d exceeds MaxDepth+1", tr.Stats.Depth)
	}
}

func TestMinWeightPrePruning(t *testing.T) {
	ds := buildRandomDataset(rand.New(rand.NewSource(3)), 30, 1, 2, 4)
	loose, _ := Build(ds, Config{MinWeight: 0.01})
	tight, _ := Build(ds, Config{MinWeight: 25})
	if tight.Stats.Nodes >= loose.Stats.Nodes {
		t.Fatalf("MinWeight=25 built %d nodes, loose built %d", tight.Stats.Nodes, loose.Stats.Nodes)
	}
}

func TestPostPruningShrinksTree(t *testing.T) {
	// Noisy labels force overfit subtrees that pessimistic pruning removes.
	rng := rand.New(rand.NewSource(4))
	ds := data.NewDataset("noisy", 1, []string{"A", "B"})
	for i := 0; i < 80; i++ {
		class := 0
		if rng.Float64() < 0.3 {
			class = 1
		}
		ds.Add(class, pdf.Point(rng.Float64()))
	}
	grown, _ := Build(ds, Config{MinWeight: 0.01})
	pruned, _ := Build(ds, Config{MinWeight: 0.01, PostPrune: true})
	if pruned.Stats.Nodes >= grown.Stats.Nodes {
		t.Fatalf("post-pruning did not shrink: %d vs %d nodes", pruned.Stats.Nodes, grown.Stats.Nodes)
	}
	if pruned.Stats.Pruned == 0 {
		t.Fatal("Stats.Pruned not recorded")
	}
}

func TestClassifyDistributionSumsToOne(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	ds := buildRandomDataset(rng, 50, 3, 4, 6)
	tr, err := Build(ds, Config{PostPrune: true})
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 50; trial++ {
		num := make([]*pdf.PDF, 3)
		for j := range num {
			c := rng.NormFloat64() * 3
			p, _ := pdf.Uniform(c, c+rng.Float64()*2, 7)
			num[j] = p
		}
		tu := &data.Tuple{Num: num, Weight: 1}
		dist := tr.Classify(tu)
		sum := 0.0
		for _, p := range dist {
			if p < -1e-12 {
				t.Fatalf("negative probability %v", p)
			}
			sum += p
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("distribution sums to %v", sum)
		}
	}
}

func TestClassifyMissingNumeric(t *testing.T) {
	ds := buildRandomDataset(rand.New(rand.NewSource(8)), 40, 2, 2, 4)
	tr, err := Build(ds, Config{})
	if err != nil {
		t.Fatal(err)
	}
	tu := &data.Tuple{Num: []*pdf.PDF{nil, nil}, Weight: 1}
	dist := tr.Classify(tu)
	sum := 0.0
	for _, p := range dist {
		sum += p
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("missing-value classification sums to %v", sum)
	}
}

func TestTrainMissingNumeric(t *testing.T) {
	ds := data.NewDataset("miss", 2, []string{"A", "B"})
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 40; i++ {
		class := i % 2
		var p0 *pdf.PDF
		if rng.Intn(4) != 0 { // 25% missing
			p0 = pdf.Point(float64(class) + rng.Float64()*0.5)
		}
		p1 := pdf.Point(rng.Float64())
		ds.Tuples = append(ds.Tuples, &data.Tuple{Num: []*pdf.PDF{p0, p1}, Class: class, Weight: 1})
	}
	tr, err := Build(ds, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if acc := selfAccuracy(t, tr, ds); acc < 0.7 {
		t.Fatalf("accuracy with missing values = %v, want >= 0.7", acc)
	}
}

func TestCategoricalSplit(t *testing.T) {
	ds := data.NewDataset("cat", 0, []string{"A", "B"})
	ds.CatAttrs = []data.Attribute{{Name: "color", Kind: data.Categorical, Domain: []string{"red", "blue", "green"}}}
	add := func(class, v int) {
		ds.Tuples = append(ds.Tuples, &data.Tuple{
			Cat:    []data.CatDist{data.NewCatPoint(v, 3)},
			Class:  class,
			Weight: 1,
		})
	}
	for i := 0; i < 5; i++ {
		add(0, 0) // red -> A
		add(1, 1) // blue -> B
		add(0, 2) // green -> A
	}
	tr, err := Build(ds, Config{MinWeight: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	if !tr.Root.Cat {
		t.Fatalf("root should be a categorical split:\n%s", tr.Dump())
	}
	if acc := selfAccuracy(t, tr, ds); acc != 1 {
		t.Fatalf("categorical accuracy = %v", acc)
	}
	// A fractionally uncertain test tuple: 60% blue, 40% red.
	tu := &data.Tuple{Cat: []data.CatDist{{0.4, 0.6, 0}}, Weight: 1}
	dist := tr.Classify(tu)
	if math.Abs(dist[0]-0.4) > 1e-9 || math.Abs(dist[1]-0.6) > 1e-9 {
		t.Fatalf("uncertain categorical classification = %v, want [0.4 0.6]", dist)
	}
}

func TestCategoricalNotReused(t *testing.T) {
	// With one categorical attribute and pure-by-value classes the tree
	// needs exactly one categorical level; reuse would loop forever given
	// MinWeight near zero. Mixed numeric noise forces deeper recursion.
	ds := data.NewDataset("catreuse", 1, []string{"A", "B"})
	ds.CatAttrs = []data.Attribute{{Name: "c", Kind: data.Categorical, Domain: []string{"x", "y"}}}
	rng := rand.New(rand.NewSource(10))
	for i := 0; i < 30; i++ {
		class := i % 2
		ds.Tuples = append(ds.Tuples, &data.Tuple{
			Num:    []*pdf.PDF{pdf.Point(rng.Float64())},
			Cat:    []data.CatDist{{0.5, 0.5}},
			Class:  class,
			Weight: 1,
		})
	}
	tr, err := Build(ds, Config{MinWeight: 0.5, MaxDepth: 12})
	if err != nil {
		t.Fatal(err)
	}
	// Walk every path and verify the categorical attribute repeats on no path.
	var walk func(n *Node, seen bool)
	walk = func(n *Node, seen bool) {
		if n == nil || n.IsLeaf() {
			return
		}
		if n.Cat {
			if seen {
				t.Fatal("categorical attribute reused on a path")
			}
			seen = true
		}
		for _, ch := range n.children() {
			walk(ch, seen)
		}
	}
	walk(tr.Root, false)
}

func TestRules(t *testing.T) {
	ds := paperStyleDataset()
	tr, err := Build(ds, Config{MinWeight: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	rules := tr.Rules()
	if len(rules) != tr.Stats.Leaves {
		t.Fatalf("%d rules for %d leaves", len(rules), tr.Stats.Leaves)
	}
	for _, r := range rules {
		if r.Class != "A" && r.Class != "B" {
			t.Fatalf("rule class %q", r.Class)
		}
		if r.Confidence < 0 || r.Confidence > 1 {
			t.Fatalf("rule confidence %v", r.Confidence)
		}
		if r.String() == "" {
			t.Fatal("empty rule string")
		}
	}
}

func TestDump(t *testing.T) {
	ds := paperStyleDataset()
	tr, _ := Build(ds, Config{MinWeight: 0.01})
	d := tr.Dump()
	if d == "" || tr.String() == "" {
		t.Fatal("empty dump")
	}
}

func TestJSONRoundTrip(t *testing.T) {
	ds := buildRandomDataset(rand.New(rand.NewSource(12)), 30, 2, 3, 5)
	tr, err := Build(ds, Config{})
	if err != nil {
		t.Fatal(err)
	}
	blob, err := json.Marshal(tr)
	if err != nil {
		t.Fatal(err)
	}
	var back Tree
	if err := json.Unmarshal(blob, &back); err != nil {
		t.Fatal(err)
	}
	if back.Stats.Nodes != tr.Stats.Nodes {
		t.Fatalf("node count changed: %d vs %d", back.Stats.Nodes, tr.Stats.Nodes)
	}
	for _, tu := range ds.Tuples {
		a, b := tr.Classify(tu), back.Classify(tu)
		for c := range a {
			if math.Abs(a[c]-b[c]) > 1e-12 {
				t.Fatalf("deserialised tree classifies differently")
			}
		}
	}
}

func TestJSONUnmarshalErrors(t *testing.T) {
	var tr Tree
	if err := json.Unmarshal([]byte(`{"classes":["A"],"root":null}`), &tr); err == nil {
		t.Fatal("nil root accepted")
	}
	if err := json.Unmarshal([]byte(`{bad`), &tr); err == nil {
		t.Fatal("malformed JSON accepted")
	}
	if err := json.Unmarshal([]byte(`{"classes":["A","B"],"root":{"dist":[1],"w":1}}`), &tr); err == nil {
		t.Fatal("wrong leaf arity accepted")
	}
	if err := json.Unmarshal([]byte(`{"classes":["A"],"root":{"w":1}}`), &tr); err == nil {
		t.Fatal("childless internal node accepted")
	}
}

func TestNormalQuantile(t *testing.T) {
	cases := []struct{ p, want float64 }{
		{0.5, 0},
		{0.75, 0.6744897501},
		{0.975, 1.959963985},
		{0.025, -1.959963985},
		{0.0001, -3.719016485},
	}
	for _, c := range cases {
		if got := normalQuantile(c.p); math.Abs(got-c.want) > 1e-6 {
			t.Fatalf("normalQuantile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
	if !math.IsInf(normalQuantile(0), -1) || !math.IsInf(normalQuantile(1), 1) {
		t.Fatal("extreme quantiles should be infinite")
	}
}

func TestPessimisticErrors(t *testing.T) {
	// Zero observed errors still yields a positive pessimistic estimate.
	if e := pessimisticErrors(10, 0, 0.25); e <= 0 {
		t.Fatalf("pessimistic errors for clean leaf = %v, want > 0", e)
	}
	// More observed errors give larger estimates.
	if pessimisticErrors(10, 4, 0.25) <= pessimisticErrors(10, 1, 0.25) {
		t.Fatal("estimate not monotone in observed errors")
	}
	// Estimate never exceeds the node weight.
	if e := pessimisticErrors(5, 5, 0.25); e > 5 {
		t.Fatalf("estimate %v exceeds weight", e)
	}
	if pessimisticErrors(0, 0, 0.25) != 0 {
		t.Fatal("zero-weight node should estimate zero errors")
	}
}

// TestWeightConservation: the fractional partition of training tuples must
// conserve total weight at every split.
func TestWeightConservation(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	ds := buildRandomDataset(rng, 30, 2, 2, 6)
	b := &builder{
		cfg:     Config{}.withDefaults(),
		classes: 2,
		numAttr: 2,
	}
	tuples := ds.Tuples
	res := b.getFinder().Best(tuples, 2, 2)
	if !res.Found {
		t.Skip("no split found")
	}
	left, right := b.partitionNumeric(tuples, res.Attr, res.Z)
	var wl, wr, w float64
	for _, tu := range left {
		wl += tu.Weight
	}
	for _, tu := range right {
		wr += tu.Weight
	}
	for _, tu := range tuples {
		w += tu.Weight
	}
	if math.Abs(wl+wr-w) > 1e-9 {
		t.Fatalf("weight not conserved: %v + %v != %v", wl, wr, w)
	}
}
