package core

import (
	"math/rand"
	"sync"
	"testing"

	"udt/internal/data"
	"udt/internal/pdf"
	"udt/internal/split"
)

// TestBuildTerminatesOnHeavyOverlap: with every pdf overlapping every
// other, fractional splitting keeps producing fractional tuples; the
// builder must still terminate because each child's candidate set strictly
// shrinks. Unlimited depth, near-zero pre-pruning.
func TestBuildTerminatesOnHeavyOverlap(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	ds := data.NewDataset("overlap", 1, []string{"A", "B"})
	for i := 0; i < 40; i++ {
		// All pdfs share the domain [0, 1] on slightly jittered grids.
		a := rng.Float64() * 0.01
		p, err := pdf.Uniform(a, a+1, 12)
		if err != nil {
			t.Fatal(err)
		}
		ds.Add(i%2, p)
	}
	tree, err := Build(ds, Config{MinWeight: 1e-6, MinGain: 1e-12})
	if err != nil {
		t.Fatal(err)
	}
	if tree.Stats.Nodes == 0 {
		t.Fatal("no tree built")
	}
	// Classification remains a proper distribution even through the very
	// deep fractional descent.
	dist := tree.Classify(ds.Tuples[0])
	sum := dist[0] + dist[1]
	if sum < 0.999 || sum > 1.001 {
		t.Fatalf("distribution sums to %v", sum)
	}
}

// TestBuildIdenticalTuples: tuples that cannot be discerned at all must
// yield a single leaf with the class proportions, not an infinite loop.
func TestBuildIdenticalTuples(t *testing.T) {
	ds := data.NewDataset("identical", 1, []string{"A", "B"})
	for i := 0; i < 12; i++ {
		ds.Add(i%3%2, pdf.Point(5))
	}
	tree, err := Build(ds, Config{MinWeight: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	if !tree.Root.IsLeaf() {
		t.Fatalf("indiscernible tuples should form one leaf:\n%s", tree.Dump())
	}
}

// TestBuildExtremeWeights: very small and very large tuple weights must
// not break normalisation or split search.
func TestBuildExtremeWeights(t *testing.T) {
	ds := data.NewDataset("weights", 1, []string{"A", "B"})
	for i := 0; i < 20; i++ {
		tu := ds.Add(i%2, pdf.Point(float64(i%2)+0.01*float64(i)))
		if i%2 == 0 {
			tu.Weight = 1e-6
		} else {
			tu.Weight = 1e6
		}
	}
	tree, err := Build(ds, Config{MinWeight: 1e-9})
	if err != nil {
		t.Fatal(err)
	}
	for _, tu := range ds.Tuples {
		dist := tree.Classify(tu)
		sum := 0.0
		for _, p := range dist {
			sum += p
		}
		if sum < 0.999 || sum > 1.001 {
			t.Fatalf("distribution sums to %v under extreme weights", sum)
		}
	}
}

// TestClassifyConcurrent: a built tree must be safe for concurrent
// classification (read-only traversal); run with -race.
func TestClassifyConcurrent(t *testing.T) {
	ds := buildRandomDataset(rand.New(rand.NewSource(72)), 80, 2, 3, 8)
	tree, err := Build(ds, Config{Strategy: split.GP})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				tu := ds.Tuples[(g*50+i)%ds.Len()]
				dist := tree.Classify(tu)
				sum := 0.0
				for _, p := range dist {
					sum += p
				}
				if sum < 0.999 || sum > 1.001 {
					t.Errorf("goroutine %d: distribution sums to %v", g, sum)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}

// TestBuildManyClasses: class counts beyond a handful (the paper's Vowel
// has 11) stress the per-class buffers.
func TestBuildManyClasses(t *testing.T) {
	const classes = 15
	names := make([]string, classes)
	for i := range names {
		names[i] = string(rune('a' + i))
	}
	ds := data.NewDataset("many", 1, names)
	rng := rand.New(rand.NewSource(73))
	for i := 0; i < classes*12; i++ {
		c := i % classes
		p, err := pdf.Gaussian(float64(c), 0.2, float64(c)-0.5, float64(c)+0.5, 8)
		if err != nil {
			t.Fatal(err)
		}
		_ = rng
		ds.Add(c, p)
	}
	tree, err := Build(ds, Config{Strategy: split.ES})
	if err != nil {
		t.Fatal(err)
	}
	correct := 0
	for _, tu := range ds.Tuples {
		if tree.Predict(tu) == tu.Class {
			correct++
		}
	}
	if acc := float64(correct) / float64(ds.Len()); acc < 0.95 {
		t.Fatalf("many-class accuracy = %v", acc)
	}
}

// TestBuildSingleTuplePerClass: minimum viable dataset.
func TestBuildSingleTuplePerClass(t *testing.T) {
	ds := data.NewDataset("mini", 1, []string{"A", "B"})
	ds.Add(0, pdf.Point(0))
	ds.Add(1, pdf.Point(1))
	tree, err := Build(ds, Config{MinWeight: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	if tree.Predict(ds.Tuples[0]) != 0 || tree.Predict(ds.Tuples[1]) != 1 {
		t.Fatal("two-tuple dataset misclassified")
	}
}
