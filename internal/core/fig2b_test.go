package core

import (
	"math"
	"testing"

	"udt/internal/data"
	"udt/internal/pdf"
)

// TestFig2bExactNumbers reproduces the paper's §4.2 hand computation
// digit for digit. The post-pruned distribution-based tree of Fig 2b has a
// root split at -1 with leaf distributions (A:0.80, B:0.20) on the left
// and (A:0.212, B:0.788) on the right. Classifying tuple 3 of Table 1
// (values -1, +1, +10 with masses 5/8, 1/8, 2/8) gives
//
//	P(A) = 5/8 × 0.80 + 3/8 × 0.212 = 0.5795
//	P(B) = 5/8 × 0.20 + 3/8 × 0.788 = 0.4205
//
// so tuple 3 is classified "A".
func TestFig2bExactNumbers(t *testing.T) {
	tree := &Tree{
		Classes:  []string{"A", "B"},
		NumAttrs: []data.Attribute{{Name: "A1", Kind: data.Numeric}},
		Root: &Node{
			Attr: 0, Split: -1, W: 6,
			Left:  &Node{Dist: []float64{0.80, 0.20}, W: 2.5},
			Right: &Node{Dist: []float64{0.212, 0.788}, W: 3.5},
		},
	}
	tuple3 := &data.Tuple{
		Num:    []*pdf.PDF{pdf.MustNew([]float64{-1, 1, 10}, []float64{5, 1, 2})},
		Class:  0,
		Weight: 1,
	}
	dist := tree.Classify(tuple3)
	if math.Abs(dist[0]-0.5795) > 1e-12 {
		t.Fatalf("P(A) = %v, paper says 0.5795", dist[0])
	}
	if math.Abs(dist[1]-0.4205) > 1e-12 {
		t.Fatalf("P(B) = %v, paper says 0.4205", dist[1])
	}
	if tree.Predict(tuple3) != 0 {
		t.Fatal("tuple 3 should be classified as class A")
	}
}

// TestFig1WeightFlow reproduces the Fig 1 walk-through structure: a test
// tuple with pL = 0.3 at the root splits into fractional tuples of weight
// 0.3 and 0.7, and the sub-pdfs are renormalised by 1/w.
func TestFig1WeightFlow(t *testing.T) {
	// A pdf on [-2.5, 2] with exactly 0.3 mass at locations <= -1.
	p := pdf.MustNew(
		[]float64{-2.5, -1, 0, 2},
		[]float64{0.15, 0.15, 0.35, 0.35},
	)
	left, right, pL := p.SplitAt(-1)
	if math.Abs(pL-0.3) > 1e-12 {
		t.Fatalf("pL = %v, want 0.3", pL)
	}
	// Left part: renormalised by 1/0.3.
	if math.Abs(left.Mass(0)-0.5) > 1e-12 {
		t.Fatalf("left mass not renormalised: %v", left.Mass(0))
	}
	// Right part: renormalised by 1/0.7.
	if math.Abs(right.Mass(0)-0.5) > 1e-12 {
		t.Fatalf("right mass not renormalised: %v", right.Mass(0))
	}
	_ = right
}
