package core

import (
	"fmt"
	"strings"
)

// Rule is one root-to-leaf path rendered as a classification rule.
type Rule struct {
	Conditions []string
	Class      string  // most probable class at the leaf
	Confidence float64 // probability of Class at the leaf
	Support    float64 // training weight reaching the leaf
}

// String renders the rule in "IF ... THEN class (conf, support)" form.
func (r Rule) String() string {
	cond := "TRUE"
	if len(r.Conditions) > 0 {
		cond = strings.Join(r.Conditions, " AND ")
	}
	return fmt.Sprintf("IF %s THEN %s (confidence %.3f, support %.2f)", cond, r.Class, r.Confidence, r.Support)
}

// Rules extracts one rule per leaf, the "rules can be extracted from
// decision trees easily" property the paper's introduction highlights.
func (t *Tree) Rules() []Rule {
	var rules []Rule
	t.collectRules(t.Root, nil, &rules)
	return rules
}

func (t *Tree) collectRules(n *Node, conds []string, out *[]Rule) {
	if n == nil {
		return
	}
	if n.IsLeaf() {
		best, bestP := 0, 0.0
		for c, p := range n.Dist {
			if p > bestP {
				best, bestP = c, p
			}
		}
		*out = append(*out, Rule{
			Conditions: append([]string(nil), conds...),
			Class:      t.Classes[best],
			Confidence: bestP,
			Support:    n.W,
		})
		return
	}
	if n.Cat {
		name := t.CatAttrs[n.Attr].Name
		for v, kid := range n.Kids {
			cond := fmt.Sprintf("%s = %s", name, t.CatAttrs[n.Attr].Domain[v])
			t.collectRules(kid, append(conds, cond), out)
		}
		return
	}
	name := t.NumAttrs[n.Attr].Name
	t.collectRules(n.Left, append(conds, fmt.Sprintf("%s <= %.6g", name, n.Split)), out)
	t.collectRules(n.Right, append(conds, fmt.Sprintf("%s > %.6g", name, n.Split)), out)
}

// Dump renders the tree as an indented text diagram, one line per node.
func (t *Tree) Dump() string {
	var b strings.Builder
	t.dump(&b, t.Root, 0, "")
	return b.String()
}

func (t *Tree) dump(b *strings.Builder, n *Node, depth int, label string) {
	if n == nil {
		return
	}
	indent := strings.Repeat("  ", depth)
	if label != "" {
		label += ": "
	}
	if n.IsLeaf() {
		best, bestP := 0, 0.0
		for c, p := range n.Dist {
			if p > bestP {
				best, bestP = c, p
			}
		}
		fmt.Fprintf(b, "%s%sleaf %s (p=%.3f, w=%.2f)\n", indent, label, t.Classes[best], bestP, n.W)
		return
	}
	if n.Cat {
		fmt.Fprintf(b, "%s%ssplit on %s (w=%.2f)\n", indent, label, t.CatAttrs[n.Attr].Name, n.W)
		for v, kid := range n.Kids {
			t.dump(b, kid, depth+1, "= "+t.CatAttrs[n.Attr].Domain[v])
		}
		return
	}
	fmt.Fprintf(b, "%s%s%s <= %.6g? (w=%.2f)\n", indent, label, t.NumAttrs[n.Attr].Name, n.Split, n.W)
	t.dump(b, n.Left, depth+1, "yes")
	t.dump(b, n.Right, depth+1, "no")
}
