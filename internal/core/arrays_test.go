package core

import (
	"math/rand"
	"testing"

	"udt/internal/data"
)

// TestArraysRoundTrip: an engine rebuilt over its own exported arrays must
// be indistinguishable from the original — byte-identical distributions and
// identical upper bounds, since the arrays are shared, not copied.
func TestArraysRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	ds := randomMixedDataset(rng, 150, 3, 3, 9, true)
	tree, err := Build(ds, Config{MinWeight: 1})
	if err != nil {
		t.Fatal(err)
	}
	c, err := tree.Compile()
	if err != nil {
		t.Fatal(err)
	}
	a := c.Arrays()
	if a.Root != 0 || a.Nodes != c.NumNodes() || len(a.Kind) != c.NumNodes() {
		t.Fatalf("arrays root=%d nodes=%d kind=%d, engine has %d nodes", a.Root, a.Nodes, len(a.Kind), c.NumNodes())
	}
	c2, err := NewCompiledFromArrays(a)
	if err != nil {
		t.Fatal(err)
	}
	probes := randomProbes(rng, ds, 200)
	for i, tu := range probes {
		want, got := c.Classify(tu), c2.Classify(tu)
		for ci := range want {
			if want[ci] != got[ci] {
				t.Fatalf("probe %d: rebuilt dist %v, original %v", i, got, want)
			}
		}
	}
	ub, ub2 := c.ClassUpperBounds(), c2.ClassUpperBounds()
	for ci := range ub {
		if ub[ci] != ub2[ci] {
			t.Fatalf("upper bounds drifted: %v vs %v", ub2, ub)
		}
	}
}

// TestNewCompiledFromArraysValidation: shape errors must be rejected with a
// diagnostic instead of building an engine that faults mid-descent.
func TestNewCompiledFromArraysValidation(t *testing.T) {
	base := func() CompiledArrays {
		return CompiledArrays{
			Classes: []string{"a", "b"},
			Kind:    []uint8{KindLeaf},
			Attr:    []int32{0},
			Split:   []float64{0},
			Start:   []int32{0, 0},
			W:       []float64{1},
			Dist:    []float64{0.5, 0.5},
			UB:      []float64{0.5, 0.5},
			Root:    0,
			Nodes:   1,
		}
	}
	if _, err := NewCompiledFromArrays(base()); err != nil {
		t.Fatalf("valid arrays rejected: %v", err)
	}
	mutations := map[string]func(*CompiledArrays){
		"no classes":       func(a *CompiledArrays) { a.Classes = nil },
		"no nodes":         func(a *CompiledArrays) { a.Kind = nil },
		"attr length":      func(a *CompiledArrays) { a.Attr = nil },
		"split length":     func(a *CompiledArrays) { a.Split = append(a.Split, 1) },
		"w length":         func(a *CompiledArrays) { a.W = nil },
		"start length":     func(a *CompiledArrays) { a.Start = a.Start[:1] },
		"dist arity":       func(a *CompiledArrays) { a.Dist = a.Dist[:1] },
		"ub arity":         func(a *CompiledArrays) { a.UB = a.UB[:1] },
		"root negative":    func(a *CompiledArrays) { a.Root = -1 },
		"root range":       func(a *CompiledArrays) { a.Root = 1 },
		"nodes zero":       func(a *CompiledArrays) { a.Nodes = 0 },
		"nodes overcommit": func(a *CompiledArrays) { a.Nodes = 2 },
	}
	for name, mutate := range mutations {
		a := base()
		mutate(&a)
		if _, err := NewCompiledFromArrays(a); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

// TestSharedArenaRoot: engines whose root is not node 0 of a shared arena
// must descend from their own root. Two single-leaf trees packed into one
// arena classify to their own leaf distributions.
func TestSharedArenaRoot(t *testing.T) {
	a := CompiledArrays{
		Classes: []string{"a", "b"},
		Kind:    []uint8{KindLeaf, KindLeaf},
		Attr:    []int32{0, 0},
		Split:   []float64{0, 0},
		Start:   []int32{0, 0, 0},
		W:       []float64{1, 1},
		Dist:    []float64{1, 0, 0, 1},
		UB:      []float64{1, 1},
		Root:    1,
		Nodes:   1,
	}
	c, err := NewCompiledFromArrays(a)
	if err != nil {
		t.Fatal(err)
	}
	tu := &data.Tuple{Weight: 1}
	got := c.Classify(tu)
	if got[0] != 0 || got[1] != 1 {
		t.Fatalf("root=1 engine classified %v, want [0 1]", got)
	}
	if c.NumNodes() != 1 {
		t.Fatalf("NumNodes = %d, want 1", c.NumNodes())
	}
}

// TestDecompileRoundTrip: Decompile must reconstruct a tree whose recursive
// classification — and whose re-compiled engine — matches the original
// engine exactly on every probe.
func TestDecompileRoundTrip(t *testing.T) {
	for seed := int64(0); seed < 4; seed++ {
		rng := rand.New(rand.NewSource(100 + seed))
		ds := randomMixedDataset(rng, 150, 3, 3, 9, seed%2 == 0)
		tree, err := Build(ds, Config{MinWeight: 1, PostPrune: seed%2 == 1})
		if err != nil {
			t.Fatal(err)
		}
		c, err := tree.Compile()
		if err != nil {
			t.Fatal(err)
		}
		back, err := c.Decompile()
		if err != nil {
			t.Fatal(err)
		}
		if back.Stats.Nodes != tree.Stats.Nodes || back.Stats.Leaves != tree.Stats.Leaves || back.Stats.Depth != tree.Stats.Depth {
			t.Fatalf("seed %d: decompiled stats %+v, original %+v", seed, back.Stats, tree.Stats)
		}
		rec, err := back.Compile()
		if err != nil {
			t.Fatalf("seed %d: recompile of decompiled tree: %v", seed, err)
		}
		probes := append(append([]*data.Tuple{}, ds.Tuples...), randomProbes(rng, ds, 100)...)
		for i, tu := range probes {
			want := c.Classify(tu)
			viaTree := back.Classify(tu)
			viaRec := rec.Classify(tu)
			for ci := range want {
				if want[ci] != viaTree[ci] || want[ci] != viaRec[ci] {
					t.Fatalf("seed %d probe %d: original %v, decompiled tree %v, recompiled %v",
						seed, i, want, viaTree, viaRec)
				}
			}
		}
	}
}

// TestDecompileRejectsCycles: Decompile terminates with an error on a
// malformed arena containing a cycle rather than descending forever.
func TestDecompileRejectsCycles(t *testing.T) {
	c := &Compiled{
		Classes: []string{"a", "b"},
		kind:    []uint8{ckNum, ckNum},
		attr:    []int32{0, 0},
		split:   []float64{0, 0},
		start:   []int32{0, 2, 4},
		child:   []int32{1, 1, 0, 0},
		w:       []float64{1, 1},
		dist:    []float64{0, 0, 0, 0},
		ub:      []float64{1, 1},
		root:    0,
		nodes:   2,
	}
	if _, err := c.Decompile(); err == nil {
		t.Fatal("cyclic arena decompiled without error")
	}
}
