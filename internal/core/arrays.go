package core

import (
	"fmt"

	"udt/internal/data"
)

// This file is the boundary between the compiled engine and external storage
// formats: CompiledArrays exposes the flat CSR layout as plain slices, and
// NewCompiledFromArrays rebuilds an engine over slices owned by someone else
// (the binary model container points them straight into an mmap'd file).

// Exported node-kind values of the compiled layout, for storage formats that
// serialize the kind array. They are stable wire constants: changing them
// breaks every encoded model.
const (
	KindLeaf uint8 = ckLeaf
	KindNum  uint8 = ckNum
	KindCat  uint8 = ckCat
)

// CompiledArrays is the flat struct-of-arrays form of a Compiled engine. The
// slices follow the layout documented on Compiled: node i's children are
// Child[Start[i]:Start[i+1]] and row i of the Dist arena is
// Dist[i*C:(i+1)*C] for C = len(Classes). Root is the descent entry point
// and Nodes the count of nodes reachable from it; the arrays may hold more
// nodes than that when several engines share one arena.
type CompiledArrays struct {
	Classes  []string
	NumAttrs []data.Attribute
	CatAttrs []data.Attribute

	Kind  []uint8
	Attr  []int32
	Split []float64
	Start []int32
	Child []int32
	W     []float64
	Dist  []float64
	UB    []float64 // per-class emission upper bounds (see ClassUpperBounds)
	Root  int32
	Nodes int
}

// Arrays returns the engine's flat arrays. The slices alias the engine's
// internal storage and must not be mutated.
func (c *Compiled) Arrays() CompiledArrays {
	return CompiledArrays{
		Classes:  c.Classes,
		NumAttrs: c.NumAttrs,
		CatAttrs: c.CatAttrs,
		Kind:     c.kind,
		Attr:     c.attr,
		Split:    c.split,
		Start:    c.start,
		Child:    c.child,
		W:        c.w,
		Dist:     c.dist,
		UB:       c.ub,
		Root:     c.root,
		Nodes:    c.nodes,
	}
}

// NewCompiledFromArrays constructs an engine directly over the given arrays
// without copying them; the caller must keep the backing memory alive and
// immutable for the engine's lifetime. Only shape consistency is checked
// here — length agreement across the arrays, the root index, the UB arity.
// Structural soundness of the node graph (kinds in range, child pointers
// acyclic and in bounds, attribute indices within the schema) is the
// responsibility of the decoder that produced the arrays; internal/binfmt
// validates all of it before calling this.
func NewCompiledFromArrays(a CompiledArrays) (*Compiled, error) {
	n := len(a.Kind)
	nc := len(a.Classes)
	if nc == 0 {
		return nil, fmt.Errorf("core: compiled arrays have no classes")
	}
	if n == 0 {
		return nil, fmt.Errorf("core: compiled arrays have no nodes")
	}
	if len(a.Attr) != n || len(a.Split) != n || len(a.W) != n {
		return nil, fmt.Errorf("core: compiled array lengths disagree: kind=%d attr=%d split=%d w=%d",
			n, len(a.Attr), len(a.Split), len(a.W))
	}
	if len(a.Start) != n+1 {
		return nil, fmt.Errorf("core: start array has %d entries, want nodes+1 = %d", len(a.Start), n+1)
	}
	if len(a.Dist) != n*nc {
		return nil, fmt.Errorf("core: dist arena has %d entries, want nodes*classes = %d", len(a.Dist), n*nc)
	}
	if len(a.UB) != nc {
		return nil, fmt.Errorf("core: upper-bound row has %d entries, want %d classes", len(a.UB), nc)
	}
	if a.Root < 0 || int(a.Root) >= n {
		return nil, fmt.Errorf("core: root %d out of range [0,%d)", a.Root, n)
	}
	if a.Nodes <= 0 || a.Nodes > n {
		return nil, fmt.Errorf("core: reachable node count %d out of range (0,%d]", a.Nodes, n)
	}
	return &Compiled{
		Classes:  a.Classes,
		NumAttrs: a.NumAttrs,
		CatAttrs: a.CatAttrs,
		kind:     a.Kind,
		attr:     a.Attr,
		split:    a.Split,
		start:    a.Start,
		child:    a.Child,
		w:        a.W,
		dist:     a.Dist,
		ub:       a.UB,
		root:     a.Root,
		nodes:    a.Nodes,
	}, nil
}
