package boost_test

import (
	"encoding/json"
	"math"
	"math/rand"
	"testing"

	"udt/internal/boost"
	"udt/internal/core"
	"udt/internal/data"
	"udt/internal/eval"
	"udt/internal/forest"
	"udt/internal/pdf"
)

// spiralDataset builds a two-attribute, three-class dataset with interleaved
// class regions: hard enough that a depth-limited tree misclassifies some
// training tuples (so boosting has rounds to run), easy enough that boosting
// visibly helps.
func spiralDataset(rng *rand.Rand, n int) *data.Dataset {
	ds := data.NewDataset("spiral", 2, []string{"a", "b", "c"})
	for i := 0; i < n; i++ {
		c := i % 3
		angle := rng.Float64()*2*math.Pi/3 + float64(c)*2*math.Pi/3
		r := 1 + rng.Float64()*2
		x := r * math.Cos(angle)
		y := r * math.Sin(angle)
		px, _ := pdf.Uniform(x-0.3, x+0.3, 7)
		py, _ := pdf.Uniform(y-0.3, y+0.3, 7)
		ds.Add(c, px, py)
	}
	return ds
}

// stumpConfig limits members to shallow trees so no single round fits the
// training set perfectly.
func stumpConfig() core.Config {
	return core.Config{MaxDepth: 2, MinWeight: 2}
}

// TestTrainImprovesOverSingleTree: the boosted ensemble's training accuracy
// must beat the first member's (a single tree built under the identical
// configuration sees the uniform weights of round one).
func TestTrainImprovesOverSingleTree(t *testing.T) {
	ds := spiralDataset(rand.New(rand.NewSource(3)), 240)
	single, err := core.Build(ds, stumpConfig())
	if err != nil {
		t.Fatal(err)
	}
	boosted, err := boost.Train(ds, boost.Config{Rounds: 20, TreeConfig: stumpConfig()})
	if err != nil {
		t.Fatal(err)
	}
	singleAcc := eval.Accuracy(single, ds)
	boostAcc := eval.ForestAccuracy(boosted, ds)
	if boosted.NumTrees() < 2 {
		t.Fatalf("boosting stopped after %d rounds; the task is too easy for the test to mean anything", boosted.NumTrees())
	}
	if boostAcc <= singleAcc {
		t.Fatalf("boosted training accuracy %.4f does not beat the single depth-limited tree's %.4f", boostAcc, singleAcc)
	}
	if boosted.Kind() != forest.KindBoosted {
		t.Fatalf("kind = %q", boosted.Kind())
	}
}

// TestVoteWeightsPositiveAndOrdered: every alpha must be positive and the
// ensemble must report one per member.
func TestVoteWeights(t *testing.T) {
	ds := spiralDataset(rand.New(rand.NewSource(5)), 180)
	f, err := boost.Train(ds, boost.Config{Rounds: 8, TreeConfig: stumpConfig()})
	if err != nil {
		t.Fatal(err)
	}
	ws := f.Weights()
	if len(ws) != f.NumTrees() {
		t.Fatalf("%d weights for %d trees", len(ws), f.NumTrees())
	}
	for i, w := range ws {
		if !(w > 0) || math.IsInf(w, 0) {
			t.Fatalf("member %d has vote weight %v", i, w)
		}
	}
}

// TestLearningRateShrinksAlphas: halving the learning rate must halve every
// round-one alpha (later rounds diverge because the weight trajectories do).
func TestLearningRateShrinksAlphas(t *testing.T) {
	ds := spiralDataset(rand.New(rand.NewSource(7)), 180)
	full, err := boost.Train(ds, boost.Config{Rounds: 1, TreeConfig: stumpConfig()})
	if err != nil {
		t.Fatal(err)
	}
	half, err := boost.Train(ds, boost.Config{Rounds: 1, LearningRate: 0.5, TreeConfig: stumpConfig()})
	if err != nil {
		t.Fatal(err)
	}
	fw, hw := full.Weights()[0], half.Weights()[0]
	if math.Abs(hw-fw/2) > 1e-12 {
		t.Fatalf("learning rate 0.5 alpha %v is not half of %v", hw, fw)
	}
}

// TestPerfectMemberStopsEarly: on a trivially separable dataset the first
// unrestricted member is perfect, so training must stop with exactly one
// member carrying the capped vote weight.
func TestPerfectMemberStopsEarly(t *testing.T) {
	ds := data.NewDataset("sep", 1, []string{"lo", "hi"})
	for i := 0; i < 40; i++ {
		c := i % 2
		ds.Add(c, pdf.Point(float64(c*10)+float64(i%7)/10))
	}
	f, err := boost.Train(ds, boost.Config{Rounds: 12, TreeConfig: core.Config{MinWeight: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if f.NumTrees() != 1 {
		t.Fatalf("perfect member did not stop training: %d trees", f.NumTrees())
	}
	if acc := eval.ForestAccuracy(f, ds); acc != 1 {
		t.Fatalf("perfect ensemble has accuracy %v", acc)
	}
}

// TestDeterministicAcrossWorkers: the serialised model must be byte-identical
// at any Workers value and across re-runs (the boost twin of the forest
// determinism guarantee; the cross-model matrix lives in the root package).
func TestDeterministicAcrossWorkers(t *testing.T) {
	ds := spiralDataset(rand.New(rand.NewSource(11)), 150)
	var want []byte
	for _, workers := range []int{1, 3, 8} {
		cfg := boost.Config{Rounds: 6, Workers: workers, TreeConfig: stumpConfig()}
		cfg.TreeConfig.Workers = workers
		f, err := boost.Train(ds, cfg)
		if err != nil {
			t.Fatal(err)
		}
		blob, err := json.Marshal(f)
		if err != nil {
			t.Fatal(err)
		}
		if want == nil {
			want = blob
			continue
		}
		if string(blob) != string(want) {
			t.Fatalf("workers=%d serialises differently", workers)
		}
	}
}

// TestTrainErrors covers the rejection paths: empty data, one class, bad
// learning rates, and a first round no better than chance.
func TestTrainErrors(t *testing.T) {
	empty := data.NewDataset("empty", 1, []string{"a", "b"})
	if _, err := boost.Train(empty, boost.Config{}); err == nil {
		t.Error("empty dataset accepted")
	}

	oneClass := data.NewDataset("one", 1, []string{"only"})
	oneClass.Add(0, pdf.Point(1))
	if _, err := boost.Train(oneClass, boost.Config{}); err == nil {
		t.Error("single-class dataset accepted")
	}

	ds := spiralDataset(rand.New(rand.NewSource(13)), 60)
	for _, lr := range []float64{-1, math.NaN(), math.Inf(1)} {
		if _, err := boost.Train(ds, boost.Config{LearningRate: lr, TreeConfig: stumpConfig()}); err == nil {
			t.Errorf("LearningRate %v accepted", lr)
		}
	}

	// Pure label noise: two identical point tuples per pair with opposite
	// classes. No split separates them, so round one sits at chance and must
	// fail loudly rather than return an empty ensemble.
	noise := data.NewDataset("noise", 1, []string{"a", "b"})
	for i := 0; i < 30; i++ {
		noise.Add(i%2, pdf.Point(float64(i/2)))
	}
	if _, err := boost.Train(noise, boost.Config{TreeConfig: core.Config{MaxDepth: 1, MinWeight: 30}}); err == nil {
		t.Error("chance-level first round accepted")
	}
}

// TestRoundTripThroughContainer: a boosted ensemble must survive the v2
// container byte-for-byte in behaviour — identical predictions, kind and
// weights after decode.
func TestRoundTripThroughContainer(t *testing.T) {
	ds := spiralDataset(rand.New(rand.NewSource(17)), 150)
	f, err := boost.Train(ds, boost.Config{Rounds: 8, TreeConfig: stumpConfig()})
	if err != nil {
		t.Fatal(err)
	}
	blob, err := json.Marshal(f)
	if err != nil {
		t.Fatal(err)
	}
	var back forest.Forest
	if err := json.Unmarshal(blob, &back); err != nil {
		t.Fatal(err)
	}
	if back.Kind() != forest.KindBoosted {
		t.Fatalf("restored kind = %q", back.Kind())
	}
	bw, fw := back.Weights(), f.Weights()
	if len(bw) != len(fw) {
		t.Fatalf("restored %d weights, want %d", len(bw), len(fw))
	}
	for i := range fw {
		if bw[i] != fw[i] {
			t.Fatalf("weight %d: restored %v, trained %v", i, bw[i], fw[i])
		}
	}
	for i, tu := range ds.Tuples {
		if got, want := back.Predict(tu), f.Predict(tu); got != want {
			t.Fatalf("tuple %d: restored predicts %d, trained %d", i, got, want)
		}
		gd, wd := back.Classify(tu), f.Classify(tu)
		for c := range wd {
			if gd[c] != wd[c] {
				t.Fatalf("tuple %d class %d: restored %v, trained %v", i, c, gd[c], wd[c])
			}
		}
	}
}

// TestWeightsDoNotLeakIntoSource: Train must leave the caller's tuple
// weights untouched — reweighting happens on clones.
func TestWeightsDoNotLeakIntoSource(t *testing.T) {
	ds := spiralDataset(rand.New(rand.NewSource(19)), 90)
	if _, err := boost.Train(ds, boost.Config{Rounds: 6, TreeConfig: stumpConfig()}); err != nil {
		t.Fatal(err)
	}
	for i, tu := range ds.Tuples {
		if tu.Weight != 1 {
			t.Fatalf("tuple %d weight mutated to %v", i, tu.Weight)
		}
	}
}
