// Package boost implements AdaBoost-style weighted ensembles (SAMME, the
// multi-class generalisation of AdaBoost.M1) over uncertain decision trees.
//
// Boosting is the paper-native ensemble for UDT: every tuple already carries
// a fractional weight — the w of §3.2 that fractional tuples split across
// branches during construction — so a boosting round trains on reweighted
// tuples simply by handing core.Build a dataset whose tuple weights ARE the
// current boosting weights. No weighted-resampling approximation is needed,
// and because tree construction and compiled batch prediction are both
// deterministic at any Workers value, the whole boosted ensemble is
// bit-for-bit reproducible regardless of parallelism.
//
// Each round r builds a member on the weighted view, measures its weighted
// training error err_r, converts it into the SAMME vote weight
//
//	alpha_r = LearningRate * (ln((1-err_r)/err_r) + ln(K-1))
//
// (K the number of classes; for K = 2 this is exactly AdaBoost.M1), then
// multiplies the weight of every misclassified tuple by exp(alpha_r) and
// renormalises. Training early-stops when a round's error reaches 0 (the
// member is kept — repeating it would rebuild the same tree forever) or
// crosses the no-better-than-chance bound 1 - 1/K (the member is discarded).
//
// The result is a *forest.Forest of kind KindBoosted whose members vote
// with their alphas, so everything downstream of the container format —
// serialisation, model loading, serving, hot reload — handles boosted and
// bagged ensembles identically.
package boost

import (
	"errors"
	"fmt"
	"math"

	"udt/internal/core"
	"udt/internal/data"
	"udt/internal/forest"
	"udt/internal/obs"
)

// Config controls boosted training.
type Config struct {
	Rounds       int         // maximum boosting rounds (default 10)
	LearningRate float64     // shrinkage applied to every vote weight, > 0 (default 1)
	Workers      int         // concurrent per-round training-set prediction (<= 1 means serial); never changes the result
	TreeConfig   core.Config // member tree construction; shallow members (MaxDepth 2-4) boost best
}

// withDefaults fills zero values.
func (c Config) withDefaults() Config {
	if c.Rounds <= 0 {
		c.Rounds = 10
	}
	if c.LearningRate == 0 {
		c.LearningRate = 1
	}
	return c
}

// WeakMemberConfig derives the recommended weak-member construction from a
// base tree configuration: depth capped at 3 (unless the base caps it
// tighter) and post-pruning off — pruning optimises the unweighted error,
// which is no longer the objective once tuples carry boosting weights, and
// a member strong enough to fit the training set perfectly ends boosting
// after one round. It is the single source of the weak-learner policy that
// both "udtree train -boost" and "udtbench -exp boost" apply; callers that
// want stronger members pass their own TreeConfig untouched.
func WeakMemberConfig(base core.Config) core.Config {
	cfg := base
	cfg.PostPrune = false
	if cfg.MaxDepth == 0 || cfg.MaxDepth > 3 {
		cfg.MaxDepth = 3
	}
	return cfg
}

// errFloor stands in for a zero weighted error when deriving the final
// member's vote weight: a perfect member gets the alpha of an almost-perfect
// one (≈ 23 + ln(K-1) at LearningRate 1) instead of an infinity that would
// poison the weighted average.
const errFloor = 1e-10

// weightFloor keeps tuple weights positive: a tuple every member classifies
// correctly shrinks geometrically under renormalisation, and a weight that
// underflowed to zero would fail dataset validation on the next round.
const weightFloor = 1e-12

// Train builds a boosted ensemble on the uncertain dataset. The returned
// forest has kind forest.KindBoosted and classifies by alpha-weighted
// distribution averaging. Training is deterministic: the same dataset and
// configuration produce a byte-identical serialised model at any Workers
// value.
func Train(ds *data.Dataset, cfg Config) (*forest.Forest, error) {
	if err := ds.Validate(); err != nil {
		return nil, err
	}
	n := ds.Len()
	if n == 0 {
		return nil, errors.New("boost: cannot train on an empty dataset")
	}
	k := len(ds.Classes)
	if k < 2 {
		return nil, errors.New("boost: boosting needs at least two classes")
	}
	cfg = cfg.withDefaults()
	if !(cfg.LearningRate > 0) || math.IsInf(cfg.LearningRate, 0) {
		return nil, fmt.Errorf("boost: LearningRate %v is not a positive finite number", cfg.LearningRate)
	}

	// One set of shallow clones is reused across rounds: only the Weight
	// field changes, and neither tree construction nor the finished trees
	// retain the tuples, so mutating the weights between rounds is safe.
	clones := make([]*data.Tuple, n)
	for i, tu := range ds.Tuples {
		clones[i] = tu.CloneShallow()
	}
	weighted := &data.Dataset{
		Name:     ds.Name,
		NumAttrs: ds.NumAttrs,
		CatAttrs: ds.CatAttrs,
		Classes:  ds.Classes,
		Tuples:   clones,
	}

	// Boosting weights, kept normalised to sum 1. The training view scales
	// them by n so the mean tuple weight stays 1 and MinWeight thresholds
	// keep their single-tree meaning.
	w := make([]float64, n)
	for i := range w {
		w[i] = 1 / float64(n)
	}

	chance := 1 - 1/float64(k) // SAMME's no-better-than-chance error bound
	hook := cfg.TreeConfig.Progress
	var members []forest.WeightedTree
	for round := 0; round < cfg.Rounds; round++ {
		for i := range clones {
			clones[i].Weight = w[i] * float64(n)
		}
		tree, err := core.Build(weighted, cfg.TreeConfig)
		if err != nil {
			return nil, fmt.Errorf("boost: round %d: %w", round+1, err)
		}
		compiled, err := tree.Compile()
		if err != nil {
			return nil, fmt.Errorf("boost: round %d: %w", round+1, err)
		}
		// Weighted training error over the ORIGINAL tuples: classification
		// must not see the boosting weights, only construction does.
		preds := compiled.PredictBatch(ds.Tuples, cfg.Workers)
		errW := weightedError(w, preds, ds.Tuples)
		if errW >= chance {
			hook.Round(obs.BoostRound{Round: round + 1, Error: errW, Kept: false})
			if len(members) == 0 {
				return nil, fmt.Errorf(
					"boost: first round weighted error %.4f is no better than chance (%.4f); weaken the members (e.g. lower TreeConfig.MaxDepth) or check the data",
					errW, chance)
			}
			break // the round learned nothing; discard it and stop
		}
		if errW < errFloor {
			errW = errFloor
			a := alpha(cfg.LearningRate, errW, k)
			members = append(members, forest.WeightedTree{
				Tree: tree, Compiled: compiled, Weight: a,
			})
			hook.Round(obs.BoostRound{Round: round + 1, Error: errW, Alpha: a, Kept: true})
			break // a perfect member; further rounds would rebuild it forever
		}
		a := alpha(cfg.LearningRate, errW, k)
		if a <= 0 {
			// errW can sit so close to the chance bound that the log rounds
			// to zero; a zero vote weight is useless and invalid, so treat it
			// like a chance-level round.
			hook.Round(obs.BoostRound{Round: round + 1, Error: errW, Alpha: a, Kept: false})
			if len(members) == 0 {
				return nil, fmt.Errorf("boost: first round weighted error %.4f is indistinguishable from chance", errW)
			}
			break
		}
		members = append(members, forest.WeightedTree{Tree: tree, Compiled: compiled, Weight: a})
		hook.Round(obs.BoostRound{Round: round + 1, Error: errW, Alpha: a, Kept: true})

		// Reweight: misclassified tuples up by exp(alpha), then renormalise
		// (which moves the correctly classified ones down).
		up := math.Exp(a)
		total := 0.0
		for i, tu := range ds.Tuples {
			if preds[i] != tu.Class {
				w[i] *= up
			}
			total += w[i]
		}
		for i := range w {
			w[i] /= total
			if w[i] < weightFloor {
				w[i] = weightFloor
			}
		}
	}
	return forest.FromTrees(members, forest.KindBoosted)
}

// alpha converts a round's weighted error into its SAMME vote weight.
func alpha(learningRate, errW float64, classes int) float64 {
	return learningRate * (math.Log((1-errW)/errW) + math.Log(float64(classes-1)))
}

// weightedError sums the boosting weight of the misclassified tuples,
// normalised by the total weight (which is 1 up to the weight floor).
func weightedError(w []float64, preds []int, tuples []*data.Tuple) float64 {
	mis, total := 0.0, 0.0
	for i, tu := range tuples {
		total += w[i]
		if preds[i] != tu.Class {
			mis += w[i]
		}
	}
	if total <= 0 {
		return 0
	}
	return mis / total
}
