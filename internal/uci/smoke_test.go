package uci_test

// Smoke tests: every Table 2 stand-in must survive the full pipeline —
// generation, uncertainty injection, AVG and UDT construction, and
// classification — at a tiny scale.

import (
	"testing"

	"udt/internal/core"
	"udt/internal/data"
	"udt/internal/split"
	"udt/internal/uci"
)

func TestAllDatasetsPipelineSmoke(t *testing.T) {
	for _, spec := range uci.Specs {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			t.Parallel()
			var train *data.Dataset
			var err error
			if spec.RawSamples {
				train, _, err = uci.Raw(spec, 0.05, 11)
			} else {
				var pts *data.Points
				pts, _, err = uci.Points(spec, 0.02, 11)
				if err == nil {
					train, err = data.Inject(pts, data.InjectConfig{W: 0.1, S: 8, Model: data.GaussianModel})
				}
			}
			if err != nil {
				t.Fatal(err)
			}
			if err := train.Validate(); err != nil {
				t.Fatal(err)
			}
			cfg := core.Config{Strategy: split.ES, MaxDepth: 6, PostPrune: true}
			avg, err := core.BuildAveraging(train, cfg)
			if err != nil {
				t.Fatalf("AVG: %v", err)
			}
			tree, err := core.Build(train, cfg)
			if err != nil {
				t.Fatalf("UDT: %v", err)
			}
			if avg.Stats.Nodes == 0 || tree.Stats.Nodes == 0 {
				t.Fatal("empty tree")
			}
			// Every tuple classifies to a proper distribution.
			for _, tu := range train.Tuples {
				dist := tree.Classify(tu)
				sum := 0.0
				for _, p := range dist {
					if p < -1e-12 {
						t.Fatal("negative probability")
					}
					sum += p
				}
				if sum < 0.999 || sum > 1.001 {
					t.Fatalf("distribution sums to %v", sum)
				}
			}
			// Chance-beating accuracy even at this tiny scale.
			correct := 0
			for _, tu := range train.Tuples {
				if tree.Predict(tu) == tu.Class {
					correct++
				}
			}
			chance := 1.0 / float64(len(train.Classes))
			if acc := float64(correct) / float64(train.Len()); acc <= chance {
				t.Fatalf("accuracy %v not above chance %v", acc, chance)
			}
		})
	}
}

func TestRawDeterministic(t *testing.T) {
	spec, err := uci.ByName("JapaneseVowel")
	if err != nil {
		t.Fatal(err)
	}
	a, _, err := uci.Raw(spec, 0.05, 5)
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := uci.Raw(spec, 0.05, 5)
	if err != nil {
		t.Fatal(err)
	}
	if a.Len() != b.Len() {
		t.Fatal("raw generation not deterministic in size")
	}
	for i := range a.Tuples {
		for j := range a.Tuples[i].Num {
			if !a.Tuples[i].Num[j].Equal(b.Tuples[i].Num[j], 0) {
				t.Fatal("raw generation not deterministic in values")
			}
		}
	}
}
