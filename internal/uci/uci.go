// Package uci synthesises stand-ins for the ten UCI Machine Learning
// Repository datasets of Table 2 of Tsang et al. The module is offline, so
// each dataset is replaced by a class-conditional Gaussian mixture with the
// same shape as the original — tuple count, attribute count, class count,
// and integer vs. real domains — generated deterministically from a seed.
// The uncertainty of §4.3 is injected on top by the data package exactly as
// the paper does for the real datasets, so every code path (pdf
// construction, fractional splitting, interval pruning) is exercised
// identically; only absolute accuracy values differ. See DESIGN.md
// "Substitutions".
package uci

import (
	"fmt"
	"math"
	"math/rand"

	"udt/internal/data"
)

// Spec describes the shape of one Table 2 dataset.
type Spec struct {
	Name       string
	Train      int // training tuples (the paper's "No. of training tuples")
	Test       int // test tuples; 0 means the paper uses 10-fold CV
	Attrs      int // numeric attributes used for classification
	Classes    int
	Integer    bool // integral attribute domains (quantisation noise likely)
	RawSamples bool // attribute values are repeated raw measurements
}

// Specs lists the ten datasets of Table 2 with their original shapes.
var Specs = []Spec{
	{Name: "JapaneseVowel", Train: 270, Test: 370, Attrs: 12, Classes: 9, RawSamples: true},
	{Name: "PenDigits", Train: 7494, Test: 3498, Attrs: 16, Classes: 10, Integer: true},
	{Name: "Vehicle", Train: 846, Attrs: 18, Classes: 4, Integer: true},
	{Name: "Satellite", Train: 4435, Test: 2000, Attrs: 36, Classes: 6, Integer: true},
	{Name: "Segment", Train: 2310, Attrs: 19, Classes: 7},
	{Name: "Vowel", Train: 990, Attrs: 10, Classes: 11},
	{Name: "BreastCancer", Train: 569, Attrs: 30, Classes: 2},
	{Name: "Ionosphere", Train: 351, Attrs: 34, Classes: 2},
	{Name: "Glass", Train: 214, Attrs: 9, Classes: 6},
	{Name: "Iris", Train: 150, Attrs: 4, Classes: 3},
}

// ByName returns the spec with the given name.
func ByName(name string) (Spec, error) {
	for _, s := range Specs {
		if s.Name == name {
			return s, nil
		}
	}
	return Spec{}, fmt.Errorf("uci: unknown dataset %q", name)
}

// model holds the Gaussian-mixture geometry for one dataset.
type model struct {
	centroids [][]float64 // per class, per attribute
	noise     []float64   // per-attribute within-class standard deviation
	irrel     []bool      // attribute carries no class signal
}

// newModel draws the mixture geometry. Noise is scaled so that class
// overlap is moderate regardless of dimensionality, and roughly one in five
// attributes is irrelevant (pure noise), as is typical of the real
// datasets.
func newModel(spec Spec, rng *rand.Rand) *model {
	m := &model{
		centroids: make([][]float64, spec.Classes),
		noise:     make([]float64, spec.Attrs),
		irrel:     make([]bool, spec.Attrs),
	}
	for j := 0; j < spec.Attrs; j++ {
		m.noise[j] = 0.45 + 0.35*rng.Float64()
		m.irrel[j] = spec.Attrs > 4 && rng.Float64() < 0.2
	}
	for c := range m.centroids {
		cen := make([]float64, spec.Attrs)
		for j := range cen {
			if m.irrel[j] {
				cen[j] = 0
			} else {
				cen[j] = rng.NormFloat64()
			}
		}
		m.centroids[c] = cen
	}
	return m
}

// sample draws one attribute vector for class c in model units.
func (m *model) sample(c int, rng *rand.Rand) []float64 {
	row := make([]float64, len(m.noise))
	for j := range row {
		row[j] = m.centroids[c][j] + rng.NormFloat64()*m.noise[j]
	}
	return row
}

// toDomain converts a model-unit value to the dataset's presentation
// domain: an affine map to roughly [0, 100], rounded for integer datasets.
func toDomain(x float64, integer bool) float64 {
	v := 50 + 12*x
	if integer {
		return math.Round(v)
	}
	return v
}

// scaleCount scales a tuple count, keeping at least a handful per class.
func scaleCount(n int, scale float64, classes int) int {
	s := int(math.Round(float64(n) * scale))
	minN := 3 * classes
	if s < minN {
		s = minN
	}
	if s > n && scale <= 1 {
		s = n
	}
	return s
}

// Points generates the point-valued train and test matrices for a non-raw
// dataset spec. scale in (0, 1] shrinks tuple counts proportionally (for
// fast experiments and tests); 1 reproduces the Table 2 sizes. test is nil
// when the spec prescribes cross-validation. Generation is deterministic in
// (spec, scale, seed).
func Points(spec Spec, scale float64, seed int64) (train, test *data.Points, err error) {
	if spec.RawSamples {
		return nil, nil, fmt.Errorf("uci: %s provides raw samples; use Raw", spec.Name)
	}
	if scale <= 0 || scale > 1 {
		return nil, nil, fmt.Errorf("uci: scale %v out of (0, 1]", scale)
	}
	rng := rand.New(rand.NewSource(seed ^ int64(len(spec.Name))<<32 ^ hashName(spec.Name)))
	m := newModel(spec, rng)
	mk := func(n int, tag string) *data.Points {
		p := &data.Points{
			Name:    spec.Name + tag,
			Attrs:   attrNames(spec.Attrs),
			Classes: classNames(spec.Classes),
			Integer: integerFlags(spec),
		}
		for i := 0; i < n; i++ {
			c := i % spec.Classes // balanced classes
			row := m.sample(c, rng)
			for j := range row {
				row[j] = toDomain(row[j], spec.Integer)
			}
			p.Rows = append(p.Rows, row)
			p.Labels = append(p.Labels, c)
		}
		return p
	}
	train = mk(scaleCount(spec.Train, scale, spec.Classes), "")
	if spec.Test > 0 {
		test = mk(scaleCount(spec.Test, scale, spec.Classes), "-test")
	}
	return train, test, nil
}

// Raw generates an uncertain dataset whose attribute values are repeated
// raw measurements (7-29 observations per value, as in the JapaneseVowel
// LPC-coefficient data of §4.3), plus matching test data. The pdf of each
// value is modelled directly from its observations.
func Raw(spec Spec, scale float64, seed int64) (train, test *data.Dataset, err error) {
	if !spec.RawSamples {
		return nil, nil, fmt.Errorf("uci: %s is a point dataset; use Points", spec.Name)
	}
	if scale <= 0 || scale > 1 {
		return nil, nil, fmt.Errorf("uci: scale %v out of (0, 1]", scale)
	}
	rng := rand.New(rand.NewSource(seed ^ hashName(spec.Name)))
	m := newModel(spec, rng)
	mk := func(n int, tag string) (*data.Dataset, error) {
		rows := make([][][]float64, 0, n)
		labels := make([]int, 0, n)
		for i := 0; i < n; i++ {
			c := i % spec.Classes
			truth := m.sample(c, rng)
			row := make([][]float64, spec.Attrs)
			for j, v := range truth {
				nObs := 7 + rng.Intn(23) // 7-29 observations
				obs := make([]float64, nObs)
				for o := range obs {
					obs[o] = toDomain(v+rng.NormFloat64()*0.3, false)
				}
				row[j] = obs
			}
			rows = append(rows, row)
			labels = append(labels, c)
		}
		return data.FromRawSamples(spec.Name+tag, attrNames(spec.Attrs), classNames(spec.Classes), rows, labels)
	}
	if train, err = mk(scaleCount(spec.Train, scale, spec.Classes), ""); err != nil {
		return nil, nil, err
	}
	if spec.Test > 0 {
		if test, err = mk(scaleCount(spec.Test, scale, spec.Classes), "-test"); err != nil {
			return nil, nil, err
		}
	}
	return train, test, nil
}

func attrNames(k int) []string {
	names := make([]string, k)
	for j := range names {
		names[j] = fmt.Sprintf("A%d", j+1)
	}
	return names
}

func classNames(k int) []string {
	names := make([]string, k)
	for c := range names {
		names[c] = fmt.Sprintf("c%d", c)
	}
	return names
}

func integerFlags(spec Spec) []bool {
	flags := make([]bool, spec.Attrs)
	for j := range flags {
		flags[j] = spec.Integer
	}
	return flags
}

// hashName folds a dataset name into a seed component so different datasets
// decorrelate under the same user seed.
func hashName(name string) int64 {
	var h int64 = 1469598103934665603
	for _, r := range name {
		h ^= int64(r)
		h *= 1099511628211
	}
	return h
}
