package uci

import (
	"math"
	"testing"
)

func TestSpecsShapeMatchesTable2(t *testing.T) {
	if len(Specs) != 10 {
		t.Fatalf("Table 2 has 10 datasets, Specs has %d", len(Specs))
	}
	seen := map[string]bool{}
	for _, s := range Specs {
		if seen[s.Name] {
			t.Fatalf("duplicate spec %s", s.Name)
		}
		seen[s.Name] = true
		if s.Train <= 0 || s.Attrs <= 0 || s.Classes < 2 {
			t.Fatalf("degenerate spec %+v", s)
		}
	}
	iris, err := ByName("Iris")
	if err != nil {
		t.Fatal(err)
	}
	if iris.Train != 150 || iris.Attrs != 4 || iris.Classes != 3 {
		t.Fatalf("Iris shape wrong: %+v", iris)
	}
	if _, err := ByName("nope"); err == nil {
		t.Fatal("unknown dataset should error")
	}
}

func TestPointsShapes(t *testing.T) {
	for _, spec := range Specs {
		if spec.RawSamples {
			continue
		}
		train, test, err := Points(spec, 0.05, 1)
		if err != nil {
			t.Fatalf("%s: %v", spec.Name, err)
		}
		if err := train.Validate(); err != nil {
			t.Fatalf("%s train: %v", spec.Name, err)
		}
		if len(train.Attrs) != spec.Attrs {
			t.Fatalf("%s: %d attrs, want %d", spec.Name, len(train.Attrs), spec.Attrs)
		}
		if len(train.Classes) != spec.Classes {
			t.Fatalf("%s: %d classes, want %d", spec.Name, len(train.Classes), spec.Classes)
		}
		if (test == nil) != (spec.Test == 0) {
			t.Fatalf("%s: test presence mismatch", spec.Name)
		}
		// Every class appears (balanced generation).
		counts := make([]int, spec.Classes)
		for _, l := range train.Labels {
			counts[l]++
		}
		for c, n := range counts {
			if n == 0 {
				t.Fatalf("%s: class %d absent", spec.Name, c)
			}
		}
	}
}

func TestPointsFullScaleMatchesTable2(t *testing.T) {
	spec, _ := ByName("Iris")
	train, test, err := Points(spec, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(train.Rows) != 150 {
		t.Fatalf("full-scale Iris has %d tuples, want 150", len(train.Rows))
	}
	if test != nil {
		t.Fatal("Iris should have no test split")
	}
	spec2, _ := ByName("Satellite")
	tr2, te2, err := Points(spec2, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr2.Rows) != 4435 || len(te2.Rows) != 2000 {
		t.Fatalf("Satellite = %d/%d, want 4435/2000", len(tr2.Rows), len(te2.Rows))
	}
}

func TestPointsDeterministic(t *testing.T) {
	spec, _ := ByName("Glass")
	a, _, err := Points(spec, 0.2, 7)
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := Points(spec, 0.2, 7)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Rows {
		for j := range a.Rows[i] {
			if a.Rows[i][j] != b.Rows[i][j] {
				t.Fatal("generation not deterministic")
			}
		}
	}
	c, _, err := Points(spec, 0.2, 8)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range a.Rows {
		for j := range a.Rows[i] {
			if a.Rows[i][j] != c.Rows[i][j] {
				same = false
			}
		}
	}
	if same {
		t.Fatal("different seeds gave identical data")
	}
}

func TestIntegerDomains(t *testing.T) {
	spec, _ := ByName("PenDigits")
	train, _, err := Points(spec, 0.01, 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range train.Rows {
		for _, v := range row {
			if v != math.Trunc(v) {
				t.Fatalf("PenDigits value %v not integral", v)
			}
		}
	}
}

func TestPointsErrors(t *testing.T) {
	spec, _ := ByName("Iris")
	if _, _, err := Points(spec, 0, 1); err == nil {
		t.Fatal("scale 0 accepted")
	}
	if _, _, err := Points(spec, 2, 1); err == nil {
		t.Fatal("scale 2 accepted")
	}
	jv, _ := ByName("JapaneseVowel")
	if _, _, err := Points(jv, 0.5, 1); err == nil {
		t.Fatal("Points on raw dataset accepted")
	}
}

func TestRawJapaneseVowel(t *testing.T) {
	spec, _ := ByName("JapaneseVowel")
	train, test, err := Raw(spec, 0.15, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := train.Validate(); err != nil {
		t.Fatal(err)
	}
	if test == nil {
		t.Fatal("JapaneseVowel should carry a test split")
	}
	if len(train.NumAttrs) != 12 || len(train.Classes) != 9 {
		t.Fatalf("shape %dx%d, want 12 attrs 9 classes", len(train.NumAttrs), len(train.Classes))
	}
	// PDFs come from 7-29 raw observations.
	for _, tu := range train.Tuples {
		for _, p := range tu.Num {
			if p.NumSamples() < 2 || p.NumSamples() > 29 {
				t.Fatalf("raw pdf has %d samples, want 2..29", p.NumSamples())
			}
		}
	}
}

func TestRawErrors(t *testing.T) {
	iris, _ := ByName("Iris")
	if _, _, err := Raw(iris, 0.5, 1); err == nil {
		t.Fatal("Raw on point dataset accepted")
	}
	jv, _ := ByName("JapaneseVowel")
	if _, _, err := Raw(jv, -1, 1); err == nil {
		t.Fatal("bad scale accepted")
	}
}

func TestScaleCount(t *testing.T) {
	if n := scaleCount(1000, 0.1, 3); n != 100 {
		t.Fatalf("scaleCount = %d, want 100", n)
	}
	if n := scaleCount(1000, 0.001, 5); n != 15 {
		t.Fatalf("tiny scale should clamp to 3*classes, got %d", n)
	}
	if n := scaleCount(10, 1, 2); n != 10 {
		t.Fatalf("full scale changed count: %d", n)
	}
}
