package pdf

import (
	"math"
	"testing"
)

func TestMixWeightsAndNormalisation(t *testing.T) {
	a := MustNew([]float64{0, 1}, []float64{1, 1})
	b := MustNew([]float64{10, 11}, []float64{1, 3})
	m, err := Mix([]*PDF{a, b}, []float64{1, 1})
	if err != nil {
		t.Fatal(err)
	}
	// Equal weights: each component contributes half its mass.
	if got := m.CDF(1); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("CDF(1) = %v, want 0.5", got)
	}
	if got := m.Mass(3); math.Abs(got-3.0/8) > 1e-12 {
		t.Fatalf("mass at 11 = %v, want 3/8", got)
	}
	want := 0.5*a.Mean() + 0.5*b.Mean()
	if math.Abs(m.Mean()-want) > 1e-12 {
		t.Fatalf("mixture mean = %v, want %v", m.Mean(), want)
	}
}

func TestMixOverlappingSupports(t *testing.T) {
	a := MustNew([]float64{0, 1}, []float64{1, 1})
	b := MustNew([]float64{1, 2}, []float64{1, 1})
	m, err := Mix([]*PDF{a, b}, []float64{1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if m.NumSamples() != 3 {
		t.Fatalf("overlapping mixture has %d samples, want 3 (shared point merged)", m.NumSamples())
	}
	if math.Abs(m.Mass(1)-0.5) > 1e-12 {
		t.Fatalf("shared point mass = %v, want 0.5", m.Mass(1))
	}
}

func TestMixErrorCases(t *testing.T) {
	a := Point(1)
	if _, err := Mix([]*PDF{a}, []float64{1, 2}); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := Mix([]*PDF{a}, []float64{-1}); err == nil {
		t.Error("negative weight accepted")
	}
	if _, err := Mix([]*PDF{a}, []float64{math.NaN()}); err == nil {
		t.Error("NaN weight accepted")
	}
	if _, err := Mix(nil, nil); err == nil {
		t.Error("empty mixture accepted")
	}
	if _, err := Mix([]*PDF{nil, nil}, []float64{1, 1}); err == nil {
		t.Error("all-nil mixture accepted")
	}
	if _, err := Mix([]*PDF{a, nil}, []float64{0, 1}); err == nil {
		t.Error("zero-total mixture accepted")
	}
}

func TestMustNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustNew should panic on invalid input")
		}
	}()
	MustNew(nil, nil)
}
