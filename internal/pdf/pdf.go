// Package pdf implements bounded probability density functions approximated
// by discrete sample points, the uncertainty representation used throughout
// the UDT system (Tsang et al., "Decision Trees for Uncertain Data").
//
// A PDF stores s sample points x_1 < x_2 < ... < x_s together with the
// cumulative mass at each point. Interval mass queries, which dominate tree
// construction, therefore cost two binary searches and one subtraction —
// the "store the pdf as a cumulative distribution" trick from §4.2 of the
// paper.
package pdf

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// PDF is a probability distribution over a bounded interval, approximated by
// discrete sample points. A PDF is immutable after construction; it is safe
// for concurrent use.
type PDF struct {
	xs  []float64 // sorted, strictly increasing sample locations
	cum []float64 // cum[i] = total mass at xs[0..i]; cum[len-1] == 1
}

// Common construction errors.
var (
	ErrNoSamples    = errors.New("pdf: no sample points")
	ErrBadMass      = errors.New("pdf: masses must be non-negative with positive total")
	ErrBadInterval  = errors.New("pdf: invalid interval")
	ErrBadSampleCnt = errors.New("pdf: sample count must be positive")
)

// massEps is the tolerance below which a probability mass is treated as zero.
const massEps = 1e-12

// New builds a PDF from parallel slices of sample locations and masses.
// Locations need not be sorted; duplicate locations have their masses merged.
// Masses are normalised to sum to one.
func New(xs, masses []float64) (*PDF, error) {
	if len(xs) == 0 {
		return nil, ErrNoSamples
	}
	if len(xs) != len(masses) {
		return nil, fmt.Errorf("pdf: %d locations but %d masses", len(xs), len(masses))
	}
	type pt struct{ x, m float64 }
	pts := make([]pt, 0, len(xs))
	total := 0.0
	for i, x := range xs {
		m := masses[i]
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return nil, fmt.Errorf("pdf: non-finite sample location %v", x)
		}
		if m < 0 || math.IsNaN(m) {
			return nil, ErrBadMass
		}
		if m <= massEps {
			continue
		}
		pts = append(pts, pt{x, m})
		total += m
	}
	if total <= massEps {
		return nil, ErrBadMass
	}
	sort.Slice(pts, func(i, j int) bool { return pts[i].x < pts[j].x })
	p := &PDF{
		xs:  make([]float64, 0, len(pts)),
		cum: make([]float64, 0, len(pts)),
	}
	run := 0.0
	for i, q := range pts {
		run += q.m / total
		if i > 0 && q.x == p.xs[len(p.xs)-1] {
			p.cum[len(p.cum)-1] = run // merge duplicate location
			continue
		}
		p.xs = append(p.xs, q.x)
		p.cum = append(p.cum, run)
	}
	p.cum[len(p.cum)-1] = 1 // kill accumulated rounding error
	return p, nil
}

// MustNew is New that panics on error; for tests and literals.
func MustNew(xs, masses []float64) *PDF {
	p, err := New(xs, masses)
	if err != nil {
		panic(err)
	}
	return p
}

// Point returns the degenerate PDF concentrated at v. It is how the
// Averaging approach (AVG) represents data: a pdf collapsed to one value.
func Point(v float64) *PDF {
	return &PDF{xs: []float64{v}, cum: []float64{1}}
}

// Uniform returns the uniform distribution on [a, b] discretised at s
// equally spaced sample points, each carrying mass 1/s.
func Uniform(a, b float64, s int) (*PDF, error) {
	if s <= 0 {
		return nil, ErrBadSampleCnt
	}
	if !(a <= b) || math.IsNaN(a) || math.IsNaN(b) || math.IsInf(a, 0) || math.IsInf(b, 0) {
		return nil, ErrBadInterval
	}
	if a == b || s == 1 {
		return Point((a + b) / 2), nil
	}
	xs := make([]float64, s)
	ms := make([]float64, s)
	step := (b - a) / float64(s-1)
	for i := range xs {
		xs[i] = a + float64(i)*step
		ms[i] = 1
	}
	xs[s-1] = b
	return New(xs, ms)
}

// Gaussian returns the Gaussian N(mean, sigma²) truncated to [a, b] and
// renormalised (footnote 5 of the paper), discretised at s equally spaced
// points whose masses are the exact Gaussian mass of the surrounding cell.
func Gaussian(mean, sigma, a, b float64, s int) (*PDF, error) {
	if s <= 0 {
		return nil, ErrBadSampleCnt
	}
	if !(a <= b) || math.IsNaN(a) || math.IsNaN(b) {
		return nil, ErrBadInterval
	}
	if sigma <= 0 || a == b || s == 1 {
		v := mean
		if v < a {
			v = a
		}
		if v > b {
			v = b
		}
		return Point(v), nil
	}
	xs := make([]float64, s)
	ms := make([]float64, s)
	step := (b - a) / float64(s-1)
	// Cell i covers [x_i - step/2, x_i + step/2] clipped to [a, b]; its mass
	// is the Gaussian CDF difference across the cell.
	lo := a
	for i := 0; i < s; i++ {
		xs[i] = a + float64(i)*step
		hi := xs[i] + step/2
		if i == s-1 {
			xs[i] = b
			hi = b
		}
		ms[i] = gaussCDF(mean, sigma, hi) - gaussCDF(mean, sigma, lo)
		if ms[i] < 0 {
			ms[i] = 0
		}
		lo = hi
	}
	p, err := New(xs, ms)
	if err != nil {
		// The whole interval sits many sigmas from the mean: all cell
		// masses underflowed. Fall back to the nearest boundary point.
		v := mean
		if v < a {
			v = a
		}
		if v > b {
			v = b
		}
		return Point(v), nil
	}
	return p, nil
}

// gaussCDF is the cumulative distribution of N(mean, sigma²) at x.
func gaussCDF(mean, sigma, x float64) float64 {
	return 0.5 * math.Erfc(-(x-mean)/(sigma*math.Sqrt2))
}

// FromSamples builds a PDF directly from raw repeated measurements, each
// observation receiving equal mass. This is how the JapaneseVowel dataset's
// 7-29 raw samples per value are turned into pdfs (§4.3).
func FromSamples(obs []float64) (*PDF, error) {
	if len(obs) == 0 {
		return nil, ErrNoSamples
	}
	ms := make([]float64, len(obs))
	for i := range ms {
		ms[i] = 1
	}
	return New(obs, ms)
}

// NumSamples reports the number of distinct sample points.
func (p *PDF) NumSamples() int { return len(p.xs) }

// Min returns the smallest sample location (the a of the bounded domain).
func (p *PDF) Min() float64 { return p.xs[0] }

// Max returns the largest sample location (the b of the bounded domain).
func (p *PDF) Max() float64 { return p.xs[len(p.xs)-1] }

// X returns the i-th sample location.
func (p *PDF) X(i int) float64 { return p.xs[i] }

// Mass returns the probability mass at the i-th sample point.
func (p *PDF) Mass(i int) float64 {
	if i == 0 {
		return p.cum[0]
	}
	return p.cum[i] - p.cum[i-1]
}

// CDF returns P(X <= x).
func (p *PDF) CDF(x float64) float64 {
	// idx = number of sample points with location <= x.
	idx := sort.SearchFloat64s(p.xs, math.Nextafter(x, math.Inf(1)))
	if idx == 0 {
		return 0
	}
	return p.cum[idx-1]
}

// MassIn returns P(a < X <= b), the mass in the half-open interval (a, b]
// used by the interval machinery of §5.
func (p *PDF) MassIn(a, b float64) float64 {
	if b <= a {
		return 0
	}
	m := p.CDF(b) - p.CDF(a)
	if m < 0 {
		return 0
	}
	return m
}

// Mean returns the expected value, the representative the Averaging
// approach uses (§4.1).
func (p *PDF) Mean() float64 {
	sum := 0.0
	for i, x := range p.xs {
		sum += x * p.Mass(i)
	}
	return sum
}

// Variance returns the second central moment.
func (p *PDF) Variance() float64 {
	mu := p.Mean()
	sum := 0.0
	for i, x := range p.xs {
		d := x - mu
		sum += d * d * p.Mass(i)
	}
	return sum
}

// Median returns the smallest sample location at which the CDF reaches 1/2.
func (p *PDF) Median() float64 { return p.Quantile(0.5) }

// Quantile returns the smallest sample location x with CDF(x) >= q,
// clamping q to [0, 1]. Used for the percentile "artificial end points" of
// §7.3 when handling unbounded pdfs.
func (p *PDF) Quantile(q float64) float64 {
	if q <= 0 {
		return p.xs[0]
	}
	if q >= 1 {
		return p.xs[len(p.xs)-1]
	}
	idx := sort.Search(len(p.cum), func(i int) bool { return p.cum[i] >= q-massEps })
	if idx >= len(p.xs) {
		idx = len(p.xs) - 1
	}
	return p.xs[idx]
}

// SplitAt divides the distribution at split point z following §3.2: the
// left part keeps the sample points with location <= z renormalised by the
// left mass pL, the right part keeps the rest renormalised by 1-pL. A nil
// part is returned for a side with no mass.
func (p *PDF) SplitAt(z float64) (left, right *PDF, pL float64) {
	idx := sort.SearchFloat64s(p.xs, math.Nextafter(z, math.Inf(1)))
	if idx == 0 {
		return nil, p, 0
	}
	if idx == len(p.xs) {
		return p, nil, 1
	}
	pL = p.cum[idx-1]
	if pL <= massEps {
		return nil, p, 0
	}
	if pL >= 1-massEps {
		return p, nil, 1
	}
	left = &PDF{xs: p.xs[:idx], cum: make([]float64, idx)}
	for i := 0; i < idx; i++ {
		left.cum[i] = p.cum[i] / pL
	}
	left.cum[idx-1] = 1
	n := len(p.xs) - idx
	right = &PDF{xs: p.xs[idx:], cum: make([]float64, n)}
	pR := 1 - pL
	for i := 0; i < n; i++ {
		right.cum[i] = (p.cum[idx+i] - pL) / pR
	}
	right.cum[n-1] = 1
	return left, right, pL
}

// Mix returns the mixture distribution sum w_i · p_i of the given
// components. Weights need not be normalised; nil components are skipped.
// Used for the §2 missing-value technique: the "guess" distribution of an
// attribute is the (weighted) average of the pdfs of the tuples where the
// value is present.
func Mix(components []*PDF, weights []float64) (*PDF, error) {
	if len(components) != len(weights) {
		return nil, fmt.Errorf("pdf: %d components but %d weights", len(components), len(weights))
	}
	var xs, ms []float64
	for i, p := range components {
		if p == nil {
			continue
		}
		w := weights[i]
		if w < 0 || math.IsNaN(w) {
			return nil, ErrBadMass
		}
		if w == 0 {
			continue
		}
		for k := 0; k < p.NumSamples(); k++ {
			xs = append(xs, p.X(k))
			ms = append(ms, w*p.Mass(k))
		}
	}
	if len(xs) == 0 {
		return nil, ErrNoSamples
	}
	return New(xs, ms)
}

// Shift returns a copy of the distribution translated by d.
func (p *PDF) Shift(d float64) *PDF {
	xs := make([]float64, len(p.xs))
	for i, x := range p.xs {
		xs[i] = x + d
	}
	q := &PDF{xs: xs, cum: make([]float64, len(p.cum))}
	copy(q.cum, p.cum)
	return q
}

// Equal reports whether two PDFs have identical sample points and masses up
// to tolerance eps.
func (p *PDF) Equal(q *PDF, eps float64) bool {
	if len(p.xs) != len(q.xs) {
		return false
	}
	for i := range p.xs {
		if math.Abs(p.xs[i]-q.xs[i]) > eps || math.Abs(p.cum[i]-q.cum[i]) > eps {
			return false
		}
	}
	return true
}

// String renders a short human-readable description.
func (p *PDF) String() string {
	if len(p.xs) == 1 {
		return fmt.Sprintf("point(%g)", p.xs[0])
	}
	return fmt.Sprintf("pdf[%g,%g] s=%d mean=%.4g", p.Min(), p.Max(), len(p.xs), p.Mean())
}
