package pdf

import (
	"math"
	"math/rand"
	"testing"
)

// TestSplitAtArenaMatchesSplitAt pins arena splitting to the allocating
// reference over random pdfs and split points, including the one-sided and
// out-of-range cases.
func TestSplitAtArenaMatchesSplitAt(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	var a SplitArena
	for trial := 0; trial < 200; trial++ {
		a.Reset()
		s := 1 + rng.Intn(30)
		xs := make([]float64, s)
		ms := make([]float64, s)
		for i := range xs {
			xs[i] = rng.NormFloat64() * 10
			ms[i] = rng.Float64() + 0.01
		}
		p := MustNew(xs, ms)
		for k := 0; k < 10; k++ {
			var z float64
			switch k {
			case 0:
				z = p.Min() - 1 // everything right
			case 1:
				z = p.Max() + 1 // everything left
			case 2:
				z = p.X(rng.Intn(p.NumSamples())) // exactly on a sample
			default:
				z = p.Min() + rng.Float64()*(p.Max()-p.Min())
			}
			wl, wr, wpL := p.SplitAt(z)
			gl, gr, gpL := p.SplitAtArena(z, &a)
			if wpL != gpL {
				t.Fatalf("pL mismatch at z=%v: %v vs %v", z, gpL, wpL)
			}
			checkSamePDF(t, gl, wl)
			checkSamePDF(t, gr, wr)
		}
	}
}

// TestSplitAtArenaSurvivesGrowth splits many pdfs without Reset so the
// slabs must grow, then re-verifies every previously returned PDF: growth
// must not corrupt earlier results.
func TestSplitAtArenaSurvivesGrowth(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	var a SplitArena
	type want struct {
		got *PDF
		ref *PDF
	}
	var all []want
	for trial := 0; trial < 300; trial++ {
		xs := make([]float64, 20)
		ms := make([]float64, 20)
		for i := range xs {
			xs[i] = float64(i) + rng.Float64()*0.5
			ms[i] = 1
		}
		p := MustNew(xs, ms)
		z := 2 + rng.Float64()*15
		wl, wr, _ := p.SplitAt(z)
		gl, gr, _ := p.SplitAtArena(z, &a)
		all = append(all, want{gl, wl}, want{gr, wr})
	}
	for i, w := range all {
		if (w.got == nil) != (w.ref == nil) {
			t.Fatalf("result %d nilness diverged", i)
		}
		if w.got != nil && !w.got.Equal(w.ref, 0) {
			t.Fatalf("result %d corrupted after arena growth", i)
		}
	}
}

// TestSplitAtArenaNil: a nil arena must behave exactly like SplitAt.
func TestSplitAtArenaNil(t *testing.T) {
	p := MustNew([]float64{1, 2, 3}, []float64{1, 1, 1})
	l, r, pL := p.SplitAtArena(1.5, nil)
	if l == nil || r == nil || math.Abs(pL-1.0/3) > 1e-12 {
		t.Fatalf("nil-arena split: %v %v %v", l, r, pL)
	}
}

func checkSamePDF(t *testing.T, got, want *PDF) {
	t.Helper()
	if (got == nil) != (want == nil) {
		t.Fatalf("nilness diverged: got %v want %v", got, want)
	}
	if got == nil {
		return
	}
	if !got.Equal(want, 0) {
		t.Fatalf("split part diverged: got %v want %v", got, want)
	}
}

func BenchmarkSplitAtArena(b *testing.B) {
	p := MustNew(
		func() []float64 {
			xs := make([]float64, 50)
			for i := range xs {
				xs[i] = float64(i)
			}
			return xs
		}(),
		func() []float64 {
			ms := make([]float64, 50)
			for i := range ms {
				ms[i] = 1
			}
			return ms
		}())
	b.Run("alloc", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			p.SplitAt(24.5)
		}
	})
	b.Run("arena", func(b *testing.B) {
		var a SplitArena
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if i%128 == 0 {
				a.Reset()
			}
			p.SplitAtArena(24.5, &a)
		}
	})
}
