package pdf

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestNewNormalisesAndSorts(t *testing.T) {
	p, err := New([]float64{3, 1, 2}, []float64{2, 1, 1})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if p.NumSamples() != 3 {
		t.Fatalf("NumSamples = %d, want 3", p.NumSamples())
	}
	if p.X(0) != 1 || p.X(1) != 2 || p.X(2) != 3 {
		t.Fatalf("locations not sorted: %v %v %v", p.X(0), p.X(1), p.X(2))
	}
	if !almostEqual(p.Mass(0), 0.25, 1e-12) || !almostEqual(p.Mass(2), 0.5, 1e-12) {
		t.Fatalf("masses not normalised: %v %v %v", p.Mass(0), p.Mass(1), p.Mass(2))
	}
}

func TestNewMergesDuplicates(t *testing.T) {
	p, err := New([]float64{1, 1, 2}, []float64{1, 1, 2})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if p.NumSamples() != 2 {
		t.Fatalf("NumSamples = %d, want 2", p.NumSamples())
	}
	if !almostEqual(p.Mass(0), 0.5, 1e-12) {
		t.Fatalf("merged mass = %v, want 0.5", p.Mass(0))
	}
}

func TestNewDropsZeroMassPoints(t *testing.T) {
	p, err := New([]float64{1, 2, 3}, []float64{1, 0, 1})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if p.NumSamples() != 2 {
		t.Fatalf("NumSamples = %d, want 2", p.NumSamples())
	}
}

func TestNewErrors(t *testing.T) {
	cases := []struct {
		name   string
		xs, ms []float64
	}{
		{"empty", nil, nil},
		{"mismatch", []float64{1}, []float64{1, 2}},
		{"negative mass", []float64{1}, []float64{-1}},
		{"zero total", []float64{1, 2}, []float64{0, 0}},
		{"nan location", []float64{math.NaN()}, []float64{1}},
		{"inf location", []float64{math.Inf(1)}, []float64{1}},
		{"nan mass", []float64{1}, []float64{math.NaN()}},
	}
	for _, c := range cases {
		if _, err := New(c.xs, c.ms); err == nil {
			t.Errorf("%s: New succeeded, want error", c.name)
		}
	}
}

func TestPoint(t *testing.T) {
	p := Point(5)
	if p.NumSamples() != 1 || p.Mean() != 5 || p.Min() != 5 || p.Max() != 5 {
		t.Fatalf("Point(5) malformed: %v", p)
	}
	if p.CDF(4.999) != 0 || p.CDF(5) != 1 {
		t.Fatalf("Point CDF wrong: %v %v", p.CDF(4.999), p.CDF(5))
	}
}

func TestUniform(t *testing.T) {
	p, err := Uniform(0, 10, 11)
	if err != nil {
		t.Fatalf("Uniform: %v", err)
	}
	if p.NumSamples() != 11 {
		t.Fatalf("NumSamples = %d, want 11", p.NumSamples())
	}
	if !almostEqual(p.Mean(), 5, 1e-9) {
		t.Fatalf("Mean = %v, want 5", p.Mean())
	}
	for i := 0; i < 11; i++ {
		if !almostEqual(p.Mass(i), 1.0/11, 1e-9) {
			t.Fatalf("Mass(%d) = %v, want 1/11", i, p.Mass(i))
		}
	}
}

func TestUniformDegenerate(t *testing.T) {
	p, err := Uniform(3, 3, 100)
	if err != nil {
		t.Fatalf("Uniform: %v", err)
	}
	if p.NumSamples() != 1 || p.Mean() != 3 {
		t.Fatalf("degenerate uniform should be a point at 3, got %v", p)
	}
}

func TestUniformErrors(t *testing.T) {
	if _, err := Uniform(0, 1, 0); err == nil {
		t.Error("s=0 should error")
	}
	if _, err := Uniform(2, 1, 10); err == nil {
		t.Error("a>b should error")
	}
	if _, err := Uniform(math.NaN(), 1, 10); err == nil {
		t.Error("NaN bound should error")
	}
}

func TestGaussianMoments(t *testing.T) {
	// Wide truncation: moments should be close to the untruncated ones.
	p, err := Gaussian(10, 1, 4, 16, 401)
	if err != nil {
		t.Fatalf("Gaussian: %v", err)
	}
	if !almostEqual(p.Mean(), 10, 1e-3) {
		t.Fatalf("Mean = %v, want ~10", p.Mean())
	}
	if !almostEqual(p.Variance(), 1, 2e-2) {
		t.Fatalf("Variance = %v, want ~1", p.Variance())
	}
}

func TestGaussianTruncationRenormalises(t *testing.T) {
	p, err := Gaussian(0, 1, -1, 1, 101)
	if err != nil {
		t.Fatalf("Gaussian: %v", err)
	}
	if !almostEqual(p.CDF(p.Max()), 1, 1e-12) {
		t.Fatalf("total mass = %v, want 1", p.CDF(p.Max()))
	}
	if !almostEqual(p.Mean(), 0, 1e-9) {
		t.Fatalf("symmetric truncation should keep mean 0, got %v", p.Mean())
	}
}

func TestGaussianFarTruncationFallsBack(t *testing.T) {
	// Interval 100 sigmas away from the mean: all masses underflow.
	p, err := Gaussian(0, 1, 100, 101, 10)
	if err != nil {
		t.Fatalf("Gaussian: %v", err)
	}
	if p.NumSamples() != 1 {
		t.Fatalf("expected point fallback, got %d samples", p.NumSamples())
	}
	if p.Mean() != 100 {
		t.Fatalf("fallback should clamp to nearest bound 100, got %v", p.Mean())
	}
}

func TestFromSamples(t *testing.T) {
	p, err := FromSamples([]float64{1, 2, 2, 3})
	if err != nil {
		t.Fatalf("FromSamples: %v", err)
	}
	if p.NumSamples() != 3 {
		t.Fatalf("NumSamples = %d, want 3", p.NumSamples())
	}
	if !almostEqual(p.Mass(1), 0.5, 1e-12) {
		t.Fatalf("duplicate observation should get doubled mass, got %v", p.Mass(1))
	}
	if !almostEqual(p.Mean(), 2, 1e-12) {
		t.Fatalf("Mean = %v, want 2", p.Mean())
	}
}

func TestCDFAndMassIn(t *testing.T) {
	p := MustNew([]float64{-1, 1, 10}, []float64{5, 1, 2})
	if !almostEqual(p.CDF(-1), 5.0/8, 1e-12) {
		t.Fatalf("CDF(-1) = %v", p.CDF(-1))
	}
	if p.CDF(-1.0001) != 0 {
		t.Fatalf("CDF below min should be 0, got %v", p.CDF(-1.0001))
	}
	if !almostEqual(p.CDF(1), 6.0/8, 1e-12) {
		t.Fatalf("CDF(1) = %v", p.CDF(1))
	}
	if p.CDF(11) != 1 {
		t.Fatalf("CDF above max should be 1")
	}
	if !almostEqual(p.MassIn(-1, 1), 1.0/8, 1e-12) {
		t.Fatalf("MassIn(-1,1] = %v, want 1/8", p.MassIn(-1, 1))
	}
	if p.MassIn(5, 5) != 0 || p.MassIn(7, 3) != 0 {
		t.Fatal("empty/inverted interval should have zero mass")
	}
}

func TestQuantile(t *testing.T) {
	p := MustNew([]float64{1, 2, 3, 4}, []float64{1, 1, 1, 1})
	if p.Quantile(0) != 1 || p.Quantile(1) != 4 {
		t.Fatalf("extreme quantiles wrong: %v %v", p.Quantile(0), p.Quantile(1))
	}
	if p.Quantile(0.25) != 1 {
		t.Fatalf("Quantile(0.25) = %v, want 1", p.Quantile(0.25))
	}
	if p.Quantile(0.26) != 2 {
		t.Fatalf("Quantile(0.26) = %v, want 2", p.Quantile(0.26))
	}
	if p.Median() != 2 {
		t.Fatalf("Median = %v, want 2", p.Median())
	}
}

func TestSplitAtPaperExample(t *testing.T) {
	// Tuple 3 of Table 1: values -1, +1, +10 with masses 5/8, 1/8, 2/8.
	p := MustNew([]float64{-1, 1, 10}, []float64{5, 1, 2})
	left, right, pL := p.SplitAt(-1)
	if !almostEqual(pL, 5.0/8, 1e-12) {
		t.Fatalf("pL = %v, want 5/8", pL)
	}
	if left.NumSamples() != 1 || left.X(0) != -1 {
		t.Fatalf("left part wrong: %v", left)
	}
	if right.NumSamples() != 2 || !almostEqual(right.Mass(0), 1.0/3, 1e-12) {
		t.Fatalf("right part not renormalised: %v mass0=%v", right, right.Mass(0))
	}
}

func TestSplitAtBoundaries(t *testing.T) {
	p := MustNew([]float64{1, 2, 3}, []float64{1, 1, 1})
	if l, r, pL := p.SplitAt(0.5); l != nil || r != p || pL != 0 {
		t.Fatal("split below min should return everything on the right")
	}
	if l, r, pL := p.SplitAt(3); l != p || r != nil || pL != 1 {
		t.Fatal("split at max should return everything on the left")
	}
}

func TestSplitAtConservesMass(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		n := 2 + rng.Intn(20)
		xs := make([]float64, n)
		ms := make([]float64, n)
		for i := range xs {
			xs[i] = rng.NormFloat64() * 10
			ms[i] = rng.Float64() + 0.01
		}
		p := MustNew(xs, ms)
		z := p.Min() + rng.Float64()*(p.Max()-p.Min())
		l, r, pL := p.SplitAt(z)
		if pL < 0 || pL > 1 {
			t.Fatalf("pL out of range: %v", pL)
		}
		if !almostEqual(pL, p.CDF(z), 1e-12) {
			t.Fatalf("pL %v != CDF(z) %v", pL, p.CDF(z))
		}
		if l != nil && !almostEqual(l.CDF(l.Max()), 1, 1e-9) {
			t.Fatal("left part not renormalised")
		}
		if r != nil && !almostEqual(r.CDF(r.Max()), 1, 1e-9) {
			t.Fatal("right part not renormalised")
		}
		if l != nil && l.Max() > z {
			t.Fatal("left part leaks past split point")
		}
		if r != nil && r.Min() <= z {
			t.Fatal("right part leaks below split point")
		}
		// Mean is conserved: E[X] = pL*E[X|left] + pR*E[X|right].
		mean := 0.0
		if l != nil {
			mean += pL * l.Mean()
		}
		if r != nil {
			mean += (1 - pL) * r.Mean()
		}
		if !almostEqual(mean, p.Mean(), 1e-9) {
			t.Fatalf("mean not conserved: %v vs %v", mean, p.Mean())
		}
	}
}

func TestShift(t *testing.T) {
	p := MustNew([]float64{1, 2}, []float64{1, 3})
	q := p.Shift(10)
	if q.Min() != 11 || q.Max() != 12 {
		t.Fatalf("shifted bounds wrong: %v", q)
	}
	if !almostEqual(q.Mean(), p.Mean()+10, 1e-12) {
		t.Fatalf("shifted mean wrong: %v", q.Mean())
	}
	if p.Min() != 1 {
		t.Fatal("Shift must not mutate the receiver")
	}
}

func TestEqual(t *testing.T) {
	p := MustNew([]float64{1, 2}, []float64{1, 1})
	q := MustNew([]float64{1, 2}, []float64{1, 1})
	r := MustNew([]float64{1, 3}, []float64{1, 1})
	if !p.Equal(q, 1e-12) {
		t.Fatal("identical pdfs should be Equal")
	}
	if p.Equal(r, 1e-12) {
		t.Fatal("different pdfs should not be Equal")
	}
	if p.Equal(Point(1), 1e-12) {
		t.Fatal("different sample counts should not be Equal")
	}
}

// Property: CDF is monotone non-decreasing and hits {0,1} at the extremes.
func TestQuickCDFMonotone(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(30)
		xs := make([]float64, n)
		ms := make([]float64, n)
		for i := range xs {
			xs[i] = rng.Float64()*200 - 100
			ms[i] = rng.Float64() + 1e-3
		}
		p := MustNew(xs, ms)
		prev := -1.0
		for x := p.Min() - 1; x <= p.Max()+1; x += (p.Max() - p.Min() + 2) / 57 {
			c := p.CDF(x)
			if c < prev-1e-12 || c < 0 || c > 1 {
				return false
			}
			prev = c
		}
		return p.CDF(p.Min()-1) == 0 && p.CDF(p.Max()) == 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: SplitAt at any sample point yields parts whose recombined CDF
// matches the original at every sample location.
func TestQuickSplitRecombines(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(15)
		xs := make([]float64, n)
		ms := make([]float64, n)
		for i := range xs {
			xs[i] = float64(rng.Intn(50))
			ms[i] = rng.Float64() + 1e-3
		}
		p := MustNew(xs, ms)
		if p.NumSamples() < 2 {
			return true
		}
		z := p.X(rng.Intn(p.NumSamples() - 1))
		l, r, pL := p.SplitAt(z)
		for i := 0; i < p.NumSamples(); i++ {
			x := p.X(i)
			var c float64
			if l != nil {
				c += pL * l.CDF(x)
			}
			if r != nil {
				c += (1 - pL) * r.CDF(x)
			}
			if math.Abs(c-p.CDF(x)) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestString(t *testing.T) {
	if s := Point(2).String(); s != "point(2)" {
		t.Fatalf("String = %q", s)
	}
	p := MustNew([]float64{0, 1}, []float64{1, 1})
	if p.String() == "" {
		t.Fatal("empty String")
	}
}
