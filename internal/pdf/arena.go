package pdf

import (
	"math"
	"sort"
)

// SplitArena recycles the PDF structs and cumulative-mass slices produced by
// SplitAtArena, so that a hot classification loop splits pdfs without any
// steady-state heap allocation: after a few warm-up calls the arena's slabs
// have grown to the working-set size and every subsequent split reuses them.
//
// Pointers handed out before a slab grows keep referring to the earlier
// backing array, which stays reachable and is never written again, so
// previously returned PDFs remain valid until Reset. An arena must not be
// shared between goroutines; give each worker its own and Reset it between
// classification calls.
type SplitArena struct {
	pdfs []PDF
	cums []float64
}

// Reset reclaims all storage handed out since the previous Reset. PDFs
// obtained from the arena must not be used afterwards.
func (a *SplitArena) Reset() {
	a.pdfs = a.pdfs[:0]
	a.cums = a.cums[:0]
}

// SplitAtArena is SplitAt with the result storage drawn from the arena. The
// returned PDFs are valid until the next call to a.Reset. A nil arena falls
// back to the allocating SplitAt.
//
//udt:hotpath
func (p *PDF) SplitAtArena(z float64, a *SplitArena) (left, right *PDF, pL float64) {
	if a == nil {
		return p.SplitAt(z)
	}
	idx := sort.SearchFloat64s(p.xs, math.Nextafter(z, math.Inf(1)))
	if idx == 0 {
		return nil, p, 0
	}
	if idx == len(p.xs) {
		return p, nil, 1
	}
	pL = p.cum[idx-1]
	if pL <= massEps {
		return nil, p, 0
	}
	if pL >= 1-massEps {
		return p, nil, 1
	}
	// Both sides carry mass: renormalise the two halves of the cumulative
	// array into arena storage. The sample locations are shared subslices of
	// the (immutable) parent, as in SplitAt.
	n := len(p.xs)
	base := len(a.cums)
	a.cums = append(a.cums, p.cum...)
	buf := a.cums[base : base+n]
	lcum, rcum := buf[:idx], buf[idx:]
	for i := range lcum {
		lcum[i] /= pL
	}
	lcum[idx-1] = 1
	pR := 1 - pL
	for i := range rcum {
		rcum[i] = (rcum[i] - pL) / pR
	}
	rcum[len(rcum)-1] = 1
	pb := len(a.pdfs)
	a.pdfs = append(a.pdfs,
		PDF{xs: p.xs[:idx], cum: lcum},
		PDF{xs: p.xs[idx:], cum: rcum})
	return &a.pdfs[pb], &a.pdfs[pb+1], pL
}
