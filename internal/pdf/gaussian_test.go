package pdf

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// TestGaussianMassMatchesAnalyticCDF: each discretisation cell must carry
// exactly the Gaussian mass of that cell (before renormalisation), so the
// discrete CDF tracks the analytic truncated-Gaussian CDF.
func TestGaussianMassMatchesAnalyticCDF(t *testing.T) {
	mean, sigma, a, b := 3.0, 1.5, -1.0, 7.0
	const s = 201
	p, err := Gaussian(mean, sigma, a, b, s)
	if err != nil {
		t.Fatal(err)
	}
	z := func(x float64) float64 { return gaussCDF(mean, sigma, x) }
	norm := z(b) - z(a)
	for _, x := range []float64{0, 1.7, 3, 4.2, 6} {
		analytic := (z(x) - z(a)) / norm
		// The discrete CDF is a staircase; at cell width 8/200 = 0.04 it
		// should track the analytic CDF within half a cell of mass.
		got := p.CDF(x)
		if math.Abs(got-analytic) > 0.02 {
			t.Fatalf("CDF(%v) = %v, analytic %v", x, got, analytic)
		}
	}
}

// TestGaussianAsymmetricTruncationShiftsMean: truncating a Gaussian
// asymmetrically moves the mean toward the retained side.
func TestGaussianAsymmetricTruncationShiftsMean(t *testing.T) {
	p, err := Gaussian(0, 1, -0.5, 3, 301)
	if err != nil {
		t.Fatal(err)
	}
	if p.Mean() <= 0 {
		t.Fatalf("mean = %v, want > 0 after right-leaning truncation", p.Mean())
	}
}

// TestQuickMassesSumToOne: every constructor yields a distribution whose
// total mass is exactly one.
func TestQuickMassesSumToOne(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var p *PDF
		switch rng.Intn(4) {
		case 0:
			p = Point(rng.NormFloat64())
		case 1:
			a := rng.NormFloat64()
			p, _ = Uniform(a, a+rng.Float64()*5+0.01, 1+rng.Intn(50))
		case 2:
			m := rng.NormFloat64()
			p, _ = Gaussian(m, rng.Float64()+0.01, m-2, m+2, 1+rng.Intn(50))
		default:
			obs := make([]float64, 1+rng.Intn(20))
			for i := range obs {
				obs[i] = rng.NormFloat64()
			}
			p, _ = FromSamples(obs)
		}
		if p == nil {
			return false
		}
		total := 0.0
		for i := 0; i < p.NumSamples(); i++ {
			m := p.Mass(i)
			if m < 0 {
				return false
			}
			total += m
		}
		return math.Abs(total-1) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickQuantileInverseOfCDF: Quantile(CDF(x)) <= x and
// CDF(Quantile(q)) >= q for all sample points and probabilities.
func TestQuickQuantileInverseOfCDF(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(20)
		xs := make([]float64, n)
		ms := make([]float64, n)
		for i := range xs {
			xs[i] = float64(rng.Intn(100))
			ms[i] = rng.Float64() + 0.01
		}
		p := MustNew(xs, ms)
		for i := 0; i < p.NumSamples(); i++ {
			x := p.X(i)
			if p.Quantile(p.CDF(x)) > x {
				return false
			}
		}
		for q := 0.05; q < 1; q += 0.1 {
			if p.CDF(p.Quantile(q)) < q-1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestVarianceOfUniform: the discretised uniform's variance approaches the
// analytic (b-a)²/12 · (s+1)/(s-1) — for equally spaced equal-mass points
// the exact variance is (b-a)²(s+1)/(12(s-1)).
func TestVarianceOfUniform(t *testing.T) {
	a, b := 2.0, 8.0
	const s = 101
	p, err := Uniform(a, b, s)
	if err != nil {
		t.Fatal(err)
	}
	want := (b - a) * (b - a) * float64(s+1) / (12 * float64(s-1))
	if math.Abs(p.Variance()-want) > 1e-9 {
		t.Fatalf("variance = %v, want %v", p.Variance(), want)
	}
}

// TestSplitAtEverySamplePoint: splitting at each sample location in turn
// partitions the mass monotonically.
func TestSplitAtEverySamplePoint(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	xs := make([]float64, 30)
	ms := make([]float64, 30)
	for i := range xs {
		xs[i] = rng.NormFloat64() * 5
		ms[i] = rng.Float64() + 0.01
	}
	p := MustNew(xs, ms)
	prev := 0.0
	for i := 0; i < p.NumSamples(); i++ {
		_, _, pL := p.SplitAt(p.X(i))
		if pL < prev {
			t.Fatalf("left mass decreased: %v after %v", pL, prev)
		}
		prev = pL
	}
	if math.Abs(prev-1) > 1e-12 {
		t.Fatalf("final left mass = %v, want 1", prev)
	}
}
