package pdf

import (
	"math/rand"
	"testing"
)

func benchPDF(b *testing.B, s int) *PDF {
	b.Helper()
	p, err := Gaussian(0, 1, -3, 3, s)
	if err != nil {
		b.Fatal(err)
	}
	return p
}

func BenchmarkGaussianConstruct(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := Gaussian(0, 1, -3, 3, 100); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkUniformConstruct(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := Uniform(-3, 3, 100); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCDF(b *testing.B) {
	p := benchPDF(b, 100)
	rng := rand.New(rand.NewSource(1))
	xs := make([]float64, 1024)
	for i := range xs {
		xs[i] = rng.Float64()*8 - 4
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.CDF(xs[i%len(xs)])
	}
}

func BenchmarkSplitAt(b *testing.B) {
	p := benchPDF(b, 100)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.SplitAt(p.X(i % p.NumSamples()))
	}
}

func BenchmarkFromSamples(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	obs := make([]float64, 25)
	for i := range obs {
		obs[i] = rng.NormFloat64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := FromSamples(obs); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMean(b *testing.B) {
	p := benchPDF(b, 100)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = p.Mean()
	}
}
