package split

import (
	"math"
	"math/rand"
	"testing"

	"udt/internal/data"
	"udt/internal/pdf"
)

// TestPercentileEndsAgreeWithExhaustive is the §7.3 safety property: with
// artificial percentile end points, every pruned strategy must still return
// a split with the exhaustive optimum's score (the interval partition
// changes, the theorems' validity does not).
func TestPercentileEndsAgreeWithExhaustive(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 20; trial++ {
		tuples := randomDataset(rng, 6+rng.Intn(20), 1+rng.Intn(2), 2+rng.Intn(3), 2+rng.Intn(8))
		k := len(tuples[0].Num)
		ref := NewFinder(Config{Measure: Entropy, Strategy: UDT}).Best(tuples, k, 5)
		for _, strat := range []Strategy{BP, LP, GP, ES} {
			got := NewFinder(Config{
				Measure:   Entropy,
				Strategy:  strat,
				EndPoints: PercentileEnds,
			}).Best(tuples, k, 5)
			if got.Found != ref.Found {
				t.Fatalf("percentile/%v trial %d: Found mismatch", strat, trial)
			}
			if ref.Found && math.Abs(got.Score-ref.Score) > 1e-9 {
				t.Fatalf("percentile/%v trial %d: score %v != exhaustive %v",
					strat, trial, got.Score, ref.Score)
			}
		}
	}
}

// TestPercentileEndsCoverDomain: the artificial end points must include the
// global extremes so that no candidate escapes the interval partition.
func TestPercentileEndsCoverDomain(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	tuples := randomDataset(rng, 20, 1, 3, 10)
	v := buildAttrView(tuples, 0, 3)
	f := NewFinder(Config{EndPoints: PercentileEnds, Percentiles: 9})
	ends := f.endsFor(v)
	if ends[0] != v.xs[0] {
		t.Fatalf("first end %v != global min %v", ends[0], v.xs[0])
	}
	if ends[len(ends)-1] != v.xs[len(v.xs)-1] {
		t.Fatalf("last end %v != global max %v", ends[len(ends)-1], v.xs[len(v.xs)-1])
	}
	for i := 1; i < len(ends); i++ {
		if ends[i] <= ends[i-1] {
			t.Fatal("ends not strictly increasing")
		}
	}
	// At most 9 per class plus two extremes.
	if len(ends) > 9*3+2 {
		t.Fatalf("%d ends exceed bound", len(ends))
	}
}

// TestPercentileEndsFewerThanDomainEnds: on wide overlapping pdfs the
// percentile partition is much smaller than the ms domain-end partition
// would make the candidate pool — that is its purpose.
func TestPercentileEndsFewerThanDomainEnds(t *testing.T) {
	tuples := make([]*data.Tuple, 50)
	rng := rand.New(rand.NewSource(33))
	for i := range tuples {
		c := rng.NormFloat64()
		p, _ := pdf.Gaussian(c, 2, c-6, c+6, 40)
		tuples[i] = &data.Tuple{Num: []*pdf.PDF{p}, Class: i % 2, Weight: 1}
	}
	v := buildAttrView(tuples, 0, 2)
	f := NewFinder(Config{EndPoints: PercentileEnds})
	if len(f.endsFor(v)) >= len(v.ends) {
		t.Fatalf("percentile ends (%d) should undercut domain ends (%d)",
			len(f.endsFor(v)), len(v.ends))
	}
}

func TestEndPointModeString(t *testing.T) {
	if DomainEnds.String() != "domain" || PercentileEnds.String() != "percentile" {
		t.Fatal("EndPointMode.String broken")
	}
}
