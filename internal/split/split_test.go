package split

import (
	"math"
	"math/rand"
	"testing"

	"udt/internal/data"
	"udt/internal/pdf"
)

// randomDataset builds a small random uncertain dataset for property tests.
func randomDataset(rng *rand.Rand, m, k, classes, s int) []*data.Tuple {
	tuples := make([]*data.Tuple, m)
	for i := range tuples {
		num := make([]*pdf.PDF, k)
		class := rng.Intn(classes)
		for j := range num {
			centre := float64(class)*1.5 + rng.NormFloat64()
			width := 0.2 + rng.Float64()*2
			switch rng.Intn(3) {
			case 0:
				num[j] = pdf.Point(centre)
			case 1:
				p, _ := pdf.Uniform(centre-width/2, centre+width/2, s)
				num[j] = p
			default:
				p, _ := pdf.Gaussian(centre, width/4, centre-width/2, centre+width/2, s)
				num[j] = p
			}
		}
		w := 1.0
		if rng.Intn(3) == 0 {
			w = 0.1 + rng.Float64() // fractional tuples appear mid-tree
		}
		tuples[i] = &data.Tuple{Num: num, Class: class, Weight: w}
	}
	return tuples
}

func TestEntropyOf(t *testing.T) {
	if h := entropyOf([]float64{1, 1}, 2); math.Abs(h-1) > 1e-12 {
		t.Fatalf("H(1/2,1/2) = %v, want 1", h)
	}
	if h := entropyOf([]float64{4, 0}, 4); h != 0 {
		t.Fatalf("pure entropy = %v, want 0", h)
	}
	if h := entropyOf(nil, 0); h != 0 {
		t.Fatalf("empty entropy = %v", h)
	}
	if h := entropyOf([]float64{1, 1, 1, 1}, -1); math.Abs(h-2) > 1e-12 {
		t.Fatalf("H(uniform 4) = %v, want 2", h)
	}
}

func TestGiniOf(t *testing.T) {
	if g := giniOf([]float64{1, 1}, 2); math.Abs(g-0.5) > 1e-12 {
		t.Fatalf("gini(1/2,1/2) = %v, want 0.5", g)
	}
	if g := giniOf([]float64{3, 0}, -1); g != 0 {
		t.Fatalf("pure gini = %v", g)
	}
}

func TestSplitInfo(t *testing.T) {
	if si := splitInfo(1, 1); math.Abs(si-1) > 1e-12 {
		t.Fatalf("splitInfo(1,1) = %v, want 1", si)
	}
	if si := splitInfo(1, 0); si != 0 {
		t.Fatalf("degenerate splitInfo = %v", si)
	}
}

func TestBinarySplitScoreInvalid(t *testing.T) {
	if _, ok := binarySplitScore(Entropy, []float64{1}, []float64{0}, 1, 0, 0); ok {
		t.Fatal("empty right subset should be invalid")
	}
	if _, ok := binarySplitScore(Measure(42), []float64{1}, []float64{1}, 1, 1, 0); ok {
		t.Fatal("unknown measure should be invalid")
	}
}

func TestAttrViewPrefixSums(t *testing.T) {
	tuples := []*data.Tuple{
		{Num: []*pdf.PDF{pdf.MustNew([]float64{1, 3}, []float64{1, 1})}, Class: 0, Weight: 2},
		{Num: []*pdf.PDF{pdf.Point(2)}, Class: 1, Weight: 1},
	}
	v := buildAttrView(tuples, 0, 2)
	if v == nil {
		t.Fatal("nil view")
	}
	if len(v.xs) != 3 {
		t.Fatalf("distinct locations = %d, want 3", len(v.xs))
	}
	out := make([]float64, 2)
	if nL := v.leftCounts(1, out); math.Abs(nL-1) > 1e-12 || math.Abs(out[0]-1) > 1e-12 {
		t.Fatalf("leftCounts(1) = %v total %v", out, nL)
	}
	if nL := v.leftCounts(2, out); math.Abs(nL-2) > 1e-12 || math.Abs(out[1]-1) > 1e-12 {
		t.Fatalf("leftCounts(2) = %v total %v", out, nL)
	}
	if nL := v.leftCounts(0.5, out); nL != 0 {
		t.Fatalf("leftCounts below min = %v", nL)
	}
	if tot := v.massIn(1, 3, out); math.Abs(tot-2) > 1e-12 {
		t.Fatalf("massIn(1,3] = %v, want 2", tot)
	}
	if len(v.ends) != 4 { // 1, 2, 3 and... ends are {1,3} ∪ {2,2} = {1,2,3}
		if len(v.ends) != 3 {
			t.Fatalf("ends = %v", v.ends)
		}
	}
}

func TestAttrViewMissingValues(t *testing.T) {
	tuples := []*data.Tuple{
		{Num: []*pdf.PDF{nil}, Class: 0, Weight: 1},
	}
	if v := buildAttrView(tuples, 0, 1); v != nil {
		t.Fatal("all-missing attribute should give nil view")
	}
}

func TestClassify(t *testing.T) {
	if classify([]float64{0, 0}) != emptyInterval {
		t.Fatal("empty misclassified")
	}
	if classify([]float64{0, 1}) != homogeneousInterval {
		t.Fatal("homogeneous misclassified")
	}
	if classify([]float64{1, 1}) != heterogeneousInterval {
		t.Fatal("heterogeneous misclassified")
	}
}

func TestSampleIndices(t *testing.T) {
	idx := sampleIndices(25, 10)
	want := []int{0, 10, 20, 24}
	if len(idx) != len(want) {
		t.Fatalf("sampleIndices(25,10) = %v", idx)
	}
	for i := range want {
		if idx[i] != want[i] {
			t.Fatalf("sampleIndices(25,10) = %v, want %v", idx, want)
		}
	}
	if got := sampleIndices(0, 10); got != nil {
		t.Fatalf("sampleIndices(0) = %v", got)
	}
	if got := sampleIndices(1, 10); len(got) != 1 || got[0] != 0 {
		t.Fatalf("sampleIndices(1) = %v", got)
	}
	// Exact multiple: last element must not duplicate.
	if got := sampleIndices(21, 10); got[len(got)-1] != 20 || len(got) != 3 {
		t.Fatalf("sampleIndices(21,10) = %v", got)
	}
}

// TestStrategiesAgree is the central safety property: every pruning
// strategy must return a split whose score equals the exhaustive optimum
// (Theorems 1-3 and the §5.2 bounds are "safe pruning").
func TestStrategiesAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for _, measure := range []Measure{Entropy, Gini} {
		for trial := 0; trial < 25; trial++ {
			tuples := randomDataset(rng, 4+rng.Intn(20), 1+rng.Intn(3), 2+rng.Intn(3), 1+rng.Intn(8))
			ref := NewFinder(Config{Measure: measure, Strategy: UDT}).Best(tuples, len(tuples[0].Num), 5)
			for _, strat := range []Strategy{BP, LP, GP, ES} {
				got := NewFinder(Config{Measure: measure, Strategy: strat}).Best(tuples, len(tuples[0].Num), 5)
				if got.Found != ref.Found {
					t.Fatalf("%v/%v trial %d: Found=%v, exhaustive Found=%v", measure, strat, trial, got.Found, ref.Found)
				}
				if ref.Found && math.Abs(got.Score-ref.Score) > 1e-9 {
					t.Fatalf("%v/%v trial %d: score %v != exhaustive %v (z=%v vs %v, attr %d vs %d)",
						measure, strat, trial, got.Score, ref.Score, got.Z, ref.Z, got.Attr, ref.Attr)
				}
			}
		}
	}
}

// TestGainRatioStrategiesAgree checks the §7.4 gain-ratio variant, where
// homogeneous intervals may not be skipped but empty ones may.
func TestGainRatioStrategiesAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 25; trial++ {
		tuples := randomDataset(rng, 4+rng.Intn(16), 1+rng.Intn(2), 2+rng.Intn(2), 1+rng.Intn(6))
		ref := NewFinder(Config{Measure: GainRatio, Strategy: UDT}).Best(tuples, len(tuples[0].Num), 4)
		for _, strat := range []Strategy{BP, LP, GP, ES} {
			got := NewFinder(Config{Measure: GainRatio, Strategy: strat}).Best(tuples, len(tuples[0].Num), 4)
			if got.Found != ref.Found {
				t.Fatalf("gainratio/%v trial %d: Found mismatch", strat, trial)
			}
			if ref.Found && math.Abs(got.Score-ref.Score) > 1e-9 {
				t.Fatalf("gainratio/%v trial %d: score %v != exhaustive %v", strat, trial, got.Score, ref.Score)
			}
		}
	}
}

// TestPruningReducesWork verifies the paper's efficiency ordering on a
// dataset large enough for pruning to engage: evaluations(ES) <= ... is not
// strictly guaranteed per instance, but every pruned strategy must do at
// most the exhaustive count, and BP must never exceed UDT.
func TestPruningReducesWork(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	tuples := randomDataset(rng, 60, 3, 3, 20)
	counts := map[Strategy]int64{}
	for _, strat := range []Strategy{UDT, BP, LP, GP, ES} {
		fd := NewFinder(Config{Measure: Entropy, Strategy: strat})
		fd.Best(tuples, 3, 3)
		counts[strat] = fd.Stats().EntropyCalcs()
	}
	if counts[BP] > counts[UDT] {
		t.Fatalf("BP did more work than UDT: %d > %d", counts[BP], counts[UDT])
	}
	if counts[LP] > counts[BP] {
		t.Fatalf("LP did more work than BP: %d > %d", counts[LP], counts[BP])
	}
	if counts[GP] > counts[LP] {
		t.Fatalf("GP did more work than LP: %d > %d", counts[GP], counts[LP])
	}
	if counts[ES] > counts[UDT] {
		t.Fatalf("ES did more work than UDT: %d > %d", counts[ES], counts[UDT])
	}
	if counts[GP] == counts[UDT] {
		t.Fatal("GP pruned nothing on a dataset designed to be prunable")
	}
}

// TestEntropyBoundIsSafe verifies empirically that Eq. (3) really lower
// bounds the entropy of every split point inside a heterogeneous interval.
func TestEntropyBoundIsSafe(t *testing.T) {
	testBoundIsSafe(t, Entropy)
}

// TestGiniBoundIsSafe does the same for Eq. (4).
func TestGiniBoundIsSafe(t *testing.T) {
	testBoundIsSafe(t, Gini)
}

func testBoundIsSafe(t *testing.T, m Measure) {
	t.Helper()
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 40; trial++ {
		tuples := randomDataset(rng, 4+rng.Intn(12), 1, 2+rng.Intn(3), 2+rng.Intn(6))
		nClasses := 5
		v := buildAttrView(tuples, 0, nClasses)
		if v == nil || len(v.ends) < 2 {
			continue
		}
		f := NewFinder(Config{Measure: m, Strategy: UDT})
		f.ensureScratch(nClasses)
		for i := 0; i+1 < len(v.ends); i++ {
			a, b := v.ends[i], v.ends[i+1]
			lo, hi := v.interiorRange(a, b)
			if lo >= hi {
				continue
			}
			v.massIn(a, b, f.kBuf)
			if classify(f.kBuf) != heterogeneousInterval {
				continue
			}
			nLa := v.leftCounts(a, f.nBuf)
			_ = nLa
			for c := range f.mBuf {
				f.mBuf[c] = v.totals[c] - f.nBuf[c] - f.kBuf[c]
			}
			in := boundInput{n: f.nBuf, k: f.kBuf, m: f.mBuf}
			var bound float64
			if m == Entropy {
				bound = entropyLowerBound(in)
			} else {
				bound = giniLowerBound(in)
			}
			left := make([]float64, nClasses)
			right := make([]float64, nClasses)
			for x := lo; x < hi; x++ {
				nL := v.leftCounts(v.xs[x], left)
				for c := range right {
					right[c] = v.totals[c] - left[c]
				}
				score, ok := binarySplitScore(m, left, right, nL, v.total-nL, 0)
				if !ok {
					continue
				}
				if bound > score+1e-9 {
					t.Fatalf("trial %d %v: bound %v exceeds interior score %v at z=%v (interval (%v,%v])",
						trial, m, bound, score, v.xs[x], a, b)
				}
			}
		}
	}
}

func TestCategoricalScore(t *testing.T) {
	// A perfectly informative categorical attribute.
	tuples := []*data.Tuple{
		{Cat: []data.CatDist{{1, 0}}, Class: 0, Weight: 1},
		{Cat: []data.CatDist{{1, 0}}, Class: 0, Weight: 1},
		{Cat: []data.CatDist{{0, 1}}, Class: 1, Weight: 1},
	}
	f := NewFinder(Config{Measure: Entropy})
	score, ok := f.CategoricalScore(tuples, 0, 2, 2)
	if !ok {
		t.Fatal("split should be valid")
	}
	if score > 1e-12 {
		t.Fatalf("perfect split score = %v, want 0", score)
	}
	if f.Stats().SplitEvals != 1 {
		t.Fatalf("SplitEvals = %d, want 1", f.Stats().SplitEvals)
	}
}

func TestCategoricalScoreFractional(t *testing.T) {
	// A tuple spread 50/50 over the domain contributes to both buckets.
	tuples := []*data.Tuple{
		{Cat: []data.CatDist{{0.5, 0.5}}, Class: 0, Weight: 1},
		{Cat: []data.CatDist{{0, 1}}, Class: 1, Weight: 1},
	}
	f := NewFinder(Config{Measure: Entropy})
	score, ok := f.CategoricalScore(tuples, 0, 2, 2)
	if !ok {
		t.Fatal("split should be valid")
	}
	// Bucket 0: pure class 0 (mass 0.5). Bucket 1: 0.5 class 0 + 1 class 1.
	want := 1.5 / 2 * entropyOf([]float64{0.5, 1}, 1.5)
	if math.Abs(score-want) > 1e-9 {
		t.Fatalf("score = %v, want %v", score, want)
	}
}

func TestCategoricalScoreDegenerate(t *testing.T) {
	f := NewFinder(Config{Measure: Entropy})
	// All mass in one bucket: useless split.
	tuples := []*data.Tuple{
		{Cat: []data.CatDist{{1, 0}}, Class: 0, Weight: 1},
		{Cat: []data.CatDist{{1, 0}}, Class: 1, Weight: 1},
	}
	if _, ok := f.CategoricalScore(tuples, 0, 2, 2); ok {
		t.Fatal("single-bucket split should be invalid")
	}
	// Missing values only.
	missing := []*data.Tuple{{Cat: []data.CatDist{nil}, Class: 0, Weight: 1}}
	if _, ok := f.CategoricalScore(missing, 0, 2, 2); ok {
		t.Fatal("all-missing split should be invalid")
	}
}

func TestCategoricalScoreGainRatio(t *testing.T) {
	tuples := []*data.Tuple{
		{Cat: []data.CatDist{{1, 0}}, Class: 0, Weight: 1},
		{Cat: []data.CatDist{{0, 1}}, Class: 1, Weight: 1},
	}
	f := NewFinder(Config{Measure: GainRatio})
	score, ok := f.CategoricalScore(tuples, 0, 2, 2)
	if !ok {
		t.Fatal("split should be valid")
	}
	// Gain = 1 bit, split info = 1 bit, so gain ratio 1, score -1.
	if math.Abs(score+1) > 1e-9 {
		t.Fatalf("gain-ratio score = %v, want -1", score)
	}
}

func TestBestNoValidSplit(t *testing.T) {
	// One tuple: any split leaves one side empty.
	tuples := []*data.Tuple{{Num: []*pdf.PDF{pdf.Point(1)}, Class: 0, Weight: 1}}
	for _, strat := range []Strategy{UDT, BP, LP, GP, ES} {
		res := NewFinder(Config{Measure: Entropy, Strategy: strat}).Best(tuples, 1, 1)
		if res.Found {
			t.Fatalf("%v: found a split on a single point tuple", strat)
		}
	}
}

func TestBestGainComputation(t *testing.T) {
	// Perfectly separable points: gain must equal the parent entropy (1 bit).
	tuples := []*data.Tuple{
		{Num: []*pdf.PDF{pdf.Point(0)}, Class: 0, Weight: 1},
		{Num: []*pdf.PDF{pdf.Point(1)}, Class: 1, Weight: 1},
	}
	res := NewFinder(Config{Measure: Entropy, Strategy: UDT}).Best(tuples, 1, 2)
	if !res.Found {
		t.Fatal("no split found")
	}
	if math.Abs(res.Gain-1) > 1e-12 || math.Abs(res.Score) > 1e-12 {
		t.Fatalf("gain = %v score = %v, want 1 and 0", res.Gain, res.Score)
	}
	if res.Z != 0 {
		t.Fatalf("split point = %v, want 0", res.Z)
	}
}

func TestStatsAccumulate(t *testing.T) {
	var s Stats
	s.Add(Stats{SplitEvals: 2, BoundEvals: 3, PrunedIntervals: 1, PrunedCoarse: 4})
	s.Add(Stats{SplitEvals: 1})
	if s.SplitEvals != 3 || s.BoundEvals != 3 || s.PrunedIntervals != 1 || s.PrunedCoarse != 4 {
		t.Fatalf("Stats.Add wrong: %+v", s)
	}
	if s.EntropyCalcs() != 6 {
		t.Fatalf("EntropyCalcs = %d, want 6", s.EntropyCalcs())
	}
}

func TestStrategyAndMeasureStrings(t *testing.T) {
	for s, want := range map[Strategy]string{UDT: "UDT", BP: "UDT-BP", LP: "UDT-LP", GP: "UDT-GP", ES: "UDT-ES"} {
		if s.String() != want {
			t.Fatalf("%d.String() = %q", s, s.String())
		}
	}
	if Strategy(9).String() == "" || Measure(9).String() == "" {
		t.Fatal("unknown enums should still print")
	}
	for m, want := range map[Measure]string{Entropy: "entropy", Gini: "gini", GainRatio: "gainratio"} {
		if m.String() != want {
			t.Fatalf("%d.String() = %q", m, m.String())
		}
	}
}

func TestFinderConfigDefaults(t *testing.T) {
	f := NewFinder(Config{Strategy: ES})
	if f.Config().EndPointFrac != 0.1 {
		t.Fatalf("default EndPointFrac = %v, want 0.1", f.Config().EndPointFrac)
	}
	f2 := NewFinder(Config{Strategy: ES, EndPointFrac: 0.25})
	if f2.Config().EndPointFrac != 0.25 {
		t.Fatal("explicit EndPointFrac overridden")
	}
}

func TestResetStats(t *testing.T) {
	tuples := randomDataset(rand.New(rand.NewSource(3)), 10, 1, 2, 4)
	f := NewFinder(Config{Measure: Entropy, Strategy: UDT})
	f.Best(tuples, 1, 2)
	if f.Stats().SplitEvals == 0 {
		t.Fatal("no work recorded")
	}
	f.ResetStats()
	if f.Stats() != (Stats{}) {
		t.Fatal("ResetStats did not zero counters")
	}
}

// TestTheorem3Concavity verifies the mathematical claim behind Theorem 3:
// when the per-class tuple counts grow linearly across an interval, the
// split dispersion H(t) is concave in t, so its minimum over the interval
// is attained at an end point. (The discrete pdf representation itself
// never satisfies the linearity premise exactly — mass moves in steps — so
// the implementation always evaluates heterogeneous interiors; the theorem
// is what justifies end-point-only search under analytic uniform pdfs.)
func TestTheorem3Concavity(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for _, m := range []Measure{Entropy, Gini} {
		for trial := 0; trial < 50; trial++ {
			classes := 2 + rng.Intn(4)
			n := make([]float64, classes)      // counts left of the interval
			lambda := make([]float64, classes) // linear growth rates
			mr := make([]float64, classes)     // counts right of the interval
			for c := range n {
				n[c] = rng.Float64() * 5
				lambda[c] = rng.Float64() * 5
				mr[c] = rng.Float64() * 5
			}
			score := func(tt float64) float64 {
				left := make([]float64, classes)
				right := make([]float64, classes)
				var nL, nR float64
				for c := range n {
					left[c] = n[c] + lambda[c]*tt
					right[c] = mr[c] + lambda[c]*(1-tt)
					nL += left[c]
					nR += right[c]
				}
				s, ok := binarySplitScore(m, left, right, nL, nR, 0)
				if !ok {
					t.Fatalf("degenerate synthetic split")
				}
				return s
			}
			endMin := math.Min(score(0), score(1))
			for tt := 0.01; tt < 1; tt += 0.01 {
				if s := score(tt); s < endMin-1e-9 {
					t.Fatalf("%v trial %d: interior score %v at t=%v beats end points %v (H not concave?)",
						m, trial, s, tt, endMin)
				}
			}
		}
	}
}
