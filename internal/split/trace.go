package split

import (
	"fmt"
	"io"
	"math"
	"strings"

	"udt/internal/data"
)

// TraceES replays the End-point Sampling process of §5.3 on a single
// attribute and records every step, reproducing the nine rows of the
// paper's Fig 5: pdf domains, end points, fine intervals, the sampled end
// points, coarse intervals, the coarse intervals surviving the bound,
// re-expanded end points, their fine intervals, and the final candidate
// intervals whose interiors must be evaluated. It is an explanatory
// facility — the production search (Finder.Best with StrategyES) performs
// the same steps without materialising them.

// TraceStep is one row of the Fig 5 illustration.
type TraceStep struct {
	Row       int
	Name      string
	Points    []float64    // for point rows
	Intervals [][2]float64 // for interval rows
}

// TraceES traces attribute attr of the given tuples. cfg supplies the
// measure and the end-point sample fraction. The returned steps always
// number nine, mirroring Fig 5.
func TraceES(tuples []*data.Tuple, attr, numClasses int, cfg Config) ([]TraceStep, error) {
	f := NewFinder(cfg)
	f.ensureScratch(numClasses)
	v := buildAttrView(tuples, attr, numClasses)
	if v == nil {
		return nil, fmt.Errorf("split: attribute %d carries no probability mass", attr)
	}

	var steps []TraceStep
	add := func(name string, points []float64, intervals [][2]float64) {
		steps = append(steps, TraceStep{Row: len(steps) + 1, Name: name, Points: points, Intervals: intervals})
	}

	// Row 1: the pdf domains of the tuples.
	var domains [][2]float64
	for _, t := range tuples {
		if p := t.Num[attr]; p != nil {
			domains = append(domains, [2]float64{p.Min(), p.Max()})
		}
	}
	add("pdf domains", nil, domains)

	// Row 2: the end point set Q_j.
	ends := f.endsFor(v)
	add("end points Q_j", append([]float64(nil), ends...), nil)

	// Row 3: the fine intervals the end points induce.
	add("fine intervals", nil, consecutive(ends))

	// Row 4: the sampled end points Q'_j.
	sampledIdx := sampleIndices(len(ends), f.esStride())
	sampled := make([]float64, len(sampledIdx))
	for i, idx := range sampledIdx {
		sampled[i] = ends[idx]
	}
	add("sampled end points Q'_j", sampled, nil)

	// Row 5: the coarse intervals between sampled end points.
	add("coarse intervals", nil, consecutive(sampled))

	// Establish the pruning threshold from the sampled end points, as
	// phase 1 of UDT-ES does.
	parentH := f.parentEntropy(tuples, numClasses)
	best := Result{Score: math.Inf(1)}
	for _, idx := range sampledIdx {
		if idx+1 < len(ends) {
			f.evalCandidate(v, attr, ends[idx], parentH, &best)
		}
	}

	// Row 6: coarse intervals surviving empty/homogeneous skipping and the
	// bound (the candidate set Y' of the paper).
	var surviving [][2]float64
	var expandedEnds []float64
	var fineSurviving [][2]float64
	for s := 0; s+1 < len(sampledIdx); s++ {
		loEnd, hiEnd := sampledIdx[s], sampledIdx[s+1]
		a, b := ends[loEnd], ends[hiEnd]
		lo, hi := v.interiorRange(a, b)
		if lo >= hi {
			continue
		}
		kTotal := v.massIn(a, b, f.kBuf)
		kind := classify(f.kBuf)
		if kind == emptyInterval || (kind == homogeneousInterval && f.cfg.Measure != GainRatio) {
			continue
		}
		if f.pruneByBound(v, a, b, kTotal, parentH, &best) {
			continue
		}
		surviving = append(surviving, [2]float64{a, b})
		// Row 7 material: the original end points inside the survivor.
		for e := loEnd; e <= hiEnd; e++ {
			expandedEnds = append(expandedEnds, ends[e])
			if e > loEnd && e+1 <= hiEnd && e+1 < len(ends) {
				f.evalCandidate(v, attr, ends[e], parentH, &best)
			}
		}
		// Row 9 material: fine intervals inside the survivor that still
		// need their interiors evaluated.
		for e := loEnd; e+1 <= hiEnd; e++ {
			fa, fb := ends[e], ends[e+1]
			flo, fhi := v.interiorRange(fa, fb)
			if flo >= fhi {
				continue
			}
			fTotal := v.massIn(fa, fb, f.kBuf)
			fkind := classify(f.kBuf)
			if fkind == emptyInterval || (fkind == homogeneousInterval && f.cfg.Measure != GainRatio) {
				continue
			}
			if f.pruneByBound(v, fa, fb, fTotal, parentH, &best) {
				continue
			}
			fineSurviving = append(fineSurviving, [2]float64{fa, fb})
		}
	}
	add("surviving coarse intervals Y'", nil, surviving)

	// Row 7: end points brought back inside the survivors.
	add("re-expanded end points Q''_j", dedupSorted(expandedEnds), nil)

	// Row 8: their fine intervals.
	var fineAll [][2]float64
	for _, iv := range surviving {
		loI := indexOf(ends, iv[0])
		hiI := indexOf(ends, iv[1])
		fineAll = append(fineAll, consecutive(ends[loI:hiI+1])...)
	}
	add("re-expanded fine intervals", nil, fineAll)

	// Row 9: the final candidate intervals Y''.
	add("final candidate intervals Y''", nil, fineSurviving)
	return steps, nil
}

// consecutive pairs consecutive values into intervals.
func consecutive(xs []float64) [][2]float64 {
	if len(xs) < 2 {
		return nil
	}
	out := make([][2]float64, 0, len(xs)-1)
	for i := 0; i+1 < len(xs); i++ {
		out = append(out, [2]float64{xs[i], xs[i+1]})
	}
	return out
}

func dedupSorted(xs []float64) []float64 {
	out := xs[:0]
	for i, x := range xs {
		if i == 0 || x != out[len(out)-1] {
			out = append(out, x)
		}
	}
	return out
}

func indexOf(xs []float64, x float64) int {
	for i, v := range xs {
		if v == x {
			return i
		}
	}
	return -1
}

// FprintTrace renders the trace as the paper's nine annotated rows.
func FprintTrace(w io.Writer, steps []TraceStep) {
	for _, s := range steps {
		fmt.Fprintf(w, "row %d  %-32s", s.Row, s.Name)
		switch {
		case s.Points != nil:
			parts := make([]string, len(s.Points))
			for i, p := range s.Points {
				parts[i] = fmt.Sprintf("%.4g", p)
			}
			fmt.Fprintf(w, "x: %s\n", strings.Join(parts, " "))
		case len(s.Intervals) > 0:
			parts := make([]string, len(s.Intervals))
			for i, iv := range s.Intervals {
				parts[i] = fmt.Sprintf("(%.4g,%.4g]", iv[0], iv[1])
			}
			fmt.Fprintf(w, "%s\n", strings.Join(parts, " "))
		default:
			fmt.Fprintln(w, "(none)")
		}
	}
}
