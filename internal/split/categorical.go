package split

import "udt/internal/data"

// CategoricalScore computes the dispersion of the multiway split on
// categorical attribute catIdx (§7.2): tuples are fractionally distributed
// into one bucket per domain value according to their discrete
// distributions, and the weighted impurity over buckets is returned. ok is
// false when fewer than two buckets receive mass, in which case the split
// is useless. The evaluation counts once toward Stats.SplitEvals.
func (f *Finder) CategoricalScore(tuples []*data.Tuple, catIdx, domainSize, numClasses int) (score float64, ok bool) {
	f.ensureScratch(numClasses)
	f.stats.SplitEvals++

	bucketClass := make([][]float64, domainSize)
	for v := range bucketClass {
		bucketClass[v] = make([]float64, numClasses)
	}
	bucketTotal := make([]float64, domainSize)
	total := 0.0
	for _, t := range tuples {
		d := t.Cat[catIdx]
		if d == nil {
			continue
		}
		for v, p := range d {
			w := t.Weight * p
			if w <= 0 {
				continue
			}
			bucketClass[v][t.Class] += w
			bucketTotal[v] += w
			total += w
		}
	}
	if total <= 0 {
		return 0, false
	}
	nonEmpty := 0
	for _, w := range bucketTotal {
		if w > intervalEps {
			nonEmpty++
		}
	}
	if nonEmpty < 2 {
		return 0, false
	}

	h := 0.0
	for v := range bucketClass {
		if bucketTotal[v] <= 0 {
			continue
		}
		if f.cfg.Measure == Gini {
			h += bucketTotal[v] / total * giniOf(bucketClass[v], bucketTotal[v])
		} else {
			h += bucketTotal[v] / total * entropyOf(bucketClass[v], bucketTotal[v])
		}
	}
	if f.cfg.Measure != GainRatio {
		return h, true
	}

	// Gain ratio: (parent entropy - H) / multiway split information.
	parentCounts := make([]float64, numClasses)
	for _, t := range tuples {
		parentCounts[t.Class] += t.Weight
	}
	parentH := entropyOf(parentCounts, -1)
	si := 0.0
	for _, w := range bucketTotal {
		si -= xlog2(w / total)
	}
	if si <= siEps {
		return 0, false
	}
	return -(parentH - h) / si, true
}
