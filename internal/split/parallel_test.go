package split

import (
	"math"
	"math/rand"
	"sync"
	"testing"
)

var allStrategies = []Strategy{UDT, BP, LP, GP, ES}

// TestParallelBestMatchesSerial is the tentpole determinism guarantee: for
// every strategy and measure, the parallel search must return the identical
// Result — same attribute, same split point, same tie-breaking — as the
// serial search, not merely an equal score.
func TestParallelBestMatchesSerial(t *testing.T) {
	for _, measure := range []Measure{Entropy, Gini, GainRatio} {
		for seed := int64(0); seed < 8; seed++ {
			rng := rand.New(rand.NewSource(seed))
			classes := 2 + rng.Intn(3)
			attrs := 1 + rng.Intn(4)
			tuples := randomDataset(rng, parallelMinTuples+rng.Intn(200), attrs, classes, 2+rng.Intn(20))
			for _, strat := range allStrategies {
				for _, workers := range []int{2, 3, 8} {
					serial := NewFinder(Config{Measure: measure, Strategy: strat}).Best(tuples, attrs, classes)
					parallel := NewFinder(Config{Measure: measure, Strategy: strat, Workers: workers}).Best(tuples, attrs, classes)
					if parallel != serial {
						t.Fatalf("%v/%v seed %d workers %d: parallel %+v != serial %+v",
							measure, strat, seed, workers, parallel, serial)
					}
				}
			}
		}
	}
}

// TestParallelBestPercentileEnds covers the §7.3 artificial end points,
// whose derivation allocates inside the workers.
func TestParallelBestPercentileEnds(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	tuples := randomDataset(rng, 150, 3, 3, 15)
	for _, strat := range []Strategy{GP, ES} {
		cfg := Config{Strategy: strat, EndPoints: PercentileEnds}
		serial := NewFinder(cfg).Best(tuples, 3, 3)
		cfg.Workers = 4
		parallel := NewFinder(cfg).Best(tuples, 3, 3)
		if parallel != serial {
			t.Fatalf("%v percentile ends: parallel %+v != serial %+v", strat, parallel, serial)
		}
	}
}

// TestParallelSmallNodeFallsBackToSerial: below parallelMinTuples the
// parallel path must not engage, so even Stats match the serial search
// exactly.
func TestParallelSmallNodeFallsBackToSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	tuples := randomDataset(rng, parallelMinTuples-1, 2, 3, 8)
	for _, strat := range allStrategies {
		fs := NewFinder(Config{Strategy: strat})
		fp := NewFinder(Config{Strategy: strat, Workers: 8})
		rs, rp := fs.Best(tuples, 2, 3), fp.Best(tuples, 2, 3)
		if rs != rp {
			t.Fatalf("%v: small-node results differ: %+v vs %+v", strat, rp, rs)
		}
		if fs.Stats() != fp.Stats() {
			t.Fatalf("%v: small-node stats differ: %+v vs %+v", strat, fp.Stats(), fs.Stats())
		}
	}
}

// TestParallelStatsPreservePruning pins the acceptance criterion that
// intra-node parallelism does not weaken the §5 pruning.
//
//   - UDT and BP never bound-prune, so their counters must match the
//     serial search exactly.
//   - LP prunes per attribute only (its §5.2 definition): deterministic
//     under parallelism, allowed slightly above serial LP (the serial walk
//     leaks earlier attributes' thresholds into later ones) but still a
//     real pruning gain over BP.
//   - GP and ES share the phase-1 global threshold before any interval is
//     bound-checked, so their entropy-calculation counts must stay within
//     a few percent of the serial counts (timing can shift individual
//     bound checks, never systematically).
func TestParallelStatsPreservePruning(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	tuples := randomDataset(rng, 400, 4, 3, 25)
	serialCalcs := map[Strategy]int64{}
	for _, strat := range allStrategies {
		fs := NewFinder(Config{Strategy: strat})
		fs.Best(tuples, 4, 3)
		serialCalcs[strat] = fs.Stats().EntropyCalcs()

		fp := NewFinder(Config{Strategy: strat, Workers: 8})
		fp.Best(tuples, 4, 3)
		parallel := fp.Stats()
		fp2 := NewFinder(Config{Strategy: strat, Workers: 3})
		fp2.Best(tuples, 4, 3)

		switch strat {
		case UDT, BP:
			if fs.Stats() != parallel {
				t.Fatalf("%v: deterministic stats differ: parallel %+v, serial %+v", strat, parallel, fs.Stats())
			}
		case LP:
			if parallel != fp2.Stats() {
				t.Fatalf("LP: stats not deterministic across worker counts: %+v vs %+v", parallel, fp2.Stats())
			}
			if p, bp := parallel.EntropyCalcs(), serialCalcs[BP]; p >= bp {
				t.Fatalf("LP: parallel pruning gained nothing over BP: %d vs %d", p, bp)
			}
			if p, s := parallel.EntropyCalcs(), serialCalcs[LP]; float64(p) > float64(s)*1.15+32 {
				t.Fatalf("LP: parallel per-attribute pruning too weak: %d calcs vs serial %d", p, s)
			}
		default: // GP, ES
			if p, s := parallel.EntropyCalcs(), serialCalcs[strat]; float64(p) > float64(s)*1.05+32 {
				t.Fatalf("%v: parallel search weakened pruning: %d entropy calcs vs serial %d", strat, p, s)
			}
		}
	}
}

// TestParallelBestStress mirrors TestParallelBuildRace at the split level:
// many concurrent Best calls (each fanning out its own workers) under the
// race detector, with the results cross-checked against one serial answer.
func TestParallelBestStress(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	tuples := randomDataset(rng, 300, 3, 4, 12)
	for _, strat := range allStrategies {
		want := NewFinder(Config{Strategy: strat}).Best(tuples, 3, 4)
		var wg sync.WaitGroup
		results := make([]Result, 6)
		for i := range results {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				f := NewFinder(Config{Strategy: strat, Workers: 4})
				// Reuse the finder to exercise worker-pool recycling.
				for trial := 0; trial < 3; trial++ {
					results[i] = f.Best(tuples, 3, 4)
				}
			}(i)
		}
		wg.Wait()
		for i, got := range results {
			if got != want {
				t.Fatalf("%v goroutine %d: %+v != serial %+v", strat, i, got, want)
			}
		}
	}
}

// TestAtomicScore checks the CAS minimum, including negative (gain-ratio)
// scores.
func TestAtomicScore(t *testing.T) {
	a := newAtomicScore()
	if !math.IsInf(a.load(), 1) {
		t.Fatalf("fresh score = %v, want +Inf", a.load())
	}
	a.update(0.5)
	a.update(0.7) // larger: ignored
	if a.load() != 0.5 {
		t.Fatalf("score = %v, want 0.5", a.load())
	}
	a.update(-1.25)
	if a.load() != -1.25 {
		t.Fatalf("score = %v, want -1.25", a.load())
	}
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for k := 0; k < 1000; k++ {
				a.update(-1.25 - float64(i) - float64(k)/1000)
			}
		}(i)
	}
	wg.Wait()
	if a.load() != -1.25-7-0.999 {
		t.Fatalf("concurrent minimum = %v", a.load())
	}
}

// TestBatches checks the batch partition invariants: full coverage, order,
// minimum length, and the worker cap.
func TestBatches(t *testing.T) {
	f := NewFinder(Config{Workers: 4})
	for _, n := range []int{0, 1, 63, 64, 100, 1000, 4096} {
		bs := f.batches(n, 64)
		if n <= 0 {
			if bs != nil {
				t.Fatalf("batches(%d) = %v, want nil", n, bs)
			}
			continue
		}
		if len(bs) > 4 {
			t.Fatalf("batches(%d): %d pieces exceeds Workers", n, len(bs))
		}
		prev := 0
		for _, b := range bs {
			if b[0] != prev || b[1] <= b[0] {
				t.Fatalf("batches(%d) = %v: not a contiguous ordered partition", n, bs)
			}
			if len(bs) > 1 && b[1]-b[0] < 64/2 {
				t.Fatalf("batches(%d) = %v: piece smaller than half the floor", n, bs)
			}
			prev = b[1]
		}
		if prev != n {
			t.Fatalf("batches(%d) = %v: does not cover [0,%d)", n, bs, n)
		}
	}
}
