package split

import (
	"math"

	"udt/internal/data"
)

// esStride returns the end-point sampling stride implied by EndPointFrac.
func (f *Finder) esStride() int {
	stride := int(math.Ceil(1 / f.cfg.EndPointFrac))
	if stride < 1 {
		stride = 1
	}
	return stride
}

// bestES implements the End-point Sampling strategy of §5.3 (UDT-ES): take
// a sample of each attribute's end points, establish a global pruning
// threshold from the sampled entropies, bound-prune the coarse intervals
// the sample induces, and only expand the surviving coarse intervals back
// to their fine end points and intervals. End-point entropies are computed
// at most once (the sampled ones in phase 1; interior fine ones on
// expansion).
func (f *Finder) bestES(tuples []*data.Tuple, numAttrs, numClasses int, parentH float64, best *Result) {
	stride := f.esStride()

	// Phase 1: evaluate the sampled end points of every attribute, which
	// tightens best into the global threshold of §5.2. Views are cached
	// for reuse by phase 2.
	cache := newViewCache(tuples, numClasses)
	for j := 0; j < numAttrs; j++ {
		v := cache.get(j)
		if v == nil {
			continue
		}
		ends := f.endsFor(v)
		for _, i := range sampleIndices(len(ends), stride) {
			if i+1 < len(ends) { // the largest end point is no valid split
				f.evalCandidate(v, j, ends[i], parentH, best)
			}
		}
	}

	// Phase 2: coarse intervals between consecutive sampled end points.
	for j := 0; j < numAttrs; j++ {
		v := cache.get(j)
		if v == nil {
			continue
		}
		ends := f.endsFor(v)
		sampled := sampleIndices(len(ends), stride)
		f.esExpandRange(v, j, ends, sampled, 0, len(sampled)-1, parentH, best)
	}
}

// esExpandRange processes the coarse intervals formed by the sampled
// end-point indices s in [s0, s1): each is skipped when empty or
// homogeneous (Theorems 1-2), bound-pruned against the global threshold
// (§5.2), and otherwise expanded back to its fine end points and intervals
// (§5.3). It is the unit of work the parallel search batches per worker.
func (f *Finder) esExpandRange(v *attrView, j int, ends []float64, sampled []int, s0, s1 int, parentH float64, best *Result) {
	for s := s0; s < s1; s++ {
		loEnd, hiEnd := sampled[s], sampled[s+1]
		a, b := ends[loEnd], ends[hiEnd]
		lo, hi := v.interiorRange(a, b)
		if lo >= hi {
			continue // nothing strictly inside the coarse interval
		}
		kTotal := v.massIn(a, b, f.kBuf)
		kind := classify(f.kBuf)
		if kind == emptyInterval {
			continue // Theorem 1 covers the fine end points inside too
		}
		if kind == homogeneousInterval && f.cfg.Measure != GainRatio {
			continue // Theorem 2 likewise
		}
		if f.pruneByBound(v, a, b, kTotal, parentH, best) {
			f.stats.PrunedCoarse++
			continue
		}
		// Expansion: the fine end points strictly inside the coarse
		// interval become candidates (they were not sampled), then the
		// fine intervals are pruned individually.
		for e := loEnd + 1; e < hiEnd; e++ {
			f.evalCandidate(v, j, ends[e], parentH, best)
		}
		f.evalIntervals(v, j, ends[loEnd:hiEnd+1], parentH, true, best)
	}
}

// sampleIndices returns every stride-th index of [0, n), always including
// the first and last so the coarse intervals cover the whole domain.
func sampleIndices(n, stride int) []int {
	if n == 0 {
		return nil
	}
	idx := make([]int, 0, n/stride+2)
	for i := 0; i < n; i += stride {
		idx = append(idx, i)
	}
	if idx[len(idx)-1] != n-1 {
		idx = append(idx, n-1)
	}
	return idx
}
