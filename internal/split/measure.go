// Package split implements best-split-point search for uncertain decision
// trees: the dispersion measures (entropy, Gini index, gain ratio), the
// end-point/interval machinery of §5 of Tsang et al., the entropy and Gini
// lower bounds of Eqs. (3) and (4), and the five search strategies UDT,
// UDT-BP, UDT-LP, UDT-GP and UDT-ES.
//
// All strategies are "safe" in the paper's sense: they return a split point
// whose dispersion equals the global minimum found by the exhaustive search,
// while evaluating far fewer candidates. The number of evaluations is
// tracked in Stats, the cost metric of the paper's §6.
package split

import (
	"fmt"
	"math"
)

// Measure selects the dispersion function minimised by the split search.
type Measure int

// Dispersion measures. Entropy is the paper's default (§4.1); Gini and gain
// ratio are the §7.4 generalisations.
const (
	Entropy Measure = iota
	Gini
	GainRatio
)

func (m Measure) String() string {
	switch m {
	case Entropy:
		return "entropy"
	case Gini:
		return "gini"
	case GainRatio:
		return "gainratio"
	default:
		return fmt.Sprintf("Measure(%d)", int(m))
	}
}

// log2 returns x*log2(x) treating 0*log(0) as 0.
func xlog2(x float64) float64 {
	if x <= 0 {
		return 0
	}
	return x * math.Log2(x)
}

// entropyOf returns the entropy in bits of the class-count vector, whose
// total is given (pass a negative total to have it computed).
func entropyOf(counts []float64, total float64) float64 {
	if total < 0 {
		total = 0
		for _, c := range counts {
			total += c
		}
	}
	if total <= 0 {
		return 0
	}
	h := 0.0
	for _, c := range counts {
		h -= xlog2(c / total)
	}
	return h
}

// giniOf returns the Gini impurity 1 - sum p² of the class-count vector.
func giniOf(counts []float64, total float64) float64 {
	if total < 0 {
		total = 0
		for _, c := range counts {
			total += c
		}
	}
	if total <= 0 {
		return 0
	}
	s := 0.0
	for _, c := range counts {
		p := c / total
		s += p * p
	}
	return 1 - s
}

// impurity dispatches on the measure. For GainRatio the node impurity is
// entropy (gain ratio only changes how splits are compared, not how node
// purity is measured).
func impurity(m Measure, counts []float64, total float64) float64 {
	if m == Gini {
		return giniOf(counts, total)
	}
	return entropyOf(counts, total)
}

// binarySplitScore returns the weighted dispersion H(z, A_j) of Eq. (1) for
// a binary split with the given left and right class counts. For GainRatio
// it returns the negated gain ratio so that, like entropy and Gini, lower
// is better; parentH must then be the parent entropy.
func binarySplitScore(m Measure, left, right []float64, nL, nR, parentH float64) (score float64, ok bool) {
	total := nL + nR
	if nL <= 0 || nR <= 0 || total <= 0 {
		return 0, false
	}
	switch m {
	case Entropy:
		return (nL*entropyOf(left, nL) + nR*entropyOf(right, nR)) / total, true
	case Gini:
		return (nL*giniOf(left, nL) + nR*giniOf(right, nR)) / total, true
	case GainRatio:
		h := (nL*entropyOf(left, nL) + nR*entropyOf(right, nR)) / total
		si := splitInfo(nL, nR)
		if si <= siEps {
			return 0, false
		}
		return -(parentH - h) / si, true
	default:
		return 0, false
	}
}

// siEps guards against division by a vanishing split information.
const siEps = 1e-9

// splitInfo returns the split information -sum (n_X/N) log2 (n_X/N) of the
// two-way partition, the gain-ratio denominator of C4.5.
func splitInfo(nL, nR float64) float64 {
	total := nL + nR
	if total <= 0 {
		return 0
	}
	return -xlog2(nL/total) - xlog2(nR/total)
}
