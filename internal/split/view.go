package split

import (
	"slices"
	"sort"

	"udt/internal/data"
)

// attrView is the per-attribute search index: the distinct pdf sample
// locations of all tuples with per-class cumulative weighted mass, plus the
// distinct pdf end points (the Q_j of §5.1). Prefix sums make every
// class-count query — and hence every entropy evaluation — O(|C|).
type attrView struct {
	xs     []float64   // distinct sample locations, ascending
	cum    [][]float64 // cum[c][i] = weighted mass of class c at locations <= xs[i]
	totals []float64   // per-class total weighted mass
	total  float64     // overall mass
	ends   []float64   // distinct pdf end points (Q_j), ascending
}

// event is one weighted pdf sample point.
type event struct {
	x     float64
	mass  float64
	class int
}

// buildAttrView indexes numeric attribute j of the given fractional tuples.
// Tuples whose pdf for j is nil (missing) are skipped. Returns nil when no
// mass is present.
func buildAttrView(tuples []*data.Tuple, j, numClasses int) *attrView {
	nEvents := 0
	for _, t := range tuples {
		if p := t.Num[j]; p != nil {
			nEvents += p.NumSamples()
		}
	}
	if nEvents == 0 {
		return nil
	}
	events := make([]event, 0, nEvents)
	endSet := make([]float64, 0, 2*len(tuples))
	for _, t := range tuples {
		p := t.Num[j]
		if p == nil {
			continue
		}
		for i := 0; i < p.NumSamples(); i++ {
			events = append(events, event{x: p.X(i), mass: t.Weight * p.Mass(i), class: t.Class})
		}
		endSet = append(endSet, p.Min(), p.Max())
	}
	slices.SortFunc(events, func(a, b event) int {
		switch {
		case a.x < b.x:
			return -1
		case a.x > b.x:
			return 1
		default:
			return 0
		}
	})

	v := &attrView{totals: make([]float64, numClasses)}
	// Distinct locations with running per-class prefix sums, stored in one
	// slab for locality.
	distinct := 0
	for i := range events {
		if i == 0 || events[i].x != events[i-1].x {
			distinct++
		}
	}
	v.xs = make([]float64, 0, distinct)
	slab := make([]float64, numClasses*distinct)
	v.cum = make([][]float64, numClasses)
	for c := range v.cum {
		v.cum[c] = slab[c*distinct : (c+1)*distinct]
	}
	run := make([]float64, numClasses)
	idx := -1
	for i, e := range events {
		if i == 0 || e.x != events[i-1].x {
			idx++
			v.xs = append(v.xs, e.x)
		}
		run[e.class] += e.mass
		v.totals[e.class] += e.mass
		v.total += e.mass
		if i == len(events)-1 || events[i+1].x != e.x {
			for c := range run {
				v.cum[c][idx] = run[c]
			}
		}
	}

	sort.Float64s(endSet)
	v.ends = endSet[:0]
	for i, e := range endSet {
		if i == 0 || e != v.ends[len(v.ends)-1] {
			v.ends = append(v.ends, e)
		}
	}
	return v
}

// locIndex returns the number of sample locations <= x, i.e. the exclusive
// upper index of the left partition when splitting at x.
func (v *attrView) locIndex(x float64) int {
	return sort.Search(len(v.xs), func(i int) bool { return v.xs[i] > x })
}

// leftCounts fills out with the per-class mass at locations <= x and
// returns the left total. out must have len == numClasses.
func (v *attrView) leftCounts(x float64, out []float64) float64 {
	idx := v.locIndex(x)
	if idx == 0 {
		for c := range out {
			out[c] = 0
		}
		return 0
	}
	total := 0.0
	for c := range out {
		out[c] = v.cum[c][idx-1]
		total += out[c]
	}
	return total
}

// massIn fills out with the per-class mass in the half-open interval (a, b]
// and returns its total.
func (v *attrView) massIn(a, b float64, out []float64) float64 {
	ia, ib := v.locIndex(a), v.locIndex(b)
	total := 0.0
	for c := range out {
		var lo, hi float64
		if ia > 0 {
			lo = v.cum[c][ia-1]
		}
		if ib > 0 {
			hi = v.cum[c][ib-1]
		}
		out[c] = hi - lo
		if out[c] < 0 {
			out[c] = 0
		}
		total += out[c]
	}
	return total
}

// intervalKind classifies the interval (a, b] per Definitions 2-4.
type intervalKind int

const (
	emptyInterval intervalKind = iota
	homogeneousInterval
	heterogeneousInterval
)

// classify inspects the per-class interval masses already computed into k.
func classify(k []float64) intervalKind {
	nonzero := 0
	for _, m := range k {
		if m > intervalEps {
			nonzero++
		}
	}
	switch nonzero {
	case 0:
		return emptyInterval
	case 1:
		return homogeneousInterval
	default:
		return heterogeneousInterval
	}
}

// intervalEps treats vanishing interval mass as empty, guarding against
// floating-point dust from pdf renormalisation.
const intervalEps = 1e-12

// interiorRange returns the index range [lo, hi) of v.xs strictly inside
// the open interval (a, b).
func (v *attrView) interiorRange(a, b float64) (lo, hi int) {
	lo = sort.Search(len(v.xs), func(i int) bool { return v.xs[i] > a })
	hi = sort.Search(len(v.xs), func(i int) bool { return v.xs[i] >= b })
	return lo, hi
}

// viewCache memoises per-attribute views for the duration of one node's
// split search, so the two-phase strategies (GP, ES) index each attribute
// once instead of twice. The cache is dropped when the search returns, so
// peak memory stays proportional to the tuples at a single node.
type viewCache struct {
	tuples     []*data.Tuple
	numClasses int
	views      []*attrView
	built      []bool
}

func newViewCache(tuples []*data.Tuple, numClasses int) *viewCache {
	return &viewCache{tuples: tuples, numClasses: numClasses}
}

// get returns the view for attribute j, building it on first use.
func (c *viewCache) get(j int) *attrView {
	if j >= len(c.views) {
		grown := make([]*attrView, j+1)
		copy(grown, c.views)
		c.views = grown
		grownB := make([]bool, j+1)
		copy(grownB, c.built)
		c.built = grownB
	}
	if !c.built[j] {
		c.views[j] = buildAttrView(c.tuples, j, c.numClasses)
		c.built[j] = true
	}
	return c.views[j]
}
