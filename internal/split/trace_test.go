package split

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
)

func TestTraceESNineRows(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	tuples := randomDataset(rng, 30, 1, 3, 12)
	steps, err := TraceES(tuples, 0, 3, Config{Measure: Entropy, Strategy: ES})
	if err != nil {
		t.Fatal(err)
	}
	if len(steps) != 9 {
		t.Fatalf("%d rows, want 9 (Fig 5)", len(steps))
	}
	for i, s := range steps {
		if s.Row != i+1 {
			t.Fatalf("row numbering broken at %d", i)
		}
		if s.Name == "" {
			t.Fatal("unnamed row")
		}
	}
	// Row 1: one domain interval per tuple.
	if len(steps[0].Intervals) != 30 {
		t.Fatalf("row 1 has %d domains, want 30", len(steps[0].Intervals))
	}
	// Row 2: end points are sorted and unique.
	ends := steps[1].Points
	for i := 1; i < len(ends); i++ {
		if ends[i] <= ends[i-1] {
			t.Fatal("end points not strictly increasing")
		}
	}
	// Row 3 intervals = consecutive end point pairs.
	if len(steps[2].Intervals) != len(ends)-1 {
		t.Fatalf("row 3 has %d intervals for %d end points", len(steps[2].Intervals), len(ends))
	}
	// Row 4: sampled points are a subset of the end points, including both
	// extremes.
	sampled := steps[3].Points
	if len(sampled) >= len(ends) {
		t.Fatalf("sampling did not reduce the end point count: %d vs %d", len(sampled), len(ends))
	}
	if sampled[0] != ends[0] || sampled[len(sampled)-1] != ends[len(ends)-1] {
		t.Fatal("sampled points must include the extremes")
	}
	// Row 6 survivors are coarse intervals (between sampled points).
	for _, iv := range steps[5].Intervals {
		if iv[0] >= iv[1] {
			t.Fatal("degenerate surviving interval")
		}
	}
	// Row 9 candidates are a subset of row 8's fine intervals.
	fine := map[[2]float64]bool{}
	for _, iv := range steps[7].Intervals {
		fine[iv] = true
	}
	for _, iv := range steps[8].Intervals {
		if !fine[iv] {
			t.Fatalf("final interval %v not among re-expanded fine intervals", iv)
		}
	}
}

func TestTraceESPruningShrinksCandidates(t *testing.T) {
	// On a clusterable dataset the final candidate set must be a strict
	// subset of all fine intervals.
	rng := rand.New(rand.NewSource(52))
	tuples := randomDataset(rng, 60, 1, 2, 20)
	steps, err := TraceES(tuples, 0, 2, Config{Measure: Entropy, Strategy: ES})
	if err != nil {
		t.Fatal(err)
	}
	if len(steps[8].Intervals) >= len(steps[2].Intervals) {
		t.Fatalf("no pruning visible: %d final vs %d fine intervals",
			len(steps[8].Intervals), len(steps[2].Intervals))
	}
}

func TestTraceESErrors(t *testing.T) {
	tuples := randomDataset(rand.New(rand.NewSource(53)), 5, 1, 2, 3)
	for _, tu := range tuples {
		tu.Num[0] = nil
	}
	if _, err := TraceES(tuples, 0, 2, Config{}); err == nil {
		t.Fatal("massless attribute accepted")
	}
}

func TestFprintTrace(t *testing.T) {
	rng := rand.New(rand.NewSource(54))
	tuples := randomDataset(rng, 10, 1, 2, 5)
	steps, err := TraceES(tuples, 0, 2, Config{Measure: Entropy})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	FprintTrace(&buf, steps)
	out := buf.String()
	if !strings.Contains(out, "row 1") || !strings.Contains(out, "row 9") {
		t.Fatalf("render incomplete:\n%s", out)
	}
	if !strings.Contains(out, "Q'_j") {
		t.Fatal("render missing sampled row label")
	}
}
