package split

import "math"

// boundInput carries the z-independent quantities of §5.2 for one
// heterogeneous interval (a, b]: per-class masses left of the interval (n),
// inside it (k), and right of it (m).
type boundInput struct {
	n, k, m []float64
}

// entropyLowerBound computes L_j of Eq. (3): a lower bound of the split
// entropy H(z, A_j) over every split point z inside the interval. Its cost
// is comparable to a single entropy evaluation, which is why bound
// computations are counted together with entropy calculations in §6.2.
func entropyLowerBound(in boundInput) float64 {
	var n, m, kSum float64
	for c := range in.n {
		n += in.n[c]
		m += in.m[c]
		kSum += in.k[c]
	}
	N := n + kSum + m
	if N <= 0 {
		return 0
	}
	sum := 0.0
	for c := range in.n {
		nc, mc, kc := in.n[c], in.m[c], in.k[c]
		theta := safeRatio(nc+kc, n+kc)
		eta := safeRatio(mc+kc, m+kc)
		sum += nc*log2Safe(theta) + mc*log2Safe(eta) + kc*log2Safe(math.Max(theta, eta))
	}
	return -sum / N
}

// giniLowerBound computes L_j^(Gini) of Eq. (4), the analogous lower bound
// for the Gini index.
func giniLowerBound(in boundInput) float64 {
	var n, m, kSum float64
	for c := range in.n {
		n += in.n[c]
		m += in.m[c]
		kSum += in.k[c]
	}
	N := n + kSum + m
	if N <= 0 {
		return 0
	}
	var sumTheta2, sumEta2, sumK float64
	for c := range in.n {
		nc, mc, kc := in.n[c], in.m[c], in.k[c]
		theta := safeRatio(nc+kc, n+kc)
		eta := safeRatio(mc+kc, m+kc)
		sumTheta2 += theta * theta
		sumEta2 += eta * eta
		sumK += kc * (theta*theta + eta*eta)
	}
	inner := math.Min(sumK, kSum*math.Max(sumTheta2, sumEta2))
	return 1 - (n*sumTheta2+m*sumEta2+inner)/N
}

// gainRatioScoreBound returns a lower bound of the negated gain ratio over
// the interval, together with ok=false when no safe bound exists (the split
// information can vanish inside the interval, §7.4). parentH is the parent
// entropy; nLa and nLb are the left totals when splitting at the interval's
// two end points; total is the overall mass.
func gainRatioScoreBound(in boundInput, parentH, nLa, nLb, total float64) (bound float64, ok bool) {
	entLB := entropyLowerBound(in)
	gainUB := parentH - entLB
	if gainUB <= 0 {
		// No split in the interval can have positive gain; any bound below
		// every useful score works. Scores are negated gain ratios, so 0
		// dominates nothing and the interval is prunable against any
		// negative best.
		return 0, true
	}
	siA := splitInfo(nLa, total-nLa)
	siB := splitInfo(nLb, total-nLb)
	siMin := math.Min(siA, siB)
	if siMin <= siEps {
		return 0, false
	}
	return -gainUB / siMin, true
}

// safeRatio returns a/b treating 0/0 as 0.
func safeRatio(a, b float64) float64 {
	if b <= 0 {
		return 0
	}
	return a / b
}

// log2Safe returns log2(x) treating log(0) as 0, matching the 0·log 0 = 0
// convention of the entropy formulas (the multiplier is 0 whenever x is).
func log2Safe(x float64) float64 {
	if x <= 0 {
		return 0
	}
	return math.Log2(x)
}
