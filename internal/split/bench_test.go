package split

import (
	"math/rand"
	"testing"
)

func BenchmarkBuildAttrView(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	tuples := randomDataset(rng, 200, 1, 4, 50)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if v := buildAttrView(tuples, 0, 4); v == nil {
			b.Fatal("nil view")
		}
	}
}

func BenchmarkBestStrategies(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	tuples := randomDataset(rng, 150, 3, 4, 40)
	for _, strat := range []Strategy{UDT, BP, LP, GP, ES} {
		b.Run(strat.String(), func(b *testing.B) {
			f := NewFinder(Config{Measure: Entropy, Strategy: strat})
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res := f.Best(tuples, 3, 4)
				if !res.Found {
					b.Fatal("no split found")
				}
			}
			b.ReportMetric(float64(f.Stats().EntropyCalcs())/float64(b.N), "calcs/op")
		})
	}
}

func BenchmarkBestMeasures(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	tuples := randomDataset(rng, 100, 2, 3, 30)
	for _, m := range []Measure{Entropy, Gini, GainRatio} {
		b.Run(m.String(), func(b *testing.B) {
			f := NewFinder(Config{Measure: m, Strategy: GP})
			for i := 0; i < b.N; i++ {
				f.Best(tuples, 2, 3)
			}
		})
	}
}

func BenchmarkEntropyLowerBound(b *testing.B) {
	in := boundInput{
		n: []float64{3, 1, 4, 1},
		k: []float64{5, 9, 2, 6},
		m: []float64{5, 3, 5, 8},
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		entropyLowerBound(in)
	}
}

func BenchmarkCategoricalScore(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	tuples := randomDataset(rng, 100, 1, 3, 5)
	for _, tu := range tuples {
		d := make([]float64, 4)
		for v := range d {
			d[v] = rng.Float64()
		}
		total := d[0] + d[1] + d[2] + d[3]
		for v := range d {
			d[v] /= total
		}
		tu.Cat = append(tu.Cat, d)
	}
	f := NewFinder(Config{Measure: Entropy})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.CategoricalScore(tuples, 0, 4, 3)
	}
}
