package split

import (
	"fmt"
	"math/rand"
	"runtime"
	"testing"
)

func BenchmarkBuildAttrView(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	tuples := randomDataset(rng, 200, 1, 4, 50)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if v := buildAttrView(tuples, 0, 4); v == nil {
			b.Fatal("nil view")
		}
	}
}

func BenchmarkBestStrategies(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	tuples := randomDataset(rng, 150, 3, 4, 40)
	for _, strat := range []Strategy{UDT, BP, LP, GP, ES} {
		b.Run(strat.String(), func(b *testing.B) {
			f := NewFinder(Config{Measure: Entropy, Strategy: strat})
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res := f.Best(tuples, 3, 4)
				if !res.Found {
					b.Fatal("no split found")
				}
			}
			b.ReportMetric(float64(f.Stats().EntropyCalcs())/float64(b.N), "calcs/op")
		})
	}
}

// BenchmarkBestWorkers measures intra-node parallel split search on a
// root-sized node (10k tuples, the acceptance scale of the parallel-search
// work). Speedup of workers>1 over serial requires multiple CPUs; on a
// single-core machine the fan-out only adds scheduling overhead, so treat
// the time ratio as hardware-dependent. The calcs/op metric is
// hardware-independent: it shows the §5 pruning power is preserved by the
// shared global threshold (parallel counts stay within the serial counts).
// Result determinism is pinned by TestParallelBestMatchesSerial.
func BenchmarkBestWorkers(b *testing.B) {
	rng := rand.New(rand.NewSource(6))
	tuples := randomDataset(rng, 10000, 4, 3, 20)
	for _, strat := range []Strategy{GP, ES} {
		for _, workers := range []int{1, runtime.GOMAXPROCS(0), 8} {
			b.Run(fmt.Sprintf("%v/workers=%d", strat, workers), func(b *testing.B) {
				f := NewFinder(Config{Measure: Entropy, Strategy: strat, Workers: workers})
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if res := f.Best(tuples, 4, 3); !res.Found {
						b.Fatal("no split found")
					}
				}
				b.ReportMetric(float64(f.Stats().EntropyCalcs())/float64(b.N), "calcs/op")
			})
		}
	}
}

func BenchmarkBestMeasures(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	tuples := randomDataset(rng, 100, 2, 3, 30)
	for _, m := range []Measure{Entropy, Gini, GainRatio} {
		b.Run(m.String(), func(b *testing.B) {
			f := NewFinder(Config{Measure: m, Strategy: GP})
			for i := 0; i < b.N; i++ {
				f.Best(tuples, 2, 3)
			}
		})
	}
}

func BenchmarkEntropyLowerBound(b *testing.B) {
	in := boundInput{
		n: []float64{3, 1, 4, 1},
		k: []float64{5, 9, 2, 6},
		m: []float64{5, 3, 5, 8},
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		entropyLowerBound(in)
	}
}

func BenchmarkCategoricalScore(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	tuples := randomDataset(rng, 100, 1, 3, 5)
	for _, tu := range tuples {
		d := make([]float64, 4)
		for v := range d {
			d[v] = rng.Float64()
		}
		total := d[0] + d[1] + d[2] + d[3]
		for v := range d {
			d[v] /= total
		}
		tu.Cat = append(tu.Cat, d)
	}
	f := NewFinder(Config{Measure: Entropy})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.CategoricalScore(tuples, 0, 4, 3)
	}
}
