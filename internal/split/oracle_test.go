package split

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"udt/internal/data"
)

// naiveBest is an independent reference implementation of the exhaustive
// split search: for every distinct sample location z of every attribute it
// recomputes the left/right class masses directly from the tuple pdfs
// (CDF calls, no prefix sums, no pruning) and evaluates Eq. (1) from
// scratch. It shares no code with the production search beyond the
// dispersion formulas.
func naiveBest(tuples []*data.Tuple, numAttrs, numClasses int, m Measure) (Result, bool) {
	best := Result{Score: math.Inf(1)}
	for j := 0; j < numAttrs; j++ {
		// Candidate split points: all sample locations.
		var zs []float64
		for _, t := range tuples {
			p := t.Num[j]
			if p == nil {
				continue
			}
			for i := 0; i < p.NumSamples(); i++ {
				zs = append(zs, p.X(i))
			}
		}
		sort.Float64s(zs)
		zs = dedupFloats(zs)
		for _, z := range zs {
			left := make([]float64, numClasses)
			right := make([]float64, numClasses)
			var nL, nR float64
			for _, t := range tuples {
				p := t.Num[j]
				if p == nil {
					continue
				}
				pl := p.CDF(z)
				left[t.Class] += t.Weight * pl
				right[t.Class] += t.Weight * (1 - pl)
				nL += t.Weight * pl
				nR += t.Weight * (1 - pl)
			}
			score, ok := binarySplitScore(m, left, right, nL, nR, 0)
			if ok && score < best.Score {
				best = Result{Attr: j, Z: z, Score: score, Found: true}
			}
		}
	}
	return best, best.Found
}

func dedupFloats(xs []float64) []float64 {
	out := xs[:0]
	for i, x := range xs {
		if i == 0 || x != out[len(out)-1] {
			out = append(out, x)
		}
	}
	return out
}

// TestBestMatchesNaiveOracle: the production search (all strategies) must
// find the same optimal score as the from-scratch reference, for entropy
// and Gini.
func TestBestMatchesNaiveOracle(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		classes := 2 + rng.Intn(3)
		tuples := randomDataset(rng, 4+rng.Intn(16), 1+rng.Intn(2), classes, 1+rng.Intn(5))
		k := len(tuples[0].Num)
		for _, m := range []Measure{Entropy, Gini} {
			want, wantFound := naiveBest(tuples, k, classes, m)
			for _, strat := range []Strategy{UDT, BP, LP, GP, ES} {
				got := NewFinder(Config{Measure: m, Strategy: strat}).Best(tuples, k, classes)
				if got.Found != wantFound {
					t.Logf("seed %d %v/%v: Found %v, oracle %v", seed, m, strat, got.Found, wantFound)
					return false
				}
				if wantFound && math.Abs(got.Score-want.Score) > 1e-9 {
					t.Logf("seed %d %v/%v: score %v, oracle %v", seed, m, strat, got.Score, want.Score)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
