package split

import (
	"fmt"
	"math"

	"udt/internal/data"
)

// Strategy selects the candidate-pruning algorithm of §5.
type Strategy int

// Search strategies, in the paper's ascending order of pruning power.
const (
	UDT Strategy = iota // exhaustive: every pdf sample point (§4.2)
	BP                  // Basic Pruning: skip empty/homogeneous interiors (Thms 1-2)
	LP                  // Local Pruning: bound heterogeneous intervals per attribute (§5.2)
	GP                  // Global Pruning: bound with a global threshold (§5.2)
	ES                  // End-point Sampling on top of GP (§5.3)
)

func (s Strategy) String() string {
	switch s {
	case UDT:
		return "UDT"
	case BP:
		return "UDT-BP"
	case LP:
		return "UDT-LP"
	case GP:
		return "UDT-GP"
	case ES:
		return "UDT-ES"
	default:
		return fmt.Sprintf("Strategy(%d)", int(s))
	}
}

// Stats counts the work performed by split searches. SplitEvals counts
// dispersion evaluations at candidate split points and BoundEvals counts
// interval lower-bound computations; their sum is the paper's "number of
// entropy calculations" metric (§6.2, which states a bound costs about the
// same as an entropy evaluation).
type Stats struct {
	SplitEvals      int64
	BoundEvals      int64
	PrunedIntervals int64
	PrunedCoarse    int64
}

// EntropyCalcs returns the paper's cost metric: split evaluations plus
// bound computations.
func (s Stats) EntropyCalcs() int64 { return s.SplitEvals + s.BoundEvals }

// Add accumulates other into s.
func (s *Stats) Add(other Stats) {
	s.SplitEvals += other.SplitEvals
	s.BoundEvals += other.BoundEvals
	s.PrunedIntervals += other.PrunedIntervals
	s.PrunedCoarse += other.PrunedCoarse
}

// Config parameterises a Finder.
type Config struct {
	Measure      Measure
	Strategy     Strategy
	EndPointFrac float64      // ES end-point sample fraction; 0 means the paper's 10%
	EndPoints    EndPointMode // interval end-point derivation (§7.3)
	Percentiles  int          // per-class percentile count for PercentileEnds; 0 means 9
	Workers      int          // concurrent workers within one Best call; <= 1 means serial
}

// Result is the outcome of a best-split search over the numeric attributes.
type Result struct {
	Attr  int     // winning attribute index
	Z     float64 // split point z_n
	Score float64 // minimised dispersion H(z, A_j) (negated gain ratio for GainRatio)
	Gain  float64 // parent impurity minus Score (the gain ratio itself for GainRatio)
	Found bool
}

// Finder locates optimal split points. It is not safe for concurrent use;
// create one Finder per goroutine. When Config.Workers > 1 a Finder fans
// one Best call out over a private pool of worker finders (see parallel.go)
// — the Finder itself must still be driven from a single goroutine.
type Finder struct {
	cfg   Config
	stats Stats

	// shared, when non-nil, is the concurrently updated global pruning
	// threshold of an in-flight parallel search (the §5.2 GP threshold
	// shared across workers). It only ever tightens bound pruning; it
	// never affects which split is returned.
	shared *atomicScore

	// workers are the cached per-worker finders of the parallel search.
	// Each owns private scratch and stats, folded into the parent after
	// every parallel region, so the hot path takes no locks.
	workers []*Finder

	// scratch buffers reused across evaluations
	numClasses int
	left       []float64
	right      []float64
	kBuf       []float64
	nBuf       []float64
	mBuf       []float64
}

// NewFinder returns a Finder for the given configuration.
func NewFinder(cfg Config) *Finder {
	if cfg.EndPointFrac <= 0 || cfg.EndPointFrac > 1 {
		cfg.EndPointFrac = 0.1
	}
	return &Finder{cfg: cfg}
}

// Config returns the finder's configuration.
func (f *Finder) Config() Config { return f.cfg }

// Stats returns the accumulated work counters.
func (f *Finder) Stats() Stats { return f.stats }

// ResetStats zeroes the work counters.
func (f *Finder) ResetStats() { f.stats = Stats{} }

func (f *Finder) ensureScratch(numClasses int) {
	if f.numClasses != numClasses {
		f.numClasses = numClasses
		f.left = make([]float64, numClasses)
		f.right = make([]float64, numClasses)
		f.kBuf = make([]float64, numClasses)
		f.nBuf = make([]float64, numClasses)
		f.mBuf = make([]float64, numClasses)
	}
}

// scoreEps breaks ties conservatively: a bound only prunes when it cannot
// hide a strictly better optimum.
const scoreEps = 1e-12

// Best finds the optimal (attribute, split point) over all numeric
// attributes for the given fractional tuples, using the configured strategy.
// All strategies return a split with the globally minimal dispersion; they
// differ only in how many evaluations Stats records. Found is false when no
// attribute admits a valid binary split.
//
// With Config.Workers > 1 the search runs on a worker pool (see
// parallel.go) and returns the identical Result — same attribute, split
// point and tie-breaking — as the serial search.
func (f *Finder) Best(tuples []*data.Tuple, numAttrs, numClasses int) Result {
	f.ensureScratch(numClasses)
	parentH := f.parentEntropy(tuples, numClasses)
	best := Result{Score: math.Inf(1)}

	if f.cfg.Workers > 1 && len(tuples) >= parallelMinTuples {
		f.bestParallel(tuples, numAttrs, numClasses, parentH, &best)
	} else {
		f.bestSerial(tuples, numAttrs, numClasses, parentH, &best)
	}

	if !best.Found {
		return best
	}
	if f.cfg.Measure == GainRatio {
		best.Gain = -best.Score
	} else {
		counts := make([]float64, numClasses)
		total := 0.0
		for _, t := range tuples {
			counts[t.Class] += t.Weight
			total += t.Weight
		}
		best.Gain = impurity(f.cfg.Measure, counts, total) - best.Score
	}
	return best
}

// bestSerial is the single-goroutine search over all strategies.
func (f *Finder) bestSerial(tuples []*data.Tuple, numAttrs, numClasses int, parentH float64, best *Result) {
	switch f.cfg.Strategy {
	case UDT:
		for j := 0; j < numAttrs; j++ {
			v := buildAttrView(tuples, j, numClasses)
			if v == nil {
				continue
			}
			f.evalAllSamples(v, j, parentH, best)
		}
	case BP, LP:
		for j := 0; j < numAttrs; j++ {
			v := buildAttrView(tuples, j, numClasses)
			if v == nil {
				continue
			}
			ends := f.endsFor(v)
			f.evalEndPoints(v, j, ends, parentH, best)
			f.evalIntervals(v, j, ends, parentH, f.cfg.Strategy == LP, best)
		}
	case GP:
		// Phase 1: end points of every attribute establish the global
		// pruning threshold. Phase 2: bound-prune heterogeneous intervals
		// against it. Views are cached across the two phases; the cache
		// lives only for this node's search.
		cache := newViewCache(tuples, numClasses)
		for j := 0; j < numAttrs; j++ {
			v := cache.get(j)
			if v == nil {
				continue
			}
			f.evalEndPoints(v, j, f.endsFor(v), parentH, best)
		}
		for j := 0; j < numAttrs; j++ {
			v := cache.get(j)
			if v == nil {
				continue
			}
			f.evalIntervals(v, j, f.endsFor(v), parentH, true, best)
		}
	case ES:
		f.bestES(tuples, numAttrs, numClasses, parentH, best)
	default:
		for j := 0; j < numAttrs; j++ {
			v := buildAttrView(tuples, j, numClasses)
			if v == nil {
				continue
			}
			f.evalAllSamples(v, j, parentH, best)
		}
	}
}

// parentEntropy returns the parent node entropy needed by the gain-ratio
// measure; zero otherwise (unused).
func (f *Finder) parentEntropy(tuples []*data.Tuple, numClasses int) float64 {
	if f.cfg.Measure != GainRatio {
		return 0
	}
	counts := make([]float64, numClasses)
	total := 0.0
	for _, t := range tuples {
		counts[t.Class] += t.Weight
		total += t.Weight
	}
	return entropyOf(counts, total)
}

// evalCandidate scores splitting attribute j at location x and folds the
// outcome into best. It counts one split evaluation.
func (f *Finder) evalCandidate(v *attrView, j int, x, parentH float64, best *Result) {
	f.stats.SplitEvals++
	nL := v.leftCounts(x, f.left)
	nR := v.total - nL
	for c := range f.right {
		f.right[c] = v.totals[c] - f.left[c]
	}
	score, ok := binarySplitScore(f.cfg.Measure, f.left, f.right, nL, nR, parentH)
	if !ok {
		return
	}
	if score < best.Score {
		*best = Result{Attr: j, Z: x, Score: score, Found: true}
		if f.shared != nil {
			f.shared.update(score)
		}
	}
}

// evalAllSamples is the exhaustive UDT search: every distinct pdf sample
// location except the largest (which yields an empty right subset) is a
// candidate.
func (f *Finder) evalAllSamples(v *attrView, j int, parentH float64, best *Result) {
	for i := 0; i+1 < len(v.xs); i++ {
		f.evalCandidate(v, j, v.xs[i], parentH, best)
	}
}

// evalEndPoints scores each end point in ends (except the last, which gives
// an empty right subset).
func (f *Finder) evalEndPoints(v *attrView, j int, ends []float64, parentH float64, best *Result) {
	for i := 0; i+1 < len(ends); i++ {
		f.evalCandidate(v, j, ends[i], parentH, best)
	}
}

// evalIntervals walks the intervals defined by consecutive end points,
// skipping empty and homogeneous interiors (Theorems 1-2; for gain ratio
// only empty interiors are skippable, §7.4) and, when useBound is true,
// bound-pruning the remaining intervals against the best score so far
// (§5.2). Interval interiors that survive are evaluated exhaustively.
func (f *Finder) evalIntervals(v *attrView, j int, ends []float64, parentH float64, useBound bool, best *Result) {
	for i := 0; i+1 < len(ends); i++ {
		a, b := ends[i], ends[i+1]
		lo, hi := v.interiorRange(a, b)
		if lo >= hi {
			continue // no interior candidates
		}
		kTotal := v.massIn(a, b, f.kBuf)
		kind := classify(f.kBuf)
		if kind == emptyInterval {
			continue // Theorem 1
		}
		if kind == homogeneousInterval && f.cfg.Measure != GainRatio {
			continue // Theorem 2
		}
		if useBound && f.pruneByBound(v, a, b, kTotal, parentH, best) {
			f.stats.PrunedIntervals++
			continue
		}
		for x := lo; x < hi; x++ {
			f.evalCandidate(v, j, v.xs[x], parentH, best)
		}
	}
}

// pruneThreshold returns the score interval bounds are compared against:
// the local best, tightened by the cross-worker shared threshold when a
// parallel search is in flight. ok is false when no threshold exists yet.
func (f *Finder) pruneThreshold(best *Result) (thr float64, ok bool) {
	thr = math.Inf(1)
	if best.Found {
		thr, ok = best.Score, true
	}
	if f.shared != nil {
		if g := f.shared.load(); g < thr {
			thr, ok = g, true
		}
	}
	return thr, ok
}

// pruneByBound reports whether the interval (a, b] can be discarded because
// its dispersion lower bound is no better than the best score found so far.
// It counts one bound evaluation. f.kBuf must already hold the interval's
// per-class masses.
func (f *Finder) pruneByBound(v *attrView, a, b, kTotal, parentH float64, best *Result) bool {
	thr, haveThr := f.pruneThreshold(best)
	if !haveThr {
		return false
	}
	f.stats.BoundEvals++
	nLa := v.leftCounts(a, f.nBuf)
	for c := range f.mBuf {
		f.mBuf[c] = v.totals[c] - f.nBuf[c] - f.kBuf[c]
		if f.mBuf[c] < 0 {
			f.mBuf[c] = 0
		}
	}
	in := boundInput{n: f.nBuf, k: f.kBuf, m: f.mBuf}
	var (
		bound float64
		ok    bool
	)
	switch f.cfg.Measure {
	case Entropy:
		bound, ok = entropyLowerBound(in), true
	case Gini:
		bound, ok = giniLowerBound(in), true
	case GainRatio:
		bound, ok = gainRatioScoreBound(in, parentH, nLa, nLa+kTotal, v.total)
	}
	return ok && bound >= thr-scoreEps
}
