package split

import (
	"math"
	"math/rand"
	"testing"
)

// TestGainRatioBoundIsSafe verifies that the §7.4 gain-ratio interval
// bound never exceeds the true minimum score inside a heterogeneous or
// homogeneous interval (for gain ratio both kinds must be bounded).
func TestGainRatioBoundIsSafe(t *testing.T) {
	rng := rand.New(rand.NewSource(123))
	for trial := 0; trial < 40; trial++ {
		tuples := randomDataset(rng, 5+rng.Intn(14), 1, 2+rng.Intn(2), 2+rng.Intn(6))
		nClasses := 4
		v := buildAttrView(tuples, 0, nClasses)
		if v == nil || len(v.ends) < 2 {
			continue
		}
		f := NewFinder(Config{Measure: GainRatio, Strategy: UDT})
		f.ensureScratch(nClasses)
		parentCounts := make([]float64, nClasses)
		for _, tu := range tuples {
			parentCounts[tu.Class] += tu.Weight
		}
		parentH := entropyOf(parentCounts, -1)
		for i := 0; i+1 < len(v.ends); i++ {
			a, b := v.ends[i], v.ends[i+1]
			lo, hi := v.interiorRange(a, b)
			if lo >= hi {
				continue
			}
			kTotal := v.massIn(a, b, f.kBuf)
			if classify(f.kBuf) == emptyInterval {
				continue
			}
			nLa := v.leftCounts(a, f.nBuf)
			for c := range f.mBuf {
				f.mBuf[c] = v.totals[c] - f.nBuf[c] - f.kBuf[c]
			}
			in := boundInput{n: f.nBuf, k: f.kBuf, m: f.mBuf}
			bound, ok := gainRatioScoreBound(in, parentH, nLa, nLa+kTotal, v.total)
			if !ok {
				continue // no safe bound claimed: nothing to verify
			}
			left := make([]float64, nClasses)
			right := make([]float64, nClasses)
			for x := lo; x < hi; x++ {
				nL := v.leftCounts(v.xs[x], left)
				for c := range right {
					right[c] = v.totals[c] - left[c]
				}
				score, valid := binarySplitScore(GainRatio, left, right, nL, v.total-nL, parentH)
				if !valid {
					continue
				}
				if bound > score+1e-9 {
					t.Fatalf("trial %d: gain-ratio bound %v exceeds interior score %v", trial, bound, score)
				}
			}
		}
	}
}

// TestBoundAtDegenerateInterval: bounds on intervals with no mass anywhere
// must not panic or produce NaN.
func TestBoundAtDegenerateInterval(t *testing.T) {
	in := boundInput{n: []float64{0, 0}, k: []float64{0, 0}, m: []float64{0, 0}}
	if v := entropyLowerBound(in); v != 0 || math.IsNaN(v) {
		t.Fatalf("entropy bound on empty input = %v", v)
	}
	if v := giniLowerBound(in); v != 0 || math.IsNaN(v) {
		t.Fatalf("gini bound on empty input = %v", v)
	}
}

// TestEntropyBoundTightAtPureSides: when the interval mass is a single
// class and both outer sides are pure too, the bound should be close to
// zero (a perfect split exists at an interval end).
func TestEntropyBoundTightAtPureSides(t *testing.T) {
	in := boundInput{
		n: []float64{5, 0},
		k: []float64{3, 0},
		m: []float64{0, 4},
	}
	bound := entropyLowerBound(in)
	if bound > 1e-9 {
		t.Fatalf("bound = %v on a perfectly separable interval, want ~0", bound)
	}
}

// TestBoundsBelowActualEntropy: the bound must also respect the entropy at
// the interval end points themselves (limit cases t=0, t=1).
func TestBoundsBelowActualEntropy(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		classes := 2 + rng.Intn(4)
		in := boundInput{
			n: make([]float64, classes),
			k: make([]float64, classes),
			m: make([]float64, classes),
		}
		for c := 0; c < classes; c++ {
			in.n[c] = rng.Float64() * 10
			in.k[c] = rng.Float64() * 10
			in.m[c] = rng.Float64() * 10
		}
		entB := entropyLowerBound(in)
		giniB := giniLowerBound(in)
		// Score when splitting at the interval's left end (all interval
		// mass goes right) and right end (all goes left).
		for _, frac := range []float64{0, 1} {
			left := make([]float64, classes)
			right := make([]float64, classes)
			var nL, nR float64
			for c := 0; c < classes; c++ {
				left[c] = in.n[c] + frac*in.k[c]
				right[c] = in.m[c] + (1-frac)*in.k[c]
				nL += left[c]
				nR += right[c]
			}
			if nL <= 0 || nR <= 0 {
				continue
			}
			if s, ok := binarySplitScore(Entropy, left, right, nL, nR, 0); ok && entB > s+1e-9 {
				t.Fatalf("trial %d: entropy bound %v exceeds end score %v", trial, entB, s)
			}
			if s, ok := binarySplitScore(Gini, left, right, nL, nR, 0); ok && giniB > s+1e-9 {
				t.Fatalf("trial %d: gini bound %v exceeds end score %v", trial, giniB, s)
			}
		}
	}
}

// TestPruningCountersPopulated: a prunable workload must record pruned
// intervals (LP/GP) and pruned coarse intervals (ES).
func TestPruningCountersPopulated(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	tuples := randomDataset(rng, 80, 2, 3, 25)
	lp := NewFinder(Config{Measure: Entropy, Strategy: LP})
	lp.Best(tuples, 2, 3)
	if lp.Stats().PrunedIntervals == 0 {
		t.Fatal("LP pruned no intervals on a prunable workload")
	}
	es := NewFinder(Config{Measure: Entropy, Strategy: ES})
	es.Best(tuples, 2, 3)
	if es.Stats().PrunedCoarse == 0 {
		t.Fatal("ES pruned no coarse intervals on a prunable workload")
	}
}

// TestESEndPointFraction: a larger end-point sample means more phase-1
// evaluations; both fractions must find the optimum.
func TestESEndPointFraction(t *testing.T) {
	rng := rand.New(rand.NewSource(88))
	tuples := randomDataset(rng, 50, 1, 2, 20)
	ref := NewFinder(Config{Measure: Entropy, Strategy: UDT}).Best(tuples, 1, 2)
	for _, frac := range []float64{0.05, 0.1, 0.5} {
		f := NewFinder(Config{Measure: Entropy, Strategy: ES, EndPointFrac: frac})
		got := f.Best(tuples, 1, 2)
		if math.Abs(got.Score-ref.Score) > 1e-9 {
			t.Fatalf("frac %v: score %v != exhaustive %v", frac, got.Score, ref.Score)
		}
	}
}
