package split

import "sort"

// EndPointMode selects how interval end points are derived (§7.3).
type EndPointMode int

const (
	// DomainEnds uses the pdf domain bounds of the tuples (the Q_j of
	// §5.1) — the default, and exact for bounded pdfs.
	DomainEnds EndPointMode = iota
	// PercentileEnds uses the §7.3 "artificial end points": per class, the
	// 10th..90th percentile locations of the class's cumulative tuple
	// count, plus the global extremes. Useful when pdfs are very wide (or
	// conceptually unbounded) and domain bounds induce too few, too-large
	// intervals. Pruning safety is unaffected: Theorems 1-2 and the Eq. (3)
	// bound hold for any interval partition.
	PercentileEnds
)

func (m EndPointMode) String() string {
	if m == PercentileEnds {
		return "percentile"
	}
	return "domain"
}

// endsFor returns the interval end points for the view under the
// configured mode.
func (f *Finder) endsFor(v *attrView) []float64 {
	if f.cfg.EndPoints != PercentileEnds {
		return v.ends
	}
	n := f.cfg.Percentiles
	if n <= 0 {
		n = 9 // the paper's 10%, 20%, ..., 90%
	}
	ends := make([]float64, 0, n*len(v.totals)+2)
	// Global extremes guarantee the intervals cover every candidate.
	ends = append(ends, v.xs[0], v.xs[len(v.xs)-1])
	for c, total := range v.totals {
		if total <= 0 {
			continue
		}
		for i := 1; i <= n; i++ {
			target := total * float64(i) / float64(n+1)
			// Smallest location where the class's cumulative count
			// reaches the target.
			idx := sort.Search(len(v.xs), func(k int) bool { return v.cum[c][k] >= target })
			if idx >= len(v.xs) {
				idx = len(v.xs) - 1
			}
			ends = append(ends, v.xs[idx])
		}
	}
	sort.Float64s(ends)
	dedup := ends[:0]
	for i, e := range ends {
		if i == 0 || e != dedup[len(dedup)-1] {
			dedup = append(dedup, e)
		}
	}
	return dedup
}
