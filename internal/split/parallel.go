package split

import (
	"math"
	"sync"
	"sync/atomic"

	"udt/internal/data"
)

// This file implements intra-node parallel split search: Config.Workers
// goroutines cooperate on a single Best call, partitioning the work by
// attribute and, within large attributes, by contiguous candidate batches.
// For GP and ES the §5.2 global pruning threshold is shared across workers
// through an atomic minimum, so a tight bound discovered on one attribute
// immediately prunes intervals on every other — the paper's pruning power
// is preserved (and in practice strengthened: after the end-point phase no
// worker ever prunes with a threshold looser than the fully established
// end-point minimum). LP deliberately gets no cross-attribute sharing: its
// §5.2 definition is per-attribute bounding, so each interval task prunes
// only against its own attribute's end-point minimum and its own local
// improvements, keeping the UDT/BP/LP/GP/ES work-count ladder meaningful
// under parallelism.
//
// Determinism: each task folds its candidates in serial order into a
// private Result containing only candidates the task itself evaluated, and
// tasks are merged in the exact fold order of the serial strategy (per
// attribute interleaved for BP/LP, two-phase global for GP/ES) with the
// same strict-< replacement rule. For UDT and BP — the strategies that
// never bound-prune — the parallel search therefore returns the bit-identical
// Result, same tie-breaking included, on every input. For LP/GP/ES the
// result is additionally identical unless two candidates score within
// scoreEps (1e-12) of the optimum while an interval's lower bound is
// equally tight — a measure-zero float coincidence on continuous data; even
// then the returned score matches the serial score to within scoreEps
// (both searches sit within scoreEps of the true minimum, far inside the
// 1e-9 oracle tolerance). Timing otherwise changes only which intervals
// GP/ES prune (Stats), never which split is returned.

// parallelMinTuples gates the parallel path: below this node size the
// goroutine fan-out costs more than the search itself, so Best falls back
// to the serial path (which returns the identical result).
const parallelMinTuples = 64

// Batch floors: a task is never smaller than this many candidates (or
// intervals), so scheduling overhead stays negligible next to the work.
const (
	sampleBatchMin   = 512 // exhaustive UDT sample candidates per batch
	endBatchMin      = 128 // end-point candidates per batch
	intervalBatchMin = 64  // fine intervals per batch
	coarseBatchMin   = 16  // ES coarse intervals per batch
)

// atomicScore is a concurrently updated minimum score. Lower is better for
// every measure (gain-ratio scores are negated ratios), so the minimum is
// the tightest pruning threshold any worker has proven.
type atomicScore struct{ bits atomic.Uint64 }

func newAtomicScore() *atomicScore {
	a := &atomicScore{}
	a.bits.Store(math.Float64bits(math.Inf(1)))
	return a
}

func (a *atomicScore) load() float64 { return math.Float64frombits(a.bits.Load()) }

// update lowers the stored score to s when s is smaller (a CAS minimum).
func (a *atomicScore) update(s float64) {
	for {
		old := a.bits.Load()
		if math.Float64frombits(old) <= s {
			return
		}
		if a.bits.CompareAndSwap(old, math.Float64bits(s)) {
			return
		}
	}
}

// span is one unit of parallel work: a contiguous candidate (or interval)
// index range of one attribute. The task list is built in serial evaluation
// order, which the deterministic merge folds by.
type span struct {
	attr   int
	lo, hi int
}

// workerFor returns the cached worker finder with index i, creating it on
// first use. Worker finders are serial (Workers forced to 0) and run on one
// goroutine each: private scratch, private stats, and a pointer to the
// parent's shared pruning threshold (nil for the strategies that must not
// share one).
func (f *Finder) workerFor(i int) *Finder {
	for len(f.workers) <= i {
		cfg := f.cfg
		cfg.Workers = 0
		f.workers = append(f.workers, NewFinder(cfg))
	}
	w := f.workers[i]
	w.shared = f.shared
	return w
}

// runTasks executes fn(w, t) for every task index t in [0, n) on up to
// Config.Workers goroutines. Tasks are claimed through an atomic counter
// and each goroutine owns one worker finder, so the hot path takes no
// locks. After the barrier the workers' stats are folded into the parent —
// the only synchronisation on the counters.
func (f *Finder) runTasks(n int, fn func(w *Finder, t int)) {
	if n <= 0 {
		return
	}
	nw := f.cfg.Workers
	if nw > n {
		nw = n
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < nw; i++ {
		w := f.workerFor(i)
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				t := int(next.Add(1)) - 1
				if t >= n {
					return
				}
				fn(w, t)
			}
		}()
	}
	wg.Wait()
	for i := 0; i < nw; i++ {
		f.stats.Add(f.workers[i].stats)
		f.workers[i].ResetStats()
		f.workers[i].shared = nil
	}
}

// batches splits [0, n) into at most Config.Workers contiguous pieces of at
// least minLen candidates each, preserving order.
func (f *Finder) batches(n, minLen int) [][2]int {
	if n <= 0 {
		return nil
	}
	pieces := n / minLen
	if pieces > f.cfg.Workers {
		pieces = f.cfg.Workers
	}
	if pieces < 1 {
		pieces = 1
	}
	out := make([][2]int, 0, pieces)
	for p := 0; p < pieces; p++ {
		lo, hi := p*n/pieces, (p+1)*n/pieces
		if lo < hi {
			out = append(out, [2]int{lo, hi})
		}
	}
	return out
}

// mergeResults folds per-task results in serial task order with the serial
// strict-< replacement rule, reproducing the serial search's tie-breaking:
// on equal scores the earliest candidate in serial evaluation order wins.
func mergeResults(best *Result, results []Result) {
	for _, r := range results {
		if r.Found && r.Score < best.Score {
			*best = r
		}
	}
}

// spanTasks builds one span per batch of every attribute, in serial
// (attribute, batch) order. size(j) gives the per-attribute task count.
func (f *Finder) spanTasks(views []*attrView, minLen int, size func(j int) int) []span {
	var tasks []span
	for j, v := range views {
		if v == nil {
			continue
		}
		for _, b := range f.batches(size(j), minLen) {
			tasks = append(tasks, span{attr: j, lo: b[0], hi: b[1]})
		}
	}
	return tasks
}

// bestParallel runs the configured strategy across the worker pool and
// folds the winner into best. It mirrors bestSerial case by case.
func (f *Finder) bestParallel(tuples []*data.Tuple, numAttrs, numClasses int, parentH float64, best *Result) {
	// Only GP and ES define a cross-attribute threshold; sharing one under
	// LP would silently upgrade it to GP-strength pruning and distort the
	// §5 ladder.
	if f.cfg.Strategy == GP || f.cfg.Strategy == ES {
		f.shared = newAtomicScore()
		defer func() { f.shared = nil }()
	}

	// Index every attribute concurrently; views are read-only afterwards.
	// End points are derived alongside (percentile mode allocates, domain
	// mode aliases the view).
	views := make([]*attrView, numAttrs)
	ends := make([][]float64, numAttrs)
	needEnds := f.cfg.Strategy == BP || f.cfg.Strategy == LP || f.cfg.Strategy == GP || f.cfg.Strategy == ES
	f.runTasks(numAttrs, func(w *Finder, j int) {
		views[j] = buildAttrView(tuples, j, numClasses)
		if views[j] != nil && needEnds {
			ends[j] = w.endsFor(views[j])
		}
	})

	switch f.cfg.Strategy {
	case BP, LP:
		f.parallelInterleaved(views, ends, numClasses, parentH, best)
	case GP:
		f.parallelGP(views, ends, numClasses, parentH, best)
	case ES:
		f.parallelES(views, ends, numClasses, parentH, best)
	default: // UDT and unknown strategies: exhaustive
		f.parallelExhaustive(views, numClasses, parentH, best)
	}
}

// parallelExhaustive is the UDT search: every pdf sample location except
// the largest is a candidate, batched across workers.
func (f *Finder) parallelExhaustive(views []*attrView, numClasses int, parentH float64, best *Result) {
	tasks := f.spanTasks(views, sampleBatchMin, func(j int) int { return len(views[j].xs) - 1 })
	results := make([]Result, len(tasks))
	f.runTasks(len(tasks), func(w *Finder, t int) {
		sp := tasks[t]
		w.ensureScratch(numClasses)
		v := views[sp.attr]
		local := Result{Score: math.Inf(1)}
		for i := sp.lo; i < sp.hi; i++ {
			w.evalCandidate(v, sp.attr, v.xs[i], parentH, &local)
		}
		results[t] = local
	})
	mergeResults(best, results)
}

// runEndPointTasks evaluates the given end-point spans (each batch folds a
// contiguous range of ends[attr] candidates) and returns one Result per
// task in task order.
func (f *Finder) runEndPointTasks(views []*attrView, ends [][]float64, tasks []span, numClasses int, parentH float64) []Result {
	results := make([]Result, len(tasks))
	f.runTasks(len(tasks), func(w *Finder, t int) {
		sp := tasks[t]
		w.ensureScratch(numClasses)
		v := views[sp.attr]
		local := Result{Score: math.Inf(1)}
		for i := sp.lo; i < sp.hi; i++ {
			w.evalCandidate(v, sp.attr, ends[sp.attr][i], parentH, &local)
		}
		results[t] = local
	})
	return results
}

// parallelInterleaved covers BP and LP, whose serial search folds each
// attribute's end points and then its intervals before moving to the next
// attribute. Both phases still run as worker batches (the end-point barrier
// lets LP seed each attribute's interval tasks with that attribute's own
// end-point minimum — the §5.2 per-attribute threshold), but the merge
// interleaves per attribute to reproduce the serial fold order exactly.
func (f *Finder) parallelInterleaved(views []*attrView, ends [][]float64, numClasses int, parentH float64, best *Result) {
	endTasks := f.spanTasks(views, endBatchMin, func(j int) int { return len(ends[j]) - 1 })
	endResults := f.runEndPointTasks(views, ends, endTasks, numClasses, parentH)

	// Per-attribute end-point winners, folded in batch order.
	endBest := make([]Result, len(views))
	for j := range endBest {
		endBest[j] = Result{Score: math.Inf(1)}
	}
	for t, r := range endResults {
		mergeResults(&endBest[endTasks[t].attr], []Result{r})
	}

	useBound := f.cfg.Strategy == LP
	ivTasks := f.spanTasks(views, intervalBatchMin, func(j int) int { return len(ends[j]) - 1 })
	ivResults := make([]Result, len(ivTasks))
	f.runTasks(len(ivTasks), func(w *Finder, t int) {
		sp := ivTasks[t]
		w.ensureScratch(numClasses)
		// LP prunes against its own attribute's end-point minimum plus
		// improvements found by this task. The seed is one of the
		// attribute's own candidates, so returning it unimproved cannot
		// perturb the merge (it folds right after the identical end-point
		// result and strict-< discards it).
		local := endBest[sp.attr]
		w.evalIntervals(views[sp.attr], sp.attr, ends[sp.attr][sp.lo:sp.hi+1], parentH, useBound, &local)
		ivResults[t] = local
	})

	// Serial fold order: attribute by attribute, end points then intervals.
	it := 0
	for j, v := range views {
		if v == nil {
			continue
		}
		mergeResults(best, []Result{endBest[j]})
		for ; it < len(ivTasks) && ivTasks[it].attr == j; it++ {
			mergeResults(best, []Result{ivResults[it]})
		}
	}
}

// parallelGP mirrors the serial GP two-phase search. Phase 1 evaluates
// every end point of every attribute; its merged minimum is exactly the
// serial phase-1 threshold, seeded into the shared atomic so phase 2
// starts with full global pruning power. Phase 2 walks the fine intervals
// in worker batches, bound-pruning against the tighter of the task-local
// best and the shared threshold.
func (f *Finder) parallelGP(views []*attrView, ends [][]float64, numClasses int, parentH float64, best *Result) {
	endTasks := f.spanTasks(views, endBatchMin, func(j int) int { return len(ends[j]) - 1 })
	mergeResults(best, f.runEndPointTasks(views, ends, endTasks, numClasses, parentH))
	if best.Found {
		f.shared.update(best.Score)
	}

	tasks := f.spanTasks(views, intervalBatchMin, func(j int) int { return len(ends[j]) - 1 })
	results := make([]Result, len(tasks))
	f.runTasks(len(tasks), func(w *Finder, t int) {
		sp := tasks[t]
		w.ensureScratch(numClasses)
		local := Result{Score: math.Inf(1)}
		w.evalIntervals(views[sp.attr], sp.attr, ends[sp.attr][sp.lo:sp.hi+1], parentH, true, &local)
		results[t] = local
	})
	mergeResults(best, results)
}

// parallelES mirrors bestES: phase 1 evaluates the sampled end points of
// every attribute to establish the global threshold (§5.3); phase 2 batches
// the coarse intervals across workers, expanding survivors to their fine
// end points and intervals.
func (f *Finder) parallelES(views []*attrView, ends [][]float64, numClasses int, parentH float64, best *Result) {
	stride := f.esStride()
	sampled := make([][]int, len(views))
	for j, v := range views {
		if v != nil {
			sampled[j] = sampleIndices(len(ends[j]), stride)
		}
	}

	tasks := f.spanTasks(views, endBatchMin, func(j int) int { return len(sampled[j]) })
	results := make([]Result, len(tasks))
	f.runTasks(len(tasks), func(w *Finder, t int) {
		sp := tasks[t]
		w.ensureScratch(numClasses)
		v := views[sp.attr]
		es := ends[sp.attr]
		local := Result{Score: math.Inf(1)}
		for _, i := range sampled[sp.attr][sp.lo:sp.hi] {
			if i+1 < len(es) { // the largest end point is no valid split
				w.evalCandidate(v, sp.attr, es[i], parentH, &local)
			}
		}
		results[t] = local
	})
	mergeResults(best, results)
	if best.Found {
		f.shared.update(best.Score)
	}

	tasks = f.spanTasks(views, coarseBatchMin, func(j int) int { return len(sampled[j]) - 1 })
	results = make([]Result, len(tasks))
	f.runTasks(len(tasks), func(w *Finder, t int) {
		sp := tasks[t]
		w.ensureScratch(numClasses)
		local := Result{Score: math.Inf(1)}
		w.esExpandRange(views[sp.attr], sp.attr, ends[sp.attr], sampled[sp.attr], sp.lo, sp.hi, parentH, &local)
		results[t] = local
	})
	mergeResults(best, results)
}
