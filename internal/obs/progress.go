package obs

import (
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"udt/internal/latency"
)

// NodeSearch is one per-node split-search observation from core.Build: how
// long the best-split search over the node's tuples took and whether it
// found a split (an internal node) or gave up (a leaf).
type NodeSearch struct {
	Depth   int
	Tuples  int
	Elapsed time.Duration
	Found   bool
}

// MemberBuild is one finished ensemble member from forest.Train.
type MemberBuild struct {
	Index   int // member index, 0-based
	Total   int // ensemble size
	Nodes   int
	Depth   int
	Elapsed time.Duration
}

// BoostRound is one boosting round from boost.Train: the member's weighted
// training error, its SAMME vote weight, and whether the round was kept
// (rounds at or beyond the chance bound are discarded and end training).
type BoostRound struct {
	Round int // 1-based
	Error float64
	Alpha float64
	Kept  bool
}

// ProgressHook receives training-side instrumentation events. Any field may
// be nil; the dispatch methods are nil-receiver safe, so training code calls
// them unconditionally and an uninstrumented build pays only a nil check.
// Hooks observe training — they must never influence it — and may be called
// concurrently from parallel subtree or member builds, so implementations
// must be safe for concurrent use.
type ProgressHook struct {
	OnNode   func(NodeSearch)
	OnMember func(MemberBuild)
	OnRound  func(BoostRound)
}

// Node dispatches a per-node split-search event.
func (h *ProgressHook) Node(e NodeSearch) {
	if h != nil && h.OnNode != nil {
		h.OnNode(e)
	}
}

// Member dispatches a finished-member event.
func (h *ProgressHook) Member(e MemberBuild) {
	if h != nil && h.OnMember != nil {
		h.OnMember(e)
	}
}

// Shared no-op completions, so an unobserved build allocates nothing.
var (
	nopNodeDone   = func(depth, tuples int, found bool) {}
	nopMemberDone = func(MemberBuild) {}
)

// StartNode begins timing one split search and returns its completion
// callback. The clock lives here, not in the training packages: core and
// forest are determinism-critical (udtlint forbids them the wall clock), and
// keeping time.Now behind the hook both satisfies that gate and makes the
// no-observer case free of clock reads entirely.
func (h *ProgressHook) StartNode() func(depth, tuples int, found bool) {
	if h == nil || h.OnNode == nil {
		return nopNodeDone
	}
	start := time.Now()
	return func(depth, tuples int, found bool) {
		h.OnNode(NodeSearch{Depth: depth, Tuples: tuples, Elapsed: time.Since(start), Found: found})
	}
}

// StartMember begins timing one ensemble member build and returns its
// completion callback, which stamps Elapsed before dispatch.
func (h *ProgressHook) StartMember() func(MemberBuild) {
	if h == nil || h.OnMember == nil {
		return nopMemberDone
	}
	start := time.Now()
	return func(e MemberBuild) {
		e.Elapsed = time.Since(start)
		h.OnMember(e)
	}
}

// Round dispatches a boosting-round event.
func (h *ProgressHook) Round(e BoostRound) {
	if h != nil && h.OnRound != nil {
		h.OnRound(e)
	}
}

// TrainProgress is the standard ProgressHook sink behind "udtree train
// -progress" and "udtbench -progress": it aggregates split-search timing
// into the shared latency buckets, records member and round events, and —
// when constructed with a writer — narrates members and rounds live.
type TrainProgress struct {
	nodes       atomic.Int64
	foundSplits atomic.Int64
	searchNanos atomic.Int64
	searchHist  latency.AtomicHist

	mu      sync.Mutex
	w       io.Writer // nil = collect silently
	members []MemberBuild
	rounds  []BoostRound
}

// NewTrainProgress returns a collector; a non-nil w gets one line per
// finished member and per boosting round as they happen.
func NewTrainProgress(w io.Writer) *TrainProgress {
	return &TrainProgress{w: w}
}

// Hook returns the ProgressHook feeding this collector.
func (p *TrainProgress) Hook() *ProgressHook {
	return &ProgressHook{
		OnNode:   p.onNode,
		OnMember: p.onMember,
		OnRound:  p.onRound,
	}
}

func (p *TrainProgress) onNode(e NodeSearch) {
	p.nodes.Add(1)
	if e.Found {
		p.foundSplits.Add(1)
	}
	p.searchNanos.Add(e.Elapsed.Nanoseconds())
	p.searchHist.Observe(e.Elapsed)
}

func (p *TrainProgress) onMember(e MemberBuild) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.members = append(p.members, e)
	if p.w != nil {
		fmt.Fprintf(p.w, "progress: member %d/%d: %d nodes, depth %d in %v\n",
			e.Index+1, e.Total, e.Nodes, e.Depth, e.Elapsed.Round(time.Millisecond))
	}
}

func (p *TrainProgress) onRound(e BoostRound) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.rounds = append(p.rounds, e)
	if p.w != nil {
		kept := "kept"
		if !e.Kept {
			kept = "discarded"
		}
		fmt.Fprintf(p.w, "progress: round %d: err %.4f alpha %.3f %s\n",
			e.Round, e.Error, e.Alpha, kept)
	}
}

// Nodes returns the number of split searches observed.
func (p *TrainProgress) Nodes() int64 { return p.nodes.Load() }

// FoundSplits returns how many searches produced an internal node.
func (p *TrainProgress) FoundSplits() int64 { return p.foundSplits.Load() }

// SearchNanos returns the total split-search time observed.
func (p *TrainProgress) SearchNanos() int64 { return p.searchNanos.Load() }

// SearchHist returns the split-search latency histogram.
func (p *TrainProgress) SearchHist() *latency.Snapshot { return p.searchHist.Snapshot() }

// Members returns a copy of the member events observed so far.
func (p *TrainProgress) Members() []MemberBuild {
	p.mu.Lock()
	defer p.mu.Unlock()
	return append([]MemberBuild(nil), p.members...)
}

// Rounds returns a copy of the boosting-round events observed so far.
func (p *TrainProgress) Rounds() []BoostRound {
	p.mu.Lock()
	defer p.mu.Unlock()
	return append([]BoostRound(nil), p.rounds...)
}

// Summary writes the end-of-training digest: split-search totals and the
// bucket where the median search landed.
func (p *TrainProgress) Summary(w io.Writer) {
	n := p.nodes.Load()
	if n == 0 {
		fmt.Fprintln(w, "progress: no split searches observed")
		return
	}
	total := time.Duration(p.searchNanos.Load())
	line := fmt.Sprintf("progress: %d split searches (%d found) in %v (mean %v",
		n, p.foundSplits.Load(), total.Round(time.Millisecond), (total / time.Duration(n)).Round(time.Microsecond))
	if lo, hi, ok := p.searchHist.Snapshot().PercentileBounds(0.5); ok {
		if hi < 0 {
			line += fmt.Sprintf(", median > %dµs", lo)
		} else {
			line += fmt.Sprintf(", median (%d, %d]µs", lo, hi)
		}
	}
	fmt.Fprintln(w, line+")")
}
