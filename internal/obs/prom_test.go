package obs

import (
	"strings"
	"testing"
	"time"

	"udt/internal/latency"
)

// sampleFamilies builds an exposition exercising every family shape: bare
// gauges, labelled counters, multi-series histograms, and escapes.
func sampleFamilies() []Family {
	var h latency.AtomicHist
	h.Observe(3 * time.Microsecond)
	h.Observe(500 * time.Microsecond)
	h.Observe(20 * time.Second) // overflow bucket
	return []Family{
		{Name: "up", Help: "Liveness.", Type: Gauge, Samples: []Sample{{Value: 1}}},
		{Name: "req_total", Help: "Requests with \\ and \n in help.", Type: Counter, Samples: []Sample{
			{Labels: []Label{{Key: "endpoint", Value: "classify"}}, Value: 12},
			{Labels: []Label{{Key: "endpoint", Value: `we"ird\value` + "\n"}}, Value: 0},
		}},
		{Name: "lat_seconds", Help: "Latency.", Type: Histogram, Hists: []Hist{
			HistFromLatency(h.Snapshot(), 20.0005, Label{Key: "endpoint", Value: "classify"}),
			{Labels: []Label{{Key: "endpoint", Value: "reload"}},
				UpperBounds: []float64{0.1, 1}, Counts: []int64{2, 1, 0}, Sum: 0.4},
		}},
	}
}

func TestWriteParseRoundTrip(t *testing.T) {
	var b strings.Builder
	if err := WriteText(&b, sampleFamilies()); err != nil {
		t.Fatal(err)
	}
	e, err := ParseText([]byte(b.String()))
	if err != nil {
		t.Fatalf("ParseText: %v\nexposition:\n%s", err, b.String())
	}

	for name, typ := range map[string]MetricType{"up": Gauge, "req_total": Counter, "lat_seconds": Histogram} {
		f := e.Families[name]
		if f == nil || f.Type != typ {
			t.Fatalf("family %q = %+v, want type %s", name, f, typ)
		}
	}
	if v, ok := e.Value("up"); !ok || v != 1 {
		t.Fatalf("up = %v, %v", v, ok)
	}
	if v, ok := e.Value("req_total", Label{Key: "endpoint", Value: "classify"}); !ok || v != 12 {
		t.Fatalf("req_total{classify} = %v, %v", v, ok)
	}
	// Escaped label round-trips byte-for-byte.
	if v, ok := e.Value("req_total", Label{Key: "endpoint", Value: `we"ird\value` + "\n"}); !ok || v != 0 {
		t.Fatalf("escaped label series = %v, %v", v, ok)
	}
	// Histogram _count equals the bucket total; +Inf bucket carries it too.
	ep := Label{Key: "endpoint", Value: "classify"}
	if v, ok := e.Value("lat_seconds_count", ep); !ok || v != 3 {
		t.Fatalf("lat_seconds_count = %v, %v", v, ok)
	}
	if v, ok := e.Value("lat_seconds_bucket", ep, Label{Key: "le", Value: "+Inf"}); !ok || v != 3 {
		t.Fatalf("+Inf bucket = %v, %v", v, ok)
	}
	// Cumulative: the 1.024ms bound has seen the 3µs and 500µs events.
	if v, ok := e.Value("lat_seconds_bucket", ep, Label{Key: "le", Value: "0.001024"}); !ok || v != 2 {
		t.Fatalf("le=0.001024 bucket = %v, %v", v, ok)
	}
	if v, ok := e.Value("lat_seconds_sum", ep); !ok || v != 20.0005 {
		t.Fatalf("lat_seconds_sum = %v, %v", v, ok)
	}
}

func TestSeriesKeySortsLabels(t *testing.T) {
	a := SeriesKey("m", []Label{{Key: "b", Value: "2"}, {Key: "a", Value: "1"}})
	b := SeriesKey("m", []Label{{Key: "a", Value: "1"}, {Key: "b", Value: "2"}})
	if a != b {
		t.Fatalf("SeriesKey order-sensitive: %q vs %q", a, b)
	}
	if SeriesKey("m", nil) != "m" {
		t.Fatalf("unlabelled SeriesKey = %q", SeriesKey("m", nil))
	}
}

func TestParseTextRejects(t *testing.T) {
	cases := []struct {
		name string
		in   string
	}{
		{"sample before TYPE", "foo 1\n"},
		{"unknown type", "# TYPE foo summary\nfoo 1\n"},
		{"family declared twice", "# TYPE foo counter\nfoo 1\n# TYPE foo counter\n"},
		{"duplicate series", "# TYPE foo counter\nfoo 1\nfoo 2\n"},
		{"timestamp", "# TYPE foo counter\nfoo 1 1712345678\n"},
		{"bad float", "# TYPE foo counter\nfoo abc\n"},
		{"negative counter", "# TYPE foo counter\nfoo -1\n"},
		{"non-finite value", "# TYPE foo gauge\nfoo NaN\n"},
		{"interleaved family", "# TYPE foo counter\n# TYPE bar counter\nfoo 1\n"},
		{"histogram stray sample", "# TYPE h histogram\nh 1\n"},
		{"histogram no +Inf", "# TYPE h histogram\nh_bucket{le=\"1\"} 1\nh_sum 1\nh_count 1\n"},
		{"histogram not cumulative", "# TYPE h histogram\nh_bucket{le=\"1\"} 2\nh_bucket{le=\"+Inf\"} 1\nh_sum 1\nh_count 1\n"},
		{"histogram count mismatch", "# TYPE h histogram\nh_bucket{le=\"+Inf\"} 2\nh_sum 1\nh_count 3\n"},
		{"histogram missing sum", "# TYPE h histogram\nh_bucket{le=\"+Inf\"} 1\nh_count 1\n"},
		{"unterminated label", "# TYPE foo counter\nfoo{a=\"x 1\n"},
		{"bad escape", "# TYPE foo counter\nfoo{a=\"\\t\"} 1\n"},
		{"repeated HELP", "# HELP foo a\n# HELP foo b\n# TYPE foo counter\nfoo 1\n"},
	}
	for _, tc := range cases {
		if _, err := ParseText([]byte(tc.in)); err == nil {
			t.Errorf("%s: parsed without error:\n%s", tc.name, tc.in)
		}
	}
}

func TestParseTextToleratesComments(t *testing.T) {
	in := "# just a comment\n# TYPE foo counter\nfoo{a=\"b\"} 3\n\n# trailing comment\n"
	e, err := ParseText([]byte(in))
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := e.Value("foo", Label{Key: "a", Value: "b"}); !ok || v != 3 {
		t.Fatalf("foo{a=b} = %v, %v", v, ok)
	}
}
