package obs

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
)

// ParsedFamily is one family's metadata as read back from an exposition.
type ParsedFamily struct {
	Name string
	Help string
	Type MetricType
}

// Exposition is a parsed Prometheus text document: family metadata plus a
// flat map from canonical series key (SeriesKey of the full sample name,
// labels sorted) to value.
type Exposition struct {
	Families map[string]*ParsedFamily
	Series   map[string]float64
}

// Value looks up one series by name and labels.
func (e *Exposition) Value(name string, labels ...Label) (float64, bool) {
	v, ok := e.Series[SeriesKey(name, labels)]
	return v, ok
}

// ParseText parses a Prometheus text-format exposition strictly: every
// sample must follow a # TYPE line for its family (no untyped metrics, no
// family interleaving or reappearance), types must be counter, gauge or
// histogram, values must parse, counters must be finite and non-negative,
// timestamps are rejected, duplicate series are rejected, and histogram
// families must be structurally complete (le-ordered cumulative buckets
// ending in +Inf, with _sum and _count agreeing). Tests use it so the
// exposition the server emits can never silently drift from the format.
func ParseText(b []byte) (*Exposition, error) {
	e := &Exposition{
		Families: map[string]*ParsedFamily{},
		Series:   map[string]float64{},
	}
	// histSeries[family][groupKey] collects one histogram series' parts.
	histSeries := map[string]map[string]*histGroup{}

	var cur *ParsedFamily
	helpSeen := map[string]string{}
	for ln, line := range strings.Split(string(b), "\n") {
		lineNo := ln + 1
		if strings.TrimSpace(line) == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.SplitN(line, " ", 4)
			if len(fields) >= 3 && fields[1] == "HELP" {
				name := fields[2]
				if _, dup := helpSeen[name]; dup {
					return nil, fmt.Errorf("obs: line %d: repeated HELP for %q", lineNo, name)
				}
				help := ""
				if len(fields) == 4 {
					help = fields[3]
				}
				helpSeen[name] = help
				continue
			}
			if len(fields) >= 3 && fields[1] == "TYPE" {
				if len(fields) != 4 {
					return nil, fmt.Errorf("obs: line %d: malformed TYPE line %q", lineNo, line)
				}
				name, typ := fields[2], MetricType(fields[3])
				switch typ {
				case Counter, Gauge, Histogram:
				default:
					return nil, fmt.Errorf("obs: line %d: unknown metric type %q", lineNo, typ)
				}
				if _, dup := e.Families[name]; dup {
					return nil, fmt.Errorf("obs: line %d: family %q declared twice", lineNo, name)
				}
				cur = &ParsedFamily{Name: name, Help: helpSeen[name], Type: typ}
				e.Families[name] = cur
				if typ == Histogram {
					histSeries[name] = map[string]*histGroup{}
				}
				continue
			}
			continue // plain comment
		}

		name, labels, value, err := parseSampleLine(line)
		if err != nil {
			return nil, fmt.Errorf("obs: line %d: %w", lineNo, err)
		}
		if cur == nil {
			return nil, fmt.Errorf("obs: line %d: sample %q before any # TYPE line", lineNo, name)
		}
		base, suffix := name, ""
		if cur.Type == Histogram {
			for _, sfx := range []string{"_bucket", "_sum", "_count"} {
				if strings.HasSuffix(name, sfx) && strings.TrimSuffix(name, sfx) == cur.Name {
					base, suffix = cur.Name, sfx
					break
				}
			}
			if suffix == "" {
				return nil, fmt.Errorf("obs: line %d: sample %q is not a _bucket/_sum/_count of histogram %q", lineNo, name, cur.Name)
			}
		}
		if base != cur.Name {
			return nil, fmt.Errorf("obs: line %d: sample %q outside its family block (current family %q)", lineNo, name, cur.Name)
		}
		if math.IsNaN(value) || math.IsInf(value, 0) {
			return nil, fmt.Errorf("obs: line %d: %s value %v is not finite", lineNo, name, value)
		}
		if (cur.Type == Counter || cur.Type == Histogram) && value < 0 {
			return nil, fmt.Errorf("obs: line %d: %s %s has negative value %v", lineNo, cur.Type, name, value)
		}
		key := SeriesKey(name, labels)
		if _, dup := e.Series[key]; dup {
			return nil, fmt.Errorf("obs: line %d: duplicate series %s", lineNo, key)
		}
		e.Series[key] = value

		if cur.Type == Histogram {
			rest, le, hasLE, err := splitLE(labels)
			if err != nil {
				return nil, fmt.Errorf("obs: line %d: %s: %w", lineNo, name, err)
			}
			gk := SeriesKey("", rest)
			groups := histSeries[cur.Name]
			g := groups[gk]
			if g == nil {
				g = &histGroup{buckets: map[float64]float64{}}
				groups[gk] = g
			}
			switch suffix {
			case "_bucket":
				if !hasLE {
					return nil, fmt.Errorf("obs: line %d: %s has no le label", lineNo, name)
				}
				g.buckets[le] = value
			case "_sum":
				if hasLE {
					return nil, fmt.Errorf("obs: line %d: %s carries an le label", lineNo, name)
				}
				v := value
				g.sum = &v
			case "_count":
				if hasLE {
					return nil, fmt.Errorf("obs: line %d: %s carries an le label", lineNo, name)
				}
				v := value
				g.count = &v
			}
		}
	}

	for fam, groups := range histSeries {
		for gk, g := range groups {
			if err := g.validate(); err != nil {
				return nil, fmt.Errorf("obs: histogram %s%s: %w", fam, gk, err)
			}
		}
	}
	return e, nil
}

// histGroup accumulates one histogram series' parts (one per distinct
// label set) while parsing, for the structural check at the end.
type histGroup struct {
	buckets map[float64]float64 // le -> cumulative count
	sum     *float64
	count   *float64
}

// validate checks one histogram series for structural completeness.
func (g *histGroup) validate() error {
	if len(g.buckets) == 0 {
		return fmt.Errorf("no buckets")
	}
	les := make([]float64, 0, len(g.buckets))
	for le := range g.buckets {
		les = append(les, le)
	}
	sort.Float64s(les)
	inf := les[len(les)-1]
	if !math.IsInf(inf, 1) {
		return fmt.Errorf("no le=\"+Inf\" bucket")
	}
	prev := -1.0
	for _, le := range les {
		c := g.buckets[le]
		if c < prev {
			return fmt.Errorf("buckets not cumulative at le=%v (%v after %v)", le, c, prev)
		}
		prev = c
	}
	if g.count == nil {
		return fmt.Errorf("no _count series")
	}
	if g.sum == nil {
		return fmt.Errorf("no _sum series")
	}
	if *g.count != g.buckets[inf] {
		return fmt.Errorf("_count %v != +Inf bucket %v", *g.count, g.buckets[inf])
	}
	return nil
}

// splitLE separates the le label from the rest, parsing its bound ("+Inf"
// allowed).
func splitLE(labels []Label) (rest []Label, le float64, hasLE bool, err error) {
	for _, l := range labels {
		if l.Key != "le" {
			rest = append(rest, l)
			continue
		}
		if hasLE {
			return nil, 0, false, fmt.Errorf("repeated le label")
		}
		hasLE = true
		if l.Value == "+Inf" {
			le = math.Inf(1)
			continue
		}
		le, err = strconv.ParseFloat(l.Value, 64)
		if err != nil {
			return nil, 0, false, fmt.Errorf("bad le %q", l.Value)
		}
	}
	return rest, le, hasLE, nil
}

// parseSampleLine parses one sample: name, optional {labels}, value — and
// nothing after the value (timestamps are rejected).
func parseSampleLine(line string) (name string, labels []Label, value float64, err error) {
	i := 0
	for i < len(line) && isNameByte(line[i], i == 0) {
		i++
	}
	if i == 0 {
		return "", nil, 0, fmt.Errorf("malformed sample line %q", line)
	}
	name = line[:i]
	if i < len(line) && line[i] == '{' {
		labels, i, err = parseLabels(line, i)
		if err != nil {
			return "", nil, 0, err
		}
	}
	rest := strings.TrimSpace(line[i:])
	if rest == "" {
		return "", nil, 0, fmt.Errorf("sample %q has no value", name)
	}
	if fields := strings.Fields(rest); len(fields) != 1 {
		return "", nil, 0, fmt.Errorf("sample %q has trailing data %q (timestamps are rejected)", name, rest)
	}
	value, err = strconv.ParseFloat(rest, 64)
	if err != nil {
		return "", nil, 0, fmt.Errorf("sample %q has bad value %q", name, rest)
	}
	return name, labels, value, nil
}

// parseLabels parses {k="v",...} starting at the '{' at position i,
// returning the position just past the '}'.
func parseLabels(line string, i int) ([]Label, int, error) {
	var labels []Label
	i++ // consume '{'
	for {
		for i < len(line) && line[i] == ' ' {
			i++
		}
		if i < len(line) && line[i] == '}' {
			return labels, i + 1, nil
		}
		start := i
		for i < len(line) && isNameByte(line[i], i == start) {
			i++
		}
		if i == start {
			return nil, 0, fmt.Errorf("malformed label set in %q", line)
		}
		key := line[start:i]
		if i >= len(line) || line[i] != '=' {
			return nil, 0, fmt.Errorf("label %q has no value", key)
		}
		i++
		if i >= len(line) || line[i] != '"' {
			return nil, 0, fmt.Errorf("label %q value is not quoted", key)
		}
		i++
		var val strings.Builder
		for {
			if i >= len(line) {
				return nil, 0, fmt.Errorf("label %q value is unterminated", key)
			}
			c := line[i]
			if c == '"' {
				i++
				break
			}
			if c == '\\' {
				if i+1 >= len(line) {
					return nil, 0, fmt.Errorf("label %q value ends in a bare backslash", key)
				}
				switch line[i+1] {
				case '\\':
					val.WriteByte('\\')
				case '"':
					val.WriteByte('"')
				case 'n':
					val.WriteByte('\n')
				default:
					return nil, 0, fmt.Errorf("label %q value has bad escape \\%c", key, line[i+1])
				}
				i += 2
				continue
			}
			val.WriteByte(c)
			i++
		}
		labels = append(labels, Label{Key: key, Value: val.String()})
		for i < len(line) && line[i] == ' ' {
			i++
		}
		if i < len(line) && line[i] == ',' {
			i++
			continue
		}
		if i < len(line) && line[i] == '}' {
			return labels, i + 1, nil
		}
		return nil, 0, fmt.Errorf("malformed label set in %q", line)
	}
}

// isNameByte reports whether c may appear in a metric or label name
// ([a-zA-Z_:][a-zA-Z0-9_:]* — colons are reserved for recording rules but
// legal in the format).
func isNameByte(c byte, first bool) bool {
	switch {
	case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
		return true
	case c >= '0' && c <= '9':
		return !first
	}
	return false
}
