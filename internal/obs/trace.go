// Package obs is the serving and training observability layer: per-request
// traces with decode/classify/encode spans, the HTTP middleware that samples
// and records them, a Prometheus text-format view of the server's metrics
// (writer and strict parser), process runtime metrics, and the ProgressHook
// that instruments tree, forest and boosted training.
//
// The package is stdlib-only (plus internal/latency, whose power-of-two
// buckets every histogram in the repo shares) and imports nothing from the
// model layers, so core, forest and boost can depend on it without cycles.
package obs

import (
	"context"
	"time"
)

// SpanKind names one timed phase of a request. The three kinds cover the
// classify pipeline: decode (body + tuple decoding), classify (model
// evaluation), encode (response rendering).
type SpanKind uint8

const (
	SpanDecode SpanKind = iota
	SpanClassify
	SpanEncode
	// NumSpans sizes per-span arrays; not a valid kind.
	NumSpans
)

// String returns the span's wire name, used as the Prometheus span label and
// the access-log field prefix.
func (k SpanKind) String() string {
	switch k {
	case SpanDecode:
		return "decode"
	case SpanClassify:
		return "classify"
	case SpanEncode:
		return "encode"
	}
	return "unknown"
}

// Trace accumulates the timed spans of one sampled request. All methods are
// nil-receiver safe, so handlers call them unconditionally and untraced
// requests pay only the nil check — tracing is free when disabled. A span
// kind may Begin/End several times (the stream endpoint times every line);
// the nanos accumulate. A span left open when the request finishes is
// discarded, never guessed at.
//
// A Trace is owned by one request at a time and is not safe for concurrent
// use; the middleware pools instances across requests.
type Trace struct {
	// ID is the request's X-Request-Id, echoed into the access log.
	ID string

	mark    [NumSpans]time.Time
	nanos   [NumSpans]int64
	tuples  int
	members int
}

// Begin opens (or re-opens) the span.
//
//udt:hotpath
func (t *Trace) Begin(k SpanKind) {
	if t == nil {
		return
	}
	t.mark[k] = time.Now()
}

// End closes the span, folding the elapsed time into the span's total. An
// End without a matching Begin is ignored.
//
//udt:hotpath
func (t *Trace) End(k SpanKind) {
	if t == nil {
		return
	}
	if m := t.mark[k]; !m.IsZero() {
		t.nanos[k] += time.Since(m).Nanoseconds()
		t.mark[k] = time.Time{}
	}
}

// AddTuples counts tuples classified under this request.
//
//udt:hotpath
func (t *Trace) AddTuples(n int) {
	if t == nil {
		return
	}
	t.tuples += n
}

// AddMembers counts ensemble members evaluated under this request
// (early-exit mode).
//
//udt:hotpath
func (t *Trace) AddMembers(n int) {
	if t == nil {
		return
	}
	t.members += n
}

// SpanNanos returns the accumulated time of one span kind.
func (t *Trace) SpanNanos(k SpanKind) int64 {
	if t == nil {
		return 0
	}
	return t.nanos[k]
}

// Tuples returns the tuple count recorded by AddTuples.
func (t *Trace) Tuples() int {
	if t == nil {
		return 0
	}
	return t.tuples
}

// Members returns the member count recorded by AddMembers.
func (t *Trace) Members() int {
	if t == nil {
		return 0
	}
	return t.members
}

// reset clears the trace for reuse from the pool.
func (t *Trace) reset() {
	*t = Trace{}
}

// traceKey is the context key under which the middleware stores the request's
// Trace.
type traceKey struct{}

// WithTrace returns a context carrying the trace.
func WithTrace(ctx context.Context, t *Trace) context.Context {
	return context.WithValue(ctx, traceKey{}, t)
}

// TraceFrom returns the request's Trace, or nil when the request is not
// sampled — the nil is usable directly (all Trace methods accept it).
func TraceFrom(ctx context.Context) *Trace {
	t, _ := ctx.Value(traceKey{}).(*Trace)
	return t
}
