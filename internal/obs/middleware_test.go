package obs

import (
	"bytes"
	"encoding/json"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

// get performs one request against a wrapped handler and returns the
// recorder.
func get(t *testing.T, h http.HandlerFunc, hdr map[string]string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodGet, "/x", nil)
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	w := httptest.NewRecorder()
	h(w, req)
	return w
}

func TestMiddlewareSamplingDeterministic(t *testing.T) {
	m := &Middleware{SampleEvery: 2}
	var em EndpointMetrics
	traced := []bool{}
	h := m.Wrap("x", &em, nil, func(w http.ResponseWriter, r *http.Request) {
		traced = append(traced, TraceFrom(r.Context()) != nil)
	})
	for i := 0; i < 4; i++ {
		get(t, h, nil)
	}
	want := []bool{true, false, true, false}
	for i, tr := range traced {
		if tr != want[i] {
			t.Fatalf("request %d traced=%v, want %v (all: %v)", i+1, tr, want[i], traced)
		}
	}
	if m.Sampled() != 2 {
		t.Fatalf("Sampled() = %d, want 2", m.Sampled())
	}
}

func TestMiddlewareDisabledHasNoTrace(t *testing.T) {
	m := &Middleware{}
	var em EndpointMetrics
	h := m.Wrap("x", &em, nil, func(w http.ResponseWriter, r *http.Request) {
		if TraceFrom(r.Context()) != nil {
			t.Error("trace present with SampleEvery 0")
		}
	})
	get(t, h, nil)
	if m.Sampled() != 0 {
		t.Fatalf("Sampled() = %d, want 0", m.Sampled())
	}
}

func TestMiddlewareAccounting(t *testing.T) {
	m := &Middleware{}
	var em EndpointMetrics
	h := m.Wrap("x", &em, []string{"application/json"}, func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Query().Get("fail") != "" {
			Fail(w, http.StatusBadRequest, http.ErrBodyNotAllowed)
			return
		}
		w.Write([]byte("{}"))
	})

	w := get(t, h, nil)
	if w.Code != http.StatusOK {
		t.Fatalf("status = %d", w.Code)
	}
	if id := w.Header().Get("X-Request-Id"); len(id) != 16 {
		t.Fatalf("generated request id %q, want 16 hex chars", id)
	}

	// Echoed request ID.
	w = get(t, h, map[string]string{"X-Request-Id": "caller-chosen"})
	if id := w.Header().Get("X-Request-Id"); id != "caller-chosen" {
		t.Fatalf("request id %q, want echo", id)
	}

	// Unacceptable Accept header is refused with 406 and counted as an error.
	w = get(t, h, map[string]string{"Accept": "text/csv"})
	if w.Code != http.StatusNotAcceptable {
		t.Fatalf("status = %d, want 406", w.Code)
	}
	var body struct {
		Error     string `json:"error"`
		RequestID string `json:"requestId"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &body); err != nil {
		t.Fatal(err)
	}
	if body.Error == "" || body.RequestID == "" {
		t.Fatalf("406 body = %+v, want error and requestId", body)
	}

	// A handler-level failure status is counted too.
	req := httptest.NewRequest(http.MethodGet, "/x?fail=1", nil)
	rec := httptest.NewRecorder()
	h(rec, req)

	if got := em.Requests.Load(); got != 4 {
		t.Fatalf("requests = %d, want 4", got)
	}
	if got := em.Errors.Load(); got != 2 {
		t.Fatalf("errors = %d, want 2", got)
	}
	if em.Nanos.Load() <= 0 || em.Hist.Snapshot().Total() != 4 {
		t.Fatalf("latency accounting: nanos=%d histTotal=%d", em.Nanos.Load(), em.Hist.Snapshot().Total())
	}

	snap := em.Snapshot()
	for _, key := range []string{"requests", "errors", "totalLatency", "avgLatency", "latency"} {
		if _, ok := snap[key]; !ok {
			t.Fatalf("Snapshot missing %q: %v", key, snap)
		}
	}
}

func TestMiddlewareAccessLogSpans(t *testing.T) {
	var logBuf bytes.Buffer
	m := &Middleware{
		SampleEvery: 1,
		Log:         slog.New(slog.NewJSONHandler(&logBuf, nil)),
	}
	var em EndpointMetrics
	h := m.Wrap("classify", &em, nil, func(w http.ResponseWriter, r *http.Request) {
		tr := TraceFrom(r.Context())
		tr.Begin(SpanDecode)
		time.Sleep(2 * time.Millisecond)
		tr.End(SpanDecode)
		tr.AddTuples(3)
		tr.Begin(SpanClassify)
		time.Sleep(time.Millisecond)
		tr.End(SpanClassify)
		w.Write([]byte("{}"))
	})
	get(t, h, map[string]string{"X-Request-Id": "rid-1"})

	var line struct {
		Msg            string `json:"msg"`
		RequestID      string `json:"requestId"`
		Endpoint       string `json:"endpoint"`
		Status         int    `json:"status"`
		TotalMicros    int64  `json:"totalMicros"`
		DecodeMicros   int64  `json:"decodeMicros"`
		ClassifyMicros int64  `json:"classifyMicros"`
		EncodeMicros   int64  `json:"encodeMicros"`
		Tuples         int    `json:"tuples"`
	}
	if err := json.Unmarshal(logBuf.Bytes(), &line); err != nil {
		t.Fatalf("access log not JSON: %v\n%s", err, logBuf.String())
	}
	if line.Msg != "request" || line.RequestID != "rid-1" || line.Endpoint != "classify" || line.Status != 200 || line.Tuples != 3 {
		t.Fatalf("access log = %+v", line)
	}
	if line.DecodeMicros <= 0 || line.ClassifyMicros <= 0 {
		t.Fatalf("span micros not recorded: %+v", line)
	}
	spanSum := line.DecodeMicros + line.ClassifyMicros + line.EncodeMicros
	if spanSum > line.TotalMicros {
		t.Fatalf("span sum %dµs exceeds request total %dµs", spanSum, line.TotalMicros)
	}

	// The spans landed in the middleware's per-span state.
	if m.SpanTotalNanos(SpanDecode) <= 0 || m.SpanSnapshot(SpanDecode).Total() != 1 {
		t.Fatalf("decode span not folded: nanos=%d", m.SpanTotalNanos(SpanDecode))
	}
	if m.SpanTotalNanos(SpanEncode) != 0 {
		t.Fatalf("encode span recorded %d nanos without any Begin", m.SpanTotalNanos(SpanEncode))
	}
}

func TestAcceptsNegotiation(t *testing.T) {
	cases := []struct {
		accept string
		ctype  string
		want   bool
	}{
		{"", "application/json", true},
		{"application/json", "application/json", true},
		{"application/*", "application/json", true},
		{"*/*", "application/json", true},
		{"text/plain", "application/json", false},
		{"application/json;q=0", "application/json", false},
		{"*/*;q=0", "application/json", false},
		{"*/*;q=0, application/json", "application/json", true},
		{"application/json;q=0, */*", "application/json", false},
	}
	for _, tc := range cases {
		headers := []string{tc.accept}
		if tc.accept == "" {
			headers = nil
		}
		if got := Accepts(headers, tc.ctype); got != tc.want {
			t.Errorf("Accepts(%q, %q) = %v, want %v", tc.accept, tc.ctype, got, tc.want)
		}
	}
	// Multi-type endpoints admit a request accepting any one of them.
	if !acceptsAny([]string{"text/plain"}, []string{"application/json", "text/plain"}) {
		t.Fatal("acceptsAny refused a listed type")
	}
	if acceptsAny([]string{"text/csv"}, []string{"application/json", "text/plain"}) {
		t.Fatal("acceptsAny admitted an unlisted type")
	}
}

// TestWrapModelDualAccounting: WrapModel feeds the identical observation
// into the endpoint metrics and the per-request resolved metrics — requests,
// errors, and latency all move in lockstep — and a nil resolution (or nil
// resolver) leaves only the endpoint counters moving. This is the contract
// the model registry inherits instead of growing its own accounting.
func TestWrapModelDualAccounting(t *testing.T) {
	m := &Middleware{}
	var em EndpointMetrics
	perModel := map[string]*EndpointMetrics{
		"a": new(EndpointMetrics),
		"b": new(EndpointMetrics),
	}
	h := m.WrapModel("x", &em, func(r *http.Request) *EndpointMetrics {
		return perModel[r.Header.Get("X-Model")] // nil for unknown
	}, nil, func(w http.ResponseWriter, r *http.Request) {
		if r.Header.Get("X-Model") == "b" {
			Fail(w, http.StatusBadRequest, http.ErrBodyNotAllowed)
		}
	})

	get(t, h, map[string]string{"X-Model": "a"})
	get(t, h, map[string]string{"X-Model": "a"})
	get(t, h, map[string]string{"X-Model": "b"})
	get(t, h, map[string]string{"X-Model": "zzz"}) // resolves to nil

	if got := em.Requests.Load(); got != 4 {
		t.Fatalf("endpoint requests = %d, want 4", got)
	}
	if got := em.Errors.Load(); got != 1 {
		t.Fatalf("endpoint errors = %d, want 1", got)
	}
	a, b := perModel["a"], perModel["b"]
	if a.Requests.Load() != 2 || a.Errors.Load() != 0 {
		t.Fatalf("model a = %d req %d err, want 2/0", a.Requests.Load(), a.Errors.Load())
	}
	if b.Requests.Load() != 1 || b.Errors.Load() != 1 {
		t.Fatalf("model b = %d req %d err, want 1/1", b.Requests.Load(), b.Errors.Load())
	}
	if a.Nanos.Load() <= 0 || b.Nanos.Load() <= 0 {
		t.Fatal("per-model latency not recorded")
	}
	// Endpoint total covers every request; per-model totals cover subsets.
	if em.Nanos.Load() < a.Nanos.Load() || em.Nanos.Load() < b.Nanos.Load() {
		t.Fatal("endpoint latency smaller than a per-model subset")
	}

	// Accept negotiation failures are observed in both dimensions too: the
	// 406 happens before the handler but after model resolution.
	get(t, h, map[string]string{"X-Model": "a", "Accept": "text/csv"})
	hNeg := m.WrapModel("x", &em, func(r *http.Request) *EndpointMetrics {
		return perModel[r.Header.Get("X-Model")]
	}, []string{"application/json"}, func(w http.ResponseWriter, r *http.Request) {})
	w := get(t, hNeg, map[string]string{"X-Model": "a", "Accept": "text/csv"})
	if w.Code != http.StatusNotAcceptable {
		t.Fatalf("status = %d, want 406", w.Code)
	}
	if a.Errors.Load() != 1 {
		t.Fatalf("model a errors after 406 = %d, want 1", a.Errors.Load())
	}
}
