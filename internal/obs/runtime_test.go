package obs

import (
	"runtime"
	"testing"
)

func TestRuntimeSnapshot(t *testing.T) {
	var rs RuntimeStats
	s := rs.Snapshot()
	if s.HeapAllocBytes == 0 || s.HeapSysBytes == 0 || s.HeapObjects == 0 {
		t.Fatalf("zero heap stats: %+v", s)
	}
	if s.Goroutines < 1 {
		t.Fatalf("goroutines = %d", s.Goroutines)
	}
	if s.GCPauses == nil || s.GCPauses.Validate() != nil {
		t.Fatalf("gc pause snapshot invalid: %+v", s.GCPauses)
	}
}

func TestRuntimeGCPauseFold(t *testing.T) {
	var rs RuntimeStats
	base := rs.Snapshot()
	runtime.GC()
	runtime.GC()
	s := rs.Snapshot()
	if s.GCCycles < base.GCCycles+2 {
		t.Fatalf("gc cycles %d -> %d, want +2", base.GCCycles, s.GCCycles)
	}
	grown := s.GCPauses.Total() - base.GCPauses.Total()
	if grown < 2 {
		t.Fatalf("pause histogram grew by %d, want >= 2", grown)
	}
	// A second snapshot without new GC folds nothing further.
	again := rs.Snapshot()
	if again.GCPauses.Total() < s.GCPauses.Total() {
		t.Fatal("pause histogram shrank")
	}
	if again.GCCycles == s.GCCycles && again.GCPauses.Total() != s.GCPauses.Total() {
		t.Fatal("pauses double-counted across snapshots")
	}
}
