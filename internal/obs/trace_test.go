package obs

import (
	"context"
	"testing"
	"time"
)

func TestTraceSpansAccumulate(t *testing.T) {
	tr := &Trace{}
	tr.Begin(SpanDecode)
	time.Sleep(time.Millisecond)
	tr.End(SpanDecode)
	first := tr.SpanNanos(SpanDecode)
	if first <= 0 {
		t.Fatalf("first span interval = %d, want > 0", first)
	}
	// A second Begin/End pair on the same kind accumulates.
	tr.Begin(SpanDecode)
	time.Sleep(time.Millisecond)
	tr.End(SpanDecode)
	if got := tr.SpanNanos(SpanDecode); got <= first {
		t.Fatalf("second interval did not accumulate: %d -> %d", first, got)
	}
	// An End with no open Begin is discarded.
	before := tr.SpanNanos(SpanClassify)
	tr.End(SpanClassify)
	if got := tr.SpanNanos(SpanClassify); got != before {
		t.Fatalf("unopened End recorded %d nanos", got-before)
	}
}

func TestTraceNilReceiverSafe(t *testing.T) {
	var tr *Trace
	// Every hot-path method must be a no-op on nil — handlers call them
	// unconditionally whether or not the request was sampled.
	tr.Begin(SpanDecode)
	tr.End(SpanDecode)
	tr.AddTuples(5)
	tr.AddMembers(3)
	if tr.SpanNanos(SpanDecode) != 0 || tr.Tuples() != 0 || tr.Members() != 0 {
		t.Fatal("nil Trace returned non-zero accessors")
	}
}

func TestTraceCounters(t *testing.T) {
	tr := &Trace{}
	tr.AddTuples(3)
	tr.AddTuples(2)
	tr.AddMembers(7)
	if tr.Tuples() != 5 || tr.Members() != 7 {
		t.Fatalf("tuples=%d members=%d, want 5, 7", tr.Tuples(), tr.Members())
	}
}

func TestTraceContext(t *testing.T) {
	if TraceFrom(context.Background()) != nil {
		t.Fatal("TraceFrom on a bare context is not nil")
	}
	tr := &Trace{ID: "abc"}
	ctx := WithTrace(context.Background(), tr)
	if got := TraceFrom(ctx); got != tr {
		t.Fatalf("TraceFrom = %p, want %p", got, tr)
	}
}

func TestSpanKindString(t *testing.T) {
	want := map[SpanKind]string{SpanDecode: "decode", SpanClassify: "classify", SpanEncode: "encode"}
	for k, s := range want {
		if k.String() != s {
			t.Fatalf("SpanKind(%d).String() = %q, want %q", k, k.String(), s)
		}
	}
}
