package obs

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"udt/internal/latency"
)

// TextType is the content type of the Prometheus text exposition format the
// writer produces (and the only version the parser accepts).
const TextType = "text/plain; version=0.0.4; charset=utf-8"

// MetricType is the TYPE line of a family.
type MetricType string

const (
	Counter   MetricType = "counter"
	Gauge     MetricType = "gauge"
	Histogram MetricType = "histogram"
)

// Label is one name="value" pair. Families keep labels in slices (not maps)
// so the exposition is rendered in a deterministic order.
type Label struct {
	Key, Value string
}

// Sample is one counter or gauge series.
type Sample struct {
	Labels []Label
	Value  float64
}

// Hist is one histogram series: per-bucket (non-cumulative) counts over
// upper bounds in seconds, the writer deriving the cumulative _bucket,
// _sum and _count series Prometheus expects. Counts has one more entry
// than UpperBounds — the final overflow bucket rendered as le="+Inf".
type Hist struct {
	Labels      []Label
	UpperBounds []float64
	Counts      []int64
	Sum         float64
}

// Family is one metric family: a name, help text, a type, and its series.
// Counter and Gauge families use Samples; Histogram families use Hists.
type Family struct {
	Name    string
	Help    string
	Type    MetricType
	Samples []Sample
	Hists   []Hist
}

// HistFromLatency converts an internal/latency snapshot into a histogram
// series: bucket bounds become seconds, counts stay per-bucket, and the sum
// is supplied by the caller (the latency snapshot does not track it).
func HistFromLatency(s *latency.Snapshot, sumSeconds float64, labels ...Label) Hist {
	h := Hist{
		Labels:      labels,
		UpperBounds: make([]float64, len(s.BoundsMicros)),
		Counts:      append([]int64(nil), s.Counts...),
		Sum:         sumSeconds,
	}
	for i, b := range s.BoundsMicros {
		h.UpperBounds[i] = float64(b) / 1e6
	}
	return h
}

// WriteText renders the families in the Prometheus text exposition format
// (version 0.0.4): # HELP and # TYPE per family, cumulative histogram
// buckets, escaped label values.
func WriteText(w io.Writer, fams []Family) error {
	var b strings.Builder
	for _, f := range fams {
		if f.Help != "" {
			fmt.Fprintf(&b, "# HELP %s %s\n", f.Name, escapeHelp(f.Help))
		}
		fmt.Fprintf(&b, "# TYPE %s %s\n", f.Name, f.Type)
		for _, s := range f.Samples {
			b.WriteString(f.Name)
			writeLabels(&b, s.Labels, "")
			b.WriteByte(' ')
			b.WriteString(formatValue(s.Value))
			b.WriteByte('\n')
		}
		for _, h := range f.Hists {
			var cum int64
			for i, ub := range h.UpperBounds {
				cum += h.Counts[i]
				b.WriteString(f.Name)
				b.WriteString("_bucket")
				writeLabels(&b, h.Labels, formatValue(ub))
				b.WriteByte(' ')
				b.WriteString(strconv.FormatInt(cum, 10))
				b.WriteByte('\n')
			}
			cum += h.Counts[len(h.Counts)-1]
			b.WriteString(f.Name)
			b.WriteString("_bucket")
			writeLabels(&b, h.Labels, "+Inf")
			b.WriteByte(' ')
			b.WriteString(strconv.FormatInt(cum, 10))
			b.WriteByte('\n')

			b.WriteString(f.Name)
			b.WriteString("_sum")
			writeLabels(&b, h.Labels, "")
			b.WriteByte(' ')
			b.WriteString(formatValue(h.Sum))
			b.WriteByte('\n')

			b.WriteString(f.Name)
			b.WriteString("_count")
			writeLabels(&b, h.Labels, "")
			b.WriteByte(' ')
			b.WriteString(strconv.FormatInt(cum, 10))
			b.WriteByte('\n')
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// writeLabels renders {k="v",...}, appending an le label when non-empty.
// Nothing is written for an empty label set with no le.
func writeLabels(b *strings.Builder, labels []Label, le string) {
	if len(labels) == 0 && le == "" {
		return
	}
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(l.Value))
		b.WriteByte('"')
	}
	if le != "" {
		if len(labels) > 0 {
			b.WriteByte(',')
		}
		b.WriteString(`le="`)
		b.WriteString(le)
		b.WriteByte('"')
	}
	b.WriteByte('}')
}

// formatValue renders a float the way Prometheus clients do: shortest
// round-trip representation.
func formatValue(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// escapeLabel escapes a label value per the exposition format: backslash,
// double quote and newline.
func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return strings.ReplaceAll(v, `"`, `\"`)
}

// escapeHelp escapes help text: backslash and newline (quotes are legal).
func escapeHelp(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	return strings.ReplaceAll(v, "\n", `\n`)
}

// SeriesKey builds the canonical series identity used by the parser:
// name{k="v",...} with label keys sorted, so writer- and hand-built keys
// compare equal regardless of label order.
func SeriesKey(name string, labels []Label) string {
	if len(labels) == 0 {
		return name
	}
	ls := append([]Label(nil), labels...)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
	var b strings.Builder
	b.WriteString(name)
	b.WriteByte('{')
	for i, l := range ls {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(l.Value))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}
