package obs_test

import (
	"bytes"
	"encoding/json"
	"math"
	"math/rand"
	"strings"
	"testing"

	"udt/internal/boost"
	"udt/internal/core"
	"udt/internal/data"
	"udt/internal/forest"
	"udt/internal/obs"
	"udt/internal/pdf"
)

// ringDataset builds a small three-class dataset with enough structure that
// depth-limited trees leave residual error for boosting to chew on.
func ringDataset(rng *rand.Rand, n int) *data.Dataset {
	ds := data.NewDataset("ring", 2, []string{"a", "b", "c"})
	for i := 0; i < n; i++ {
		c := i % 3
		angle := rng.Float64()*2*math.Pi/3 + float64(c)*2*math.Pi/3
		r := 1 + rng.Float64()*2
		px, _ := pdf.Uniform(r*math.Cos(angle)-0.3, r*math.Cos(angle)+0.3, 7)
		py, _ := pdf.Uniform(r*math.Sin(angle)-0.3, r*math.Sin(angle)+0.3, 7)
		ds.Add(c, px, py)
	}
	return ds
}

// TestBuildProgressObservational: a hooked build emits per-node events and
// produces the byte-identical model a silent build does — hooks observe
// training, never influence it.
func TestBuildProgressObservational(t *testing.T) {
	ds := ringDataset(rand.New(rand.NewSource(11)), 120)
	cfg := core.Config{MaxDepth: 4, MinWeight: 2}

	plain, err := core.Build(ds, cfg)
	if err != nil {
		t.Fatal(err)
	}

	var events []obs.NodeSearch
	cfg.Progress = &obs.ProgressHook{OnNode: func(e obs.NodeSearch) { events = append(events, e) }}
	hooked, err := core.Build(ds, cfg)
	if err != nil {
		t.Fatal(err)
	}

	if len(events) == 0 {
		t.Fatal("no node-search events")
	}
	var found bool
	for _, e := range events {
		if e.Tuples <= 0 || e.Depth < 0 || e.Elapsed < 0 {
			t.Fatalf("bad event %+v", e)
		}
		found = found || e.Found
	}
	if !found {
		t.Fatal("no search found a split, but the tree is non-trivial")
	}

	a, _ := json.Marshal(plain)
	b, _ := json.Marshal(hooked)
	if !bytes.Equal(a, b) {
		t.Fatal("progress hook changed the built tree")
	}
}

func TestForestProgressObservational(t *testing.T) {
	ds := ringDataset(rand.New(rand.NewSource(5)), 100)
	cfg := forest.Config{Trees: 5, Seed: 3, Workers: 4, TreeConfig: core.Config{MaxDepth: 3, MinWeight: 2}}

	plain, err := forest.Train(ds, cfg)
	if err != nil {
		t.Fatal(err)
	}

	prog := obs.NewTrainProgress(nil)
	cfg.TreeConfig.Progress = prog.Hook()
	hooked, err := forest.Train(ds, cfg)
	if err != nil {
		t.Fatal(err)
	}

	members := prog.Members()
	if len(members) != cfg.Trees {
		t.Fatalf("%d member events for %d trees", len(members), cfg.Trees)
	}
	seen := map[int]bool{}
	for _, m := range members {
		if m.Total != cfg.Trees || m.Nodes <= 0 || m.Elapsed <= 0 {
			t.Fatalf("bad member event %+v", m)
		}
		seen[m.Index] = true
	}
	if len(seen) != cfg.Trees {
		t.Fatalf("member indices not distinct: %v", seen)
	}
	if prog.Nodes() == 0 || prog.SearchHist().Total() != prog.Nodes() {
		t.Fatalf("node accounting: nodes=%d hist=%d", prog.Nodes(), prog.SearchHist().Total())
	}

	a, _ := json.Marshal(plain)
	b, _ := json.Marshal(hooked)
	if !bytes.Equal(a, b) {
		t.Fatal("progress hook changed the trained forest")
	}
}

func TestBoostProgressObservational(t *testing.T) {
	ds := ringDataset(rand.New(rand.NewSource(7)), 180)
	cfg := boost.Config{Rounds: 8, TreeConfig: core.Config{MaxDepth: 2, MinWeight: 2}}

	plain, err := boost.Train(ds, cfg)
	if err != nil {
		t.Fatal(err)
	}

	prog := obs.NewTrainProgress(nil)
	cfg.TreeConfig.Progress = prog.Hook()
	hooked, err := boost.Train(ds, cfg)
	if err != nil {
		t.Fatal(err)
	}

	rounds := prog.Rounds()
	var kept int
	for i, r := range rounds {
		if r.Round != i+1 {
			t.Fatalf("round numbering: event %d is round %d", i, r.Round)
		}
		if r.Kept {
			kept++
		}
	}
	if kept != hooked.NumTrees() {
		t.Fatalf("%d kept rounds for %d members", kept, hooked.NumTrees())
	}
	ws := hooked.Weights()
	wi := 0
	for _, r := range rounds {
		if !r.Kept {
			continue
		}
		if math.Abs(r.Alpha-ws[wi]) > 1e-12 {
			t.Fatalf("round %d alpha %.6f, ensemble weight %.6f", r.Round, r.Alpha, ws[wi])
		}
		wi++
	}

	a, _ := json.Marshal(plain)
	b, _ := json.Marshal(hooked)
	if !bytes.Equal(a, b) {
		t.Fatal("progress hook changed the boosted ensemble")
	}
}

// TestTrainProgressNarration: the live writer gets one line per member and
// the summary digests the split searches.
func TestTrainProgressNarration(t *testing.T) {
	ds := ringDataset(rand.New(rand.NewSource(2)), 90)
	var out bytes.Buffer
	prog := obs.NewTrainProgress(&out)
	cfg := forest.Config{Trees: 3, Seed: 1, TreeConfig: core.Config{MaxDepth: 3, MinWeight: 2, Progress: prog.Hook()}}
	if _, err := forest.Train(ds, cfg); err != nil {
		t.Fatal(err)
	}
	lines := strings.Count(out.String(), "progress: member ")
	if lines != cfg.Trees {
		t.Fatalf("%d member lines, want %d:\n%s", lines, cfg.Trees, out.String())
	}

	var sum bytes.Buffer
	prog.Summary(&sum)
	if !strings.Contains(sum.String(), "split searches") {
		t.Fatalf("summary = %q", sum.String())
	}

	var empty bytes.Buffer
	obs.NewTrainProgress(nil).Summary(&empty)
	if !strings.Contains(empty.String(), "no split searches") {
		t.Fatalf("empty summary = %q", empty.String())
	}
}
