package obs

import (
	"runtime"
	"sync"

	"udt/internal/latency"
)

// RuntimeStats collects process runtime metrics on demand. GC pauses are
// folded into a shared-geometry latency histogram incrementally: each
// Snapshot reads the MemStats pause ring and records only the cycles that
// finished since the previous Snapshot, so the histogram is cumulative over
// the process lifetime (bounded by the ring's 256-cycle memory between
// scrapes).
type RuntimeStats struct {
	mu        sync.Mutex
	lastNumGC uint32
	pauses    latency.AtomicHist
}

// RuntimeSnapshot is one point-in-time view of the process runtime,
// serialised into the /metrics JSON document and the Prometheus view.
type RuntimeSnapshot struct {
	HeapAllocBytes     uint64            `json:"heapAllocBytes"`
	HeapSysBytes       uint64            `json:"heapSysBytes"`
	HeapObjects        uint64            `json:"heapObjects"`
	Goroutines         int               `json:"goroutines"`
	GCCycles           int64             `json:"gcCycles"`
	GCPauseTotalMicros int64             `json:"gcPauseTotalMicros"`
	GCPauses           *latency.Snapshot `json:"gcPauses"`
}

// Snapshot reads the runtime state. Safe for concurrent use; concurrent
// snapshots serialise so every finished GC cycle's pause is recorded exactly
// once.
func (r *RuntimeStats) Snapshot() RuntimeSnapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	// PauseNs is a circular buffer: the pause of cycle c lives at index
	// (c+255)%256. Fold in the cycles since the last snapshot, bounded to
	// the 256 the ring remembers.
	from := r.lastNumGC
	if ms.NumGC > from+256 {
		from = ms.NumGC - 256
	}
	for c := from + 1; c <= ms.NumGC; c++ {
		ns := ms.PauseNs[(c+255)%256]
		r.pauses.ObserveNanos(int64(ns))
	}
	r.lastNumGC = ms.NumGC
	return RuntimeSnapshot{
		HeapAllocBytes:     ms.HeapAlloc,
		HeapSysBytes:       ms.HeapSys,
		HeapObjects:        ms.HeapObjects,
		Goroutines:         runtime.NumGoroutine(),
		GCCycles:           int64(ms.NumGC),
		GCPauseTotalMicros: int64(ms.PauseTotalNs / 1e3),
		GCPauses:           r.pauses.Snapshot(),
	}
}
