package obs

import (
	"context"
	cryptorand "crypto/rand"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"log/slog"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"udt/internal/latency"
)

// EndpointMetrics counts one endpoint's traffic with plain atomics, plus a
// power-of-two latency histogram so operators (and udtload's cross-check)
// get percentile bounds, not just the average.
type EndpointMetrics struct {
	Requests atomic.Int64
	Errors   atomic.Int64 // responses with status >= 400
	Nanos    atomic.Int64 // total handler latency
	Hist     latency.AtomicHist
}

// Observe records one finished request.
func (e *EndpointMetrics) Observe(elapsed time.Duration, status int) {
	e.Requests.Add(1)
	e.Nanos.Add(elapsed.Nanoseconds())
	e.Hist.Observe(elapsed)
	if status >= 400 {
		e.Errors.Add(1)
	}
}

// Snapshot renders the endpoint's counters in the /metrics JSON shape.
func (e *EndpointMetrics) Snapshot() map[string]any {
	n := e.Requests.Load()
	out := map[string]any{
		"requests": n,
		"errors":   e.Errors.Load(),
	}
	if n > 0 {
		total := time.Duration(e.Nanos.Load())
		out["totalLatency"] = total.String()
		out["avgLatency"] = (total / time.Duration(n)).String()
		out["latency"] = e.Hist.Snapshot()
	}
	return out
}

// Middleware is the per-request plumbing shared by every endpoint: request
// IDs, Accept negotiation, status/latency accounting into an
// EndpointMetrics, and deterministically sampled request traces.
//
// The zero value is a working middleware with tracing disabled.
type Middleware struct {
	// SampleEvery traces every Nth request (the 1st, N+1st, ...) across all
	// wrapped endpoints; 0 disables tracing entirely. Deterministic by
	// arrival order, so a test serving exactly one request with SampleEvery
	// 1 always traces it.
	SampleEvery int

	// Log, when non-nil, receives one structured access-log record per
	// sampled request.
	Log *slog.Logger

	seq     atomic.Uint64
	sampled atomic.Int64

	spanNanos [NumSpans]atomic.Int64
	spanHist  [NumSpans]latency.AtomicHist

	pool sync.Pool
}

// Wrap instruments a handler: an X-Request-Id echoed (or generated) before
// the handler runs, Accept-header negotiation against the endpoint's
// producible content types (any match admits the request), request/error/
// latency accounting into em, and — for sampled requests — a Trace in the
// request context whose spans land in the middleware's per-span histograms
// and access log.
func (m *Middleware) Wrap(endpoint string, em *EndpointMetrics, ctypes []string, h http.HandlerFunc) http.HandlerFunc {
	return m.WrapModel(endpoint, em, nil, ctypes, h)
}

// WrapModel is Wrap with a second, per-request metrics dimension: per
// resolves the request to an additional EndpointMetrics — in practice a
// model registry entry's counters, making per-model accounting one label
// away from the endpoint accounting — and both receive the identical
// Observe(elapsed, status). A nil per, or a per returning nil (model not
// resolvable), degrades to plain Wrap. per runs before the handler, so it
// must not consume the request body.
func (m *Middleware) WrapModel(endpoint string, em *EndpointMetrics, per func(*http.Request) *EndpointMetrics, ctypes []string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		id := RequestID(r)
		w.Header().Set("X-Request-Id", id)
		rec := &StatusRecorder{ResponseWriter: w, Status: http.StatusOK}
		var pm *EndpointMetrics
		if per != nil {
			pm = per(r)
		}

		var tr *Trace
		if n := m.SampleEvery; n > 0 && (m.seq.Add(1)-1)%uint64(n) == 0 {
			v, _ := m.pool.Get().(*Trace)
			if v == nil {
				v = new(Trace)
			}
			v.reset()
			v.ID = id
			tr = v
			r = r.WithContext(WithTrace(r.Context(), tr))
		}

		if acceptsAny(r.Header.Values("Accept"), ctypes) {
			h(rec, r)
		} else {
			Fail(rec, http.StatusNotAcceptable,
				fmt.Errorf("Accept %q cannot be satisfied: this endpoint produces %s",
					strings.Join(r.Header.Values("Accept"), ", "), strings.Join(ctypes, " or ")))
		}

		elapsed := time.Since(start)
		em.Observe(elapsed, rec.Status)
		if pm != nil {
			pm.Observe(elapsed, rec.Status)
		}
		if tr != nil {
			m.finish(endpoint, r, tr, rec.Status, elapsed)
			m.pool.Put(tr)
		}
	}
}

// finish folds a sampled request's spans into the middleware's histograms
// and emits the access-log record.
func (m *Middleware) finish(endpoint string, r *http.Request, tr *Trace, status int, elapsed time.Duration) {
	m.sampled.Add(1)
	for k := SpanKind(0); k < NumSpans; k++ {
		if ns := tr.nanos[k]; ns > 0 {
			m.spanNanos[k].Add(ns)
			m.spanHist[k].Observe(time.Duration(ns))
		}
	}
	if m.Log == nil {
		return
	}
	m.Log.LogAttrs(context.Background(), slog.LevelInfo, "request",
		slog.String("requestId", tr.ID),
		slog.String("endpoint", endpoint),
		slog.String("method", r.Method),
		slog.String("path", r.URL.Path),
		slog.Int("status", status),
		slog.Int64("totalMicros", elapsed.Microseconds()),
		slog.Int64("decodeMicros", tr.nanos[SpanDecode]/1e3),
		slog.Int64("classifyMicros", tr.nanos[SpanClassify]/1e3),
		slog.Int64("encodeMicros", tr.nanos[SpanEncode]/1e3),
		slog.Int("tuples", tr.tuples),
		slog.Int("members", tr.members),
	)
}

// Sampled returns the number of requests traced so far.
func (m *Middleware) Sampled() int64 { return m.sampled.Load() }

// SpanTotalNanos returns the accumulated time of one span kind across all
// sampled requests.
func (m *Middleware) SpanTotalNanos(k SpanKind) int64 { return m.spanNanos[k].Load() }

// SpanSnapshot returns the latency histogram of one span kind.
func (m *Middleware) SpanSnapshot(k SpanKind) *latency.Snapshot { return m.spanHist[k].Snapshot() }

// Snapshot renders the tracing state for the /metrics JSON document.
func (m *Middleware) Snapshot() map[string]any {
	spans := map[string]any{}
	for k := SpanKind(0); k < NumSpans; k++ {
		spans[k.String()] = map[string]any{
			"totalMicros": m.spanNanos[k].Load() / 1e3,
			"latency":     m.spanHist[k].Snapshot(),
		}
	}
	return map[string]any{
		"sampleEvery": m.SampleEvery,
		"sampled":     m.sampled.Load(),
		"spans":       spans,
	}
}

// StatusRecorder captures the response status for error counting.
type StatusRecorder struct {
	http.ResponseWriter
	Status int
}

func (r *StatusRecorder) WriteHeader(code int) {
	r.Status = code
	r.ResponseWriter.WriteHeader(code)
}

// Flush forwards to the wrapped writer so the NDJSON stream endpoint can
// deliver each line as it is classified — without this the responses would
// sit in the server's write buffer until the handler returned.
func (r *StatusRecorder) Flush() {
	if f, ok := r.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// Unwrap exposes the underlying writer to http.ResponseController, which
// the stream endpoint uses for EnableFullDuplex and per-line Flush.
func (r *StatusRecorder) Unwrap() http.ResponseWriter { return r.ResponseWriter }

// RequestID returns the caller-supplied X-Request-Id (bounded to 128 bytes)
// or generates a fresh 64-bit hex ID.
func RequestID(r *http.Request) string {
	if id := r.Header.Get("X-Request-Id"); id != "" {
		if len(id) > 128 {
			id = id[:128]
		}
		return id
	}
	var b [8]byte
	if _, err := cryptorand.Read(b[:]); err != nil {
		return "unavailable"
	}
	return hex.EncodeToString(b[:])
}

// acceptsAny reports whether the Accept header admits at least one of the
// endpoint's content types.
func acceptsAny(headers []string, ctypes []string) bool {
	for _, ct := range ctypes {
		if Accepts(headers, ct) {
			return true
		}
	}
	return len(ctypes) == 0
}

// Accepts reports whether the request's Accept header lines admit ctype. An
// absent (or blank) header accepts everything. Per RFC 9110 §12.5.1 the
// most specific matching range governs (exact type over "type/*" over
// "*/*"), so an explicit q=0 on the exact type refuses it even when a
// wildcard would admit it. Preference ordering among acceptable types is
// ignored — the caller has one representation per content type, so only
// acceptable-vs-refused can change the outcome.
func Accepts(headers []string, ctype string) bool {
	slash := strings.IndexByte(ctype, '/')
	seen := false
	bestSpec, bestQ := -1, 0.0
	for _, header := range headers {
		if strings.TrimSpace(header) == "" {
			continue
		}
		seen = true
		for _, part := range strings.Split(header, ",") {
			mt := strings.TrimSpace(part)
			q := 1.0
			if i := strings.IndexByte(mt, ';'); i >= 0 {
				q = qvalue(mt[i+1:])
				mt = strings.TrimSpace(mt[:i])
			}
			spec := -1
			switch {
			case strings.EqualFold(mt, ctype):
				spec = 2
			case strings.HasSuffix(mt, "/*") && strings.EqualFold(mt[:len(mt)-2], ctype[:slash]):
				spec = 1
			case mt == "*/*":
				spec = 0
			}
			if spec < 0 {
				continue
			}
			switch {
			case spec > bestSpec:
				bestSpec, bestQ = spec, q
			case spec == bestSpec && q > bestQ:
				// Duplicate ranges at equal specificity: be generous.
				bestQ = q
			}
		}
	}
	return !seen || (bestSpec >= 0 && bestQ > 0)
}

// qvalue extracts the quality weight from a media-range parameter list,
// defaulting to 1 (including for a malformed q, which RFC 9110 leaves
// unspecified — refusing only on an explicit, well-formed q=0).
func qvalue(params string) float64 {
	for _, p := range strings.Split(params, ";") {
		k, v, ok := strings.Cut(strings.TrimSpace(p), "=")
		if ok && strings.EqualFold(strings.TrimSpace(k), "q") {
			if f, err := strconv.ParseFloat(strings.TrimSpace(v), 64); err == nil {
				return f
			}
			return 1
		}
	}
	return 1
}

// Fail writes a JSON error body carrying the request ID stamped by the
// middleware, so a client log line and a server metric line correlate.
func Fail(w http.ResponseWriter, code int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	body := map[string]string{"error": err.Error()}
	if id := w.Header().Get("X-Request-Id"); id != "" {
		body["requestId"] = id
	}
	json.NewEncoder(w).Encode(body)
}
