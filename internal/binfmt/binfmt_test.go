package binfmt

import (
	"bytes"
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"udt/internal/boost"
	"udt/internal/core"
	"udt/internal/data"
	"udt/internal/forest"
	"udt/internal/pdf"
)

// testDataset builds a small mixed dataset (numeric pdfs, one categorical
// attribute, some missing values) with class structure.
func testDataset(seed int64, n int) *data.Dataset {
	rng := rand.New(rand.NewSource(seed))
	ds := &data.Dataset{Name: "binfmt", Classes: []string{"a", "b", "c"}}
	for j := 0; j < 3; j++ {
		ds.NumAttrs = append(ds.NumAttrs, data.Attribute{Name: "N" + string(rune('1'+j)), Kind: data.Numeric})
	}
	ds.CatAttrs = append(ds.CatAttrs, data.Attribute{Name: "C1", Kind: data.Categorical, Domain: []string{"x", "y", "z"}})
	for i := 0; i < n; i++ {
		c := i % 3
		tu := &data.Tuple{Class: c, Weight: 1}
		for j := 0; j < 3; j++ {
			if rng.Float64() < 0.05 {
				tu.Num = append(tu.Num, nil)
				continue
			}
			center := float64(c*8 + j)
			p, err := pdf.Uniform(center-2+rng.Float64(), center+2+rng.Float64(), 7)
			if err != nil {
				panic(err)
			}
			tu.Num = append(tu.Num, p)
		}
		d := data.CatDist{0.2, 0.2, 0.2}
		d[c%3] += 0.4
		tu.Cat = append(tu.Cat, d)
		ds.Tuples = append(ds.Tuples, tu)
	}
	return ds
}

// encodeToFile writes the container to a temp file and returns its path.
func encodeToFile(t *testing.T, write func(*bytes.Buffer) error) string {
	t.Helper()
	var buf bytes.Buffer
	if err := write(&buf); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "model.udt")
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// sameDist fails unless the two distributions are byte-identical.
func sameDist(t *testing.T, what string, i int, got, want []float64) {
	t.Helper()
	for ci := range want {
		if got[ci] != want[ci] {
			t.Fatalf("%s probe %d: %v, want %v", what, i, got, want)
		}
	}
}

// TestTreeRoundTrip: encode a single tree, load it via mmap and via the slab
// path, and require byte-identical classifications on training tuples.
func TestTreeRoundTrip(t *testing.T) {
	ds := testDataset(3, 180)
	tree, err := core.Build(ds, core.Config{MinWeight: 1})
	if err != nil {
		t.Fatal(err)
	}
	compiled, err := tree.Compile()
	if err != nil {
		t.Fatal(err)
	}
	path := encodeToFile(t, func(b *bytes.Buffer) error { return EncodeTree(b, compiled, tree.Stats) })

	c, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if c.Kind() != KindTree || c.Compiled == nil || c.Forest != nil {
		t.Fatalf("loaded kind %q, compiled=%v forest=%v", c.Kind(), c.Compiled != nil, c.Forest != nil)
	}
	if c.TreeStats.Nodes != tree.Stats.Nodes || c.TreeStats.Depth != tree.Stats.Depth {
		t.Fatalf("tree stats %+v, want %+v", c.TreeStats, tree.Stats)
	}
	img, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	slab, err := DecodeBytes(img)
	if err != nil {
		t.Fatal(err)
	}
	if slab.Mapped() {
		t.Fatal("DecodeBytes produced a mapped container")
	}
	for i, tu := range ds.Tuples {
		want := compiled.Classify(tu)
		sameDist(t, "mmap", i, c.Compiled.Classify(tu), want)
		sameDist(t, "slab", i, slab.Compiled.Classify(tu), want)
	}
}

// TestForestRoundTrip: bagged (identity and projected members) and boosted
// ensembles survive the binary round trip with byte-identical full, staged,
// and early-exit predictions, and preserved OOB/stats metadata.
func TestForestRoundTrip(t *testing.T) {
	ds := testDataset(11, 240)
	boosted, err := boost.Train(ds, boost.Config{Rounds: 5, TreeConfig: core.Config{MinWeight: 1}})
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string]*forest.Forest{
		"bagged":    mustTrain(t, ds, forest.Config{Trees: 6, Seed: 2, TreeConfig: core.Config{MinWeight: 1}}),
		"projected": mustTrain(t, ds, forest.Config{Trees: 6, Seed: 2, AttrsPerTree: 2, TreeConfig: core.Config{MinWeight: 1}}),
		"boosted":   boosted,
	}
	for name, f := range cases {
		t.Run(name, func(t *testing.T) {
			path := encodeToFile(t, func(b *bytes.Buffer) error { return EncodeForest(b, f) })
			c, err := Load(path)
			if err != nil {
				t.Fatal(err)
			}
			defer c.Close()
			if c.Kind() != f.Kind() || c.Forest == nil {
				t.Fatalf("loaded kind %q, want %q", c.Kind(), f.Kind())
			}
			g := c.Forest
			if g.OOB != f.OOB {
				t.Fatalf("OOB %+v, want %+v", g.OOB, f.OOB)
			}
			if g.Stats().Nodes != f.Stats().Nodes || g.Stats().Depth != f.Stats().Depth || g.Stats().Leaves != f.Stats().Leaves {
				t.Fatalf("stats %+v, want %+v", g.Stats(), f.Stats())
			}
			if g.NumTrees() != f.NumTrees() {
				t.Fatalf("%d trees, want %d", g.NumTrees(), f.NumTrees())
			}
			for i, tu := range ds.Tuples {
				sameDist(t, "classify", i, g.Classify(tu), f.Classify(tu))
				wp, we := f.PredictEarlyExit(tu)
				gp, ge := g.PredictEarlyExit(tu)
				if wp != gp || we != ge {
					t.Fatalf("probe %d: early exit (%d,%d), want (%d,%d)", i, gp, ge, wp, we)
				}
				for k := 1; k <= f.StageCount(); k += 2 {
					wd, err := f.ClassifyStaged(tu, k)
					if err != nil {
						t.Fatal(err)
					}
					gd, err := g.ClassifyStaged(tu, k)
					if err != nil {
						t.Fatal(err)
					}
					sameDist(t, "staged", i, gd, wd)
				}
			}
		})
	}
}

func mustTrain(t *testing.T, ds *data.Dataset, cfg forest.Config) *forest.Forest {
	t.Helper()
	f, err := forest.Train(ds, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

// TestEncodeDeterministic: the container bytes are a pure function of the
// model — two encodes of the same forest are byte-identical.
func TestEncodeDeterministic(t *testing.T) {
	ds := testDataset(5, 200)
	f := mustTrain(t, ds, forest.Config{Trees: 5, Seed: 9, TreeConfig: core.Config{MinWeight: 1}})
	var a, b bytes.Buffer
	if err := EncodeForest(&a, f); err != nil {
		t.Fatal(err)
	}
	if err := EncodeForest(&b, f); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("two encodes of the same forest differ")
	}
}

// TestHashConsing: an ensemble of identical members (same seed, full
// sample — or simply the same tree repeated) must share one subtree in the
// arena: the container barely grows with member count.
func TestHashConsing(t *testing.T) {
	ds := testDataset(7, 200)
	tree, err := core.Build(ds, core.Config{MinWeight: 1})
	if err != nil {
		t.Fatal(err)
	}
	compiled, err := tree.Compile()
	if err != nil {
		t.Fatal(err)
	}
	single := []forest.WeightedTree{{Tree: tree, Compiled: compiled, Weight: 1}}
	many := make([]forest.WeightedTree, 16)
	for i := range many {
		many[i] = forest.WeightedTree{Tree: tree, Compiled: compiled, Weight: 1}
	}
	f1, err := forest.FromTrees(single, forest.KindBagged)
	if err != nil {
		t.Fatal(err)
	}
	f16, err := forest.FromTrees(many, forest.KindBagged)
	if err != nil {
		t.Fatal(err)
	}
	var b1, b16 bytes.Buffer
	if err := EncodeForest(&b1, f1); err != nil {
		t.Fatal(err)
	}
	if err := EncodeForest(&b16, f16); err != nil {
		t.Fatal(err)
	}
	// 16 identical members add only per-member metadata (roots, weights,
	// ub, stats), not nodes: well under 2 KiB on top of the single-member
	// container.
	if grow := b16.Len() - b1.Len(); grow > 2048 {
		t.Fatalf("16 identical members grew the container by %d bytes; hash-consing is not sharing the subtree", grow)
	}
	// And the deduped container still classifies identically.
	c, err := DecodeBytes(b16.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	for i, tu := range ds.Tuples[:50] {
		sameDist(t, "dedup", i, c.Forest.Classify(tu), f16.Classify(tu))
	}
}

// TestDecodeRejectsCorruption: systematic corruption of a valid container —
// truncations at every section boundary, bit flips in the header, oversized
// and misaligned section entries — must produce errors naming a file
// offset, never a panic or a silently wrong model.
func TestDecodeRejectsCorruption(t *testing.T) {
	ds := testDataset(13, 160)
	f := mustTrain(t, ds, forest.Config{Trees: 3, Seed: 4, TreeConfig: core.Config{MinWeight: 1}})
	var buf bytes.Buffer
	if err := EncodeForest(&buf, f); err != nil {
		t.Fatal(err)
	}
	img := buf.Bytes()

	if _, err := DecodeBytes(nil); err == nil {
		t.Error("empty image decoded")
	}
	for _, cut := range []int{1, len(Magic), len(Magic) + 8, 71, 72, 100, len(img) / 2, len(img) - 1} {
		if cut >= len(img) {
			continue
		}
		if _, err := DecodeBytes(img[:cut]); err == nil {
			t.Errorf("truncation to %d bytes decoded", cut)
		}
	}
	// Flip every byte of the preamble (magic + header + first table entry)
	// one at a time; most flips must fail, none may panic, and any that
	// still decode must still serve (padding bytes are the exception — there
	// are none in the preamble except reserved header words).
	for off := 0; off < 72+24; off++ {
		mut := append([]byte(nil), img...)
		mut[off] ^= 0x40
		c, err := DecodeBytes(mut)
		if err == nil && c == nil {
			t.Fatalf("flip at %d: nil container and nil error", off)
		}
	}
	// Oversize a section size field in the table: must be rejected, not
	// over-read.
	mut := append([]byte(nil), img...)
	entry := 72 + 1*24 // second section entry (kind); size at +16
	mut[entry+16] = 0xFF
	mut[entry+17] = 0xFF
	if _, err := DecodeBytes(mut); err == nil {
		t.Error("oversized section accepted")
	}
}

// TestLoadMissingFile: Load on a nonexistent path reports the path.
func TestLoadMissingFile(t *testing.T) {
	if _, err := Load(filepath.Join(t.TempDir(), "absent.udt")); err == nil {
		t.Fatal("missing file loaded")
	}
}

// TestCloseIdempotent: Close must be safe to call twice — and from many
// goroutines at once — on both mapped and slab containers, and on nil. A
// registry evicting a model can race its hot-reload drain's retire; only one
// of them may run the munmap. Run under -race.
func TestCloseIdempotent(t *testing.T) {
	ds := testDataset(17, 120)
	tree, err := core.Build(ds, core.Config{MinWeight: 1})
	if err != nil {
		t.Fatal(err)
	}
	compiled, err := tree.Compile()
	if err != nil {
		t.Fatal(err)
	}
	path := encodeToFile(t, func(b *bytes.Buffer) error { return EncodeTree(b, compiled, tree.Stats) })

	mapped, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	img, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	slab, err := DecodeBytes(img)
	if err != nil {
		t.Fatal(err)
	}
	for name, c := range map[string]*Container{"mapped": mapped, "slab": slab} {
		t.Run(name, func(t *testing.T) {
			wasMapped := c.Mapped()
			var wg sync.WaitGroup
			for i := 0; i < 8; i++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					if err := c.Close(); err != nil {
						t.Errorf("concurrent Close: %v", err)
					}
				}()
			}
			wg.Wait()
			if err := c.Close(); err != nil {
				t.Fatalf("repeat Close: %v", err)
			}
			if c.Mapped() != wasMapped {
				t.Fatalf("Mapped changed across Close: was %v, now %v", wasMapped, c.Mapped())
			}
		})
	}
	var nilC *Container
	if err := nilC.Close(); err != nil {
		t.Fatalf("nil Close: %v", err)
	}
}
