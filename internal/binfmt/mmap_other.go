//go:build !unix

package binfmt

import "os"

// mmapFile on platforms without the unix mmap surface: always fall back to
// the portable slab path.
func mmapFile(f *os.File, size int64) (data []byte, unmap func() error, ok bool) {
	return nil, nil, false
}
