package binfmt

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"math"

	"udt/internal/core"
	"udt/internal/data"
	"udt/internal/forest"
)

// The encoder builds the global node arena in memory — hash-consing
// structurally identical subtrees across ensemble members — then lays the
// sections out and streams them to the writer. Everything is deterministic:
// nodes are interned in first-encounter order of a fixed member/child walk,
// the schema JSON marshals deterministically, and padding is zeroed, so the
// same model always produces byte-identical container files.

// schemaJSON is the eagerly-parsed schema section, reusing the interchange
// formats' attribute representation.
type schemaJSON struct {
	Classes  []string     `json:"classes"`
	NumAttrs []schemaAttr `json:"numAttrs"`
	CatAttrs []schemaAttr `json:"catAttrs,omitempty"`
}

type schemaAttr struct {
	Name   string   `json:"name"`
	Domain []string `json:"domain,omitempty"`
}

// EncodeForest writes the ensemble as a binary container.
func EncodeForest(w io.Writer, f *forest.Forest) error {
	var mk uint32
	switch f.Kind() {
	case forest.KindBagged:
		mk = kindBagged
	case forest.KindBoosted:
		mk = kindBoosted
	default:
		return fmt.Errorf("binfmt: unknown ensemble kind %q", f.Kind())
	}
	var oob *forest.OOBStats
	if f.OOB.Evaluated > 0 {
		o := f.OOB
		oob = &o
	}
	return encodeModel(w, mk, f.Classes, f.NumAttrs, f.CatAttrs, f.MemberSnapshots(), oob)
}

// EncodeTree writes a single-tree model as a binary container: one member
// with unit weight and no projection.
func EncodeTree(w io.Writer, c *core.Compiled, stats core.BuildStats) error {
	members := []forest.CompiledMember{{Compiled: c, Weight: 1, Stats: stats}}
	return encodeModel(w, kindTree, c.Classes, c.NumAttrs, c.CatAttrs, members, nil)
}

// arena accumulates the global hash-consed node arrays during encoding.
type arena struct {
	nc     int
	kind   []uint8
	attr   []int32
	split  []float64
	start  []int32 // start[i] filled as node i is emitted; finalised in finish
	child  []int32
	w      []float64
	dist   []float64
	intern map[string]int32
	keyBuf []byte
}

// emit interns the subtree of src rooted at local node ln, emitting any part
// of it not already in the arena (children first), and returns its global
// id. memo caches this member's local-to-global mapping; projSig
// distinguishes internal nodes of members whose attribute indices mean
// different forest attributes.
func (a *arena) emit(src *core.CompiledArrays, ln int32, projSig int32, memo map[int32]int32) int32 {
	if g, ok := memo[ln]; ok {
		return g
	}
	nc := a.nc
	lo, hi := src.Start[ln], src.Start[ln+1]
	kids := make([]int32, 0, hi-lo)
	for j := lo; j < hi; j++ {
		kids = append(kids, a.emit(src, src.Child[j], projSig, memo))
	}
	// Canonical structural key: everything that determines the subtree's
	// behaviour. Leaves reference no attributes, so they omit the projection
	// signature and dedup across differently-projected members; internal
	// nodes include it because their attr field is member-local.
	k := src.Kind[ln]
	buf := a.keyBuf[:0]
	buf = append(buf, k)
	if k != core.KindLeaf {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(projSig))
		buf = binary.LittleEndian.AppendUint32(buf, uint32(src.Attr[ln]))
	}
	if k == core.KindNum {
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(src.Split[ln]))
	}
	buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(src.W[ln]))
	for _, d := range src.Dist[int(ln)*nc : int(ln+1)*nc] {
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(d))
	}
	for _, g := range kids {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(g))
	}
	a.keyBuf = buf
	key := string(buf)
	if g, ok := a.intern[key]; ok {
		memo[ln] = g
		return g
	}
	g := int32(len(a.kind))
	a.kind = append(a.kind, k)
	if k == core.KindLeaf {
		a.attr = append(a.attr, 0)
		a.split = append(a.split, 0)
	} else {
		a.attr = append(a.attr, src.Attr[ln])
		if k == core.KindNum {
			a.split = append(a.split, src.Split[ln])
		} else {
			a.split = append(a.split, 0)
		}
	}
	a.w = append(a.w, src.W[ln])
	a.dist = append(a.dist, src.Dist[int(ln)*nc:int(ln+1)*nc]...)
	a.start = append(a.start, int32(len(a.child)))
	a.child = append(a.child, kids...)
	a.intern[key] = g
	memo[ln] = g
	return g
}

// reachable counts the distinct arena nodes reachable from root — the
// member's NumNodes in the shared arena. epoch/stamp implement a reusable
// visited set across members.
func (a *arena) reachable(root int32, seen []int32, stamp int32) int {
	count := 0
	stack := []int32{root}
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if seen[n] == stamp {
			continue
		}
		seen[n] = stamp
		count++
		for j := a.start[n]; j < a.start[n+1]; j++ {
			stack = append(stack, a.child[j])
		}
	}
	return count
}

// projSignature returns a canonical byte string for a member's projection
// maps ("" for identity members), interned to a small id for node keys.
func projSignature(numIdx, catIdx []int) string {
	if numIdx == nil && catIdx == nil {
		return ""
	}
	var b []byte
	b = append(b, 'n')
	for _, j := range numIdx {
		b = binary.LittleEndian.AppendUint32(b, uint32(j))
	}
	b = append(b, 'c')
	for _, j := range catIdx {
		b = binary.LittleEndian.AppendUint32(b, uint32(j))
	}
	return string(b)
}

// encodeModel builds the arena and all per-member sections, lays out the
// container, and writes it.
func encodeModel(w io.Writer, modelKind uint32, classes []string, numAttrs, catAttrs []data.Attribute, members []forest.CompiledMember, oob *forest.OOBStats) error {
	nc := len(classes)
	if nc == 0 {
		return fmt.Errorf("binfmt: model has no classes")
	}
	if len(members) == 0 {
		return fmt.Errorf("binfmt: model has no members")
	}
	a := &arena{nc: nc, intern: make(map[string]int32)}
	sigIDs := make(map[string]int32)
	roots := make([]int32, len(members))
	weights := make([]float64, len(members))
	ub := make([]float64, 0, len(members)*nc)
	stats := make([]uint64, 0, len(members)*statsWords)
	var idxPayload []byte
	anyIdx := false

	for mi, m := range members {
		if m.Compiled == nil {
			return fmt.Errorf("binfmt: member %d has no compiled engine", mi)
		}
		src := m.Compiled.Arrays()
		if len(src.Classes) != nc {
			return fmt.Errorf("binfmt: member %d has %d classes, model has %d", mi, len(src.Classes), nc)
		}
		sig := projSignature(m.NumIdx, m.CatIdx)
		sigID, ok := sigIDs[sig]
		if !ok {
			sigID = int32(len(sigIDs))
			sigIDs[sig] = sigID
		}
		memo := make(map[int32]int32, src.Nodes)
		roots[mi] = a.emit(&src, src.Root, sigID, memo)
		weights[mi] = m.Weight
		ub = append(ub, m.Compiled.ClassUpperBounds()...)

		var flags uint64
		if m.NumIdx != nil || m.CatIdx != nil {
			flags |= flagHasIdx
			anyIdx = true
			idxPayload = binary.LittleEndian.AppendUint32(idxPayload, uint32(len(m.NumIdx)))
			idxPayload = binary.LittleEndian.AppendUint32(idxPayload, uint32(len(m.CatIdx)))
			for _, j := range m.NumIdx {
				idxPayload = binary.LittleEndian.AppendUint32(idxPayload, uint32(j))
			}
			for _, j := range m.CatIdx {
				idxPayload = binary.LittleEndian.AppendUint32(idxPayload, uint32(j))
			}
		}
		stats = append(stats,
			uint64(m.Stats.Nodes), uint64(m.Stats.Leaves), uint64(m.Stats.Depth), flags,
			0) // reach, filled below once the arena is final
	}
	a.start = append(a.start, int32(len(a.child)))

	seen := make([]int32, len(a.kind))
	for i := range seen {
		seen[i] = -1
	}
	for mi, root := range roots {
		stats[mi*statsWords+4] = uint64(a.reachable(root, seen, int32(mi)))
	}

	schema := schemaJSON{Classes: classes}
	for _, at := range numAttrs {
		schema.NumAttrs = append(schema.NumAttrs, schemaAttr{Name: at.Name})
	}
	for _, at := range catAttrs {
		schema.CatAttrs = append(schema.CatAttrs, schemaAttr{Name: at.Name, Domain: at.Domain})
	}
	schemaBytes, err := json.Marshal(schema)
	if err != nil {
		return fmt.Errorf("binfmt: marshal schema: %w", err)
	}

	sections := []struct {
		id      uint32
		payload []byte
	}{
		{schemaSection, schemaBytes},
		{kindSection, a.kind},
		{attrSection, bytesInt32(a.attr)},
		{splitSection, bytesFloat64(a.split)},
		{startSection, bytesInt32(a.start)},
		{childSection, bytesInt32(a.child)},
		{wSection, bytesFloat64(a.w)},
		{distSection, bytesFloat64(a.dist)},
		{rootsSection, bytesInt32(roots)},
		{weightsSection, bytesFloat64(weights)},
		{ubSection, bytesFloat64(ub)},
		{statsSection, bytesUint64(stats)},
	}
	if anyIdx {
		sections = append(sections, struct {
			id      uint32
			payload []byte
		}{idxSection, idxPayload})
	}
	if oob != nil {
		var ob []byte
		ob = binary.LittleEndian.AppendUint64(ob, math.Float64bits(oob.Accuracy))
		ob = binary.LittleEndian.AppendUint64(ob, math.Float64bits(oob.Brier))
		ob = binary.LittleEndian.AppendUint64(ob, uint64(oob.Evaluated))
		sections = append(sections, struct {
			id      uint32
			payload []byte
		}{oobSection, ob})
	}

	// Layout: every payload starts at the next 64-byte boundary after the
	// section table (or the previous payload).
	offs := make([]off64, len(sections))
	cursor := align(tableEnd(len(sections)))
	for i, s := range sections {
		offs[i] = cursor
		cursor = align(advance(cursor, off64(len(s.payload))))
	}
	fileSize := advance(offs[len(offs)-1], off64(len(sections[len(sections)-1].payload)))

	hdr := make([]byte, headerSize)
	binary.LittleEndian.PutUint32(hdr[0:], headerVersion)
	binary.LittleEndian.PutUint32(hdr[4:], modelKind)
	binary.LittleEndian.PutUint32(hdr[8:], uint32(nc))
	binary.LittleEndian.PutUint32(hdr[12:], uint32(len(numAttrs)))
	binary.LittleEndian.PutUint32(hdr[16:], uint32(len(catAttrs)))
	binary.LittleEndian.PutUint32(hdr[20:], uint32(len(members)))
	binary.LittleEndian.PutUint64(hdr[24:], uint64(len(a.kind)))
	binary.LittleEndian.PutUint64(hdr[32:], uint64(len(a.child)))
	binary.LittleEndian.PutUint32(hdr[40:], uint32(len(sections)))
	binary.LittleEndian.PutUint64(hdr[48:], uint64(fileSize))

	out := newCountingWriter(w)
	out.write([]byte(Magic))
	out.write(hdr)
	entry := make([]byte, sectionEntrySize)
	for i, s := range sections {
		binary.LittleEndian.PutUint32(entry[0:], s.id)
		binary.LittleEndian.PutUint32(entry[4:], 0)
		binary.LittleEndian.PutUint64(entry[8:], uint64(offs[i]))
		binary.LittleEndian.PutUint64(entry[16:], uint64(len(s.payload)))
		out.write(entry)
	}
	for i, s := range sections {
		out.padTo(offs[i])
		out.write(s.payload)
	}
	if out.err != nil {
		return fmt.Errorf("binfmt: write container: %w", out.err)
	}
	if out.off != fileSize {
		return fmt.Errorf("binfmt: wrote %d bytes, layout computed %d", uint64(out.off), uint64(fileSize))
	}
	return nil
}

// statsWords is the number of uint64 words per member in the stats section:
// logical nodes, leaves, depth, flags, reachable arena nodes.
const statsWords = 5

// bytesInt32 serialises the slice to canonical little-endian bytes.
func bytesInt32(xs []int32) []byte {
	out := make([]byte, 0, len(xs)*4)
	for _, x := range xs {
		out = binary.LittleEndian.AppendUint32(out, uint32(x))
	}
	return out
}

// bytesFloat64 serialises the slice to canonical little-endian bytes.
func bytesFloat64(xs []float64) []byte {
	out := make([]byte, 0, len(xs)*8)
	for _, x := range xs {
		out = binary.LittleEndian.AppendUint64(out, math.Float64bits(x))
	}
	return out
}

// bytesUint64 serialises the slice to canonical little-endian bytes.
func bytesUint64(xs []uint64) []byte {
	out := make([]byte, 0, len(xs)*8)
	for _, x := range xs {
		out = binary.LittleEndian.AppendUint64(out, x)
	}
	return out
}

// countingWriter tracks the write offset so padding and layout agree.
type countingWriter struct {
	w   io.Writer
	off off64
	err error
}

func newCountingWriter(w io.Writer) *countingWriter { return &countingWriter{w: w} }

func (cw *countingWriter) write(b []byte) {
	if cw.err != nil {
		return
	}
	n, err := cw.w.Write(b)
	cw.off = advance(cw.off, off64(n))
	cw.err = err
}

// padTo writes zeros until the offset reaches target.
func (cw *countingWriter) padTo(target off64) {
	if cw.err != nil || cw.off >= target {
		return
	}
	cw.write(make([]byte, target-cw.off))
}
