// Package binfmt implements the versioned binary model container: a
// little-endian, 64-byte-aligned columnar file whose sections are the
// core.Compiled arrays themselves. Load maps the file into memory and points
// the compiled engines' slices directly into the mapping — no parsing, no
// copying, and pages shared across every process serving the same model —
// with a portable read-into-slab fallback for platforms without mmap (and
// for the fuzzer). JSON remains the interchange format; this is the serving
// format.
//
// # Layout
//
//	[0,8)    magic "UDTBIN01"
//	[8,72)   fixed 64-byte header (counts; see header)
//	[72,..)  section table: sectionCount × 24-byte entries {id,pad,offset,size}
//	...      section payloads, each starting at a 64-byte-aligned offset,
//	         in section-table order, zero-padded between sections
//
// All integers and floats are little-endian; sections hold the arrays
// verbatim (int32/float64/uint8/uint64 elements), so on little-endian hosts
// a section is usable in place. The node arrays form one global arena shared
// by every ensemble member: the encoder hash-conses structurally identical
// subtrees across members (bootstrap overlap makes duplicates common), and
// each member is just a root index into the arena plus its weight, emission
// upper bounds, and optional attribute projection.
//
// Nodes are emitted children-first (post-order, first encounter), which
// yields two load-bearing properties: a subtree occupies a contiguous id
// range (cache locality for the descent — a van-Emde-Boas-flavoured
// blocking), and every child id is strictly smaller than its parent's id,
// so one linear pass over the child array proves the graph acyclic and
// every descent terminating, no matter how the file was crafted.
package binfmt

import "fmt"

// Magic is the 8-byte file signature; the first bytes of every container.
// modelio sniffs it to route Load between the binary and JSON decoders.
const Magic = "UDTBIN01"

// headerVersion is the container layout version this package reads and
// writes.
const headerVersion = 1

// Model kinds stored in the header. The values are wire constants.
const (
	kindTree    uint32 = 0
	kindBagged  uint32 = 1
	kindBoosted uint32 = 2
)

// Kind names reported by Container.Kind, aligned with forest's kind
// vocabulary plus the single-tree case.
const (
	KindTree    = "tree"
	KindBagged  = "bagged"
	KindBoosted = "boosted"
)

// Section ids, in their required file order. Sections idxSection and
// oobSection are optional; all others must be present exactly once.
const (
	schemaSection  uint32 = 1  // JSON schema document (classes, attributes); tiny, parsed eagerly
	kindSection    uint32 = 2  // []uint8, nodeCount — node kinds (core.KindLeaf/Num/Cat)
	attrSection    uint32 = 3  // []int32, nodeCount — tested attribute (member-local index)
	splitSection   uint32 = 4  // []float64, nodeCount — numeric split points
	startSection   uint32 = 5  // []int32, nodeCount+1 — CSR row pointers into child
	childSection   uint32 = 6  // []int32, childCount — child node ids
	wSection       uint32 = 7  // []float64, nodeCount — training weight per node
	distSection    uint32 = 8  // []float64, nodeCount*classCount — class rows
	rootsSection   uint32 = 9  // []int32, memberCount — per-member root node id
	weightsSection uint32 = 10 // []float64, memberCount — per-member vote weight
	ubSection      uint32 = 11 // []float64, memberCount*classCount — emission upper bounds
	statsSection   uint32 = 12 // []uint64, memberCount*statsWords — nodes, leaves, depth, flags, reach
	idxSection     uint32 = 13 // packed projections for flagged members (optional)
	oobSection     uint32 = 14 // []float64+u64: accuracy, brier, evaluated (optional)
)

// Per-member flag bits in the stats section.
const flagHasIdx uint64 = 1 << 0 // member carries attribute projection maps

// Hard caps on header counts. They keep every derived size computation well
// inside uint64 and every id inside int32, so a crafted header cannot
// overflow arithmetic into an over- or under-sized mapping.
const (
	maxNodes   = 1 << 31 // ids are int32
	maxChilds  = 1 << 31
	maxClasses = 1 << 16
	maxMembers = 1 << 20
	maxAttrs   = 1 << 16
	maxFile    = 1 << 42 // 4 TiB; far above any real model, far below overflow
)

// off64 is a byte offset or size within a container file. Layout arithmetic
// on offsets is confined to the blessed helpers below (the udtlint
// alignfield analyzer enforces this), which keeps every section placement
// going through the single alignment rule.
type off64 uint64

// sectionAlign is the required alignment of every section payload. 64 bytes
// covers the widest element type (float64) with room to spare and matches
// the cache-line size the descent is blocked for.
const sectionAlign = 64

// headerSize is the fixed header length; the section table starts at
// len(Magic)+headerSize.
const headerSize = 64

// sectionEntrySize is the size of one section-table entry:
// u32 id, u32 pad, u64 offset, u64 size.
const sectionEntrySize = 24

// align rounds an offset up to the next section boundary.
//
//udt:alignsafe
func align(o off64) off64 { return (o + sectionAlign - 1) &^ (sectionAlign - 1) }

// aligned reports whether an offset sits on a section boundary.
//
//udt:alignsafe
func aligned(o off64) bool { return o&(sectionAlign-1) == 0 }

// advance moves an offset past a payload of the given size.
//
//udt:alignsafe
func advance(o off64, size off64) off64 { return o + size }

// tableEnd returns the offset one past the section table for n sections.
//
//udt:alignsafe
func tableEnd(n int) off64 {
	return off64(len(Magic)) + headerSize + off64(n)*sectionEntrySize
}

// header is the decoded fixed header.
type header struct {
	modelKind uint32
	classes   uint32
	numAttrs  uint32
	catAttrs  uint32
	members   uint32
	nodes     uint64
	childs    uint64
	sections  uint32
	fileSize  uint64
}

// section is one decoded section-table entry.
type section struct {
	id   uint32
	off  off64
	size off64
}

// errAt wraps a decode failure with its file position, so a truncated or
// corrupted container names the byte that betrayed it.
func errAt(off off64, format string, args ...any) error {
	return fmt.Errorf("binfmt: offset %d: %s", uint64(off), fmt.Sprintf(format, args...))
}
