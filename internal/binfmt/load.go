package binfmt

import (
	"fmt"
	"io"
	"os"
)

// Load opens and decodes a binary model container. On platforms with mmap
// the file is mapped read-only and the model's arrays point straight into
// the mapping — near-zero load cost, pages shared with every other process
// mapping the same file, and nothing to parse. Elsewhere (or if mapping
// fails) the file is read into an aligned slab instead; same model, plain
// memory. Call Close on the returned container when the model is retired;
// for mapped containers that unmaps the file.
//
// Deploy contract: a file that may be mapped must only ever be replaced by
// an atomic rename(2) of a fully written new file — never truncated or
// rewritten in place. The mapping is MAP_SHARED, so in-place truncation
// faults (SIGBUS) every reader of the old content; rename leaves the old
// inode intact until its last mapping is closed.
func Load(path string) (*Container, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("binfmt: %w", err)
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, fmt.Errorf("binfmt: %s: %w", path, err)
	}
	size := st.Size()
	if size > maxFile {
		return nil, fmt.Errorf("binfmt: %s: file size %d exceeds %d", path, size, int64(maxFile))
	}
	// decode errors already carry the "binfmt: offset N" prefix from errAt;
	// prepend only the path so the message reads "path: binfmt: offset N: ...".
	if data, unmap, ok := mmapFile(f, size); ok {
		c, err := decode(data, unmap)
		if err != nil {
			unmap() //nolint:errcheck — the decode error is the diagnosis
			return nil, fmt.Errorf("%s: %w", path, err)
		}
		return c, nil
	}
	c, err := loadSlab(f, size)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return c, nil
}

// loadSlab is the portable io.ReaderAt path: the whole file is read into an
// aligned allocation and decoded in place.
func loadSlab(f io.ReaderAt, size int64) (*Container, error) {
	if size < 0 || size > int64(int(^uint(0)>>1)) {
		return nil, fmt.Errorf("file size %d not addressable", size)
	}
	slab := alignedSlab(int(size))
	if _, err := io.ReadFull(io.NewSectionReader(f, 0, size), slab); err != nil {
		return nil, fmt.Errorf("read: %w", err)
	}
	return decode(slab, nil)
}
