//go:build unix

package binfmt

import (
	"os"
	"syscall"
)

// mmapFile maps the file read-only. A false ok falls the caller back to the
// portable slab path — empty files, oversized files, and mmap errors all
// land there (the slab path then reports the real problem, e.g. a too-short
// preamble, with its file offset).
func mmapFile(f *os.File, size int64) (data []byte, unmap func() error, ok bool) {
	if size <= 0 || size > int64(int(^uint(0)>>1)) {
		return nil, nil, false
	}
	b, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return nil, nil, false
	}
	return b, func() error { return syscall.Munmap(b) }, true
}
