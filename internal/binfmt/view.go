package binfmt

import (
	"encoding/binary"
	"math"
	"unsafe"
)

// Typed views over section payloads. On little-endian hosts — every platform
// this repo serves on — a view is a zero-copy reinterpretation of the mapped
// bytes: the returned slice aliases the file pages. On big-endian hosts the
// same functions decode element by element into fresh slices, trading the
// zero-copy property for correctness. All unsafe pointer work lives in this
// file, inside //udt:alignsafe functions, and every caller hands in payloads
// whose offsets came from the align helpers, so the casts are always
// element-aligned.

// hostLittle reports whether the host stores integers little-endian.
//
//udt:alignsafe
var hostLittle = func() bool {
	var probe uint16 = 1
	return *(*byte)(unsafe.Pointer(&probe)) == 1
}()

// viewUint8 returns the payload as a byte slice; identical on every host.
func viewUint8(b []byte) []uint8 { return b }

// viewInt32 reinterprets the payload as int32 elements.
//
//udt:alignsafe
func viewInt32(b []byte) []int32 {
	n := len(b) / 4
	if n == 0 {
		return nil
	}
	if hostLittle {
		return unsafe.Slice((*int32)(unsafe.Pointer(&b[0])), n)
	}
	out := make([]int32, n)
	for i := range out {
		out[i] = int32(binary.LittleEndian.Uint32(b[i*4:]))
	}
	return out
}

// viewUint64 reinterprets the payload as uint64 elements.
//
//udt:alignsafe
func viewUint64(b []byte) []uint64 {
	n := len(b) / 8
	if n == 0 {
		return nil
	}
	if hostLittle {
		return unsafe.Slice((*uint64)(unsafe.Pointer(&b[0])), n)
	}
	out := make([]uint64, n)
	for i := range out {
		out[i] = binary.LittleEndian.Uint64(b[i*8:])
	}
	return out
}

// viewFloat64 reinterprets the payload as float64 elements.
//
//udt:alignsafe
func viewFloat64(b []byte) []float64 {
	n := len(b) / 8
	if n == 0 {
		return nil
	}
	if hostLittle {
		return unsafe.Slice((*float64)(unsafe.Pointer(&b[0])), n)
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(b[i*8:]))
	}
	return out
}

// alignedSlab returns a byte slice of the given length whose base address is
// 8-byte aligned, backed by a []uint64 allocation. The portable load path
// and the in-memory decoder copy file bytes into one of these so the typed
// views hold regardless of where the input came from.
//
//udt:alignsafe
func alignedSlab(n int) []byte {
	if n == 0 {
		return nil
	}
	words := make([]uint64, (n+7)/8)
	return unsafe.Slice((*byte)(unsafe.Pointer(&words[0])), n)
}

// baseAligned reports whether the slice's backing address is 8-byte aligned
// (vacuously true for empty slices).
//
//udt:alignsafe
func baseAligned(b []byte) bool {
	if len(b) == 0 {
		return true
	}
	return uintptr(unsafe.Pointer(&b[0]))%8 == 0
}
