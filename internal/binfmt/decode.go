package binfmt

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"math"
	"sync"

	"udt/internal/core"
	"udt/internal/data"
	"udt/internal/forest"
)

// Container is a decoded binary model. Exactly one of Forest and Compiled is
// non-nil, matching Kind. When the container was mmap'd, the model's arrays
// alias the mapping: Close unmaps it, after which the model must not be
// used. Slab-backed containers have a no-op Close.
type Container struct {
	Forest    *forest.Forest  // ensemble kinds
	Compiled  *core.Compiled  // KindTree
	TreeStats core.BuildStats // KindTree build statistics from the stats section
	kind      string
	closer    func() error // immutable after decode; consumed exactly once by Close
	closeOnce sync.Once
}

// Kind reports the model kind: KindTree, KindBagged, or KindBoosted.
func (c *Container) Kind() string { return c.kind }

// Mapped reports whether the container was loaded over an mmap'd file (true)
// or allocated memory (false). The answer does not change on Close.
func (c *Container) Mapped() bool { return c.closer != nil }

// Close releases the file mapping, if any. The model must not be used
// afterwards. Close is idempotent and safe on a nil container, including
// under concurrent double-close: a registry evicting a model can race a
// retiring hot-reload drain, and a second munmap of the same (possibly
// re-used) address range would be undefined behavior, so exactly one caller
// runs the unmap and everyone else gets nil.
func (c *Container) Close() error {
	if c == nil {
		return nil
	}
	var err error
	c.closeOnce.Do(func() {
		if c.closer != nil {
			err = c.closer()
		}
	})
	return err
}

// Sniff reports whether the blob begins with the binary container magic.
// Eight bytes are enough to decide.
func Sniff(prefix []byte) bool {
	return len(prefix) >= len(Magic) && string(prefix[:len(Magic)]) == Magic
}

// DecodeBytes decodes an in-memory container image. The image is copied into
// an aligned slab, so the input may be reused or mutated afterwards and the
// returned container never needs Close (calling it is a no-op). This is the
// fuzzer's entry point and the portable fallback's core.
func DecodeBytes(img []byte) (*Container, error) {
	slab := alignedSlab(len(img))
	copy(slab, img)
	return decode(slab, nil)
}

// decode validates the image end to end and assembles the model over views
// into it. closer, when non-nil, owns the backing mapping and is handed to
// the container.
//
// Validation order matters: every array access below a check is protected by
// it. After the structural pass proves child[j] < parent for every edge, all
// descents and walks over the arena terminate — including on hostile input.
func decode(img []byte, closer func() error) (*Container, error) {
	hdr, err := parseHeader(img)
	if err != nil {
		return nil, err
	}
	secs, err := parseTable(img, hdr)
	if err != nil {
		return nil, err
	}

	nodes := int(hdr.nodes)
	childs := int(hdr.childs)
	nc := int(hdr.classes)
	nm := int(hdr.members)

	required := []struct {
		id   uint32
		size off64
	}{
		{kindSection, off64(nodes)},
		{attrSection, 4 * off64(nodes)},
		{splitSection, 8 * off64(nodes)},
		{startSection, 4 * (off64(nodes) + 1)},
		{childSection, 4 * off64(childs)},
		{wSection, 8 * off64(nodes)},
		{distSection, 8 * off64(nodes) * off64(nc)},
		{rootsSection, 4 * off64(nm)},
		{weightsSection, 8 * off64(nm)},
		{ubSection, 8 * off64(nm) * off64(nc)},
		{statsSection, 8 * statsWords * off64(nm)},
	}
	schemaSec, ok := secs[schemaSection]
	if !ok {
		return nil, errAt(tableEnd(len(secs)), "missing schema section")
	}
	for _, req := range required {
		s, ok := secs[req.id]
		if !ok {
			return nil, errAt(tableEnd(len(secs)), "missing section %d", req.id)
		}
		if s.size != req.size {
			return nil, errAt(s.off, "section %d has %d bytes, header counts require %d", req.id, uint64(s.size), uint64(req.size))
		}
	}

	classes, numAttrs, catAttrs, err := parseSchema(img, schemaSec, hdr)
	if err != nil {
		return nil, err
	}

	payload := func(id uint32) []byte {
		s := secs[id]
		return img[s.off : s.off+s.size]
	}
	kind := viewUint8(payload(kindSection))
	attr := viewInt32(payload(attrSection))
	split := viewFloat64(payload(splitSection))
	start := viewInt32(payload(startSection))
	child := viewInt32(payload(childSection))
	w := viewFloat64(payload(wSection))
	dist := viewFloat64(payload(distSection))
	roots := viewInt32(payload(rootsSection))
	weights := viewFloat64(payload(weightsSection))
	ub := viewFloat64(payload(ubSection))
	stats := viewUint64(payload(statsSection))

	memIdx, err := parseIdx(img, secs, hdr, stats)
	if err != nil {
		return nil, err
	}
	oob, err := parseOOB(img, secs, hdr)
	if err != nil {
		return nil, err
	}

	if err := validateArena(secs, kind, start, child, nodes, childs); err != nil {
		return nil, err
	}

	// Attribute-bound validation. When every member sees the full schema one
	// pass over the arena settles all of it; a projected member's attr
	// fields are indices into its own reduced schema, so such members get a
	// per-member walk over their reachable nodes instead.
	anyProjected := false
	for mi := 0; mi < nm; mi++ {
		if memIdx[mi] != nil {
			anyProjected = true
			break
		}
	}
	if !anyProjected {
		if err := validateAttrs(secs, kind, attr, start, numAttrs, catAttrs, 0, nodes); err != nil {
			return nil, err
		}
	}

	ubOff := secs[ubSection].off
	for i, v := range ub {
		if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
			return nil, errAt(ubOff+off64(i)*8, "upper bound %v is not a finite non-negative number", v)
		}
	}
	rootsOff := secs[rootsSection].off
	for mi, r := range roots {
		if r < 0 || int(r) >= nodes {
			return nil, errAt(rootsOff+off64(mi)*4, "member %d root %d out of range [0,%d)", mi, r, nodes)
		}
	}

	members := make([]forest.CompiledMember, nm)
	for mi := 0; mi < nm; mi++ {
		st, err := parseStats(secs[statsSection], stats, mi, nodes)
		if err != nil {
			return nil, err
		}
		mClasses, mNum, mCat := classes, numAttrs, catAttrs
		if mi < len(memIdx) && memIdx[mi] != nil {
			mNum = projectAttrs(numAttrs, memIdx[mi].num)
			mCat = projectAttrs(catAttrs, memIdx[mi].cat)
			if err := validateMemberAttrs(secs, kind, attr, start, child, mNum, mCat, roots[mi], nodes, mi); err != nil {
				return nil, err
			}
		}
		compiled, err := core.NewCompiledFromArrays(core.CompiledArrays{
			Classes:  mClasses,
			NumAttrs: mNum,
			CatAttrs: mCat,
			Kind:     kind,
			Attr:     attr,
			Split:    split,
			Start:    start,
			Child:    child,
			W:        w,
			Dist:     dist,
			UB:       ub[mi*nc : (mi+1)*nc],
			Root:     roots[mi],
			Nodes:    st.reach,
		})
		if err != nil {
			return nil, errAt(secs[rootsSection].off+off64(mi)*4, "member %d: %v", mi, err)
		}
		members[mi] = forest.CompiledMember{
			Compiled: compiled,
			Weight:   weights[mi],
			Stats:    core.BuildStats{Nodes: st.nodes, Leaves: st.leaves, Depth: st.depth},
		}
		if memIdx[mi] != nil {
			members[mi].NumIdx = memIdx[mi].num
			members[mi].CatIdx = memIdx[mi].cat
		}
	}

	c := &Container{closer: closer}
	switch hdr.modelKind {
	case kindTree:
		if nm != 1 {
			return nil, errAt(off64(len(Magic)), "tree container has %d members, want 1", nm)
		}
		if weights[0] != 1 {
			return nil, errAt(secs[weightsSection].off, "tree member weight %v, want 1", weights[0])
		}
		if members[0].NumIdx != nil || members[0].CatIdx != nil {
			return nil, errAt(secs[statsSection].off, "tree member carries projection maps")
		}
		if oob != nil {
			return nil, errAt(secs[oobSection].off, "tree container carries OOB statistics")
		}
		c.kind = KindTree
		c.Compiled = members[0].Compiled
		c.TreeStats = members[0].Stats
	case kindBagged, kindBoosted:
		c.kind = KindBagged
		if hdr.modelKind == kindBoosted {
			c.kind = KindBoosted
		}
		var oobStats forest.OOBStats
		if oob != nil {
			oobStats = *oob
		}
		f, err := forest.FromCompiled(classes, numAttrs, catAttrs, members, c.kind, oobStats)
		if err != nil {
			return nil, errAt(off64(len(Magic)), "assemble ensemble: %v", err)
		}
		c.Forest = f
	}
	return c, nil
}

// parseHeader validates the magic and fixed header.
func parseHeader(img []byte) (header, error) {
	var h header
	if len(img) < len(Magic)+headerSize {
		return h, errAt(0, "file is %d bytes, smaller than the %d-byte preamble", len(img), len(Magic)+headerSize)
	}
	if !Sniff(img) {
		return h, errAt(0, "bad magic %q", img[:len(Magic)])
	}
	b := img[len(Magic):]
	if v := binary.LittleEndian.Uint32(b[0:]); v != headerVersion {
		return h, errAt(off64(len(Magic)), "container version %d, this build reads %d", v, headerVersion)
	}
	h.modelKind = binary.LittleEndian.Uint32(b[4:])
	h.classes = binary.LittleEndian.Uint32(b[8:])
	h.numAttrs = binary.LittleEndian.Uint32(b[12:])
	h.catAttrs = binary.LittleEndian.Uint32(b[16:])
	h.members = binary.LittleEndian.Uint32(b[20:])
	h.nodes = binary.LittleEndian.Uint64(b[24:])
	h.childs = binary.LittleEndian.Uint64(b[32:])
	h.sections = binary.LittleEndian.Uint32(b[40:])
	h.fileSize = binary.LittleEndian.Uint64(b[48:])

	at := func(field int) off64 { return off64(len(Magic) + field) }
	switch h.modelKind {
	case kindTree, kindBagged, kindBoosted:
	default:
		return h, errAt(at(4), "unknown model kind %d", h.modelKind)
	}
	if h.classes == 0 || h.classes > maxClasses {
		return h, errAt(at(8), "class count %d out of [1,%d]", h.classes, maxClasses)
	}
	if h.numAttrs > maxAttrs || h.catAttrs > maxAttrs {
		return h, errAt(at(12), "attribute counts %d/%d exceed %d", h.numAttrs, h.catAttrs, maxAttrs)
	}
	if h.members == 0 || h.members > maxMembers {
		return h, errAt(at(20), "member count %d out of [1,%d]", h.members, maxMembers)
	}
	if h.nodes == 0 || h.nodes > maxNodes {
		return h, errAt(at(24), "node count %d out of [1,%d]", h.nodes, uint64(maxNodes))
	}
	if h.childs > maxChilds {
		return h, errAt(at(32), "child count %d exceeds %d", h.childs, uint64(maxChilds))
	}
	if h.sections < 12 || h.sections > 16 {
		return h, errAt(at(40), "section count %d out of [12,16]", h.sections)
	}
	if h.fileSize != uint64(len(img)) {
		return h, errAt(at(48), "header says %d bytes, file has %d", h.fileSize, len(img))
	}
	if h.fileSize > maxFile {
		return h, errAt(at(48), "file size %d exceeds %d", h.fileSize, uint64(maxFile))
	}
	return h, nil
}

// parseTable validates the section table: known ids in strictly increasing
// order, each payload 64-byte aligned, in bounds, and non-overlapping.
func parseTable(img []byte, hdr header) (map[uint32]section, error) {
	n := int(hdr.sections)
	end := tableEnd(n)
	if off64(len(img)) < end {
		return nil, errAt(off64(len(img)), "file truncated inside the %d-entry section table", n)
	}
	secs := make(map[uint32]section, n)
	prevID := uint32(0)
	cursor := end
	for i := 0; i < n; i++ {
		entryOff := tableEnd(i)
		b := img[entryOff:]
		s := section{
			id:   binary.LittleEndian.Uint32(b[0:]),
			off:  off64(binary.LittleEndian.Uint64(b[8:])),
			size: off64(binary.LittleEndian.Uint64(b[16:])),
		}
		if s.id <= prevID || s.id > oobSection {
			return nil, errAt(entryOff, "section id %d out of order or unknown (previous %d)", s.id, prevID)
		}
		prevID = s.id
		if !aligned(s.off) {
			return nil, errAt(entryOff, "section %d offset %d is not %d-byte aligned", s.id, uint64(s.off), sectionAlign)
		}
		if s.off < cursor {
			return nil, errAt(entryOff, "section %d offset %d overlaps the previous section ending at %d", s.id, uint64(s.off), uint64(cursor))
		}
		if s.size > off64(len(img)) || s.off > off64(len(img))-s.size {
			return nil, errAt(entryOff, "section %d spans [%d,%d+%d), beyond the %d-byte file", s.id, uint64(s.off), uint64(s.off), uint64(s.size), len(img))
		}
		cursor = advance(s.off, s.size)
		secs[s.id] = s
	}
	return secs, nil
}

// parseSchema decodes the schema JSON and checks it against the header
// counts.
func parseSchema(img []byte, s section, hdr header) (classes []string, numAttrs, catAttrs []data.Attribute, err error) {
	var doc schemaJSON
	if err := json.Unmarshal(img[s.off:s.off+s.size], &doc); err != nil {
		return nil, nil, nil, errAt(s.off, "schema: %v", err)
	}
	if len(doc.Classes) != int(hdr.classes) {
		return nil, nil, nil, errAt(s.off, "schema has %d classes, header says %d", len(doc.Classes), hdr.classes)
	}
	if len(doc.NumAttrs) != int(hdr.numAttrs) || len(doc.CatAttrs) != int(hdr.catAttrs) {
		return nil, nil, nil, errAt(s.off, "schema has %d/%d attributes, header says %d/%d",
			len(doc.NumAttrs), len(doc.CatAttrs), hdr.numAttrs, hdr.catAttrs)
	}
	for _, a := range doc.NumAttrs {
		numAttrs = append(numAttrs, data.Attribute{Name: a.Name, Kind: data.Numeric})
	}
	for _, a := range doc.CatAttrs {
		catAttrs = append(catAttrs, data.Attribute{Name: a.Name, Kind: data.Categorical, Domain: a.Domain})
	}
	return doc.Classes, numAttrs, catAttrs, nil
}

// memberIdx is one member's decoded projection maps.
type memberIdx struct {
	num []int
	cat []int
}

// parseIdx decodes the optional projection section, cross-checking it
// against the per-member flags: every flagged member has exactly one entry,
// in member order, and unflagged members have none.
func parseIdx(img []byte, secs map[uint32]section, hdr header, stats []uint64) ([]*memberIdx, error) {
	nm := int(hdr.members)
	out := make([]*memberIdx, nm)
	s, present := secs[idxSection]
	flagged := 0
	for mi := 0; mi < nm; mi++ {
		if stats[mi*statsWords+3]&flagHasIdx != 0 {
			flagged++
		}
	}
	if !present {
		if flagged > 0 {
			return nil, errAt(secs[statsSection].off, "%d members are flagged as projected but the container has no projection section", flagged)
		}
		return out, nil
	}
	if flagged == 0 {
		return nil, errAt(s.off, "projection section present but no member is flagged as projected")
	}
	cur := s.off
	end := s.off + s.size
	readU32 := func(what string) (uint32, error) {
		if end-cur < 4 {
			return 0, errAt(cur, "projection section truncated reading %s", what)
		}
		v := binary.LittleEndian.Uint32(img[cur:])
		cur += 4
		return v, nil
	}
	for mi := 0; mi < nm; mi++ {
		if stats[mi*statsWords+3]&flagHasIdx == 0 {
			continue
		}
		nLen, err := readU32(fmt.Sprintf("member %d numIdx length", mi))
		if err != nil {
			return nil, err
		}
		cLen, err := readU32(fmt.Sprintf("member %d catIdx length", mi))
		if err != nil {
			return nil, err
		}
		if nLen > hdr.numAttrs || cLen > hdr.catAttrs {
			return nil, errAt(cur, "member %d projects %d/%d attributes, schema has %d/%d", mi, nLen, cLen, hdr.numAttrs, hdr.catAttrs)
		}
		idx := &memberIdx{num: make([]int, nLen), cat: make([]int, cLen)}
		for k := range idx.num {
			v, err := readU32(fmt.Sprintf("member %d numIdx[%d]", mi, k))
			if err != nil {
				return nil, err
			}
			idx.num[k] = int(v)
		}
		for k := range idx.cat {
			v, err := readU32(fmt.Sprintf("member %d catIdx[%d]", mi, k))
			if err != nil {
				return nil, err
			}
			idx.cat[k] = int(v)
		}
		out[mi] = idx
	}
	if cur != end {
		return nil, errAt(cur, "projection section has %d trailing bytes", uint64(end-cur))
	}
	return out, nil
}

// parseOOB decodes the optional out-of-bag statistics section.
func parseOOB(img []byte, secs map[uint32]section, hdr header) (*forest.OOBStats, error) {
	s, present := secs[oobSection]
	if !present {
		return nil, nil
	}
	if s.size != 24 {
		return nil, errAt(s.off, "OOB section has %d bytes, want 24", uint64(s.size))
	}
	o := &forest.OOBStats{
		Accuracy:  math.Float64frombits(binary.LittleEndian.Uint64(img[s.off:])),
		Brier:     math.Float64frombits(binary.LittleEndian.Uint64(img[s.off+8:])),
		Evaluated: int(binary.LittleEndian.Uint64(img[s.off+16:])),
	}
	if o.Evaluated <= 0 || math.IsNaN(o.Accuracy) || math.IsNaN(o.Brier) {
		return nil, errAt(s.off, "OOB statistics malformed (accuracy %v, brier %v, evaluated %d)", o.Accuracy, o.Brier, o.Evaluated)
	}
	return o, nil
}

// memberStats is one member's decoded stats-section record.
type memberStats struct {
	nodes, leaves, depth int
	reach                int
}

// parseStats validates member mi's stats record.
func parseStats(s section, stats []uint64, mi, arenaNodes int) (memberStats, error) {
	rec := stats[mi*statsWords : (mi+1)*statsWords]
	at := s.off + off64(mi*statsWords)*8
	for k := 0; k < 3; k++ {
		if rec[k] > maxNodes {
			return memberStats{}, errAt(at, "member %d stats word %d is %d, exceeds %d", mi, k, rec[k], uint64(maxNodes))
		}
	}
	if rec[3]&^flagHasIdx != 0 {
		return memberStats{}, errAt(at, "member %d has unknown flag bits %#x", mi, rec[3])
	}
	if rec[4] == 0 || rec[4] > uint64(arenaNodes) {
		return memberStats{}, errAt(at, "member %d reachable-node count %d out of [1,%d]", mi, rec[4], arenaNodes)
	}
	return memberStats{
		nodes:  int(rec[0]),
		leaves: int(rec[1]),
		depth:  int(rec[2]),
		reach:  int(rec[4]),
	}, nil
}

// validateArena proves the node arrays structurally sound: CSR row pointers
// monotone and bounded, kinds known with the right child arity, and — the
// termination guarantee — every child id strictly smaller than its parent's,
// so the arena is a DAG and every descent over it halts.
func validateArena(secs map[uint32]section, kind []uint8, start, child []int32, nodes, childs int) error {
	startOff := secs[startSection].off
	if start[0] != 0 {
		return errAt(startOff, "start[0] = %d, want 0", start[0])
	}
	if int(start[nodes]) != childs {
		return errAt(startOff+off64(nodes)*4, "start[%d] = %d, want child count %d", nodes, start[nodes], childs)
	}
	kindOff := secs[kindSection].off
	childOff := secs[childSection].off
	for i := 0; i < nodes; i++ {
		lo, hi := start[i], start[i+1]
		if lo > hi || int(hi) > childs {
			return errAt(startOff+off64(i)*4, "node %d child row [%d,%d) is not monotone within %d children", i, lo, hi, childs)
		}
		span := int(hi - lo)
		switch kind[i] {
		case core.KindLeaf:
			if span != 0 {
				return errAt(kindOff+off64(i), "leaf %d has %d children", i, span)
			}
		case core.KindNum:
			if span != 2 {
				return errAt(kindOff+off64(i), "numeric node %d has %d children, want 2", i, span)
			}
		case core.KindCat:
			if span < 1 {
				return errAt(kindOff+off64(i), "categorical node %d has no children", i)
			}
		default:
			return errAt(kindOff+off64(i), "node %d has unknown kind %d", i, kind[i])
		}
		for j := lo; j < hi; j++ {
			c := child[j]
			if c < 0 || c >= int32(i) {
				return errAt(childOff+off64(j)*4, "node %d child %d violates child < parent (the acyclicity invariant)", i, c)
			}
		}
	}
	return nil
}

// validateAttrs bounds every internal node's attribute index against the
// given schema — the whole arena for identity members ([0,nodes)), shared by
// the per-member reachable walk for projected ones.
func validateAttrs(secs map[uint32]section, kind []uint8, attr []int32, start []int32, numAttrs, catAttrs []data.Attribute, lo, hi int) error {
	attrOff := secs[attrSection].off
	for i := lo; i < hi; i++ {
		switch kind[i] {
		case core.KindNum:
			if a := attr[i]; a < 0 || int(a) >= len(numAttrs) {
				return errAt(attrOff+off64(i)*4, "numeric node %d tests attribute %d, schema has %d", i, a, len(numAttrs))
			}
		case core.KindCat:
			a := attr[i]
			if a < 0 || int(a) >= len(catAttrs) {
				return errAt(attrOff+off64(i)*4, "categorical node %d tests attribute %d, schema has %d", i, a, len(catAttrs))
			}
			if span, dom := int(start[i+1]-start[i]), len(catAttrs[a].Domain); span != dom {
				return errAt(attrOff+off64(i)*4, "categorical node %d has %d children, attribute domain has %d values", i, span, dom)
			}
		}
	}
	return nil
}

// validateMemberAttrs walks member mi's reachable nodes, checking attribute
// indices and domain arities against the member's projected schema.
func validateMemberAttrs(secs map[uint32]section, kind []uint8, attr, start, child []int32, numAttrs, catAttrs []data.Attribute, root int32, nodes, mi int) error {
	attrOff := secs[attrSection].off
	seen := make([]bool, nodes)
	stack := []int32{root}
	for len(stack) > 0 {
		i := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if seen[i] {
			continue
		}
		seen[i] = true
		switch kind[i] {
		case core.KindNum:
			if a := attr[i]; a < 0 || int(a) >= len(numAttrs) {
				return errAt(attrOff+off64(i)*4, "member %d: numeric node %d tests attribute %d, member schema has %d", mi, i, a, len(numAttrs))
			}
		case core.KindCat:
			a := attr[i]
			if a < 0 || int(a) >= len(catAttrs) {
				return errAt(attrOff+off64(i)*4, "member %d: categorical node %d tests attribute %d, member schema has %d", mi, i, a, len(catAttrs))
			}
			if span, dom := int(start[i+1]-start[i]), len(catAttrs[a].Domain); span != dom {
				return errAt(attrOff+off64(i)*4, "member %d: categorical node %d has %d children, attribute domain has %d values", mi, i, span, dom)
			}
		}
		for j := start[i]; j < start[i+1]; j++ {
			stack = append(stack, child[j])
		}
	}
	return nil
}

// projectAttrs builds a member's reduced attribute schema from its
// projection map. Out-of-range entries are tolerated here (yielding a
// placeholder) because forest.FromCompiled re-validates the maps and
// produces the canonical error.
func projectAttrs(attrs []data.Attribute, idx []int) []data.Attribute {
	out := make([]data.Attribute, len(idx))
	for k, j := range idx {
		if j >= 0 && j < len(attrs) {
			out[k] = attrs[j]
		}
	}
	return out
}
