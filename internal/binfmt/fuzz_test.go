package binfmt

import (
	"bytes"
	"testing"

	"udt/internal/boost"
	"udt/internal/core"
	"udt/internal/data"
	"udt/internal/forest"
	"udt/internal/pdf"
)

// FuzzDecodeBinary: arbitrary bytes through the container decoder must
// either produce a servable model or an error — never a panic, an index
// out of range, or a read past the image. When decoding succeeds the
// model must actually serve: the fuzzer classifies an all-missing probe
// tuple, which walks every reachable node of every member (missing
// values descend all children), so termination depends on exactly the
// child<parent acyclicity invariant the structural validation pass
// claims to have proven.
//
// Seeds cover the corpus the decoder was hardened against by hand in
// TestDecodeRejectsCorruption — valid tree/bagged/projected/boosted
// images plus truncated, bit-flipped, misaligned, and oversized-section
// mutants — and the checked-in corpus under testdata/fuzz adds the
// trivial prefixes (empty, bare magic, zeroed header). CI runs a short
// `-fuzz=FuzzDecodeBinary -fuzztime=10s` smoke to probe beyond them.
func FuzzDecodeBinary(f *testing.F) {
	ds := testDataset(17, 160)
	tree, err := core.Build(ds, core.Config{MinWeight: 1})
	if err != nil {
		f.Fatal(err)
	}
	compiled, err := tree.Compile()
	if err != nil {
		f.Fatal(err)
	}
	var treeImg bytes.Buffer
	if err := EncodeTree(&treeImg, compiled, tree.Stats); err != nil {
		f.Fatal(err)
	}

	forests := []*forest.Forest{}
	for _, cfg := range []forest.Config{
		{Trees: 3, Seed: 4, TreeConfig: core.Config{MinWeight: 1}},
		{Trees: 3, Seed: 4, AttrsPerTree: 2, TreeConfig: core.Config{MinWeight: 1}},
	} {
		fr, err := forest.Train(ds, cfg)
		if err != nil {
			f.Fatal(err)
		}
		forests = append(forests, fr)
	}
	boosted, err := boost.Train(ds, boost.Config{Rounds: 3, TreeConfig: core.Config{MinWeight: 1}})
	if err != nil {
		f.Fatal(err)
	}
	forests = append(forests, boosted)

	images := [][]byte{append([]byte(nil), treeImg.Bytes()...)}
	for _, fr := range forests {
		var buf bytes.Buffer
		if err := EncodeForest(&buf, fr); err != nil {
			f.Fatal(err)
		}
		images = append(images, append([]byte(nil), buf.Bytes()...))
	}

	for _, img := range images {
		f.Add(img)
		// Truncations: inside the magic, the header, the section table,
		// and mid-payload.
		for _, cut := range []int{1, len(Magic), len(Magic) + 8, 71, 72, 100, len(img) / 2, len(img) - 1} {
			if cut < len(img) {
				f.Add(append([]byte(nil), img[:cut]...))
			}
		}
	}
	// Bit flips across the preamble (magic + header + first table entries)
	// and deeper mutants on one representative image: a misaligned section
	// offset and an oversized section size.
	base := images[len(images)-1]
	for off := 0; off < 72+2*24 && off < len(base); off += 5 {
		mut := append([]byte(nil), base...)
		mut[off] ^= 0x40
		f.Add(mut)
	}
	if entry := 72 + 1*24; entry+17 < len(base) {
		mut := append([]byte(nil), base...)
		mut[entry+8] |= 0x01 // offset no longer 64-byte aligned
		f.Add(mut)
		mut = append([]byte(nil), base...)
		mut[entry+16] = 0xFF // section size far beyond the image
		mut[entry+17] = 0xFF
		f.Add(mut)
	}

	f.Fuzz(func(t *testing.T, img []byte) {
		c, err := DecodeBytes(img)
		if err != nil {
			if c != nil {
				t.Fatalf("decode returned both a container and error %v", err)
			}
			return
		}
		if c == nil {
			t.Fatal("decode returned nil container and nil error")
		}
		if c.Mapped() {
			t.Fatal("DecodeBytes produced a mapped container")
		}
		// The image decoded; the model must serve. An all-missing tuple
		// forces the widest possible descent through every member.
		var dist []float64
		var classes int
		switch {
		case c.Compiled != nil:
			classes = len(c.Compiled.Classes)
			dist = c.Compiled.Classify(missingTuple(len(c.Compiled.NumAttrs), len(c.Compiled.CatAttrs)))
		case c.Forest != nil:
			cls, num, cat := c.Forest.Schema()
			classes = len(cls)
			dist = c.Forest.Classify(missingTuple(len(num), len(cat)))
		default:
			t.Fatalf("decoded container kind %q has neither forest nor compiled model", c.Kind())
		}
		if len(dist) != classes {
			t.Fatalf("probe classification returned %d masses for %d classes", len(dist), classes)
		}
	})
}

// missingTuple builds a tuple with every attribute missing for the given
// schema widths: nil pdfs and empty categorical distributions.
func missingTuple(num, cat int) *data.Tuple {
	return &data.Tuple{
		Num: make([]*pdf.PDF, num),
		Cat: make([]data.CatDist, cat),
	}
}
