package loadgen

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"udt/internal/modelio"
)

// Fuzz targets for the two loadgen decoders. Run in two modes: `go test`
// replays the checked-in corpus under testdata/fuzz as ordinary regression
// cases, and `go test -run=^$ -fuzz=FuzzDecodeReport -fuzztime=10s
// ./internal/loadgen` explores new inputs. The invariant in both: malformed
// input yields a clean error, never a panic, and accepted input is
// internally consistent.

// FuzzDecodeReport: arbitrary bytes through the report decoder. Anything
// that decodes must re-encode to a document that decodes again (the CI trend
// tooling round-trips reports).
func FuzzDecodeReport(f *testing.F) {
	rep := &Report{
		SchemaVersion: SchemaVersion,
		Target:        "http://127.0.0.1:8080",
		Requests:      Counts{Sent: 5, OK: 4, Errors: 1},
		OfferedQPS:    100,
		AchievedQPS:   80,
		Latency: map[string]*Summary{
			"all": {Count: 4, MeanMicros: 120, P50Micros: 100, P95Micros: 200, P99Micros: 250, MaxMicros: 300},
		},
	}
	seed, err := json.Marshal(rep)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(seed)
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"schemaVersion": 1}`))
	f.Add([]byte(`{"schemaVersion": 1, "requests": {"sent": -3}}`))
	f.Add([]byte(`not json at all`))
	f.Fuzz(func(t *testing.T, b []byte) {
		r, err := DecodeReport(b)
		if err != nil {
			return
		}
		blob, err := json.Marshal(r)
		if err != nil {
			t.Fatalf("accepted report does not re-encode: %v", err)
		}
		if _, err := DecodeReport(blob); err != nil {
			t.Fatalf("accepted report does not round-trip: %v\n%s", err, blob)
		}
	})
}

// FuzzPayloadsFromCSV: arbitrary bytes through the CSV payload sampler.
// Every accepted pool must contain only documents the shared wire decoder
// accepts — the generator's guarantee that request failures during a run are
// server-side facts.
func FuzzPayloadsFromCSV(f *testing.F) {
	f.Add([]byte(sampleCSV))
	f.Add([]byte("x,class\n1,lo\n"))
	f.Add([]byte("x,class\n1@0.5;2@0.5,lo\n"))
	f.Add([]byte("x,class\nnope,lo\n"))
	f.Add([]byte(""))
	f.Add([]byte("class\nlo\n"))
	f.Add([]byte("x,y,class\n1,2\n"))
	f.Fuzz(func(t *testing.T, b []byte) {
		p, err := PayloadsFromCSV(bytes.NewReader(b), "fuzz.csv")
		if err != nil {
			if p != nil {
				t.Fatal("error with non-nil payloads")
			}
			return
		}
		if len(p.Docs) == 0 {
			t.Fatal("accepted an empty payload pool")
		}
		for i, doc := range p.Docs {
			var wt modelio.WireTuple
			if err := json.Unmarshal(doc, &wt); err != nil {
				t.Fatalf("doc %d is not a wire tuple: %v\n%s", i, err, doc)
			}
			for j, raw := range wt.Num {
				if _, err := modelio.DecodeNum(raw); err != nil {
					t.Fatalf("doc %d num %d rejected by wire decoder: %v", i, j, err)
				}
			}
			if bytes.ContainsAny(doc, "\n\r") {
				t.Fatalf("doc %d contains a newline (breaks NDJSON framing):\n%s", i, doc)
			}
		}
	})
}

// TestFuzzSeedsAreErrors pins the malformed seeds to their expected
// behaviour so corpus intent survives refactors.
func TestFuzzSeedsAreErrors(t *testing.T) {
	for _, csv := range []string{"", "class\nlo\n", "x,class\nnope,lo\n", "x,y,class\n1,2\n"} {
		if _, err := PayloadsFromCSV(strings.NewReader(csv), "seed"); err == nil {
			t.Errorf("seed %q: no error", csv)
		}
	}
	for _, blob := range []string{"{}", `{"schemaVersion": 1, "requests": {"sent": -3}}`, "not json at all"} {
		if _, err := DecodeReport([]byte(blob)); err == nil {
			t.Errorf("seed %q: no error", blob)
		}
	}
}
