package loadgen

import (
	"bufio"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"udt/internal/latency"
	"udt/internal/modelio"
)

const sampleCSV = `x,y,class
0.2,1@0.5;2@0.3;3@0.2,lo
9.2,12;13;14,hi
4.5,2@0.25;3@0.5;4@0.25,lo
`

func mustPayloads(t *testing.T) *Payloads {
	t.Helper()
	p, err := PayloadsFromCSV(strings.NewReader(sampleCSV), "sample.csv")
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// TestPayloadsFromCSV: every document must be a wire tuple the shared
// decoder accepts, with point pdfs as bare numbers and sampled pdfs as
// {"xs","masses"} objects.
func TestPayloadsFromCSV(t *testing.T) {
	p := mustPayloads(t)
	if len(p.Docs) != 3 {
		t.Fatalf("%d docs, want 3", len(p.Docs))
	}
	for i, doc := range p.Docs {
		var wt modelio.WireTuple
		if err := json.Unmarshal(doc, &wt); err != nil {
			t.Fatalf("doc %d: %v (%s)", i, err, doc)
		}
		if len(wt.Num) != 2 || len(wt.Cat) != 0 {
			t.Fatalf("doc %d: %d num / %d cat entries", i, len(wt.Num), len(wt.Cat))
		}
		for j, raw := range wt.Num {
			if _, err := modelio.DecodeNum(raw); err != nil {
				t.Fatalf("doc %d num %d: %v", i, j, err)
			}
		}
	}
	// Column x of row 0 is a point: it must encode as a bare number, not a
	// one-sample object.
	if !strings.HasPrefix(string(p.Docs[0]), `{"num":[0.2,{`) {
		t.Fatalf("doc 0 = %s", p.Docs[0])
	}
}

func TestPayloadsFromCSVErrors(t *testing.T) {
	for name, csv := range map[string]string{
		"empty":       "",
		"header only": "x,y,class\n",
		"one column":  "class\nlo\n",
		"bad cell":    "x,class\nnot-a-number,lo\n",
		"ragged row":  "x,y,class\n1,2,lo\n3,hi\n",
	} {
		if _, err := PayloadsFromCSV(strings.NewReader(csv), name); err == nil {
			t.Errorf("%s: no error", name)
		}
	}
}

// TestSamplerDeterminism: the same seed must yield the identical request
// sequence (class and body), the property the report's seed field promises.
func TestSamplerDeterminism(t *testing.T) {
	p := mustPayloads(t)
	mix := Mix{Single: 1, Batch: 1, Stream: 1}
	s1, err := newSampler(42, p)
	if err != nil {
		t.Fatal(err)
	}
	s2, _ := newSampler(42, p)
	s3, _ := newSampler(43, p)
	diverged := false
	for i := 0; i < 200; i++ {
		c1, b1, _, _ := s1.draw(mix, 4, 8)
		c2, b2, _, _ := s2.draw(mix, 4, 8)
		c3, b3, _, _ := s3.draw(mix, 4, 8)
		if c1 != c2 || string(b1) != string(b2) {
			t.Fatalf("draw %d: same seed diverged (%s vs %s)", i, c1, c2)
		}
		if c1 != c3 || string(b1) != string(b3) {
			diverged = true
		}
	}
	if !diverged {
		t.Fatal("different seeds never diverged over 200 draws")
	}
}

// stubServer fakes the udtserve surface loadgen consumes: /classify,
// /classify/stream, and /metrics with a latency histogram.
type stubServer struct {
	tuples  atomic.Int64
	classes atomic.Int64
	hist    latency.AtomicHist
	reject  atomic.Bool
}

func (s *stubServer) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /classify", func(w http.ResponseWriter, r *http.Request) {
		begin := time.Now()
		if s.reject.Load() {
			w.WriteHeader(http.StatusServiceUnavailable)
			return
		}
		var body struct {
			Tuples []json.RawMessage `json:"tuples"`
		}
		raw, _ := json.Marshal(map[string]string{"class": "lo"})
		if err := json.NewDecoder(r.Body).Decode(&body); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		n := int64(len(body.Tuples))
		if n == 0 {
			n = 1 // single-tuple document
		}
		s.tuples.Add(n)
		s.classes.Add(1)
		w.Header().Set("Content-Type", "application/json")
		w.Write(raw)
		s.hist.Observe(time.Since(begin))
	})
	mux.HandleFunc("POST /classify/stream", func(w http.ResponseWriter, r *http.Request) {
		if s.reject.Load() {
			w.WriteHeader(http.StatusServiceUnavailable)
			return
		}
		sc := bufio.NewScanner(r.Body)
		line := 0
		enc := json.NewEncoder(w)
		for sc.Scan() {
			line++
			s.tuples.Add(1)
			enc.Encode(map[string]any{"line": line, "class": "lo"})
		}
	})
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		json.NewEncoder(w).Encode(map[string]any{
			"tuplesClassified": s.tuples.Load(),
			"earlyExit":        map[string]any{"enabled": true, "predictions": s.tuples.Load(), "membersEvaluated": 3 * s.tuples.Load()},
			"endpoints": map[string]any{
				"classify": map[string]any{"requests": s.classes.Load(), "errors": 0, "latency": s.hist.Snapshot()},
			},
		})
	})
	return mux
}

// TestRun: a short run against the stub must account for every arrival,
// carry per-class latency summaries, and report consistent server deltas.
func TestRun(t *testing.T) {
	stub := &stubServer{}
	ts := httptest.NewServer(stub.handler())
	defer ts.Close()

	cfg := Config{
		BaseURL:     ts.URL,
		QPS:         400,
		Duration:    250 * time.Millisecond,
		Seed:        7,
		Mix:         Mix{Single: 0.6, Batch: 0.25, Stream: 0.15},
		BatchSize:   4,
		StreamLines: 6,
		Client:      ts.Client(),
	}
	rep, err := Run(context.Background(), cfg, mustPayloads(t))
	if err != nil {
		t.Fatal(err)
	}
	c := rep.Requests
	if c.Sent+c.Dropped == 0 || c.OK == 0 {
		t.Fatalf("requests = %+v", c)
	}
	if c.OK+c.Errors+c.Rejected != c.Sent {
		t.Fatalf("outcomes do not sum: %+v", c)
	}
	if c.Errors != 0 || c.Rejected != 0 {
		t.Fatalf("stub produced failures: %+v", c)
	}
	all := rep.Latency["all"]
	if all == nil || all.Count != c.OK {
		t.Fatalf("latency[all] = %+v, want count %d", all, c.OK)
	}
	if all.P50Micros > all.P95Micros || all.P95Micros > all.P99Micros || all.P99Micros > all.MaxMicros {
		t.Fatalf("percentiles not monotonic: %+v", all)
	}
	if rep.Server == nil {
		t.Fatal("no server delta")
	}
	if rep.Server.TuplesClassified <= 0 {
		t.Fatalf("server tuple delta = %d", rep.Server.TuplesClassified)
	}
	if rep.Server.EarlyExit == nil || rep.Server.EarlyExit.MembersEvaluated != 3*rep.Server.EarlyExit.Predictions {
		t.Fatalf("early-exit delta = %+v", rep.Server.EarlyExit)
	}
	if rep.Server.ClassifyLatency == nil {
		t.Fatal("no server classify histogram")
	}
	if err := rep.Server.ClassifyLatency.Validate(); err != nil {
		t.Fatal(err)
	}
	if rep.CrossCheck == nil {
		t.Fatal("no latency cross-check")
	}
	if rep.CrossCheck.ClientP95Micros <= 0 || rep.CrossCheck.BucketDistance < 0 {
		t.Fatalf("cross-check = %+v", rep.CrossCheck)
	}

	// The report must survive its own wire format.
	blob, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	back, err := DecodeReport(blob)
	if err != nil {
		t.Fatal(err)
	}
	if back.Requests != rep.Requests {
		t.Fatalf("round-trip requests %+v != %+v", back.Requests, rep.Requests)
	}
}

// TestRunRejections: 503 responses must land in Rejected, not Errors.
func TestRunRejections(t *testing.T) {
	stub := &stubServer{}
	stub.reject.Store(true)
	ts := httptest.NewServer(stub.handler())
	defer ts.Close()
	rep, err := Run(context.Background(), Config{
		BaseURL:  ts.URL,
		QPS:      200,
		Duration: 100 * time.Millisecond,
		Client:   ts.Client(),
	}, mustPayloads(t))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Requests.Rejected == 0 || rep.Requests.OK != 0 || rep.Requests.Errors != 0 {
		t.Fatalf("requests = %+v, want everything rejected", rep.Requests)
	}
}

// TestRunValidation: degenerate configurations must fail with clean errors
// before any traffic is sent.
func TestRunValidation(t *testing.T) {
	p := mustPayloads(t)
	ctx := context.Background()
	for name, cfg := range map[string]Config{
		"no url":        {QPS: 10, Duration: time.Second},
		"zero qps":      {BaseURL: "http://x", Duration: time.Second},
		"negative qps":  {BaseURL: "http://x", QPS: -5, Duration: time.Second},
		"zero duration": {BaseURL: "http://x", QPS: 10},
		"negative mix":  {BaseURL: "http://x", QPS: 10, Duration: time.Second, Mix: Mix{Single: -1, Batch: 2}},
		"negative batch": {BaseURL: "http://x", QPS: 10, Duration: time.Second,
			BatchSize: -3},
	} {
		if _, err := Run(ctx, cfg, p); err == nil {
			t.Errorf("%s: no error", name)
		}
	}
	if _, err := Run(ctx, Config{BaseURL: "http://x", QPS: 10, Duration: time.Second}, &Payloads{}); err == nil {
		t.Error("empty payload pool: no error")
	}
}

// TestDecodeReportRejects: structurally valid JSON with inconsistent content
// must not decode.
func TestDecodeReportRejects(t *testing.T) {
	valid := &Report{
		SchemaVersion: SchemaVersion,
		Requests:      Counts{Sent: 10, OK: 8, Errors: 1, Rejected: 1},
		Latency: map[string]*Summary{
			"all": {Count: 8, MeanMicros: 100, P50Micros: 90, P95Micros: 200, P99Micros: 300, MaxMicros: 400},
		},
	}
	blob, _ := json.Marshal(valid)
	if _, err := DecodeReport(blob); err != nil {
		t.Fatal(err)
	}
	mutate := func(f func(*Report)) []byte {
		var r Report
		json.Unmarshal(blob, &r)
		f(&r)
		out, _ := json.Marshal(&r)
		return out
	}
	for name, b := range map[string][]byte{
		"not json":      []byte("{"),
		"wrong version": mutate(func(r *Report) { r.SchemaVersion = SchemaVersion + 1 }),
		"negative sent": mutate(func(r *Report) { r.Requests.Sent = -1 }),
		"bad sum":       mutate(func(r *Report) { r.Requests.OK = 99 }),
		"percentiles":   mutate(func(r *Report) { r.Latency["all"].P95Micros = 1 }),
		"null summary":  mutate(func(r *Report) { r.Latency["x"] = nil }),
		"negative delta": mutate(func(r *Report) {
			r.Server = &ServerDelta{TuplesClassified: -1}
		}),
	} {
		if _, err := DecodeReport(b); err == nil {
			t.Errorf("%s: decoded", name)
		}
	}
}

// modelStub records per-model and legacy-route hits behind both the legacy
// and /v1/models/{model}/ surfaces.
type modelStub struct {
	legacy atomic.Int64
	hits   sync.Map // model name -> *atomic.Int64
}

func (s *modelStub) bump(model string) {
	v, _ := s.hits.LoadOrStore(model, new(atomic.Int64))
	v.(*atomic.Int64).Add(1)
}

func (s *modelStub) count(model string) int64 {
	v, ok := s.hits.Load(model)
	if !ok {
		return 0
	}
	return v.(*atomic.Int64).Load()
}

func (s *modelStub) handler() http.Handler {
	classify := func(w http.ResponseWriter, r *http.Request) {
		io.Copy(io.Discard, r.Body)
		w.Header().Set("Content-Type", "application/json")
		w.Write([]byte(`{"class":"lo"}`))
	}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /classify", func(w http.ResponseWriter, r *http.Request) {
		s.legacy.Add(1)
		classify(w, r)
	})
	mux.HandleFunc("POST /v1/models/{model}/classify", func(w http.ResponseWriter, r *http.Request) {
		s.bump(r.PathValue("model"))
		classify(w, r)
	})
	mux.HandleFunc("POST /v1/models/{model}/classify/stream", func(w http.ResponseWriter, r *http.Request) {
		s.bump(r.PathValue("model"))
		sc := bufio.NewScanner(r.Body)
		enc := json.NewEncoder(w)
		line := 0
		for sc.Scan() {
			line++
			enc.Encode(map[string]any{"line": line, "class": "lo"})
		}
	})
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte(`{"tuplesClassified":0,"endpoints":{}}`))
	})
	return mux
}

// TestRunModelMix: with a per-model mix every request goes to the named
// routes, weights steer the split, and the report carries per-model latency
// keys; without a mix the legacy route serves everything.
func TestRunModelMix(t *testing.T) {
	stub := &modelStub{}
	ts := httptest.NewServer(stub.handler())
	defer ts.Close()

	cfg := Config{
		BaseURL:     ts.URL,
		QPS:         400,
		Duration:    250 * time.Millisecond,
		Seed:        11,
		Mix:         Mix{Single: 0.8, Stream: 0.2},
		StreamLines: 4,
		Models:      map[string]float64{"alpha": 3, "beta": 1},
		Client:      ts.Client(),
	}
	rep, err := Run(context.Background(), cfg, mustPayloads(t))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Requests.OK == 0 || rep.Requests.Errors != 0 {
		t.Fatalf("requests = %+v", rep.Requests)
	}
	if got := stub.legacy.Load(); got != 0 {
		t.Fatalf("legacy route hit %d times under a model mix", got)
	}
	a, b := stub.count("alpha"), stub.count("beta")
	if a == 0 || b == 0 {
		t.Fatalf("model split alpha=%d beta=%d: both must receive traffic", a, b)
	}
	if a <= b {
		t.Fatalf("model split alpha=%d beta=%d: 3:1 weights inverted", a, b)
	}
	la, lb := rep.Latency["model:alpha"], rep.Latency["model:beta"]
	if la == nil || lb == nil || la.Count != a || lb.Count != b {
		t.Fatalf("per-model latency keys = alpha %+v (server %d), beta %+v (server %d)", la, a, lb, b)
	}
	if rep.Config.Models["alpha"] != 3 {
		t.Fatalf("report config models = %v", rep.Config.Models)
	}

	// Without a mix: all legacy, no model latency keys.
	stub2 := &modelStub{}
	ts2 := httptest.NewServer(stub2.handler())
	defer ts2.Close()
	cfg2 := cfg
	cfg2.BaseURL = ts2.URL
	cfg2.Models = nil
	cfg2.Client = ts2.Client()
	rep2, err := Run(context.Background(), cfg2, mustPayloads(t))
	if err != nil {
		t.Fatal(err)
	}
	if stub2.legacy.Load() == 0 {
		t.Fatal("legacy route never hit without a model mix")
	}
	for key := range rep2.Latency {
		if strings.HasPrefix(key, "model:") {
			t.Fatalf("unexpected latency key %q without a model mix", key)
		}
	}
}

// TestRunMultiTarget: arrivals fan out round-robin across all targets.
func TestRunMultiTarget(t *testing.T) {
	s1, s2 := &modelStub{}, &modelStub{}
	t1 := httptest.NewServer(s1.handler())
	defer t1.Close()
	t2 := httptest.NewServer(s2.handler())
	defer t2.Close()

	rep, err := Run(context.Background(), Config{
		BaseURL:  t1.URL,
		Targets:  []string{t1.URL, t2.URL},
		QPS:      400,
		Duration: 250 * time.Millisecond,
		Seed:     3,
	}, mustPayloads(t))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Requests.OK == 0 || rep.Requests.Errors != 0 {
		t.Fatalf("requests = %+v", rep.Requests)
	}
	h1, h2 := s1.legacy.Load(), s2.legacy.Load()
	if h1 == 0 || h2 == 0 {
		t.Fatalf("fan-out split = %d / %d: both targets must receive traffic", h1, h2)
	}
	if diff := h1 - h2; diff < -1 || diff > 1 {
		t.Fatalf("round-robin split %d / %d not balanced", h1, h2)
	}
	if len(rep.Targets) != 2 {
		t.Fatalf("report targets = %v", rep.Targets)
	}

	// Validation: empty target URL and bad model weights are refused.
	if _, err := Run(context.Background(), Config{BaseURL: t1.URL, Targets: []string{""}, QPS: 10, Duration: time.Second}, mustPayloads(t)); err == nil {
		t.Error("empty target accepted")
	}
	if _, err := Run(context.Background(), Config{BaseURL: t1.URL, QPS: 10, Duration: time.Second, Models: map[string]float64{"a": -1}}, mustPayloads(t)); err == nil {
		t.Error("negative model weight accepted")
	}
	if _, err := Run(context.Background(), Config{BaseURL: t1.URL, QPS: 10, Duration: time.Second, Models: map[string]float64{"a": 0}}, mustPayloads(t)); err == nil {
		t.Error("all-zero model mix accepted")
	}
}
