package loadgen

import (
	"encoding/json"
	"fmt"

	"udt/internal/latency"
)

// SchemaVersion identifies the report layout. Checked-in BENCH_*.json files
// from different PRs are only comparable when their versions match, so bump
// this whenever a field changes meaning.
const SchemaVersion = 1

// Mix is the request-class mix as relative weights (they need not sum to 1;
// Run normalizes). A zero weight disables the class.
type Mix struct {
	Single float64 `json:"single"`
	Batch  float64 `json:"batch"`
	Stream float64 `json:"stream"`
}

func (m Mix) total() float64 { return m.Single + m.Batch + m.Stream }

// RunConfig echoes the generator settings into the report so a checked-in
// trajectory is self-describing.
type RunConfig struct {
	QPS             float64            `json:"qps"`
	DurationSeconds float64            `json:"durationSeconds"`
	Seed            int64              `json:"seed"`
	Mix             Mix                `json:"mix"`
	Models          map[string]float64 `json:"models,omitempty"` // per-model weights; empty = legacy routes
	BatchSize       int                `json:"batchSize"`
	StreamLines     int                `json:"streamLines"`
}

// Counts aggregates request outcomes. Sent = OK + Errors + Rejected; Dropped
// requests were never sent (the in-flight cap was hit at their arrival time).
type Counts struct {
	Sent     int64 `json:"sent"`
	OK       int64 `json:"ok"`
	Errors   int64 `json:"errors"`   // transport failures and non-2xx other than 503
	Rejected int64 `json:"rejected"` // 503 admission rejections
	Dropped  int64 `json:"dropped"`
}

// Summary is a client-side latency digest for one request class (or "all").
// Percentiles are nearest-rank over the exact per-request durations, not
// bucket approximations.
type Summary struct {
	Count      int64 `json:"count"`
	MeanMicros int64 `json:"meanMicros"`
	P50Micros  int64 `json:"p50Micros"`
	P95Micros  int64 `json:"p95Micros"`
	P99Micros  int64 `json:"p99Micros"`
	MaxMicros  int64 `json:"maxMicros"`
}

// EarlyExitDelta is the growth of the server's early-exit counters over the
// run window.
type EarlyExitDelta struct {
	Predictions      int64 `json:"predictions"`
	MembersEvaluated int64 `json:"membersEvaluated"`
}

// ServerDelta is the server's own view of the run: /metrics sampled before
// and after, subtracted.
type ServerDelta struct {
	TuplesClassified int64             `json:"tuplesClassified"`
	EarlyExit        *EarlyExitDelta   `json:"earlyExit,omitempty"`
	ClassifyLatency  *latency.Snapshot `json:"classifyLatency,omitempty"`
}

// RuntimeDelta is the growth of the server's runtime metrics over the run
// window, from the /metrics "runtime" section. Heap and goroutine deltas may
// be negative (GC and handler teardown shrink both); GC cycle and pause
// totals are monotonic counters, so their deltas must not be.
type RuntimeDelta struct {
	HeapAllocBytesDelta int64 `json:"heapAllocBytesDelta"`
	HeapObjectsDelta    int64 `json:"heapObjectsDelta"`
	GoroutinesDelta     int64 `json:"goroutinesDelta"`
	GCCycles            int64 `json:"gcCycles"`
	GCPauseTotalMicros  int64 `json:"gcPauseTotalMicros"`
}

// CrossCheck compares the client-side p95 for /classify requests against the
// server's classify-endpoint histogram delta. The two are bucketed with the
// same internal/latency geometry; BucketDistance is how many power-of-two
// buckets apart the two p95s landed (client-side overhead — connection
// handling, JSON decode on the client — should keep them within a bucket of
// each other on a loopback run).
type CrossCheck struct {
	ClientP95Micros   int64 `json:"clientP95Micros"`
	ServerP95LoMicros int64 `json:"serverP95LoMicros"`
	ServerP95HiMicros int64 `json:"serverP95HiMicros"` // -1 = overflow bucket
	BucketDistance    int   `json:"bucketDistance"`
	WithinOneBucket   bool  `json:"withinOneBucket"`
}

// Report is the machine-readable result of one load run. Latency keys are
// the request classes ("single", "batch", "stream"), "all", and — when the
// run used a per-model mix — "model:{name}" per model.
type Report struct {
	SchemaVersion int                 `json:"schemaVersion"`
	Target        string              `json:"target"`
	Targets       []string            `json:"targets,omitempty"` // multi-target fan-out set, when used
	Config        RunConfig           `json:"config"`
	Requests      Counts              `json:"requests"`
	OfferedQPS    float64             `json:"offeredQPS"`
	AchievedQPS   float64             `json:"achievedQPS"`
	Latency       map[string]*Summary `json:"latency"`
	Server        *ServerDelta        `json:"server,omitempty"`
	ServerRuntime *RuntimeDelta       `json:"serverRuntime,omitempty"`
	CrossCheck    *CrossCheck         `json:"crossCheck,omitempty"`
}

// DecodeReport parses and validates a report produced by Run. It rejects
// unknown schema versions, negative counts, inconsistent outcome totals, and
// non-monotonic percentiles, so CI trend tooling can trust any report that
// decodes. Never panics on malformed input (fuzzed).
func DecodeReport(b []byte) (*Report, error) {
	var r Report
	if err := json.Unmarshal(b, &r); err != nil {
		return nil, fmt.Errorf("loadgen: decode report: %w", err)
	}
	if r.SchemaVersion != SchemaVersion {
		return nil, fmt.Errorf("loadgen: report schema version %d, want %d", r.SchemaVersion, SchemaVersion)
	}
	c := r.Requests
	if c.Sent < 0 || c.OK < 0 || c.Errors < 0 || c.Rejected < 0 || c.Dropped < 0 {
		return nil, fmt.Errorf("loadgen: negative request counts %+v", c)
	}
	if c.OK+c.Errors+c.Rejected != c.Sent {
		return nil, fmt.Errorf("loadgen: outcomes %d+%d+%d do not sum to sent %d", c.OK, c.Errors, c.Rejected, c.Sent)
	}
	if r.OfferedQPS < 0 || r.AchievedQPS < 0 {
		return nil, fmt.Errorf("loadgen: negative QPS (offered %g, achieved %g)", r.OfferedQPS, r.AchievedQPS)
	}
	for class, s := range r.Latency {
		if s == nil {
			return nil, fmt.Errorf("loadgen: latency class %q is null", class)
		}
		if err := s.validate(); err != nil {
			return nil, fmt.Errorf("loadgen: latency class %q: %w", class, err)
		}
	}
	if srv := r.Server; srv != nil {
		if srv.TuplesClassified < 0 {
			return nil, fmt.Errorf("loadgen: negative server tuple delta %d", srv.TuplesClassified)
		}
		if ee := srv.EarlyExit; ee != nil && (ee.Predictions < 0 || ee.MembersEvaluated < 0) {
			return nil, fmt.Errorf("loadgen: negative early-exit delta %+v", *ee)
		}
		if srv.ClassifyLatency != nil {
			if err := srv.ClassifyLatency.Validate(); err != nil {
				return nil, fmt.Errorf("loadgen: server classify histogram: %w", err)
			}
		}
	}
	if rt := r.ServerRuntime; rt != nil {
		// Heap and goroutine deltas are legitimately negative; the GC
		// counters are monotonic, so a negative delta means a bad report.
		if rt.GCCycles < 0 || rt.GCPauseTotalMicros < 0 {
			return nil, fmt.Errorf("loadgen: server runtime GC counters went backwards %+v", *rt)
		}
	}
	return &r, nil
}

func (s *Summary) validate() error {
	if s.Count < 0 {
		return fmt.Errorf("negative count %d", s.Count)
	}
	if s.Count == 0 {
		return nil
	}
	if s.MeanMicros < 0 {
		return fmt.Errorf("negative mean %dµs", s.MeanMicros)
	}
	if s.P50Micros < 0 || s.P50Micros > s.P95Micros || s.P95Micros > s.P99Micros || s.P99Micros > s.MaxMicros {
		return fmt.Errorf("percentiles not monotonic: p50=%d p95=%d p99=%d max=%d",
			s.P50Micros, s.P95Micros, s.P99Micros, s.MaxMicros)
	}
	return nil
}
