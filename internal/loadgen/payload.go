// Package loadgen implements the open-loop HTTP traffic generator behind
// cmd/udtload: deterministic seeded payload sampling from a CSV, a fixed
// arrival schedule at a target QPS (arrivals never wait for completions, so
// an overloaded server shows up as latency and drops rather than silently
// throttled offered load), mixed single/batch/NDJSON-stream request classes,
// client-side latency percentiles, and a cross-check of those percentiles
// against the server's own /metrics latency histograms. Results serialise to
// a versioned JSON report (BENCH_*.json) so the perf trajectory is tracked
// in-repo PR over PR.
package loadgen

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"strconv"

	"udt/internal/data"
	"udt/internal/modelio"
)

// Payloads is a pool of pre-encoded classification request documents sampled
// from a CSV: Docs[i] is the wire-format JSON for one tuple ({"num": [...]}),
// the building block of all three request classes (single bodies, batch
// bodies, NDJSON stream lines).
type Payloads struct {
	Name string
	Docs [][]byte
}

// PayloadsFromCSV parses the CSV (the "udtree train" interchange format) and
// encodes every tuple as a wire document. The class column is ignored — load
// payloads exercise classification, not evaluation.
func PayloadsFromCSV(r io.Reader, name string) (*Payloads, error) {
	src, err := data.NewCSVSource(r, name)
	if err != nil {
		return nil, fmt.Errorf("loadgen: %w", err)
	}
	ds, err := data.Collect(src)
	if err != nil {
		return nil, fmt.Errorf("loadgen: %w", err)
	}
	if ds.Len() == 0 {
		return nil, fmt.Errorf("loadgen: %s has no data rows", name)
	}
	p := &Payloads{Name: name, Docs: make([][]byte, ds.Len())}
	for i, tu := range ds.Tuples {
		doc, err := encodeTuple(tu)
		if err != nil {
			return nil, fmt.Errorf("loadgen: %s row %d: %w", name, i+1, err)
		}
		p.Docs[i] = doc
	}
	return p, nil
}

// encodeTuple renders one tuple as the wire format udtserve decodes: point
// pdfs as bare numbers, sampled pdfs as {"xs", "masses"}, categorical
// distributions as mass arrays, missing values as null. Appending JSON
// fragments by hand keeps the document free of float formatting surprises
// (strconv is exactly what encoding/json uses for numbers).
func encodeTuple(tu *data.Tuple) ([]byte, error) {
	buf := []byte(`{"num":[`)
	for j, p := range tu.Num {
		if j > 0 {
			buf = append(buf, ',')
		}
		switch {
		case p == nil:
			buf = append(buf, "null"...)
		case p.NumSamples() == 1:
			buf = appendFloat(buf, p.X(0))
		default:
			buf = append(buf, `{"xs":[`...)
			for i := 0; i < p.NumSamples(); i++ {
				if i > 0 {
					buf = append(buf, ',')
				}
				buf = appendFloat(buf, p.X(i))
			}
			buf = append(buf, `],"masses":[`...)
			for i := 0; i < p.NumSamples(); i++ {
				if i > 0 {
					buf = append(buf, ',')
				}
				buf = appendFloat(buf, p.Mass(i))
			}
			buf = append(buf, "]}"...)
		}
	}
	buf = append(buf, `],"cat":[`...)
	for j, d := range tu.Cat {
		if j > 0 {
			buf = append(buf, ',')
		}
		if d == nil {
			buf = append(buf, "null"...)
			continue
		}
		buf = append(buf, '[')
		for v, m := range d {
			if v > 0 {
				buf = append(buf, ',')
			}
			buf = appendFloat(buf, m)
		}
		buf = append(buf, ']')
	}
	buf = append(buf, "]}"...)

	// Round-trip through the shared wire decoder so a payload the server
	// would reject never enters the pool: every request failure during a run
	// is then a server-side fact, not an encoding bug.
	var wt modelio.WireTuple
	if err := json.Unmarshal(buf, &wt); err != nil {
		return nil, err
	}
	for j, raw := range wt.Num {
		if _, err := modelio.DecodeNum(raw); err != nil {
			return nil, fmt.Errorf("numeric attribute %d: %w", j, err)
		}
	}
	return buf, nil
}

func appendFloat(buf []byte, f float64) []byte {
	return strconv.AppendFloat(buf, f, 'g', -1, 64)
}

// sampler draws payload indices deterministically from a seed, so two runs
// with the same seed against the same CSV issue byte-identical request
// sequences.
type sampler struct {
	rng  *rand.Rand
	docs [][]byte
}

func newSampler(seed int64, p *Payloads) (*sampler, error) {
	if p == nil || len(p.Docs) == 0 {
		return nil, errors.New("loadgen: no payloads")
	}
	return &sampler{rng: rand.New(rand.NewSource(seed)), docs: p.Docs}, nil
}

// next returns the next payload document. Documents are shared, never
// mutated.
func (s *sampler) next() []byte {
	return s.docs[s.rng.Intn(len(s.docs))]
}
