package loadgen

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"udt/internal/latency"
)

// Config drives one load run.
type Config struct {
	BaseURL     string        // udtserve root, e.g. http://127.0.0.1:8080
	QPS         float64       // target offered load (arrivals per second)
	Duration    time.Duration // run length; total arrivals = QPS * Duration
	Seed        int64         // payload/class sampling seed (same seed = same request sequence)
	Mix         Mix           // request-class weights; zero value = single-only
	BatchSize   int           // tuples per batch request (default 16)
	StreamLines int           // NDJSON lines per stream request (default 32)
	MaxInFlight int           // arrivals beyond this many outstanding requests are dropped (default 512)
	Timeout     time.Duration // per-request timeout (default 5s)
	Client      *http.Client  // optional; lets tests inject an httptest client

	// Targets, when non-empty, fans arrivals out round-robin (by arrival
	// index, deterministically) across several base URLs — replicas behind
	// no proxy, or mixed direct/proxy endpoints. BaseURL remains the
	// /metrics source for the server-delta section; it need not appear in
	// Targets.
	Targets []string

	// Models, when non-empty, adds a per-model dimension to the mix: each
	// arrival draws a model name by weight and requests
	// /v1/models/{name}/classify[/stream] instead of the legacy routes.
	// Per-model latencies land in the report under "model:{name}" keys. An
	// empty map preserves the legacy paths AND the exact seeded draw
	// sequence of earlier releases (no extra RNG consumption), so old and
	// new reports with equal seeds stay comparable.
	Models map[string]float64
}

// modelPicker draws model names by cumulative weight, in sorted-name order
// so the draw is deterministic for a given seed regardless of map iteration.
type modelPicker struct {
	names []string
	cum   []float64 // running totals; cum[len-1] is the weight sum
}

func newModelPicker(models map[string]float64) (*modelPicker, error) {
	if len(models) == 0 {
		return nil, nil
	}
	p := &modelPicker{}
	for name := range models {
		p.names = append(p.names, name)
	}
	sort.Strings(p.names)
	total := 0.0
	for _, name := range p.names {
		w := models[name]
		if name == "" || w < 0 {
			return nil, fmt.Errorf("loadgen: invalid model weight %q=%g", name, w)
		}
		total += w
		p.cum = append(p.cum, total)
	}
	if total <= 0 {
		return nil, fmt.Errorf("loadgen: model mix %v enables no model", models)
	}
	return p, nil
}

// pick consumes one uniform draw.
func (p *modelPicker) pick(u float64) string {
	x := u * p.cum[len(p.cum)-1]
	for i, c := range p.cum {
		if x < c {
			return p.names[i]
		}
	}
	return p.names[len(p.names)-1]
}

// Request-class names, used as Report.Latency keys alongside "all".
const (
	classSingle = "single"
	classBatch  = "batch"
	classStream = "stream"
)

type outcome int

const (
	outcomeOK outcome = iota
	outcomeError
	outcomeRejected
)

type sample struct {
	class   string
	model   string // "" on the legacy routes
	micros  int64
	outcome outcome
}

// Run executes one open-loop load run and returns its report. Arrivals fire
// on a fixed schedule derived from QPS regardless of completions; requests
// that would exceed MaxInFlight are counted as dropped, not queued, so the
// offered load stays honest under server slowdown. The payload/class draw for
// every arrival happens before the admission check, which keeps the sampled
// sequence a pure function of the seed.
func Run(ctx context.Context, cfg Config, p *Payloads) (*Report, error) {
	if cfg.BaseURL == "" {
		return nil, errors.New("loadgen: no target URL")
	}
	if !(cfg.QPS > 0) {
		return nil, fmt.Errorf("loadgen: target QPS must be positive, got %g", cfg.QPS)
	}
	if cfg.Duration <= 0 {
		return nil, fmt.Errorf("loadgen: duration must be positive, got %v", cfg.Duration)
	}
	mix := cfg.Mix
	if mix == (Mix{}) {
		mix = Mix{Single: 1}
	}
	if mix.Single < 0 || mix.Batch < 0 || mix.Stream < 0 || mix.total() <= 0 {
		return nil, fmt.Errorf("loadgen: invalid request mix %+v", mix)
	}
	if cfg.BatchSize == 0 {
		cfg.BatchSize = 16
	}
	if cfg.BatchSize < 0 {
		return nil, fmt.Errorf("loadgen: batch size %d", cfg.BatchSize)
	}
	if cfg.StreamLines == 0 {
		cfg.StreamLines = 32
	}
	if cfg.StreamLines < 0 {
		return nil, fmt.Errorf("loadgen: stream lines %d", cfg.StreamLines)
	}
	if cfg.MaxInFlight == 0 {
		cfg.MaxInFlight = 512
	}
	if cfg.MaxInFlight < 0 {
		return nil, fmt.Errorf("loadgen: max in-flight %d", cfg.MaxInFlight)
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = 5 * time.Second
	}
	client := cfg.Client
	if client == nil {
		client = &http.Client{}
	}
	picker, err := newModelPicker(cfg.Models)
	if err != nil {
		return nil, err
	}
	targets := cfg.Targets
	if len(targets) == 0 {
		targets = []string{cfg.BaseURL}
	}
	for _, tgt := range targets {
		if tgt == "" {
			return nil, errors.New("loadgen: empty target URL")
		}
	}
	smp, err := newSampler(cfg.Seed, p)
	if err != nil {
		return nil, err
	}

	before := fetchMetrics(ctx, client, cfg.BaseURL)

	total := int(cfg.QPS * cfg.Duration.Seconds())
	if total < 1 {
		total = 1
	}
	interval := time.Duration(float64(time.Second) / cfg.QPS)

	var (
		wg       sync.WaitGroup
		inFlight atomic.Int64
		dropped  int64
		samples  = make(chan sample, total)
	)
	start := time.Now()
arrivals:
	for i := 0; i < total; i++ {
		target := start.Add(time.Duration(i) * interval)
		if wait := time.Until(target); wait > 0 {
			select {
			case <-ctx.Done():
				break arrivals
			case <-time.After(wait):
			}
		} else if ctx.Err() != nil {
			break arrivals
		}
		// Draw before the admission check: the request sequence is then
		// seed-deterministic whether or not arrivals are dropped. The model
		// draw happens only when a model mix is configured, so legacy runs
		// consume the RNG exactly as before and stay seed-comparable.
		class, body, contentType, path := smp.draw(mix, cfg.BatchSize, cfg.StreamLines)
		model := ""
		if picker != nil {
			model = picker.pick(smp.rng.Float64())
			path = "/v1/models/" + model + path
		}
		base := targets[i%len(targets)]
		if inFlight.Load() >= int64(cfg.MaxInFlight) {
			dropped++
			continue
		}
		inFlight.Add(1)
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer inFlight.Add(-1)
			s := issue(ctx, client, base+path, contentType, body, cfg.Timeout, class)
			s.model = model
			samples <- s
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)
	close(samples)

	after := fetchMetrics(ctx, client, cfg.BaseURL)

	rep := &Report{
		SchemaVersion: SchemaVersion,
		Target:        cfg.BaseURL,
		Config: RunConfig{
			QPS:             cfg.QPS,
			DurationSeconds: cfg.Duration.Seconds(),
			Seed:            cfg.Seed,
			Mix:             mix,
			Models:          cfg.Models,
			BatchSize:       cfg.BatchSize,
			StreamLines:     cfg.StreamLines,
		},
		Requests:   Counts{Dropped: dropped},
		OfferedQPS: cfg.QPS,
		Latency:    map[string]*Summary{},
	}

	if len(cfg.Targets) > 0 {
		rep.Targets = cfg.Targets
	}
	perClass := map[string][]int64{}
	var classifyOK []int64 // single + batch, the /classify endpoint's view
	for s := range samples {
		rep.Requests.Sent++
		switch s.outcome {
		case outcomeOK:
			rep.Requests.OK++
			perClass[s.class] = append(perClass[s.class], s.micros)
			perClass["all"] = append(perClass["all"], s.micros)
			if s.model != "" {
				perClass["model:"+s.model] = append(perClass["model:"+s.model], s.micros)
			}
			if s.class != classStream {
				classifyOK = append(classifyOK, s.micros)
			}
		case outcomeRejected:
			rep.Requests.Rejected++
		default:
			rep.Requests.Errors++
		}
	}
	if secs := elapsed.Seconds(); secs > 0 {
		rep.AchievedQPS = float64(rep.Requests.OK) / secs
	}
	for class, micros := range perClass {
		rep.Latency[class] = summarize(micros)
	}
	rep.Server = serverDelta(before, after)
	rep.ServerRuntime = runtimeDelta(before, after)
	rep.CrossCheck = crossCheck(classifyOK, rep.Server)
	return rep, nil
}

// draw picks the next request: class by weighted draw, then enough payload
// documents to fill it.
func (s *sampler) draw(mix Mix, batchSize, streamLines int) (class string, body []byte, contentType, path string) {
	u := s.rng.Float64() * mix.total()
	switch {
	case u < mix.Single:
		return classSingle, s.next(), "application/json", "/classify"
	case u < mix.Single+mix.Batch:
		var buf bytes.Buffer
		buf.WriteString(`{"tuples":[`)
		for i := 0; i < batchSize; i++ {
			if i > 0 {
				buf.WriteByte(',')
			}
			buf.Write(s.next())
		}
		buf.WriteString("]}")
		return classBatch, buf.Bytes(), "application/json", "/classify"
	default:
		var buf bytes.Buffer
		for i := 0; i < streamLines; i++ {
			buf.Write(s.next())
			buf.WriteByte('\n')
		}
		return classStream, buf.Bytes(), "application/x-ndjson", "/classify/stream"
	}
}

// issue sends one request and classifies its outcome. Latency covers the
// full exchange including reading the body to EOF — for streams that is the
// last NDJSON line, so stream latency is time-to-complete, not
// time-to-first-byte.
func issue(ctx context.Context, client *http.Client, url, contentType string, body []byte, timeout time.Duration, class string) sample {
	rctx, cancel := context.WithTimeout(ctx, timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(rctx, http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		return sample{class: class, outcome: outcomeError}
	}
	req.Header.Set("Content-Type", contentType)
	begin := time.Now()
	res, err := client.Do(req)
	if err != nil {
		return sample{class: class, outcome: outcomeError}
	}
	_, copyErr := io.Copy(io.Discard, res.Body)
	res.Body.Close()
	micros := time.Since(begin).Microseconds()
	switch {
	case copyErr != nil:
		return sample{class: class, outcome: outcomeError}
	case res.StatusCode == http.StatusServiceUnavailable:
		return sample{class: class, micros: micros, outcome: outcomeRejected}
	case res.StatusCode >= 300:
		return sample{class: class, outcome: outcomeError}
	default:
		return sample{class: class, micros: micros, outcome: outcomeOK}
	}
}

// summarize digests exact per-request latencies with nearest-rank
// percentiles.
func summarize(micros []int64) *Summary {
	s := &Summary{Count: int64(len(micros))}
	if len(micros) == 0 {
		return s
	}
	sort.Slice(micros, func(i, j int) bool { return micros[i] < micros[j] })
	var sum int64
	for _, m := range micros {
		sum += m
	}
	s.MeanMicros = sum / int64(len(micros))
	s.P50Micros = nearestRank(micros, 0.50)
	s.P95Micros = nearestRank(micros, 0.95)
	s.P99Micros = nearestRank(micros, 0.99)
	s.MaxMicros = micros[len(micros)-1]
	return s
}

// nearestRank returns the q-th percentile of sorted values: the smallest
// value with at least ceil(q*n) values at or below it.
func nearestRank(sorted []int64, q float64) int64 {
	rank := int(float64(len(sorted))*q + 0.9999999)
	if rank < 1 {
		rank = 1
	}
	if rank > len(sorted) {
		rank = len(sorted)
	}
	return sorted[rank-1]
}

// wireMetrics mirrors the subset of udtserve's GET /metrics document the
// generator consumes.
type wireMetrics struct {
	TuplesClassified int64 `json:"tuplesClassified"`
	EarlyExit        struct {
		Enabled          bool  `json:"enabled"`
		Predictions      int64 `json:"predictions"`
		MembersEvaluated int64 `json:"membersEvaluated"`
	} `json:"earlyExit"`
	Endpoints map[string]struct {
		Requests int64             `json:"requests"`
		Errors   int64             `json:"errors"`
		Latency  *latency.Snapshot `json:"latency"`
	} `json:"endpoints"`
	Runtime *struct {
		HeapAllocBytes     uint64 `json:"heapAllocBytes"`
		HeapObjects        uint64 `json:"heapObjects"`
		Goroutines         int64  `json:"goroutines"`
		GCCycles           int64  `json:"gcCycles"`
		GCPauseTotalMicros int64  `json:"gcPauseTotalMicros"`
	} `json:"runtime"`
}

// fetchMetrics samples GET /metrics, returning nil when the endpoint is
// unreachable or malformed — the run proceeds, the report just omits the
// server-side section.
func fetchMetrics(ctx context.Context, client *http.Client, baseURL string) *wireMetrics {
	rctx, cancel := context.WithTimeout(ctx, 5*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(rctx, http.MethodGet, baseURL+"/metrics", nil)
	if err != nil {
		return nil
	}
	res, err := client.Do(req)
	if err != nil {
		return nil
	}
	defer res.Body.Close()
	if res.StatusCode != http.StatusOK {
		return nil
	}
	var m wireMetrics
	if err := json.NewDecoder(res.Body).Decode(&m); err != nil {
		return nil
	}
	return &m
}

// serverDelta subtracts the before /metrics sample from the after one.
func serverDelta(before, after *wireMetrics) *ServerDelta {
	if before == nil || after == nil {
		return nil
	}
	d := &ServerDelta{TuplesClassified: after.TuplesClassified - before.TuplesClassified}
	if after.EarlyExit.Enabled {
		d.EarlyExit = &EarlyExitDelta{
			Predictions:      after.EarlyExit.Predictions - before.EarlyExit.Predictions,
			MembersEvaluated: after.EarlyExit.MembersEvaluated - before.EarlyExit.MembersEvaluated,
		}
	}
	if ep, ok := after.Endpoints["classify"]; ok && ep.Latency != nil {
		var prev *latency.Snapshot
		if bep, ok := before.Endpoints["classify"]; ok {
			prev = bep.Latency
		}
		if delta, err := ep.Latency.Sub(prev); err == nil && delta.Total() > 0 {
			d.ClassifyLatency = delta
		}
	}
	return d
}

// runtimeDelta subtracts the before /metrics runtime section from the after
// one; nil when either sample lacks it (an older server).
func runtimeDelta(before, after *wireMetrics) *RuntimeDelta {
	if before == nil || after == nil || before.Runtime == nil || after.Runtime == nil {
		return nil
	}
	b, a := before.Runtime, after.Runtime
	return &RuntimeDelta{
		HeapAllocBytesDelta: int64(a.HeapAllocBytes) - int64(b.HeapAllocBytes),
		HeapObjectsDelta:    int64(a.HeapObjects) - int64(b.HeapObjects),
		GoroutinesDelta:     a.Goroutines - b.Goroutines,
		GCCycles:            a.GCCycles - b.GCCycles,
		GCPauseTotalMicros:  a.GCPauseTotalMicros - b.GCPauseTotalMicros,
	}
}

// crossCheck compares the client-side /classify p95 with the server-side
// classify histogram p95, both mapped onto the shared power-of-two bucket
// geometry.
func crossCheck(classifyOK []int64, srv *ServerDelta) *CrossCheck {
	if len(classifyOK) == 0 || srv == nil || srv.ClassifyLatency == nil {
		return nil
	}
	sorted := append([]int64(nil), classifyOK...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	clientP95 := nearestRank(sorted, 0.95)
	lo, hi, ok := srv.ClassifyLatency.PercentileBounds(0.95)
	if !ok {
		return nil
	}
	clientBucket := latency.Bucket(time.Duration(clientP95) * time.Microsecond)
	serverBucket := latency.Buckets - 1
	if hi >= 0 {
		serverBucket = latency.Bucket(time.Duration(hi) * time.Microsecond)
	}
	dist := clientBucket - serverBucket
	if dist < 0 {
		dist = -dist
	}
	return &CrossCheck{
		ClientP95Micros:   clientP95,
		ServerP95LoMicros: lo,
		ServerP95HiMicros: hi,
		BucketDistance:    dist,
		WithinOneBucket:   dist <= 1,
	}
}
