// Package registry is the multi-model serving table behind udtserve: a set
// of named, independently versioned model entries, each with the refcounted
// generation drain that single-model serving used, plus per-model metrics,
// per-model stream-admission budgets, and optional shadow generations for
// pre-promotion comparison.
//
// Concurrency contract, per entry:
//
//   - Acquire/Release bracket every request's model use. A generation's
//     mapping (binary models alias an mmap'd file) is released only when the
//     published reference and every in-flight reference are gone.
//   - Reload, MaybeReload and the load at Open serialise on the entry's
//     reloadMu; the file stamp used for watch change-detection is plain state
//     guarded by that same mutex, so a poller and a concurrent POST /reload
//     can never record a stamp for content that was never loaded.
//   - Remove (eviction) marks the entry closed before retiring its
//     generations, so acquirers backing off a retired generation observe the
//     closure instead of spinning; requests already holding a reference
//     drain normally.
package registry

import (
	"encoding/json"
	"fmt"
	"log/slog"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"udt/internal/modelio"
	"udt/internal/obs"
)

// Active is one loaded model generation plus its serving metadata. Entries
// publish it through an atomic pointer, so a reload swaps models without
// locks and requests already running keep the instance they loaded.
//
// Binary models alias an mmap'd file, so "keep the instance" is a memory-
// safety requirement, not just a consistency nicety: the mapping may only be
// released once no request can still be reading it. Each generation is
// therefore reference-counted — refs starts at 1 (the "published"
// reference), every request holds one around its model use, and a reload
// retires the old generation by dropping the published reference. Whoever
// takes refs to zero closes the model; for JSON models that is a no-op, and
// the close itself is idempotent all the way down (binfmt runs its unmap
// exactly once).
type Active struct {
	Model      modelio.Model
	Generation int64 // 1 at entry creation, +1 per successful reload
	LoadedAt   time.Time

	refs    atomic.Int64 // published reference + in-flight requests
	retired atomic.Bool  // set once a newer generation is published
	log     *slog.Logger
}

// Release drops one reference; the last one out closes the model (unmapping
// it, if binary). The zero-crossing race between a retiring reload and a
// backing-off acquirer is safe because the wrapped Close is idempotent.
func (am *Active) Release() {
	if am.refs.Add(-1) == 0 {
		if err := modelio.Close(am.Model); err != nil {
			am.log.Error("close model generation", "generation", am.Generation, "err", err)
		}
	}
}

// retire marks the generation superseded and drops its published reference.
// In-flight requests keep serving from it; the mapping is released when the
// last of them finishes.
func (am *Active) retire() {
	am.retired.Store(true)
	am.Release()
}

// Metrics is one entry's serving accounting. The request/error/latency
// dimensions are obs.EndpointMetrics fed by obs.Middleware.WrapModel — the
// registry inherits the middleware's accounting wholesale instead of growing
// its own — and the rest are plain counters the handlers bump.
type Metrics struct {
	Classify obs.EndpointMetrics // /v1/models/{name}/classify (+ legacy /classify on the default entry)
	Stream   obs.EndpointMetrics // /v1/models/{name}/classify/stream

	Tuples         atomic.Int64 // tuples classified for this model, both endpoints
	StreamRejected atomic.Int64 // streams refused by the entry's MaxStreams budget

	ShadowComparisons      atomic.Int64 // tuples mirrored to the shadow generation
	ShadowArgmaxDivergence atomic.Int64 // mirrored tuples whose predicted class differed
	ShadowDistDivergence   atomic.Int64 // mirrored tuples whose distribution differed (L∞ > DistTolerance)
}

// Entry is one named model in the registry. Exported scalar fields are set
// at construction and immutable afterwards.
type Entry struct {
	Name string
	Path string
	// ShadowPath, when non-empty, names a candidate model file loaded
	// alongside every primary (re)load; traffic can be mirrored to it via
	// ShadowCompare and divergence read from Metrics before promotion.
	ShadowPath string
	// MaxStreams caps concurrent streams for this entry when positive — the
	// per-model QoS budget generalising udtserve's global -max-streams.
	MaxStreams int

	// ActiveStreams counts this entry's open stream requests (capped or
	// not); the serving layer brackets streams with Add(1)/Add(-1).
	ActiveStreams atomic.Int64

	Metrics Metrics

	reloadMu   sync.Mutex // serialises reloads: stat + file read + generation + swap
	generation atomic.Int64
	active     atomic.Pointer[Active]
	shadow     atomic.Pointer[Active]
	// lastStamp is the identity of the model file last loaded (or last
	// attempted by the watch poller). Guarded by reloadMu: both the poller
	// and explicit reloads write it, and an unserialised write could record
	// a stamp for content that was never loaded.
	lastStamp fileStamp

	closed        atomic.Bool // set by Remove/Close before retiring; stops new acquires
	requireStaged bool
	log           *slog.Logger
}

// Acquire returns the entry's current model generation with a reference
// held; the caller must Release it when done. It returns nil once the entry
// has been evicted. The retire/acquire race is closed by re-checking retired
// after the increment: an acquirer that caught a generation mid-retirement
// backs off and takes the new pointer — or observes the eviction.
func (e *Entry) Acquire() *Active {
	for {
		if e.closed.Load() {
			return nil
		}
		am := e.active.Load()
		am.refs.Add(1)
		if !am.retired.Load() {
			return am
		}
		am.Release()
	}
}

// AcquireShadow returns the shadow generation with a reference held, or nil
// when no shadow is configured or the entry is evicted.
func (e *Entry) AcquireShadow() *Active {
	for {
		if e.closed.Load() {
			return nil
		}
		am := e.shadow.Load()
		if am == nil {
			return nil
		}
		am.refs.Add(1)
		if !am.retired.Load() {
			return am
		}
		am.Release()
	}
}

// Generation reports the entry's current generation number.
func (e *Entry) Generation() int64 { return e.generation.Load() }

// fileStamp identifies a version of a model file for watch change
// detection. Size is compared alongside mtime because coarse filesystem
// clocks (1s on some mounts) can give two quick deploys the same mtime.
type fileStamp struct {
	modNanos int64
	size     int64
}

// stampOf stats the path; a stat failure yields the zero stamp, which never
// equals a real one.
func stampOf(path string) fileStamp {
	fi, err := os.Stat(path)
	if err != nil {
		return fileStamp{}
	}
	return fileStamp{modNanos: fi.ModTime().UnixNano(), size: fi.Size()}
}

// loadLocked reads the entry's model file (and shadow, if configured) and
// stamps the next generation number. Caller holds reloadMu. The stat happens
// BEFORE the read: if the file is replaced between the two calls the
// recorded stamp is older than the loaded content, so the watch poller's
// worst case is one redundant reload — never a newer file mistaken for
// already-loaded.
func (e *Entry) loadLocked() (*Active, error) {
	stamp := stampOf(e.Path)
	m, err := loadChecked(e.Path, e.requireStaged)
	if err != nil {
		return nil, err
	}
	var sm modelio.Model
	if e.ShadowPath != "" {
		sm, err = loadChecked(e.ShadowPath, e.requireStaged)
		if err != nil {
			modelio.Close(m)
			return nil, fmt.Errorf("shadow: %w", err)
		}
	}
	e.lastStamp = stamp
	gen := e.generation.Add(1)
	am := newActive(m, gen, e.log)
	if sm != nil {
		sh := newActive(sm, gen, e.log)
		if old := e.shadow.Swap(sh); old != nil {
			old.retire()
		}
	}
	return am, nil
}

func newActive(m modelio.Model, gen int64, log *slog.Logger) *Active {
	am := &Active{Model: m, Generation: gen, LoadedAt: time.Now(), log: log}
	am.refs.Store(1) // the published reference
	return am
}

// loadChecked loads one model file and enforces the early-exit mode
// constraint. Checked on every load, not just startup: a hot reload swapping
// in a single-tree model would otherwise crash the early-exit serving path;
// the failed reload leaves the previous (staged) model serving.
func loadChecked(path string, requireStaged bool) (modelio.Model, error) {
	m, err := modelio.Load(path)
	if err != nil {
		return nil, err
	}
	if requireStaged {
		if _, ok := m.(modelio.Staged); !ok {
			modelio.Close(m)
			return nil, fmt.Errorf("%s: -early-exit requires an ensemble model, got %s", path, m.Describe())
		}
	}
	return m, nil
}

// Reload re-reads the entry's model file and swaps it in atomically — the
// shared hot-reload path of POST /reload and the watch poller. On failure
// the previous model keeps serving. Reloads are serialised so a slow file
// read can never overwrite a newer model with an older one (generation moves
// strictly forward).
func (e *Entry) Reload() (*Active, error) {
	e.reloadMu.Lock()
	defer e.reloadMu.Unlock()
	am, err := e.loadLocked()
	if err != nil {
		return nil, err
	}
	old := e.active.Swap(am)
	old.retire()
	return am, nil
}

// MaybeReload is the watch-poller tick: stat the file and reload only when
// its identity changed since the last load (or last failed attempt). The
// stamp comparison and the reload run under one reloadMu hold, so a
// concurrent POST /reload cannot interleave between them. It returns the new
// generation when a reload happened.
func (e *Entry) MaybeReload() (am *Active, reloaded bool, err error) {
	e.reloadMu.Lock()
	defer e.reloadMu.Unlock()
	stamp := stampOf(e.Path)
	if stamp == (fileStamp{}) || stamp == e.lastStamp {
		return nil, false, nil
	}
	// Remember the stamp that triggered this attempt even if the load fails,
	// so a persistently broken file is reported once per write, not once per
	// tick. loadLocked overwrites it on success (with a pre-read stat).
	e.lastStamp = stamp
	am, err = e.loadLocked()
	if err != nil {
		return nil, true, err
	}
	old := e.active.Swap(am)
	old.retire()
	return am, true, nil
}

// evict marks the entry closed and retires its generations. In-flight
// requests drain; new Acquires return nil.
func (e *Entry) evict() {
	if !e.closed.CompareAndSwap(false, true) {
		return
	}
	if am := e.active.Load(); am != nil {
		am.retire()
	}
	if sh := e.shadow.Swap(nil); sh != nil {
		sh.retire()
	}
}

// Options configures Open.
type Options struct {
	// Path is the model source: a model file (one entry named "default"), a
	// directory (one entry per model file, named by basename minus
	// extension), or a JSON manifest (see Manifest).
	Path string
	// Shadow, when non-empty, is a candidate model file attached to the
	// default entry — the single-model -shadow flag. Manifests carry shadows
	// per model instead.
	Shadow string
	// RequireStaged refuses non-ensemble models (the -early-exit mode
	// constraint), at Open and on every reload.
	RequireStaged bool
	// Log receives structured reload/close records. Defaults to a JSON
	// logger on stderr.
	Log *slog.Logger
}

// Manifest is the JSON document accepted by Open when Path names a .manifest
// file (or any non-directory that parses as one after failing the model
// sniff is NOT attempted — the manifest must be named explicitly via a
// ".manifest.json" / ".manifest" suffix). Model paths are relative to the
// manifest's directory.
type Manifest struct {
	Models []ManifestModel `json:"models"`
}

// ManifestModel is one manifest entry.
type ManifestModel struct {
	Name       string `json:"name"`
	Path       string `json:"path"`
	Shadow     string `json:"shadow,omitempty"`
	MaxStreams int    `json:"maxStreams,omitempty"`
	Default    bool   `json:"default,omitempty"`
}

// Registry is the named model table. The entry set is fixed between Open,
// Remove and Close; per-entry state is managed by the entries themselves.
type Registry struct {
	mu          sync.RWMutex
	entries     map[string]*Entry
	defaultName string
	opts        Options
}

var nameRE = regexp.MustCompile(`^[A-Za-z0-9._-]+$`)

// validName refuses names that cannot appear as a path segment of
// /v1/models/{name}/... or that would collide with path traversal.
func validName(name string) error {
	if !nameRE.MatchString(name) || name == "." || name == ".." {
		return fmt.Errorf("registry: invalid model name %q (want [A-Za-z0-9._-]+)", name)
	}
	return nil
}

// DefaultName is the entry name backing the legacy single-model routes.
const DefaultName = "default"

// Open builds a registry from a model file, a directory of model files, or
// a manifest, loading every model eagerly so a broken file fails startup,
// not first request.
func Open(opts Options) (*Registry, error) {
	if opts.Log == nil {
		opts.Log = slog.New(slog.NewJSONHandler(os.Stderr, nil))
	}
	r := &Registry{entries: map[string]*Entry{}, opts: opts}
	fi, err := os.Stat(opts.Path)
	if err != nil {
		return nil, fmt.Errorf("registry: %w", err)
	}
	switch {
	case fi.IsDir():
		if opts.Shadow != "" {
			return nil, fmt.Errorf("registry: shadow model requires a single-model path, got directory %s", opts.Path)
		}
		err = r.openDir(opts.Path)
	case isManifestPath(opts.Path):
		if opts.Shadow != "" {
			return nil, fmt.Errorf("registry: shadow model requires a single-model path; put per-model shadows in the manifest")
		}
		err = r.openManifest(opts.Path)
	default:
		err = r.add(DefaultName, opts.Path, opts.Shadow, 0, true)
	}
	if err != nil {
		r.Close()
		return nil, err
	}
	if len(r.entries) == 0 {
		return nil, fmt.Errorf("registry: no models found in %s", opts.Path)
	}
	return r, nil
}

// isManifestPath reports whether the path names a registry manifest rather
// than a model file.
func isManifestPath(path string) bool {
	base := strings.ToLower(filepath.Base(path))
	return strings.HasSuffix(base, ".manifest") || strings.HasSuffix(base, ".manifest.json")
}

// openDir creates one entry per regular file in dir, named by basename minus
// extension. A "default" entry (or a lone model) backs the legacy routes.
func (r *Registry) openDir(dir string) error {
	des, err := os.ReadDir(dir)
	if err != nil {
		return fmt.Errorf("registry: %w", err)
	}
	names := []string{}
	for _, de := range des {
		if de.IsDir() || strings.HasPrefix(de.Name(), ".") {
			continue
		}
		names = append(names, de.Name())
	}
	sort.Strings(names)
	for _, fn := range names {
		name := strings.TrimSuffix(fn, filepath.Ext(fn))
		if err := r.add(name, filepath.Join(dir, fn), "", 0, false); err != nil {
			return err
		}
	}
	r.pickDefault()
	return nil
}

// openManifest loads the manifest document; model paths resolve relative to
// the manifest's directory.
func (r *Registry) openManifest(path string) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("registry: %w", err)
	}
	var mf Manifest
	dec := json.NewDecoder(strings.NewReader(string(raw)))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&mf); err != nil {
		return fmt.Errorf("registry: manifest %s: %w", path, err)
	}
	if dec.More() {
		return fmt.Errorf("registry: manifest %s: trailing data after document", path)
	}
	dir := filepath.Dir(path)
	resolve := func(p string) string {
		if p == "" || filepath.IsAbs(p) {
			return p
		}
		return filepath.Join(dir, p)
	}
	for _, mm := range mf.Models {
		if mm.Name == "" {
			return fmt.Errorf("registry: manifest %s: model with empty name", path)
		}
		if mm.MaxStreams < 0 {
			return fmt.Errorf("registry: manifest %s: model %q: maxStreams must be >= 0", path, mm.Name)
		}
		if err := r.add(mm.Name, resolve(mm.Path), resolve(mm.Shadow), mm.MaxStreams, mm.Default); err != nil {
			return err
		}
	}
	r.pickDefault()
	return nil
}

// add creates, loads, and registers one entry.
func (r *Registry) add(name, path, shadow string, maxStreams int, dflt bool) error {
	if err := validName(name); err != nil {
		return err
	}
	if _, dup := r.entries[name]; dup {
		return fmt.Errorf("registry: duplicate model name %q", name)
	}
	e := &Entry{
		Name:          name,
		Path:          path,
		ShadowPath:    shadow,
		MaxStreams:    maxStreams,
		requireStaged: r.opts.RequireStaged,
		log:           r.opts.Log.With("model", name),
	}
	e.reloadMu.Lock()
	am, err := e.loadLocked()
	e.reloadMu.Unlock()
	if err != nil {
		return fmt.Errorf("model %q: %w", name, err)
	}
	e.active.Store(am)
	r.entries[name] = e
	if dflt {
		if r.defaultName != "" && r.defaultName != name {
			e.evict()
			delete(r.entries, name)
			return fmt.Errorf("registry: both %q and %q marked default", r.defaultName, name)
		}
		r.defaultName = name
	}
	return nil
}

// pickDefault resolves the legacy-route entry for dir/manifest sources when
// none was marked explicitly: an entry literally named "default" wins,
// otherwise a lone entry serves as its own default. With several models and
// no marker there is no default — the legacy routes refuse with a clear
// error rather than guess.
func (r *Registry) pickDefault() {
	if r.defaultName != "" {
		return
	}
	if _, ok := r.entries[DefaultName]; ok {
		r.defaultName = DefaultName
		return
	}
	if len(r.entries) == 1 {
		for name := range r.entries {
			r.defaultName = name
		}
	}
}

// Get returns the named entry, or nil.
func (r *Registry) Get(name string) *Entry {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.entries[name]
}

// Default returns the entry backing the legacy single-model routes, or nil
// when the registry has several models and no designated default.
func (r *Registry) Default() *Entry {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.entries[r.defaultName]
}

// DefaultName returns the default entry's name ("" when there is none).
func (r *Registry) DefaultName() string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.defaultName
}

// Names returns the entry names, sorted for deterministic iteration.
func (r *Registry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	names := make([]string, 0, len(r.entries))
	for name := range r.entries {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Entries returns the entries sorted by name.
func (r *Registry) Entries() []*Entry {
	r.mu.RLock()
	defer r.mu.RUnlock()
	es := make([]*Entry, 0, len(r.entries))
	for _, e := range r.entries {
		es = append(es, e)
	}
	sort.Slice(es, func(i, j int) bool { return es[i].Name < es[j].Name })
	return es
}

// Len reports the number of live entries.
func (r *Registry) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.entries)
}

// Remove evicts the named entry: it leaves the table immediately, new
// acquires fail, and the model closes once in-flight requests drain. The
// default entry cannot be evicted — the legacy routes' contract would
// silently change under the caller.
func (r *Registry) Remove(name string) (*Entry, error) {
	r.mu.Lock()
	e, ok := r.entries[name]
	if !ok {
		r.mu.Unlock()
		return nil, fmt.Errorf("registry: no model %q", name)
	}
	if name == r.defaultName && len(r.entries) > 1 {
		r.mu.Unlock()
		return nil, fmt.Errorf("registry: cannot evict default model %q", name)
	}
	delete(r.entries, name)
	if name == r.defaultName {
		r.defaultName = ""
	}
	r.mu.Unlock()
	e.evict()
	return e, nil
}

// Close evicts every entry. Models unmap as their in-flight references
// drain.
func (r *Registry) Close() {
	r.mu.Lock()
	es := make([]*Entry, 0, len(r.entries))
	for _, e := range r.entries {
		es = append(es, e)
	}
	r.entries = map[string]*Entry{}
	r.defaultName = ""
	r.mu.Unlock()
	for _, e := range es {
		e.evict()
	}
}
