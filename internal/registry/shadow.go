package registry

import (
	"math"

	"udt/internal/data"
	"udt/internal/par"
)

// DistTolerance is the L∞ threshold above which two class distributions for
// the same tuple count as divergent. Primary and shadow evaluate the same
// deterministic engine, so a healthy candidate trained identically produces
// bit-equal distributions; the tolerance only absorbs benign re-encoding
// noise (JSON→binary round trips quantise nothing today, but the contract
// allows a format that does).
const DistTolerance = 1e-9

// ShadowCompare mirrors one request's tuples to the entry's shadow
// generation and folds the outcome into the entry's divergence counters:
// one comparison per tuple, an argmax divergence when the predicted class
// differs, and a distribution divergence when any class probability differs
// by more than DistTolerance. preds are the primary's predicted class
// indices; dists are the primary's distributions, nil in early-exit mode
// (early exit stops before full distributions exist, so only argmax is
// compared). The mirror is synchronous and on the caller's goroutine —
// shadow load is real load by design, the point is a dress rehearsal —
// and a nil or evicted shadow is a no-op.
func (e *Entry) ShadowCompare(tuples []*data.Tuple, preds []int, dists [][]float64, workers int) {
	sh := e.AcquireShadow()
	if sh == nil {
		return
	}
	defer sh.Release()
	sdists := sh.Model.ClassifyBatch(tuples, workers)
	var argmaxDiv, distDiv int64
	for i, sd := range sdists {
		if par.Argmax(sd) != preds[i] {
			argmaxDiv++
		}
		if dists == nil {
			continue
		}
		if linfDiverges(dists[i], sd) {
			distDiv++
		}
	}
	e.Metrics.ShadowComparisons.Add(int64(len(tuples)))
	e.Metrics.ShadowArgmaxDivergence.Add(argmaxDiv)
	e.Metrics.ShadowDistDivergence.Add(distDiv)
}

// linfDiverges reports whether two distributions differ beyond DistTolerance
// in any component (length mismatch — different class sets — is maximal
// divergence).
func linfDiverges(a, b []float64) bool {
	if len(a) != len(b) {
		return true
	}
	for i := range a {
		if math.Abs(a[i]-b[i]) > DistTolerance {
			return true
		}
	}
	return false
}
