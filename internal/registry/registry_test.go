package registry

import (
	"bytes"
	"encoding/json"
	"fmt"
	"log/slog"
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"udt/internal/core"
	"udt/internal/data"
	"udt/internal/forest"
	"udt/internal/modelio"
	"udt/internal/par"
	"udt/internal/pdf"
)

// testLog swallows structured output so tests stay quiet.
func testLog() *slog.Logger {
	return slog.New(slog.NewJSONHandler(&bytes.Buffer{}, nil))
}

// twoClassDataset builds a small separable numeric dataset. flip inverts the
// class labels, producing a model that disagrees with the unflipped one on
// every tuple — the shadow-divergence fixture.
func twoClassDataset(n int, flip bool) *data.Dataset {
	ds := data.NewDataset("demo", 2, []string{"lo", "hi"})
	rng := rand.New(rand.NewSource(17))
	for i := 0; i < n; i++ {
		c := i % 2
		base := float64(c * 10)
		label := c
		if flip {
			label = 1 - c
		}
		p1, _ := pdf.Uniform(base-1+rng.Float64(), base+1+rng.Float64(), 7)
		ds.Add(label, p1, pdf.Point(base+rng.Float64()))
	}
	return ds
}

// writeTreeJSON trains a single tree and writes it as a JSON model file.
func writeTreeJSON(t *testing.T, path string, flip bool) {
	t.Helper()
	tree, err := core.Build(twoClassDataset(80, flip), core.Config{MinWeight: 1})
	if err != nil {
		t.Fatal(err)
	}
	blob, err := json.Marshal(tree)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, blob, 0o644); err != nil {
		t.Fatal(err)
	}
}

// writeForestBinary trains a bagged forest and writes it as a binary (mmap-
// served) container, exercising the close-on-drain path for real.
func writeForestBinary(t *testing.T, path string, trees int) {
	t.Helper()
	fr, err := forest.Train(twoClassDataset(80, false),
		forest.Config{Trees: trees, Seed: 3, TreeConfig: core.Config{MinWeight: 1}})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := modelio.EncodeBinary(&buf, fr); err != nil {
		t.Fatal(err)
	}
	// Atomic rename, matching the binfmt deploy contract.
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.Rename(tmp, path); err != nil {
		t.Fatal(err)
	}
}

// probe classifies one easy tuple and returns the argmax.
func probe(t *testing.T, am *Active) int {
	t.Helper()
	p, _ := pdf.Uniform(9.5, 10.5, 7)
	dist := am.Model.Classify(&data.Tuple{Num: []*pdf.PDF{p, pdf.Point(10.2)}, Weight: 1})
	return par.Argmax(dist)
}

func TestOpenSingleFileIsDefault(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "model.json")
	writeTreeJSON(t, path, false)
	r, err := Open(Options{Path: path, Log: testLog()})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if r.Len() != 1 || r.DefaultName() != DefaultName {
		t.Fatalf("Len=%d default=%q, want 1/%q", r.Len(), r.DefaultName(), DefaultName)
	}
	e := r.Default()
	if e == nil || e != r.Get(DefaultName) {
		t.Fatal("default entry not reachable by name")
	}
	am := e.Acquire()
	if am == nil {
		t.Fatal("Acquire returned nil on live entry")
	}
	defer am.Release()
	if am.Generation != 1 {
		t.Fatalf("generation = %d, want 1", am.Generation)
	}
	if got := probe(t, am); got != 1 {
		t.Fatalf("probe class = %d, want 1", got)
	}
}

func TestOpenDirNamesAndDefault(t *testing.T) {
	dir := t.TempDir()
	writeTreeJSON(t, filepath.Join(dir, "alpha.json"), false)
	writeForestBinary(t, filepath.Join(dir, "beta.udt"), 3)
	r, err := Open(Options{Path: dir, Log: testLog()})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if got, want := fmt.Sprint(r.Names()), "[alpha beta]"; got != want {
		t.Fatalf("Names = %v, want %v", got, want)
	}
	// Two models, none named "default", none marked: legacy routes have no
	// backing entry.
	if r.Default() != nil {
		t.Fatalf("Default = %v, want nil", r.Default().Name)
	}

	writeTreeJSON(t, filepath.Join(dir, "default.json"), false)
	r2, err := Open(Options{Path: dir, Log: testLog()})
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Close()
	if r2.DefaultName() != DefaultName {
		t.Fatalf("default = %q, want %q", r2.DefaultName(), DefaultName)
	}
}

func TestOpenManifest(t *testing.T) {
	dir := t.TempDir()
	writeTreeJSON(t, filepath.Join(dir, "a.json"), false)
	writeForestBinary(t, filepath.Join(dir, "b.udt"), 3)
	manifest := filepath.Join(dir, "models.manifest.json")
	doc := `{"models":[
		{"name":"tree-a","path":"a.json","default":true},
		{"name":"forest-b","path":"b.udt","maxStreams":2}
	]}`
	if err := os.WriteFile(manifest, []byte(doc), 0o644); err != nil {
		t.Fatal(err)
	}
	r, err := Open(Options{Path: manifest, Log: testLog()})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if r.DefaultName() != "tree-a" {
		t.Fatalf("default = %q, want tree-a", r.DefaultName())
	}
	if e := r.Get("forest-b"); e == nil || e.MaxStreams != 2 {
		t.Fatalf("forest-b maxStreams = %+v, want 2", e)
	}

	// Strict decode: unknown fields refuse the manifest rather than silently
	// dropping config.
	bad := filepath.Join(dir, "bad.manifest.json")
	os.WriteFile(bad, []byte(`{"models":[],"oops":1}`), 0o644)
	if _, err := Open(Options{Path: bad, Log: testLog()}); err == nil {
		t.Fatal("unknown manifest field accepted")
	}
}

func TestOpenRejects(t *testing.T) {
	dir := t.TempDir()
	writeTreeJSON(t, filepath.Join(dir, "ok.json"), false)
	cases := map[string]string{
		"dup":     `{"models":[{"name":"x","path":"ok.json"},{"name":"x","path":"ok.json"}]}`,
		"badname": `{"models":[{"name":"a/b","path":"ok.json"}]}`,
		"twodflt": `{"models":[{"name":"x","path":"ok.json","default":true},{"name":"y","path":"ok.json","default":true}]}`,
		"badload": `{"models":[{"name":"x","path":"absent.json"}]}`,
		"negcap":  `{"models":[{"name":"x","path":"ok.json","maxStreams":-1}]}`,
	}
	for name, doc := range cases {
		t.Run(name, func(t *testing.T) {
			p := filepath.Join(dir, name+".manifest.json")
			os.WriteFile(p, []byte(doc), 0o644)
			if _, err := Open(Options{Path: p, Log: testLog()}); err == nil {
				t.Fatal("accepted")
			}
		})
	}
	if _, err := Open(Options{Path: filepath.Join(dir, "empty.manifest.json")}); err == nil {
		t.Fatal("missing manifest accepted")
	}
}

// TestReloadDrainsOldGeneration: a reference held across a reload keeps
// serving the old (binary, mmap'd) generation; the swap bumps the
// generation; eviction of nothing happens.
func TestReloadDrainsOldGeneration(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "m.udt")
	writeForestBinary(t, path, 3)
	r, err := Open(Options{Path: path, Log: testLog()})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	e := r.Default()

	held := e.Acquire()
	writeForestBinary(t, path, 5)
	am, err := e.Reload()
	if err != nil {
		t.Fatal(err)
	}
	if am.Generation != 2 || e.Generation() != 2 {
		t.Fatalf("generation = %d/%d, want 2", am.Generation, e.Generation())
	}
	// The old generation is retired but must still classify: its mapping is
	// alive until the held reference drops.
	if got := probe(t, held); got != 1 {
		t.Fatalf("old generation probe = %d, want 1", got)
	}
	held.Release()
	fresh := e.Acquire()
	defer fresh.Release()
	if fresh.Generation != 2 {
		t.Fatalf("acquired generation = %d, want 2", fresh.Generation)
	}
}

// TestWatchVsReloadStampConsistency pins the lastStamp bugfix: the poller's
// stamp compare-and-remember and explicit reloads both run under reloadMu,
// so hammering them concurrently (under -race) can never record a stamp for
// content that was never loaded — a final write is always detected by the
// next poll. The pre-fix code stored the stamp through an atomic pointer
// outside the mutex, where a poller could stamp a file version an
// interleaved reload never read.
func TestWatchVsReloadStampConsistency(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "m.udt")
	writeForestBinary(t, path, 3)
	r, err := Open(Options{Path: path, Log: testLog()})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	e := r.Default()

	var bg sync.WaitGroup
	stop := make(chan struct{})
	bg.Add(2)
	go func() { // deployer: rewrites the file
		defer bg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			writeForestBinary(t, path, 3+i%2)
		}
	}()
	go func() { // watch poller
		defer bg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			e.MaybeReload()
		}
	}()
	// POST /reload hammer, racing both of the above.
	for i := 0; i < 50; i++ {
		if _, err := e.Reload(); err != nil {
			t.Fatalf("reload: %v", err)
		}
	}
	close(stop)
	bg.Wait()

	// The pinned property: after the dust settles, a final deploy is always
	// detected — no interleaving may have recorded its stamp without loading
	// its content. The 7-tree file differs in size from every 3/4-tree write
	// above, so its stamp cannot collide with a remembered one.
	writeForestBinary(t, path, 7)
	am, reloaded, err := e.MaybeReload()
	if err != nil || !reloaded {
		t.Fatalf("final poll: reloaded=%v err=%v, want true/nil", reloaded, err)
	}
	f, ok := modelio.AsForest(am.Model)
	if !ok || f.NumTrees() != 7 {
		t.Fatalf("final generation trees = %v, want 7", ok)
	}
	// And an unchanged file does not reload again.
	if _, again, _ := e.MaybeReload(); again {
		t.Fatal("unchanged file reloaded")
	}
}

// TestEvictUnderInflight: Remove makes new acquires fail immediately while a
// request already holding a reference keeps serving its (mmap'd) model until
// it releases.
func TestEvictUnderInflight(t *testing.T) {
	dir := t.TempDir()
	writeForestBinary(t, filepath.Join(dir, "a.udt"), 3)
	writeForestBinary(t, filepath.Join(dir, "b.udt"), 4)
	writeTreeJSON(t, filepath.Join(dir, "default.json"), false)
	r, err := Open(Options{Path: dir, Log: testLog()})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	e := r.Get("b")
	held := e.Acquire()
	if _, err := r.Remove("b"); err != nil {
		t.Fatal(err)
	}
	if r.Get("b") != nil || r.Len() != 2 {
		t.Fatal("evicted entry still listed")
	}
	if e.Acquire() != nil {
		t.Fatal("Acquire succeeded on evicted entry")
	}
	// The in-flight reference still classifies from the unmapped-only-later
	// mapping.
	if got := probe(t, held); got != 1 {
		t.Fatalf("in-flight probe after evict = %d, want 1", got)
	}
	held.Release()

	if _, err := r.Remove("b"); err == nil {
		t.Fatal("double Remove succeeded")
	}
	if _, err := r.Remove("default"); err == nil {
		t.Fatal("evicting the default entry succeeded")
	}
}

// TestShadowCompare: a shadow identical to the primary produces comparisons
// with zero divergence; a label-flipped shadow diverges on every tuple, in
// argmax and distribution both — and only the shadowed entry's counters
// move (per-model isolation at the registry layer).
func TestShadowCompare(t *testing.T) {
	dir := t.TempDir()
	same := filepath.Join(dir, "same.json")
	flipped := filepath.Join(dir, "flipped.json")
	primary := filepath.Join(dir, "primary.json")
	writeTreeJSON(t, primary, false)
	writeTreeJSON(t, same, false)
	writeTreeJSON(t, flipped, true)

	tuples := make([]*data.Tuple, 0, 8)
	for i := 0; i < 8; i++ {
		base := float64((i % 2) * 10)
		p, _ := pdf.Uniform(base-0.5, base+0.5, 7)
		tuples = append(tuples, &data.Tuple{Num: []*pdf.PDF{p, pdf.Point(base + 0.2)}, Weight: 1})
	}

	for name, tc := range map[string]struct {
		shadow     string
		wantArgmax bool
	}{
		"identical": {same, false},
		"flipped":   {flipped, true},
	} {
		t.Run(name, func(t *testing.T) {
			r, err := Open(Options{Path: primary, Shadow: tc.shadow, Log: testLog()})
			if err != nil {
				t.Fatal(err)
			}
			defer r.Close()
			e := r.Default()
			other := &Entry{Name: "other"} // isolation probe: must stay zero

			am := e.Acquire()
			dists := am.Model.ClassifyBatch(tuples, 2)
			preds := make([]int, len(dists))
			for i, d := range dists {
				preds[i] = par.Argmax(d)
			}
			am.Release()
			e.ShadowCompare(tuples, preds, dists, 2)

			if got := e.Metrics.ShadowComparisons.Load(); got != int64(len(tuples)) {
				t.Fatalf("comparisons = %d, want %d", got, len(tuples))
			}
			adiv := e.Metrics.ShadowArgmaxDivergence.Load()
			ddiv := e.Metrics.ShadowDistDivergence.Load()
			if tc.wantArgmax && (adiv != int64(len(tuples)) || ddiv != int64(len(tuples))) {
				t.Fatalf("divergence = %d/%d, want all %d", adiv, ddiv, len(tuples))
			}
			if !tc.wantArgmax && (adiv != 0 || ddiv != 0) {
				t.Fatalf("divergence = %d/%d on identical shadow", adiv, ddiv)
			}
			if other.Metrics.ShadowComparisons.Load() != 0 {
				t.Fatal("unshadowed entry's counters moved")
			}

			// Early-exit shape: nil dists compares argmax only.
			before := ddiv
			e.ShadowCompare(tuples, preds, nil, 2)
			if e.Metrics.ShadowDistDivergence.Load() != before {
				t.Fatal("nil dists moved the distribution divergence counter")
			}
		})
	}

	// No shadow configured: a no-op.
	r, err := Open(Options{Path: primary, Log: testLog()})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	r.Default().ShadowCompare(tuples, make([]int, len(tuples)), nil, 2)
	if r.Default().Metrics.ShadowComparisons.Load() != 0 {
		t.Fatal("shadowless entry recorded comparisons")
	}
}

// TestShadowReloadsWithPrimary: a reload re-reads the shadow too, and a
// broken shadow fails the reload leaving the old pair serving.
func TestShadowReloadsWithPrimary(t *testing.T) {
	dir := t.TempDir()
	primary := filepath.Join(dir, "primary.json")
	shadow := filepath.Join(dir, "shadow.json")
	writeTreeJSON(t, primary, false)
	writeTreeJSON(t, shadow, false)
	r, err := Open(Options{Path: primary, Shadow: shadow, Log: testLog()})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	e := r.Default()

	if _, err := e.Reload(); err != nil {
		t.Fatal(err)
	}
	sh := e.AcquireShadow()
	if sh == nil || sh.Generation != 2 {
		t.Fatalf("shadow generation = %v, want 2", sh)
	}
	sh.Release()

	if err := os.WriteFile(shadow, []byte("not a model"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Reload(); err == nil {
		t.Fatal("reload with broken shadow succeeded")
	}
	if e.Generation() != 2 {
		t.Fatalf("generation moved to %d on failed reload", e.Generation())
	}
	am := e.Acquire()
	defer am.Release()
	if got := probe(t, am); got != 1 {
		t.Fatalf("probe after failed reload = %d, want 1", got)
	}
}

// TestPoll: one tick reloads exactly the entries whose files changed, in
// name order, and reports per-entry errors without stopping the sweep.
func TestPoll(t *testing.T) {
	dir := t.TempDir()
	writeForestBinary(t, filepath.Join(dir, "a.udt"), 3)
	writeForestBinary(t, filepath.Join(dir, "b.udt"), 3)
	writeTreeJSON(t, filepath.Join(dir, "c.json"), false)
	r, err := Open(Options{Path: dir, Log: testLog()})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	if res := r.Poll(); len(res) != 0 {
		t.Fatalf("poll with no changes reloaded %d entries", len(res))
	}
	writeForestBinary(t, filepath.Join(dir, "b.udt"), 5)
	if err := os.WriteFile(filepath.Join(dir, "c.json"), []byte("broken"), 0o644); err != nil {
		t.Fatal(err)
	}
	res := r.Poll()
	if len(res) != 2 || res[0].Entry.Name != "b" || res[1].Entry.Name != "c" {
		t.Fatalf("poll results = %+v, want [b c]", res)
	}
	if res[0].Err != nil || res[0].Generation != 2 {
		t.Fatalf("b: gen=%d err=%v, want 2/nil", res[0].Generation, res[0].Err)
	}
	if res[1].Err == nil {
		t.Fatal("broken c.json reloaded without error")
	}
	// The broken file was stamped: the next tick does not retry it.
	if res := r.Poll(); len(res) != 0 {
		t.Fatalf("second poll retried %d entries", len(res))
	}
}
