package registry

// PollResult is one entry's outcome from a Poll tick that attempted a
// reload. Err is non-nil for a changed file that failed to load (the entry's
// previous model keeps serving).
type PollResult struct {
	Entry      *Entry
	Generation int64 // new generation on success
	Describe   string
	Err        error
}

// Poll runs one watch tick across every entry: each model file whose
// identity (mtime + size) changed since its last load is hot-reloaded
// through the same serialised path as an explicit reload. Unchanged entries
// produce no result. Entries are visited in name order so logs and counters
// are deterministic under test.
func (r *Registry) Poll() []PollResult {
	var out []PollResult
	for _, e := range r.Entries() {
		am, reloaded, err := e.MaybeReload()
		if !reloaded {
			continue
		}
		res := PollResult{Entry: e, Err: err}
		if err == nil {
			res.Generation = am.Generation
			res.Describe = am.Model.Describe()
		}
		out = append(out, res)
	}
	return out
}
