package cliutil

import (
	"fmt"
	"runtime"
	"runtime/debug"
)

// BuildInfo returns the module version and VCS revision baked into the
// binary by the Go toolchain. Version falls back to "devel" when the binary
// was not built from a tagged module; commit is "unknown" when no VCS stamp
// is present (go test binaries, source builds outside a checkout), and
// carries a "+dirty" suffix when the working tree was modified.
func BuildInfo() (version, commit string) {
	version, commit = "devel", "unknown"
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return version, commit
	}
	if v := bi.Main.Version; v != "" && v != "(devel)" {
		version = v
	}
	var revision string
	dirty := false
	for _, s := range bi.Settings {
		switch s.Key {
		case "vcs.revision":
			revision = s.Value
		case "vcs.modified":
			dirty = s.Value == "true"
		}
	}
	if revision != "" {
		if len(revision) > 12 {
			revision = revision[:12]
		}
		if dirty {
			revision += "+dirty"
		}
		commit = revision
	}
	return version, commit
}

// VersionString renders the one-line -version output shared by every
// binary.
func VersionString(binary string) string {
	version, commit := BuildInfo()
	return fmt.Sprintf("%s %s (commit %s, %s)", binary, version, commit, runtime.Version())
}
