package cliutil

import (
	"runtime"
	"strings"
	"testing"
)

func TestBuildInfoAlwaysPopulated(t *testing.T) {
	version, commit := BuildInfo()
	if version == "" || commit == "" {
		t.Fatalf("BuildInfo() = %q, %q; both must be non-empty", version, commit)
	}
}

func TestVersionString(t *testing.T) {
	s := VersionString("udtree")
	if !strings.HasPrefix(s, "udtree ") {
		t.Fatalf("VersionString = %q, want binary-name prefix", s)
	}
	if !strings.Contains(s, "commit ") || !strings.Contains(s, runtime.Version()) {
		t.Fatalf("VersionString = %q, want commit and Go version", s)
	}
	if strings.ContainsAny(s, "\n") {
		t.Fatalf("VersionString is not one line: %q", s)
	}
}
