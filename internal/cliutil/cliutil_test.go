package cliutil

import (
	"strings"
	"testing"

	"udt/internal/split"
)

func TestCheckPositive(t *testing.T) {
	if err := CheckPositive("-workers", 1); err != nil {
		t.Errorf("1 rejected: %v", err)
	}
	if err := CheckPositive("-workers", 8); err != nil {
		t.Errorf("8 rejected: %v", err)
	}
	for _, v := range []int{0, -1, -100} {
		err := CheckPositive("-workers", v)
		if err == nil {
			t.Errorf("%d accepted", v)
		} else if !strings.Contains(err.Error(), "-workers") {
			t.Errorf("error does not name the flag: %v", err)
		}
	}
}

func TestRequireString(t *testing.T) {
	if err := RequireString("-model", "model.json"); err != nil {
		t.Errorf("non-empty rejected: %v", err)
	}
	err := RequireString("serve: -model", "")
	if err == nil {
		t.Error("empty accepted")
	} else if !strings.Contains(err.Error(), "serve: -model") {
		t.Errorf("error does not name the flag: %v", err)
	}
}

func TestParseStrategy(t *testing.T) {
	want := map[string]split.Strategy{
		"":    split.UDT,
		"udt": split.UDT,
		"UDT": split.UDT,
		"bp":  split.BP,
		"lp":  split.LP,
		"gp":  split.GP,
		"Es":  split.ES,
	}
	for in, st := range want {
		got, err := ParseStrategy(in)
		if err != nil || got != st {
			t.Errorf("ParseStrategy(%q) = %v, %v; want %v", in, got, err, st)
		}
	}
	if _, err := ParseStrategy("bogus"); err == nil {
		t.Error("bogus strategy accepted")
	}
}
