// Package cliutil holds flag parsing and validation shared by the udtree,
// udtbench and udtserve commands.
package cliutil

import (
	"fmt"
	"strings"

	"udt/internal/split"
)

// CheckPositive rejects non-positive parallelism knobs with a clear error
// instead of silently running the serial zero-value path.
func CheckPositive(name string, v int) error {
	if v < 1 {
		return fmt.Errorf("%s must be >= 1 (got %d)", name, v)
	}
	return nil
}

// RequireString rejects an empty value for a required string flag.
func RequireString(name, v string) error {
	if v == "" {
		return fmt.Errorf("%s is required", name)
	}
	return nil
}

// ParseStrategy maps the CLI strategy names onto the §5 ladder. The empty
// string means the exhaustive baseline.
func ParseStrategy(s string) (split.Strategy, error) {
	switch strings.ToLower(s) {
	case "udt", "":
		return split.UDT, nil
	case "bp":
		return split.BP, nil
	case "lp":
		return split.LP, nil
	case "gp":
		return split.GP, nil
	case "es":
		return split.ES, nil
	}
	return 0, fmt.Errorf("unknown strategy %q (want udt|bp|lp|gp|es)", s)
}
