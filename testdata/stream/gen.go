//go:build ignore

// Command gen regenerates the cross-surface NDJSON golden fixtures in this
// directory:
//
//	go run testdata/stream/gen.go
//
// It trains a deterministic single tree, writes the model document
// (model.json), the same test tuples in both transports — the CSV
// interchange format udtree reads (input.csv) and the JSON wire format
// udtserve's /classify/stream reads (input.ndjson) — and the expected
// classification stream (golden.ndjson). Both cmd/udtree (predict -format
// ndjson) and cmd/udtserve (/classify/stream) pin their output to
// golden.ndjson, which is what proves the CLI and the server speak the same
// stream protocol byte for byte.
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"udt"
	"udt/internal/modelio"
)

func main() {
	dir := filepath.Join("testdata", "stream")

	// A deterministic separable training set: two numeric attributes, three
	// classes at x ≈ 0, 10, 20.
	train := udt.NewDataset("golden-train", 2, []string{"lo", "mid", "hi"})
	for i := 0; i < 30; i++ {
		c := i % 3
		base := float64(c * 10)
		off := float64(i%5) / 5
		p1, err := udt.NewPDF(
			[]float64{base + off, base + 1 + off, base + 2 + off},
			[]float64{1, 2, 1})
		check(err)
		train.Add(c, p1, udt.PointPDF(base+off/2))
	}
	tree, err := udt.Build(train, udt.Config{MinWeight: 2})
	check(err)
	blob, err := json.MarshalIndent(tree, "", "  ")
	check(err)
	check(os.WriteFile(filepath.Join(dir, "model.json"), blob, 0o644))

	// Test tuples exercising every wire value style that the CSV transport
	// can also carry: point values, equal-mass sample lists, and explicit
	// weighted pdfs. CSV rows and NDJSON lines are index-aligned.
	type fixture struct {
		csvCells [2]string // input.csv numeric cells
		wire     string    // input.ndjson line
		class    int       // label for the CSV class column
	}
	fixtures := []fixture{
		{[2]string{"1.5", "0.2"}, `{"num": [1.5, 0.2]}`, 0},
		{[2]string{"10;11;12", "10.1"}, `{"num": [[10, 11, 12], 10.1]}`, 1},
		{[2]string{"20@1;21@2;22@1", "20.3"}, `{"num": [{"xs": [20, 21, 22], "masses": [1, 2, 1]}, 20.3]}`, 2},
		// Straddlers: pdf mass on both sides of the inter-cluster splits on
		// both attributes, so the answered distributions are fractional and
		// the golden file pins float formatting, not just argmax labels.
		{[2]string{"2;11", "0.3;10.2"}, `{"num": [[2, 11], [0.3, 10.2]]}`, 1},
		{[2]string{"1@3;21@1", "0.1@3;20.2@1"}, `{"num": [{"xs": [1, 21], "masses": [3, 1]}, {"xs": [0.1, 20.2], "masses": [3, 1]}]}`, 0},
		{[2]string{"11;21;22", "10.3;20.1;20.3"}, `{"num": [[11, 21, 22], [10.3, 20.1, 20.3]]}`, 2},
	}

	var csvBuf, ndjsonBuf bytes.Buffer
	fmt.Fprintln(&csvBuf, "x,y,class")
	for _, f := range fixtures {
		fmt.Fprintf(&csvBuf, "%s,%s,%s\n", f.csvCells[0], f.csvCells[1], train.Classes[f.class])
		fmt.Fprintln(&ndjsonBuf, f.wire)
	}
	check(os.WriteFile(filepath.Join(dir, "input.csv"), csvBuf.Bytes(), 0o644))
	check(os.WriteFile(filepath.Join(dir, "input.ndjson"), ndjsonBuf.Bytes(), 0o644))

	// The golden stream: decode each wire line exactly as the server does
	// and classify through the compiled engine.
	mdl, err := modelio.Decode(blob)
	check(err)
	classes, numAttrs, catAttrs := mdl.Schema()
	var golden bytes.Buffer
	enc := json.NewEncoder(&golden)
	for i, f := range fixtures {
		var wt modelio.WireTuple
		check(json.Unmarshal([]byte(f.wire), &wt))
		tu, err := wt.Decode(numAttrs, catAttrs)
		check(err)
		check(enc.Encode(modelio.NewStreamResult(i+1, classes, mdl.Classify(tu))))
	}
	check(os.WriteFile(filepath.Join(dir, "golden.ndjson"), golden.Bytes(), 0o644))
	fmt.Printf("wrote %d fixtures to %s\n", len(fixtures), dir)
}

func check(err error) {
	if err != nil {
		panic(err)
	}
}
