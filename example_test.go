package udt_test

import (
	"encoding/json"
	"fmt"

	"udt"
)

// ExampleBuild reproduces the paper's worked example (Table 1): six
// one-attribute tuples whose means collapse into two groups. The
// Averaging tree cannot discern them; the Distribution-based tree can.
func ExampleBuild() {
	ds := udt.NewDataset("table1", 1, []string{"A", "B"})
	ds.Add(0, udt.PointPDF(2))
	ds.Add(0, mustPDF([]float64{-6, 2}, []float64{1, 1}))
	ds.Add(0, mustPDF([]float64{-1, 1, 10}, []float64{5, 1, 2}))
	ds.Add(1, udt.PointPDF(-2))
	ds.Add(1, mustPDF([]float64{-2, 6}, []float64{1, 1}))
	ds.Add(1, mustPDF([]float64{-4, 0}, []float64{1, 1}))

	cfg := udt.Config{MinWeight: 0.01}
	avg, _ := udt.BuildAveraging(ds, cfg)
	dist, _ := udt.Build(ds, cfg)

	fmt.Printf("Averaging:          %.0f%%\n", udt.Accuracy(avg, ds)*100)
	fmt.Printf("Distribution-based: %.0f%%\n", udt.Accuracy(dist, ds)*100)
	// Output:
	// Averaging:          67%
	// Distribution-based: 100%
}

// ExampleTree_Classify shows the probabilistic classification of §3.2: a
// test tuple whose pdf straddles the split points receives a probability
// for every class.
func ExampleTree_Classify() {
	ds := udt.NewDataset("demo", 1, []string{"low", "high"})
	for i := 0; i < 20; i++ {
		v := float64(i % 2 * 10)
		p, _ := udt.UniformPDF(v-1, v+1, 21)
		ds.Add(i%2, p)
	}
	tree, _ := udt.Build(ds, udt.Config{MinWeight: 1})

	// A tuple spread evenly over [-1, 11]: most of its mass lies beyond
	// the learned split, so "high" dominates but "low" keeps probability.
	q, _ := udt.UniformPDF(-1, 11, 25)
	dist := tree.Classify(&udt.Tuple{Num: []*udt.PDF{q}, Weight: 1})
	fmt.Printf("P(low)+P(high) = %.0f\n", dist[0]+dist[1])
	fmt.Printf("P(high) > P(low) > 0: %v\n", dist[1] > dist[0] && dist[0] > 0)
	// Output:
	// P(low)+P(high) = 1
	// P(high) > P(low) > 0: true
}

// ExampleTree_Compile shows the serving path: a built tree is flattened
// into the compiled flat-array engine, whose batch APIs classify many
// tuples concurrently and return exactly the recursive results.
func ExampleTree_Compile() {
	ds := udt.NewDataset("demo", 1, []string{"low", "high"})
	for i := 0; i < 20; i++ {
		v := float64(i % 2 * 10)
		p, _ := udt.UniformPDF(v-1, v+1, 21)
		ds.Add(i%2, p)
	}
	tree, _ := udt.Build(ds, udt.Config{MinWeight: 1})

	compiled, _ := tree.Compile()
	preds := compiled.PredictBatch(ds.Tuples, 4) // up to 4 workers
	agree := 0
	for i, tu := range ds.Tuples {
		if preds[i] == tree.Predict(tu) {
			agree++
		}
	}
	fmt.Printf("nodes: %d\n", compiled.NumNodes())
	fmt.Printf("batch agrees with recursive on %d/20 tuples\n", agree)
	// Output:
	// nodes: 3
	// batch agrees with recursive on 20/20 tuples
}

// ExampleTree_MarshalJSON round-trips a model through its JSON document —
// the format "udtree train" writes and "udtserve -model" loads. The
// restored tree classifies identically without the training data.
func ExampleTree_MarshalJSON() {
	ds := udt.NewDataset("table1", 1, []string{"A", "B"})
	ds.Add(0, udt.PointPDF(2))
	ds.Add(0, mustPDF([]float64{-6, 2}, []float64{1, 1}))
	ds.Add(0, mustPDF([]float64{-1, 1, 10}, []float64{5, 1, 2}))
	ds.Add(1, udt.PointPDF(-2))
	ds.Add(1, mustPDF([]float64{-2, 6}, []float64{1, 1}))
	ds.Add(1, mustPDF([]float64{-4, 0}, []float64{1, 1}))
	tree, _ := udt.Build(ds, udt.Config{MinWeight: 0.01})

	blob, _ := json.Marshal(tree)
	var restored udt.Tree
	if err := json.Unmarshal(blob, &restored); err != nil {
		panic(err)
	}

	same := true
	for _, tu := range ds.Tuples {
		if restored.Predict(tu) != tree.Predict(tu) {
			same = false
		}
	}
	fmt.Printf("restored %d nodes, identical predictions: %v\n",
		restored.Stats.Nodes, same)
	// Output:
	// restored 13 nodes, identical predictions: true
}

// ExampleTrainForest shows the ensemble path: a bagged forest of compiled
// trees is trained with a fixed seed (deterministic at any Workers value),
// classifies a batch, and round-trips through the versioned multi-tree JSON
// container that "udtserve" loads alongside legacy single-tree models.
func ExampleTrainForest() {
	ds := udt.NewDataset("demo", 1, []string{"low", "high"})
	for i := 0; i < 40; i++ {
		v := float64(i % 2 * 10)
		p, _ := udt.UniformPDF(v-1, v+1, 21)
		ds.Add(i%2, p)
	}
	f, _ := udt.TrainForest(ds, udt.ForestConfig{
		Trees:      7,
		Seed:       1,
		Workers:    4,
		TreeConfig: udt.Config{MinWeight: 1},
	})

	preds := f.PredictBatch(ds.Tuples, 4)
	blob, _ := json.Marshal(f)
	var restored udt.Forest
	if err := json.Unmarshal(blob, &restored); err != nil {
		panic(err)
	}
	same := true
	for i, tu := range ds.Tuples {
		if restored.Predict(tu) != preds[i] {
			same = false
		}
	}
	fmt.Printf("trees: %d\n", restored.NumTrees())
	fmt.Printf("restored predictions identical: %v\n", same)
	fmt.Printf("out-of-bag estimate available: %v\n", f.OOB.Evaluated > ds.Len()/2)
	// Output:
	// trees: 7
	// restored predictions identical: true
	// out-of-bag estimate available: true
}

// ExamplePDFFromSamples models an attribute directly from repeated
// measurements, the JapaneseVowel pattern of §4.3.
func ExamplePDFFromSamples() {
	readings := []float64{36.5, 36.7, 36.6, 36.8, 36.6}
	p, _ := udt.PDFFromSamples(readings)
	fmt.Printf("mean %.2f, support [%.1f, %.1f]\n", p.Mean(), p.Min(), p.Max())
	// Output:
	// mean 36.64, support [36.5, 36.8]
}

func mustPDF(xs, ms []float64) *udt.PDF {
	p, err := udt.NewPDF(xs, ms)
	if err != nil {
		panic(err)
	}
	return p
}
