package udt_test

import (
	"bytes"
	"math"
	"math/rand"
	"testing"

	"udt"
)

// exampleDataset builds a small two-class dataset through the public API.
func exampleDataset(t testing.TB, n int) *udt.Dataset {
	t.Helper()
	ds := udt.NewDataset("api", 2, []string{"neg", "pos"})
	rng := rand.New(rand.NewSource(21))
	for i := 0; i < n; i++ {
		class := i % 2
		c := float64(class)*4 + rng.NormFloat64()*0.5
		p1, err := udt.GaussianPDF(c, 0.25, c-0.5, c+0.5, 30)
		if err != nil {
			t.Fatal(err)
		}
		p2, err := udt.UniformPDF(c-0.2, c+0.2, 10)
		if err != nil {
			t.Fatal(err)
		}
		ds.Add(class, p1, p2)
	}
	return ds
}

func TestPublicAPIEndToEnd(t *testing.T) {
	ds := exampleDataset(t, 60)
	tree, err := udt.Build(ds, udt.Config{Strategy: udt.StrategyES, PostPrune: true})
	if err != nil {
		t.Fatal(err)
	}
	if acc := udt.Accuracy(tree, ds); acc < 0.95 {
		t.Fatalf("accuracy = %v", acc)
	}
	dist := tree.Classify(ds.Tuples[0])
	sum := 0.0
	for _, p := range dist {
		sum += p
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("classification distribution sums to %v", sum)
	}
	if len(tree.Rules()) == 0 {
		t.Fatal("no rules extracted")
	}
}

func TestPublicAPIAveraging(t *testing.T) {
	ds := exampleDataset(t, 40)
	avg, err := udt.BuildAveraging(ds, udt.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if acc := udt.Accuracy(avg, ds); acc < 0.9 {
		t.Fatalf("AVG accuracy = %v", acc)
	}
}

func TestPublicAPICrossValidate(t *testing.T) {
	ds := exampleDataset(t, 50)
	r, err := udt.CrossValidate(ds, 5, udt.Config{Strategy: udt.StrategyGP}, rand.New(rand.NewSource(3)))
	if err != nil {
		t.Fatal(err)
	}
	if r.Accuracy < 0.9 {
		t.Fatalf("CV accuracy = %v", r.Accuracy)
	}
	if r.Search.EntropyCalcs() == 0 {
		t.Fatal("search stats not surfaced")
	}
}

func TestPublicAPIMeasures(t *testing.T) {
	ds := exampleDataset(t, 40)
	for _, m := range []udt.Measure{udt.Entropy, udt.Gini, udt.GainRatio} {
		tree, err := udt.Build(ds, udt.Config{Measure: m, Strategy: udt.StrategyGP})
		if err != nil {
			t.Fatalf("measure %v: %v", m, err)
		}
		if acc := udt.Accuracy(tree, ds); acc < 0.9 {
			t.Fatalf("measure %v accuracy = %v", m, acc)
		}
	}
}

func TestPublicAPIInject(t *testing.T) {
	pts := &udt.Points{
		Name:    "pts",
		Attrs:   []string{"x"},
		Classes: []string{"a", "b"},
		Rows:    [][]float64{{0}, {10}, {1}, {11}},
		Labels:  []int{0, 1, 0, 1},
	}
	ds, err := udt.Inject(pts, udt.InjectConfig{W: 0.1, S: 25, Model: udt.GaussianModel})
	if err != nil {
		t.Fatal(err)
	}
	if ds.Len() != 4 {
		t.Fatalf("injected %d tuples", ds.Len())
	}
	if ds.Tuples[0].Num[0].NumSamples() != 25 {
		t.Fatalf("pdf has %d samples", ds.Tuples[0].Num[0].NumSamples())
	}
}

func TestPublicAPICSVRoundTrip(t *testing.T) {
	ds := exampleDataset(t, 10)
	var buf bytes.Buffer
	if err := udt.WriteCSV(&buf, ds); err != nil {
		t.Fatal(err)
	}
	back, err := udt.ReadCSV(&buf, "api")
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != ds.Len() {
		t.Fatalf("round trip lost tuples")
	}
}

func TestPublicAPIPDFHelpers(t *testing.T) {
	p, err := udt.NewPDF([]float64{1, 2, 3}, []float64{1, 2, 1})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p.Mean()-2) > 1e-12 {
		t.Fatalf("mean = %v", p.Mean())
	}
	if udt.PointPDF(5).Mean() != 5 {
		t.Fatal("PointPDF broken")
	}
	raw, err := udt.PDFFromSamples([]float64{36.5, 36.7, 36.6})
	if err != nil {
		t.Fatal(err)
	}
	if raw.NumSamples() != 3 {
		t.Fatal("PDFFromSamples broken")
	}
	if udt.NewCatPoint(1, 3).Mode() != 1 {
		t.Fatal("NewCatPoint broken")
	}
}

func TestPublicAPITrainTestAndConfusion(t *testing.T) {
	train := exampleDataset(t, 60)
	test := exampleDataset(t, 30)
	r, err := udt.TrainTest(train, test, udt.Config{Strategy: udt.StrategyES})
	if err != nil {
		t.Fatal(err)
	}
	if r.Accuracy < 0.9 {
		t.Fatalf("accuracy = %v", r.Accuracy)
	}
	tree, _ := udt.Build(train, udt.Config{})
	m := udt.Confusion(tree, test)
	total := 0.0
	for _, row := range m {
		for _, v := range row {
			total += v
		}
	}
	if math.Abs(total-float64(test.Len())) > 1e-9 {
		t.Fatalf("confusion total = %v", total)
	}
}
