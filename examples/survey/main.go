// Survey: the range-answer scenario from the paper's introduction ("How
// many hours of TV do you watch each week?" — "6-8 hours"), mixing a
// numeric attribute whose values are ranges (uniform pdfs, the
// quantisation model), a numeric attribute with exact answers, and an
// uncertain *categorical* attribute (§7.2): the respondent's favourite
// content category inferred from viewing logs as a distribution.
//
//	go run ./examples/survey
package main

import (
	"fmt"
	"log"
	"math/rand"

	"udt"
)

func main() {
	rng := rand.New(rand.NewSource(17))

	ds := udt.NewDataset("survey", 2, []string{"casual", "enthusiast"})
	ds.NumAttrs[0].Name = "tv_hours"
	ds.NumAttrs[1].Name = "age"
	ds.CatAttrs = []udt.Attribute{{
		Name:   "category",
		Domain: []string{"news", "sports", "drama"},
	}}

	addRespondent := func(class int, hours, age float64, catMix udt.CatDist) {
		// Respondents answer the hours question with a 2-hour bracket:
		// a uniform pdf over [floor2(h), floor2(h)+2].
		lo := float64(int(hours/2)) * 2
		hPdf, err := udt.UniformPDF(lo, lo+2, 20)
		if err != nil {
			log.Fatal(err)
		}
		tu := ds.Add(class, hPdf, udt.PointPDF(age))
		tu.Cat = []udt.CatDist{catMix}
	}

	for i := 0; i < 150; i++ {
		if i%2 == 0 {
			// Casual: few hours, mostly news; age anything.
			addRespondent(0,
				2+rng.Float64()*6,
				20+rng.Float64()*50,
				udt.CatDist{0.6 + rng.Float64()*0.3, 0.2, 0.1})
		} else {
			// Enthusiast: many hours, drama/sports-leaning.
			addRespondent(1,
				9+rng.Float64()*14,
				20+rng.Float64()*50,
				udt.CatDist{0.1, 0.3 + rng.Float64()*0.2, 0.5})
		}
	}
	for _, tu := range ds.Tuples {
		if err := tu.Cat[0].Normalize(); err != nil {
			log.Fatal(err)
		}
	}

	tree, err := udt.Build(ds, udt.Config{Strategy: udt.StrategyGP, PostPrune: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("survey classifier: %s, self-accuracy %.1f%%\n\n",
		tree, udt.Accuracy(tree, ds)*100)

	// A respondent who answered "8-10 hours", age 35, watching logs split
	// 50/30/20 across categories.
	hours, _ := udt.UniformPDF(8, 10, 20)
	resp := &udt.Tuple{
		Num:    []*udt.PDF{hours, udt.PointPDF(35)},
		Cat:    []udt.CatDist{{0.5, 0.3, 0.2}},
		Weight: 1,
	}
	dist := tree.Classify(resp)
	fmt.Printf("respondent \"8-10 hours\"/35y/news-leaning: P(casual)=%.3f P(enthusiast)=%.3f\n\n",
		dist[0], dist[1])

	fmt.Println("rules:")
	for _, r := range tree.Rules() {
		fmt.Println(" ", r)
	}
}
