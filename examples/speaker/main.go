// Speaker: a JapaneseVowel-style speaker-identification task (§4.3 of the
// paper). Each utterance yields 7-29 samples of every LPC cepstral
// coefficient over time; the samples of each coefficient form the pdf of
// that attribute. The task is to identify which of nine speakers produced
// an unseen utterance.
//
//	go run ./examples/speaker
package main

import (
	"fmt"
	"log"
	"math/rand"
	"sort"

	"udt"
)

const (
	speakers = 9
	coeffs   = 12
)

// speakerVoice is a speaker's characteristic profile: a mean level and a
// frame-to-frame variability per coefficient. Two speakers can share
// similar mean coefficients yet differ strongly in how much each
// coefficient fluctuates across frames — a signature that survives in the
// pdf but is destroyed by averaging.
type speakerVoice struct {
	level  [coeffs]float64
	spread [coeffs]float64
}

func newVoices(rng *rand.Rand) []speakerVoice {
	voices := make([]speakerVoice, speakers)
	for s := range voices {
		for j := 0; j < coeffs; j++ {
			voices[s].level[j] = rng.NormFloat64() * 0.45
			voices[s].spread[j] = 0.15 + rng.Float64()*0.85
		}
	}
	return voices
}

// utterance simulates one vowel utterance: each coefficient drifts around
// the speaker's profile over the 7-29 analysis frames.
func utterance(v speakerVoice, rng *rand.Rand) []*udt.PDF {
	frames := 7 + rng.Intn(23)
	pdfs := make([]*udt.PDF, coeffs)
	for j := 0; j < coeffs; j++ {
		obs := make([]float64, frames)
		drift := rng.NormFloat64() * 0.25 // per-utterance offset
		for f := range obs {
			obs[f] = v.level[j] + drift + rng.NormFloat64()*v.spread[j]
		}
		p, err := udt.PDFFromSamples(obs)
		if err != nil {
			log.Fatal(err)
		}
		pdfs[j] = p
	}
	return pdfs
}

func makeDataset(name string, n int, voices []speakerVoice, rng *rand.Rand) *udt.Dataset {
	classes := make([]string, speakers)
	for s := range classes {
		classes[s] = fmt.Sprintf("speaker-%d", s+1)
	}
	ds := udt.NewDataset(name, coeffs, classes)
	for j := 0; j < coeffs; j++ {
		ds.NumAttrs[j].Name = fmt.Sprintf("LPC%d", j+1)
	}
	for i := 0; i < n; i++ {
		s := i % speakers
		ds.Add(s, utterance(voices[s], rng)...)
	}
	return ds
}

func main() {
	rng := rand.New(rand.NewSource(99))
	voices := newVoices(rng)
	train := makeDataset("utterances", 270, voices, rng)
	test := makeDataset("utterances-test", 370, voices, rng)

	cfg := udt.Config{Strategy: udt.StrategyES, PostPrune: true}

	avgRes, err := udt.TrainTest(train.Means(), test, cfg)
	if err != nil {
		log.Fatal(err)
	}
	udtRes, err := udt.TrainTest(train, test, cfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("speaker identification, %d train / %d test utterances, %d speakers\n",
		train.Len(), test.Len(), speakers)
	fmt.Printf("  Averaging          : %.2f%%\n", avgRes.Accuracy*100)
	fmt.Printf("  Distribution-based : %.2f%%\n", udtRes.Accuracy*100)

	// Rank the speakers for one test utterance — the probabilistic
	// classification result of §3.2.
	tree, err := udt.Build(train, cfg)
	if err != nil {
		log.Fatal(err)
	}
	tu := test.Tuples[0]
	dist := tree.Classify(tu)
	type cand struct {
		speaker string
		p       float64
	}
	cands := make([]cand, len(dist))
	for c, p := range dist {
		cands[c] = cand{train.Classes[c], p}
	}
	sort.Slice(cands, func(i, j int) bool { return cands[i].p > cands[j].p })
	fmt.Printf("\ntop candidates for one utterance (true %s):\n", train.Classes[tu.Class])
	for _, c := range cands[:3] {
		fmt.Printf("  %-10s %.3f\n", c.speaker, c.p)
	}
}
