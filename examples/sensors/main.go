// Sensors: the repeated-measurements scenario from the paper's
// introduction. A patient's temperature and heart rate are sampled many
// times a day; instead of averaging the readings away, the full empirical
// distribution of each vital sign becomes the attribute value
// (udt.PDFFromSamples), and the Distribution-based tree exploits it.
//
// The example compares AVG and UDT accuracy on held-out patients — the
// paper's central claim (§4.3) in a runnable program.
//
//	go run ./examples/sensors
package main

import (
	"fmt"
	"log"
	"math/rand"

	"udt"
)

// patientReadings simulates a day of vitals for one patient. Condition 1
// ("unstable") patients have the same *mean* vitals as healthy ones but
// much larger swings — exactly the situation where averaging destroys the
// signal.
func patientReadings(class int, rng *rand.Rand) (temps, rates []float64) {
	nT := 8 + rng.Intn(8)   // temperature taken 8-15 times
	nR := 20 + rng.Intn(20) // heart rate sampled 20-39 times
	baseT := 36.8 + rng.NormFloat64()*0.1
	baseR := 72 + rng.NormFloat64()*4
	swingT, swingR := 0.15, 3.0
	if class == 1 {
		swingT, swingR = 0.75, 14.0 // unstable: same mean, larger variance
	}
	for i := 0; i < nT; i++ {
		temps = append(temps, baseT+rng.NormFloat64()*swingT)
	}
	for i := 0; i < nR; i++ {
		rates = append(rates, baseR+rng.NormFloat64()*swingR)
	}
	return temps, rates
}

func makeDataset(n int, rng *rand.Rand) *udt.Dataset {
	ds := udt.NewDataset("vitals", 2, []string{"stable", "unstable"})
	ds.NumAttrs[0].Name = "temperature"
	ds.NumAttrs[1].Name = "heart_rate"
	for i := 0; i < n; i++ {
		class := i % 2
		temps, rates := patientReadings(class, rng)
		pT, err := udt.PDFFromSamples(temps)
		if err != nil {
			log.Fatal(err)
		}
		pR, err := udt.PDFFromSamples(rates)
		if err != nil {
			log.Fatal(err)
		}
		ds.Add(class, pT, pR)
	}
	return ds
}

func main() {
	rng := rand.New(rand.NewSource(7))
	train := makeDataset(200, rng)
	test := makeDataset(100, rng)

	cfg := udt.Config{Strategy: udt.StrategyES, PostPrune: true}

	avgRes, err := udt.TrainTest(train.Means(), test, cfg)
	if err != nil {
		log.Fatal(err)
	}
	udtRes, err := udt.TrainTest(train, test, cfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("classifying patients as stable/unstable from repeated vital-sign readings")
	fmt.Printf("  Averaging           : %.1f%% accuracy (means only — the swings vanish)\n", avgRes.Accuracy*100)
	fmt.Printf("  Distribution-based  : %.1f%% accuracy (full reading distributions)\n", udtRes.Accuracy*100)
	fmt.Printf("  UDT search work     : %d entropy calculations (strategy %v)\n",
		udtRes.Search.EntropyCalcs(), udt.StrategyES)

	// Show one patient's classification as a distribution.
	tu := test.Tuples[1]
	tree, err := udt.Build(train, cfg)
	if err != nil {
		log.Fatal(err)
	}
	p := tree.Classify(tu)
	fmt.Printf("\nexample patient (true %s): P(stable)=%.3f P(unstable)=%.3f\n",
		train.Classes[tu.Class], p[0], p[1])
}
