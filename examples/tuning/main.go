// Tuning: the §4.4 question — how wide should the synthetic error model
// be? Sensor readings arrive with unknown noise; candidate widths are
// scored by repeated cross-validation and the plateau midpoint is chosen
// (Eq. 2's practical side). The example also demonstrates the §2
// missing-value technique: gaps are filled with the attribute's average
// pdf before training.
//
//	go run ./examples/tuning
package main

import (
	"fmt"
	"log"
	"math/rand"

	"udt"
)

func main() {
	rng := rand.New(rand.NewSource(2024))

	// Point readings contaminated with hidden Gaussian noise (the "true"
	// noise level is unknown to the analyst).
	const hiddenNoise = 0.35
	pts := &udt.Points{
		Name:    "sensor",
		Attrs:   []string{"reading"},
		Classes: []string{"low", "high"},
	}
	for i := 0; i < 120; i++ {
		class := i % 2
		v := float64(class) + rng.NormFloat64()*hiddenNoise
		pts.Rows = append(pts.Rows, []float64{v})
		pts.Labels = append(pts.Labels, class)
	}

	// Sweep candidate widths; pick the plateau midpoint (§4.4).
	cfg := udt.Config{Strategy: udt.StrategyGP, MinWeight: 4, MaxDepth: 8, PostPrune: true}
	ws := []float64{0.01, 0.05, 0.10, 0.20, 0.40}
	bestW, points, err := udt.TuneWidth(pts, ws, 30, udt.GaussianModel, cfg, 4, 5, rng)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("width sweep (mean CV accuracy ± stderr):")
	for _, p := range points {
		fmt.Printf("  w=%4.0f%%  %.1f%% ± %.1f%%\n", p.W*100, p.Mean*100, p.StdErr*100)
	}
	fmt.Printf("chosen width: %.0f%%\n\n", bestW*100)

	// Build the final model at the tuned width — after repairing missing
	// values with the §2 average-pdf technique.
	ds, err := udt.Inject(pts, udt.InjectConfig{W: bestW, S: 100, Model: udt.GaussianModel})
	if err != nil {
		log.Fatal(err)
	}
	// Knock out 10% of the values to simulate collection gaps.
	missing := 0
	for _, tu := range ds.Tuples {
		if rng.Float64() < 0.1 {
			tu.Num[0] = nil
			missing++
		}
	}
	repaired, err := udt.FillMissing(ds)
	if err != nil {
		log.Fatal(err)
	}
	tree, err := udt.Build(repaired, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("repaired %d missing values; final model: %s\n", missing, tree)
	fmt.Printf("training accuracy %.1f%%, Brier %.4f, log-loss %.4f\n",
		udt.Accuracy(tree, repaired)*100, udt.Brier(tree, repaired), udt.LogLoss(tree, repaired))
}
