// Quickstart: build an uncertain decision tree from scratch, classify a
// tuple whose value is itself uncertain, and print the extracted rules.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"math/rand"

	"udt"
)

func main() {
	// A two-attribute, two-class dataset. Imagine a quality gate on a
	// production line: each part's diameter and weight are measured by
	// noisy instruments, so every reading is a small Gaussian pdf rather
	// than an exact number.
	ds := udt.NewDataset("parts", 2, []string{"ok", "defective"})
	ds.NumAttrs[0].Name = "diameter"
	ds.NumAttrs[1].Name = "weight"

	rng := rand.New(rand.NewSource(42))
	addPart := func(class int, diameter, weight float64) {
		// Instrument error: ±1.5% of reading, modelled as a truncated
		// Gaussian with 50 sample points (§4.3 of the paper).
		d, err := udt.GaussianPDF(diameter, diameter*0.015, diameter*0.97, diameter*1.03, 50)
		if err != nil {
			log.Fatal(err)
		}
		w, err := udt.GaussianPDF(weight, weight*0.015, weight*0.97, weight*1.03, 50)
		if err != nil {
			log.Fatal(err)
		}
		ds.Add(class, d, w)
	}
	for i := 0; i < 100; i++ {
		if i%2 == 0 { // in-spec parts
			addPart(0, 25+rng.NormFloat64()*0.3, 110+rng.NormFloat64()*2)
		} else { // defective: slightly oversized or underweight
			addPart(1, 26.2+rng.NormFloat64()*0.4, 104+rng.NormFloat64()*2)
		}
	}

	// Distribution-based construction with the paper's fastest safe
	// pruning strategy (UDT-ES) and C4.5-style post-pruning.
	tree, err := udt.Build(ds, udt.Config{
		Strategy:  udt.StrategyES,
		PostPrune: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("built %s using %d entropy calculations\n\n",
		tree, tree.Stats.Search.EntropyCalcs())

	// Classify a borderline part. The answer is a probability
	// distribution over classes, not just a label (§3.2).
	d, _ := udt.GaussianPDF(25.9, 0.4, 24.7, 27.1, 50)
	w, _ := udt.GaussianPDF(107, 1.6, 102.2, 111.8, 50)
	part := &udt.Tuple{Num: []*udt.PDF{d, w}, Weight: 1}
	dist := tree.Classify(part)
	fmt.Printf("borderline part: P(ok)=%.3f  P(defective)=%.3f -> predict %q\n\n",
		dist[0], dist[1], tree.Classes[tree.Predict(part)])

	fmt.Println("decision rules:")
	for _, r := range tree.Rules() {
		fmt.Println(" ", r)
	}
}
