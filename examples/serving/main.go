// Serving: train a model, flatten it with Compile, and push a large batch
// through the allocation-free inference engine — the same path cmd/udtserve
// runs behind POST /classify. Writes model.json so the server can be tried
// immediately afterwards:
//
//	go run ./examples/serving
//	go run ./cmd/udtserve -model model.json &
//	curl -s localhost:8080/classify -d '{"num": [0.5, [48, 52, 50]]}'
package main

import (
	"encoding/json"
	"fmt"
	"log"
	"math/rand"
	"os"
	"runtime"
	"time"

	"udt"
)

func main() {
	// A sensor-fusion workload: two noisy channels, two classes.
	rng := rand.New(rand.NewSource(7))
	ds := udt.NewDataset("sensors", 2, []string{"nominal", "alarm"})
	ds.NumAttrs[0].Name = "pressure"
	ds.NumAttrs[1].Name = "temperature"
	for i := 0; i < 400; i++ {
		class := i % 2
		p := float64(class) + rng.NormFloat64()*0.4
		c1, err := udt.GaussianPDF(p, 0.2, p-0.8, p+0.8, 30)
		if err != nil {
			log.Fatal(err)
		}
		t := 50 + float64(class)*4 + rng.NormFloat64()
		c2, err := udt.GaussianPDF(t, 0.5, t-2, t+2, 30)
		if err != nil {
			log.Fatal(err)
		}
		ds.Add(class, c1, c2)
	}

	tree, err := udt.Build(ds, udt.Config{Strategy: udt.StrategyES, PostPrune: true, MinWeight: 1})
	if err != nil {
		log.Fatal(err)
	}

	// Compile once at load time; classify forever after without chasing a
	// pointer or touching the allocator.
	compiled, err := tree.Compile()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("model: %s -> %d flat nodes\n", tree, compiled.NumNodes())

	// A 100k-tuple batch, first single-threaded, then on every core.
	batch := make([]*udt.Tuple, 0, 100000)
	for len(batch) < cap(batch) {
		batch = append(batch, ds.Tuples[rng.Intn(ds.Len())])
	}
	for _, workers := range []int{1, runtime.NumCPU()} {
		start := time.Now()
		preds := compiled.PredictBatch(batch, workers)
		elapsed := time.Since(start)
		alarms := 0
		for _, p := range preds {
			if p == 1 {
				alarms++
			}
		}
		fmt.Printf("workers=%-2d %d tuples in %v (%.0f tuples/s), %d alarms\n",
			workers, len(batch), elapsed.Round(time.Millisecond),
			float64(len(batch))/elapsed.Seconds(), alarms)
	}

	// Persist the model for udtserve.
	blob, err := json.MarshalIndent(tree, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	if err := os.WriteFile("model.json", blob, 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Println("wrote model.json — serve it with: go run ./cmd/udtserve -model model.json")
}
