package udt_test

// Benchmark harness: one benchmark per table/figure of the paper's
// evaluation (the per-experiment index lives in DESIGN.md, the measured
// numbers in EXPERIMENTS.md). Benchmarks run at a reduced dataset scale so
// `go test -bench=.` completes in minutes; the cmd/udtbench binary runs the
// same drivers at arbitrary scale. Custom metrics surface the quantities
// the paper reports: accuracy percentages (Table 3, Fig 4) and entropy
// calculation counts (Figs 6-9).

import (
	"testing"

	"udt/internal/experiments"
	"udt/internal/split"
)

// benchOpts is the reduced-scale configuration shared by the benchmarks.
func benchOpts(datasets ...string) experiments.Options {
	return experiments.Options{
		Scale:    0.05,
		S:        40,
		W:        0.10,
		Seed:     1,
		Folds:    3,
		Datasets: datasets,
		MaxDepth: 10,
	}
}

// BenchmarkTable3Accuracy regenerates Table 3 (accuracy of AVG vs UDT) on a
// representative dataset subset, reporting the mean accuracies as metrics.
func BenchmarkTable3Accuracy(b *testing.B) {
	o := benchOpts("Iris", "Glass", "Vehicle")
	for i := 0; i < b.N; i++ {
		rows, err := experiments.AccuracyTable(o, []float64{0.05, 0.10})
		if err != nil {
			b.Fatal(err)
		}
		var avg, udtAcc float64
		for _, r := range rows {
			avg += r.AVG
			udtAcc += r.UDT
		}
		b.ReportMetric(avg/float64(len(rows))*100, "%avg")
		b.ReportMetric(udtAcc/float64(len(rows))*100, "%udt")
	}
}

// BenchmarkFig4NoiseModel regenerates the Fig 4 controlled-noise experiment
// on the Segment stand-in.
func BenchmarkFig4NoiseModel(b *testing.B) {
	o := benchOpts()
	for i := 0; i < b.N; i++ {
		points, err := experiments.NoiseModel(o, "Segment",
			[]float64{0, 0.05}, []float64{0, 0.05, 0.10})
		if err != nil {
			b.Fatal(err)
		}
		best := 0.0
		for _, p := range points {
			if !p.Model && p.Accuracy > best {
				best = p.Accuracy
			}
		}
		b.ReportMetric(best*100, "%best")
	}
}

// BenchmarkFig6ExecutionTime regenerates Fig 6: construction time of each
// algorithm, as sub-benchmarks so the per-algorithm ns/op ratios mirror the
// paper's bars.
func BenchmarkFig6ExecutionTime(b *testing.B) {
	for _, algo := range experiments.Algorithms {
		b.Run(algo, func(b *testing.B) {
			o := benchOpts("Glass", "Iris")
			o.Datasets = []string{"Glass"}
			for i := 0; i < b.N; i++ {
				rows, err := experiments.Efficiency(o)
				if err != nil {
					b.Fatal(err)
				}
				for _, r := range rows {
					if r.Algorithm == algo {
						b.ReportMetric(float64(r.EntropyCalcs), "entropy-calcs")
					}
				}
				_ = rows
			}
		})
	}
}

// BenchmarkFig7Pruning regenerates Fig 7: the number of entropy
// calculations of each algorithm relative to exhaustive UDT.
func BenchmarkFig7Pruning(b *testing.B) {
	o := benchOpts("Glass")
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Efficiency(o)
		if err != nil {
			b.Fatal(err)
		}
		var udtCalcs, esCalcs float64
		for _, r := range rows {
			switch r.Algorithm {
			case "UDT":
				udtCalcs = float64(r.EntropyCalcs)
			case "UDT-ES":
				esCalcs = float64(r.EntropyCalcs)
			}
		}
		b.ReportMetric(udtCalcs, "udt-calcs")
		b.ReportMetric(esCalcs, "es-calcs")
		if udtCalcs > 0 {
			b.ReportMetric(esCalcs/udtCalcs*100, "%remaining")
		}
	}
}

// BenchmarkFig8SampleSweep regenerates Fig 8: UDT-ES cost as the number of
// pdf sample points s grows (expected roughly linear).
func BenchmarkFig8SampleSweep(b *testing.B) {
	o := benchOpts("Iris")
	for i := 0; i < b.N; i++ {
		points, err := experiments.SSweep(o, []int{20, 40, 80})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(points[len(points)-1].EntropyCalcs), "calcs@s=80")
	}
}

// BenchmarkFig9WidthSweep regenerates Fig 9: UDT-ES cost as the pdf width w
// grows (heterogeneous intervals become more common).
func BenchmarkFig9WidthSweep(b *testing.B) {
	o := benchOpts("Iris")
	for i := 0; i < b.N; i++ {
		points, err := experiments.WSweep(o, []float64{0.01, 0.10, 0.20})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(points[len(points)-1].EntropyCalcs), "calcs@w=20%")
	}
}

// BenchmarkGiniPruning is the §7.4 generalisation: the efficiency study
// under the Gini index with the Eq. (4) bound.
func BenchmarkGiniPruning(b *testing.B) {
	o := benchOpts("Glass")
	o.Measure = split.Gini
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Efficiency(o)
		if err != nil {
			b.Fatal(err)
		}
		var udtCalcs, esCalcs float64
		for _, r := range rows {
			switch r.Algorithm {
			case "UDT":
				udtCalcs = float64(r.EntropyCalcs)
			case "UDT-ES":
				esCalcs = float64(r.EntropyCalcs)
			}
		}
		if udtCalcs > 0 {
			b.ReportMetric(esCalcs/udtCalcs*100, "%remaining")
		}
	}
}

// BenchmarkAblationESFraction sweeps the UDT-ES end-point sample fraction
// (the design choice §5.3 fixes at 10%) and reports the work at the
// extremes. The resulting tree is identical at every fraction.
func BenchmarkAblationESFraction(b *testing.B) {
	o := benchOpts()
	o.Scale = 0.15
	for i := 0; i < b.N; i++ {
		rows, err := experiments.ESFractionAblation(o, "Glass", []float64{0.05, 0.10, 0.50})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(rows[0].EntropyCalcs), "calcs@5%")
		b.ReportMetric(float64(rows[1].EntropyCalcs), "calcs@10%")
		b.ReportMetric(float64(rows[2].EntropyCalcs), "calcs@50%")
	}
}

// BenchmarkAblationEndPointMode compares §5.1 domain end points against
// the §7.3 percentile artificial end points under UDT-GP.
func BenchmarkAblationEndPointMode(b *testing.B) {
	o := benchOpts()
	o.Scale = 0.15
	for i := 0; i < b.N; i++ {
		rows, err := experiments.EndPointModeAblation(o, "Iris")
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(rows[0].EntropyCalcs), "domain-calcs")
		b.ReportMetric(float64(rows[1].EntropyCalcs), "pctile-calcs")
	}
}

// BenchmarkPointDataPruning is the §7.5 observation: the bounding and
// end-point-sampling techniques also prune split-search work on plain
// point data (s = 1).
func BenchmarkPointDataPruning(b *testing.B) {
	o := benchOpts()
	o.Scale = 0.2
	for i := 0; i < b.N; i++ {
		rows, err := experiments.PointData(o, "Segment")
		if err != nil {
			b.Fatal(err)
		}
		var udtCalcs, esCalcs float64
		for _, r := range rows {
			switch r.Algorithm {
			case "UDT":
				udtCalcs = float64(r.EntropyCalcs)
			case "UDT-ES":
				// On point data every sample is an end point, so interval
				// bounding alone (GP) cannot skip anything; the saving comes
				// from end-point sampling (§7.5).
				esCalcs = float64(r.EntropyCalcs)
			}
		}
		if udtCalcs > 0 {
			b.ReportMetric(esCalcs/udtCalcs*100, "%remaining")
		}
	}
}
