// Package udt is a Go implementation of "Decision Trees for Uncertain
// Data" (Tsang, Kao, Yip, Ho, Lee — ICDE 2009; extended in IEEE TKDE 23(1),
// 2011): decision tree classifiers whose training and test tuples carry
// numerical attributes represented by probability density functions (pdfs)
// rather than point values.
//
// The package offers two construction approaches:
//
//   - Averaging (AVG): each pdf is collapsed to its expected value and a
//     conventional C4.5-style tree is built — the baseline of §4.1.
//   - Distribution-based (UDT): the full pdfs participate in split
//     selection, with tuples fractionally partitioned when a split point
//     falls inside their pdf domain — the contribution of §4.2.
//
// Because UDT must consider every pdf sample point as a candidate split, it
// is s times more expensive than AVG. The pruning strategies of §5 recover
// most of that cost without changing the resulting tree:
//
//   - StrategyBP skips the interiors of empty and homogeneous end-point
//     intervals (Theorems 1-2),
//   - StrategyLP lower-bounds heterogeneous intervals per attribute (Eq. 3),
//   - StrategyGP prunes with a global threshold across attributes,
//   - StrategyES additionally samples end points (§5.3), typically pruning
//     97%+ of entropy calculations.
//
// Classification of an uncertain test tuple descends the tree splitting the
// tuple's probability mass at every internal node and returns a probability
// distribution over class labels (§3.2).
//
// Tree construction parallelises on two orthogonal axes, both off by
// default and both deterministic (the built tree and every split's
// tie-breaking are identical to the serial build):
//
//   - Config.Parallelism bounds the number of concurrent subtree builds —
//     effective once the tree has branched.
//   - Config.Workers bounds the number of concurrent split-search workers
//     inside a single node — effective from the very first (root) split,
//     where every tuple and attribute is scanned. Workers share the §5.2
//     global pruning threshold atomically, so the pruning power of
//     StrategyGP/StrategyES is preserved.
//
// Up to Parallelism × Workers goroutines may run during one build.
//
// For serving, Tree.Compile flattens a built (or JSON-loaded) tree into a
// Compiled engine: a contiguous array layout classified by an iterative,
// allocation-free descent, with ClassifyBatch/PredictBatch spreading a
// batch over a bounded number of workers. The compiled path returns exactly
// the distributions of Tree.Classify; cmd/udtserve exposes it over HTTP.
//
// TrainForest builds a bagged ensemble of compiled trees: bootstrap
// resamples, optional per-tree random attribute subsets, deterministic
// per-tree RNG streams (the forest is identical at any ForestConfig.Workers
// value), and out-of-bag accuracy/Brier estimates computed during training.
// Ensemble classification averages the member distributions — the paper's
// distribution semantics lifted across trees — and forests serialise to a
// versioned multi-tree JSON container that cmd/udtserve loads
// interchangeably with single-tree models.
//
// # Quick start
//
//	ds := udt.NewDataset("fever", 1, []string{"healthy", "fever"})
//	p, _ := udt.GaussianPDF(37.6, 0.2, 37.0, 38.2, 100) // noisy thermometer
//	ds.Add(1, p)
//	// ... add more tuples ...
//	tree, err := udt.Build(ds, udt.Config{Strategy: udt.StrategyES, PostPrune: true})
//	dist := tree.Classify(testTuple) // probability per class
//
// See the examples directory for runnable programs and ARCHITECTURE.md for
// the package layers, the concurrency model, and the train/serve flow.
package udt
