package udt_test

// The cross-cutting determinism matrix: every trainable model kind — single
// tree, bagged forest, boosted ensemble — must serialise byte-identically
// across worker counts and across re-runs with the same seed. This is the
// repo's reproducibility contract in one table: parallelism knobs
// (Config.Workers, Config.Parallelism, ForestConfig.Workers,
// BoostConfig.Workers) change wall-clock time only, never a bit of the
// model. CI runs the whole suite (this test included) under -race, so a
// scheduling-dependent divergence shows up either as a byte diff here or as
// a data race there.

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"runtime"
	"testing"

	"udt"
	"udt/internal/binfmt"
	"udt/internal/forest"
	"udt/internal/modelio"
)

// determinismDataset builds a mid-sized two-attribute, three-class dataset
// with enough tuples that parallel paths actually engage (batch grains,
// member builds) and enough overlap that trees go several levels deep.
func determinismDataset(t testing.TB) *udt.Dataset {
	t.Helper()
	ds := udt.NewDataset("det", 2, []string{"a", "b", "c"})
	rng := rand.New(rand.NewSource(31))
	for i := 0; i < 210; i++ {
		c := i % 3
		base := float64(c * 4)
		p1, err := udt.UniformPDF(base+rng.Float64()*3, base+3+rng.Float64()*3, 9)
		if err != nil {
			t.Fatal(err)
		}
		p2, err := udt.GaussianPDF(base+rng.Float64()*2, 1.2, base-4, base+6, 9)
		if err != nil {
			t.Fatal(err)
		}
		ds.Add(c, p1, p2)
	}
	return ds
}

// TestModelDeterminismMatrix trains each model kind at Workers ∈
// {1, 4, GOMAXPROCS} plus a same-seed re-run of the first cell, and demands
// byte-identical serialised models everywhere.
func TestModelDeterminismMatrix(t *testing.T) {
	ds := determinismDataset(t)
	workerCounts := []int{1, 4, runtime.GOMAXPROCS(0)}

	for _, kind := range determinismKinds(ds) {
		t.Run(kind.name, func(t *testing.T) {
			serialize := func(workers int) string {
				m, err := kind.train(workers)
				if err != nil {
					t.Fatalf("workers=%d: %v", workers, err)
				}
				blob, err := json.Marshal(m)
				if err != nil {
					t.Fatalf("workers=%d: marshal: %v", workers, err)
				}
				return string(blob)
			}
			want := serialize(workerCounts[0])
			for _, workers := range workerCounts[1:] {
				if got := serialize(workers); got != want {
					t.Fatalf("workers=%d serialises differently from workers=%d", workers, workerCounts[0])
				}
			}
			// Same-seed re-run: training must be a pure function of
			// (dataset, config), with no hidden global state.
			if rerun := serialize(workerCounts[0]); rerun != want {
				t.Fatal("same-seed re-run serialises differently")
			}
		})
	}
}

// determinismKinds is the tree/bagged/boosted training table shared by the
// JSON and binary determinism matrices.
func determinismKinds(ds *udt.Dataset) []struct {
	name  string
	train func(workers int) (any, error)
} {
	return []struct {
		name  string
		train func(workers int) (any, error)
	}{
		{
			name: "single tree",
			train: func(workers int) (any, error) {
				return udt.Build(ds, udt.Config{
					MinWeight:   2,
					PostPrune:   true,
					Workers:     workers,
					Parallelism: workers,
				})
			},
		},
		{
			name: "bagged forest",
			train: func(workers int) (any, error) {
				return udt.TrainForest(ds, udt.ForestConfig{
					Trees:        7,
					Seed:         5,
					Workers:      workers,
					AttrsPerTree: 1,
					TreeConfig:   udt.Config{MinWeight: 2, Workers: workers},
				})
			},
		},
		{
			name: "boosted ensemble",
			train: func(workers int) (any, error) {
				return udt.TrainBoosted(ds, udt.BoostConfig{
					Rounds:     6,
					Workers:    workers,
					TreeConfig: udt.Config{MaxDepth: 3, MinWeight: 2, Workers: workers},
				})
			},
		},
	}
}

// encodeBinaryModel renders any trained model kind to its binary container
// bytes.
func encodeBinaryModel(t *testing.T, m any) []byte {
	t.Helper()
	var buf bytes.Buffer
	switch m := m.(type) {
	case *udt.Tree:
		compiled, err := m.Compile()
		if err != nil {
			t.Fatal(err)
		}
		if err := binfmt.EncodeTree(&buf, compiled, m.Stats); err != nil {
			t.Fatal(err)
		}
	case *udt.Forest:
		if err := binfmt.EncodeForest(&buf, m); err != nil {
			t.Fatal(err)
		}
	default:
		t.Fatalf("unexpected model type %T", m)
	}
	return buf.Bytes()
}

// TestBinaryContainerDeterminismMatrix is the binary-format row of the
// determinism contract: the container bytes — section placement, hash-consed
// arena, dist payloads, everything — are a pure function of the model, so
// training at any worker count and re-running with the same seed must emit
// byte-identical files. This is what makes binary models diffable and
// content-addressable in deploy pipelines.
func TestBinaryContainerDeterminismMatrix(t *testing.T) {
	ds := determinismDataset(t)
	workerCounts := []int{1, 4, runtime.GOMAXPROCS(0)}

	for _, kind := range determinismKinds(ds) {
		t.Run(kind.name, func(t *testing.T) {
			encode := func(workers int) []byte {
				m, err := kind.train(workers)
				if err != nil {
					t.Fatalf("workers=%d: %v", workers, err)
				}
				return encodeBinaryModel(t, m)
			}
			want := encode(workerCounts[0])
			for _, workers := range workerCounts[1:] {
				if !bytes.Equal(encode(workers), want) {
					t.Fatalf("workers=%d container bytes differ from workers=%d", workers, workerCounts[0])
				}
			}
			if !bytes.Equal(encode(workerCounts[0]), want) {
				t.Fatal("same-seed re-run emits different container bytes")
			}
		})
	}
}

// TestBinaryRoundTripPredictionParity chains every model kind through
// JSON → binary → JSON and demands byte-identical probability distributions
// at every hop. Binary is a serving format, not a lossy cache: a model
// converted for mmap serving and converted back must answer exactly like the
// original, including on tuples with missing values.
func TestBinaryRoundTripPredictionParity(t *testing.T) {
	ds := determinismDataset(t)
	probes := append([]*udt.Tuple(nil), ds.Tuples[:80]...)
	// A probe with every attribute missing exercises the widest descent.
	probes = append(probes, &udt.Tuple{Num: make([]*udt.PDF, 2)})

	for _, kind := range determinismKinds(ds) {
		t.Run(kind.name, func(t *testing.T) {
			m, err := kind.train(1)
			if err != nil {
				t.Fatal(err)
			}
			jsonBlob, err := json.Marshal(m)
			if err != nil {
				t.Fatal(err)
			}
			fromJSON, err := modelio.Decode(jsonBlob)
			if err != nil {
				t.Fatal(err)
			}
			var bin bytes.Buffer
			if err := modelio.EncodeBinary(&bin, fromJSON); err != nil {
				t.Fatal(err)
			}
			fromBinary, err := modelio.Decode(bin.Bytes())
			if err != nil {
				t.Fatal(err)
			}
			// Back to JSON: a tree decompiles to its source form, ensembles
			// marshal directly; either way the result must still decode.
			var doc any = fromBinary
			if src, ok := fromBinary.(modelio.TreeSource); ok {
				tree, err := src.SourceTree()
				if err != nil {
					t.Fatal(err)
				}
				doc = tree
			}
			jsonAgain, err := json.Marshal(doc)
			if err != nil {
				t.Fatal(err)
			}
			backToJSON, err := modelio.Decode(jsonAgain)
			if err != nil {
				t.Fatal(err)
			}

			for i, tu := range probes {
				want := fromJSON.Classify(tu)
				for hop, mdl := range map[string]modelio.Model{
					"binary":     fromBinary,
					"json-again": backToJSON,
				} {
					got := mdl.Classify(tu)
					if len(got) != len(want) {
						t.Fatalf("probe %d: %s returned %d masses, want %d", i, hop, len(got), len(want))
					}
					for c := range want {
						if got[c] != want[c] {
							t.Fatalf("probe %d class %d: %s mass %v, original %v", i, c, hop, got[c], want[c])
						}
					}
				}
			}
		})
	}
}

// TestStagedPrefixMatrix is the staged-inference row of the determinism
// contract: for every stage k, ClassifyStaged over the first k members in
// evaluation order must be byte-identical (distribution and argmax) to full
// evaluation of a standalone ensemble built from exactly those members.
// Boosted members carry no per-member attribute projections, so the prefix
// sub-ensemble is reconstructible with forest.FromTrees and the comparison
// is exact equality, not tolerance.
func TestStagedPrefixMatrix(t *testing.T) {
	ds := determinismDataset(t)
	boosted, err := udt.TrainBoosted(ds, udt.BoostConfig{
		Rounds:     6,
		Workers:    1,
		TreeConfig: udt.Config{MaxDepth: 3, MinWeight: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	order := boosted.EvalOrder()
	members := boosted.Members()
	probes := ds.Tuples[:60]
	for k := 1; k <= boosted.StageCount(); k++ {
		prefix := make([]forest.WeightedTree, k)
		for i, m := range order[:k] {
			prefix[i] = members[m]
		}
		sub, err := forest.FromTrees(prefix, forest.KindBoosted)
		if err != nil {
			t.Fatalf("stage %d: %v", k, err)
		}
		for i, tu := range probes {
			staged, err := boosted.ClassifyStaged(tu, k)
			if err != nil {
				t.Fatalf("stage %d probe %d: %v", k, i, err)
			}
			full := sub.Classify(tu)
			for c := range staged {
				if staged[c] != full[c] {
					t.Fatalf("stage %d probe %d class %d: staged %v, sub-ensemble %v",
						k, i, c, staged[c], full[c])
				}
			}
			ps, err := boosted.PredictStaged(tu, k)
			if err != nil {
				t.Fatalf("stage %d probe %d: %v", k, i, err)
			}
			if pf := sub.Predict(tu); ps != pf {
				t.Fatalf("stage %d probe %d: staged argmax %d, sub-ensemble %d", k, i, ps, pf)
			}
		}
	}
}

// TestEarlyExitDeterminismMatrix is the early-exit row: predictions and
// members-evaluated counts must be byte-identical across worker counts and
// re-runs, and predictions must equal full evaluation — for both ensemble
// kinds. CI runs this under -race, so a scheduling-dependent divergence
// shows up either here or as a race report.
func TestEarlyExitDeterminismMatrix(t *testing.T) {
	ds := determinismDataset(t)
	workerCounts := []int{1, 4, runtime.GOMAXPROCS(0)}

	kinds := []struct {
		name  string
		train func() (*udt.Forest, error)
	}{
		{
			name: "bagged forest",
			train: func() (*udt.Forest, error) {
				return udt.TrainForest(ds, udt.ForestConfig{
					Trees:        7,
					Seed:         5,
					Workers:      1,
					AttrsPerTree: 1,
					TreeConfig:   udt.Config{MinWeight: 2},
				})
			},
		},
		{
			name: "boosted ensemble",
			train: func() (*udt.Forest, error) {
				return udt.TrainBoosted(ds, udt.BoostConfig{
					Rounds:     6,
					Workers:    1,
					TreeConfig: udt.Config{MaxDepth: 3, MinWeight: 2},
				})
			},
		},
	}

	for _, kind := range kinds {
		t.Run(kind.name, func(t *testing.T) {
			f, err := kind.train()
			if err != nil {
				t.Fatal(err)
			}
			tuples := ds.Tuples
			fullPreds := f.PredictBatch(tuples, 1)
			var wantPreds, wantEval []int
			for _, workers := range workerCounts {
				preds, evaluated := f.PredictBatchEarlyExit(tuples, workers)
				for i := range tuples {
					if preds[i] != fullPreds[i] {
						t.Fatalf("workers=%d tuple %d: early exit %d, full evaluation %d",
							workers, i, preds[i], fullPreds[i])
					}
					if evaluated[i] < 1 || evaluated[i] > f.StageCount() {
						t.Fatalf("workers=%d tuple %d: evaluated %d of %d members",
							workers, i, evaluated[i], f.StageCount())
					}
				}
				if wantPreds == nil {
					wantPreds, wantEval = preds, evaluated
					continue
				}
				for i := range tuples {
					if preds[i] != wantPreds[i] || evaluated[i] != wantEval[i] {
						t.Fatalf("workers=%d tuple %d: (%d, %d) diverges from workers=%d (%d, %d)",
							workers, i, preds[i], evaluated[i], workerCounts[0], wantPreds[i], wantEval[i])
					}
				}
			}
			// Same-model re-run: early exit is a pure function of the model
			// and tuple, with no hidden state in the scratch pool.
			rerunPreds, rerunEval := f.PredictBatchEarlyExit(tuples, workerCounts[0])
			for i := range tuples {
				if rerunPreds[i] != wantPreds[i] || rerunEval[i] != wantEval[i] {
					t.Fatalf("re-run tuple %d: (%d, %d) diverges from (%d, %d)",
						i, rerunPreds[i], rerunEval[i], wantPreds[i], wantEval[i])
				}
			}
		})
	}
}
