package udt

import (
	"io"
	"math/rand"

	"udt/internal/boost"
	"udt/internal/core"
	"udt/internal/data"
	"udt/internal/eval"
	"udt/internal/forest"
	"udt/internal/pdf"
	"udt/internal/split"
)

// Core types re-exported from the implementation packages. The aliases make
// the whole system usable through this single package.
type (
	// PDF is a bounded probability distribution approximated by discrete
	// sample points; the uncertainty model for numerical attributes.
	PDF = pdf.PDF
	// Dataset is a collection of uncertain tuples plus schema metadata.
	Dataset = data.Dataset
	// Tuple is one example: pdfs for numeric attributes, discrete
	// distributions for categorical ones, a class label and a weight.
	Tuple = data.Tuple
	// Attribute describes one feature (numeric or categorical).
	Attribute = data.Attribute
	// CatDist is a discrete distribution over a categorical domain.
	CatDist = data.CatDist
	// Fold is one train/test split of a cross-validation.
	Fold = data.Fold
	// Points is a point-valued matrix prior to uncertainty injection.
	Points = data.Points
	// InjectConfig controls uncertainty injection onto point data (§4.3).
	InjectConfig = data.InjectConfig
	// ErrorModel selects Gaussian or uniform synthetic error pdfs.
	ErrorModel = data.ErrorModel
	// RowSource is a streaming iterator over uncertain tuples: the attribute
	// schema is fixed at construction, the class vocabulary accumulates as
	// rows are consumed. It is the unit of larger-than-memory ingestion.
	RowSource = data.RowSource
	// CSVSource streams tuples from the CSV interchange format.
	CSVSource = data.CSVSource
	// Tree is a built decision tree classifier.
	Tree = core.Tree
	// Node is one tree node.
	Node = core.Node
	// Compiled is a tree flattened into contiguous arrays by Tree.Compile
	// for fast, allocation-free batch inference — the serving path of
	// cmd/udtserve. It is immutable and safe for concurrent use.
	Compiled = core.Compiled
	// Config controls tree construction, including the two parallelism
	// knobs: Parallelism (concurrent subtree builds) and Workers
	// (concurrent split-search workers inside each node). Both default to
	// serial; both preserve the exact serial tree and split tie-breaking.
	Config = core.Config
	// BuildStats summarises construction work.
	BuildStats = core.BuildStats
	// Rule is a root-to-leaf classification rule.
	Rule = core.Rule
	// Forest is an ensemble of compiled uncertain decision trees — bagged
	// (uniform votes over bootstrap resamples) or boosted (SAMME vote
	// weights); classification is the vote-weighted average of the member
	// distributions. Immutable and safe for concurrent use.
	Forest = forest.Forest
	// ForestConfig controls ensemble training: tree count, bootstrap sample
	// ratio, per-tree attribute subsets, seed, parallel member builds, and
	// the member tree configuration.
	ForestConfig = forest.Config
	// BoostConfig controls boosted ensemble training: rounds, learning rate,
	// prediction workers, and the member tree configuration.
	BoostConfig = boost.Config
	// OOBStats is the out-of-bag accuracy/Brier estimate a forest computes
	// during training.
	OOBStats = forest.OOBStats
	// Measure selects the dispersion function (entropy, Gini, gain ratio).
	Measure = split.Measure
	// Strategy selects the split-search pruning algorithm of §5.
	Strategy = split.Strategy
	// SearchStats counts split-search work (the paper's cost metric).
	SearchStats = split.Stats
	// Result aggregates an evaluation run.
	Result = eval.Result
)

// Dispersion measures (§4.1, §7.4).
const (
	Entropy   = split.Entropy
	Gini      = split.Gini
	GainRatio = split.GainRatio
)

// Split-search strategies (§4.2, §5), in ascending pruning power.
const (
	StrategyUDT = split.UDT // exhaustive over all pdf sample points
	StrategyBP  = split.BP  // prune empty/homogeneous interval interiors
	StrategyLP  = split.LP  // + per-attribute bounding of heterogeneous intervals
	StrategyGP  = split.GP  // + global pruning threshold across attributes
	StrategyES  = split.ES  // + end-point sampling
)

// Error models for uncertainty injection (§4.3).
const (
	GaussianModel = data.GaussianModel
	UniformModel  = data.UniformModel
)

// NewPDF builds a PDF from sample locations and masses (normalised).
func NewPDF(xs, masses []float64) (*PDF, error) { return pdf.New(xs, masses) }

// PointPDF returns the degenerate distribution at v.
func PointPDF(v float64) *PDF { return pdf.Point(v) }

// UniformPDF returns the uniform distribution on [a, b] with s samples —
// the quantisation-error model of §4.3.
func UniformPDF(a, b float64, s int) (*PDF, error) { return pdf.Uniform(a, b, s) }

// GaussianPDF returns the Gaussian N(mean, sigma²) truncated to [a, b] and
// renormalised, with s samples — the random-noise model of §4.3.
func GaussianPDF(mean, sigma, a, b float64, s int) (*PDF, error) {
	return pdf.Gaussian(mean, sigma, a, b, s)
}

// PDFFromSamples models a pdf directly from raw repeated measurements,
// each observation receiving equal mass (the JapaneseVowel path of §4.3).
func PDFFromSamples(obs []float64) (*PDF, error) { return pdf.FromSamples(obs) }

// NewDataset allocates an empty dataset with numAttrs numeric attributes
// and the given class labels.
func NewDataset(name string, numAttrs int, classes []string) *Dataset {
	return data.NewDataset(name, numAttrs, classes)
}

// NewCatPoint returns a categorical distribution concentrated on value v of
// an n-value domain.
func NewCatPoint(v, n int) CatDist { return data.NewCatPoint(v, n) }

// Build constructs a Distribution-based (UDT) decision tree from the
// uncertain dataset.
func Build(ds *Dataset, cfg Config) (*Tree, error) { return core.Build(ds, cfg) }

// BuildAveraging constructs an Averaging (AVG) decision tree: pdfs are
// collapsed to their means before construction.
func BuildAveraging(ds *Dataset, cfg Config) (*Tree, error) { return core.BuildAveraging(ds, cfg) }

// TrainForest builds a bagged ensemble of Distribution-based trees:
// bootstrap-resampled tuples, optional per-tree random attribute subsets,
// deterministic per-tree RNG streams (the result is identical at any
// cfg.Workers value), and out-of-bag accuracy/Brier computed during
// training. Ensemble classification is distribution averaging across the
// compiled members.
func TrainForest(ds *Dataset, cfg ForestConfig) (*Forest, error) { return forest.Train(ds, cfg) }

// TrainBoosted builds a boosted weighted ensemble (SAMME over
// Distribution-based trees): each round trains on the current fractional
// tuple weights — the paper-native weighting of §3.2 — measures the
// weighted training error, derives the member's vote weight, and reweights
// the misclassified tuples. The result is a Forest of kind "boosted" that
// serialises, loads and serves through the same container as bagged
// ensembles, and training is byte-identical at any cfg.Workers value.
func TrainBoosted(ds *Dataset, cfg BoostConfig) (*Forest, error) { return boost.Train(ds, cfg) }

// BoostTrainTest trains a boosted ensemble on train and evaluates on test.
func BoostTrainTest(train, test *Dataset, cfg BoostConfig) (Result, error) {
	return eval.BoostTrainTest(train, test, cfg)
}

// BoostCrossValidate runs stratified k-fold cross-validation of the boosted
// ensemble on the same folds CrossValidate and ForestCrossValidate would use
// for a given rng state.
func BoostCrossValidate(ds *Dataset, k int, cfg BoostConfig, rng *rand.Rand) (Result, error) {
	return eval.BoostCrossValidate(ds, k, cfg, rng)
}

// ForestAccuracy returns the fraction of test tuples the ensemble predicts
// correctly.
func ForestAccuracy(f *Forest, test *Dataset) float64 { return eval.ForestAccuracy(f, test) }

// ForestConfusion returns the ensemble's confusion matrix over the test set.
func ForestConfusion(f *Forest, test *Dataset) [][]float64 { return eval.ForestConfusion(f, test) }

// ForestEvaluate classifies the test set once and returns the confusion
// matrix, Brier score and log-loss of the averaged distributions.
func ForestEvaluate(f *Forest, test *Dataset) (conf [][]float64, brier, logLoss float64) {
	return eval.ForestEvaluate(f, test)
}

// ForestTrainTest trains an ensemble on train and evaluates on test.
func ForestTrainTest(train, test *Dataset, cfg ForestConfig) (Result, error) {
	return eval.ForestTrainTest(train, test, cfg)
}

// ForestCrossValidate runs stratified k-fold cross-validation of the bagged
// ensemble, pooling accuracy over the same folds CrossValidate would use
// for a given rng state.
func ForestCrossValidate(ds *Dataset, k int, cfg ForestConfig, rng *rand.Rand) (Result, error) {
	return eval.ForestCrossValidate(ds, k, cfg, rng)
}

// Inject converts point-valued data into an uncertain dataset by fitting an
// error model of relative width cfg.W with cfg.S sample points per pdf
// (§4.3).
func Inject(p *Points, cfg InjectConfig) (*Dataset, error) { return data.Inject(p, cfg) }

// ReadCSV parses a dataset from the CSV interchange format (plain floats
// for point values, "x@mass;x@mass;..." cells for pdfs), materialising
// every tuple — a Collect over NewCSVSource.
func ReadCSV(r io.Reader, name string) (*Dataset, error) { return data.ReadCSV(r, name) }

// NewCSVSource reads the CSV header and returns a source streaming the
// remaining rows one tuple at a time.
func NewCSVSource(r io.Reader, name string) (*CSVSource, error) { return data.NewCSVSource(r, name) }

// Collect drains a row source into a materialised, validated dataset.
func Collect(src RowSource) (*Dataset, error) { return data.Collect(src) }

// CollectChunked drains a row source in windows of at most chunkSize
// tuples, invoking fn once per window — constant-memory ingestion for
// streaming classification and evaluation.
func CollectChunked(src RowSource, chunkSize int, fn func(chunk *Dataset) error) error {
	return data.CollectChunked(src, chunkSize, fn)
}

// Reservoir drains a row source keeping a uniform random sample of at most
// n tuples (deterministic for a fixed seed), so training can bound resident
// tuples on files larger than memory.
func Reservoir(src RowSource, n int, seed int64) (*Dataset, error) {
	return data.Reservoir(src, n, seed)
}

// WriteCSV writes a dataset in the CSV interchange format.
func WriteCSV(w io.Writer, ds *Dataset) error { return data.WriteCSV(w, ds) }

// Accuracy returns the fraction of test tuples predicted correctly.
func Accuracy(t *Tree, test *Dataset) float64 { return eval.Accuracy(t, test) }

// Confusion returns the confusion matrix over the test set.
func Confusion(t *Tree, test *Dataset) [][]float64 { return eval.Confusion(t, test) }

// TrainTest builds on train and evaluates on test.
func TrainTest(train, test *Dataset, cfg Config) (Result, error) {
	return eval.TrainTest(train, test, cfg)
}

// CrossValidate runs stratified k-fold cross-validation (§4.3 protocol).
func CrossValidate(ds *Dataset, k int, cfg Config, rng *rand.Rand) (Result, error) {
	return eval.CrossValidate(ds, k, cfg, rng)
}

// ClassMetrics holds per-class precision, recall and F1.
type ClassMetrics = eval.ClassMetrics

// WidthPoint is one measured point of a §4.4 width-tuning sweep.
type WidthPoint = eval.WidthPoint

// PerClass derives per-class precision/recall/F1 from a confusion matrix.
func PerClass(classes []string, confusion [][]float64) ([]ClassMetrics, error) {
	return eval.PerClass(classes, confusion)
}

// MacroF1 averages per-class F1 scores.
func MacroF1(metrics []ClassMetrics) float64 { return eval.MacroF1(metrics) }

// Brier returns the mean Brier score of the tree's probabilistic
// classifications over the test set (lower is better).
func Brier(t *Tree, test *Dataset) float64 { return eval.Brier(t, test) }

// Evaluate classifies the test set once through the compiled engine and
// returns the confusion matrix, Brier score and log-loss from that single
// pass.
func Evaluate(t *Tree, test *Dataset) (conf [][]float64, brier, logLoss float64) {
	return eval.Evaluate(t, test)
}

// LogLoss returns the mean negative log-likelihood of the true labels
// under the tree's probabilistic classifications (lower is better).
func LogLoss(t *Tree, test *Dataset) float64 { return eval.LogLoss(t, test) }

// TuneWidth estimates a good uncertainty width w per §4.4: repeated
// cross-validation over candidate widths, returning the midpoint of the
// plateau statistically indistinguishable from the best.
func TuneWidth(p *Points, ws []float64, s int, model ErrorModel, cfg Config, folds, repeats int, rng *rand.Rand) (float64, []WidthPoint, error) {
	return eval.TuneWidth(p, ws, s, model, cfg, folds, repeats, rng)
}

// FillMissing substitutes each missing numeric value with the weighted
// average pdf of the attribute's observed values (the §2 missing-value
// technique).
func FillMissing(ds *Dataset) (*Dataset, error) { return data.FillMissing(ds) }

// MixPDF returns the weighted mixture of the given distributions.
func MixPDF(components []*PDF, weights []float64) (*PDF, error) {
	return pdf.Mix(components, weights)
}
