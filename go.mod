module udt

go 1.24
