package udt_test

// Serving-tier integration smoke: two real udtserve replicas (multi-model
// registry from one manifest) behind a real udtproxy, driven with a mixed
// per-model traffic schedule. One replica is killed between traffic phases;
// the proxy's transport-level retry plus health-checked failover must keep
// the post-kill phase at zero failed requests, and the surviving replica's
// Prometheus exposition must carry per-model series for every model served.

import (
	"bufio"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"udt"
	"udt/internal/loadgen"
	"udt/internal/obs"
)

const smokeCSV = `x,y,class
0.1,1;2;3,lo
0.2,2;3;4,lo
0.3,1;3;5,lo
0.4,2;2;3,lo
9.1,11;12;13,hi
9.2,12;13;14,hi
9.3,11;13;15,hi
9.4,12;12;13,hi
`

// buildBinary compiles one cmd/ binary into dir.
func buildBinary(t *testing.T, dir, name string) string {
	t.Helper()
	bin := filepath.Join(dir, name)
	cmd := exec.Command("go", "build", "-o", bin, "./cmd/"+name)
	cmd.Env = os.Environ()
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("build %s: %v\n%s", name, err, out)
	}
	return bin
}

// startDaemon launches a binary and extracts its listen address from the
// startup line (the last "on <addr>" token before the comma or EOL).
func startDaemon(t *testing.T, ctx context.Context, bin string, args ...string) (*exec.Cmd, string) {
	t.Helper()
	cmd := exec.CommandContext(ctx, bin, args...)
	cmd.Stderr = io.Discard
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		cmd.Process.Kill()
		cmd.Wait()
	})
	addrc := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stdout)
		for sc.Scan() {
			line := sc.Text()
			if _, rest, ok := strings.Cut(line, " on "); ok {
				addr, _, _ := strings.Cut(rest, ",")
				addrc <- strings.TrimSpace(addr)
				break
			}
		}
		close(addrc)
		// Keep draining so the child never blocks on a full pipe.
		io.Copy(io.Discard, stdout)
	}()
	select {
	case addr, ok := <-addrc:
		if !ok || addr == "" {
			t.Fatalf("%s: no listen address in startup output", filepath.Base(bin))
		}
		return cmd, addr
	case <-time.After(15 * time.Second):
		t.Fatalf("%s: startup line never appeared", filepath.Base(bin))
		return nil, ""
	}
}

// waitHTTP polls a URL until it answers 200.
func waitHTTP(t *testing.T, url string) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		res, err := http.Get(url)
		if err == nil {
			io.Copy(io.Discard, res.Body)
			res.Body.Close()
			if res.StatusCode == http.StatusOK {
				return
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("%s never became healthy", url)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

func TestProxyFailoverSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and boots real binaries; skipped in -short")
	}
	dir := t.TempDir()

	// Two models from the shared fixture: "alpha" a single tree (the
	// manifest default), "beta" a bagged forest.
	ds, err := udt.ReadCSV(strings.NewReader(smokeCSV), "smoke")
	if err != nil {
		t.Fatal(err)
	}
	tree, err := udt.Build(ds, udt.Config{MinWeight: 1, PostPrune: true})
	if err != nil {
		t.Fatal(err)
	}
	forest, err := udt.TrainForest(ds, udt.ForestConfig{Trees: 3, Seed: 5, TreeConfig: udt.Config{MinWeight: 1}})
	if err != nil {
		t.Fatal(err)
	}
	writeJSON := func(name string, v any) {
		blob, err := json.Marshal(v)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, name), blob, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	writeJSON("alpha.udt", tree)
	writeJSON("beta.udt", forest)
	manifest := filepath.Join(dir, "models.manifest.json")
	if err := os.WriteFile(manifest, []byte(`{"models": [
		{"name": "alpha", "path": "alpha.udt", "default": true},
		{"name": "beta", "path": "beta.udt"}
	]}`), 0o644); err != nil {
		t.Fatal(err)
	}

	serveBin := buildBinary(t, dir, "udtserve")
	proxyBin := buildBinary(t, dir, "udtproxy")

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	rep1, addr1 := startDaemon(t, ctx, serveBin, "-models", manifest, "-addr", "127.0.0.1:0", "-workers", "2")
	_, addr2 := startDaemon(t, ctx, serveBin, "-models", manifest, "-addr", "127.0.0.1:0", "-workers", "2")
	waitHTTP(t, "http://"+addr1+"/healthz")
	waitHTTP(t, "http://"+addr2+"/healthz")

	_, proxyAddr := startDaemon(t, ctx, proxyBin,
		"-backends", "http://"+addr1+",http://"+addr2,
		"-addr", "127.0.0.1:0", "-strategy", "roundrobin",
		"-health-interval", "100ms", "-health-timeout", "1s")
	proxyURL := "http://" + proxyAddr
	waitHTTP(t, proxyURL+"/-/healthz")

	payloads, err := loadgen.PayloadsFromCSV(strings.NewReader(smokeCSV), "smoke")
	if err != nil {
		t.Fatal(err)
	}
	drive := func(phase string, seed int64) {
		t.Helper()
		rep, err := loadgen.Run(context.Background(), loadgen.Config{
			BaseURL:     proxyURL,
			QPS:         150,
			Duration:    600 * time.Millisecond,
			Seed:        seed,
			Mix:         loadgen.Mix{Single: 0.6, Batch: 0.2, Stream: 0.2},
			Models:      map[string]float64{"alpha": 0.7, "beta": 0.3},
			BatchSize:   4,
			StreamLines: 4,
			Timeout:     10 * time.Second,
		}, payloads)
		if err != nil {
			t.Fatalf("%s: %v", phase, err)
		}
		if rep.Requests.OK == 0 || rep.Requests.Errors != 0 || rep.Requests.Rejected != 0 {
			t.Fatalf("%s: requests = %+v, want all OK", phase, rep.Requests)
		}
		for _, model := range []string{"alpha", "beta"} {
			if s := rep.Latency["model:"+model]; s == nil || s.Count == 0 {
				t.Fatalf("%s: no traffic reached model %s", phase, model)
			}
		}
	}

	drive("both replicas up", 21)

	// Kill replica 1. The proxy has not noticed yet when the next phase
	// starts, so the first arrivals exercise the transport-failure retry
	// path; the health poller then drops the backend for good. Either way:
	// zero failed requests.
	if err := rep1.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	rep1.Wait()
	drive("after replica kill", 22)

	// The proxy must have demoted the dead backend by now.
	deadline := time.Now().Add(5 * time.Second)
	for {
		res, err := http.Get(proxyURL + "/-/healthz")
		if err != nil {
			t.Fatal(err)
		}
		var health struct {
			Healthy int `json:"healthy"`
		}
		if err := json.NewDecoder(res.Body).Decode(&health); err != nil {
			t.Fatal(err)
		}
		res.Body.Close()
		if health.Healthy == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("proxy never demoted the killed replica (healthy=%d)", health.Healthy)
		}
		time.Sleep(50 * time.Millisecond)
	}

	// Per-model Prometheus scrape on the surviving replica: both models
	// must expose request series with traffic, proving the per-model label
	// dimension end to end through real binaries.
	res, err := http.Get("http://" + addr2 + "/metrics?format=prometheus")
	if err != nil {
		t.Fatal(err)
	}
	blob, err := io.ReadAll(res.Body)
	res.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	exp, err := obs.ParseText(blob)
	if err != nil {
		t.Fatal(err)
	}
	for _, model := range []string{"alpha", "beta"} {
		v, ok := exp.Value("udt_model_requests_total",
			obs.Label{Key: "model", Value: model}, obs.Label{Key: "endpoint", Value: "classify"})
		if !ok || v <= 0 {
			t.Errorf("surviving replica: udt_model_requests_total{model=%q,endpoint=classify} = %v, %v", model, v, ok)
		}
		if v, ok := exp.Value("udt_registry_generation", obs.Label{Key: "model", Value: model}); !ok || v != 1 {
			t.Errorf("surviving replica: udt_registry_generation{model=%q} = %v, %v", model, v, ok)
		}
	}
	if v, ok := exp.Value("udt_registry_models"); !ok || v != 2 {
		t.Errorf("surviving replica: udt_registry_models = %v, %v", v, ok)
	}

	// And the proxy's own exposition reflects the failover.
	pres, err := http.Get(proxyURL + "/-/metrics?format=prometheus")
	if err != nil {
		t.Fatal(err)
	}
	pblob, err := io.ReadAll(pres.Body)
	pres.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	pexp, err := obs.ParseText(pblob)
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := pexp.Value("udtproxy_backend_healthy", obs.Label{Key: "backend", Value: "http://" + addr1}); !ok || v != 0 {
		t.Errorf("proxy: dead backend healthy gauge = %v, %v, want 0", v, ok)
	}
	if v, ok := pexp.Value("udtproxy_backend_healthy", obs.Label{Key: "backend", Value: "http://" + addr2}); !ok || v != 1 {
		t.Errorf("proxy: live backend healthy gauge = %v, %v, want 1", v, ok)
	}
}
