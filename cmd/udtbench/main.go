// Command udtbench regenerates the tables and figures of the paper's
// evaluation (see the per-experiment index in DESIGN.md). Each -exp value
// corresponds to one artefact; -scale trades fidelity for speed (1.0
// reproduces the Table 2 dataset sizes, the default 0.1 finishes in
// minutes on a laptop).
//
// Usage:
//
//	udtbench -exp accuracy            # Table 3
//	udtbench -exp time -scale 0.25    # Fig 6 at quarter scale
//	udtbench -exp all -datasets Iris,Glass
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"udt/internal/cliutil"
	"udt/internal/core"
	"udt/internal/data"
	"udt/internal/eval"
	"udt/internal/experiments"
	"udt/internal/obs"
	"udt/internal/pdf"
	"udt/internal/split"
	"udt/internal/uci"
)

func main() {
	var (
		exp      = flag.String("exp", "all", "experiment: example|datasets|accuracy|noise|time|pruning|s-sweep|w-sweep|gini|point|es-ablation|endpoint-ablation|speedup|forest|boost|earlyexit|stream|load|all")
		scale    = flag.Float64("scale", 0.1, "dataset scale in (0,1]; 1 = Table 2 sizes")
		s        = flag.Int("s", 100, "sample points per pdf")
		w        = flag.Float64("w", 0.10, "pdf width as a fraction of the attribute range")
		seed     = flag.Int64("seed", 1, "RNG seed")
		folds    = flag.Int("folds", 10, "cross-validation folds")
		datasets = flag.String("datasets", "", "comma-separated dataset filter (default: all)")
		maxDepth = flag.Int("maxdepth", 0, "tree depth cap (0 = unlimited)")
		noiseOn  = flag.String("noise-dataset", "Segment", "dataset for the Fig 4 noise experiment")
		pointOn  = flag.String("point-dataset", "Segment", "dataset for the §7.5 point-data experiment")
		workers  = flag.Int("workers", 1, "intra-node split-search workers (>= 1)")
		parallel = flag.Int("parallel", 1, "concurrent subtree builds (>= 1)")
		strategy = flag.String("strategy", "es", "strategy for the speedup experiment: udt|bp|lp|gp|es")
		tuples   = flag.Int("tuples", 10000, "dataset size for the speedup experiment")
		trees    = flag.Int("trees", 25, "ensemble size for the forest experiment (>= 1)")
		rounds   = flag.Int("rounds", 15, "boosting rounds for the boost experiment (>= 1)")
		progress = flag.Bool("progress", false, "narrate tree builds on stderr and print a split-search timing summary")
		version  = flag.Bool("version", false, "print build info and exit")
	)
	flag.Parse()

	if *version {
		fmt.Println(cliutil.VersionString("udtbench"))
		return
	}

	if err := cliutil.CheckPositive("-trees", *trees); err != nil {
		fatal(err)
	}
	if err := cliutil.CheckPositive("-rounds", *rounds); err != nil {
		fatal(err)
	}

	if err := cliutil.CheckPositive("-workers", *workers); err != nil {
		fatal(err)
	}
	if err := cliutil.CheckPositive("-parallel", *parallel); err != nil {
		fatal(err)
	}
	strat, err := cliutil.ParseStrategy(*strategy)
	if err != nil {
		fatal(err)
	}
	if err := cliutil.CheckPositive("-tuples", *tuples); err != nil {
		fatal(err)
	}

	opts := experiments.Options{
		Scale:       *scale,
		S:           *s,
		W:           *w,
		Seed:        *seed,
		Folds:       *folds,
		MaxDepth:    *maxDepth,
		Parallelism: *parallel,
		Workers:     *workers,
	}
	if *datasets != "" {
		opts.Datasets = strings.Split(*datasets, ",")
	}
	var prog *obs.TrainProgress
	if *progress {
		prog = obs.NewTrainProgress(os.Stderr)
		opts.Progress = prog.Hook()
	}

	run := func(name string) error {
		switch name {
		case "example":
			return runExample()
		case "datasets":
			fmt.Println("== Table 2: datasets ==")
			experiments.FprintDatasetTable(os.Stdout, experiments.DatasetTable(opts))
		case "accuracy":
			fmt.Println("== Table 3: accuracy AVG vs UDT ==")
			rows, err := experiments.AccuracyTable(opts, nil)
			if err != nil {
				return err
			}
			experiments.FprintAccuracyTable(os.Stdout, rows)
		case "noise":
			fmt.Printf("== Fig 4: controlled noise on %q ==\n", *noiseOn)
			points, err := experiments.NoiseModel(opts, *noiseOn, nil, nil)
			if err != nil {
				return err
			}
			experiments.FprintNoiseModel(os.Stdout, points)
		case "time", "pruning":
			fmt.Println("== Figs 6-7: execution time and pruning effectiveness ==")
			rows, err := experiments.Efficiency(opts)
			if err != nil {
				return err
			}
			experiments.FprintEfficiency(os.Stdout, rows)
		case "s-sweep":
			fmt.Println("== Fig 8: effect of s on UDT-ES ==")
			points, err := experiments.SSweep(opts, nil)
			if err != nil {
				return err
			}
			experiments.FprintSweep(os.Stdout, "s", points)
		case "w-sweep":
			fmt.Println("== Fig 9: effect of w on UDT-ES ==")
			points, err := experiments.WSweep(opts, nil)
			if err != nil {
				return err
			}
			experiments.FprintSweep(os.Stdout, "w", points)
		case "gini":
			fmt.Println("== §7.4: efficiency under the Gini index ==")
			giniOpts := opts
			giniOpts.Measure = split.Gini
			rows, err := experiments.Efficiency(giniOpts)
			if err != nil {
				return err
			}
			experiments.FprintEfficiency(os.Stdout, rows)
		case "point":
			fmt.Printf("== §7.5: pruning on point data (%q) ==\n", *pointOn)
			rows, err := experiments.PointData(opts, *pointOn)
			if err != nil {
				return err
			}
			experiments.FprintPointData(os.Stdout, rows)
		case "es-trace":
			fmt.Println("== Fig 5: end-point sampling trace ==")
			return runTrace(opts)
		case "es-ablation":
			fmt.Printf("== ablation: UDT-ES end-point sample fraction (%q) ==\n", *pointOn)
			rows, err := experiments.ESFractionAblation(opts, *pointOn, nil)
			if err != nil {
				return err
			}
			experiments.FprintAblation(os.Stdout, rows)
		case "endpoint-ablation":
			fmt.Printf("== ablation: §7.3 percentile vs domain end points (%q) ==\n", *pointOn)
			rows, err := experiments.EndPointModeAblation(opts, *pointOn)
			if err != nil {
				return err
			}
			experiments.FprintAblation(os.Stdout, rows)
		case "forest":
			fmt.Println("== bagged forest vs single tree: accuracy and throughput ==")
			rows, err := experiments.ForestVsTree(opts, *trees)
			if err != nil {
				return err
			}
			experiments.FprintForest(os.Stdout, rows)
		case "boost":
			fmt.Println("== boosted weighted ensemble vs bagged forest vs single tree ==")
			rows, err := experiments.BoostVsBagged(opts, *rounds, *trees)
			if err != nil {
				return err
			}
			experiments.FprintBoost(os.Stdout, rows)
		case "earlyexit":
			fmt.Println("== staged early-exit inference: members evaluated and throughput vs full ==")
			rows, err := experiments.EarlyExit(opts, *rounds)
			if err != nil {
				return err
			}
			experiments.FprintEarlyExit(os.Stdout, rows)
		case "stream":
			fmt.Println("== streaming ingestion: whole-file vs fixed-size batch windows ==")
			rows, err := experiments.StreamPredict(opts, *tuples, []int{64, 512, 4096})
			if err != nil {
				return err
			}
			experiments.FprintStream(os.Stdout, rows)
		case "load":
			fmt.Println("== model cold-start: JSON parse+compile vs binary mmap ==")
			rows, err := experiments.ModelLoad(opts, *trees)
			if err != nil {
				return err
			}
			experiments.FprintLoad(os.Stdout, rows)
		case "speedup":
			fmt.Println("== intra-node parallel split search: serial vs -workers ==")
			counts := []int{1, *workers}
			if *workers <= 1 {
				counts = []int{1, 2, 4, 8}
			}
			rows, err := experiments.SplitSpeedup(opts, strat, counts, *tuples)
			if err != nil {
				return err
			}
			experiments.FprintSpeedup(os.Stdout, strat, *tuples, rows)
		default:
			return fmt.Errorf("unknown experiment %q", name)
		}
		return nil
	}

	names := []string{*exp}
	if *exp == "all" {
		names = []string{"example", "datasets", "accuracy", "noise", "time", "s-sweep", "w-sweep", "gini", "point", "es-trace", "es-ablation", "endpoint-ablation", "speedup", "forest", "boost", "earlyexit", "stream", "load"}
	}
	for _, name := range names {
		if err := run(name); err != nil {
			fatal(err)
		}
		fmt.Println()
	}
	if prog != nil {
		prog.Summary(os.Stderr)
	}
}

// fatal reports a usage or runtime error and exits non-zero.
func fatal(err error) {
	fmt.Fprintln(os.Stderr, "udtbench:", err)
	os.Exit(1)
}

// runTrace prints the Fig 5 illustration: the nine steps of the UDT-ES
// end-point sampling process on the first attribute of a small Iris-shaped
// uncertain dataset.
func runTrace(opts experiments.Options) error {
	spec, err := uci.ByName("Iris")
	if err != nil {
		return err
	}
	pts, _, err := uci.Points(spec, 0.2, 1)
	if err != nil {
		return err
	}
	ds, err := data.Inject(pts, data.InjectConfig{W: 0.3, S: 20, Model: data.GaussianModel})
	if err != nil {
		return err
	}
	steps, err := split.TraceES(ds.Tuples, 0, len(ds.Classes), split.Config{
		Measure:  split.Entropy,
		Strategy: split.ES,
	})
	if err != nil {
		return err
	}
	split.FprintTrace(os.Stdout, steps)
	return nil
}

// runExample reproduces the worked example of Table 1 / Figs 2-3: six
// handcrafted tuples on which Averaging misclassifies two while the
// Distribution-based tree classifies all six correctly.
func runExample() error {
	fmt.Println("== Table 1 / Figs 2-3: worked example ==")
	ds := data.NewDataset("table1", 1, []string{"A", "B"})
	ds.Add(0, pdf.Point(2))
	ds.Add(0, pdf.MustNew([]float64{-6, 2}, []float64{1, 1}))
	ds.Add(0, pdf.MustNew([]float64{-1, 1, 10}, []float64{5, 1, 2}))
	ds.Add(1, pdf.Point(-2))
	ds.Add(1, pdf.MustNew([]float64{-2, 6}, []float64{1, 1}))
	ds.Add(1, pdf.MustNew([]float64{-4, 0}, []float64{1, 1}))

	cfg := core.Config{MinWeight: 0.01}
	avg, err := core.BuildAveraging(ds, cfg)
	if err != nil {
		return err
	}
	udtTree, err := core.Build(ds, cfg)
	if err != nil {
		return err
	}
	fmt.Printf("Averaging tree (accuracy %.0f%%):\n%s\n", eval.Accuracy(avg, ds)*100, avg.Dump())
	fmt.Printf("Distribution-based tree (accuracy %.0f%%):\n%s\n", eval.Accuracy(udtTree, ds)*100, udtTree.Dump())
	fmt.Println("Classification distributions (UDT):")
	for i, tu := range ds.Tuples {
		dist := udtTree.Classify(tu)
		fmt.Printf("  tuple %d (true %s): P(A)=%.4f P(B)=%.4f\n",
			i+1, ds.Classes[tu.Class], dist[0], dist[1])
	}
	return nil
}
