package main

import (
	"os"
	"strings"
	"testing"

	"udt/internal/cliutil"
	"udt/internal/experiments"
	"udt/internal/split"
)

func captureStdout(t *testing.T, fn func() error) (string, error) {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	runErr := fn()
	w.Close()
	os.Stdout = old
	buf := make([]byte, 256<<10)
	n, _ := r.Read(buf)
	return string(buf[:n]), runErr
}

func TestRunExampleReproducesPaper(t *testing.T) {
	out, runErr := captureStdout(t, runExample)

	if runErr != nil {
		t.Fatalf("runExample: %v", runErr)
	}
	// The paper's headline numbers for the worked example: AVG classifies
	// 4/6 correctly, the distribution-based tree all 6.
	if !strings.Contains(out, "Averaging tree (accuracy 67%)") {
		t.Fatalf("AVG accuracy missing from:\n%s", out)
	}
	if !strings.Contains(out, "Distribution-based tree (accuracy 100%)") {
		t.Fatalf("UDT accuracy missing from:\n%s", out)
	}
	for i := 1; i <= 6; i++ {
		if !strings.Contains(out, "tuple "+string(rune('0'+i))) {
			t.Fatalf("per-tuple distribution %d missing", i)
		}
	}
}

func TestRunTraceNineRows(t *testing.T) {
	out, err := captureStdout(t, func() error {
		return runTrace(experiments.Options{})
	})
	if err != nil {
		t.Fatalf("runTrace: %v", err)
	}
	for row := 1; row <= 9; row++ {
		if !strings.Contains(out, "row "+string(rune('0'+row))) {
			t.Fatalf("Fig 5 row %d missing from trace:\n%s", row, out)
		}
	}
}

// TestCheckPositive: the parallelism knobs reject non-positive values with
// a clear error instead of a silent zero-value run.
func TestCheckPositive(t *testing.T) {
	if err := cliutil.CheckPositive("-workers", 1); err != nil {
		t.Fatalf("cliutil.CheckPositive(1) = %v", err)
	}
	for _, v := range []int{0, -4} {
		err := cliutil.CheckPositive("-workers", v)
		if err == nil {
			t.Fatalf("cliutil.CheckPositive(%d) accepted", v)
		}
		if !strings.Contains(err.Error(), "-workers must be >= 1") {
			t.Fatalf("cliutil.CheckPositive(%d): unclear error %q", v, err)
		}
	}
}

// TestParseStrategy: every ladder name parses; unknown names error clearly.
func TestParseStrategy(t *testing.T) {
	for name, want := range map[string]split.Strategy{
		"udt": split.UDT, "bp": split.BP, "lp": split.LP, "gp": split.GP, "es": split.ES, "ES": split.ES,
	} {
		got, err := cliutil.ParseStrategy(name)
		if err != nil || got != want {
			t.Fatalf("cliutil.ParseStrategy(%q) = %v, %v", name, got, err)
		}
	}
	if _, err := cliutil.ParseStrategy("bogus"); err == nil || !strings.Contains(err.Error(), "unknown strategy") {
		t.Fatalf("cliutil.ParseStrategy(bogus): %v", err)
	}
}

// TestSplitSpeedupExperiment: the speedup driver returns one row per worker
// count, with identical results and preserved pruning power.
func TestSplitSpeedupExperiment(t *testing.T) {
	rows, err := experiments.SplitSpeedup(experiments.Options{S: 4, Seed: 1}, split.GP, []int{1, 4}, 500)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(rows))
	}
	for _, r := range rows {
		if !r.Match {
			t.Fatalf("workers=%d returned a different split than serial", r.Workers)
		}
	}
	if s, p := rows[0].Calcs, rows[1].Calcs; float64(p) > float64(s)*1.05+32 {
		t.Fatalf("parallel weakened pruning: %d calcs vs serial %d", p, s)
	}
	if _, err := experiments.SplitSpeedup(experiments.Options{}, split.GP, nil, 10); err == nil {
		t.Fatal("empty worker counts accepted")
	}
}
