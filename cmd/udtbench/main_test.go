package main

import (
	"os"
	"strings"
	"testing"

	"udt/internal/experiments"
)

func captureStdout(t *testing.T, fn func() error) (string, error) {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	runErr := fn()
	w.Close()
	os.Stdout = old
	buf := make([]byte, 256<<10)
	n, _ := r.Read(buf)
	return string(buf[:n]), runErr
}

func TestRunExampleReproducesPaper(t *testing.T) {
	out, runErr := captureStdout(t, runExample)

	if runErr != nil {
		t.Fatalf("runExample: %v", runErr)
	}
	// The paper's headline numbers for the worked example: AVG classifies
	// 4/6 correctly, the distribution-based tree all 6.
	if !strings.Contains(out, "Averaging tree (accuracy 67%)") {
		t.Fatalf("AVG accuracy missing from:\n%s", out)
	}
	if !strings.Contains(out, "Distribution-based tree (accuracy 100%)") {
		t.Fatalf("UDT accuracy missing from:\n%s", out)
	}
	for i := 1; i <= 6; i++ {
		if !strings.Contains(out, "tuple "+string(rune('0'+i))) {
			t.Fatalf("per-tuple distribution %d missing", i)
		}
	}
}

func TestRunTraceNineRows(t *testing.T) {
	out, err := captureStdout(t, func() error {
		return runTrace(experiments.Options{})
	})
	if err != nil {
		t.Fatalf("runTrace: %v", err)
	}
	for row := 1; row <= 9; row++ {
		if !strings.Contains(out, "row "+string(rune('0'+row))) {
			t.Fatalf("Fig 5 row %d missing from trace:\n%s", row, out)
		}
	}
}
