package main

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"udt/internal/obs"
)

// echoBackend is a stand-in replica: it answers /healthz with ok and echoes
// the request path, body and its own name on everything else.
func echoBackend(t *testing.T, name string) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/healthz" {
			fmt.Fprint(w, `{"status":"ok"}`)
			return
		}
		body, _ := io.ReadAll(r.Body)
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(map[string]string{
			"backend": name, "path": r.URL.Path, "body": string(body),
		})
	}))
	t.Cleanup(ts.Close)
	return ts
}

func mustProxy(t *testing.T, strategy string, urls ...string) *proxy {
	t.Helper()
	p, err := newProxy(urls, strategy)
	if err != nil {
		t.Fatal(err)
	}
	p.healthTimeout = time.Second
	return p
}

func TestRoutingKey(t *testing.T) {
	for _, tc := range []struct{ path, want string }{
		{"/v1/models/alpha/classify", "alpha"},
		{"/v1/models/alpha/classify/stream", "alpha"},
		{"/v1/models/beta", "beta"},
		{"/classify", "/classify"},
		{"/v1/models/", "/v1/models/"},
		{"/healthz", "/healthz"},
	} {
		if got := routingKey(tc.path); got != tc.want {
			t.Errorf("routingKey(%q) = %q, want %q", tc.path, got, tc.want)
		}
	}
}

// TestRendezvousStability: the same key always lands on the same backend,
// and removing one backend remaps only that backend's keys.
func TestRendezvousStability(t *testing.T) {
	p := mustProxy(t, "rendezvous", "http://a:1", "http://b:1", "http://c:1")
	keys := []string{"alpha", "beta", "gamma", "delta", "epsilon", "zeta"}
	first := map[string]string{}
	for _, k := range keys {
		order := p.pick(k)
		if len(order) != 3 {
			t.Fatalf("pick(%q) returned %d backends", k, len(order))
		}
		first[k] = order[0].url
		// Stable across repeated picks.
		for i := 0; i < 3; i++ {
			if again := p.pick(k); again[0].url != first[k] {
				t.Fatalf("pick(%q) unstable: %s then %s", k, first[k], again[0].url)
			}
		}
	}
	// Keys must not all hash to one backend (6 keys, 3 backends: collisions
	// allowed, monoculture is a hashing bug).
	seen := map[string]bool{}
	for _, b := range first {
		seen[b] = true
	}
	if len(seen) < 2 {
		t.Fatalf("all keys mapped to %v", first)
	}
	// Kill one backend: its keys move, everyone else's stay.
	dead := p.backends[0]
	dead.healthy.Store(false)
	for k, prev := range first {
		now := p.pick(k)[0].url
		if prev == dead.url {
			if now == dead.url {
				t.Fatalf("key %q still on dead backend", k)
			}
		} else if now != prev {
			t.Fatalf("key %q remapped %s -> %s though its backend is alive", k, prev, now)
		}
	}
}

// TestRoundRobinForwarding: requests rotate across healthy backends and the
// response names the serving replica.
func TestRoundRobinForwarding(t *testing.T) {
	b1, b2 := echoBackend(t, "one"), echoBackend(t, "two")
	p := mustProxy(t, "roundrobin", b1.URL, b2.URL)
	ts := httptest.NewServer(p.handler())
	defer ts.Close()

	got := map[string]int{}
	for i := 0; i < 4; i++ {
		res, err := http.Post(ts.URL+"/classify", "application/json", strings.NewReader(`{"n":1}`))
		if err != nil {
			t.Fatal(err)
		}
		var out struct{ Backend, Body string }
		if err := json.NewDecoder(res.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
		res.Body.Close()
		if res.StatusCode != http.StatusOK || out.Body != `{"n":1}` {
			t.Fatalf("forward %d: status %d, body %q", i, res.StatusCode, out.Body)
		}
		if res.Header.Get("X-Backend") == "" {
			t.Fatal("missing X-Backend header")
		}
		got[out.Backend]++
	}
	if got["one"] != 2 || got["two"] != 2 {
		t.Fatalf("round-robin distribution = %v", got)
	}
}

// TestFailoverRetry: with one backend dead, every buffered-body request
// still succeeds via transparent retry, the dead backend is marked
// unhealthy, and the retry counter records the replay.
func TestFailoverRetry(t *testing.T) {
	live := echoBackend(t, "live")
	dead := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	deadURL := dead.URL
	dead.Close() // connection refused from now on

	p := mustProxy(t, "roundrobin", deadURL, live.URL)
	ts := httptest.NewServer(p.handler())
	defer ts.Close()

	for i := 0; i < 4; i++ {
		res, err := http.Post(ts.URL+"/classify", "application/json", strings.NewReader(`{"n":2}`))
		if err != nil {
			t.Fatal(err)
		}
		var out struct{ Backend, Body string }
		if err := json.NewDecoder(res.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
		res.Body.Close()
		if res.StatusCode != http.StatusOK || out.Backend != "live" || out.Body != `{"n":2}` {
			t.Fatalf("request %d after failover: status %d, %+v", i, res.StatusCode, out)
		}
	}
	if p.backends[0].healthy.Load() {
		t.Fatal("dead backend still marked healthy")
	}
	// Exactly one replay: the first request hit the dead backend and failed
	// over; the rest skipped it outright.
	if got := p.mtr.retries.Load(); got != 1 {
		t.Fatalf("retries = %d, want 1", got)
	}
	if got := p.mtr.proxyEP.Errors.Load(); got != 0 {
		t.Fatalf("client-visible errors = %d, want 0", got)
	}
}

// TestBackendErrorNotRetried: an HTTP error from a live backend is relayed,
// never replayed elsewhere — the backend answered.
func TestBackendErrorNotRetried(t *testing.T) {
	var hits sync.Map
	erring := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Store("erring", true)
		obs.Fail(w, http.StatusBadRequest, fmt.Errorf("bad tuple"))
	}))
	defer erring.Close()
	other := echoBackend(t, "other")

	p := mustProxy(t, "rendezvous", erring.URL, other.URL)
	ts := httptest.NewServer(p.handler())
	defer ts.Close()

	// Find a key that rendezvous-routes to the erring backend.
	key := ""
	for _, cand := range []string{"a", "b", "c", "d", "e", "f", "g", "h"} {
		if p.pick(cand)[0].url == erring.URL {
			key = cand
			break
		}
	}
	if key == "" {
		t.Fatal("no key routed to the erring backend")
	}
	res, err := http.Post(ts.URL+"/v1/models/"+key+"/classify", "application/json", strings.NewReader(`{}`))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, res.Body)
	res.Body.Close()
	if res.StatusCode != http.StatusBadRequest {
		t.Fatalf("relayed status = %d, want 400", res.StatusCode)
	}
	if p.mtr.retries.Load() != 0 {
		t.Fatal("HTTP error was retried")
	}
	if !p.backends[0].healthy.Load() {
		t.Fatal("backend answering 400 was marked unhealthy")
	}
}

// TestHealthLoopRecovery: the poller demotes a failing backend and promotes
// it again when /healthz recovers; /-/healthz reports the state throughout.
func TestHealthLoopRecovery(t *testing.T) {
	var broken sync.Map
	flaky := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if _, bad := broken.Load("x"); bad && r.URL.Path == "/healthz" {
			http.Error(w, "down", http.StatusServiceUnavailable)
			return
		}
		fmt.Fprint(w, `{"status":"ok"}`)
	}))
	defer flaky.Close()

	p := mustProxy(t, "roundrobin", flaky.URL)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go p.healthLoop(ctx, 5*time.Millisecond)
	ts := httptest.NewServer(p.handler())
	defer ts.Close()

	waitHealth := func(want bool) {
		t.Helper()
		deadline := time.Now().Add(5 * time.Second)
		for p.backends[0].healthy.Load() != want {
			if time.Now().After(deadline) {
				t.Fatalf("backend never became healthy=%v", want)
			}
			time.Sleep(5 * time.Millisecond)
		}
	}
	broken.Store("x", true)
	waitHealth(false)

	// All backends down: the proxy's own health check degrades and requests
	// are refused with Retry-After rather than queued.
	hres, err := http.Get(ts.URL + "/-/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var health struct {
		Status  string `json:"status"`
		Healthy int    `json:"healthy"`
	}
	if err := json.NewDecoder(hres.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	hres.Body.Close()
	if hres.StatusCode != http.StatusServiceUnavailable || health.Status != "degraded" || health.Healthy != 0 {
		t.Fatalf("degraded healthz = %d %+v", hres.StatusCode, health)
	}
	res, err := http.Post(ts.URL+"/classify", "application/json", strings.NewReader(`{}`))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, res.Body)
	res.Body.Close()
	if res.StatusCode != http.StatusServiceUnavailable || res.Header.Get("Retry-After") == "" {
		t.Fatalf("no-backend refusal = %d, Retry-After %q", res.StatusCode, res.Header.Get("Retry-After"))
	}
	if p.mtr.noBackend.Load() == 0 {
		t.Fatal("noBackend counter did not move")
	}

	broken.Delete("x")
	waitHealth(true)
	if p.backends[0].transitions.Load() < 2 {
		t.Fatalf("transitions = %d, want >= 2", p.backends[0].transitions.Load())
	}
}

// TestStreamingRelay: NDJSON response lines flow through the proxy as they
// are produced, not after the backend finishes.
func TestStreamingRelay(t *testing.T) {
	release := make(chan struct{})
	stream := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/healthz" {
			fmt.Fprint(w, `{"status":"ok"}`)
			return
		}
		w.Header().Set("Content-Type", "application/x-ndjson")
		fmt.Fprintln(w, `{"line":1}`)
		w.(http.Flusher).Flush()
		<-release // hold the stream open; line 1 must already be readable
		fmt.Fprintln(w, `{"line":2}`)
	}))
	defer stream.Close()
	defer close(release)

	p := mustProxy(t, "roundrobin", stream.URL)
	ts := httptest.NewServer(p.handler())
	defer ts.Close()

	res, err := http.Post(ts.URL+"/classify/stream", "application/x-ndjson", strings.NewReader("{}\n"))
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	br := bufio.NewReader(res.Body)
	type line struct {
		got string
		err error
	}
	c := make(chan line, 1)
	go func() {
		l, err := br.ReadString('\n')
		c <- line{l, err}
	}()
	select {
	case l := <-c:
		if l.err != nil || !strings.Contains(l.got, `"line":1`) {
			t.Fatalf("first relayed line = %q, %v", l.got, l.err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("first line never relayed while backend stream still open")
	}
}

// TestProxyMetricsScrape: the JSON and Prometheus views agree on forward
// accounting.
func TestProxyMetricsScrape(t *testing.T) {
	b := echoBackend(t, "solo")
	p := mustProxy(t, "roundrobin", b.URL)
	ts := httptest.NewServer(p.handler())
	defer ts.Close()

	for i := 0; i < 3; i++ {
		res, err := http.Post(ts.URL+"/classify", "application/json", strings.NewReader(`{}`))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, res.Body)
		res.Body.Close()
	}
	res, err := http.Get(ts.URL + "/-/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var js struct {
		Proxy struct {
			Requests struct {
				Requests int64 `json:"requests"`
			} `json:"requests"`
			Retries int64 `json:"retries"`
		} `json:"proxy"`
		Backends map[string]struct {
			Healthy  bool `json:"healthy"`
			Forwards struct {
				Requests int64 `json:"requests"`
				Errors   int64 `json:"errors"`
			} `json:"forwards"`
		} `json:"backends"`
	}
	if err := json.NewDecoder(res.Body).Decode(&js); err != nil {
		t.Fatal(err)
	}
	res.Body.Close()
	if js.Proxy.Requests.Requests != 3 || js.Backends[b.URL].Forwards.Requests != 3 || js.Backends[b.URL].Forwards.Errors != 0 {
		t.Fatalf("metrics JSON = %+v", js)
	}

	pres, err := http.Get(ts.URL + "/-/metrics?format=prometheus")
	if err != nil {
		t.Fatal(err)
	}
	blob, err := io.ReadAll(pres.Body)
	pres.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	e, err := obs.ParseText(blob)
	if err != nil {
		t.Fatal(err)
	}
	label := obs.Label{Key: "backend", Value: b.URL}
	if v, ok := e.Value("udtproxy_backend_requests_total", label); !ok || v != 3 {
		t.Fatalf("udtproxy_backend_requests_total = %v, %v", v, ok)
	}
	if v, ok := e.Value("udtproxy_backend_healthy", label); !ok || v != 1 {
		t.Fatalf("udtproxy_backend_healthy = %v, %v", v, ok)
	}
	if v, ok := e.Value("udtproxy_requests_total"); !ok || v != 3 {
		t.Fatalf("udtproxy_requests_total = %v, %v", v, ok)
	}
}

// TestNewProxyValidation: malformed configuration is refused up front.
func TestNewProxyValidation(t *testing.T) {
	if _, err := newProxy([]string{"http://a:1"}, "random"); err == nil {
		t.Error("bad strategy accepted")
	}
	if _, err := newProxy([]string{""}, "roundrobin"); err == nil {
		t.Error("empty backend list accepted")
	}
	if _, err := newProxy([]string{"not a url"}, "roundrobin"); err == nil {
		t.Error("relative backend URL accepted")
	}
	if _, err := newProxy([]string{"http://a:1", "http://a:1"}, "roundrobin"); err == nil {
		t.Error("duplicate backend accepted")
	}
	if err := run(context.Background(), []string{}); err == nil || !strings.Contains(err.Error(), "-backends") {
		t.Errorf("missing -backends: %v", err)
	}
}
