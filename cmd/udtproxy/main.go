// Command udtproxy load-balances udtserve replicas: it forwards every
// request to one of N backends, health-checks them via GET /healthz, fails
// over around dead ones, and exposes its own observability under /-/.
//
// Usage:
//
//	udtproxy -backends http://host1:8080,http://host2:8080
//	         [-addr :8090] [-strategy roundrobin|rendezvous]
//	         [-health-interval 1s] [-health-timeout 2s]
//	         [-read-timeout 30s] [-write-timeout 60s] [-version]
//
// Strategies:
//
//	roundrobin — each request goes to the next healthy backend in rotation.
//	rendezvous — highest-random-weight (rendezvous) hashing on the request's
//	             routing key: the model name for /v1/models/{name}/... paths,
//	             the path otherwise. Every proxy instance maps a key to the
//	             same backend with no coordination, and removing a backend
//	             remaps only that backend's keys — the consistent-hashing
//	             property that keeps per-model cache locality (a model's mmap
//	             pages stay hot on one replica) through membership churn.
//
// Failover: a background poller marks backends healthy/unhealthy from GET
// /healthz, and a forward that fails at the transport layer (connection
// refused, reset — the backend never saw or never answered the request)
// marks the backend unhealthy immediately and retries the remaining healthy
// backends. Request bodies up to 16 MiB are buffered so the retry can
// replay them; larger bodies forward as a stream with no retry. HTTP error
// statuses from a live backend are relayed, never retried — the backend
// answered, the proxy must not second-guess it.
//
// Proxy-owned endpoints (never forwarded; the /-/ prefix cannot collide
// with udtserve's API):
//
//	GET /-/healthz — proxy liveness plus per-backend health.
//	GET /-/metrics — forward counts, retries, per-backend request/error/
//	                 latency, health-transition counters; JSON by default,
//	                 ?format=prometheus for the text exposition.
//
// Every forwarded response carries the backend's headers verbatim plus
// X-Backend naming the serving replica; proxy-generated errors use the
// shared obs error shape with a request ID.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"hash/fnv"
	"io"
	"log/slog"
	"net"
	"net/http"
	"net/url"
	"os"
	"os/signal"
	"runtime"
	"sort"
	"strings"
	"sync/atomic"
	"syscall"
	"time"

	"udt/internal/cliutil"
	"udt/internal/obs"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "udtproxy:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("udtproxy", flag.ExitOnError)
	backends := fs.String("backends", "", "comma-separated udtserve base URLs (required)")
	addr := fs.String("addr", ":8090", "listen address")
	strategy := fs.String("strategy", "roundrobin", "backend selection: roundrobin or rendezvous")
	healthInterval := fs.Duration("health-interval", time.Second, "backend /healthz poll interval")
	healthTimeout := fs.Duration("health-timeout", 2*time.Second, "per-backend health probe timeout")
	readTimeout := fs.Duration("read-timeout", 30*time.Second, "HTTP server read timeout")
	writeTimeout := fs.Duration("write-timeout", 60*time.Second, "HTTP server write timeout")
	version := fs.Bool("version", false, "print build info and exit")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *version {
		fmt.Println(cliutil.VersionString("udtproxy"))
		return nil
	}
	if *backends == "" {
		return errors.New("-backends is required")
	}
	if *healthInterval <= 0 || *healthTimeout <= 0 {
		return errors.New("-health-interval and -health-timeout must be positive")
	}
	p, err := newProxy(strings.Split(*backends, ","), *strategy)
	if err != nil {
		return err
	}
	p.healthTimeout = *healthTimeout
	go p.healthLoop(ctx, *healthInterval)
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	fmt.Printf("udtproxy: %s across %d backend(s) on %s\n", p.strategy, len(p.backends), ln.Addr())
	srv := &http.Server{
		Handler:      p.handler(),
		ReadTimeout:  *readTimeout,
		WriteTimeout: *writeTimeout,
	}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
		shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := srv.Shutdown(shutCtx); err != nil {
			return err
		}
		fmt.Println("udtproxy: shut down")
		return nil
	}
}

// maxRetryBody bounds the request-body buffer kept for failover replay;
// larger bodies forward as a one-shot stream.
const maxRetryBody = 16 << 20

// backend is one udtserve replica.
type backend struct {
	url     string // base URL, no trailing slash
	healthy atomic.Bool

	// metrics counts forwards actually attempted against this backend
	// (transport failures included), with the shared latency accounting.
	metrics obs.EndpointMetrics

	transitions atomic.Int64 // health flips observed (either direction)
	lastErr     atomic.Pointer[string]
}

// setHealthy flips the backend's health state, counting transitions.
func (b *backend) setHealthy(h bool, log *slog.Logger, why string) {
	if b.healthy.Swap(h) == h {
		return
	}
	b.transitions.Add(1)
	if h {
		log.Info("backend healthy", "backend", b.url)
	} else {
		log.Warn("backend unhealthy", "backend", b.url, "reason", why)
	}
}

type proxy struct {
	backends []*backend
	strategy string // "roundrobin" or "rendezvous"
	rr       atomic.Uint64

	client        *http.Client
	healthTimeout time.Duration
	log           *slog.Logger
	started       time.Time

	mw  obs.Middleware
	mtr struct {
		proxyEP   obs.EndpointMetrics // the forwarding catch-all
		healthzEP obs.EndpointMetrics
		metricsEP obs.EndpointMetrics

		retries      atomic.Int64 // forwards replayed on another backend
		noBackend    atomic.Int64 // requests refused: no healthy backend
		healthProbes atomic.Int64 // health-check requests issued
	}
}

func newProxy(rawURLs []string, strategy string) (*proxy, error) {
	if strategy != "roundrobin" && strategy != "rendezvous" {
		return nil, fmt.Errorf("-strategy %q: want roundrobin or rendezvous", strategy)
	}
	p := &proxy{
		strategy: strategy,
		log:      slog.New(slog.NewJSONHandler(os.Stderr, nil)),
		started:  time.Now(),
		// No client-level timeout: streams legitimately outlive any fixed
		// budget. Dial failures surface immediately via the transport.
		client: &http.Client{
			// Forward redirects verbatim instead of following them: the
			// client behind the proxy decides.
			CheckRedirect: func(*http.Request, []*http.Request) error { return http.ErrUseLastResponse },
		},
	}
	seen := map[string]bool{}
	for _, raw := range rawURLs {
		raw = strings.TrimSpace(strings.TrimSuffix(raw, "/"))
		if raw == "" {
			continue
		}
		u, err := url.Parse(raw)
		if err != nil || u.Scheme == "" || u.Host == "" {
			return nil, fmt.Errorf("-backends: %q is not an absolute URL", raw)
		}
		if seen[raw] {
			return nil, fmt.Errorf("-backends: duplicate %q", raw)
		}
		seen[raw] = true
		b := &backend{url: raw}
		// Optimistic start: backends are healthy until a probe or a forward
		// says otherwise, so the proxy serves before the first poll tick.
		b.healthy.Store(true)
		p.backends = append(p.backends, b)
	}
	if len(p.backends) == 0 {
		return nil, errors.New("-backends: no backends given")
	}
	return p, nil
}

func (p *proxy) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /-/healthz", p.mw.Wrap("healthz", &p.mtr.healthzEP, []string{"application/json"}, p.healthz))
	mux.HandleFunc("GET /-/metrics", p.mw.Wrap("metrics", &p.mtr.metricsEP, []string{"application/json", "text/plain"}, p.metrics))
	// The catch-all forwards everything else. No content-type gate: the
	// backend negotiates.
	mux.HandleFunc("/", p.mw.Wrap("proxy", &p.mtr.proxyEP, nil, p.forward))
	return mux
}

// healthLoop probes every backend's GET /healthz at the given interval.
func (p *proxy) healthLoop(ctx context.Context, every time.Duration) {
	t := time.NewTicker(every)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
		}
		for _, b := range p.backends {
			p.probe(ctx, b)
		}
	}
}

// probe runs one health check against one backend.
func (p *proxy) probe(ctx context.Context, b *backend) {
	p.mtr.healthProbes.Add(1)
	pctx, cancel := context.WithTimeout(ctx, p.healthTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(pctx, http.MethodGet, b.url+"/healthz", nil)
	if err != nil {
		b.setHealthy(false, p.log, err.Error())
		return
	}
	res, err := p.client.Do(req)
	if err != nil {
		msg := err.Error()
		b.lastErr.Store(&msg)
		b.setHealthy(false, p.log, msg)
		return
	}
	io.Copy(io.Discard, res.Body)
	res.Body.Close()
	if res.StatusCode != http.StatusOK {
		msg := fmt.Sprintf("healthz status %d", res.StatusCode)
		b.lastErr.Store(&msg)
		b.setHealthy(false, p.log, msg)
		return
	}
	b.setHealthy(true, p.log, "")
}

// routingKey extracts the rendezvous key: the model name for
// /v1/models/{name}/... paths so one model's traffic (and its replica-side
// mmap locality) sticks to one backend, the whole path otherwise.
func routingKey(path string) string {
	if rest, ok := strings.CutPrefix(path, "/v1/models/"); ok {
		if name, _, ok := strings.Cut(rest, "/"); ok && name != "" {
			return name
		} else if rest != "" {
			return rest
		}
	}
	return path
}

// pick orders the healthy backends for one request: the preferred backend
// first, the failover candidates after it. An empty result means nothing is
// healthy.
func (p *proxy) pick(key string) []*backend {
	healthy := make([]*backend, 0, len(p.backends))
	for _, b := range p.backends {
		if b.healthy.Load() {
			healthy = append(healthy, b)
		}
	}
	if len(healthy) == 0 {
		return nil
	}
	switch p.strategy {
	case "rendezvous":
		// Highest-random-weight: score each (key, backend) pair; the ranking
		// is stable per key and independent across backends, so losing one
		// backend promotes its runner-up without remapping anyone else.
		sort.SliceStable(healthy, func(i, j int) bool {
			return rendezvousScore(key, healthy[i].url) > rendezvousScore(key, healthy[j].url)
		})
	default: // roundrobin
		start := int(p.rr.Add(1)-1) % len(healthy)
		rotated := make([]*backend, 0, len(healthy))
		rotated = append(rotated, healthy[start:]...)
		rotated = append(rotated, healthy[:start]...)
		healthy = rotated
	}
	return healthy
}

// rendezvousScore hashes one (key, backend) pair.
func rendezvousScore(key, backendURL string) uint64 {
	h := fnv.New64a()
	io.WriteString(h, key)
	io.WriteString(h, "\x00")
	io.WriteString(h, backendURL)
	return h.Sum64()
}

// forward proxies one request with transport-level failover.
func (p *proxy) forward(w http.ResponseWriter, r *http.Request) {
	order := p.pick(routingKey(r.URL.Path))
	if len(order) == 0 {
		p.mtr.noBackend.Add(1)
		w.Header().Set("Retry-After", "1")
		obs.Fail(w, http.StatusServiceUnavailable, errors.New("no healthy backend"))
		return
	}

	// Buffer the body (bounded) so a transport failure can replay it against
	// the next backend. An oversized body streams to the first backend only.
	var bodyBytes []byte
	retriable := true
	if r.Body != nil {
		buf, err := io.ReadAll(io.LimitReader(r.Body, maxRetryBody+1))
		if err != nil {
			obs.Fail(w, http.StatusBadRequest, fmt.Errorf("read request body: %w", err))
			return
		}
		if len(buf) > maxRetryBody {
			retriable = false
			r.Body = struct {
				io.Reader
				io.Closer
			}{io.MultiReader(bytes.NewReader(buf), r.Body), r.Body}
		} else {
			bodyBytes = buf
		}
	}

	for i, b := range order {
		if i > 0 {
			p.mtr.retries.Add(1)
		}
		start := time.Now()
		res, err := p.attempt(b, r, bodyBytes, retriable)
		if err != nil {
			b.metrics.Observe(time.Since(start), http.StatusBadGateway)
			msg := err.Error()
			b.lastErr.Store(&msg)
			b.setHealthy(false, p.log, msg)
			if retriable && i < len(order)-1 {
				continue
			}
			obs.Fail(w, http.StatusBadGateway, fmt.Errorf("backend %s: %w", b.url, err))
			return
		}
		p.relay(w, res, b)
		b.metrics.Observe(time.Since(start), res.StatusCode)
		return
	}
}

// attempt issues the request against one backend.
func (p *proxy) attempt(b *backend, r *http.Request, bodyBytes []byte, retriable bool) (*http.Response, error) {
	out, err := http.NewRequestWithContext(r.Context(), r.Method, b.url+r.URL.RequestURI(), nil)
	if err != nil {
		return nil, err
	}
	if retriable {
		out.Body = io.NopCloser(bytes.NewReader(bodyBytes))
		out.ContentLength = int64(len(bodyBytes))
	} else {
		out.Body = io.NopCloser(r.Body)
		out.ContentLength = r.ContentLength
	}
	copyHeaders(out.Header, r.Header)
	out.Header.Set("X-Forwarded-For", clientIP(r))
	return p.client.Do(out)
}

// relay copies the backend response to the client, streaming the body with
// per-chunk flushes so NDJSON responses stay interactive through the proxy.
func (p *proxy) relay(w http.ResponseWriter, res *http.Response, b *backend) {
	defer res.Body.Close()
	copyHeaders(w.Header(), res.Header)
	w.Header().Set("X-Backend", b.url)
	w.WriteHeader(res.StatusCode)
	rc := http.NewResponseController(w)
	buf := make([]byte, 32<<10)
	for {
		n, err := res.Body.Read(buf)
		if n > 0 {
			if _, werr := w.Write(buf[:n]); werr != nil {
				return
			}
			rc.Flush()
		}
		if err != nil {
			return
		}
	}
}

// hopByHop are the connection-scoped headers a proxy must not forward
// (RFC 9110 §7.6.1).
var hopByHop = map[string]bool{
	"Connection": true, "Keep-Alive": true, "Proxy-Authenticate": true,
	"Proxy-Authorization": true, "Te": true, "Trailer": true,
	"Transfer-Encoding": true, "Upgrade": true,
}

func copyHeaders(dst, src http.Header) {
	for k, vs := range src {
		if hopByHop[http.CanonicalHeaderKey(k)] {
			continue
		}
		for _, v := range vs {
			dst.Add(k, v)
		}
	}
}

// clientIP extracts the requesting host for X-Forwarded-For.
func clientIP(r *http.Request) string {
	host, _, err := net.SplitHostPort(r.RemoteAddr)
	if err != nil {
		return r.RemoteAddr
	}
	return host
}

func (p *proxy) healthz(w http.ResponseWriter, r *http.Request) {
	healthy := 0
	bs := make([]map[string]any, 0, len(p.backends))
	for _, b := range p.backends {
		h := b.healthy.Load()
		if h {
			healthy++
		}
		doc := map[string]any{"url": b.url, "healthy": h}
		if msg := b.lastErr.Load(); msg != nil && !h {
			doc["lastError"] = *msg
		}
		bs = append(bs, doc)
	}
	status := "ok"
	code := http.StatusOK
	if healthy == 0 {
		// The proxy is alive but useless; surface that to *its* health
		// checker so a proxy tier in front of dead replicas drains too.
		status = "degraded"
		code = http.StatusServiceUnavailable
	}
	version, commit := cliutil.BuildInfo()
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]any{
		"status":   status,
		"strategy": p.strategy,
		"healthy":  healthy,
		"backends": bs,
		"uptime":   time.Since(p.started).Round(time.Second).String(),
		"version":  version,
		"commit":   commit,
	})
}

func (p *proxy) metrics(w http.ResponseWriter, r *http.Request) {
	switch format := r.URL.Query().Get("format"); format {
	case "prometheus":
		w.Header().Set("Content-Type", obs.TextType)
		if err := obs.WriteText(w, p.promFamilies()); err != nil {
			fmt.Fprintln(os.Stderr, "udtproxy: write prometheus metrics:", err)
		}
		return
	case "", "json":
	default:
		obs.Fail(w, http.StatusBadRequest, fmt.Errorf("unknown format %q: want json or prometheus", format))
		return
	}
	bdoc := map[string]any{}
	for _, b := range p.backends {
		bdoc[b.url] = map[string]any{
			"healthy":     b.healthy.Load(),
			"forwards":    b.metrics.Snapshot(),
			"transitions": b.transitions.Load(),
		}
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(map[string]any{
		"uptime":   time.Since(p.started).Round(time.Second).String(),
		"strategy": p.strategy,
		"backends": bdoc,
		"proxy": map[string]any{
			"requests":     p.mtr.proxyEP.Snapshot(),
			"retries":      p.mtr.retries.Load(),
			"noBackend":    p.mtr.noBackend.Load(),
			"healthProbes": p.mtr.healthProbes.Load(),
		},
	})
}

// promFamilies renders the proxy counters as Prometheus families.
func (p *proxy) promFamilies() []obs.Family {
	reqs := obs.Family{Name: "udtproxy_backend_requests_total", Help: "Forward attempts, by backend.", Type: obs.Counter}
	errs := obs.Family{Name: "udtproxy_backend_errors_total", Help: "Forward attempts answered >= 400 or failed, by backend.", Type: obs.Counter}
	lat := obs.Family{Name: "udtproxy_backend_latency_seconds", Help: "Forward latency, by backend.", Type: obs.Histogram}
	up := obs.Family{Name: "udtproxy_backend_healthy", Help: "1 when the backend's last probe or forward succeeded.", Type: obs.Gauge}
	trans := obs.Family{Name: "udtproxy_backend_transitions_total", Help: "Health flips observed, by backend.", Type: obs.Counter}
	for _, b := range p.backends {
		label := obs.Label{Key: "backend", Value: b.url}
		reqs.Samples = append(reqs.Samples, obs.Sample{Labels: []obs.Label{label}, Value: float64(b.metrics.Requests.Load())})
		errs.Samples = append(errs.Samples, obs.Sample{Labels: []obs.Label{label}, Value: float64(b.metrics.Errors.Load())})
		lat.Hists = append(lat.Hists,
			obs.HistFromLatency(b.metrics.Hist.Snapshot(), float64(b.metrics.Nanos.Load())/1e9, label))
		h := 0.0
		if b.healthy.Load() {
			h = 1
		}
		up.Samples = append(up.Samples, obs.Sample{Labels: []obs.Label{label}, Value: h})
		trans.Samples = append(trans.Samples, obs.Sample{Labels: []obs.Label{label}, Value: float64(b.transitions.Load())})
	}
	version, commit := cliutil.BuildInfo()
	single := func(name, help string, t obs.MetricType, v float64) obs.Family {
		return obs.Family{Name: name, Help: help, Type: t, Samples: []obs.Sample{{Value: v}}}
	}
	return []obs.Family{
		{Name: "udtproxy_build_info", Help: "Build metadata; value is always 1.", Type: obs.Gauge,
			Samples: []obs.Sample{{Labels: []obs.Label{
				{Key: "version", Value: version},
				{Key: "commit", Value: commit},
				{Key: "goversion", Value: runtime.Version()},
			}, Value: 1}}},
		single("udtproxy_uptime_seconds", "Seconds since the proxy started.", obs.Gauge, time.Since(p.started).Seconds()),
		single("udtproxy_requests_total", "Requests accepted for forwarding.", obs.Counter, float64(p.mtr.proxyEP.Requests.Load())),
		single("udtproxy_request_errors_total", "Forwarded requests that ended >= 400.", obs.Counter, float64(p.mtr.proxyEP.Errors.Load())),
		single("udtproxy_retries_total", "Forwards replayed on another backend after a transport failure.", obs.Counter, float64(p.mtr.retries.Load())),
		single("udtproxy_no_backend_total", "Requests refused because no backend was healthy.", obs.Counter, float64(p.mtr.noBackend.Load())),
		single("udtproxy_health_probes_total", "Backend health checks issued.", obs.Counter, float64(p.mtr.healthProbes.Load())),
		reqs, errs, lat, up, trans,
	}
}
